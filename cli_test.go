package shufflenet_test

// End-to-end tests of the three command-line tools: each binary is
// built once into a temp dir and driven through its primary flows.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func binaries(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "shufflenet-bin")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"snet", "adversary", "experiments", "optcoord"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				_ = out
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building CLIs: %v", buildErr)
	}
	return binDir
}

func run(t *testing.T, tool string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), tool), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLISnetInfoCheckEval(t *testing.T) {
	out, err := run(t, "snet", "-net", "bitonic", "-n", "16", "-op", "check")
	if err != nil || !strings.Contains(out, "sorting network: yes") {
		t.Fatalf("check failed: %v\n%s", err, out)
	}
	out, err = run(t, "snet", "-net", "stone", "-n", "16", "-op", "info")
	if err != nil || !strings.Contains(out, "shuffleBased=true") {
		t.Fatalf("info failed: %v\n%s", err, out)
	}
	out, err = run(t, "snet", "-net", "pratt", "-n", "8", "-op", "eval", "-input", "7,6,5,4,3,2,1,0")
	if err != nil || !strings.Contains(out, "sorted: true") {
		t.Fatalf("eval failed: %v\n%s", err, out)
	}
	out, err = run(t, "snet", "-net", "oddeven", "-n", "8", "-op", "ascii")
	if err != nil || !strings.Contains(out, "o-") {
		t.Fatalf("ascii failed: %v\n%s", err, out)
	}
}

func TestCLISnetFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	out, err := run(t, "snet", "-net", "butterfly", "-n", "16", "-op", "text")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = run(t, "snet", "-net", "file:"+path, "-op", "info")
	if err != nil || !strings.Contains(out, "n=16") {
		t.Fatalf("file load failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "reverse delta topology: true") {
		t.Fatalf("butterfly not recognized from file:\n%s", out)
	}
}

func TestCLIAdversaryBuiltins(t *testing.T) {
	out, err := run(t, "adversary", "-n", "64", "-blocks", "2", "-topology", "butterfly")
	if err != nil || !strings.Contains(out, "NOT a sorting network") {
		t.Fatalf("adversary run failed: %v\n%s", err, out)
	}
	// Full bitonic: the adversary must refuse.
	out, err = run(t, "adversary", "-n", "16", "-blocks", "4", "-topology", "bitonic")
	if err != nil {
		t.Fatalf("adversary errored: %v\n%s", err, out)
	}
	if !strings.Contains(out, "no certificate") {
		t.Fatalf("adversary claimed to beat a full bitonic prefix:\n%s", out)
	}
}

func TestCLIAdversaryFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "two-butterflies.txt")
	single, err := run(t, "snet", "-net", "butterfly", "-n", "32", "-op", "text")
	if err != nil {
		t.Fatal(err)
	}
	// Concatenate two butterfly blocks into one 10-level circuit.
	var b strings.Builder
	lines := strings.Split(strings.TrimSpace(single), "\n")
	b.WriteString(lines[0] + "\n")
	for rep := 0; rep < 2; rep++ {
		for _, ln := range lines[1:] {
			b.WriteString(ln + "\n")
		}
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "adversary", "-file", path)
	if err != nil || !strings.Contains(out, "certificate verified against the loaded circuit") {
		t.Fatalf("file adversary failed: %v\n%s", err, out)
	}
}

func TestCLIExperimentsQuick(t *testing.T) {
	out, err := run(t, "experiments", "-quick", "-run", "E4,E9")
	if err != nil {
		t.Fatalf("experiments failed: %v\n%s", err, out)
	}
	for _, want := range []string{"E4 —", "E9 —", "yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	out, err = run(t, "experiments", "-quick", "-run", "E1", "-csv")
	if err != nil || !strings.Contains(out, "n,lg n,") {
		t.Fatalf("CSV output wrong: %v\n%s", err, out)
	}
	// Unknown experiment: nonzero exit.
	if _, err = run(t, "experiments", "-run", "E42"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestCLIRunJournal is the observability acceptance path: two tools
// append run-journal lines to the same file, each line is one valid
// JSON object carrying the identity fields, final metrics, and — for
// the adversary — the per-block surviving-set sizes and collision
// counts.
func TestCLIRunJournal(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.jsonl")

	out, err := run(t, "adversary", "-n", "256", "-blocks", "2", "-journal", journal, "-metrics")
	if err != nil {
		t.Fatalf("adversary failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "--- metrics (adversary) ---") ||
		!strings.Contains(out, "core.adversary.blocks 2") {
		t.Fatalf("-metrics dump missing:\n%s", out)
	}

	out, err = run(t, "experiments", "-run", "E4", "-quick", "-journal", journal, "-trace")
	if err != nil {
		t.Fatalf("experiments failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "--- spans (experiments) ---") || !strings.Contains(out, "E4") {
		t.Fatalf("-trace output missing:\n%s", out)
	}

	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines, want 2 (one per invocation):\n%s", len(lines), data)
	}

	type entry struct {
		Cmd       string         `json:"cmd"`
		Seed      int64          `json:"seed"`
		GoVersion string         `json:"go_version"`
		WallMS    float64        `json:"wall_ms"`
		Metrics   map[string]any `json:"metrics"`
		Extra     map[string]any `json:"extra"`
	}
	var adv, exp entry
	if err := json.Unmarshal([]byte(lines[0]), &adv); err != nil {
		t.Fatalf("adversary journal line is not valid JSON: %v\n%s", err, lines[0])
	}
	if err := json.Unmarshal([]byte(lines[1]), &exp); err != nil {
		t.Fatalf("experiments journal line is not valid JSON: %v\n%s", err, lines[1])
	}
	if adv.Cmd != "adversary" || exp.Cmd != "experiments" {
		t.Fatalf("cmd fields wrong: %q, %q", adv.Cmd, exp.Cmd)
	}
	if adv.GoVersion == "" || adv.WallMS <= 0 {
		t.Fatalf("identity/timing fields missing: %+v", adv)
	}
	if v, ok := adv.Metrics["core.adversary.blocks"].(float64); !ok || v != 2 {
		t.Fatalf("adversary metrics missing block count: %v", adv.Metrics)
	}

	// Per-block telemetry: 2 reports, each with survivor and collision
	// counts and the kept-set size.
	reports, ok := adv.Extra["reports"].([]any)
	if !ok || len(reports) != 2 {
		t.Fatalf("journal reports wrong: %v", adv.Extra["reports"])
	}
	for i, r := range reports {
		rep, ok := r.(map[string]any)
		if !ok {
			t.Fatalf("report %d not an object: %v", i, r)
		}
		for _, key := range []string{"Survivors", "SetCount", "Collisions", "After"} {
			if _, ok := rep[key]; !ok {
				t.Fatalf("report %d missing %s: %v", i, key, rep)
			}
		}
	}
	if _, ok := adv.Extra["certificate"]; !ok {
		t.Fatalf("adversary journal missing certificate summary: %v", adv.Extra)
	}
	if _, ok := exp.Extra["experiments"]; !ok {
		t.Fatalf("experiments journal missing per-experiment timings: %v", exp.Extra)
	}
}

// journalEntry is the subset of the run-journal schema the robustness
// tests assert on. Partial's completed/skipped lists may be JSON null
// when empty, so the field is a loose map.
type journalEntry struct {
	Cmd      string         `json:"cmd"`
	TimedOut bool           `json:"timed_out"`
	Partial  map[string]any `json:"partial"`
}

func lastJournalEntry(t *testing.T, path string) journalEntry {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var e journalEntry
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &e); err != nil {
		t.Fatalf("journal line is not valid JSON: %v\n%s", err, lines[len(lines)-1])
	}
	return e
}

func TestCLIExperimentsRunParsing(t *testing.T) {
	// Trailing and doubled commas (and stray spaces) in -run must be
	// tolerated, not rejected as unknown experiments.
	out, err := run(t, "experiments", "-quick", "-run", "E1, E9,")
	if err != nil {
		t.Fatalf("experiments rejected padded -run list: %v\n%s", err, out)
	}
	for _, want := range []string{"E1 —", "E9 —"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	// An all-empty list is still an error.
	if _, err := run(t, "experiments", "-run", ", ,"); err == nil {
		t.Fatal("empty -run list accepted")
	}
}

// The three -timeout tests drive a deadline through each CLI: the run
// must exit 0 (a deadline is an orderly stop, not a failure), and the
// journal entry must be marked timed_out with partial progress fields.

func TestCLIAdversaryTimeout(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	out, err := run(t, "adversary", "-n", "16384", "-blocks", "2",
		"-topology", "random", "-timeout", "1ms", "-journal", journal)
	if err != nil {
		t.Fatalf("timed-out adversary exited nonzero: %v\n%s", err, out)
	}
	if !strings.Contains(out, "run canceled") {
		t.Fatalf("missing cancellation report:\n%s", out)
	}
	e := lastJournalEntry(t, journal)
	if e.Cmd != "adversary" || !e.TimedOut {
		t.Fatalf("journal not marked timed_out: %+v", e)
	}
	if v, ok := e.Partial["survivors"].(float64); !ok || v <= 0 {
		t.Fatalf("partial survivors missing: %v", e.Partial)
	}
	if _, ok := e.Partial["blocks_done"]; !ok {
		t.Fatalf("partial blocks_done missing: %v", e.Partial)
	}
}

func TestCLISnetCheckTimeout(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	out, err := run(t, "snet", "-net", "mergeexchange", "-n", "24",
		"-op", "check", "-timeout", "1ms", "-journal", journal)
	if err != nil {
		t.Fatalf("timed-out check exited nonzero: %v\n%s", err, out)
	}
	if !strings.Contains(out, "check canceled") || strings.Contains(out, "sorting network:") {
		t.Fatalf("canceled check must print no verdict:\n%s", out)
	}
	e := lastJournalEntry(t, journal)
	if !e.TimedOut {
		t.Fatalf("journal not marked timed_out: %+v", e)
	}
	if op, _ := e.Partial["op"].(string); !strings.HasPrefix(op, "sortcheck.ZeroOne") {
		t.Fatalf("partial op = %v, want a sortcheck scan: %v", e.Partial["op"], e.Partial)
	}
}

func TestCLIExperimentsTimeout(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	out, err := run(t, "experiments", "-run", "E3", "-timeout", "1ms", "-journal", journal)
	if err != nil {
		t.Fatalf("timed-out experiments exited nonzero: %v\n%s", err, out)
	}
	if !strings.Contains(out, "TRUNCATED") {
		t.Fatalf("cut table missing the TRUNCATED note:\n%s", out)
	}
	e := lastJournalEntry(t, journal)
	if !e.TimedOut {
		t.Fatalf("journal not marked timed_out: %+v", e)
	}
	if tr, _ := e.Partial["truncated"].(string); tr != "E3" {
		t.Fatalf("partial truncated = %v, want E3: %v", e.Partial["truncated"], e.Partial)
	}
}

func TestCLIAdversarySaveAndCheck(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.txt")
	certPath := filepath.Join(dir, "cert.json")
	single, err := run(t, "snet", "-net", "butterfly", "-n", "16", "-op", "text")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(single), "\n")
	var b strings.Builder
	b.WriteString(lines[0] + "\n")
	for rep := 0; rep < 2; rep++ {
		for _, ln := range lines[1:] {
			b.WriteString(ln + "\n")
		}
	}
	if err := os.WriteFile(netPath, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "adversary", "-file", netPath, "-save", certPath)
	if err != nil || !strings.Contains(out, "certificate written") {
		t.Fatalf("save failed: %v\n%s", err, out)
	}
	out, err = run(t, "adversary", "-check", certPath, "-file", netPath)
	if err != nil || !strings.Contains(out, "NOT a sorting network") {
		t.Fatalf("check failed: %v\n%s", err, out)
	}
	// Checking against the WRONG network must fail.
	wrong, err := run(t, "snet", "-net", "bitonic", "-n", "16", "-op", "text")
	if err != nil {
		t.Fatal(err)
	}
	wrongPath := filepath.Join(dir, "wrong.txt")
	if err := os.WriteFile(wrongPath, []byte(wrong), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(t, "adversary", "-check", certPath, "-file", wrongPath); err == nil {
		t.Fatal("certificate accepted against the wrong network")
	}
}
