// Averagecase: the Section 5 boundary of the lower bound.
//
// The paper's Ω(lg²n / lg lg n) bound is worst-case only: Section 5
// explains (via Leighton–Plaxton [8]) that much shallower shuffle-based
// networks sort all but a small fraction of inputs. This example traces
// that boundary empirically: sorted fraction and residual disorder of
// (a) Stone's bitonic sorter truncated to a fraction of its depth and
// (b) O(lg n)-depth ε-halver cascades.
package main

import (
	"fmt"
	"math/rand"

	"shufflenet/internal/bits"
	"shufflenet/internal/halver"
	"shufflenet/internal/randnet"
	"shufflenet/internal/sortcheck"
)

func main() {
	const (
		n      = 128
		trials = 1500
		seed   = 11
	)
	d := bits.Lg(n)
	fmt.Printf("n = %d, full Stone-bitonic depth = lg²n = %d shuffle steps\n\n", n, d*d)

	fmt.Println("truncated Stone bitonic (worst-case sorter cut short):")
	fmt.Printf("%8s  %12s  %14s\n", "depth", "sorted frac", "mean max-disloc")
	for _, frac := range []float64{0.25, 0.5, 0.75, 0.9, 1.0} {
		// Snap to a pass boundary (multiples of lg n): mid-pass the
		// registers hold shuffled positions.
		steps := d * int(frac*float64(d)+0.5)
		if steps > d*d {
			steps = d * d
		}
		net := randnet.TruncatedBitonic(n, steps)
		sf := sortcheck.SortedFraction(n, trials, net, seed, 0)
		md := meanDisloc(net, n, 300)
		fmt.Printf("%8d  %12.3f  %14.2f\n", steps, sf, md)
	}

	fmt.Println("\nε-halver cascades (AKS-skeleton substitute, depth passes·lg n):")
	fmt.Printf("%8s  %8s  %12s  %14s\n", "passes", "depth", "sorted frac", "mean max-disloc")
	for _, passes := range []int{1, 2, 4, 8, 16} {
		net := halver.Cascade(n, passes, rand.New(rand.NewSource(seed+int64(passes))))
		sf := sortcheck.SortedFraction(n, trials, net, seed, 0)
		md := meanDisloc(net, n, 300)
		fmt.Printf("%8d  %8d  %12.3f  %14.2f\n", passes, net.Depth(), sf, md)
	}

	fmt.Println("\nreadout: disorder collapses at depths far below the worst-case sorting")
	fmt.Println("depth — the lower bound constrains the last unsorted input, not the average")
	fmt.Println("one. This is why Section 5 rules out average-case and small representative-")
	fmt.Println("set strengthenings of the bound.")
}

type evaler interface{ Eval([]int) []int }

func meanDisloc(net evaler, n, trials int) float64 {
	rng := rand.New(rand.NewSource(99))
	total := 0
	for t := 0; t < trials; t++ {
		total += sortcheck.MaxDislocation(net.Eval(rng.Perm(n)))
	}
	return float64(total) / float64(trials)
}
