// Lowerbound: the paper's main theorem as a runnable program.
//
// We stack two full butterfly blocks (with a random permutation between
// them — exactly the freedom the paper's model grants), run the
// constructive adversary of Section 4, extract the Corollary 4.1.1
// certificate, and verify it by replaying both inputs through the
// network: the two inputs are routed identically and differ in a pair
// of adjacent values that are never compared, so the network provably
// cannot sort.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"shufflenet/internal/bits"
	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/perm"
)

func main() {
	const n = 256
	d := bits.Lg(n)
	rng := rand.New(rand.NewSource(42))

	it := delta.NewIterated(n)
	it.AddBlock(nil, delta.Butterfly(d))
	it.AddBlock(perm.Random(n, rng), delta.Butterfly(d))
	fmt.Printf("network: 2 butterfly blocks on %d wires, comparator depth %d, size %d\n",
		n, it.Depth(), it.Size())

	an := core.Theorem41(it, 0)
	fmt.Printf("\nadversary (k = lg n = %d):\n", an.K)
	for _, rep := range an.Reports {
		fmt.Printf("  block %d: tracked set %d -> %d survivors across noncolliding sets -> kept [M_%d] of size %d\n",
			rep.Block, rep.Before, rep.Survivors, rep.ChosenSet, rep.After)
	}
	fmt.Printf("final noncolliding set D: %d wires %v\n", len(an.D), an.D)

	cert, err := an.Certificate()
	if err != nil {
		log.Fatalf("no certificate: %v", err)
	}
	fmt.Printf("\ncertificate: wires %d and %d carry the adjacent values %d and %d\n",
		cert.W0, cert.W1, cert.M, cert.M+1)

	circ, _ := it.ToNetwork()
	if err := cert.Verify(circ); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: the network performs the same permutation on π and π′")
	fmt.Println("          and never compares the two adjacent values —")
	fmt.Println("          it cannot sort both inputs. NOT a sorting network.")

	fmt.Printf("\n(The paper: any shuffle-based sorting network needs depth Ω(lg²n/lg lg n);\n")
	fmt.Printf(" here lg n/(4 lg lg n) ≈ %.2f blocks are provably insufficient.)\n",
		float64(d)/(4*math.Log2(float64(d))))
}
