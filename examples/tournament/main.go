// Tournament: the structural insight behind the proof (Section 2).
//
// A reverse delta network is a "tournament": two disjoint
// sub-tournaments followed by one cross-level. An observer who sees all
// comparison outcomes inside the two sub-networks learns NOTHING about
// the relative order of values in different sub-networks — this
// disjointness is what lets the adversary keep large sets of
// never-compared adjacent values.
//
// This example makes the disjointness concrete with the Section 3
// pattern machinery: we place two M₀ symbols on chosen slots of a
// butterfly and report whether — and at which level — their values can
// ever be compared.
package main

import (
	"fmt"

	"shufflenet/internal/delta"
	"shufflenet/internal/network"
	"shufflenet/internal/pattern"
)

func main() {
	const l = 4 // butterfly levels; n = 16
	bf := delta.Butterfly(l)
	circ := bf.ToNetwork()
	n := bf.Inputs()

	fmt.Printf("butterfly: %d levels on %d slots — level i compares slots differing in bit i\n", l, n)
	fmt.Printf("reverse delta topology: %v, delta topology: %v (both — the butterfly is the unique such network)\n\n",
		delta.IsReverseDelta(circ), delta.IsDelta(circ))

	show(circ, n, 0, n/2, "opposite top-level sub-tournaments")
	show(circ, n, 0, 1, "same innermost pair")
	show(circ, n, 0, 2, "same top half, adjacent 2-blocks")
	show(circ, n, 3, 13, "opposite halves, scrambled low bits")

	fmt.Println("\nthe adversary (internal/core) industrializes exactly this: it maintains")
	fmt.Println("~lg³n disjoint sets of mutually-uncompared wires and re-matches them at")
	fmt.Println("every level, losing only an l/lg²n fraction overall (Lemma 4.1)")
}

// show places M0 on wires a and b (S0 elsewhere) and reports the first
// level at which the two tracked values can meet, if any.
func show(circ *network.Network, n, a, b int, label string) {
	p := pattern.Uniform(n, pattern.S(0))
	p[a], p[b] = pattern.M(0), pattern.M(0)
	res := pattern.EvalTrace(circ, p)
	level := -1
	for _, ev := range res.Events {
		if ev.Ambiguous && ev.SymA == pattern.M(0) {
			level = ev.Level
			break
		}
	}
	if level < 0 {
		fmt.Printf("slots %2d,%2d (%s): never compared — a noncolliding pair\n", a, b, label)
		return
	}
	fmt.Printf("slots %2d,%2d (%s): first possible comparison at level %d\n", a, b, label, level+1)
}
