// Adaptive: Section 5's first extension, as an interactive game.
//
// The paper observes that the lower bound survives even if each level's
// labeling is chosen only after seeing the outcomes of all previous
// comparisons — because the adversary never commits to an input, only
// to a pattern. Here a "builder" plays against core.Incremental: before
// every block it inspects the adversary's surviving set D and aims the
// block at it (routing D onto adjacent slots, where the butterfly's
// low levels compare them first). The per-block survival guarantee of
// Lemma 4.1 holds anyway, and after the legal number of blocks the
// builder still hasn't forced a sorting network.
package main

import (
	"fmt"
	"math/rand"

	"shufflenet/internal/bits"
	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/perm"
)

func main() {
	const n = 256
	l := bits.Lg(n)
	inc := core.NewIncremental(n, 0)
	rng := rand.New(rand.NewSource(3))

	fmt.Printf("adaptive game on %d wires (k = lg n = %d)\n", n, inc.K())
	fmt.Println("builder strategy: before each block, pack the adversary's current")
	fmt.Println("noncolliding set D onto adjacent slots and hit it with a butterfly")
	fmt.Println()

	for b := 0; b < 4; b++ {
		d := inc.D()
		if len(d) < 2 {
			fmt.Printf("block %d: |D| = %d — builder wins this game instance\n", b, len(d))
			break
		}
		// The adaptive move: D-wires to slots 0..|D|-1.
		pre := packFirst(n, d, rng)
		rep := inc.AddBlock(pre, delta.NewForest(delta.Butterfly(l)))
		fmt.Printf("block %d: builder aimed at |D|=%3d  ->  survivors %3d across sets, kept [M_%d] with %3d wires\n",
			b, rep.Before, rep.Survivors, rep.ChosenSet, rep.After)
	}

	d := inc.D()
	fmt.Printf("\nafter the game: |D| = %d — the wires %v have never been compared\n", len(d), d)
	if len(d) >= 2 {
		fmt.Println("the adaptively-built network is still provably not a sorting network")
		fmt.Println("(Lemma 4.1's bound never referenced how the levels were chosen)")
	}
}

// packFirst routes the given wires to the first slots and scatters the
// rest randomly — the most informed single-permutation attack available
// to the builder.
func packFirst(n int, ws []int, rng *rand.Rand) perm.Perm {
	p := make(perm.Perm, n)
	for i := range p {
		p[i] = -1
	}
	for i, w := range ws {
		p[w] = i
	}
	rest := rng.Perm(n - len(ws))
	next := 0
	for w := 0; w < n; w++ {
		if p[w] == -1 {
			p[w] = len(ws) + rest[next]
			next++
		}
	}
	return p
}
