// Anatomy: Lemma 4.1 under a microscope.
//
// We run the constructive lemma on a small reverse delta network and on
// each of its sub-networks, printing the collections of noncolliding
// [M_i]-sets the adversary maintains — the "special sets" of Section 2
// — so the matching-and-recombination step is visible in the data: at
// every level the two sub-collections merge into one, the number of
// sets grows slightly, the total number of tracked wires barely drops,
// and the output pattern stays a refinement of the input pattern.
package main

import (
	"fmt"
	"math/rand"

	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/pattern"
)

func main() {
	const l = 3 // 8 slots
	rng := rand.New(rand.NewSource(20))
	tree := delta.Random(l, 1.0, rng)
	k := 2

	fmt.Printf("random %d-level reverse delta network on %d slots, k = %d\n", l, tree.Inputs(), k)
	fmt.Printf("t(l) = k³ + l·k² allows up to %d sets at the root\n\n", k*k*k+l*k*k)

	// Walk the left spine of the recursion: leaf, 1-level, 2-level, root.
	for lvl := 1; lvl <= l; lvl++ {
		sub := tree
		for i := 0; i < l-lvl; i++ {
			sub = sub.Sub(0)
		}
		p := pattern.Uniform(sub.Inputs(), pattern.M(0))
		res := core.Lemma41(sub, p, k)
		fmt.Printf("%d-level sub-network (%d slots): |A| = %d -> |B| = %d across %d nonempty sets\n",
			lvl, sub.Inputs(), res.Initial, res.Survivors, res.SetCount())
		for i, ws := range res.Sets {
			if len(ws) == 0 {
				continue
			}
			fmt.Printf("   [M_%d] = slots %v\n", i, ws)
		}
		fmt.Printf("   refined pattern: %v\n\n", res.Q)
	}

	// The root run, with the independent noncollision verification the
	// test suite uses.
	p := pattern.Uniform(tree.Inputs(), pattern.M(0))
	res := core.Lemma41(tree, p, k)
	circ := tree.ToNetwork()
	fmt.Println("root collections verified noncolliding by symbol simulation:")
	for i, ws := range res.Sets {
		if len(ws) == 0 {
			continue
		}
		ok := pattern.Noncolliding(circ, res.Q, pattern.M(i))
		fmt.Printf("   [M_%d] (%d wires): noncolliding = %v\n", i, len(ws), ok)
	}
	idx, largest := res.LargestSet()
	fmt.Printf("\nTheorem 4.1 would now keep [M_%d] (%d wires), rename it to M_0\n", idx, len(largest))
	fmt.Println("(Lemma 3.4), and push it into the next block.")
}
