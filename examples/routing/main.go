// Routing: realize "an arbitrary fixed permutation between consecutive
// reverse delta networks" (Definition 3.4's serial composition) as an
// explicit switching network, two ways:
//
//  1. a Beneš network with the looping algorithm (2 lg n − 1 switch
//     columns, the classical optimum for rearrangeable networks), and
//  2. routing-by-sorting on the strict shuffle machine: replaying a
//     bitonic sort of the destination tags as fixed exchanges, so the
//     whole route uses only shuffle steps (depth lg²n).
//
// Both networks contain zero comparators: only "0" (pass) and "1"
// (exchange) elements of the paper's register model.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"shufflenet/internal/benes"
	"shufflenet/internal/perm"
	"shufflenet/internal/shuffle"
)

func main() {
	const n = 32
	rng := rand.New(rand.NewSource(7))

	target := perm.Random(n, rng)
	fmt.Printf("target permutation (value at i moves to target[i]):\n  %v\n", target)
	fmt.Printf("cycle structure: %d cycles, order %d, sign %+d\n\n",
		len(target.Cycles()), target.Order(), target.Sign())

	in := make([]int, n)
	for i := range in {
		in[i] = 100 + i
	}

	// 1. Beneš.
	bn := benes.Route(target)
	fmt.Printf("Beneš:          %d switch columns (%d register steps), %d comparators\n",
		benes.Columns(n), bn.Depth(), bn.Size())
	check("Beneš", bn.Eval(in), in, target)

	// 2. Shuffle-machine routing by sorting (strict "ascend" machine).
	sm := shuffle.RoutePermutation(target)
	fmt.Printf("shuffle machine: %d shuffle steps, %d comparators, shuffle-based: %v\n",
		sm.Depth(), sm.Size(), sm.IsShuffleBased())
	check("shuffle", sm.Eval(in), in, target)

	// 3. Shuffle-unshuffle machine ("ascend-descend"): one shuffle pass
	// plus one unshuffle pass with Benes looping settings.
	su := shuffle.RouteShuffleUnshuffle(target)
	fmt.Printf("shuffle+unshuffle: %d steps (2 lg n), %d comparators\n", su.Depth(), su.Size())
	check("shuffle+unshuffle", su.Eval(in), in, target)

	fmt.Println("\nboth routes are data-independent: the same fixed switches move any input")
	fmt.Println("(the paper cites 3 lg n − 4 shuffle-exchange levels as optimal [10,9,14];")
	fmt.Println(" see DESIGN.md for why the lg²n route suffices for this reproduction)")
}

func check(name string, out, in []int, target perm.Perm) {
	for i := range in {
		if out[target[i]] != in[i] {
			log.Fatalf("%s: misrouted value at input %d", name, i)
		}
	}
	fmt.Printf("  %s route correct for all %d values\n", name, len(in))
}
