// Quickstart: build Batcher's bitonic sorting network in both the
// circuit model and the paper's shuffle-based register model, sort some
// data, and verify sortedness with the 0-1 principle.
package main

import (
	"fmt"
	"log"

	"shufflenet/internal/netbuild"
	"shufflenet/internal/shuffle"
	"shufflenet/internal/sortcheck"
)

func main() {
	const n = 16

	// Circuit model: an acyclic circuit of comparators on 16 wires.
	circuit := netbuild.Bitonic(n)
	fmt.Printf("circuit model:  %v\n", circuit)

	in := []int{12, 3, 15, 0, 9, 6, 1, 14, 7, 10, 2, 13, 4, 11, 8, 5}
	fmt.Printf("input:  %v\n", in)
	fmt.Printf("output: %v\n", circuit.Eval(in))

	// Register model with every permutation the perfect shuffle —
	// the class of networks the paper proves its lower bound for.
	stone := shuffle.Bitonic(n)
	fmt.Printf("\nshuffle-based:  %v\n", stone)
	fmt.Printf("depth lg²n = %d steps, every step's permutation is the perfect shuffle: %v\n",
		stone.Depth(), stone.IsShuffleBased())
	fmt.Printf("output: %v\n", stone.Eval(in))

	// The 0-1 principle proves both are sorting networks.
	for name, ev := range map[string]sortcheck.Evaluator{"circuit": circuit, "shuffle-based": stone} {
		ok, witness := sortcheck.ZeroOne(n, ev, 0)
		if !ok {
			log.Fatalf("%s network failed on %v", name, witness)
		}
		fmt.Printf("%s network sorts all 2^%d 0-1 inputs: proven sorting network\n", name, n)
	}
}
