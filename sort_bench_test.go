package shufflenet_test

// Benchmarks for the generated sorting kernels (PR 6): the committed
// sortkernels package against slices.Sort and against interpreting the
// same depth-optimal network through Program.EvalInto, plus the
// end-to-end shufflenet.Sort dispatcher across the kernel range and
// into the fallback. BenchmarkGeneratedSort* and BenchmarkSortDispatch*
// are guarded in cmd/benchjson -diff (see Makefile BENCH_GUARDED).
//
// Methodology: each iteration copies one of a batch of pre-generated
// random slices into a scratch buffer and sorts it, so every op sorts
// genuinely unsorted data; the copy cost is identical across the
// compared implementations.

import (
	"math/rand"
	"slices"
	"strconv"
	"testing"

	"shufflenet"
	"shufflenet/internal/netbuild"
	"shufflenet/sortkernels"
)

const sortBatch = 256

func benchSort[T any](b *testing.B, n int, fill func(*rand.Rand) T, f func([]T)) {
	rng := rand.New(rand.NewSource(42))
	src := make([]T, sortBatch*n)
	for i := range src {
		src[i] = fill(rng)
	}
	buf := make([]T, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := (i % sortBatch) * n
		copy(buf, src[j:j+n])
		f(buf)
	}
}

var sortWidths = []int{2, 3, 4, 6, 8, 10, 12, 14, 16}

// BenchmarkGeneratedSort: the generated kernels against slices.Sort
// and against interpreting the identical network via Program.EvalInto,
// on random []int across the kernel widths; uint64 and float64 at the
// spot widths 8 and 16. The /baseline variant copies without sorting —
// at small widths the harness copy dominates raw ns/op, so the honest
// per-sort cost (and the ratio recorded in EXPERIMENTS.md) is
// net of it. The kernel lookup is hoisted out of the loop via
// sortkernels.IntKernel, as a width-aware hot caller would write it;
// per-call dispatch cost is BenchmarkSortDispatch's subject.
func BenchmarkGeneratedSort(b *testing.B) {
	intf := func(rng *rand.Rand) int { return int(rng.Int63()) }
	for _, n := range sortWidths {
		prog := netbuild.DepthOptimal(n).Compile()
		b.Run("int-n"+strconv.Itoa(n)+"/baseline", func(b *testing.B) {
			benchSort(b, n, intf, func(s []int) {})
		})
		b.Run("int-n"+strconv.Itoa(n)+"/kernel", func(b *testing.B) {
			benchSort(b, n, intf, sortkernels.IntKernel(n))
		})
		b.Run("int-n"+strconv.Itoa(n)+"/stdlib", func(b *testing.B) {
			benchSort(b, n, intf, slices.Sort[[]int])
		})
		b.Run("int-n"+strconv.Itoa(n)+"/interp", func(b *testing.B) {
			benchSort(b, n, intf, func(s []int) { prog.EvalInto(s, s) })
		})
	}
	for _, n := range []int{8, 16} {
		b.Run("uint64-n"+strconv.Itoa(n)+"/kernel", func(b *testing.B) {
			benchSort(b, n, (*rand.Rand).Uint64, sortkernels.Uint64Kernel(n))
		})
		b.Run("uint64-n"+strconv.Itoa(n)+"/stdlib", func(b *testing.B) {
			benchSort(b, n, (*rand.Rand).Uint64, slices.Sort[[]uint64])
		})
		b.Run("float64-n"+strconv.Itoa(n)+"/kernel", func(b *testing.B) {
			benchSort(b, n, (*rand.Rand).Float64, sortkernels.Float64Kernel(n))
		})
		b.Run("float64-n"+strconv.Itoa(n)+"/stdlib", func(b *testing.B) {
			benchSort(b, n, (*rand.Rand).Float64, slices.Sort[[]float64])
		})
	}
}

// BenchmarkSortDispatch: the public shufflenet.Sort entry point —
// kernel dispatch overhead included — against slices.Sort, through the
// kernel range (8, 16) and past it into the fallback (24, 32, 64).
func BenchmarkSortDispatch(b *testing.B) {
	intf := func(rng *rand.Rand) int { return int(rng.Int63()) }
	for _, n := range []int{8, 16, 24, 32, 64} {
		b.Run("int-n"+strconv.Itoa(n)+"/sort", func(b *testing.B) {
			benchSort(b, n, intf, shufflenet.Sort[int])
		})
		b.Run("int-n"+strconv.Itoa(n)+"/stdlib", func(b *testing.B) {
			benchSort(b, n, intf, slices.Sort[[]int])
		})
	}
}

// BenchmarkProgramEvalScratch proves the allocation-free Program
// evaluation path: EvalInto with a caller-owned scratch buffer must
// report 0 allocs/op (Eval, by contrast, allocates its result).
func BenchmarkProgramEvalScratch(b *testing.B) {
	prog := netbuild.DepthOptimal(16).Compile()
	rng := rand.New(rand.NewSource(42))
	in := make([]int, 16)
	for i := range in {
		in[i] = rng.Int()
	}
	out := make([]int, 16)
	b.Run("evalinto", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			prog.EvalInto(out, in)
		}
	})
	b.Run("eval", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = prog.Eval(in)
		}
	})
}

// The scratch path's zero-allocation property is load-bearing (the
// scalar 0-1 oracle and the dispatcher fallback rely on it), so it is
// asserted as a test too, not just visible in benchmark output.
func TestEvalIntoZeroAllocs(t *testing.T) {
	prog := netbuild.DepthOptimal(16).Compile()
	in := make([]int, 16)
	out := make([]int, 16)
	for i := range in {
		in[i] = 16 - i
	}
	if allocs := testing.AllocsPerRun(100, func() { prog.EvalInto(out, in) }); allocs != 0 {
		t.Errorf("EvalInto: %v allocs/op, want 0", allocs)
	}
}
