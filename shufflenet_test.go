package shufflenet_test

import (
	"math/rand"
	"testing"

	"shufflenet"
)

// The façade test doubles as the README quickstart: everything a
// library user touches goes through the root package.
func TestFacadeQuickstart(t *testing.T) {
	const n = 16

	c := shufflenet.Bitonic(n)
	if ok, w := shufflenet.IsSortingNetwork(c); !ok {
		t.Fatalf("bitonic rejected, witness %v", w)
	}

	r := shufflenet.ShuffleBitonic(n)
	if !r.IsShuffleBased() || r.Depth() != 16 {
		t.Fatalf("shuffle bitonic malformed: %v", r)
	}

	it := shufflenet.NewIteratedRDN(64)
	it.AddBlock(nil, shufflenet.Butterfly(6))
	it.AddBlock(shufflenet.Shuffle(64), shufflenet.Butterfly(6))
	an := shufflenet.Adversary(it)
	cert, err := shufflenet.ExtractCertificate(an)
	if err != nil {
		t.Fatalf("no certificate from a 12-level network on 64 wires: %v", err)
	}
	circ, _ := it.ToNetwork()
	if err := cert.Verify(circ); err != nil {
		t.Fatalf("certificate verification failed: %v", err)
	}
}

func TestFacadeConstructors(t *testing.T) {
	if shufflenet.NewNetwork(4).Wires() != 4 {
		t.Error("NewNetwork")
	}
	if shufflenet.OddEvenMergeSort(8).Depth() != 6 {
		t.Error("OddEvenMergeSort depth")
	}
	rng := rand.New(rand.NewSource(1))
	if shufflenet.RandomRDN(3, 1.0, rng).Inputs() != 8 {
		t.Error("RandomRDN")
	}
	if len(shufflenet.Shuffle(8)) != 8 {
		t.Error("Shuffle")
	}
}
