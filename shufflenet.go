// Package shufflenet is an executable laboratory for
//
//	C. G. Plaxton, T. Suel: "A Lower Bound for Sorting Networks Based
//	on the Shuffle Permutation", SPAA 1992,
//
// which proves that every n-input sorting network whose inter-level
// permutation is always the perfect shuffle — more generally, every
// iterated reverse delta network — has depth Ω(lg²n / lg lg n).
//
// The root package is a façade over the implementation packages:
//
//   - comparator networks in both of the paper's models
//     (circuit and register; internal/network),
//   - the shuffle-based constructions incl. Stone's lg²n-depth bitonic
//     sorter (internal/shuffle) and the classical circuit constructions
//     (internal/netbuild),
//   - reverse delta networks and iterated stacks thereof
//     (internal/delta) with Beneš routing for the inter-block
//     permutations (internal/benes),
//   - the Section 3 pattern/refinement machinery (internal/pattern),
//   - the constructive lower-bound adversary: Lemma 4.1, Theorem 4.1
//     and Corollary 4.1.1 certificates (internal/core),
//   - sorting verification via the 0-1 principle (internal/sortcheck),
//     and
//   - a practical spin-off: generated branchless sorting kernels for
//     widths 2..16 (sortkernels, emitted by cmd/netgen from the
//     curated depth-optimal networks) behind the Sort and SortFunc
//     dispatchers below.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduction results (experiments E1–E11,
// regenerable with cmd/experiments).
package shufflenet

import (
	"math/rand"

	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/netbuild"
	"shufflenet/internal/network"
	"shufflenet/internal/pattern"
	"shufflenet/internal/perm"
	"shufflenet/internal/shuffle"
	"shufflenet/internal/sortcheck"
)

// Re-exported core types. The aliases keep the implementation in the
// internal packages (whose layout mirrors the paper) while giving
// library users a single import.
type (
	// Network is a comparator network in the circuit model.
	Network = network.Network
	// Register is a comparator network in the paper's register model
	// (sequence of (Π_i, x⃗_i) steps).
	Register = network.Register
	// Comparator is a single circuit-model comparator element.
	Comparator = network.Comparator
	// Perm is a permutation of {0, ..., n−1} in one-line notation.
	Perm = perm.Perm
	// ReverseDelta is the recursive reverse delta network structure of
	// Definition 3.4.
	ReverseDelta = delta.Network
	// IteratedRDN is a (k,l)-iterated reverse delta network with
	// arbitrary inter-block permutations.
	IteratedRDN = delta.Iterated
	// Pattern is an input pattern over the paper's alphabet
	// {S_i, X_ij, M_i, L_i}.
	Pattern = pattern.Pattern
	// Analysis is the outcome of the constructive Theorem 4.1.
	Analysis = core.Analysis
	// Certificate is a Corollary 4.1.1 witness of non-sortability.
	Certificate = core.Certificate
	// Program is a compiled comparator network: a branch-free flat
	// comparator stream with allocation-free scalar evaluation
	// (EvalInto) and a bit-sliced 0-1 kernel (EvalBits, 64 inputs per
	// word) — the engine behind IsSortingNetwork and the exhaustive
	// checkers.
	Program = network.Program
)

// NewNetwork returns an empty circuit-model network on n wires.
func NewNetwork(n int) *Network { return network.New(n) }

// Bitonic returns Batcher's bitonic sorting network (circuit model):
// depth lg n (lg n + 1)/2.
func Bitonic(n int) *Network { return netbuild.Bitonic(n) }

// OddEvenMergeSort returns Batcher's odd-even merge sorting network.
func OddEvenMergeSort(n int) *Network { return netbuild.OddEvenMergeSort(n) }

// ShuffleBitonic returns Stone's strictly shuffle-based realization of
// the bitonic sorter: depth lg²n with Π_i the perfect shuffle at every
// step — the paper's upper-bound reference point.
func ShuffleBitonic(n int) *Register { return shuffle.Bitonic(n) }

// Butterfly returns the l-level butterfly as a reverse delta network.
func Butterfly(l int) *ReverseDelta { return delta.Butterfly(l) }

// RandomRDN returns a random l-level reverse delta network with the
// given comparator density in [0, 1].
func RandomRDN(l int, density float64, rng *rand.Rand) *ReverseDelta {
	return delta.Random(l, density, rng)
}

// NewIteratedRDN returns an empty iterated reverse delta network on
// n = 2^d slots; add blocks with AddBlock/AddForest.
func NewIteratedRDN(n int) *IteratedRDN { return delta.NewIterated(n) }

// Pratt returns Pratt's Θ(lg²n)-depth Shellsort sorting network — the
// class of networks behind Cypher's lower bound that this paper builds
// on.
func Pratt(n int) *Network { return netbuild.Pratt(n) }

// DecomposeIterated recovers the iterated reverse delta structure of a
// bare circuit with blocks of l levels, enabling the adversary to
// attack networks given only as circuits. ok is false when the circuit
// is not in the paper's class.
func DecomposeIterated(c *Network, l int) (*IteratedRDN, bool) {
	return delta.DecomposeIterated(c, l)
}

// Shuffle returns the perfect shuffle permutation on n = 2^d elements.
func Shuffle(n int) Perm { return perm.Shuffle(n) }

// IsSortingNetwork decides by the 0-1 principle (exhaustively, on the
// bit-sliced kernel, in parallel) whether the circuit sorts; it returns
// a failing 0-1 input as witness otherwise. The width must be at most
// sortcheck.MaxZeroOneWires (32).
func IsSortingNetwork(c *Network) (ok bool, witness []int) {
	return sortcheck.ZeroOne(c.Wires(), c, 0)
}

// Compile flattens the circuit into its compiled Program form: the
// allocation-free scalar and bit-sliced 0-1 evaluation engine.
func Compile(c *Network) *Program { return network.Compile(c) }

// CompileRegister flattens a register-model network into a Program via
// the Section 1 model equivalence.
func CompileRegister(r *Register) *Program { return network.CompileRegister(r) }

// Adversary runs the paper's constructive lower-bound argument
// (Theorem 4.1 with the paper's parameter k = lg n) against an iterated
// reverse delta network, returning the surviving noncolliding set and
// per-block reports.
func Adversary(it *IteratedRDN) *Analysis { return core.Theorem41(it, 0) }

// ExtractCertificate turns an Analysis with |D| >= 2 into a concrete,
// independently verifiable witness that the network is not a sorting
// network (Corollary 4.1.1); it returns core.ErrSetTooSmall otherwise.
func ExtractCertificate(an *Analysis) (*Certificate, error) { return an.Certificate() }
