package shufflenet_test

import (
	"encoding/binary"
	"math"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"shufflenet"
	"shufflenet/internal/network"
	"shufflenet/sortkernels"
)

// Sort must agree with slices.Sort on every element type it fast-paths,
// across every width from the trivial cases through the kernel range
// and into the fallback.
func TestSortMatchesSlicesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 2*sortkernels.MaxWidth; n++ {
		for trial := 0; trial < 50; trial++ {
			ints := make([]int, n)
			for i := range ints {
				ints[i] = rng.Intn(8) - 4 // dense duplicates
			}
			us := make([]uint64, n)
			fs := make([]float64, n)
			ss := make([]string, n)
			for i := range us {
				us[i] = rng.Uint64()
				fs[i] = rng.NormFloat64()
				ss[i] = strings.Repeat("ab", rng.Intn(3)) + string(rune('a'+rng.Intn(26)))
			}
			checkSort(t, ints)
			checkSort(t, us)
			checkSort(t, fs)
			checkSort(t, ss)
		}
	}
}

func checkSort[T interface {
	~int | ~uint64 | ~float64 | ~string
}](t *testing.T, in []T) {
	t.Helper()
	got := slices.Clone(in)
	want := slices.Clone(in)
	shufflenet.Sort(got)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatalf("Sort(%v) = %v, want %v", in, got, want)
	}
}

// Sort on float64 must match slices.Sort even with NaNs in the input:
// the fast path detects them and delegates, so NaNs come out first and
// the rest sorted.
func TestSortFloat64NaNMatchesSlicesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nan := math.NaN()
	for n := 2; n <= sortkernels.MaxWidth; n++ {
		for trial := 0; trial < 50; trial++ {
			in := make([]float64, n)
			nans := 0
			for i := range in {
				if rng.Intn(3) == 0 {
					in[i] = nan
					nans++
				} else {
					in[i] = float64(rng.Intn(5))
				}
			}
			got := slices.Clone(in)
			shufflenet.Sort(got)
			gotNaNs := 0
			for _, v := range got {
				if math.IsNaN(v) {
					gotNaNs++
				}
			}
			if gotNaNs != nans {
				t.Fatalf("Sort(%v) = %v: %d NaNs in, %d out", in, got, nans, gotNaNs)
			}
			// slices.Sort parity: NaNs first, then ascending.
			if !slices.IsSorted(got[nans:]) {
				t.Fatalf("Sort(%v) = %v: non-NaN tail unsorted", in, got)
			}
			for _, v := range got[:nans] {
				if !math.IsNaN(v) {
					t.Fatalf("Sort(%v) = %v: NaNs not placed first", in, got)
				}
			}
		}
	}
}

func TestSortFunc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 2*sortkernels.MaxWidth; n++ {
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(10)
		}
		got := slices.Clone(in)
		shufflenet.SortFunc(got, func(a, b int) bool { return a > b }) // descending
		want := slices.Clone(in)
		slices.Sort(want)
		slices.Reverse(want)
		if !slices.Equal(got, want) {
			t.Fatalf("SortFunc(%v, >) = %v, want %v", in, got, want)
		}
	}
}

// Every committed kernel width is verified two ways, both exhaustive:
// the schedule data the kernels were generated from is rebuilt into a
// Program and checked over all 2^n 0-1 inputs on the bit-sliced (SWAR)
// kernel, and the compiled int kernel itself is executed on all 2^n
// 0-1 inputs (the 0-1 principle then covers arbitrary ordered inputs,
// since the kernel is a fixed comparator schedule).
func TestKernelsSortAllZeroOneInputs(t *testing.T) {
	for _, n := range sortkernels.Widths() {
		// 1. schedule data, bit-sliced
		c := network.New(n)
		for _, lv := range sortkernels.Levels(n) {
			level := make(network.Level, 0, len(lv))
			for _, p := range lv {
				level = append(level, network.Comparator{Min: p[0], Max: p[1]})
			}
			c.AddLevel(level)
		}
		p := c.Compile()
		for i, g := range sortkernels.OutputPerm(n) {
			if i != g {
				t.Fatalf("width %d: committed kernel has a non-identity output permutation", n)
			}
		}
		state := make([]uint64, n)
		for base := 0; base < 1<<n; base += 64 {
			for w := 0; w < n; w++ {
				var word uint64
				for lane := 0; lane < 64 && base+lane < 1<<n; lane++ {
					if (base+lane)>>w&1 == 1 {
						word |= 1 << lane
					}
				}
				state[w] = word
			}
			p.EvalBits(state)
			for w := 0; w+1 < n; w++ {
				if bad := state[w] &^ state[w+1]; bad != 0 {
					t.Fatalf("width %d: schedule fails 0-1 input near mask %d", n, base)
				}
			}
		}
		// 2. the compiled kernel itself, scalar
		in := make([]int, n)
		for mask := 0; mask < 1<<n; mask++ {
			ones := 0
			for w := 0; w < n; w++ {
				in[w] = mask >> w & 1
				ones += in[w]
			}
			if !sortkernels.Int(in) {
				t.Fatalf("width %d: no int kernel", n)
			}
			for w := 0; w < n; w++ {
				want := 0
				if w >= n-ones {
					want = 1
				}
				if in[w] != want {
					t.Fatalf("width %d: Sort%dInt fails 0-1 input mask %d: %v", n, n, mask, in)
				}
			}
		}
	}
}

// The kernel metadata must match the curated networks' shape: widths
// 2..16 contiguous, depths at the proven optima recorded in netbuild.
func TestKernelMeta(t *testing.T) {
	widths := sortkernels.Widths()
	if len(widths) != sortkernels.MaxWidth-sortkernels.MinWidth+1 {
		t.Fatalf("Widths() = %v: not contiguous over [%d, %d]", widths, sortkernels.MinWidth, sortkernels.MaxWidth)
	}
	wantDepth := []int{0, 0, 1, 3, 3, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 9, 9}
	for _, n := range widths {
		if got := sortkernels.Depth(n); got != wantDepth[n] {
			t.Errorf("Depth(%d) = %d, want proven optimum %d", n, got, wantDepth[n])
		}
		if got := sortkernels.Size(n); got != len(flatten(sortkernels.Levels(n))) {
			t.Errorf("Size(%d) = %d disagrees with Levels", n, got)
		}
	}
}

func flatten(levels [][][2]int) [][2]int {
	var out [][2]int
	for _, lv := range levels {
		out = append(out, lv...)
	}
	return out
}

// FuzzSortT cross-checks Sort against slices.Sort on fuzzer-chosen
// inputs for every fast-pathed element type. Float64 lanes skip NaN
// payloads (NaN ordering is documented as unspecified); the multiset
// property under NaN has its own test.
func FuzzSortT(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 8*64 {
			data = data[:8*64]
		}
		n := len(data) / 8
		ints := make([]int, 0, n)
		us := make([]uint64, 0, n)
		fs := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			u := binary.LittleEndian.Uint64(data[8*i:])
			ints = append(ints, int(u))
			us = append(us, u)
			if f := math.Float64frombits(u); !math.IsNaN(f) {
				fs = append(fs, f)
			}
		}
		ss := make([]string, 0, len(data)%17)
		for i := 0; i < cap(ss); i++ {
			ss = append(ss, string(data[i%max(1, len(data)):]))
		}
		checkSort(t, ints)
		checkSort(t, us)
		checkSort(t, fs)
		checkSort(t, ss)
	})
}
