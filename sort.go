package shufflenet

import (
	"cmp"
	"slices"

	"shufflenet/sortkernels"
)

// Sort sorts s in place in ascending order. For len(s) <=
// sortkernels.MaxWidth (16) it dispatches to a generated
// sorting-network kernel — the curated depth-optimal comparator
// schedule for that width, fully unrolled with every element held in a
// local, so the int, uint64 and float64 element types take concrete
// fast paths whose compare-exchanges compile to conditional moves
// rather than branches. Longer slices fall back to slices.Sort.
//
// Semantics match slices.Sort exactly, NaNs included: a comparator
// network cannot order elements an incomparable NaN sits between, so
// the float64 fast path first scans for NaN (a handful of self-compares)
// and hands any hit to slices.Sort, which places NaNs first.
func Sort[T cmp.Ordered](s []T) {
	if len(s) <= sortkernels.MaxWidth {
		switch v := any(s).(type) {
		case []int:
			if sortkernels.Int(v) {
				return
			}
		case []uint64:
			if sortkernels.Uint64(v) {
				return
			}
		case []float64:
			if hasNaN(v) {
				break
			}
			if sortkernels.Float64(v) {
				return
			}
		default:
			if sortkernels.Ordered(s) {
				return
			}
		}
	}
	slices.Sort(s)
}

// hasNaN reports whether s contains a NaN (the only value with v != v).
func hasNaN(s []float64) bool {
	for _, v := range s {
		if v != v {
			return true
		}
	}
	return false
}

// SortFunc sorts s in place by the strict weak ordering less,
// dispatching to the generated network kernels below
// sortkernels.MaxWidth elements exactly like Sort (one less call per
// comparator) and to slices.SortFunc above. The sort is not stable.
func SortFunc[T any](s []T, less func(a, b T) bool) {
	if len(s) <= sortkernels.MaxWidth && sortkernels.Func(s, less) {
		return
	}
	slices.SortFunc(s, func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		}
		return 0
	})
}
