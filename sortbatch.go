package shufflenet

import (
	"cmp"
	"fmt"
	"sync"

	"shufflenet/sortkernels"
)

// batchMinRows is the row count below which the contiguous-layout
// batch entry points sort per slice instead: with only a few rows the
// per-call batch overhead (pooled scratch, SIMD transpose) outweighs
// the amortized comparator win.
const batchMinRows = 8

// SortBatchCols sorts every logical row of a column-major batch in
// place: data holds n = len(data)/m columns of length m, column w at
// data[w*m:(w+1)*m], and row r is the n values {data[w*m+r]}. This is
// the fastest batch layout — each comparator of the width-n network
// becomes one min/max pass across all rows at once (AVX-512 on
// supporting amd64 CPUs, branchless Go elsewhere), with no transpose
// and no allocation.
//
// len(data) must be a multiple of m (it panics otherwise: a malformed
// shape cannot be sorted meaningfully). Widths above
// sortkernels.BatchMaxWidth (16) and float64 batches containing NaN
// are handled row by row with Sort semantics.
func SortBatchCols[T cmp.Ordered](data []T, m int) {
	if m <= 0 {
		if len(data) != 0 || m < 0 {
			panic(fmt.Sprintf("shufflenet: SortBatchCols: %d elements cannot form columns of length %d", len(data), m))
		}
		return
	}
	n := len(data) / m
	if n*m != len(data) {
		panic(fmt.Sprintf("shufflenet: SortBatchCols: %d elements cannot form columns of length %d", len(data), m))
	}
	if n < 2 {
		return
	}
	switch s := any(data).(type) {
	case []int:
		if sortkernels.BatchInt(s, m) {
			return
		}
	case []uint64:
		if sortkernels.BatchUint64(s, m) {
			return
		}
	case []float64:
		if hasNaN(s) {
			break
		}
		if sortkernels.BatchFloat64(s, m) {
			return
		}
	default:
		if sortkernels.BatchOrdered(data, m) {
			return
		}
	}
	// No kernel of this width (or NaNs present): gather each strided
	// row, sort it with full Sort semantics, scatter it back.
	row := make([]T, n)
	for r := 0; r < m; r++ {
		for w := 0; w < n; w++ {
			row[w] = data[w*m+r]
		}
		Sort(row)
		for w := 0; w < n; w++ {
			data[w*m+r] = row[w]
		}
	}
}

// SortBatchFlat sorts every contiguous width-sized row of a row-major
// batch in place: data holds m = len(data)/width rows, row r at
// data[r*width:(r+1)*width]. For kernel widths (2..16) and enough rows
// it runs the columnar batch kernels through pooled transpose scratch;
// otherwise it sorts row by row.
//
// len(data) must be a multiple of width (it panics otherwise). Float64
// batches containing NaN fall back to per-row Sort semantics.
func SortBatchFlat[T cmp.Ordered](data []T, width int) {
	if width <= 0 {
		if len(data) != 0 || width < 0 {
			panic(fmt.Sprintf("shufflenet: SortBatchFlat: %d elements cannot form rows of width %d", len(data), width))
		}
		return
	}
	m := len(data) / width
	if m*width != len(data) {
		panic(fmt.Sprintf("shufflenet: SortBatchFlat: %d elements cannot form rows of width %d", len(data), width))
	}
	if width < 2 {
		return
	}
	if width <= sortkernels.BatchMaxWidth && m >= batchMinRows {
		switch s := any(data).(type) {
		case []int:
			if sortkernels.BatchFlatInt(s, width) {
				return
			}
		case []uint64:
			if sortkernels.BatchFlatUint64(s, width) {
				return
			}
		case []float64:
			if hasNaN(s) {
				break
			}
			if sortkernels.BatchFlatFloat64(s, width) {
				return
			}
		default:
			if sortkernels.BatchFlatOrdered(data, width) {
				return
			}
		}
	}
	for r := 0; r < m; r++ {
		Sort(data[r*width : (r+1)*width])
	}
}

// Pooled row-major gather buffers for SortBatch's concrete fast paths.
var (
	batchIntPool     = sync.Pool{New: func() any { return new([]int) }}
	batchUint64Pool  = sync.Pool{New: func() any { return new([]uint64) }}
	batchFloat64Pool = sync.Pool{New: func() any { return new([]float64) }}
)

// sortBatchGathered runs the gather → batch kernel → scatter cycle for
// one concrete element type.
func sortBatchGathered[T cmp.Ordered](batch [][]T, width int, pool *sync.Pool) {
	sp := pool.Get().(*[]T)
	s := *sp
	if cap(s) < width*len(batch) {
		s = make([]T, width*len(batch))
	}
	s = s[:width*len(batch)]
	for r, row := range batch {
		copy(s[r*width:], row)
	}
	SortBatchFlat(s, width)
	for r, row := range batch {
		copy(row, s[r*width:(r+1)*width])
	}
	*sp = s
	pool.Put(sp)
}

// SortBatch sorts every slice of batch in place. When the slices share
// one kernel width (2..16) and the batch is big enough to amortize the
// gather, the concrete int, uint64 and float64 element types are
// copied through a pooled row-major buffer and sorted by the columnar
// batch kernels in one pass; everything else — ragged batches, long or
// tiny slices, other element types, float64 batches containing NaN —
// is sorted slice by slice with Sort. Either way the result equals
// calling Sort on every slice.
func SortBatch[T cmp.Ordered](batch [][]T) {
	if len(batch) >= batchMinRows {
		width := len(batch[0])
		uniform := width >= 2 && width <= sortkernels.BatchMaxWidth
		for _, row := range batch {
			if len(row) != width {
				uniform = false
				break
			}
		}
		if uniform {
			switch b := any(batch).(type) {
			case [][]int:
				sortBatchGathered(b, width, &batchIntPool)
				return
			case [][]uint64:
				sortBatchGathered(b, width, &batchUint64Pool)
				return
			case [][]float64:
				nan := false
				for _, row := range b {
					if hasNaN(row) {
						nan = true
						break
					}
				}
				if !nan {
					sortBatchGathered(b, width, &batchFloat64Pool)
					return
				}
			}
		}
	}
	for _, row := range batch {
		Sort(row)
	}
}
