package shufflenet

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"slices"
	"testing"

	"shufflenet/sortkernels"
)

// eachBatchImpl runs fn once per available batch implementation (pure
// Go always; AVX-512 when this CPU has it), pinning the SIMD switch
// for the duration.
func eachBatchImpl(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	impls := []struct {
		name string
		simd bool
	}{{"go", false}, {"simd", true}}
	for _, impl := range impls {
		if impl.simd && !sortkernels.BatchSIMDAvailable() {
			t.Run(impl.name, func(t *testing.T) { t.Skip("no AVX-512 on this CPU") })
			continue
		}
		t.Run(impl.name, func(t *testing.T) {
			prev := sortkernels.SetBatchSIMD(impl.simd)
			defer sortkernels.SetBatchSIMD(prev)
			fn(t)
		})
	}
}

// TestBatchKernelsSortAllZeroOneInputs is the exhaustive 0-1
// verification of every committed batch kernel: for each width n, one
// batch holding all 2^n bit rows, sorted in a single call, for both
// layouts, every element family, and every implementation. By the 0-1
// principle a width-n kernel that sorts all 2^n such rows sorts
// everything.
func TestBatchKernelsSortAllZeroOneInputs(t *testing.T) {
	eachBatchImpl(t, func(t *testing.T) {
		for _, n := range sortkernels.BatchWidths() {
			rows := 1 << n
			bit := func(r, w int) int { return r >> w & 1 }
			checkRow := func(layout string, r int, got func(w int) int) {
				ones := bits.OnesCount(uint(r))
				for w := 0; w < n; w++ {
					want := 0
					if w >= n-ones {
						want = 1
					}
					if got(w) != want {
						t.Fatalf("n=%d %s: mask %#x: slot %d = %d, want %d", n, layout, r, w, got(w), want)
					}
				}
			}

			// Column-major: element (row r, slot w) at data[w*rows+r].
			cols := make([]int, n*rows)
			colsU := make([]uint64, n*rows)
			colsF := make([]float64, n*rows)
			colsS := make([]string, n*rows)
			for r := 0; r < rows; r++ {
				for w := 0; w < n; w++ {
					b := bit(r, w)
					i := w*rows + r
					cols[i], colsU[i], colsF[i], colsS[i] = b, uint64(b), float64(b), fmt.Sprint(b)
				}
			}
			for name, ok := range map[string]bool{
				"int":     sortkernels.BatchInt(cols, rows),
				"uint64":  sortkernels.BatchUint64(colsU, rows),
				"float64": sortkernels.BatchFloat64(colsF, rows),
				"ordered": sortkernels.BatchOrdered(colsS, rows),
			} {
				if !ok {
					t.Fatalf("n=%d: Batch %s kernel missing", n, name)
				}
			}
			for r := 0; r < rows; r++ {
				checkRow("cols/int", r, func(w int) int { return cols[w*rows+r] })
				checkRow("cols/uint64", r, func(w int) int { return int(colsU[w*rows+r]) })
				checkRow("cols/float64", r, func(w int) int { return int(colsF[w*rows+r]) })
				checkRow("cols/ordered", r, func(w int) int { return int(colsS[w*rows+r][0] - '0') })
			}

			// Row-major: element (row r, slot w) at data[r*n+w].
			flat := make([]int, n*rows)
			flatU := make([]uint64, n*rows)
			flatF := make([]float64, n*rows)
			flatS := make([]string, n*rows)
			for r := 0; r < rows; r++ {
				for w := 0; w < n; w++ {
					b := bit(r, w)
					i := r*n + w
					flat[i], flatU[i], flatF[i], flatS[i] = b, uint64(b), float64(b), fmt.Sprint(b)
				}
			}
			for name, ok := range map[string]bool{
				"int":     sortkernels.BatchFlatInt(flat, n),
				"uint64":  sortkernels.BatchFlatUint64(flatU, n),
				"float64": sortkernels.BatchFlatFloat64(flatF, n),
				"ordered": sortkernels.BatchFlatOrdered(flatS, n),
			} {
				if !ok {
					t.Fatalf("n=%d: BatchFlat %s kernel missing", n, name)
				}
			}
			for r := 0; r < rows; r++ {
				checkRow("flat/int", r, func(w int) int { return flat[r*n+w] })
				checkRow("flat/uint64", r, func(w int) int { return int(flatU[r*n+w]) })
				checkRow("flat/float64", r, func(w int) int { return int(flatF[r*n+w]) })
				checkRow("flat/ordered", r, func(w int) int { return int(flatS[r*n+w][0] - '0') })
			}
		}
	})
}

// batchRowCounts exercises full 8-row groups, sub-group batches, and
// every tail residue of the SIMD kernels.
var batchRowCounts = []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 63, 64, 100}

// TestBatchKernelsMatchSlicesSort differentially checks the batch
// kernels against slices.Sort on random rows, over every width, tail
// shape, layout and implementation.
func TestBatchKernelsMatchSlicesSort(t *testing.T) {
	eachBatchImpl(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for _, n := range sortkernels.BatchWidths() {
			for _, m := range batchRowCounts {
				vals := make([]uint64, n*m)
				for i := range vals {
					// Small range forces duplicate-heavy rows.
					if rng.Intn(2) == 0 {
						vals[i] = uint64(rng.Intn(4))
					} else {
						vals[i] = rng.Uint64()
					}
				}
				cols := slices.Clone(vals)
				colsI := make([]int, len(vals))
				colsF := make([]float64, len(vals))
				for i, v := range vals {
					colsI[i] = int(v)
					colsF[i] = float64(v >> 12) // 52 bits: exact, NaN-free
				}
				// Per-type expectations: signed, unsigned and float
				// orderings differ, so each domain sorts its own rows.
				want := make([][]uint64, m)
				wantI := make([][]int, m)
				wantF := make([][]float64, m)
				for r := 0; r < m; r++ {
					want[r] = make([]uint64, n)
					wantI[r] = make([]int, n)
					wantF[r] = make([]float64, n)
					for w := 0; w < n; w++ {
						want[r][w] = vals[w*m+r]
						wantI[r][w] = colsI[w*m+r]
						wantF[r][w] = colsF[w*m+r]
					}
					slices.Sort(want[r])
					slices.Sort(wantI[r])
					slices.Sort(wantF[r])
				}
				if !sortkernels.BatchUint64(cols, m) || !sortkernels.BatchInt(colsI, m) || !sortkernels.BatchFloat64(colsF, m) {
					t.Fatalf("n=%d m=%d: batch kernel missing", n, m)
				}
				flat := make([]uint64, len(vals))
				for r := 0; r < m; r++ {
					for w := 0; w < n; w++ {
						flat[r*n+w] = vals[w*m+r]
					}
				}
				if !sortkernels.BatchFlatUint64(flat, n) {
					t.Fatalf("n=%d m=%d: flat batch kernel missing", n, m)
				}
				for r := 0; r < m; r++ {
					for w := 0; w < n; w++ {
						if cols[w*m+r] != want[r][w] {
							t.Fatalf("n=%d m=%d cols/uint64: row %d slot %d = %d, want %d", n, m, r, w, cols[w*m+r], want[r][w])
						}
						if got := colsI[w*m+r]; got != wantI[r][w] {
							t.Fatalf("n=%d m=%d cols/int: row %d slot %d = %d, want %d", n, m, r, w, got, wantI[r][w])
						}
						if got := colsF[w*m+r]; got != wantF[r][w] {
							t.Fatalf("n=%d m=%d cols/float64: row %d slot %d = %v, want %v", n, m, r, w, got, wantF[r][w])
						}
						if flat[r*n+w] != want[r][w] {
							t.Fatalf("n=%d m=%d flat/uint64: row %d slot %d = %d, want %d", n, m, r, w, flat[r*n+w], want[r][w])
						}
					}
				}
			}
		}
	})
}

// TestBatchFloat64PreservesBitMultiset pins the float comparator's bit
// fidelity: rows full of ±0 (and signed extremes) keep the exact bit
// patterns as a multiset — the compare+blend SIMD comparator and the
// Go min/max builtins both move values, never canonicalize them.
func TestBatchFloat64PreservesBitMultiset(t *testing.T) {
	eachBatchImpl(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		negZero := math.Copysign(0, -1)
		pool := []float64{0, negZero, 1, -1, math.Inf(1), math.Inf(-1), 5e-324, math.MaxFloat64, -5e-324}
		for _, n := range sortkernels.BatchWidths() {
			for _, m := range []int{1, 7, 8, 33} {
				data := make([]float64, n*m)
				for i := range data {
					data[i] = pool[rng.Intn(len(pool))]
				}
				wantBits := make([][]uint64, m)
				for r := 0; r < m; r++ {
					row := make([]uint64, n)
					for w := 0; w < n; w++ {
						row[w] = math.Float64bits(data[w*m+r])
					}
					slices.Sort(row)
					wantBits[r] = row
				}
				if !sortkernels.BatchFloat64(data, m) {
					t.Fatalf("n=%d: no float64 batch kernel", n)
				}
				for r := 0; r < m; r++ {
					row := make([]uint64, n)
					for w := 0; w < n; w++ {
						if w > 0 && data[w*m+r] < data[(w-1)*m+r] {
							t.Fatalf("n=%d m=%d row %d not sorted", n, m, r)
						}
						row[w] = math.Float64bits(data[w*m+r])
					}
					slices.Sort(row)
					if !slices.Equal(row, wantBits[r]) {
						t.Fatalf("n=%d m=%d row %d: bit multiset changed: %x != %x", n, m, r, row, wantBits[r])
					}
				}
			}
		}
	})
}

// TestBatchRejectsBadShapes pins the dispatcher contract: impossible
// shapes report false and leave the data untouched.
func TestBatchRejectsBadShapes(t *testing.T) {
	data := []int{3, 1, 2}
	for _, tc := range []struct {
		name string
		ok   bool
	}{
		{"non-multiple", sortkernels.BatchInt(data, 2)},
		{"negative", sortkernels.BatchInt(data, -1)},
		{"zero rows", sortkernels.BatchInt(data, 0)},
		{"flat non-multiple", sortkernels.BatchFlatInt(data, 2)},
		{"flat zero width", sortkernels.BatchFlatInt(data, 0)},
		{"too wide", sortkernels.BatchInt(make([]int, sortkernels.BatchMaxWidth+1), 1)},
		{"flat too wide", sortkernels.BatchFlatInt(make([]int, sortkernels.BatchMaxWidth+1), sortkernels.BatchMaxWidth+1)},
	} {
		if tc.ok {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if !slices.Equal(data, []int{3, 1, 2}) {
		t.Errorf("rejected batch was modified: %v", data)
	}
	for _, tc := range []struct {
		name string
		ok   bool
	}{
		{"empty", sortkernels.BatchInt(nil, 0)},
		{"empty rows", sortkernels.BatchInt(nil, 7)},
		{"width 1", sortkernels.BatchInt([]int{2, 1}, 2)},
		{"flat empty", sortkernels.BatchFlatInt(nil, 3)},
		{"flat width 1", sortkernels.BatchFlatInt([]int{2, 1}, 1)},
	} {
		if !tc.ok {
			t.Errorf("%s: rejected", tc.name)
		}
	}
}

// sortBatchWant returns the batch with every row sorted by slices.Sort
// (the semantics SortBatch promises).
func sortBatchWant[T cmp.Ordered](batch [][]T) [][]T {
	want := make([][]T, len(batch))
	for i, row := range batch {
		want[i] = slices.Clone(row)
		slices.Sort(want[i])
	}
	return want
}

func checkBatchEqual[T cmp.Ordered](t *testing.T, name string, got, want [][]T) {
	t.Helper()
	for r := range want {
		for i := range want[r] {
			if cmp.Compare(got[r][i], want[r][i]) != 0 {
				t.Fatalf("%s: row %d slot %d = %v, want %v", name, r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestSortBatchMatchesSort checks the [][]T façade end to end: kernel
// widths, oversized widths, tiny batches, ragged batches, generic
// element types, and float64 rows containing NaN all end up exactly as
// if Sort ran on every row.
func TestSortBatchMatchesSort(t *testing.T) {
	eachBatchImpl(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(3))
		for _, n := range []int{0, 1, 2, 3, 8, 16, 17, 40} {
			for _, m := range []int{0, 1, 3, 8, 100} {
				batch := make([][]int, m)
				fbatch := make([][]float64, m)
				sbatch := make([][]string, m)
				for r := range batch {
					batch[r] = make([]int, n)
					fbatch[r] = make([]float64, n)
					sbatch[r] = make([]string, n)
					for w := 0; w < n; w++ {
						v := rng.Intn(64) - 32
						batch[r][w] = v
						fbatch[r][w] = float64(v) / 2
						sbatch[r][w] = fmt.Sprintf("%03d", v+32)
					}
					if n > 0 && rng.Intn(4) == 0 {
						fbatch[r][rng.Intn(n)] = math.NaN()
					}
				}
				want, fwant, swant := sortBatchWant(batch), sortBatchWant(fbatch), sortBatchWant(sbatch)
				SortBatch(batch)
				SortBatch(fbatch)
				SortBatch(sbatch)
				name := fmt.Sprintf("n=%d m=%d", n, m)
				checkBatchEqual(t, name+" int", batch, want)
				checkBatchEqual(t, name+" float64", fbatch, fwant)
				checkBatchEqual(t, name+" string", sbatch, swant)
			}
		}

		// Ragged batch: falls back to per-slice Sort.
		ragged := [][]int{{3, 1, 2}, {5, 4}, {}, {9, 8, 7, 6, 5, 4, 3, 2, 1}, {1}, {2, 1}, {6, 6, 6}, {0, -1}, {10, 3}}
		want := sortBatchWant(ragged)
		SortBatch(ragged)
		checkBatchEqual(t, "ragged", ragged, want)
	})
}

// TestSortBatchColsAndFlat checks the two in-place layout façades,
// including the strided gather fallback above the kernel widths and
// the NaN fallback.
func TestSortBatchColsAndFlat(t *testing.T) {
	eachBatchImpl(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(5))
		for _, n := range []int{2, 3, 8, 16, 17, 40} {
			for _, m := range []int{1, 3, 8, 100} {
				rows := make([][]float64, m)
				for r := range rows {
					rows[r] = make([]float64, n)
					for w := range rows[r] {
						rows[r][w] = float64(rng.Intn(32))
					}
					if rng.Intn(3) == 0 {
						rows[r][rng.Intn(n)] = math.NaN()
					}
				}
				want := sortBatchWant(rows)

				cols := make([]float64, n*m)
				flat := make([]float64, n*m)
				for r := 0; r < m; r++ {
					for w := 0; w < n; w++ {
						cols[w*m+r] = rows[r][w]
						flat[r*n+w] = rows[r][w]
					}
				}
				SortBatchCols(cols, m)
				SortBatchFlat(flat, n)
				for r := 0; r < m; r++ {
					for w := 0; w < n; w++ {
						if cmp.Compare(cols[w*m+r], want[r][w]) != 0 {
							t.Fatalf("cols n=%d m=%d row %d slot %d = %v, want %v", n, m, r, w, cols[w*m+r], want[r][w])
						}
						if cmp.Compare(flat[r*n+w], want[r][w]) != 0 {
							t.Fatalf("flat n=%d m=%d row %d slot %d = %v, want %v", n, m, r, w, flat[r*n+w], want[r][w])
						}
					}
				}
			}
		}

		// Generic element type through the Ordered batch kernels.
		words := []string{"pear", "fig", "apple", "yuzu", "kiwi", "date", "plum", "lime"}
		m := 37
		colsS := make([]string, 4*m)
		for i := range colsS {
			colsS[i] = words[rng.Intn(len(words))]
		}
		wantS := make([][]string, m)
		for r := 0; r < m; r++ {
			wantS[r] = []string{colsS[r], colsS[m+r], colsS[2*m+r], colsS[3*m+r]}
			slices.Sort(wantS[r])
		}
		SortBatchCols(colsS, m)
		for r := 0; r < m; r++ {
			for w := 0; w < 4; w++ {
				if colsS[w*m+r] != wantS[r][w] {
					t.Fatalf("cols strings: row %d slot %d = %q, want %q", r, w, colsS[w*m+r], wantS[r][w])
				}
			}
		}
	})
}

// TestSortBatchPanicsOnBadShape pins the façade contract for shapes no
// batch can have.
func TestSortBatchPanicsOnBadShape(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("cols non-multiple", func() { SortBatchCols([]int{1, 2, 3}, 2) })
	mustPanic("cols negative", func() { SortBatchCols([]int{1, 2, 3}, -1) })
	mustPanic("cols zero rows", func() { SortBatchCols([]int{1, 2, 3}, 0) })
	mustPanic("flat non-multiple", func() { SortBatchFlat([]int{1, 2, 3}, 2) })
	mustPanic("flat negative", func() { SortBatchFlat([]int{1, 2, 3}, -1) })
	mustPanic("flat zero width", func() { SortBatchFlat([]int{1, 2, 3}, 0) })
	// Degenerate-but-consistent shapes are fine.
	SortBatchCols([]int(nil), 0)
	SortBatchFlat([]int(nil), 0)
	SortBatchCols([]int{5, 1}, 2) // single column
	SortBatchFlat([]int{5, 1}, 1) // width-1 rows
}

// TestSortDispatchZeroAlloc pins the dispatch paths as allocation-free:
// Sort's kernel lookup is a width-indexed table load, and the columnar
// batch entry point runs fully in place.
func TestSortDispatchZeroAlloc(t *testing.T) {
	s := []int{5, 2, 7, 1, 8, 3, 6, 4}
	if n := testing.AllocsPerRun(100, func() { Sort(s) }); n != 0 {
		t.Errorf("Sort int8: %v allocs per run, want 0", n)
	}
	f := []float64{5, 2, 7, 1, 8, 3, 6, 4}
	if n := testing.AllocsPerRun(100, func() { Sort(f) }); n != 0 {
		t.Errorf("Sort float64: %v allocs per run, want 0", n)
	}
	cols := make([]int, 8*128)
	if n := testing.AllocsPerRun(100, func() { SortBatchCols(cols, 128) }); n != 0 {
		t.Errorf("SortBatchCols: %v allocs per run, want 0", n)
	}
	// The flat and [][]T paths go through pooled scratch: steady state
	// must not allocate per call (the pool may refill occasionally
	// after a GC, hence the < 1 bound on the average).
	flat := make([]int, 8*128)
	if n := testing.AllocsPerRun(100, func() { SortBatchFlat(flat, 8) }); n >= 1 {
		t.Errorf("SortBatchFlat: %v allocs per run, want < 1", n)
	}
}

// FuzzSortBatch cross-checks the batch façades against slices.Sort on
// fuzzer-chosen shapes and values, including ragged batches and NaN
// payloads (compared under cmp.Compare, which treats NaNs as equal).
func FuzzSortBatch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(4), false)
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f}, uint8(2), true)
	f.Add([]byte{}, uint8(0), false)
	f.Fuzz(func(t *testing.T, data []byte, width uint8, ragged bool) {
		if len(data) > 8*512 {
			data = data[:8*512]
		}
		vals := make([]uint64, len(data)/8)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint64(data[8*i:])
		}
		w := int(width) % 24
		// [][]T façade, optionally with a ragged final row.
		var batch [][]uint64
		var fbatch [][]float64
		if w > 0 {
			for i := 0; i+w <= len(vals); i += w {
				row := slices.Clone(vals[i : i+w])
				batch = append(batch, row)
				frow := make([]float64, w)
				for j, v := range row {
					frow[j] = math.Float64frombits(v)
				}
				fbatch = append(fbatch, frow)
			}
		}
		if ragged && len(vals) > 0 {
			batch = append(batch, slices.Clone(vals[:len(vals)%max(w, 1)]))
		}
		want, fwant := sortBatchWant(batch), sortBatchWant(fbatch)
		SortBatch(batch)
		SortBatch(fbatch)
		checkBatchEqual(t, "uint64", batch, want)
		checkBatchEqual(t, "float64", fbatch, fwant)

		// Column-major façade over the same rows.
		if w > 0 {
			m := len(vals) / w
			cols := make([]uint64, w*m)
			for r := 0; r < m; r++ {
				for j := 0; j < w; j++ {
					cols[j*m+r] = vals[r*w+j]
				}
			}
			SortBatchCols(cols, m)
			for r := 0; r < m; r++ {
				for j := 0; j < w; j++ {
					if cols[j*m+r] != want[r][j] {
						t.Fatalf("cols: row %d slot %d = %d, want %d", r, j, cols[j*m+r], want[r][j])
					}
				}
			}
		}
	})
}
