package shufflenet_test

import (
	"fmt"

	"shufflenet"
)

// Build Batcher's bitonic sorter and sort a slice.
func ExampleBitonic() {
	c := shufflenet.Bitonic(8)
	out := c.Eval([]int{5, 2, 7, 0, 6, 1, 4, 3})
	fmt.Println(out)
	fmt.Println("depth:", c.Depth(), "size:", c.Size())
	// Output:
	// [0 1 2 3 4 5 6 7]
	// depth: 6 size: 24
}

// Short slices sort through the generated depth-optimal network
// kernels (package sortkernels); longer ones fall back to slices.Sort.
func ExampleSort() {
	nums := []int{5, 2, 7, 0, 6, 1, 4, 3}
	shufflenet.Sort(nums)
	fmt.Println(nums)

	words := []string{"comparator", "shuffle", "sort", "network"}
	shufflenet.SortFunc(words, func(a, b string) bool { return len(a) < len(b) })
	fmt.Println(words)
	// Output:
	// [0 1 2 3 4 5 6 7]
	// [sort shuffle network comparator]
}

// Stone's realization keeps every inter-step permutation the perfect
// shuffle — the paper's network class.
func ExampleShuffleBitonic() {
	r := shufflenet.ShuffleBitonic(8)
	fmt.Println("steps:", r.Depth(), "shuffle-based:", r.IsShuffleBased())
	fmt.Println(r.Eval([]int{7, 6, 5, 4, 3, 2, 1, 0}))
	// Output:
	// steps: 9 shuffle-based: true
	// [0 1 2 3 4 5 6 7]
}

// The 0-1 principle decides sorting-network-hood exactly.
func ExampleIsSortingNetwork() {
	full := shufflenet.Bitonic(8)
	ok, _ := shufflenet.IsSortingNetwork(full)
	fmt.Println("full bitonic sorts:", ok)

	truncated := full.Truncate(3)
	ok, witness := shufflenet.IsSortingNetwork(truncated)
	fmt.Println("truncated sorts:", ok, "witness is 0-1:", len(witness) == 8)
	// Output:
	// full bitonic sorts: true
	// truncated sorts: false witness is 0-1: true
}

// The paper's lower bound, end to end: two butterfly blocks cannot
// sort, and the adversary hands over a verifiable witness pair.
func ExampleAdversary() {
	it := shufflenet.NewIteratedRDN(64)
	it.AddBlock(nil, shufflenet.Butterfly(6))
	it.AddBlock(shufflenet.Shuffle(64), shufflenet.Butterfly(6))

	an := shufflenet.Adversary(it)
	cert, err := shufflenet.ExtractCertificate(an)
	if err != nil {
		fmt.Println("no certificate:", err)
		return
	}
	circ, _ := it.ToNetwork()
	fmt.Println("certificate verifies:", cert.Verify(circ) == nil)
	fmt.Println("uncompared adjacent values:", cert.M, "and", cert.M+1)
	// Output:
	// certificate verifies: true
	// uncompared adjacent values: 22 and 23
}

// Recover the reverse delta structure from a bare circuit and attack it.
func ExampleDecomposeIterated() {
	// Flatten a known iterated RDN into an anonymous circuit...
	it := shufflenet.NewIteratedRDN(32)
	it.AddBlock(nil, shufflenet.Butterfly(5))
	it.AddBlock(shufflenet.Shuffle(32), shufflenet.Butterfly(5))
	circ, _ := it.ToNetwork()

	// ...and recover the structure from the circuit alone.
	recovered, ok := shufflenet.DecomposeIterated(circ, 5)
	fmt.Println("recovered:", ok, "blocks:", recovered.Blocks())

	an := shufflenet.Adversary(recovered)
	cert, _ := shufflenet.ExtractCertificate(an)
	fmt.Println("certificate verifies against the circuit:", cert.Verify(circ) == nil)
	// Output:
	// recovered: true blocks: 2
	// certificate verifies against the circuit: true
}
