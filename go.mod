module shufflenet

go 1.22
