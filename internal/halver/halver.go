// Package halver implements ε-halvers, the building block of
// AKS-style sorting networks.
//
// The paper cites the AKS network [1] as the O(lg n)-depth comparison
// point but (like everyone) does not construct it; this package is the
// substitution documented in DESIGN.md: exact, *verified* ε-halvers
// built from repeated random cross-matchings, plus the recursive
// halver cascade that nearly-sorts almost all inputs at O(lg n) depth —
// the phenomenon Section 5 appeals to when bounding what the lower
// bound cannot show.
//
// A comparator network on 2m wires is an ε-halver if, for every
// 1 <= k <= m, at most ε·k of the k smallest values end in the upper
// half and at most ε·k of the k largest values end in the lower half.
// By the 0-1 principle it suffices to check all 0-1 inputs, which
// Epsilon does exactly.
package halver

import (
	"context"
	"fmt"
	mathbits "math/bits"
	"math/rand"
	"sync"
	"sync/atomic"

	"shufflenet/internal/bits"
	"shufflenet/internal/network"
	"shufflenet/internal/obs"
	"shufflenet/internal/par"
	"shufflenet/internal/perm"
	"shufflenet/internal/sortcheck"
)

// Halver metrics: masks exhausted per Epsilon call (added once per
// call, never per mask) and the most recently measured ε.
var (
	metEpsMasks = obs.C("halver.epsilon.masks")
	metEpsCalls = obs.C("halver.epsilon.calls")
	metEpsLast  = obs.FG("halver.epsilon.last")
)

// CrossMatchings returns a network of `passes` levels on n = 2m wires,
// each level a uniformly random perfect matching between the lower half
// and the upper half, with every comparator directing its minimum to
// the lower-half wire. Repeated random matchings are expanders with
// high probability, so for any ε > 0 a constant number of passes yields
// an ε-halver w.h.p.; use Epsilon to verify an instance exactly.
func CrossMatchings(n, passes int, rng *rand.Rand) *network.Network {
	if n < 2 || n%2 != 0 {
		panic(fmt.Sprintf("halver.CrossMatchings: n = %d must be even and >= 2", n))
	}
	m := n / 2
	c := network.New(n)
	for p := 0; p < passes; p++ {
		match := perm.Random(m, rng)
		lv := make(network.Level, m)
		for i := 0; i < m; i++ {
			lv[i] = network.Comparator{Min: i, Max: m + match[i]}
		}
		c.AddLevel(lv)
	}
	return c
}

// MaxEpsilonWires bounds Epsilon's exhaustive 0-1 enumeration. The
// bit-sliced kernel settles 64 inputs per pass, which is what makes
// widths this large practical (the cap was 24 before the kernel).
const MaxEpsilonWires = 28

// Epsilon returns the exact halving quality of the network: the
// smallest ε such that c is an ε-halver, computed by exhausting all
// 2^n 0-1 inputs in parallel on the bit-sliced kernel: 64 masks per
// block, with the per-lane misplacement counts (ones in the lower
// half, zeros in the upper half) accumulated in vertical bit-plane
// counters rather than per-mask loops. A perfect halver has ε = 0; a
// network that does nothing has ε = 1. n must be at most
// MaxEpsilonWires. EpsilonScalar is the differential-test oracle.
func Epsilon(c *network.Network, workers int) float64 {
	eps, _ := EpsilonCtx(context.Background(), c, workers)
	return eps
}

// EpsilonCtx is Epsilon under a context. Cancellation is observed once
// per worker chunk. On cancellation the returned value is the maximum
// misplacement ratio over the masks settled so far — a valid *lower*
// bound on the true ε (ε can only grow as more masks are seen) — and
// the *par.ErrCanceled reports how many masks were settled.
func EpsilonCtx(ctx context.Context, c *network.Network, workers int) (float64, error) {
	n := c.Wires()
	if n > MaxEpsilonWires {
		panic(fmt.Sprintf("halver.Epsilon: n = %d exceeds %d", n, MaxEpsilonWires))
	}
	if n%2 != 0 {
		panic("halver.Epsilon: odd wire count")
	}
	m := n / 2
	prog := c.Compile()
	blocks, laneMask := network.ZeroOneBlocks(n)
	lanes := mathbits.OnesCount64(laneMask)
	var mu sync.Mutex
	eps := 0.0
	var scanned int64
	cerr := par.ForEachChunkCtx(ctx, blocks, workers, func(lo, hi int) {
		bb := network.NewBitBatch(prog)
		defer bb.FlushMetrics()
		local := 0.0
		for b := lo; b < hi; b++ {
			bb.LoadBlock(uint64(b))
			out := bb.Eval()
			// Vertical counters: plane p of low[ ] holds bit p of the
			// per-lane count of ones on the lower-half wires; highZ
			// likewise counts zeros on the upper-half wires. m <= 14 <
			// 2^5, so five planes cannot overflow.
			var low, highZ [5]uint64
			for i := 0; i < m; i++ {
				addPlane(&low, out[i])
			}
			for i := m; i < n; i++ {
				addPlane(&highZ, ^out[i])
			}
			base := uint64(b) * 64
			for j := 0; j < lanes; j++ {
				ones := mathbits.OnesCount64(base + uint64(j))
				if ones == 0 || ones == n {
					continue
				}
				// k largest = the `ones` 1-values; misplaced = ones in
				// the lower half. Meaningful when ones <= m.
				if ones <= m {
					if r := float64(planeCount(&low, j)) / float64(ones); r > local {
						local = r
					}
				}
				// k smallest = the zeros; misplaced = zeros in the
				// upper half. Meaningful when zeros <= m.
				if zeros := n - ones; zeros <= m {
					if r := float64(planeCount(&highZ, j)) / float64(zeros); r > local {
						local = r
					}
				}
			}
		}
		mu.Lock()
		if local > eps {
			eps = local
		}
		mu.Unlock()
		atomic.AddInt64(&scanned, int64(hi-lo))
	})
	if cerr != nil {
		mu.Lock()
		partial := eps
		mu.Unlock()
		return partial, &par.ErrCanceled{
			Op:           "halver.Epsilon",
			Cause:        cerr,
			MasksChecked: atomic.LoadInt64(&scanned) * int64(lanes),
		}
	}
	metEpsCalls.Inc()
	metEpsMasks.Add(int64(1) << uint(n))
	metEpsLast.Set(eps)
	return eps, nil
}

// addPlane ripple-carry adds one bit per lane (the set bits of w) into
// the vertical counter planes.
func addPlane(planes *[5]uint64, w uint64) {
	for i := 0; i < len(planes) && w != 0; i++ {
		carry := planes[i] & w
		planes[i] ^= w
		w = carry
	}
}

// planeCount reads lane j's count back out of the vertical planes.
func planeCount(planes *[5]uint64, j int) int {
	c := 0
	for i := 0; i < len(planes); i++ {
		c |= int(planes[i]>>uint(j)&1) << uint(i)
	}
	return c
}

// EpsilonScalar computes Epsilon by scalar enumeration (one Eval per
// mask): the differential-test oracle for the bit-sliced path.
func EpsilonScalar(c *network.Network, workers int) float64 {
	n := c.Wires()
	if n > MaxEpsilonWires {
		panic(fmt.Sprintf("halver.Epsilon: n = %d exceeds %d", n, MaxEpsilonWires))
	}
	if n%2 != 0 {
		panic("halver.Epsilon: odd wire count")
	}
	m := n / 2
	total := 1 << uint(n)
	w := par.Workers(total, workers)
	worst := make([]float64, w)
	par.ForEachChunk(total, w, func(lo, hi int) {
		slot := lo / ((total + w - 1) / w)
		if slot >= w {
			slot = w - 1
		}
		local := 0.0
		for mask := lo; mask < hi; mask++ {
			in := sortcheck.ZeroOneInput(uint64(mask), n)
			ones := 0
			for _, v := range in {
				ones += v
			}
			if ones == 0 || ones == n {
				continue
			}
			out := c.Eval(in)
			// k largest = the `ones` 1-values; misplaced = ones in the
			// lower half. Meaningful when ones <= m.
			onesLow := 0
			for i := 0; i < m; i++ {
				onesLow += out[i]
			}
			if ones <= m {
				if r := float64(onesLow) / float64(ones); r > local {
					local = r
				}
			}
			// k smallest = the zeros; misplaced = zeros in the upper
			// half. Meaningful when zeros <= m.
			zeros := n - ones
			if zeros <= m {
				zerosHigh := 0
				for i := m; i < n; i++ {
					zerosHigh += 1 - out[i]
				}
				if r := float64(zerosHigh) / float64(zeros); r > local {
					local = r
				}
			}
		}
		if local > worst[slot] {
			worst[slot] = local
		}
	})
	eps := 0.0
	for _, v := range worst {
		if v > eps {
			eps = v
		}
	}
	return eps
}

// IsEpsilonHalver reports whether c is an ε-halver for the given ε
// (exact, via Epsilon).
func IsEpsilonHalver(c *network.Network, eps float64, workers int) bool {
	return Epsilon(c, workers) <= eps+1e-12
}

// Cascade returns the recursive halver network on n = 2^d wires: apply
// `passes` random cross-matchings at the full width, then recurse on
// the two halves, down to blocks of 2. Depth is passes·lg n — an
// O(lg n)-depth network that nearly sorts almost all inputs when passes
// is a sufficiently large constant (the AKS skeleton without the
// error-correction machinery).
func Cascade(n, passes int, rng *rand.Rand) *network.Network {
	bits.Lg(n)
	c := network.New(n)
	addCascade(c, 0, n, passes, rng)
	return c
}

// addCascade appends the levels for the block [off, off+size); sibling
// blocks at the same scale are merged into shared levels.
func addCascade(c *network.Network, off, size, passes int, rng *rand.Rand) {
	for scale := size; scale >= 2; scale /= 2 {
		blocks := size / scale
		for p := 0; p < passes; p++ {
			lv := network.Level{}
			for b := 0; b < blocks; b++ {
				base := off + b*scale
				m := scale / 2
				match := perm.Random(m, rng)
				for i := 0; i < m; i++ {
					lv = append(lv, network.Comparator{Min: base + i, Max: base + m + match[i]})
				}
			}
			c.AddLevel(lv)
		}
	}
}
