package halver

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"shufflenet/internal/netbuild"
	"shufflenet/internal/par"
)

func TestEpsilonCtxBackgroundMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := CrossMatchings(12, 2, rng)
	want := Epsilon(c, 0)
	got, err := EpsilonCtx(context.Background(), c, 0)
	if err != nil || got != want {
		t.Fatalf("EpsilonCtx = (%v, %v), Epsilon = %v", got, err, want)
	}
}

func TestEpsilonCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eps, err := EpsilonCtx(ctx, netbuild.Bitonic(16), 0)
	var ce *par.ErrCanceled
	if !errors.As(err, &ce) || ce.Op != "halver.Epsilon" {
		t.Fatalf("error = %v, want ErrCanceled{Op: halver.Epsilon}", err)
	}
	if ce.MasksChecked != 0 {
		t.Fatalf("pre-canceled scan claims %d masks", ce.MasksChecked)
	}
	// The partial value is a max over zero masks: the trivial bound.
	if eps != 0 {
		t.Fatalf("partial eps = %v, want 0", eps)
	}
}

// TestEpsilonCtxDeadlineMidScan cancels a 2^22-mask scan by deadline.
// Either outcome of the race is checked: a canceled scan must report a
// partial mask count and an eps within [0, 1] (a valid lower bound on
// the true ε), a completed scan must agree with the plain API.
func TestEpsilonCtxDeadlineMidScan(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := CrossMatchings(22, 1, rng)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	eps, err := EpsilonCtx(ctx, c, 0)
	if eps < 0 || eps > 1 {
		t.Fatalf("eps = %v out of [0,1]", eps)
	}
	if err == nil {
		if want := Epsilon(c, 0); eps != want {
			t.Fatalf("clean run eps = %v, want %v", eps, want)
		}
		return
	}
	var ce *par.ErrCanceled
	if !errors.As(err, &ce) || ce.Op != "halver.Epsilon" {
		t.Fatalf("error = %v, want ErrCanceled{Op: halver.Epsilon}", err)
	}
	if ce.MasksChecked < 0 || ce.MasksChecked >= 1<<22 {
		t.Fatalf("MasksChecked = %d, want a proper partial count", ce.MasksChecked)
	}
}
