package halver

import (
	"math/rand"
	"testing"

	"shufflenet/internal/netbuild"
	"shufflenet/internal/network"
	"shufflenet/internal/sortcheck"
)

func TestCrossMatchingsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := CrossMatchings(16, 4, rng)
	if c.Depth() != 4 || c.Size() != 4*8 || c.Wires() != 16 {
		t.Fatalf("shape: %v", c)
	}
	// Every comparator must cross the halves, min toward the bottom.
	for _, lv := range c.Levels() {
		for _, cm := range lv {
			if cm.Min >= 8 || cm.Max < 8 {
				t.Fatalf("comparator (%d,%d) does not cross downward", cm.Min, cm.Max)
			}
		}
	}
}

func TestEpsilonPerfectHalver(t *testing.T) {
	// A full sorting network is a 0-halver.
	c := netbuild.Bitonic(8)
	if eps := Epsilon(c, 0); eps != 0 {
		t.Errorf("sorting network has eps = %v", eps)
	}
}

func TestEpsilonEmptyNetwork(t *testing.T) {
	// The empty network is only a 1-halver (everything can be
	// misplaced).
	c := network.New(8)
	if eps := Epsilon(c, 0); eps != 1 {
		t.Errorf("empty network eps = %v, want 1", eps)
	}
}

func TestEpsilonSingleCrossMatching(t *testing.T) {
	// One perfect cross-matching guarantees eps <= 1/2 ... in fact a
	// single matching moves at least ceil(k/2)? No: with k ones all in
	// the bottom, each meets a distinct top wire carrying 0 and swaps
	// up; so NO one stays below: one matching is already a good halver
	// for k <= m? Not quite: ones meeting ones stay. Verify the exact
	// value is strictly below 1 and matches a brute-force check.
	rng := rand.New(rand.NewSource(2))
	c := CrossMatchings(12, 1, rng)
	eps := Epsilon(c, 0)
	if eps >= 1 {
		t.Errorf("one matching should beat the empty network, eps = %v", eps)
	}
	if eps != Epsilon(c, 1) {
		t.Errorf("parallel/sequential Epsilon disagree")
	}
}

func TestEpsilonImprovesWithPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 16
	prev := 1.1
	for _, passes := range []int{1, 3, 6} {
		c := CrossMatchings(n, passes, rand.New(rand.NewSource(int64(passes))))
		eps := Epsilon(c, 0)
		if eps > prev {
			t.Errorf("eps did not improve: passes=%d eps=%v prev=%v", passes, eps, prev)
		}
		prev = eps
	}
	_ = rng
}

func TestIsEpsilonHalver(t *testing.T) {
	c := CrossMatchings(12, 6, rand.New(rand.NewSource(4)))
	eps := Epsilon(c, 0)
	if !IsEpsilonHalver(c, eps, 0) {
		t.Error("network is not an (its own eps)-halver")
	}
	if IsEpsilonHalver(c, eps-0.05, 0) && eps >= 0.05 {
		t.Error("IsEpsilonHalver accepted a smaller eps")
	}
}

func TestCascadeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, passes := 32, 3
	c := Cascade(n, passes, rng)
	if c.Depth() != passes*5 {
		t.Fatalf("depth = %d, want %d", c.Depth(), passes*5)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCascadeNearlySorts(t *testing.T) {
	// A halver cascade nearly sorts: more passes give systematically
	// lower dislocation and fewer inversions on random inputs (exact
	// sorting is rare — the cascade is the AKS skeleton without its
	// error-correction, so we grade by how *close* to sorted it gets).
	n := 64
	rich := Cascade(n, 6, rand.New(rand.NewSource(6)))
	poor := Cascade(n, 1, rand.New(rand.NewSource(6)))
	rng := rand.New(rand.NewSource(8))
	var dRich, dPoor, invRich, invPoor int64
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		in := rng.Perm(n)
		outRich, outPoor := rich.Eval(in), poor.Eval(in)
		dRich += int64(sortcheck.MaxDislocation(outRich))
		dPoor += int64(sortcheck.MaxDislocation(outPoor))
		invRich += sortcheck.Inversions(outRich)
		invPoor += sortcheck.Inversions(outPoor)
	}
	if dRich >= dPoor {
		t.Errorf("mean dislocation did not improve: rich=%d poor=%d", dRich, dPoor)
	}
	if invRich >= invPoor/4 {
		t.Errorf("inversions should drop sharply: rich=%d poor=%d", invRich, invPoor)
	}
	// The rich cascade should leave only local disorder: average max
	// dislocation well below n/4.
	if dRich/trials > int64(n)/4 {
		t.Errorf("rich cascade mean dislocation %d >= n/4", dRich/trials)
	}
}

func TestGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("odd n", func() { CrossMatchings(7, 1, rand.New(rand.NewSource(1))) })
	mustPanic("Epsilon too wide", func() { Epsilon(network.New(MaxEpsilonWires+2), 0) })
	mustPanic("EpsilonScalar too wide", func() { EpsilonScalar(network.New(MaxEpsilonWires+2), 0) })
	mustPanic("Epsilon odd width", func() { Epsilon(network.New(9), 0) })
	mustPanic("Cascade non-pow2", func() { Cascade(12, 1, rand.New(rand.NewSource(1))) })
}

// TestEpsilonBitsMatchesScalar: the bit-sliced Epsilon and the scalar
// oracle must agree exactly (identical float divisions, max over the
// same set) across random cross-matchings, cascades, and degenerate
// networks.
func TestEpsilonBitsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 6, 8, 12, 16} {
		for passes := 0; passes <= 4; passes++ {
			c := CrossMatchings(n, passes, rng)
			got := Epsilon(c, 0)
			want := EpsilonScalar(c, 0)
			if got != want {
				t.Errorf("CrossMatchings(n=%d, passes=%d): Epsilon %v != scalar %v", n, passes, got, want)
			}
		}
	}
	for _, n := range []int{4, 8, 16} {
		c := Cascade(n, 2, rng)
		got := Epsilon(c, 0)
		want := EpsilonScalar(c, 0)
		if got != want {
			t.Errorf("Cascade(n=%d): Epsilon %v != scalar %v", n, got, want)
		}
	}
	// Workers must not change the result.
	c := CrossMatchings(12, 3, rng)
	want := EpsilonScalar(c, 1)
	for _, w := range []int{1, 2, 4} {
		if got := Epsilon(c, w); got != want {
			t.Errorf("workers=%d: Epsilon %v != scalar %v", w, got, want)
		}
	}
}
