package delta

import (
	"shufflenet/internal/bits"
	"shufflenet/internal/network"
	"shufflenet/internal/perm"
)

// Decompose recovers the recursive reverse delta structure of a
// circuit, if it has one: it returns an l-level Network d and a rail
// assignment railOf (slot → circuit rail) such that for every input x
// over rails,
//
//	d.Eval(slotView(x))[s] == c.Eval(x)[railOf[s]],
//
// where slotView(x)[s] = x[railOf[s]]. ok is false when the circuit is
// not a reverse delta network (same criterion as IsReverseDelta).
//
// Decompose is what lets the lower-bound adversary attack networks
// given only as circuits (e.g. loaded from a file): the adversary
// recurses on the recovered structure.
func Decompose(c *network.Network) (d *Network, railOf []int, ok bool) {
	n := c.Wires()
	if !bits.IsPow2(n) {
		return nil, nil, false
	}
	l := bits.Lg(n)
	if c.Depth() != l {
		return nil, nil, false
	}
	rails := make([]int, n)
	for i := range rails {
		rails[i] = i
	}
	return decompose(c, rails, l)
}

// DecomposeIterated recovers a (k, l)-iterated reverse delta structure
// from a circuit of depth k·l: it cuts the circuit into k consecutive
// l-level segments, decomposes each, and chains them with the
// permutations that reconcile consecutive segments' rail assignments.
// The returned Iterated's slot space for inputs and outputs is the
// circuit's rail space:
//
//	it.Eval(x)[railAt[s]] — use ToNetwork's placement for exact output
//	correspondence; inputs are taken rail-indexed directly.
//
// ok is false if the depth is not a multiple of l or any segment is not
// a reverse delta network.
func DecomposeIterated(c *network.Network, l int) (*Iterated, bool) {
	n := c.Wires()
	if !bits.IsPow2(n) || l < 1 || c.Depth()%l != 0 {
		return nil, false
	}
	blocks := c.Depth() / l
	it := NewIterated(n)
	prevRailOf := perm.Identity(n) // block 0 receives rail-indexed data
	for b := 0; b < blocks; b++ {
		seg := c.Slice(b*l, (b+1)*l)
		d, railOf, ok := Decompose(seg)
		if !ok {
			return nil, false
		}
		// pre[s] = slot of this block receiving the value that block
		// b-1 left at its slot s (which lives on rail prevRailOf[s]).
		inv := make([]int, n) // rail -> slot of this block
		for s, r := range railOf {
			inv[r] = s
		}
		pre := make(perm.Perm, n)
		for s := 0; s < n; s++ {
			pre[s] = inv[prevRailOf[s]]
		}
		it.AddBlock(pre, d)
		prevRailOf = perm.Perm(railOf).Clone()
	}
	return it, true
}

// decompose mirrors rdnCheck but builds the structure on success.
func decompose(c *network.Network, rails []int, l int) (*Network, []int, bool) {
	if l == 0 {
		if len(rails) != 1 {
			return nil, nil, false
		}
		return Leaf(), []int{rails[0]}, true
	}
	if len(rails) != 1<<uint(l) {
		return nil, nil, false
	}
	inSet := make(map[int]bool, len(rails))
	for _, r := range rails {
		inSet[r] = true
	}

	parent := make(map[int]int, len(rails))
	var find func(x int) int
	find = func(x int) int {
		p, okP := parent[x]
		if !okP || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for li := 0; li < l-1; li++ {
		for _, cm := range c.Level(li) {
			a, b := cm.Min, cm.Max
			if inSet[a] != inSet[b] {
				return nil, nil, false
			}
			if inSet[a] {
				union(a, b)
			}
		}
	}

	type edge struct{ a, b int }
	var cross []edge
	for _, cm := range c.Level(l - 1) {
		a, b := cm.Min, cm.Max
		if inSet[a] != inSet[b] {
			return nil, nil, false
		}
		if !inSet[a] {
			continue
		}
		ra, rb := find(a), find(b)
		if ra == rb {
			return nil, nil, false
		}
		cross = append(cross, edge{ra, rb})
	}

	members := map[int][]int{}
	for _, r := range rails {
		members[find(r)] = append(members[find(r)], r)
	}

	color := map[int]int{}
	adj := map[int][]int{}
	for _, e := range cross {
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
	}
	type group struct{ size0, size1 int }
	var groups []group
	var groupRoots [][]int
	visited := map[int]bool{}
	for root := range members {
		if visited[root] {
			continue
		}
		g := group{}
		var roots []int
		queue := []int{root}
		visited[root] = true
		color[root] = 0
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			roots = append(roots, x)
			if color[x] == 0 {
				g.size0 += len(members[x])
			} else {
				g.size1 += len(members[x])
			}
			for _, y := range adj[x] {
				if !visited[y] {
					visited[y] = true
					color[y] = 1 - color[x]
					queue = append(queue, y)
				} else if color[y] == color[x] {
					return nil, nil, false
				}
			}
		}
		groups = append(groups, g)
		groupRoots = append(groupRoots, roots)
	}

	half := len(rails) / 2
	flips := make([]bool, len(groups))
	var result *Network
	var resultRails []int
	var try func(i, side0 int) bool
	try = func(i, side0 int) bool {
		if side0 > half {
			return false
		}
		rest := 0
		for j := i; j < len(groups); j++ {
			m := groups[j].size0
			if groups[j].size1 > m {
				m = groups[j].size1
			}
			rest += m
		}
		if side0+rest < half {
			return false
		}
		if i == len(groups) {
			if side0 != half {
				return false
			}
			var side [2][]int
			for gi, roots := range groupRoots {
				for _, root := range roots {
					s := color[root]
					if flips[gi] {
						s = 1 - s
					}
					side[s] = append(side[s], members[root]...)
				}
			}
			sub0, rails0, ok0 := decompose(c, side[0], l-1)
			if !ok0 {
				return false
			}
			sub1, rails1, ok1 := decompose(c, side[1], l-1)
			if !ok1 {
				return false
			}
			// Output-slot index of each rail within each sub-network.
			slotOf := map[int]int{}
			for s, r := range rails0 {
				slotOf[r] = s
			}
			for s, r := range rails1 {
				slotOf[r] = s
			}
			in1 := map[int]bool{}
			for _, r := range rails1 {
				in1[r] = true
			}
			var final []Comp
			for _, cm := range c.Level(l - 1) {
				if !inSet[cm.Min] {
					continue
				}
				// One endpoint per side (guaranteed above).
				r0, r1 := cm.Min, cm.Max
				minFirst := true
				if in1[r0] {
					r0, r1 = r1, r0
					minFirst = false
				}
				final = append(final, Comp{O0: slotOf[r0], O1: slotOf[r1], MinFirst: minFirst})
			}
			result = Combine(sub0, sub1, final)
			resultRails = append(append([]int{}, rails0...), rails1...)
			return true
		}
		flips[i] = false
		if try(i+1, side0+groups[i].size0) {
			return true
		}
		flips[i] = true
		return try(i+1, side0+groups[i].size1)
	}
	if !try(0, 0) {
		return nil, nil, false
	}
	return result, resultRails, true
}
