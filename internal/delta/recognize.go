package delta

import (
	"shufflenet/internal/network"
)

// IsReverseDelta reports whether the circuit c has the topology of an
// l-level reverse delta network on 2^l rails (Definition 3.4), i.e.
// whether its rails can be recursively bipartitioned so that every
// level-i comparator crosses the bipartition at depth i and no
// comparator crosses a bipartition above its level. Comparator
// directions are irrelevant to the topology.
//
// The check runs a backtracking search over the bipartition choices
// (the problem contains a balanced-2-coloring subproblem); it is
// intended for the modest network widths used in tests and experiments.
func IsReverseDelta(c *network.Network) bool {
	_, _, ok := Decompose(c)
	return ok
}

// IsDelta reports whether c has the topology of a delta network: the
// level-reversed circuit must be a reverse delta network ("a reverse
// delta network is obtained from a delta network by flipping the
// network", Section 2).
func IsDelta(c *network.Network) bool {
	return IsReverseDelta(ReverseLevels(c))
}

// ReverseLevels returns a copy of c with the order of its levels
// reversed (the "flip" interchanging inputs and outputs).
func ReverseLevels(c *network.Network) *network.Network {
	out := network.New(c.Wires())
	for i := c.Depth() - 1; i >= 0; i-- {
		out.AddLevel(c.Level(i))
	}
	return out
}
