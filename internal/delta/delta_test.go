package delta

import (
	"math/rand"
	"testing"

	"shufflenet/internal/netbuild"
	"shufflenet/internal/network"
	"shufflenet/internal/perm"
	"shufflenet/internal/sortcheck"
)

func TestLeaf(t *testing.T) {
	d := Leaf()
	if d.Levels() != 0 || d.Inputs() != 1 || d.Size() != 0 || !d.Full() {
		t.Errorf("leaf malformed")
	}
	out := d.Eval([]int{42})
	if out[0] != 42 {
		t.Errorf("leaf eval = %v", out)
	}
}

func TestButterflyShape(t *testing.T) {
	for l := 0; l <= 6; l++ {
		b := Butterfly(l)
		if b.Levels() != l {
			t.Errorf("l=%d: levels %d", l, b.Levels())
		}
		if b.Inputs() != 1<<uint(l) {
			t.Errorf("l=%d: inputs %d", l, b.Inputs())
		}
		if want := l * (1 << uint(l)) / 2; b.Size() != want {
			t.Errorf("l=%d: size %d, want %d", l, b.Size(), want)
		}
		if !b.Full() {
			t.Errorf("l=%d: butterfly not full", l)
		}
	}
}

func TestButterflyToNetworkDimensions(t *testing.T) {
	l := 4
	c := Butterfly(l).ToNetwork()
	if c.Depth() != l {
		t.Fatalf("depth %d", c.Depth())
	}
	for li, lv := range c.Levels() {
		for _, cm := range lv {
			if cm.Min^cm.Max != 1<<uint(li) {
				t.Fatalf("level %d comparator (%d,%d) not on dimension %d", li, cm.Min, cm.Max, li)
			}
		}
	}
}

func TestButterflyEvalMatchesToNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, l := range []int{1, 3, 5} {
		b := Butterfly(l)
		c := b.ToNetwork()
		for trial := 0; trial < 20; trial++ {
			in := []int(perm.Random(b.Inputs(), rng))
			a, bb := b.Eval(in), c.Eval(in)
			for i := range a {
				if a[i] != bb[i] {
					t.Fatalf("l=%d: Eval and ToNetwork.Eval disagree", l)
				}
			}
		}
	}
}

func TestRandomRDNEvalMatchesToNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		b := Random(4, 0.7, rng)
		c := b.ToNetwork()
		in := []int(perm.Random(16, rng))
		x, y := b.Eval(in), c.Eval(in)
		for i := range x {
			if x[i] != y[i] {
				t.Fatal("random RDN Eval mismatch")
			}
		}
	}
}

func TestCombineValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("level mismatch", func() { Combine(Leaf(), Butterfly(1), nil) })
	mustPanic("slot out of range", func() { Combine(Leaf(), Leaf(), []Comp{{O0: 1, O1: 0}}) })
	mustPanic("slot reuse", func() {
		Combine(Butterfly(1), Butterfly(1), []Comp{{O0: 0, O1: 0}, {O0: 0, O1: 1}})
	})
}

func TestCombinePartialFinalLevel(t *testing.T) {
	d := Combine(Butterfly(1), Butterfly(1), []Comp{{O0: 1, O1: 0, MinFirst: false}})
	if d.Size() != 3 || d.Full() {
		t.Errorf("partial RDN: size=%d full=%v", d.Size(), d.Full())
	}
	// The single cross comparator meets values 2 (sub0 slot 1) and 3
	// (sub1 slot 0); MinFirst=false sends the max to the sub0 side.
	out := d.Eval([]int{1, 2, 3, 4})
	if out[1] != 3 || out[2] != 2 {
		t.Errorf("MinFirst=false direction wrong: %v", out)
	}
}

func TestButterflyMaxToTop(t *testing.T) {
	// An ascending full butterfly routes the maximum to the last slot
	// and the minimum to slot 0.
	b := Butterfly(3)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		in := []int(perm.Random(8, rng))
		out := b.Eval(in)
		if out[7] != 7 || out[0] != 0 {
			t.Fatalf("butterfly extremes: %v -> %v", in, out)
		}
	}
}

func TestIsReverseDeltaAcceptsButterflies(t *testing.T) {
	for l := 1; l <= 5; l++ {
		if !IsReverseDelta(Butterfly(l).ToNetwork()) {
			t.Errorf("l=%d: ascending butterfly rejected", l)
		}
	}
	// The descending butterfly (bitonic merger) is also an RDN, via the
	// even/odd bipartition.
	for _, n := range []int{4, 8, 16} {
		if !IsReverseDelta(netbuild.BitonicMerger(n)) {
			t.Errorf("n=%d: bitonic merger (descending butterfly) rejected", n)
		}
	}
}

func TestButterflyIsBothDeltaAndReverseDelta(t *testing.T) {
	// Kruskal & Snir: the butterfly is the unique network that is both.
	for l := 1; l <= 4; l++ {
		c := Butterfly(l).ToNetwork()
		if !IsReverseDelta(c) || !IsDelta(c) {
			t.Errorf("l=%d: butterfly should be both delta and reverse delta", l)
		}
	}
}

func TestIsReverseDeltaAcceptsRandomRDNs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		b := Random(4, rng.Float64(), rng)
		if !IsReverseDelta(b.ToNetwork()) {
			t.Fatalf("random RDN rejected (trial %d)", trial)
		}
	}
}

func TestIsReverseDeltaRejects(t *testing.T) {
	// Wrong depth.
	if IsReverseDelta(netbuild.OddEvenTransposition(8)) {
		t.Error("transposition network accepted")
	}
	// Right depth, wrong structure: repeat the same level twice.
	c := network.New(4)
	c.AddComparators(0, 1, 2, 3)
	c.AddComparators(0, 1, 2, 3)
	if IsReverseDelta(c) {
		t.Error("repeated-level network accepted")
	}
	// Non-power-of-two width: construct without touching wire 5.
	c2 := network.New(6)
	c2.AddComparators(0, 1)
	if IsReverseDelta(c2) {
		t.Error("non-power-of-two network accepted")
	}
	// Bitonic(4) has depth 3 != lg 4.
	if IsReverseDelta(netbuild.Bitonic(4)) {
		t.Error("Bitonic(4) accepted")
	}
}

func TestIsReverseDeltaPartialLevels(t *testing.T) {
	// RDNs may have missing comparators anywhere.
	rng := rand.New(rand.NewSource(11))
	b := Random(5, 0.3, rng)
	if !IsReverseDelta(b.ToNetwork()) {
		t.Error("sparse RDN rejected")
	}
	// Entirely empty network of the right depth is an RDN.
	c := network.New(8)
	c.AddLevel(nil).AddLevel(nil).AddLevel(nil)
	if !IsReverseDelta(c) {
		t.Error("empty-levels RDN rejected")
	}
}

func TestReverseLevels(t *testing.T) {
	c := network.New(4)
	c.AddComparators(0, 1)
	c.AddComparators(1, 2)
	r := ReverseLevels(c)
	if len(r.Level(0)) != 1 || r.Level(0)[0].Max != 2 {
		t.Errorf("ReverseLevels wrong: %v", r.Level(0))
	}
	if !ReverseLevels(r).Equal(c) {
		t.Error("double reversal is not identity")
	}
}

func TestIteratedEvalAndToNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 16
	it := NewIterated(n)
	for b := 0; b < 3; b++ {
		var pre perm.Perm
		if b > 0 {
			pre = perm.Random(n, rng)
		}
		it.AddBlock(pre, Random(4, 0.8, rng))
	}
	if it.Blocks() != 3 || it.Depth() != 12 || it.Slots() != n {
		t.Fatalf("iterated shape wrong")
	}
	circuit, place := it.ToNetwork()
	if circuit.Depth() != 12 || circuit.Size() != it.Size() {
		t.Fatalf("flattened shape wrong")
	}
	for trial := 0; trial < 20; trial++ {
		in := []int(perm.Random(n, rng))
		a := it.Eval(in)
		b := circuit.Eval(in)
		for s := 0; s < n; s++ {
			if a[s] != b[place[s]] {
				t.Fatalf("Iterated.Eval and ToNetwork disagree at slot %d", s)
			}
		}
	}
}

func TestIteratedButterfliesWithIdentityGluePreserveRDNStructure(t *testing.T) {
	// One block flattens to an RDN circuit.
	it := NewIterated(8).AddBlock(nil, Butterfly(3))
	c, _ := it.ToNetwork()
	if !IsReverseDelta(c) {
		t.Error("single-block iterated RDN is not an RDN circuit")
	}
}

func TestIteratedBitonicEquivalence(t *testing.T) {
	// Batcher's bitonic network IS an iterated reverse delta network
	// (this is why the paper's lower bound applies to it): stage s
	// compares dimensions s-1, ..., 0 in descending order, while RDN
	// levels compare ascending dimensions — so each stage becomes an
	// RDN block conjugated by the permutation ρ_s that reverses the low
	// s bits of the slot index. Build bitonic(2^d) this way for d = 3, 4
	// and verify it sorts (0-1 principle).
	for _, d := range []int{3, 4} {
		n := 1 << uint(d)
		it := BitonicIterated(d)
		ok, w := sortcheck.ZeroOne(n, iterEval{it}, 0)
		if !ok {
			t.Fatalf("d=%d: iterated-RDN bitonic fails 0-1 check on %v", d, w)
		}
	}
}

type iterEval struct{ it *Iterated }

func (e iterEval) Eval(in []int) []int { return e.it.Eval(in) }
