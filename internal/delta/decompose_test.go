package delta

import (
	"math/rand"
	"testing"

	"shufflenet/internal/perm"
	"shufflenet/internal/sortcheck"
)

// checkDecompose validates the Decompose contract on a circuit built
// from a known RDN: behavioral equivalence through the rail assignment.
func checkDecompose(t *testing.T, orig *Network, rng *rand.Rand) {
	t.Helper()
	c := orig.ToNetwork()
	d, railOf, ok := Decompose(c)
	if !ok {
		t.Fatal("Decompose rejected an RDN circuit")
	}
	if d.Levels() != orig.Levels() || d.Size() != orig.Size() {
		t.Fatalf("structure shape wrong: levels %d/%d size %d/%d",
			d.Levels(), orig.Levels(), d.Size(), orig.Size())
	}
	// railOf must be a permutation of the rails.
	if !perm.Perm(railOf).Valid() {
		t.Fatalf("railOf is not a permutation: %v", railOf)
	}
	n := c.Wires()
	for trial := 0; trial < 20; trial++ {
		x := []int(perm.Random(n, rng))
		slotIn := make([]int, n)
		for s, r := range railOf {
			slotIn[s] = x[r]
		}
		got := d.Eval(slotIn)
		want := c.Eval(x)
		for s := 0; s < n; s++ {
			if got[s] != want[railOf[s]] {
				t.Fatalf("behavioural mismatch at slot %d", s)
			}
		}
	}
}

func TestDecomposeButterfly(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for l := 1; l <= 5; l++ {
		checkDecompose(t, Butterfly(l), rng)
	}
}

func TestDecomposeRandomRDNs(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 25; trial++ {
		l := 1 + rng.Intn(5)
		checkDecompose(t, Random(l, 0.2+0.8*rng.Float64(), rng), rng)
	}
}

func TestDecomposeEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	checkDecompose(t, Empty(4), rng)
}

func TestDecomposeRejectsNonRDN(t *testing.T) {
	c := Butterfly(3).ToNetwork()
	// Repeat a level: no longer an RDN.
	c2 := c.Truncate(2)
	c2.AddLevel(c.Level(1))
	if _, _, ok := Decompose(c2); ok {
		t.Error("Decompose accepted a repeated-level circuit")
	}
}

func TestDecomposeIteratedBitonic(t *testing.T) {
	// Flatten BitonicIterated to a circuit, decompose it back, and
	// confirm the recovered iterated RDN still sorts — full round trip
	// through rail space.
	for _, dd := range []int{2, 3, 4} {
		n := 1 << uint(dd)
		circ, place := BitonicIterated(dd).ToNetwork()
		it, ok := DecomposeIterated(circ, dd)
		if !ok {
			t.Fatalf("d=%d: DecomposeIterated failed on bitonic", dd)
		}
		if it.Blocks() != dd+1 {
			t.Fatalf("d=%d: recovered %d blocks", dd, it.Blocks())
		}
		// Behavioral check through the recovered structure.
		c2, place2 := it.ToNetwork()
		rng := rand.New(rand.NewSource(74))
		for trial := 0; trial < 20; trial++ {
			x := []int(perm.Random(n, rng))
			a := circ.Eval(x)
			b := c2.Eval(x)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("d=%d: recovered circuit differs", dd)
				}
			}
		}
		_ = place2
		// And it sorts: c2 is rail-equivalent to circ, so the original
		// flatten's placement locates the sorted output.
		ok01, w := sortcheck.ZeroOne(n, remapEval2{c2, place}, 0)
		if !ok01 {
			t.Fatalf("d=%d: recovered bitonic does not sort (%v)", dd, w)
		}
	}
}

type remapEval2 struct {
	c     interface{ Eval([]int) []int }
	place perm.Perm
}

func (e remapEval2) Eval(in []int) []int {
	out := e.c.Eval(in)
	fixed := make([]int, len(out))
	for s, r := range e.place {
		fixed[s] = out[r]
	}
	return fixed
}

func TestDecomposeIteratedRejects(t *testing.T) {
	c := Butterfly(3).ToNetwork()
	if _, ok := DecomposeIterated(c, 2); ok {
		t.Error("accepted depth not divisible by l")
	}
	if _, ok := DecomposeIterated(c, 0); ok {
		t.Error("accepted l = 0")
	}
}
