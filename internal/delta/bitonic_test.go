package delta

import (
	"testing"

	"shufflenet/internal/perm"
	"shufflenet/internal/sortcheck"
)

func TestEmpty(t *testing.T) {
	e := Empty(4)
	if e.Levels() != 4 || e.Size() != 0 {
		t.Fatalf("Empty(4): levels=%d size=%d", e.Levels(), e.Size())
	}
	in := []int{5, 3, 8, 1, 9, 0, 2, 7, 6, 4, 10, 11, 12, 13, 15, 14}
	out := e.Eval(in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("Empty moved data")
		}
	}
}

func TestReverseLowBits(t *testing.T) {
	p := ReverseLowBits(16, 2)
	// Index 0b0110 -> low 2 bits "10" reversed to "01" -> 0b0101.
	if p[0b0110] != 0b0101 {
		t.Errorf("ReverseLowBits(16,2)[6] = %d", p[0b0110])
	}
	if !p.Valid() {
		t.Error("not a permutation")
	}
	// Involution.
	if !p.Compose(p).IsIdentity() {
		t.Error("not an involution")
	}
	// s = 0 and s = 1 are the identity.
	if !ReverseLowBits(8, 0).IsIdentity() || !ReverseLowBits(8, 1).IsIdentity() {
		t.Error("trivial reversals not identity")
	}
	// s = d is full bit reversal.
	if !ReverseLowBits(16, 4).Equal(perm.BitReversal(16)) {
		t.Error("full-width reversal != bit reversal")
	}
}

func TestBitonicStageShape(t *testing.T) {
	d := 4
	for s := 1; s <= d; s++ {
		st := BitonicStage(d, s)
		if st.Levels() != d {
			t.Fatalf("stage %d: levels %d", s, st.Levels())
		}
		// Stage s has comparators only at node depths <= s:
		// size = s * 2^{d-1}.
		if want := s * (1 << uint(d-1)); st.Size() != want {
			t.Fatalf("stage %d: size %d, want %d", s, st.Size(), want)
		}
	}
}

func TestBitonicStagePanics(t *testing.T) {
	for _, s := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BitonicStage(4,%d) did not panic", s)
				}
			}()
			BitonicStage(4, s)
		}()
	}
}

func TestBitonicIteratedDepthAndSize(t *testing.T) {
	d := 4
	it := BitonicIterated(d)
	n := 1 << uint(d)
	// d stage blocks + 1 unscramble block, each d levels deep.
	if it.Blocks() != d+1 || it.Depth() != (d+1)*d {
		t.Fatalf("blocks=%d depth=%d", it.Blocks(), it.Depth())
	}
	// Comparator count equals Batcher's bitonic: n·d(d+1)/4.
	if want := n * d * (d + 1) / 4; it.Size() != want {
		t.Fatalf("size=%d want %d", it.Size(), want)
	}
}

func TestBitonicIteratedSortsExhaustively(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4} {
		it := BitonicIterated(d)
		ok, w := sortcheck.ZeroOne(1<<uint(d), iterEval{it}, 0)
		if !ok {
			t.Fatalf("d=%d: fails on %v", d, w)
		}
	}
}

func TestForestValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty forest", func() { NewForest() })
	mustPanic("mixed levels", func() { NewForest(Butterfly(2), Butterfly(3)) })
	mustPanic("wrong slot count", func() {
		NewIterated(8).AddForest(nil, NewForest(Butterfly(2)))
	})
}

func TestForestEvalMatchesTrees(t *testing.T) {
	f := NewForest(Butterfly(2), Butterfly(2))
	it := NewIterated(8).AddForest(nil, f)
	in := []int{3, 1, 2, 0, 7, 5, 6, 4}
	out := it.Eval(in)
	left := Butterfly(2).Eval(in[:4])
	right := Butterfly(2).Eval(in[4:])
	for i := 0; i < 4; i++ {
		if out[i] != left[i] || out[4+i] != right[i] {
			t.Fatalf("forest eval mismatch: %v", out)
		}
	}
	if f.Levels() != 2 || f.Slots() != 8 || f.Size() != 8 {
		t.Fatalf("forest shape wrong")
	}
}
