// Package delta implements the paper's Definition 3.4: reverse delta
// networks and (k,l)-iterated reverse delta networks.
//
// A reverse delta network (RDN) is represented by its recursive
// "tournament" structure: an l-level RDN is two parallel (l−1)-level
// RDNs followed by a final level of comparators, each taking one input
// from either sub-network. The structure is kept explicit — rather than
// flattened to a circuit — because the lower-bound adversary
// (internal/core) recurses on exactly this shape and exploits the
// disjointness of the two sub-tournaments (Section 2 of the paper).
//
// Positions ("slots") within an RDN are numbered 0..2^l−1 with the
// first sub-network occupying the lower half. Since an RDN contains no
// permutations between its levels, slots are also the rails of the
// equivalent circuit (ToNetwork). Arbitrary permutations between
// consecutive RDNs of an iterated network — which Definition 3.4's
// serial composition allows — live in Iterated.
package delta

import (
	"fmt"
	"math/rand"

	"shufflenet/internal/bits"
	"shufflenet/internal/network"
	"shufflenet/internal/perm"
)

// Comp is one comparator of a node's final level: it connects output
// slot O0 of the first sub-network with output slot O1 of the second.
// If MinFirst, the smaller value lands on the sub0 side; otherwise on
// the sub1 side.
type Comp struct {
	O0, O1   int
	MinFirst bool
}

// Network is an l-level reverse delta network over 2^l slots.
type Network struct {
	l     int
	sub   [2]*Network
	final []Comp
}

// Leaf returns the 0-level reverse delta network: a single wire with no
// comparators.
func Leaf() *Network { return &Network{} }

// Combine forms an (l+1)-level RDN from two l-level RDNs and a final
// level. Every slot of either sub-network may appear in at most one
// final comparator; fewer than 2^l comparators (down to none) are
// allowed, matching the paper's "at most 2^{l-1} comparators" clause.
func Combine(sub0, sub1 *Network, final []Comp) *Network {
	if sub0.l != sub1.l {
		panic(fmt.Sprintf("delta.Combine: sub-networks have different levels %d, %d", sub0.l, sub1.l))
	}
	h := sub0.Inputs()
	seen0 := make([]bool, h)
	seen1 := make([]bool, h)
	for _, c := range final {
		if c.O0 < 0 || c.O0 >= h || c.O1 < 0 || c.O1 >= h {
			panic(fmt.Sprintf("delta.Combine: comparator (%d,%d) out of range [0,%d)", c.O0, c.O1, h))
		}
		if seen0[c.O0] || seen1[c.O1] {
			panic(fmt.Sprintf("delta.Combine: slot reused in final level: (%d,%d)", c.O0, c.O1))
		}
		seen0[c.O0], seen1[c.O1] = true, true
	}
	own := make([]Comp, len(final))
	copy(own, final)
	return &Network{l: sub0.l + 1, sub: [2]*Network{sub0, sub1}, final: own}
}

// Levels returns l, the number of comparator levels.
func (d *Network) Levels() int { return d.l }

// Inputs returns the number of input slots, 2^l.
func (d *Network) Inputs() int { return 1 << uint(d.l) }

// Sub returns the i-th sub-network (i in {0,1}); nil for a leaf.
func (d *Network) Sub(i int) *Network { return d.sub[i] }

// Final returns the final-level comparators. Callers must not modify
// the result.
func (d *Network) Final() []Comp { return d.final }

// Size returns the total number of comparators.
func (d *Network) Size() int {
	if d.l == 0 {
		return 0
	}
	return d.sub[0].Size() + d.sub[1].Size() + len(d.final)
}

// Full reports whether every level of the RDN has its maximum number of
// comparators (2^{l-1} at each of its nodes' final levels).
func (d *Network) Full() bool {
	if d.l == 0 {
		return true
	}
	return len(d.final) == d.Inputs()/2 && d.sub[0].Full() && d.sub[1].Full()
}

// ToNetwork flattens the RDN to an equivalent circuit on 2^l rails
// (rail = slot), with level i of the circuit containing the final
// levels of all depth-i nodes.
func (d *Network) ToNetwork() *network.Network {
	c := network.New(d.Inputs())
	for lvl := 1; lvl <= d.l; lvl++ {
		var lv network.Level
		d.collectLevel(lvl, 0, &lv)
		c.AddLevel(lv)
	}
	return c
}

// collectLevel gathers the comparators of the given level (1-based,
// counted from the leaves: a node with l levels contributes its final
// comparators to level l) into lv, offsetting slots by base.
func (d *Network) collectLevel(lvl, base int, lv *network.Level) {
	if d.l == 0 {
		return
	}
	if lvl == d.l {
		h := d.Inputs() / 2
		for _, cmp := range d.final {
			a, b := base+cmp.O0, base+h+cmp.O1
			if cmp.MinFirst {
				*lv = append(*lv, network.Comparator{Min: a, Max: b})
			} else {
				*lv = append(*lv, network.Comparator{Min: b, Max: a})
			}
		}
		return
	}
	h := d.Inputs() / 2
	d.sub[0].collectLevel(lvl, base, lv)
	d.sub[1].collectLevel(lvl, base+h, lv)
}

// Eval runs the RDN on input (one value per slot).
func (d *Network) Eval(input []int) []int {
	if len(input) != d.Inputs() {
		panic(fmt.Sprintf("delta.Eval: input length %d != %d slots", len(input), d.Inputs()))
	}
	out := make([]int, len(input))
	copy(out, input)
	d.evalInPlace(out)
	return out
}

func (d *Network) evalInPlace(data []int) {
	if d.l == 0 {
		return
	}
	h := d.Inputs() / 2
	d.sub[0].evalInPlace(data[:h])
	d.sub[1].evalInPlace(data[h:])
	for _, cmp := range d.final {
		a, b := cmp.O0, h+cmp.O1
		lo, hi := a, b
		if !cmp.MinFirst {
			lo, hi = b, a
		}
		if data[lo] > data[hi] {
			data[lo], data[hi] = data[hi], data[lo]
		}
	}
}

// Butterfly returns the canonical full RDN: the l-level butterfly in
// which the final level of every node pairs slot j of sub0 with slot j
// of sub1 (so level i compares slots differing in bit i−1), all
// comparators ascending (min toward the lower slot).
func Butterfly(l int) *Network {
	if l < 0 {
		panic("delta.Butterfly: negative level count")
	}
	if l == 0 {
		return Leaf()
	}
	sub0, sub1 := Butterfly(l-1), Butterfly(l-1)
	h := 1 << uint(l-1)
	final := make([]Comp, h)
	for j := 0; j < h; j++ {
		final[j] = Comp{O0: j, O1: j, MinFirst: true}
	}
	return Combine(sub0, sub1, final)
}

// Random returns a random l-level RDN: each node's final level is a
// random partial matching between the two sub-networks' slots in which
// each potential comparator appears with probability density, with a
// uniformly random direction. density 1 gives full random RDNs.
func Random(l int, density float64, rng *rand.Rand) *Network {
	if l == 0 {
		return Leaf()
	}
	sub0, sub1 := Random(l-1, density, rng), Random(l-1, density, rng)
	h := 1 << uint(l-1)
	// Random matching: pair a random permutation of sub0 slots with a
	// random permutation of sub1 slots.
	p0, p1 := perm.Random(h, rng), perm.Random(h, rng)
	var final []Comp
	for j := 0; j < h; j++ {
		if rng.Float64() >= density {
			continue
		}
		final = append(final, Comp{O0: p0[j], O1: p1[j], MinFirst: rng.Intn(2) == 0})
	}
	return Combine(sub0, sub1, final)
}

// Forest is a parallel composition of equal-level RDNs covering
// consecutive slot ranges: trees[0] on slots [0, m), trees[1] on
// [m, 2m), and so on. A single full-width tree is the (k, lg n) case of
// the paper; a forest of 2^{lg n − f} trees of f levels each is the
// "truncated" block of the Section 5 extension (an RDN cut after its
// first f levels decomposes into exactly such a forest).
type Forest struct {
	trees []*Network
}

// NewForest builds a forest from equal-level trees.
func NewForest(trees ...*Network) Forest {
	if len(trees) == 0 {
		panic("delta.NewForest: no trees")
	}
	for _, tr := range trees[1:] {
		if tr.Levels() != trees[0].Levels() {
			panic(fmt.Sprintf("delta.NewForest: mixed tree levels %d and %d", trees[0].Levels(), tr.Levels()))
		}
	}
	own := make([]*Network, len(trees))
	copy(own, trees)
	return Forest{trees: own}
}

// Trees returns the trees of the forest.
func (f Forest) Trees() []*Network { return f.trees }

// Slots returns the total number of slots covered.
func (f Forest) Slots() int {
	n := 0
	for _, tr := range f.trees {
		n += tr.Inputs()
	}
	return n
}

// Levels returns the common level count of the trees.
func (f Forest) Levels() int { return f.trees[0].Levels() }

// Size returns the total comparator count.
func (f Forest) Size() int {
	s := 0
	for _, tr := range f.trees {
		s += tr.Size()
	}
	return s
}

func (f Forest) evalInPlace(data []int) {
	off := 0
	for _, tr := range f.trees {
		tr.evalInPlace(data[off : off+tr.Inputs()])
		off += tr.Inputs()
	}
}

// Iterated is a (k,l)-iterated reverse delta network: k consecutive
// blocks on n = 2^d slots with an arbitrary fixed permutation in front
// of each block (the freedom Definition 3.4's serial composition
// grants). Each block is a Forest — a single full-width RDN in the
// paper's main setting, or several parallel truncated RDNs in the
// Section 5 extension. Pre[i] routes data entering block i: the value
// at slot s moves to slot Pre[i][s].
type Iterated struct {
	n      int
	blocks []Forest
	pre    []perm.Perm
}

// NewIterated returns an empty iterated RDN on n = 2^d slots.
func NewIterated(n int) *Iterated {
	bits.Lg(n)
	return &Iterated{n: n}
}

// AddBlock appends one single-tree block preceded by the permutation
// pre (nil = identity). The tree must have exactly n inputs.
func (it *Iterated) AddBlock(pre perm.Perm, b *Network) *Iterated {
	return it.AddForest(pre, NewForest(b))
}

// AddForest appends a forest block preceded by the permutation pre
// (nil = identity). The forest must cover exactly n slots.
func (it *Iterated) AddForest(pre perm.Perm, f Forest) *Iterated {
	if f.Slots() != it.n {
		panic(fmt.Sprintf("delta.AddForest: forest covers %d slots, want %d", f.Slots(), it.n))
	}
	if pre != nil {
		if len(pre) != it.n {
			panic(fmt.Sprintf("delta.AddForest: permutation on %d slots, want %d", len(pre), it.n))
		}
		pre.MustValid()
		pre = pre.Clone()
	}
	it.blocks = append(it.blocks, f)
	it.pre = append(it.pre, pre)
	return it
}

// Slots returns n.
func (it *Iterated) Slots() int { return it.n }

// Blocks returns the number of blocks k.
func (it *Iterated) Blocks() int { return len(it.blocks) }

// Block returns block i.
func (it *Iterated) Block(i int) Forest { return it.blocks[i] }

// Pre returns the permutation in front of block i (nil = identity).
func (it *Iterated) Pre(i int) perm.Perm { return it.pre[i] }

// Depth returns the total comparator depth.
func (it *Iterated) Depth() int {
	d := 0
	for _, b := range it.blocks {
		d += b.Levels()
	}
	return d
}

// Size returns the total number of comparators.
func (it *Iterated) Size() int {
	s := 0
	for _, b := range it.blocks {
		s += b.Size()
	}
	return s
}

// Eval runs the iterated network on input.
func (it *Iterated) Eval(input []int) []int {
	if len(input) != it.n {
		panic(fmt.Sprintf("delta.Iterated.Eval: input length %d != %d slots", len(input), it.n))
	}
	cur := make([]int, it.n)
	copy(cur, input)
	tmp := make([]int, it.n)
	for i, b := range it.blocks {
		if it.pre[i] != nil {
			it.pre[i].RouteInto(tmp, cur)
			cur, tmp = tmp, cur
		}
		b.evalInPlace(cur)
	}
	return cur
}

// ToNetwork flattens the iterated network into an equivalent circuit
// together with the final placement: circuit rails are the original
// input slots, inter-block permutations become wire relabelings, and
// placement[s] = r means the value at slot s after the last block is on
// circuit rail r:
//
//	it.Eval(x)[s] == circuit.Eval(x)[placement[s]]  for all inputs x.
func (it *Iterated) ToNetwork() (*network.Network, perm.Perm) {
	c := network.New(it.n)
	railAt := perm.Identity(it.n) // railAt[slot] = circuit rail at this slot
	tmp := make(perm.Perm, it.n)
	for i, b := range it.blocks {
		if p := it.pre[i]; p != nil {
			for s, r := range railAt {
				tmp[p[s]] = r
			}
			copy(railAt, tmp)
		}
		for lvl := 1; lvl <= b.Levels(); lvl++ {
			var lv network.Level
			off := 0
			for _, tr := range b.Trees() {
				var local network.Level
				tr.collectLevel(lvl, 0, &local)
				for _, cm := range local {
					lv = append(lv, network.Comparator{
						Min: railAt[off+cm.Min], Max: railAt[off+cm.Max],
					})
				}
				off += tr.Inputs()
			}
			c.AddLevel(lv)
		}
	}
	return c, railAt
}
