package delta

import (
	"fmt"

	"shufflenet/internal/perm"
)

// Empty returns an l-level reverse delta network with no comparators at
// all (every node's final level is empty) — a pure pass-through block.
func Empty(l int) *Network {
	if l == 0 {
		return Leaf()
	}
	return Combine(Empty(l-1), Empty(l-1), nil)
}

// ReverseLowBits returns the permutation on n = 2^d slots that reverses
// the low s bits of the slot index and fixes the higher bits. It is an
// involution; ReverseLowBits(n, 0) and (n, 1) are the identity.
func ReverseLowBits(n, s int) perm.Perm {
	if s < 0 {
		panic(fmt.Sprintf("delta.ReverseLowBits: negative s = %d", s))
	}
	p := make(perm.Perm, n)
	for i := range p {
		low := i & (1<<uint(s) - 1)
		rev := 0
		for b := 0; b < s; b++ {
			rev = rev<<1 | (low >> uint(b) & 1)
		}
		p[i] = i&^(1<<uint(s)-1) | rev
	}
	return p
}

// BitonicStage builds stage s (1-based) of Batcher's bitonic sorter on
// 2^d slots as a d-level RDN *in ρ_s-relabeled space*, where ρ_s
// reverses the low s bits of the slot index: the circuit stage compares
// dimensions s−1, ..., 0 in descending order, while RDN levels ascend,
// so the stage equals an ascending-dimension RDN conjugated by ρ_s.
// Node depths above s have empty final levels; comparator directions
// follow bit s of the (relabeled) slot index, which ρ_s fixes.
func BitonicStage(d, s int) *Network {
	if s < 1 || s > d {
		panic(fmt.Sprintf("delta.BitonicStage: stage %d out of [1,%d]", s, d))
	}
	var build func(level, prefix int) *Network
	build = func(level, prefix int) *Network {
		if level == 0 {
			return Leaf()
		}
		sub0 := build(level-1, prefix<<1)
		sub1 := build(level-1, prefix<<1|1)
		h := 1 << uint(level-1)
		var final []Comp
		if level-1 < s {
			for j := 0; j < h; j++ {
				global := prefix<<uint(level) | j
				asc := global&(1<<uint(s)) == 0
				final = append(final, Comp{O0: j, O1: j, MinFirst: asc})
			}
		}
		return Combine(sub0, sub1, final)
	}
	return build(d, 0)
}

// BitonicIterated builds Batcher's bitonic sorting network on n = 2^d
// slots as a (d+1)-block iterated reverse delta network: stage s is
// BitonicStage(d, s) glued with the bit-reversal permutations that move
// the data between the ρ-relabeled spaces, and a final comparator-free
// block restores slot order. Its existence is why the paper's lower
// bound applies to Batcher's construction; Eval sorts every input
// (verified by the 0-1 principle in the tests).
func BitonicIterated(d int) *Iterated {
	n := 1 << uint(d)
	it := NewIterated(n)
	prev := perm.Identity(n)
	for s := 1; s <= d; s++ {
		rho := ReverseLowBits(n, s)
		it.AddBlock(prev.Compose(rho), BitonicStage(d, s))
		prev = rho
	}
	it.AddBlock(prev, Empty(d)) // unscramble ρ_d; ρ is an involution
	return it
}
