// Package topo models the hypercubic interconnection graphs the paper
// names in Section 1 — the hypercube, butterfly, cube-connected cycles,
// and shuffle-exchange — as explicit undirected graphs, and checks that
// register-model programs actually "run on" them: every data movement
// of a shuffle-based network traverses a shuffle-exchange edge.
//
// The graphs are small-scale executable definitions (adjacency, degree,
// diameter by BFS), used by tests and the documentation; they are what
// the machine simulator (internal/machine) abstracts away.
package topo

import (
	"fmt"

	"shufflenet/internal/bits"
	"shufflenet/internal/network"
	"shufflenet/internal/perm"
)

// Graph is a simple undirected graph on nodes 0..n-1.
type Graph struct {
	n   int
	adj [][]int
	set []map[int]bool
}

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph {
	if n < 1 {
		panic("topo.NewGraph: n < 1")
	}
	return &Graph{n: n, adj: make([][]int, n), set: make([]map[int]bool, n)}
}

// Nodes returns the node count.
func (g *Graph) Nodes() int { return g.n }

// AddEdge inserts the undirected edge {u, v}; duplicates and self-loops
// are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		panic(fmt.Sprintf("topo.AddEdge: edge (%d,%d) out of range", u, v))
	}
	if g.set[u] == nil {
		g.set[u] = map[int]bool{}
	}
	if g.set[v] == nil {
		g.set[v] = map[int]bool{}
	}
	if g.set[u][v] {
		return
	}
	g.set[u][v], g.set[v][u] = true, true
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return u != v && g.set[u] != nil && g.set[u][v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	m := 0
	for _, a := range g.adj {
		m += len(a)
	}
	return m / 2
}

// MaxDegree returns the maximum degree.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	return g.bfsEcc(0, nil) >= 0
}

// Diameter returns the graph diameter (max over all-pairs shortest
// paths), or -1 if disconnected. O(n·m) BFS; intended for small graphs.
func (g *Graph) Diameter() int {
	diam := 0
	dist := make([]int, g.n)
	for s := 0; s < g.n; s++ {
		ecc := g.bfsEcc(s, dist)
		if ecc < 0 {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// bfsEcc returns the eccentricity of s, or -1 if some node is
// unreachable. dist may be nil (scratch is allocated).
func (g *Graph) bfsEcc(s int, dist []int) int {
	if dist == nil {
		dist = make([]int, g.n)
	}
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	ecc := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				if dist[w] > ecc {
					ecc = dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	for _, dv := range dist {
		if dv < 0 {
			return -1
		}
	}
	return ecc
}

// Hypercube returns the d-dimensional hypercube: 2^d nodes, an edge per
// differing bit. Diameter d, degree d.
func Hypercube(d int) *Graph {
	n := 1 << uint(d)
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			g.AddEdge(v, v^(1<<uint(b)))
		}
	}
	return g
}

// ShuffleExchange returns the d-dimensional shuffle-exchange graph:
// 2^d nodes, exchange edges {x, x^1} and shuffle edges
// {x, rotLeft(x)}. The machine the paper's network class runs on.
func ShuffleExchange(d int) *Graph {
	n := 1 << uint(d)
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, v^1)
		g.AddEdge(v, bits.RotLeft(v, d))
	}
	return g
}

// Butterfly returns the d-dimensional butterfly graph: (d+1)·2^d nodes
// ⟨level, row⟩ with straight and cross edges between consecutive
// levels. Node index = level·2^d + row.
func Butterfly(d int) *Graph {
	rows := 1 << uint(d)
	g := NewGraph((d + 1) * rows)
	id := func(level, row int) int { return level*rows + row }
	for level := 0; level < d; level++ {
		for row := 0; row < rows; row++ {
			g.AddEdge(id(level, row), id(level+1, row))
			g.AddEdge(id(level, row), id(level+1, row^(1<<uint(level))))
		}
	}
	return g
}

// CCC returns the d-dimensional cube-connected cycles graph: d·2^d
// nodes ⟨cycle position i, hypercube corner x⟩; cycle edges around each
// corner and a dimension-i edge to the neighboring corner. Node index =
// x·d + i. Constant degree 3 (for d >= 3).
func CCC(d int) *Graph {
	n := d * (1 << uint(d))
	g := NewGraph(n)
	id := func(x, i int) int { return x*d + i }
	for x := 0; x < 1<<uint(d); x++ {
		for i := 0; i < d; i++ {
			g.AddEdge(id(x, i), id(x, (i+1)%d))
			g.AddEdge(id(x, i), id(x^(1<<uint(i)), i))
		}
	}
	return g
}

// ConformsToShuffleExchange reports whether every data movement of the
// register network uses only shuffle-exchange edges: each step's
// permutation must be the identity or the perfect shuffle (data moves
// along shuffle edges), and each pair operation acts on registers
// (2k, 2k+1), which are exchange-edge neighbors. This is the literal
// sense in which a "network based on the shuffle permutation" runs on
// the shuffle-exchange machine.
func ConformsToShuffleExchange(r *network.Register) bool {
	n := r.Registers()
	if !bits.IsPow2(n) {
		return false
	}
	sh := perm.Shuffle(n)
	se := ShuffleExchange(bits.Lg(n))
	for _, st := range r.Steps() {
		if st.Pi != nil && !st.Pi.IsIdentity() && !st.Pi.Equal(sh) {
			return false
		}
		for k, op := range st.Ops {
			if op == network.OpNone {
				continue
			}
			if !se.HasEdge(2*k, 2*k+1) {
				return false // cannot happen: (2k,2k+1) is an exchange edge
			}
		}
	}
	return true
}
