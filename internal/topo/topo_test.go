package topo

import (
	"testing"

	"shufflenet/internal/network"
	"shufflenet/internal/perm"
	"shufflenet/internal/randnet"
	"shufflenet/internal/shuffle"
)

func TestHypercube(t *testing.T) {
	for d := 1; d <= 8; d++ {
		g := Hypercube(d)
		if g.Nodes() != 1<<uint(d) {
			t.Fatalf("d=%d: %d nodes", d, g.Nodes())
		}
		if g.Edges() != d*(1<<uint(d))/2 {
			t.Fatalf("d=%d: %d edges", d, g.Edges())
		}
		if g.MaxDegree() != d {
			t.Fatalf("d=%d: max degree %d", d, g.MaxDegree())
		}
		if !g.Connected() {
			t.Fatalf("d=%d: disconnected", d)
		}
		if d <= 7 {
			if diam := g.Diameter(); diam != d {
				t.Fatalf("d=%d: diameter %d, want %d", d, diam, d)
			}
		}
	}
}

func TestShuffleExchange(t *testing.T) {
	// Known small diameters (computed, then frozen as regressions):
	// the SE graph has diameter ~2d-1.
	wantDiam := map[int]int{2: 3, 3: 5, 4: 7, 5: 9}
	for d := 2; d <= 5; d++ {
		g := ShuffleExchange(d)
		if g.Nodes() != 1<<uint(d) {
			t.Fatalf("d=%d: nodes", d)
		}
		if !g.Connected() {
			t.Fatalf("d=%d: disconnected", d)
		}
		// Degree at most 3: exchange + shuffle in + shuffle out.
		if g.MaxDegree() > 3 {
			t.Fatalf("d=%d: max degree %d > 3", d, g.MaxDegree())
		}
		if diam := g.Diameter(); diam != wantDiam[d] {
			t.Fatalf("d=%d: diameter %d, want %d (2d-1)", d, diam, wantDiam[d])
		}
	}
}

func TestButterflyGraph(t *testing.T) {
	for d := 1; d <= 5; d++ {
		g := Butterfly(d)
		if g.Nodes() != (d+1)*(1<<uint(d)) {
			t.Fatalf("d=%d: nodes", d)
		}
		if g.Edges() != d*(1<<uint(d))*2 {
			t.Fatalf("d=%d: %d edges", d, g.Edges())
		}
		if !g.Connected() {
			t.Fatalf("d=%d: disconnected", d)
		}
		if g.MaxDegree() > 4 {
			t.Fatalf("d=%d: degree %d > 4", d, g.MaxDegree())
		}
		// Diameter of the d-dimensional butterfly is 2d.
		if diam := g.Diameter(); diam != 2*d {
			t.Fatalf("d=%d: diameter %d, want %d", d, diam, 2*d)
		}
	}
}

func TestCCC(t *testing.T) {
	for d := 3; d <= 5; d++ {
		g := CCC(d)
		if g.Nodes() != d*(1<<uint(d)) {
			t.Fatalf("d=%d: nodes", d)
		}
		if !g.Connected() {
			t.Fatalf("d=%d: disconnected", d)
		}
		// The defining property: constant degree 3.
		if g.MaxDegree() != 3 {
			t.Fatalf("d=%d: max degree %d, want 3", d, g.MaxDegree())
		}
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // duplicate ignored
	g.AddEdge(1, 1) // self loop ignored
	if g.Edges() != 1 || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("basic edge bookkeeping wrong")
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if g.Diameter() != -1 {
		t.Fatal("diameter of disconnected graph")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge did not panic")
		}
	}()
	g.AddEdge(0, 5)
}

// The paper's class, literally: every shuffle-based register network's
// data movements stay on shuffle-exchange edges.
func TestConformsToShuffleExchange(t *testing.T) {
	for _, n := range []int{8, 16, 64} {
		if !ConformsToShuffleExchange(shuffle.Bitonic(n)) {
			t.Fatalf("n=%d: Stone bitonic does not conform?!", n)
		}
		if !ConformsToShuffleExchange(randnet.TruncatedBitonic(n, 5)) {
			t.Fatalf("n=%d: truncated bitonic does not conform", n)
		}
	}
	// A network using an arbitrary permutation does NOT conform.
	r := network.NewRegister(8)
	r.AddStep(network.Step{Pi: perm.BitReversal(8), Ops: make([]network.Op, 4)})
	if ConformsToShuffleExchange(r) {
		t.Fatal("bit-reversal step accepted as shuffle-exchange-conforming")
	}
	// Unshuffle steps also leave the strict class (they are the
	// ascend-descend machine's extra edges).
	r2 := network.NewRegister(8)
	shuffle.UnshufflePass(r2, func(t, u int) network.Op { return network.OpPlus })
	if ConformsToShuffleExchange(r2) {
		t.Fatal("unshuffle pass accepted as strict-shuffle-conforming")
	}
	// Identity steps are fine.
	r3 := network.NewRegister(8)
	r3.AddStep(network.Step{Ops: []network.Op{network.OpPlus, 0, 0, 0}})
	if !ConformsToShuffleExchange(r3) {
		t.Fatal("identity-permutation step rejected")
	}
}
