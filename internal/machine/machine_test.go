package machine

import (
	"math/rand"
	"testing"

	"shufflenet/internal/bits"
	"shufflenet/internal/perm"
	"shufflenet/internal/shuffle"
	"shufflenet/internal/sortcheck"
)

func TestRunStoneBitonic(t *testing.T) {
	n := 16
	d := bits.Lg(n)
	m := New(n, DefaultCost)
	r := shuffle.Bitonic(n)
	in := []int(perm.Random(n, rand.New(rand.NewSource(1))))
	out, s := m.Run(r, in)
	if !sortcheck.IsSorted(out) {
		t.Fatalf("machine output unsorted: %v", out)
	}
	// Every step routes (shuffle) and has at least one idle-pair-only or
	// comparator cost: cycles = steps·(route) + comparator steps·1.
	if s.Cycles < int64(d*d) || s.Cycles > int64(2*d*d) {
		t.Fatalf("cycles = %d outside [lg²n, 2lg²n]", s.Cycles)
	}
	if s.Comparisons != int64(r.Size()) {
		t.Fatalf("comparisons = %d, want %d", s.Comparisons, r.Size())
	}
	if s.Messages != int64(n*d*d) {
		t.Fatalf("messages = %d, want n·lg²n = %d", s.Messages, n*d*d)
	}
	if s.Inputs != 1 || s.CyclesPerInput() != float64(s.Cycles) {
		t.Fatal("input accounting wrong")
	}
}

func TestRunCostModel(t *testing.T) {
	n := 8
	m := New(n, CostModel{Route: 3, Compare: 5, Exchange: 2, Noop: 0})
	r := shuffle.Bitonic(n)
	_, s := m.Run(r, []int{7, 6, 5, 4, 3, 2, 1, 0})
	// 9 steps, all with shuffle (3 each); steps with any comparator add
	// 5; pure-idle steps add 0. Stone bitonic has 6 comparator steps
	// and 3 idle steps at n=8 (pass s waits d-s steps: 2+1+0 = 3).
	want := int64(9*3 + 6*5)
	if s.Cycles != want {
		t.Fatalf("cycles = %d, want %d", s.Cycles, want)
	}
}

func TestRunPipelinedThroughput(t *testing.T) {
	n := 16
	m := New(n, DefaultCost)
	r := shuffle.Bitonic(n)
	rng := rand.New(rand.NewSource(2))
	const B = 64
	batch := make([][]int, B)
	for i := range batch {
		batch[i] = []int(perm.Random(n, rng))
	}
	outs, s := m.RunPipelined(r, batch)
	for i, out := range outs {
		if !sortcheck.IsSorted(out) {
			t.Fatalf("pipelined output %d unsorted", i)
		}
	}
	// issue = Route+Compare = 2; cycles = 2(depth + B - 1).
	want := int64(2 * (r.Depth() + B - 1))
	if s.Cycles != want {
		t.Fatalf("cycles = %d, want %d", s.Cycles, want)
	}
	// Amortized cost per input must be far below the single-input cost.
	_, single := m.Run(r, batch[0])
	if s.CyclesPerInput() >= float64(single.Cycles)/4 {
		t.Fatalf("pipelining did not amortize: %.1f vs %d", s.CyclesPerInput(), single.Cycles)
	}
	if s.Comparisons != int64(B*r.Size()) {
		t.Fatal("pipelined comparison count wrong")
	}
}

func TestRunPipelinedEmpty(t *testing.T) {
	m := New(4, DefaultCost)
	r := shuffle.Bitonic(4)
	out, s := m.RunPipelined(r, nil)
	if out != nil || s.Cycles != 0 || s.Inputs != 0 {
		t.Fatal("empty batch should be free")
	}
	if s.CyclesPerInput() != 0 {
		t.Fatal("CyclesPerInput on empty stats")
	}
}

func TestMachineGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("odd processors", func() { New(7, DefaultCost) })
	mustPanic("width mismatch", func() {
		New(8, DefaultCost).Run(shuffle.Bitonic(4), []int{3, 2, 1, 0})
	})
	mustPanic("pipelined width mismatch", func() {
		New(8, DefaultCost).RunPipelined(shuffle.Bitonic(4), [][]int{{3, 2, 1, 0}})
	})
}
