// Package machine simulates a shuffle-exchange multiprocessor
// executing register-model comparator networks.
//
// The paper motivates its network class by exactly this machine:
// "the primary motivation for considering hypercubic networks in the
// context of parallel computation is that they admit elegant and
// efficient strict ascend algorithms" (Section 1). Here the machine is
// explicit: n processors each hold one register; a step routes all
// registers along the step's permutation wires and then applies the
// paired operations. The simulator charges a configurable cost per
// routing step and per pair operation, counts comparisons, exchanges,
// and wire messages, and supports wavefront pipelining of input
// batches (a new input vector enters the first stage as soon as the
// previous one clears it).
package machine

import (
	"fmt"

	"shufflenet/internal/network"
)

// CostModel assigns cycle costs to the machine's primitive actions.
// A step costs Route (if it has a non-identity permutation) plus the
// maximum op cost among its pairs (the processors act in lockstep).
type CostModel struct {
	Route    int // one permutation routing step (all wires in parallel)
	Compare  int // a "+"/"−" compare-exchange at a pair
	Exchange int // a "1" fixed swap at a pair
	Noop     int // a "0" idle pair
}

// DefaultCost is the unit-cost model: routing and comparator work cost
// one cycle each, idle pairs are free.
var DefaultCost = CostModel{Route: 1, Compare: 1, Exchange: 1, Noop: 0}

// Stats aggregates a run's work.
type Stats struct {
	Cycles      int64 // total machine cycles (lockstep)
	Comparisons int64 // compare-exchanges performed
	Exchanges   int64 // fixed swaps performed
	Messages    int64 // values moved along permutation wires
	Inputs      int64 // input vectors processed
}

// CyclesPerInput returns the amortized cycle cost.
func (s Stats) CyclesPerInput() float64 {
	if s.Inputs == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Inputs)
}

// Machine is an n-processor shuffle-exchange style machine (it executes
// any register network; "shuffle-exchange" is the intended workload).
type Machine struct {
	n    int
	cost CostModel
}

// New returns a machine with n processors under the given cost model.
func New(n int, cost CostModel) *Machine {
	if n < 2 || n%2 != 0 {
		panic(fmt.Sprintf("machine.New: n = %d must be even and >= 2", n))
	}
	return &Machine{n: n, cost: cost}
}

// Processors returns n.
func (m *Machine) Processors() int { return m.n }

// stepCost returns the cycle cost of one step and tallies op counts.
func (m *Machine) stepCost(st network.Step, s *Stats) int64 {
	c := 0
	if st.Pi != nil {
		c += m.cost.Route
		s.Messages += int64(m.n)
	}
	opMax := m.cost.Noop
	for _, op := range st.Ops {
		var oc int
		switch op {
		case network.OpPlus, network.OpMinus:
			oc = m.cost.Compare
			s.Comparisons++
		case network.OpSwap:
			oc = m.cost.Exchange
			s.Exchanges++
		default:
			oc = m.cost.Noop
		}
		if oc > opMax {
			opMax = oc
		}
	}
	return int64(c + opMax)
}

// Run executes the register network on one input vector and returns
// the output with the run's statistics.
func (m *Machine) Run(r *network.Register, in []int) ([]int, Stats) {
	if r.Registers() != m.n {
		panic(fmt.Sprintf("machine.Run: network has %d registers, machine %d", r.Registers(), m.n))
	}
	var s Stats
	s.Inputs = 1
	for _, st := range r.Steps() {
		s.Cycles += m.stepCost(st, &s)
	}
	out := r.Eval(in)
	return out, s
}

// RunPipelined streams a batch of input vectors through the network as
// a wavefront pipeline: each step is a pipeline stage, and a new input
// enters stage 0 each issue interval (the maximum stage cost, since the
// machine is lockstep). Total cycles = issue·(depth + B − 1); outputs
// equal running each input alone.
func (m *Machine) RunPipelined(r *network.Register, batch [][]int) ([][]int, Stats) {
	if r.Registers() != m.n {
		panic(fmt.Sprintf("machine.RunPipelined: network has %d registers, machine %d", r.Registers(), m.n))
	}
	var s Stats
	s.Inputs = int64(len(batch))
	if len(batch) == 0 {
		return nil, s
	}
	// Per-stage cost (tallying one input's work); the pipeline issues at
	// the slowest stage's rate.
	var issue int64 = 1
	for _, st := range r.Steps() {
		if c := m.stepCost(st, &s); c > issue {
			issue = c
		}
	}
	// Work counters scale with the number of inputs.
	s.Comparisons *= int64(len(batch))
	s.Exchanges *= int64(len(batch))
	s.Messages *= int64(len(batch))
	s.Cycles = issue * int64(r.Depth()+len(batch)-1)

	out := make([][]int, len(batch))
	for i, in := range batch {
		out[i] = r.Eval(in)
	}
	return out, s
}
