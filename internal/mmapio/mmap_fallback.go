//go:build !linux && !darwin

package mmapio

import "os"

// Fallback for platforms without syscall.Mmap (windows, js/wasm, and
// unixes we have not wired): the file is read into an ordinary buffer
// and written back on Sync/Close. Semantics match the mapped path for
// orderly shutdowns; kill-durability (dirty pages surviving SIGKILL)
// is a unix-mapping property and is documented as such by callers.
func mapFile(f *os.File, size int64) (*File, error) {
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, data: data}, nil
}

func (m *File) sync() error {
	if len(m.data) == 0 {
		return nil
	}
	if _, err := m.f.WriteAt(m.data, 0); err != nil {
		return err
	}
	return m.f.Sync()
}

func (m *File) unmap() error { return nil }
