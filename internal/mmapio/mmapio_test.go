package mmapio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestCreateWriteReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.bin")
	m, err := Create(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 4096 {
		t.Fatalf("size = %d, want 4096", m.Size())
	}
	b := m.Bytes()
	for i := range b {
		if b[i] != 0 {
			t.Fatalf("fresh mapping not zero at %d", i)
		}
	}
	copy(b[100:], []byte("hello spill"))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Bytes()[100:111]; !bytes.Equal(got, []byte("hello spill")) {
		t.Fatalf("reopened contents = %q", got)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xff}, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Create(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i, v := range m.Bytes() {
		if v != 0 {
			t.Fatalf("Create did not zero existing file at %d", i)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "m"), 0); err == nil {
		t.Fatal("Create(size=0) should fail")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("Open(missing) should fail")
	}
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(empty); err == nil {
		t.Fatal("Open(empty) should fail")
	}
}

func TestCloseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.bin")
	m, err := Create(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	var nilFile *File
	if err := nilFile.Sync(); err != nil {
		t.Fatalf("nil Sync: %v", err)
	}
	if err := nilFile.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}
