//go:build linux || darwin

package mmapio

import (
	"os"
	"syscall"
	"unsafe"
)

// mapFile maps fd's first size bytes MAP_SHARED: stores land in the
// page cache immediately, so even a SIGKILLed process leaves its
// writes behind for the next open (modulo torn pages at crash time —
// the caller's format must tolerate those; see core's spill verifier).
func mapFile(f *os.File, size int64) (*File, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, data: data}, nil
}

func (m *File) sync() error {
	if len(m.data) == 0 {
		return nil
	}
	// msync(MS_SYNC): the slice's base pointer is stable for the
	// duration of the call (Go slices do not move).
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&m.data[0])), uintptr(len(m.data)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return errno
	}
	return nil
}

func (m *File) unmap() error {
	if m.data == nil {
		return nil
	}
	return syscall.Munmap(m.data)
}
