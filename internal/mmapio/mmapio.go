// Package mmapio memory-maps files for the repo's disk-resident data
// structures — today the optimum search's spillable transposition table
// (core.OpenSpillMemo). The package is deliberately tiny: create or
// open a file of a fixed size, expose its contents as one writable
// byte slice, sync on demand, unmap on close.
//
// On unix the slice is a real shared mapping (MAP_SHARED), so stores
// are visible to a later run of the same file even after a SIGKILL —
// the kernel owns the dirty pages, not the process. Platforms without
// syscall.Mmap (windows, js/wasm) get a read-into-memory fallback
// whose writes reach the file only on Sync/Close; callers that promise
// kill-durability should document that it is unix-only.
package mmapio

import (
	"fmt"
	"os"
)

// File is a fixed-size file exposed as a byte slice.
type File struct {
	f    *os.File
	data []byte
}

// Create creates (or truncates) path at exactly size bytes, zero
// filled, and maps it writable.
func Create(path string, size int64) (*File, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mmapio: size must be positive (got %d)", size)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	return mapFile(f, size)
}

// Open maps an existing file writable, at its current size.
func Open(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() <= 0 {
		f.Close()
		return nil, fmt.Errorf("mmapio: %s is empty", path)
	}
	return mapFile(f, st.Size())
}

// Bytes is the mapped contents. The slice is valid until Close; writes
// to it mutate the file (immediately on unix, on Sync elsewhere).
func (m *File) Bytes() []byte { return m.data }

// Size is the mapped length in bytes.
func (m *File) Size() int64 { return int64(len(m.data)) }

// Sync flushes outstanding writes to the file.
func (m *File) Sync() error {
	if m == nil {
		return nil
	}
	return m.sync()
}

// Close syncs, unmaps, and closes. The Bytes slice must not be used
// afterwards. Nil-safe and idempotent.
func (m *File) Close() error {
	if m == nil || m.f == nil {
		return nil
	}
	syncErr := m.sync()
	unmapErr := m.unmap()
	closeErr := m.f.Close()
	m.f, m.data = nil, nil
	if syncErr != nil {
		return syncErr
	}
	if unmapErr != nil {
		return unmapErr
	}
	return closeErr
}
