package pattern

import (
	"math/rand"
	"testing"

	"shufflenet/internal/netbuild"
	"shufflenet/internal/network"
)

func TestForEachRefinementEnumeratesExactly(t *testing.T) {
	// S0 M0 M0 L0: the M class has 2 orderings; S and L are singletons.
	p := Pattern{S(0), M(0), M(0), L(0)}
	if got := p.RefinementCount(); got != 2 {
		t.Fatalf("RefinementCount = %d, want 2", got)
	}
	var seen [][]int
	p.ForEachRefinement(func(pi []int) bool {
		seen = append(seen, append([]int(nil), pi...))
		return true
	})
	if len(seen) != 2 {
		t.Fatalf("enumerated %d refinements", len(seen))
	}
	for _, pi := range seen {
		if !p.RefinesInput(pi) {
			t.Fatalf("enumerated non-refinement %v", pi)
		}
	}
	// The two must differ exactly in the M values' order.
	if seen[0][1] == seen[1][1] {
		t.Fatalf("duplicate refinements: %v", seen)
	}
}

func TestForEachRefinementCountMatchesFactorials(t *testing.T) {
	// 3 M's and 2 S's: 3!·2! = 12.
	p := Pattern{M(0), S(0), M(0), S(0), M(0)}
	if got := p.RefinementCount(); got != 12 {
		t.Fatalf("count = %d", got)
	}
	n := 0
	p.ForEachRefinement(func([]int) bool { n++; return true })
	if n != 12 {
		t.Fatalf("enumerated %d", n)
	}
}

func TestForEachRefinementEarlyStop(t *testing.T) {
	p := Uniform(6, M(0)) // 720 refinements
	n := 0
	p.ForEachRefinement(func([]int) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop failed: %d", n)
	}
}

func TestRefinementCountOverflow(t *testing.T) {
	if Uniform(30, M(0)).RefinementCount() != -1 {
		t.Fatal("30! should overflow the bound")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ForEachRefinement did not panic on overflow")
		}
	}()
	Uniform(30, M(0)).ForEachRefinement(func([]int) bool { return true })
}

// Example 3.3, now with the exact classifier: every claim of the
// example as stated in the paper.
func TestExample33Classify(t *testing.T) {
	c := network.New(4)
	c.AddComparators(1, 2)
	c.AddComparators(2, 3)
	c.AddComparators(0, 3)
	p := Pattern{S(0), M(0), M(0), L(0)}

	cases := []struct {
		w0, w1 int
		want   CollisionClass
	}{
		{1, 2, CollideAlways},    // (1) first comparator joins them
		{1, 3, CollideSometimes}, // (2) depends on the M ordering
		{2, 3, CollideSometimes}, // (2) symmetric
		{0, 3, CollideAlways},    // (3) no exchange can prevent it
		{0, 1, CollideNever},     // (3) S never meets the M's
		{0, 2, CollideNever},
	}
	for _, tc := range cases {
		if got := Classify(c, p, tc.w0, tc.w1); got != tc.want {
			t.Errorf("Classify(w%d, w%d) = %v, want %v", tc.w0, tc.w1, got, tc.want)
		}
	}
}

func TestCollisionClassString(t *testing.T) {
	if CollideNever.String() != "cannot collide" ||
		CollideAlways.String() != "collide" ||
		CollideSometimes.String() != "can collide" {
		t.Error("String names wrong")
	}
	if CollisionClass(9).String() == "" {
		t.Error("unknown class should render")
	}
}

// The fast symbol-simulation Noncolliding must agree with the exact
// exhaustive decision on random small instances — the strongest
// validation of the collision machinery the adversary rests on.
func TestNoncollidingAgreesWithExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(4) // n in [4,7]: at most 7!-ish refinements
		c := netbuild.RandomLevels(n, 1+rng.Intn(4), rng)
		p := make(Pattern, n)
		for i := range p {
			p[i] = []Symbol{S(0), M(0), L(0)}[rng.Intn(3)]
		}
		fast := Noncolliding(c, p, M(0))
		exact := NoncollidingExhaustive(c, p, M(0))
		if fast != exact {
			t.Fatalf("checker disagreement: fast=%v exact=%v\np=%v", fast, exact, p)
		}
	}
}

// Classify(…)==CollideNever for all pairs in a set must coincide with
// NoncollidingExhaustive.
func TestClassifyConsistentWithSetCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(3)
		c := netbuild.RandomLevels(n, 1+rng.Intn(4), rng)
		p := make(Pattern, n)
		for i := range p {
			p[i] = []Symbol{S(0), M(0), L(0)}[rng.Intn(3)]
		}
		set := p.Set(M(0))
		allNever := true
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				if Classify(c, p, set[i], set[j]) != CollideNever {
					allNever = false
				}
			}
		}
		if allNever != NoncollidingExhaustive(c, p, M(0)) {
			t.Fatalf("pairwise and set checks disagree")
		}
	}
}
