// Package pattern implements Section 3 of Plaxton & Suel (SPAA 1992):
// input patterns over the fixed pattern alphabet
//
//	P = { S_i, X_{i,j}, M_i, L_i | i, j >= 0 }
//
// with the total order <_P defined by
//
//	S_i < S_{i+1},   S_i < X_{0,0},   X_{i,j} < X_{i,j+1},
//	X_{i,j} < M_i,   M_i < X_{i+1,0}, M_i < L_j,   L_{i+1} < L_i,
//
// together with pattern refinement (Definition 3.1–3.3), [P]-sets,
// order-preserving renamings (Lemma 3.4's ρ_i), pattern evaluation
// through a comparator network (Definition 3.5), and the collision
// bookkeeping (Definitions 3.6–3.7) that the lower-bound adversary in
// internal/core is built on.
package pattern

import "fmt"

// Kind identifies the family of a pattern symbol.
type Kind uint8

const (
	// KindS is the family S_i of "small" symbols.
	KindS Kind = iota
	// KindX is the family X_{i,j} of discarded symbols parked just
	// below M_i.
	KindX
	// KindM is the family M_i of tracked "medium" symbols.
	KindM
	// KindL is the family L_i of "large" symbols (ordered by
	// descending index: L_{i+1} < L_i).
	KindL
)

// Symbol is one element of the pattern alphabet P. J is meaningful only
// for KindX.
type Symbol struct {
	Kind Kind
	I    int
	J    int
}

// S returns the symbol S_i.
func S(i int) Symbol { return Symbol{Kind: KindS, I: i} }

// X returns the symbol X_{i,j}.
func X(i, j int) Symbol { return Symbol{Kind: KindX, I: i, J: j} }

// M returns the symbol M_i.
func M(i int) Symbol { return Symbol{Kind: KindM, I: i} }

// L returns the symbol L_i.
func L(i int) Symbol { return Symbol{Kind: KindL, I: i} }

// class returns the coarse position of the symbol's family in <_P:
// all S's come first, then the interleaved X/M block, then all L's.
func (s Symbol) class() int {
	switch s.Kind {
	case KindS:
		return 0
	case KindX, KindM:
		return 1
	default:
		return 2
	}
}

// Compare returns -1, 0, or +1 as a <_P b, a = b, or a >_P b.
func Compare(a, b Symbol) int {
	ca, cb := a.class(), b.class()
	if ca != cb {
		return sign(ca - cb)
	}
	switch ca {
	case 0: // S_i ascending in i
		return sign(a.I - b.I)
	case 2: // L_i DESCENDING in i: L_{i+1} < L_i
		return sign(b.I - a.I)
	}
	// Interleaved X/M block: X_{i,0} < ... < X_{i,j} < M_i < X_{i+1,0}.
	if a.I != b.I {
		return sign(a.I - b.I)
	}
	aM, bM := a.Kind == KindM, b.Kind == KindM
	switch {
	case aM && bM:
		return 0
	case aM:
		return 1 // M_i > X_{i,j}
	case bM:
		return -1
	default:
		return sign(a.J - b.J)
	}
}

// Less reports a <_P b.
func Less(a, b Symbol) bool { return Compare(a, b) < 0 }

// String renders the symbol in the paper's notation: S3, X2.1, M0, L4.
func (s Symbol) String() string {
	switch s.Kind {
	case KindS:
		return fmt.Sprintf("S%d", s.I)
	case KindX:
		return fmt.Sprintf("X%d.%d", s.I, s.J)
	case KindM:
		return fmt.Sprintf("M%d", s.I)
	case KindL:
		return fmt.Sprintf("L%d", s.I)
	default:
		return fmt.Sprintf("?%d.%d.%d", s.Kind, s.I, s.J)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
