package pattern

// Differential tests: the optimized relation implementations are
// checked against direct transcriptions of the paper's definitions.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shufflenet/internal/netbuild"
)

// refinesBrute is Definition 3.1(b) verbatim: O(n²) over wire pairs.
func refinesBrute(p, q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for w := range p {
		for w2 := range p {
			if Less(p[w], p[w2]) && !Less(q[w], q[w2]) {
				return false
			}
		}
	}
	return true
}

// refinesInputBrute is Definition 3.1(c) verbatim.
func refinesInputBrute(p Pattern, pi []int) bool {
	if len(p) != len(pi) {
		return false
	}
	for w := range p {
		for w2 := range p {
			if Less(p[w], p[w2]) && pi[w] >= pi[w2] {
				return false
			}
		}
	}
	return true
}

func randPattern(rng *rand.Rand, n int) Pattern {
	p := make(Pattern, n)
	for i := range p {
		p[i] = randSymbol(rng)
	}
	return p
}

func TestRefinesDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		p, q := randPattern(rng, n), randPattern(rng, n)
		if p.Refines(q) != refinesBrute(p, q) {
			t.Logf("p=%v q=%v fast=%v brute=%v", p, q, p.Refines(q), refinesBrute(p, q))
			return false
		}
		// Also check a pair that IS likely a refinement: q derived from
		// p by class-splitting.
		q2 := p.Clone()
		for i := range q2 {
			if q2[i].Kind == KindM && rng.Intn(2) == 0 {
				q2[i].I += rng.Intn(3) // may or may not stay a refinement
			}
		}
		return p.Refines(q2) == refinesBrute(p, q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRefinesInputDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		p := randPattern(rng, n)
		pi := rng.Perm(n)
		return p.RefinesInput(pi) == refinesInputBrute(p, pi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The refinement relation is a partial order on equivalence classes:
// transitivity via the brute-force definition.
func TestRefinesTransitiveDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	found := 0
	for trial := 0; trial < 4000 && found < 60; trial++ {
		n := 2 + rng.Intn(6)
		p := randPattern(rng, n)
		q := randPattern(rng, n)
		r := randPattern(rng, n)
		if p.Refines(q) && q.Refines(r) {
			found++
			if !p.Refines(r) {
				t.Fatalf("transitivity violated: %v ⊐ %v ⊐ %v", p, q, r)
			}
		}
	}
	if found < 10 {
		t.Skipf("only %d chained refinements found; weak sample", found)
	}
}

// Pattern evaluation agrees with the set-image characterization of
// Definition 3.5 on small instances: the multiset of symbols is
// preserved and the output pattern is what every refined input maps to.
func TestEvalPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 50; trial++ {
		n := 2 + 2*rng.Intn(5)
		c := netbuild.RandomLevels(n, 1+rng.Intn(5), rng)
		p := randPattern(rng, n)
		out := Eval(c, p)
		cp, co := count(p), count(out)
		if len(cp) != len(co) {
			t.Fatalf("Eval changed the symbol multiset: %v -> %v", p, out)
		}
		for sym, k := range cp {
			if co[sym] != k {
				t.Fatalf("Eval changed the symbol multiset: %v -> %v", p, out)
			}
		}
	}
}

func count(p Pattern) map[Symbol]int {
	m := map[Symbol]int{}
	for _, s := range p {
		m[s]++
	}
	return m
}
