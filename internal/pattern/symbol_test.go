package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// orderedSample returns a list of symbols in strictly increasing <_P
// order, straddling every clause of the paper's order definition.
func orderedSample() []Symbol {
	return []Symbol{
		S(0), S(1), S(2), S(7),
		X(0, 0), X(0, 1), X(0, 5), M(0),
		X(1, 0), X(1, 2), M(1),
		X(2, 0), M(2), M(3),
		L(9), L(4), L(1), L(0),
	}
}

func TestOrderChain(t *testing.T) {
	syms := orderedSample()
	for i := 0; i < len(syms); i++ {
		for j := 0; j < len(syms); j++ {
			got := Compare(syms[i], syms[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", syms[i], syms[j], got, want)
			}
		}
	}
}

func TestOrderPaperClauses(t *testing.T) {
	// The seven defining clauses, one by one.
	cases := []struct{ lo, hi Symbol }{
		{S(3), S(4)},       // S_i < S_{i+1}
		{S(99), X(0, 0)},   // S_i < X_{0,0}
		{X(2, 3), X(2, 4)}, // X_{i,j} < X_{i,j+1}
		{X(2, 9), M(2)},    // X_{i,j} < M_i
		{M(2), X(3, 0)},    // M_i < X_{i+1,0}
		{M(7), L(3)},       // M_i < L_j (any i, j)
		{L(5), L(4)},       // L_{i+1} < L_i
	}
	for _, c := range cases {
		if !Less(c.lo, c.hi) {
			t.Errorf("want %v <_P %v", c.lo, c.hi)
		}
		if Less(c.hi, c.lo) {
			t.Errorf("order not antisymmetric on (%v, %v)", c.lo, c.hi)
		}
	}
}

func randSymbol(rng *rand.Rand) Symbol {
	switch rng.Intn(4) {
	case 0:
		return S(rng.Intn(6))
	case 1:
		return X(rng.Intn(6), rng.Intn(6))
	case 2:
		return M(rng.Intn(6))
	default:
		return L(rng.Intn(6))
	}
}

func TestOrderIsTotalAndTransitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randSymbol(rng), randSymbol(rng), randSymbol(rng)
		// Antisymmetry / totality.
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		if Compare(a, b) == 0 && a != b {
			return false
		}
		// Transitivity.
		if Less(a, b) && Less(b, c) && !Less(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestSymbolString(t *testing.T) {
	cases := map[string]Symbol{
		"S0":   S(0),
		"X2.1": X(2, 1),
		"M3":   M(3),
		"L4":   L(4),
	}
	for want, sym := range cases {
		if got := sym.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", sym, got, want)
		}
	}
}

func TestMZeroSitsBetweenSAndL(t *testing.T) {
	// The invariant the whole proof rests on: every S_i < M_0-adjacent
	// region < every L_i, and there is room for unboundedly many X and
	// M symbols in between.
	if !Less(S(1000), X(0, 0)) || !Less(M(1000), L(1000)) {
		t.Error("S/X/M/L macro-order broken")
	}
}
