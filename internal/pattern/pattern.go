package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Pattern is an input pattern (Definition 3.1a): a total mapping from
// wires to pattern symbols. Wires are identified with indices 0..n−1;
// p[w] is the symbol on wire w.
type Pattern []Symbol

// Uniform returns the pattern assigning sym to all n wires.
func Uniform(n int, sym Symbol) Pattern {
	p := make(Pattern, n)
	for i := range p {
		p[i] = sym
	}
	return p
}

// Clone returns a copy of p.
func (p Pattern) Clone() Pattern {
	q := make(Pattern, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q assign identical symbols everywhere.
func (p Pattern) Equal(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Set returns the [sym]-set of p: the wires carrying sym, in increasing
// order.
func (p Pattern) Set(sym Symbol) []int {
	var out []int
	for w, s := range p {
		if s == sym {
			out = append(out, w)
		}
	}
	return out
}

// Count returns the number of wires carrying sym.
func (p Pattern) Count(sym Symbol) int {
	n := 0
	for _, s := range p {
		if s == sym {
			n++
		}
	}
	return n
}

// Symbols returns the distinct symbols of p in <_P order.
func (p Pattern) Symbols() []Symbol {
	seen := map[Symbol]bool{}
	var out []Symbol
	for _, s := range p {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// Refines reports whether p can be refined to q (Definition 3.1b,
// p ⊐_W q): for all wires w, w', p(w) <_P p(w') implies q(w) <_P q(w').
// Equivalently, for consecutive symbol classes of p in <_P order, every
// q-symbol used in the earlier class is strictly below every q-symbol
// used in the later class.
func (p Pattern) Refines(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	type rng struct{ min, max Symbol }
	classes := map[Symbol]*rng{}
	for w, s := range p {
		r, ok := classes[s]
		if !ok {
			classes[s] = &rng{min: q[w], max: q[w]}
			continue
		}
		if Less(q[w], r.min) {
			r.min = q[w]
		}
		if Less(r.max, q[w]) {
			r.max = q[w]
		}
	}
	syms := p.Symbols()
	for i := 1; i < len(syms); i++ {
		prev, cur := classes[syms[i-1]], classes[syms[i]]
		if !Less(prev.max, cur.min) {
			return false
		}
	}
	return true
}

// URefines reports whether p can be U-refined to q (Definition 3.2b):
// p ⊐_W q and p(w) = q(w) for every wire outside U.
func (p Pattern) URefines(q Pattern, u []int) bool {
	if len(p) != len(q) {
		return false
	}
	inU := make(map[int]bool, len(u))
	for _, w := range u {
		inU[w] = true
	}
	for w := range p {
		if !inU[w] && p[w] != q[w] {
			return false
		}
	}
	return p.Refines(q)
}

// RefinesInput reports whether p can be refined to the input π
// (Definition 3.1c): p(w) <_P p(w') implies π(w) < π(w').
func (p Pattern) RefinesInput(pi []int) bool {
	if len(p) != len(pi) {
		return false
	}
	type rng struct{ min, max int }
	classes := map[Symbol]*rng{}
	for w, s := range p {
		r, ok := classes[s]
		if !ok {
			classes[s] = &rng{min: pi[w], max: pi[w]}
			continue
		}
		if pi[w] < r.min {
			r.min = pi[w]
		}
		if pi[w] > r.max {
			r.max = pi[w]
		}
	}
	syms := p.Symbols()
	for i := 1; i < len(syms); i++ {
		if classes[syms[i-1]].max >= classes[syms[i]].min {
			return false
		}
	}
	return true
}

// Equivalent reports whether p and q refine each other, i.e. they
// describe the same set of inputs and differ only by an
// order-preserving renaming.
func (p Pattern) Equivalent(q Pattern) bool {
	return p.Refines(q) && q.Refines(p)
}

// RefineToInput produces a concrete input (a permutation of 0..n−1)
// that p refines to: wires are ranked by their symbol under <_P, ties
// broken by the order callback if non-nil (less over wire indices)
// and by wire index otherwise.
func (p Pattern) RefineToInput(tieLess func(a, b int) bool) []int {
	n := len(p)
	wires := make([]int, n)
	for i := range wires {
		wires[i] = i
	}
	sort.SliceStable(wires, func(x, y int) bool {
		a, b := wires[x], wires[y]
		if c := Compare(p[a], p[b]); c != 0 {
			return c < 0
		}
		if tieLess != nil {
			return tieLess(a, b)
		}
		return a < b
	})
	pi := make([]int, n)
	for rank, w := range wires {
		pi[w] = rank
	}
	return pi
}

// Rename applies Lemma 3.4's renaming ρ_i: every symbol below M_i
// becomes S_0, every symbol above M_i becomes L_0, and M_i itself
// becomes M_0. The result uses only {S_0, M_0, L_0} and preserves
// noncollision of the [M_i]-set (Lemma 3.4).
func (p Pattern) Rename(i int) Pattern {
	mi := M(i)
	q := make(Pattern, len(p))
	for w, s := range p {
		switch Compare(s, mi) {
		case -1:
			q[w] = S(0)
		case 1:
			q[w] = L(0)
		default:
			q[w] = M(0)
		}
	}
	return q
}

// Restrict returns the restriction p|_U as a new pattern over the wires
// in u (in the given order), together with the mapping back to original
// wire indices (the slice u itself).
func (p Pattern) Restrict(u []int) Pattern {
	q := make(Pattern, len(u))
	for i, w := range u {
		q[i] = p[w]
	}
	return q
}

// Join implements ⊕ (Definition 3.3) for index-disjoint patterns given
// as (wires, pattern) pairs over a common wire universe of size n:
// it scatters each sub-pattern back to its wires. Panics if a wire is
// covered twice or not at all.
func Join(n int, wires [][]int, parts []Pattern) Pattern {
	if len(wires) != len(parts) {
		panic("pattern.Join: wires/parts length mismatch")
	}
	out := make(Pattern, n)
	covered := make([]bool, n)
	for k, ws := range wires {
		if len(ws) != len(parts[k]) {
			panic("pattern.Join: part size mismatch")
		}
		for i, w := range ws {
			if covered[w] {
				panic(fmt.Sprintf("pattern.Join: wire %d covered twice", w))
			}
			covered[w] = true
			out[w] = parts[k][i]
		}
	}
	for w, c := range covered {
		if !c {
			panic(fmt.Sprintf("pattern.Join: wire %d not covered", w))
		}
	}
	return out
}

// String renders the pattern as a space-separated symbol list.
func (p Pattern) String() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}
