package pattern

// Executable statements of the paper's basic lemmas (Section 3.3).
// Each lemma becomes a property checked over randomized instances.

import (
	"math/rand"
	"testing"

	"shufflenet/internal/netbuild"
	"shufflenet/internal/network"
)

// Lemma 3.1: if p uses only {S0, M0, L0}, W = W0 ∪ W1 disjointly,
// A = [M0]-set of p, and q0, q1 are patterns on W0, W1 with all A-wires
// mapped strictly between S0 and L0, then p|W0 ⊃_{A∩W0} q0 and
// p|W1 ⊃_{A∩W1} q1 imply p ⊃_A (q0 ⊕ q1).
func TestLemma31(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(10)
		p := make(Pattern, n)
		for i := range p {
			p[i] = []Symbol{S(0), M(0), L(0)}[rng.Intn(3)]
		}
		// Random disjoint cover W0 / W1.
		var w0, w1 []int
		for w := 0; w < n; w++ {
			if rng.Intn(2) == 0 {
				w0 = append(w0, w)
			} else {
				w1 = append(w1, w)
			}
		}
		// Build independent A-refinements of the two restrictions:
		// split the M0 class into M-symbols with fresh indices (all
		// strictly between S0 and L0 in <_P).
		refineHalf := func(ws []int) Pattern {
			q := p.Restrict(ws)
			for i := range q {
				if q[i] == M(0) {
					q[i] = M(rng.Intn(4))
				}
			}
			return q
		}
		q0, q1 := refineHalf(w0), refineHalf(w1)

		aw0 := p.Restrict(w0).Set(M(0))
		aw1 := p.Restrict(w1).Set(M(0))
		if !p.Restrict(w0).URefines(q0, aw0) || !p.Restrict(w1).URefines(q1, aw1) {
			t.Fatal("half-refinements malformed (test bug)")
		}

		joined := Join(n, [][]int{w0, w1}, []Pattern{q0, q1})
		if !p.URefines(joined, p.Set(M(0))) {
			t.Fatalf("Lemma 3.1 violated:\np = %v\nq = %v", p, joined)
		}
	}
}

// Lemma 3.2: if the [P0]- and [P1]-sets are each noncolliding in the
// first d−1 levels, then any w0 in [P0], w1 in [P1] either collide at
// level d under EVERY refinement or under NONE — i.e. whether the two
// values meet at the last level does not depend on the refinement.
func TestLemma32(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		n := 8
		d := 1 + rng.Intn(4)
		c := netbuild.RandomLevels(n, d, rng)
		prefix := c.Truncate(d - 1)

		p := make(Pattern, n)
		for i := range p {
			p[i] = []Symbol{S(0), M(0), M(1), L(0)}[rng.Intn(4)]
		}
		if !Noncolliding(prefix, p, M(0)) || !Noncolliding(prefix, p, M(1)) {
			continue // premise not satisfied; resample
		}
		set0, set1 := p.Set(M(0)), p.Set(M(1))
		for _, w0 := range set0 {
			for _, w1 := range set1 {
				// Decide collision at level d over a spread of
				// refinements (rotating tie-breaks).
				met := map[bool]bool{}
				for rot := 0; rot < 4; rot++ {
					pi := p.RefineToInput(func(a, b int) bool {
						return (a+rot)%n < (b+rot)%n
					})
					if !p.RefinesInput(pi) {
						t.Fatal("refinement bug")
					}
					_, trace := c.EvalTrace(pi)
					m := false
					for _, cp := range trace {
						if cp.Level == d-1 &&
							((cp.A == pi[w0] && cp.B == pi[w1]) || (cp.A == pi[w1] && cp.B == pi[w0])) {
							m = true
						}
					}
					met[m] = true
				}
				if len(met) > 1 {
					t.Fatalf("Lemma 3.2 violated: wires %d,%d meet at level %d under some refinements only\np=%v", w0, w1, d, p)
				}
			}
		}
	}
}

// Lemma 3.3 (composition): pushing a pattern through Λ0 and refining
// the result inside the image of the [M_i]-set lifts back to a
// refinement at Λ0's inputs, and noncollision in Λ1 under the refined
// output pattern gives noncollision in Λ0 ⊗ Λ1. We check the
// observable consequence: noncollision of [M0] in the composite equals
// noncollision in Λ0 plus noncollision of the forwarded pattern in Λ1.
func TestLemma33(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		n := 8
		l0 := netbuild.RandomLevels(n, 1+rng.Intn(3), rng)
		l1 := netbuild.RandomLevels(n, 1+rng.Intn(3), rng)
		comp := l0.Clone().Append(l1)

		p := make(Pattern, n)
		for i := range p {
			p[i] = []Symbol{S(0), M(0), L(0)}[rng.Intn(3)]
		}
		if !Noncolliding(l0, p, M(0)) {
			continue // premise
		}
		q := Eval(l0, p) // Λ0(p), Definition 3.5
		want := Noncolliding(l1, q, M(0))
		got := Noncolliding(comp, p, M(0))
		if got != want {
			t.Fatalf("Lemma 3.3 violated: composite=%v, forwarded=%v\np=%v q=%v", got, want, p, q)
		}
	}
}

// Lemma 3.4: if the [M_i]-set A is noncolliding in Λ under p, it is
// noncolliding under ρ_i(p) as well.
func TestLemma34(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	checked := 0
	for trial := 0; trial < 200 && checked < 50; trial++ {
		n := 8
		c := netbuild.RandomLevels(n, 1+rng.Intn(4), rng)
		p := make(Pattern, n)
		for w := range p {
			p[w] = []Symbol{S(0), S(1), X(0, 0), M(0), M(1), M(2), L(0), L(1)}[rng.Intn(8)]
		}
		for i := 0; i < 3; i++ {
			if len(p.Set(M(i))) < 2 || !Noncolliding(c, p, M(i)) {
				continue
			}
			checked++
			renamed := p.Rename(i)
			if !Noncolliding(c, renamed, M(0)) {
				t.Fatalf("Lemma 3.4 violated for i=%d:\np = %v\nρ = %v", i, p, renamed)
			}
			// The renamed set must be the same wires.
			a, b := p.Set(M(i)), renamed.Set(M(0))
			if len(a) != len(b) {
				t.Fatalf("ρ changed the set size")
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("ρ changed the set membership")
				}
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d instances satisfied the premise; weak test", checked)
	}
}

// The two-model equivalence claim of Section 1, at the pattern level:
// evaluating a pattern on a circuit and on its register conversion
// agree (modulo the conversion's placement).
func TestPatternEvalAcrossModels(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 30; trial++ {
		n := 8
		c := netbuild.RandomLevels(n, 1+rng.Intn(4), rng)
		reg, place := network.ToRegister(c)
		circBack, place2 := network.FromRegister(reg)
		_ = place
		p := make(Pattern, n)
		for i := range p {
			p[i] = []Symbol{S(0), M(0), L(0)}[rng.Intn(3)]
		}
		a := Eval(c, p)
		b := Eval(circBack, p)
		_ = place2
		for r := 0; r < n; r++ {
			if a[r] != b[r] {
				t.Fatal("pattern evaluation differs across a model round trip")
			}
		}
	}
}
