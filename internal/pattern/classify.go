package pattern

import (
	"fmt"

	"shufflenet/internal/network"
)

// CollisionClass is the trichotomy of Definition 3.7 for a pair of
// wires under a pattern.
type CollisionClass int

const (
	// CollideNever: the wires cannot collide — no refinement compares
	// their values (Definition 3.7c).
	CollideNever CollisionClass = iota
	// CollideSometimes: the wires can collide but do not always
	// (Definition 3.7b holds, 3.7a does not).
	CollideSometimes
	// CollideAlways: the wires collide — every refinement compares
	// their values (Definition 3.7a).
	CollideAlways
)

// String names the class.
func (c CollisionClass) String() string {
	switch c {
	case CollideNever:
		return "cannot collide"
	case CollideSometimes:
		return "can collide"
	case CollideAlways:
		return "collide"
	default:
		return fmt.Sprintf("CollisionClass(%d)", int(c))
	}
}

// MaxRefinements bounds the exhaustive enumeration in Classify and
// ForEachRefinement: the number of refinements of p is the product of
// the factorials of its class sizes.
const MaxRefinements = 2_000_000

// RefinementCount returns the number of distinct inputs p refines to,
// or -1 if it exceeds MaxRefinements.
func (p Pattern) RefinementCount() int64 {
	total := int64(1)
	counts := map[Symbol]int{}
	for _, s := range p {
		counts[s]++
	}
	for _, k := range counts {
		for i := 2; i <= k; i++ {
			total *= int64(i)
			if total > MaxRefinements {
				return -1
			}
		}
	}
	return total
}

// ForEachRefinement invokes f on every input π with p ⊐_W π, in a
// deterministic order, stopping early if f returns false. It panics if
// the refinement count exceeds MaxRefinements. The slice passed to f is
// reused across calls.
func (p Pattern) ForEachRefinement(f func(pi []int) bool) {
	if p.RefinementCount() < 0 {
		panic(fmt.Sprintf("pattern: more than %d refinements", MaxRefinements))
	}
	// Wires grouped by symbol in <_P order; class i gets the value
	// block [base_i, base_i + |class_i|).
	syms := p.Symbols()
	classes := make([][]int, len(syms))
	for i, s := range syms {
		classes[i] = p.Set(s)
	}
	pi := make([]int, len(p))
	var rec func(ci, base int) bool
	rec = func(ci, base int) bool {
		if ci == len(classes) {
			return f(pi)
		}
		ws := classes[ci]
		// Heap's algorithm over the class's value assignment.
		vals := make([]int, len(ws))
		for i := range vals {
			vals[i] = base + i
		}
		var heap func(k int) bool
		heap = func(k int) bool {
			if k == 1 {
				for i, w := range ws {
					pi[w] = vals[i]
				}
				return rec(ci+1, base+len(ws))
			}
			for i := 0; i < k; i++ {
				if !heap(k - 1) {
					return false
				}
				if k%2 == 0 {
					vals[i], vals[k-1] = vals[k-1], vals[i]
				} else {
					vals[0], vals[k-1] = vals[k-1], vals[0]
				}
			}
			return true
		}
		return heap(len(ws))
	}
	rec(0, 0)
}

// Classify decides the Definition 3.7 trichotomy exactly, by running
// the network on every refinement of p (so the pattern must have at
// most MaxRefinements of them): do the values entering at w0 and w1
// always / sometimes / never get compared?
func Classify(c *network.Network, p Pattern, w0, w1 int) CollisionClass {
	met, missed := false, false
	p.ForEachRefinement(func(pi []int) bool {
		if c.Compared(pi, pi[w0], pi[w1]) {
			met = true
		} else {
			missed = true
		}
		return !(met && missed) // stop once both observed
	})
	switch {
	case met && !missed:
		return CollideAlways
	case !met && missed:
		return CollideNever
	default:
		return CollideSometimes
	}
}

// NoncollidingExhaustive decides Definition 3.7(d) exactly by
// enumeration: every pair of wires in the [sym]-set must be
// CollideNever. It is the ground-truth (exponential) counterpart of
// Noncolliding, used to validate the symbol-simulation checker.
func NoncollidingExhaustive(c *network.Network, p Pattern, sym Symbol) bool {
	set := p.Set(sym)
	inSet := make(map[int]bool, len(set))
	for _, w := range set {
		inSet[w] = true
	}
	ok := true
	p.ForEachRefinement(func(pi []int) bool {
		setVal := make(map[int]bool, len(set))
		for _, w := range set {
			setVal[pi[w]] = true
		}
		_, trace := c.EvalTrace(pi)
		for _, cp := range trace {
			if setVal[cp.A] && setVal[cp.B] {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}
