package pattern

import (
	"math/rand"
	"testing"
)

// Example 3.1 of the paper, recast onto wires 0..n-1 with the generic
// alphabet (S_0, M_0, L_0 playing Small/Medium/Large).
func TestExample31(t *testing.T) {
	n := 6
	p := Uniform(n, M(0))
	p[0], p[1] = L(0), L(0)

	// p refines to all inputs assigning the two largest values to wires
	// 0 and 1.
	pi := []int{4, 5, 0, 1, 2, 3}
	if !p.RefinesInput(pi) {
		t.Error("p should refine to an input with largest values on wires 0,1")
	}
	bad := []int{4, 3, 5, 0, 1, 2} // wire 2 got a value above wire 1's
	if p.RefinesInput(bad) {
		t.Error("p must not refine to an input violating L > M")
	}

	// Refine p to p' assigning S to wire 2.
	pp := p.Clone()
	pp[2] = S(0)
	if !p.Refines(pp) {
		t.Error("p ⊐ p' must hold")
	}
	if pp.Refines(p) {
		t.Error("p' ⊐ p must not hold (p' is strictly finer)")
	}
}

// Example 3.2: shifting every index of a one-family alphabet is an
// order-preserving renaming, i.e. an equivalence.
func TestExample32(t *testing.T) {
	p := Pattern{M(0), M(1), M(2), M(1)}
	q := Pattern{M(3), M(4), M(5), M(4)}
	if !p.Equivalent(q) {
		t.Error("index-shifted patterns must be equivalent")
	}
	r := Pattern{M(3), M(5), M(4), M(5)} // order of classes changed
	if p.Equivalent(r) {
		t.Error("non-order-preserving renaming accepted")
	}
}

func TestRefinesReflexiveAndTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		p := make(Pattern, n)
		for i := range p {
			p[i] = randSymbol(rng)
		}
		if !p.Refines(p) {
			t.Fatal("Refines not reflexive")
		}
		// Refine p by splitting one class.
		q := p.Clone()
		if !p.Refines(q) {
			t.Fatal("clone not a refinement")
		}
	}
}

func TestRefinesSplitsClasses(t *testing.T) {
	// p: M0 M0 M0 -> q: M0 M1 M2 is a refinement (no p-constraint
	// between equal symbols); the reverse is not.
	p := Pattern{M(0), M(0), M(0)}
	q := Pattern{M(0), M(1), M(2)}
	if !p.Refines(q) {
		t.Error("splitting a class must be a refinement")
	}
	if q.Refines(p) {
		t.Error("merging classes must not be a refinement")
	}
}

func TestRefinesRejectsOrderViolation(t *testing.T) {
	p := Pattern{S(0), L(0)}
	q := Pattern{L(0), S(0)}
	if p.Refines(q) {
		t.Error("order-reversing map accepted")
	}
}

func TestRefinesRejectsOverlap(t *testing.T) {
	// Classes S0 < M0 map to ranges that interleave: reject.
	p := Pattern{S(0), S(0), M(0), M(0)}
	q := Pattern{S(0), M(1), M(0), L(0)} // S0-class max (M1) >= M0-class min (M0)
	if p.Refines(q) {
		t.Error("interleaving ranges accepted")
	}
}

func TestURefines(t *testing.T) {
	p := Pattern{S(0), M(0), M(0), L(0)}
	q := Pattern{S(0), M(0), M(1), L(0)}
	if !p.URefines(q, []int{1, 2}) {
		t.Error("valid U-refinement rejected")
	}
	if p.URefines(q, []int{1}) {
		t.Error("U-refinement changing a wire outside U accepted")
	}
}

func TestSetAndCount(t *testing.T) {
	p := Pattern{M(0), S(0), M(0), L(0), M(1)}
	set := p.Set(M(0))
	if len(set) != 2 || set[0] != 0 || set[1] != 2 {
		t.Errorf("Set = %v", set)
	}
	if p.Count(M(0)) != 2 || p.Count(M(9)) != 0 {
		t.Error("Count wrong")
	}
}

func TestSymbolsSorted(t *testing.T) {
	p := Pattern{L(0), M(0), S(0), X(0, 0), M(0)}
	syms := p.Symbols()
	want := []Symbol{S(0), X(0, 0), M(0), L(0)}
	if len(syms) != len(want) {
		t.Fatalf("Symbols = %v", syms)
	}
	for i := range want {
		if syms[i] != want[i] {
			t.Fatalf("Symbols = %v, want %v", syms, want)
		}
	}
}

func TestRefineToInputIsPermutationAndRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		p := make(Pattern, n)
		for i := range p {
			p[i] = randSymbol(rng)
		}
		pi := p.RefineToInput(nil)
		seen := make([]bool, n)
		for _, v := range pi {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("not a permutation: %v", pi)
			}
			seen[v] = true
		}
		if !p.RefinesInput(pi) {
			t.Fatalf("RefineToInput output is not a refinement of %v: %v", p, pi)
		}
	}
}

func TestRefineToInputMSetAdjacent(t *testing.T) {
	// With only S0/M0/L0 present, the M0 wires must receive a block of
	// adjacent values (the certificate construction relies on this).
	p := Pattern{L(0), M(0), S(0), M(0), S(0), M(0)}
	pi := p.RefineToInput(nil)
	vals := []int{}
	for _, w := range p.Set(M(0)) {
		vals = append(vals, pi[w])
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo != len(vals)-1 {
		t.Errorf("M-set values not adjacent: %v", vals)
	}
	if lo != p.Count(S(0)) {
		t.Errorf("M-set block must sit just above the S block")
	}
}

func TestRenameLemma34(t *testing.T) {
	p := Pattern{S(0), S(2), X(1, 0), M(1), X(2, 0), M(2), L(0), L(3)}
	q := p.Rename(1)
	want := Pattern{S(0), S(0), S(0), M(0), L(0), L(0), L(0), L(0)}
	if !q.Equal(want) {
		t.Errorf("Rename(1) = %v, want %v", q, want)
	}
	// Renaming must be implied by refinement: p ⊐ q? No — renaming maps
	// many classes onto S0/L0, which merges classes; it is q ⊐ p that
	// holds (q is coarser).
	if !q.Refines(p) {
		t.Error("ρ_i(p) must refine back to p (it is coarser)")
	}
}

func TestRestrictAndJoin(t *testing.T) {
	p := Pattern{S(0), M(0), L(0), M(0)}
	u := []int{1, 3}
	r := p.Restrict(u)
	if len(r) != 2 || r[0] != M(0) || r[1] != M(0) {
		t.Errorf("Restrict = %v", r)
	}
	joined := Join(4, [][]int{{0, 2}, {1, 3}}, []Pattern{{S(0), L(0)}, {M(0), M(0)}})
	if !joined.Equal(p) {
		t.Errorf("Join = %v, want %v", joined, p)
	}
}

func TestJoinPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("double cover", func() {
		Join(2, [][]int{{0}, {0}}, []Pattern{{S(0)}, {S(0)}})
	})
	mustPanic("uncovered", func() {
		Join(3, [][]int{{0}, {1}}, []Pattern{{S(0)}, {S(0)}})
	})
	mustPanic("size mismatch", func() {
		Join(2, [][]int{{0, 1}}, []Pattern{{S(0)}})
	})
}

func TestUniformAndString(t *testing.T) {
	p := Uniform(3, M(0))
	if p.String() != "M0 M0 M0" {
		t.Errorf("String = %q", p.String())
	}
}

// Property: refining a pattern and then refining to an input is the
// same as refining the original pattern to that input (refinement
// composes).
func TestRefinementComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(10)
		p := make(Pattern, n)
		for i := range p {
			p[i] = randSymbol(rng)
		}
		// Build a refinement of p: split each class by renaming some
		// occurrences to a fresh higher symbol inside an empty gap.
		// Simplest valid refinement: p itself, or total order by wire.
		q := p.Clone()
		pi := q.RefineToInput(nil)
		if !p.RefinesInput(pi) {
			t.Fatalf("composition failed: p=%v q=%v pi=%v", p, q, pi)
		}
	}
}
