package pattern

import (
	"math/rand"
	"testing"

	"shufflenet/internal/netbuild"
	"shufflenet/internal/network"
)

// example33Network builds the network of Example 3.3: a comparator
// between w1 and w2, then w2 and w3, then w0 and w3, all directed
// toward the larger index.
func example33Network() *network.Network {
	c := network.New(4)
	c.AddComparators(1, 2)
	c.AddComparators(2, 3)
	c.AddComparators(0, 3)
	return c
}

// example33Pattern maps w0 -> S, w1,w2 -> M, w3 -> L.
func example33Pattern() Pattern {
	return Pattern{S(0), M(0), M(0), L(0)}
}

func TestExample33Collisions(t *testing.T) {
	c := example33Network()
	p := example33Pattern()

	// (1) w1 and w2 collide (the very first comparator joins them):
	// the trace must contain an ambiguous M-M event on wires 1, 2.
	pairs := CollidingPairs(c, p, M(0))
	if len(pairs) != 1 || pairs[0] != [2]int{1, 2} {
		t.Fatalf("M-M colliding pairs = %v, want [[1 2]]", pairs)
	}
	if Noncolliding(c, p, M(0)) {
		t.Error("the M-set {w1,w2} must be colliding")
	}

	// (3) w0 and w3 collide: under every refinement the values meet at
	// the third comparator. Verify on concrete inputs: enumerate the
	// two refinements (w1<w2 and w2<w1) and check the S and L values
	// always meet.
	for _, order := range [][2]int{{1, 2}, {2, 1}} {
		pi := p.RefineToInput(func(a, b int) bool {
			if a == order[0] && b == order[1] {
				return true
			}
			if a == order[1] && b == order[0] {
				return false
			}
			return a < b
		})
		if !c.Compared(pi, pi[0], pi[3]) {
			t.Errorf("w0 and w3 did not collide under refinement %v", pi)
		}
		// (2) w1 can collide with w3: it does under the refinement that
		// assigns the larger M value to w1.
		w1Larger := pi[1] > pi[2]
		met := c.Compared(pi, pi[1], pi[3])
		if w1Larger && !met {
			t.Errorf("w1 should collide with w3 when w1 carries the larger M value")
		}
		if !w1Larger && met {
			t.Errorf("w1 should not collide with w3 when w2 carries the larger M value")
		}
		// w0 cannot collide with w1 or w2: S meets them never.
		if c.Compared(pi, pi[0], pi[1]) || c.Compared(pi, pi[0], pi[2]) {
			t.Error("w0 must not collide with w1/w2")
		}
	}
}

func TestEvalOrdersSymbols(t *testing.T) {
	c := network.New(2).AddComparators(0, 1)
	out := Eval(c, Pattern{L(0), S(0)})
	if out[0] != S(0) || out[1] != L(0) {
		t.Errorf("Eval = %v", out)
	}
	// Equal symbols stay put.
	out = Eval(c, Pattern{M(0), M(0)})
	if out[0] != M(0) || out[1] != M(0) {
		t.Errorf("Eval equal = %v", out)
	}
}

func TestEvalMatchesConcreteEvaluation(t *testing.T) {
	// Definition 3.5: the output pattern describes exactly the outputs
	// of the refined inputs. Check: Eval(c, p) at rail r equals the
	// symbol class of the concrete output value.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 4 + 2*rng.Intn(5)
		c := netbuild.RandomLevels(n, 1+rng.Intn(6), rng)
		p := make(Pattern, n)
		for i := range p {
			p[i] = []Symbol{S(0), M(0), L(0)}[rng.Intn(3)]
		}
		outP := Eval(c, p)
		pi := p.RefineToInput(nil)
		outV := c.Eval(pi)
		// Symbol class boundaries in value space.
		nS, nM := p.Count(S(0)), p.Count(M(0))
		classOf := func(v int) Symbol {
			switch {
			case v < nS:
				return S(0)
			case v < nS+nM:
				return M(0)
			default:
				return L(0)
			}
		}
		for r := 0; r < n; r++ {
			if classOf(outV[r]) != outP[r] {
				t.Fatalf("trial %d: rail %d has value %d (class %v) but pattern %v\np=%v",
					trial, r, outV[r], classOf(outV[r]), outP[r], p)
			}
		}
	}
}

func TestEvalTracePosOf(t *testing.T) {
	// With all-distinct symbols, PosOf must match concrete value routing.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 4 + 2*rng.Intn(5)
		c := netbuild.RandomLevels(n, 1+rng.Intn(5), rng)
		p := make(Pattern, n)
		for i := range p {
			p[i] = M(i) // all distinct: no ambiguity anywhere
		}
		res := EvalTrace(c, p)
		for _, ev := range res.Events {
			if ev.Ambiguous {
				t.Fatal("distinct symbols produced an ambiguous event")
			}
		}
		pi := p.RefineToInput(nil) // value = wire rank = wire index here
		outV := c.Eval(pi)
		for w := 0; w < n; w++ {
			if outV[res.PosOf[w]] != pi[w] {
				t.Fatalf("PosOf wrong for wire %d", w)
			}
		}
	}
}

func TestNoncollidingOnButterflyFamily(t *testing.T) {
	// In a single ascending butterfly (bitonic merger reversed...), two
	// M's placed in the same half at the top level collide only if
	// their paths meet; placing one M in each half of every recursive
	// split keeps them apart through all but the last level. Concretely:
	// wires 0 and 3 in a 4-wire butterfly meet only at... verify via the
	// checker against brute-force input enumeration.
	c := netbuild.BitonicMerger(4)
	for w0 := 0; w0 < 4; w0++ {
		for w1 := w0 + 1; w1 < 4; w1++ {
			p := Uniform(4, S(0))
			p[w0], p[w1] = M(0), M(0)
			// Reference: do the two M values meet under some refinement?
			collides := false
			// Enumerate both orders of the two M values.
			for _, swap := range []bool{false, true} {
				pi := p.RefineToInput(func(a, b int) bool {
					if swap {
						return a > b
					}
					return a < b
				})
				if c.Compared(pi, pi[w0], pi[w1]) {
					collides = true
				}
			}
			if got := !Noncolliding(c, p, M(0)); got != collides {
				t.Errorf("wires (%d,%d): checker says collides=%v, brute force %v",
					w0, w1, got, collides)
			}
		}
	}
}

func TestVerifyNoncollidingByInputs(t *testing.T) {
	c := example33Network()
	p := example33Pattern()
	if VerifyNoncollidingByInputs(c, p, M(0), 4) {
		t.Error("concrete verification missed the M-M collision")
	}
	// A noncolliding set: S-wire alone (singleton sets never collide).
	if !VerifyNoncollidingByInputs(c, p, S(0), 4) {
		t.Error("singleton S-set flagged as colliding")
	}
	// Two M's on wires that never meet: wires 0 and 1 in a 4-wire
	// network whose only comparator is (2,3).
	c2 := network.New(4).AddComparators(2, 3)
	p2 := Pattern{M(0), M(0), S(0), S(0)}
	if !Noncolliding(c2, p2, M(0)) || !VerifyNoncollidingByInputs(c2, p2, M(0), 4) {
		t.Error("disjoint M-set flagged as colliding")
	}
}

func TestEvalWidthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width mismatch did not panic")
		}
	}()
	Eval(network.New(3), Pattern{S(0)})
}
