package pattern

import (
	"fmt"

	"shufflenet/internal/network"
	"shufflenet/internal/perm"
)

// Event records one comparator firing during a pattern evaluation:
// the values originating at input wires A and B met at a comparator of
// the given level, carrying symbols SymA and SymB at that moment.
//
// When SymA == SymB the comparator's outcome is not determined by the
// pattern (Ambiguous): the evaluation leaves the two values in place,
// which is one of the two legal refinement behaviours. Wire identities
// downstream of an ambiguous event are exact only for wires whose
// symbols never participate in an ambiguous event — in particular for
// the noncolliding [M_i]-sets the adversary maintains.
type Event struct {
	Level     int
	A, B      int // input-wire ids whose values met (A on the min rail)
	SymA      Symbol
	SymB      Symbol
	Ambiguous bool
}

// Result is the outcome of EvalTrace.
type Result struct {
	// Out is the output pattern (Definition 3.5): Out[r] is the symbol
	// on output rail r.
	Out Pattern
	// PosOf[w] is the output rail holding the value that entered on
	// wire w (exact for wires not downstream-entangled with ambiguous
	// events; see Event).
	PosOf perm.Perm
	// Events lists every comparator firing in level order.
	Events []Event
}

// Eval pushes the pattern p through the circuit c and returns the
// output pattern (Definition 3.5): at each comparator the <_P-smaller
// symbol exits on the min rail. Equal symbols are fixed points.
func Eval(c *network.Network, p Pattern) Pattern {
	checkWidth(c, p)
	out := p.Clone()
	for _, lv := range c.Levels() {
		for _, cm := range lv {
			if Less(out[cm.Max], out[cm.Min]) {
				out[cm.Min], out[cm.Max] = out[cm.Max], out[cm.Min]
			}
		}
	}
	return out
}

// EvalTrace pushes p through c while tracking the input wire carried by
// each value and recording every comparator firing.
func EvalTrace(c *network.Network, p Pattern) Result {
	checkWidth(c, p)
	n := len(p)
	syms := p.Clone()
	ids := make(perm.Perm, n) // ids[rail] = input wire of the value on rail
	for i := range ids {
		ids[i] = i
	}
	events := make([]Event, 0, c.Size())
	for li, lv := range c.Levels() {
		for _, cm := range lv {
			a, b := cm.Min, cm.Max
			cmp := Compare(syms[a], syms[b])
			events = append(events, Event{
				Level: li, A: ids[a], B: ids[b],
				SymA: syms[a], SymB: syms[b],
				Ambiguous: cmp == 0,
			})
			if cmp > 0 {
				syms[a], syms[b] = syms[b], syms[a]
				ids[a], ids[b] = ids[b], ids[a]
			}
		}
	}
	posOf := make(perm.Perm, n)
	for rail, w := range ids {
		posOf[w] = rail
	}
	return Result{Out: syms, PosOf: posOf, Events: events}
}

// Noncolliding reports whether the [sym]-set of p is noncolliding in c
// under p (Definition 3.7d): no two wires of the set can have their
// values compared under any refinement of p. For a symbol class this
// holds iff no comparator ever sees the symbol on both inputs, which is
// what the trace detects.
func Noncolliding(c *network.Network, p Pattern, sym Symbol) bool {
	res := EvalTrace(c, p)
	for _, ev := range res.Events {
		if ev.Ambiguous && ev.SymA == sym {
			return false
		}
	}
	return true
}

// CollidingPairs returns, for each ambiguous event on sym, the pair of
// input wires involved. Useful for diagnostics and tests.
func CollidingPairs(c *network.Network, p Pattern, sym Symbol) [][2]int {
	res := EvalTrace(c, p)
	var out [][2]int
	for _, ev := range res.Events {
		if ev.Ambiguous && ev.SymA == sym {
			out = append(out, [2]int{ev.A, ev.B})
		}
	}
	return out
}

// VerifyNoncollidingByInputs cross-checks Noncolliding against concrete
// evaluation (Definition 3.6): it refines p to `trials` concrete inputs
// with distinct tie-breaking orders, runs the real network on each, and
// reports whether in every run no two values from the set were
// compared. The tie-break orders are rotations of the set, which is
// enough to exercise distinct routings through ambiguous regions.
func VerifyNoncollidingByInputs(c *network.Network, p Pattern, sym Symbol, trials int) bool {
	set := p.Set(sym)
	inSet := make(map[int]bool, len(set))
	for _, w := range set {
		inSet[w] = true
	}
	if trials < 1 {
		trials = 1
	}
	for t := 0; t < trials; t++ {
		rot := t % max(1, len(set))
		pi := p.RefineToInput(func(a, b int) bool {
			// Rotate the relative order of set members; leave others.
			if inSet[a] && inSet[b] {
				ra := (indexOf(set, a) + rot) % len(set)
				rb := (indexOf(set, b) + rot) % len(set)
				return ra < rb
			}
			return a < b
		})
		if !p.RefinesInput(pi) {
			panic("pattern: RefineToInput produced a non-refinement")
		}
		_, trace := c.EvalTrace(pi)
		// Which values belong to set members?
		setVal := make(map[int]bool, len(set))
		for _, w := range set {
			setVal[pi[w]] = true
		}
		for _, cp := range trace {
			if setVal[cp.A] && setVal[cp.B] {
				return false
			}
		}
	}
	return true
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func checkWidth(c *network.Network, p Pattern) {
	if c.Wires() != len(p) {
		panic(fmt.Sprintf("pattern: pattern width %d != network width %d", len(p), c.Wires()))
	}
}
