package experiments

import (
	"math/rand"

	"shufflenet/internal/benes"
	"shufflenet/internal/bits"
	"shufflenet/internal/perm"
	"shufflenet/internal/shuffle"
)

// E9Routing measures the permutation-routing landscape behind the
// paper's framing (Sections 1, 6): strict "ascend" machines (shuffle
// only) versus "ascend-descend" machines (shuffle and unshuffle). All
// routes here are switch-only networks (no comparators), verified on
// random permutations.
func E9Routing(cfg Config) *Table {
	t := &Table{
		ID:    "E9",
		Title: "Permutation routing: ascend (shuffle) vs ascend-descend (shuffle-unshuffle)",
		Claim: "arbitrary permutations are routable in 3 lg n − 4 shuffle-exchange levels [10,9,14]; with unshuffle allowed, 2 passes suffice (Beneš); our strict-shuffle route-by-sorting pays lg²n (substitution, DESIGN.md)",
		Columns: []string{
			"n", "shuffle-only depth", "shuffle+unshuffle depth", "benes cols",
			"cited 3lg n−4", "routes ok",
		},
	}
	sizes := []int{8, 16, 64, 256, 1024}
	if cfg.Quick {
		sizes = []int{8, 16, 64}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range sizes {
		if err := cfg.Err(); err != nil {
			t.NoteCanceled(err)
			return t
		}
		d := bits.Lg(n)
		trials := 5
		if cfg.Quick {
			trials = 2
		}
		ok := true
		var depthShuffle, depthBoth int
		for trial := 0; trial < trials; trial++ {
			target := perm.Random(n, rng)
			in := make([]int, n)
			for i := range in {
				in[i] = i
			}

			rs := shuffle.RoutePermutation(target)
			depthShuffle = rs.Depth()
			if !rs.IsShuffleBased() || rs.Size() != 0 {
				ok = false
			}
			ru := shuffle.RouteShuffleUnshuffle(target)
			depthBoth = ru.Depth()
			if ru.Size() != 0 {
				ok = false
			}
			for _, r := range []interface{ Eval([]int) []int }{rs, ru} {
				out := r.Eval(in)
				for i := range in {
					if out[target[i]] != in[i] {
						ok = false
					}
				}
			}
		}
		t.AddRow(n, depthShuffle, depthBoth, benes.Columns(n), 3*d-4, boolMark(ok))
	}
	t.Note("shuffle-only = routing by replaying a bitonic sort of destination tags (depth lg²n); shuffle+unshuffle = one shuffle pass + one unshuffle pass with Beneš looping settings (depth 2 lg n)")
	t.Note("the depth gap is the constructive face of the ascend vs. ascend-descend separation the paper's lower bound establishes for sorting")
	return t
}
