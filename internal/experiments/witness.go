package experiments

import (
	"math"
	"math/rand"

	"shufflenet/internal/bits"
	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/perm"
	"shufflenet/internal/randnet"
	"shufflenet/internal/sortcheck"
)

// E11Witnesses measures 0-1 witness density, the quantity behind the
// Section 5 "representative set" discussion. The paper rules out small
// representative 0-1 test sets by invoking Leighton–Plaxton networks
// that sort all but a 2^(-2^(o(lg n/lg lg n))) fraction of inputs —
// non-sorters with astronomically thin witness sets. Our substitution
// (DESIGN.md) does not reach that regime, and this table quantifies the
// gap honestly: for the NAIVE shallow shuffle-based networks built
// here, witnesses are abundant (almost every 0-1 input fails), so
// random testing catches them instantly — while the adversary still
// names a specific witness pair directly, which is the part of the
// paper this repository makes constructive.
func E11Witnesses(cfg Config) *Table {
	t := &Table{
		ID:    "E11",
		Title: "0-1 witness density of shallow shuffle-based networks",
		Claim: "Section 5 context: ruling out small representative sets needs nearly-sorting networks (thin witnesses); naive shallow networks sit at the opposite extreme (dense witnesses) — the measured gap our LP substitution leaves open",
		Columns: []string{
			"network", "n", "depth", "unsorted 0-1 inputs", "of 2^n", "escape prob", "adversary cert",
		},
	}
	n := 16
	total := float64(int64(1) << uint(n))
	d := bits.Lg(n)
	rng := rand.New(rand.NewSource(cfg.Seed))

	addRow := func(name string, depth int, ev sortcheck.Evaluator, cert string) bool {
		frac, err := sortcheck.ZeroOneFractionCtx(cfg.Context(), n, ev, cfg.Workers)
		if err != nil {
			t.NoteCanceled(err)
			return false
		}
		unsorted := (1 - frac) * total
		t.AddRow(name, n, depth, math.Round(unsorted), total, frac, cert)
		return true
	}

	// Truncated Stone bitonic at pass boundaries.
	passes := []int{1, 2, 3}
	if cfg.Quick {
		passes = []int{1, 2}
	}
	for _, p := range passes {
		r := randnet.TruncatedBitonic(n, p*d)
		if !addRow("bitonic/pass", r.Depth(), r, "-") {
			return t
		}
	}

	// Two-block iterated butterflies: provably non-sorting with a
	// verified certificate.
	it := delta.NewIterated(n)
	it.AddBlock(nil, delta.Butterfly(d))
	it.AddBlock(perm.Random(n, rng), delta.Butterfly(d))
	circ, _ := it.ToNetwork()
	cert := "none"
	an, aerr := core.Theorem41Ctx(cfg.Context(), it, 0)
	if aerr != nil {
		t.NoteCanceled(aerr)
		return t
	}
	if len(an.D) >= 2 {
		if c, err := an.Certificate(); err == nil && c.Verify(circ) == nil {
			cert = "verified"
		}
	}
	if !addRow("butterfly×2", circ.Depth(), circ, cert) {
		return t
	}

	// Full bitonic: control row, zero witnesses.
	full := randnet.TruncatedBitonic(n, d*d)
	if !addRow("bitonic/full", full.Depth(), full, "-") {
		return t
	}

	t.Note("escape prob = fraction of the 2^16 0-1 inputs the network sorts (exhaustive); naive shallow networks sort almost nothing, so their witnesses are dense — the Leighton–Plaxton nearly-sorters the paper invokes are precisely the networks that push escape prob to 1 − 2^(−2^(o(lg n/lg lg n)))")
	return t
}
