package experiments

import (
	"math"
	"math/rand"
	"strconv"

	"shufflenet/internal/benes"
	"shufflenet/internal/bits"
	"shufflenet/internal/delta"
	"shufflenet/internal/halver"
	"shufflenet/internal/netbuild"
	"shufflenet/internal/randnet"
	"shufflenet/internal/shuffle"
	"shufflenet/internal/sortcheck"
)

// E1BitonicUpperBound verifies the paper's upper-bound reference point
// (Sections 1–2): Batcher's bitonic sorter is realizable as a network
// based purely on the shuffle permutation with depth exactly lg²n, and
// it sorts. Verification is the full 0-1 principle for n <= 16 and
// randomized spot-checking beyond.
func E1BitonicUpperBound(cfg Config) *Table {
	t := &Table{
		ID:    "E1",
		Title: "Stone's shuffle-based bitonic sorter: depth lg²n, sorts",
		Claim: "Θ(lg²n)-depth shuffle-based sorting network exists (Batcher via Stone); every Π_i is the perfect shuffle",
		Columns: []string{
			"n", "lg n", "depth", "lg²n", "comparators", "shuffle-based", "check", "sorts",
		},
	}
	sizes := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	if cfg.Quick {
		sizes = []int{8, 16, 64, 256}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range sizes {
		if err := cfg.Err(); err != nil {
			t.NoteCanceled(err)
			return t
		}
		d := bits.Lg(n)
		r := shuffle.Bitonic(n)
		method := "0-1 exhaustive"
		var ok bool
		if n <= 16 {
			ok, _ = sortcheck.ZeroOne(n, r, cfg.Workers)
		} else {
			method = "random x500"
			ok, _ = sortcheck.RandomPerms(n, 500, r, rng)
		}
		t.AddRow(n, d, r.Depth(), d*d, r.Size(), r.IsShuffleBased(), method, ok)
	}
	t.Note("circuit-model Batcher bitonic has depth d(d+1)/2; the strict shuffle-based realization pays d² steps (idle shuffle steps align each stage with a full pass)")
	return t
}

// E7Constructions reproduces the upper-bound landscape the paper's
// introduction situates itself in: depth and size of the classical
// constructions, plus the structural facts of Section 2 (the butterfly
// is both a delta and a reverse delta network; bitonic is an iterated
// reverse delta network).
func E7Constructions(cfg Config) *Table {
	t := &Table{
		ID:    "E7",
		Title: "Construction landscape: depth/size of reference networks",
		Claim: "Batcher networks have Θ(lg²n) depth; butterfly is both delta and reverse delta [6]; bitonic is an iterated RDN",
		Columns: []string{
			"n", "bitonic d/s", "odd-even d/s", "pratt d/s", "transpose d/s",
			"cascade(4) d", "benes cols", "bfly=Δ∩revΔ", "bitonic=itRDN",
		},
	}
	sizes := []int{8, 16, 32, 64, 256, 1024, 4096}
	if cfg.Quick {
		sizes = []int{8, 16, 64}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range sizes {
		if err := cfg.Err(); err != nil {
			t.NoteCanceled(err)
			return t
		}
		d := bits.Lg(n)
		bit := netbuild.Bitonic(n)
		oem := netbuild.OddEvenMergeSort(n)
		pr := netbuild.Pratt(n)
		tr := netbuild.OddEvenTransposition(n)
		casc := halver.Cascade(n, 4, rng)

		both := "-"
		if n <= 64 {
			bf := delta.Butterfly(d).ToNetwork()
			both = boolMark(delta.IsReverseDelta(bf) && delta.IsDelta(bf))
		}
		itRDN := "-"
		if n <= 16 {
			it := delta.BitonicIterated(d)
			circ, place := it.ToNetwork()
			ok, _ := sortcheck.ZeroOne(n, remap{circ, place}, cfg.Workers)
			itRDN = boolMark(ok)
		}
		t.AddRow(n,
			pair(bit.Depth(), bit.Size()),
			pair(oem.Depth(), oem.Size()),
			pair(pr.Depth(), pr.Size()),
			pair(tr.Depth(), tr.Size()),
			casc.Depth(),
			benes.Columns(n),
			both, itRDN,
		)
	}
	t.Note("d/s = depth/size; pratt is the Shellsort-class Θ(lg²n) network (the class of Cypher's lower bound [3]); cascade(4) is the 4-pass ε-halver cascade (AKS skeleton substitute, DESIGN.md)")
	t.Note("benes cols realizes the arbitrary inter-block permutations of Definition 3.4's serial composition")
	return t
}

// E6AverageCase probes the Section 5 claim that shallow shuffle-based
// networks sort all but a small fraction of inputs (so the Ω(lg²n/lglgn)
// bound is inherently worst-case): sorted fraction and residual
// disorder as depth grows, for truncated Stone bitonic and for
// O(lg n)-depth halver cascades.
func E6AverageCase(cfg Config) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Average case: sorted fraction / residual disorder vs. depth",
		Claim: "o(lg²n/lglgn)-depth shuffle-based networks sort all but a small fraction of inputs (Section 5, after [8])",
		Columns: []string{
			"network", "n", "depth", "sorted frac", "mean max-disloc", "mean inversions",
		},
	}
	n := 128
	trials := 2000
	if cfg.Quick {
		n, trials = 64, 300
	}
	d := bits.Lg(n)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Truncated Stone bitonic at fractions of full depth.
	full := d * d
	for _, frac := range []float64{0.25, 0.5, 0.75, 0.875, 1.0} {
		if err := cfg.Err(); err != nil {
			t.NoteCanceled(err)
			return t
		}
		// Snap to a pass boundary: mid-pass registers hold shuffled
		// positions, which would contaminate the disorder metrics.
		steps := d * int(math.Round(frac*float64(d)))
		if steps > full {
			steps = full
		}
		r := randnet.TruncatedBitonic(n, steps)
		sf := sortcheck.SortedFraction(n, trials, r, cfg.Seed+1, cfg.Workers)
		md, mi := disorder(r, n, trials/4+1, rng)
		t.AddRow("bitonic/trunc", n, steps, sf, md, mi)
	}
	// Halver cascades: O(lg n) depth.
	for _, passes := range []int{1, 2, 4, 8} {
		if err := cfg.Err(); err != nil {
			t.NoteCanceled(err)
			return t
		}
		c := halver.Cascade(n, passes, rand.New(rand.NewSource(cfg.Seed+int64(passes))))
		sf := sortcheck.SortedFraction(n, trials, c, cfg.Seed+2, cfg.Workers)
		md, mi := disorder(c, n, trials/4+1, rng)
		t.AddRow("halver-cascade", n, c.Depth(), sf, md, mi)
	}
	// Randomized butterfly passes (Leighton–Plaxton flavour).
	for _, passes := range []int{1, 2, 4} {
		if err := cfg.Err(); err != nil {
			t.NoteCanceled(err)
			return t
		}
		r := randnet.RandomizedButterfly(n, passes, rand.New(rand.NewSource(cfg.Seed+9+int64(passes))))
		sf := sortcheck.SortedFraction(n, trials, r, cfg.Seed+3, cfg.Workers)
		md, mi := disorder(r, n, trials/4+1, rng)
		t.AddRow("rand-butterfly", n, r.Depth(), sf, md, mi)
	}
	t.Note("full bitonic depth = lg²n; disorder metrics show near-sortedness well below sorting depth, matching the Section 5 phenomenon")
	return t
}

type evaler interface{ Eval([]int) []int }

func disorder(ev evaler, n, trials int, rng *rand.Rand) (meanMaxDisloc, meanInversions float64) {
	var d, inv int64
	for t := 0; t < trials; t++ {
		out := ev.Eval(rng.Perm(n))
		d += int64(sortcheck.MaxDislocation(out))
		inv += sortcheck.Inversions(out)
	}
	return float64(d) / float64(trials), float64(inv) / float64(trials)
}

type remap struct {
	c     evaler
	place []int
}

func (e remap) Eval(in []int) []int {
	out := e.c.Eval(in)
	fixed := make([]int, len(out))
	for s, r := range e.place {
		fixed[s] = out[r]
	}
	return fixed
}

func pair(a, b int) string { return strconv.Itoa(a) + "/" + strconv.Itoa(b) }

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
