package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 7, Quick: true} }

func runAndRender(t *testing.T, r Runner) *Table {
	t.Helper()
	tab := r.Run(quickCfg())
	if tab.ID != r.ID {
		t.Errorf("table ID %q != runner ID %q", tab.ID, r.ID)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", r.ID)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s row %d has %d cells, want %d", r.ID, i, len(row), len(tab.Columns))
		}
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), tab.Title) {
		t.Error("rendered output missing title")
	}
	buf.Reset()
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(tab.Rows)+1 {
		t.Errorf("CSV has %d lines, want %d", lines, len(tab.Rows)+1)
	}
	return tab
}

func cell(t *testing.T, tab *Table, row int, col string) string {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("no column %q", col)
	return ""
}

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("want 14 experiments, got %d", len(all))
	}
	ids := map[string]bool{}
	for _, r := range all {
		if ids[r.ID] {
			t.Errorf("duplicate ID %s", r.ID)
		}
		ids[r.ID] = true
		if Find(r.ID) == nil || Find(strings.ToLower(r.ID)) == nil {
			t.Errorf("Find(%s) failed", r.ID)
		}
	}
	if Find("E99") != nil {
		t.Error("Find accepted a bogus ID")
	}
}

func TestE1(t *testing.T) {
	tab := runAndRender(t, *Find("E1"))
	for i := range tab.Rows {
		if cell(t, tab, i, "sorts") != "true" {
			t.Errorf("row %d: bitonic does not sort", i)
		}
		if cell(t, tab, i, "shuffle-based") != "true" {
			t.Errorf("row %d: not shuffle-based", i)
		}
		if cell(t, tab, i, "depth") != cell(t, tab, i, "lg²n") {
			t.Errorf("row %d: depth != lg²n", i)
		}
	}
}

func TestE2(t *testing.T) {
	tab := runAndRender(t, *Find("E2"))
	for i := range tab.Rows {
		measured, _ := strconv.ParseFloat(cell(t, tab, i, "measured frac"), 64)
		bound, _ := strconv.ParseFloat(cell(t, tab, i, "bound frac"), 64)
		if measured < bound {
			t.Errorf("row %d: measured %v below bound %v", i, measured, bound)
		}
	}
}

func TestE3(t *testing.T) {
	tab := runAndRender(t, *Find("E3"))
	for i := range tab.Rows {
		measured, _ := strconv.Atoi(cell(t, tab, i, "|D| measured"))
		bound, _ := strconv.ParseFloat(cell(t, tab, i, "paper bound"), 64)
		if float64(measured) < bound {
			t.Errorf("row %d: |D| = %d below paper bound %v", i, measured, bound)
		}
	}
}

func TestE4(t *testing.T) {
	tab := runAndRender(t, *Find("E4"))
	for i := range tab.Rows {
		if got := cell(t, tab, i, "certificate"); got == "yes" {
			if v := cell(t, tab, i, "verified"); v != "yes" {
				t.Errorf("row %d: certificate extracted but not verified (%s)", i, v)
			}
		} else {
			t.Errorf("row %d (%s): no certificate from a 2-block network", i, tab.Rows[i][0])
		}
	}
}

func TestE5(t *testing.T) {
	tab := runAndRender(t, *Find("E5"))
	// Survived blocks must be positive for small f.
	for i := range tab.Rows {
		if cell(t, tab, i, "f") == "1" {
			b, _ := strconv.Atoi(strings.TrimPrefix(cell(t, tab, i, "blocks survived"), ">="))
			if b < 2 {
				t.Errorf("f=1 should survive many blocks, got %d", b)
			}
		}
	}
}

func TestE6(t *testing.T) {
	tab := runAndRender(t, *Find("E6"))
	// Full-depth bitonic row must have sorted frac 1.
	last := -1
	for i := range tab.Rows {
		if tab.Rows[i][0] == "bitonic/trunc" {
			last = i
		}
	}
	if got := cell(t, tab, last, "sorted frac"); got != "1" {
		t.Errorf("full-depth bitonic sorted frac = %s", got)
	}
}

func TestE7(t *testing.T) {
	tab := runAndRender(t, *Find("E7"))
	for i := range tab.Rows {
		if m := cell(t, tab, i, "bfly=Δ∩revΔ"); m != "yes" && m != "-" {
			t.Errorf("row %d: butterfly recognizer failed (%s)", i, m)
		}
		if m := cell(t, tab, i, "bitonic=itRDN"); m != "yes" && m != "-" {
			t.Errorf("row %d: iterated-RDN bitonic failed (%s)", i, m)
		}
	}
}

func TestE8(t *testing.T) {
	tab := runAndRender(t, *Find("E8"))
	for i := range tab.Rows {
		maxd, _ := strconv.Atoi(strings.TrimPrefix(cell(t, tab, i, "max d (|D|>=2)"), ">="))
		bound, _ := strconv.ParseFloat(cell(t, tab, i, "lg n/(4 lglg n)"), 64)
		if float64(maxd) < bound {
			t.Errorf("row %d: adversary depth %d below the guaranteed %v", i, maxd, bound)
		}
	}
}

func TestE9(t *testing.T) {
	tab := runAndRender(t, *Find("E9"))
	for i := range tab.Rows {
		if cell(t, tab, i, "routes ok") != "yes" {
			t.Errorf("row %d: routing failed", i)
		}
	}
}

func TestE10(t *testing.T) {
	tab := runAndRender(t, *Find("E10"))
	for i := range tab.Rows {
		if cell(t, tab, i, "output ok") != "yes" {
			t.Errorf("row %d: machine output wrong", i)
		}
		single, _ := strconv.ParseFloat(cell(t, tab, i, "cycles/input"), 64)
		pipe, _ := strconv.ParseFloat(cell(t, tab, i, "pipelined(64)/input"), 64)
		if pipe >= single {
			t.Errorf("row %d: pipelining did not amortize (%v vs %v)", i, pipe, single)
		}
	}
}

func TestE11(t *testing.T) {
	tab := runAndRender(t, *Find("E11"))
	for i := range tab.Rows {
		name := tab.Rows[i][0]
		frac, _ := strconv.ParseFloat(cell(t, tab, i, "escape prob"), 64)
		switch name {
		case "bitonic/full":
			if frac != 1 {
				t.Errorf("full bitonic escape prob = %v", frac)
			}
		case "butterfly×2":
			// Naive shallow networks have dense witnesses: they sort
			// almost nothing.
			if frac > 0.5 {
				t.Errorf("2-block butterfly unexpectedly sorts most 0-1 inputs: %v", frac)
			}
			if cell(t, tab, i, "adversary cert") != "verified" {
				t.Error("butterfly×2 certificate missing")
			}
		}
	}
}

func TestA1(t *testing.T) {
	tab := runAndRender(t, *Find("A1"))
	// Every row must report a valid t(l) = k³ + l·k² and |D| >= 0; the
	// k = lg n row must keep |D| >= 2 after three blocks (the regime the
	// paper's Theorem operates in).
	for i := range tab.Rows {
		n, _ := strconv.Atoi(cell(t, tab, i, "n"))
		k, _ := strconv.Atoi(cell(t, tab, i, "k"))
		tl, _ := strconv.Atoi(cell(t, tab, i, "t(l)"))
		l := lgOf(n)
		if tl != k*k*k+l*k*k {
			t.Errorf("row %d: t(l) = %d, want %d", i, tl, k*k*k+l*k*k)
		}
		if k == l {
			d, _ := strconv.Atoi(cell(t, tab, i, "|D| after 3 blocks"))
			if d < 2 {
				t.Errorf("k = lg n kept only |D| = %d after 3 blocks", d)
			}
		}
	}
}

func lgOf(n int) int {
	l := 0
	for 1<<uint(l+1) <= n {
		l++
	}
	return l
}

func TestA2(t *testing.T) {
	tab := runAndRender(t, *Find("A2"))
	for i := range tab.Rows {
		adv, _ := strconv.Atoi(cell(t, tab, i, "adversary |D|"))
		opt, _ := strconv.Atoi(cell(t, tab, i, "optimal |D|"))
		if adv > opt {
			t.Errorf("row %d: adversary %d beats the brute-force optimum %d?!", i, adv, opt)
		}
		if opt < 1 {
			t.Errorf("row %d: optimal below the trivial singleton", i)
		}
	}
}

func TestA3(t *testing.T) {
	tab := runAndRender(t, *Find("A3"))
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for i := range tab.Rows {
		n, _ := strconv.Atoi(cell(t, tab, i, "n"))
		opt, _ := strconv.Atoi(cell(t, tab, i, "optimal |D|"))
		if opt < 1 || opt > n {
			t.Errorf("row %d: optimal |D| = %d out of range [1,%d]", i, opt, n)
		}
	}
}

// The transposition table is pure acceleration: the optimum tables
// must be byte-identical (modulo timing and counter notes) with the
// table off, at the default size, and at a tiny constantly-evicting
// size, on parallel cells.
func TestMemoModesDeterministic(t *testing.T) {
	for _, id := range []string{"A2", "A3"} {
		r := Find(id)
		if r == nil {
			t.Fatalf("experiment %s not registered", id)
		}
		t.Run(id, func(t *testing.T) {
			base := renderFiltered(t, r.Run(Config{Seed: 7, Quick: true, Workers: 4}))
			for _, mb := range []int64{-1, 1 << 12} {
				got := renderFiltered(t, r.Run(Config{Seed: 7, Quick: true, Workers: 4, MemoBytes: mb}))
				if got != base {
					t.Errorf("%s renders differently with MemoBytes=%d:\n--- default ---\n%s\n--- MemoBytes=%d ---\n%s",
						id, mb, base, mb, got)
				}
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	a := E2LemmaSurvival(quickCfg())
	b := E2LemmaSurvival(quickCfg())
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ across identical runs")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("nondeterministic cell (%d,%d): %q vs %q", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

// renderFiltered renders a table and drops the wall-clock note lines
// ("timing: ...") and the transposition-table counter notes, the only
// output allowed to vary between runs.
func renderFiltered(t *testing.T, tab *Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "timing:") || strings.Contains(line, "transposition table:") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestWorkersDeterministic checks the PR's core invariant for every
// parallelized experiment: the rendered table is byte-identical (modulo
// timing notes) whether the cells run on one worker or many.
func TestWorkersDeterministic(t *testing.T) {
	for _, id := range []string{"E2", "E3", "E5", "E8", "A1", "A2", "A3"} {
		r := Find(id)
		if r == nil {
			t.Fatalf("experiment %s not registered", id)
		}
		t.Run(id, func(t *testing.T) {
			one := r.Run(Config{Seed: 7, Quick: true, Workers: 1})
			many := r.Run(Config{Seed: 7, Quick: true, Workers: 8})
			if got, want := renderFiltered(t, many), renderFiltered(t, one); got != want {
				t.Errorf("%s renders differently on 8 workers vs 1:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", id, want, got)
			}
		})
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.0: "1", 0.5: "0.5", 0.123456: "0.1235", 0: "0", 100: "100",
	}
	for v, want := range cases {
		if got := trimFloat(v); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
