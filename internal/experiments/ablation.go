package experiments

import (
	"math/rand"

	"shufflenet/internal/bits"
	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/perm"
)

// A1KSweep is an ablation, not a paper claim: it sweeps the averaging
// parameter k of Lemma 4.1 to show the tradeoff the paper resolves by
// choosing k = lg n. Small k gives few averaging offsets (k² of them),
// so collisions are harder to dodge and more wires are lost per block;
// large k gives t(l) = k³ + lk² sets, so survivors fragment and the
// largest set — the quantity Theorem 4.1 chains on — shrinks, while
// costing more memory. The sweep runs the full adversary on a fixed
// random iterated RDN (same network for every k) and also measures how
// many blocks each k survives.
//
// (On the perfectly regular butterfly the sweep is flat — meetings
// concentrate on offset 0 and every k ≥ 2 dodges them with i₀ = 1;
// random topologies spread meetings across offsets and expose the
// tradeoff, which is why they are used here.)
func A1KSweep(cfg Config) *Table {
	t := &Table{
		ID:    "A1",
		Title: "Ablation: Lemma 4.1 averaging parameter k (random RDN stack)",
		Claim: "design choice, not a theorem: k = lg n balances per-block loss (l/k²) against set fragmentation (t(l) = k³+lk²)",
		Columns: []string{
			"n", "k", "t(l)", "|D| after 3 blocks", "blocks survived",
		},
	}
	sizes := []int{256, 1024}
	if cfg.Quick {
		sizes = []int{256}
	}
	// The fixed networks per n come from per-n derived streams (as
	// before), so they can be built up front; the (n, k) cells are then
	// pure measurements over shared read-only inputs and run in
	// parallel, byte-identically to the sequential sweep.
	type blk struct {
		pre  perm.Perm
		tree *delta.Network
	}
	type a1cell struct {
		n, l, k   int
		maxBlocks int
		it        *delta.Iterated
		stack     []blk
	}
	var cells []a1cell
	for _, n := range sizes {
		l := bits.Lg(n)
		// One fixed 3-block network per n, reused across all k.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		it := delta.NewIterated(n)
		for b := 0; b < 3; b++ {
			it.AddBlock(perm.Random(n, rng), delta.Random(l, 1.0, rng))
		}
		// And one fixed long stack for the survival-depth column.
		blockRNG := rand.New(rand.NewSource(cfg.Seed + 7*int64(n)))
		maxBlocks := 8 * l
		if cfg.Quick {
			maxBlocks = 3 * l
		}
		stack := make([]blk, maxBlocks)
		for b := range stack {
			stack[b] = blk{perm.Random(n, blockRNG), delta.Random(l, 1.0, blockRNG)}
		}
		for _, k := range dedupeInts([]int{2, 3, l / 2, l, 2 * l, 4 * l}) {
			if k < 2 {
				continue
			}
			cells = append(cells, a1cell{n: n, l: l, k: k, maxBlocks: maxBlocks, it: it, stack: stack})
		}
	}
	if !runCells(cfg, t, len(cells), func(i int) cellRow {
		c := cells[i]
		an, err := core.Theorem41Ctx(cfg.Context(), c.it, c.k)
		if err != nil {
			return cellRow{err: err}
		}
		tl := c.k*c.k*c.k + c.l*c.k*c.k

		inc := core.NewIncremental(c.n, c.k)
		blocks := 0
		for _, b := range c.stack {
			if _, err := inc.AddBlockCtx(cfg.Context(), b.pre, delta.NewForest(b.tree)); err != nil {
				return cellRow{err: err}
			}
			if len(inc.D()) < 2 {
				break
			}
			blocks++
		}
		survived := trimFloat(float64(blocks))
		if blocks == c.maxBlocks {
			survived = ">=" + survived
		}
		return row(c.n, c.k, tl, len(an.D), survived)
	}) {
		return t
	}
	t.Note("same fixed networks for every k; |D| = largest noncolliding set after 3 blocks; blocks survived = prefix depth with |D| >= 2 on a longer fixed stack")
	t.Note("reading: at these n the measured optimum INVERTS the asymptotic story — small k keeps the collection concentrated (fewer, larger sets) and survives longest, while the l/k² loss term it pays is still tiny; the fragmentation penalty that makes k = lg n optimal is an asymptotic effect")
	return t
}
