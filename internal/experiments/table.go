// Package experiments defines and runs the reproduction experiments
// E1–E11 (and the ablations A1–A3) indexed in DESIGN.md. The paper (a pure lower-bound result) has
// no tables or figures of its own; each experiment here corresponds to
// a quantitative claim in the theorem statements or in Sections 1, 4,
// and 5, and prints a table recording claim vs. measurement. See
// EXPERIMENTS.md for the recorded results.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"shufflenet/internal/obs"
)

// Table is one experiment's output: a titled grid plus free-form notes.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim under test
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as CSV (columns header + rows).
func (t *Table) RenderCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Config controls experiment scale and determinism.
type Config struct {
	// Seed drives all randomness; equal seeds give identical tables.
	Seed int64
	// Quick shrinks problem sizes for tests and benchmarks.
	Quick bool
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// MemoBytes sizes the transposition table the optimum-search
	// experiments (A2, A3) share across their cells: 0 picks a default,
	// negative disables the table. The table never changes any table
	// cell — memo on, off, and any size are byte-identical per seed —
	// only the timing notes.
	MemoBytes int64
	// Span, when non-nil, receives child spans for the experiment's
	// internal phases (per-size rows, per-topology passes); nil spans
	// are inert, so runners instrument unconditionally.
	Span *obs.Span
	// Ctx, when non-nil, bounds the experiment: runners check it
	// between rows (and pass it to the ctx-aware engines) so a deadline
	// or interrupt truncates the table instead of killing the sweep.
	Ctx context.Context
	// Progress, when non-nil, receives live telemetry from the engines
	// the experiments drive (the optimum searches thread it into their
	// OptimalOptions) and per-cell completion counters from runCells.
	// Telemetry never changes a table cell.
	Progress *obs.Progress
}

// Phase starts a child span of the config's span (nil-safe), tagging
// it with the experiment phase name and attrs.
func (c Config) Phase(name string, attrs ...obs.Attr) *obs.Span {
	return c.Span.Child(name, attrs...)
}

// Context returns the config's context, never nil.
func (c Config) Context() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// Err reports the config context's cancellation state; runners consult
// it between rows.
func (c Config) Err() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// NoteCanceled marks a truncated table: rows stop at the cut and the
// note records why. Runners call it when Err() fires mid-sweep.
func (t *Table) NoteCanceled(err error) {
	t.Note("TRUNCATED: %v — rows after the cut were not run", err)
}

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Brief string
	Run   func(Config) *Table
}

// All lists the experiments in order.
func All() []Runner {
	return []Runner{
		{"E1", "Bitonic Θ(lg²n) shuffle-based upper bound", E1BitonicUpperBound},
		{"E2", "Lemma 4.1 single-block survival", E2LemmaSurvival},
		{"E3", "Theorem 4.1 iterated survival", E3IteratedSurvival},
		{"E4", "Corollary 4.1.1 non-sortability certificates", E4Certificates},
		{"E5", "Section 5 truncated-block generalization", E5TruncatedBlocks},
		{"E6", "Section 5 average-case sorting", E6AverageCase},
		{"E7", "Construction landscape & recognizers", E7Constructions},
		{"E8", "Empirical adversary depth vs. bound constant", E8AdversaryDepth},
		{"E9", "Routing: ascend vs ascend-descend machines", E9Routing},
		{"E10", "Simulated shuffle-exchange machine costs", E10Machine},
		{"E11", "0-1 witness thinness (representative sets)", E11Witnesses},
		{"A1", "Ablation: Lemma 4.1 averaging parameter k", A1KSweep},
		{"A2", "Ablation: adversary vs brute-force optimum", A2Optimality},
		{"A3", "Optimum search at the symmetry-reduced cap", A3OptimumCap},
	}
}

// Find returns the runner with the given ID (case-insensitive), or nil.
func Find(id string) *Runner {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			rr := r
			return &rr
		}
	}
	return nil
}
