package experiments

import (
	"shufflenet/internal/obs"
	"shufflenet/internal/par"
)

// Cell counters: total is bumped when a sweep's cells are scheduled,
// done as each cell finishes, so a live-telemetry sample of the pair
// reads as sweep completion (and the rate of done as cells/sec). One
// atomic add per cell — cells are seconds-scale units of work.
var (
	metCellsTotal = obs.C("experiments.cells.total")
	metCellsDone  = obs.C("experiments.cells.done")
)

// cellRow is one experiment cell's output: the row it contributes to
// the table (nil while unfinished) and the error that stopped it, if
// any. Cells are independent by construction — anything random they
// need is either pre-drawn sequentially from the shared stream (E2,
// E3, A1, A2, which keeps their tables byte-for-byte identical to the
// sequential implementation at every seed the old code completed) or
// drawn from a per-cell derived stream (E5, E8, whose draw counts
// depend on intermediate results).
type cellRow struct {
	cells [][]interface{} // one or more rows, in order
	err   error
}

// runCells evaluates count independent cells on cfg.Workers workers
// (0 = GOMAXPROCS) with cancellation probed per cell, then emits the
// longest prefix of finished cells into the table in index order —
// exactly the rows the sequential loop would have emitted before a
// cut. It returns true if every cell finished, false if the table was
// truncated (the caller should return it as-is).
func runCells(cfg Config, t *Table, count int, cell func(i int) cellRow) bool {
	results := make([]cellRow, count)
	done := make([]bool, count)
	metCellsTotal.Add(int64(count))
	err := par.ForEachGrainCtx(cfg.Context(), count, cfg.Workers, 1, func(i int) {
		results[i] = cell(i)
		done[i] = true
		metCellsDone.Inc()
	})
	for i := 0; i < count; i++ {
		if !done[i] {
			break
		}
		if results[i].err != nil {
			t.NoteCanceled(results[i].err)
			return false
		}
		for _, row := range results[i].cells {
			t.Rows = append(t.Rows, formatRow(row))
		}
	}
	if err != nil {
		t.NoteCanceled(err)
		return false
	}
	return true
}

// formatRow renders one AddRow-style cell list (shared with Table.AddRow).
func formatRow(cells []interface{}) []string {
	tmp := &Table{}
	tmp.AddRow(cells...)
	return tmp.Rows[0]
}

// row is a convenience constructor for a single-row cell result.
func row(cells ...interface{}) cellRow {
	return cellRow{cells: [][]interface{}{cells}}
}

// cellSeed derives a deterministic per-cell RNG seed from the run seed
// and cell coordinates (splitmix-style mixing, so neighboring cells get
// unrelated streams). Used by the experiments whose per-cell draw
// counts depend on intermediate results (E5, E8): their cells cannot
// share one sequential stream without serializing the sweep.
func cellSeed(seed int64, vs ...int64) int64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range vs {
		h ^= uint64(v)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return int64(h &^ (1 << 63)) // non-negative, for readable journals
}
