package experiments

import (
	"math/rand"
	"time"

	"shufflenet/internal/bits"
	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/network"
	"shufflenet/internal/perm"
	"shufflenet/internal/randnet"
)

// optimalSearch builds the search options the optimum experiments
// share: one transposition table across all of an experiment's cells
// (keys are salted per network, so sharing is sound), sized by
// cfg.MemoBytes (0 = a 32 MiB default, negative = off). The table is
// pure acceleration — every cell's row is byte-identical with it on,
// off, or at any size.
func optimalSearch(cfg Config) core.OptimalOptions {
	if cfg.MemoBytes < 0 {
		return core.OptimalOptions{Workers: cfg.Workers, NoMemo: true, Progress: cfg.Progress}
	}
	bytes := cfg.MemoBytes
	if bytes == 0 {
		bytes = 32 << 20
	}
	return core.OptimalOptions{Workers: cfg.Workers, Memo: core.NewMemo(bytes), Progress: cfg.Progress}
}

// noteMemo appends the table's cumulative counters to the (timing,
// non-byte-stable) note section.
func noteMemo(t *Table, opt core.OptimalOptions) {
	if opt.Memo == nil {
		t.Note("transposition table: off")
		return
	}
	ms := opt.Memo.Stats()
	t.Note("transposition table: %d bytes shared across cells; %d hits / %d misses / %d stores / %d evictions",
		ms.Bytes, ms.Hits, ms.Misses, ms.Stores, ms.Evictions)
}

// A2Optimality is an ablation: it compares the constructive adversary's
// surviving set |D| against the brute-force optimum over all 3^n
// patterns (core.OptimalNoncolliding) on small networks. The ratio
// measures the per-instance slack of the paper's averaging argument —
// the analysis guarantees polylog decay, but how much does the
// construction actually leave on the table?
func A2Optimality(cfg Config) *Table {
	t := &Table{
		ID:    "A2",
		Title: "Ablation: constructive adversary vs. brute-force optimum",
		Claim: "design-space study: Lemma/Theorem 4.1's |D| against the best noncolliding [M_0]-set any pattern admits (exhaustive over 3^n patterns)",
		Columns: []string{
			"network", "n", "blocks", "adversary |D|", "optimal |D|", "ratio",
		},
	}
	sizes := []int{8, 16}
	if cfg.Quick {
		sizes = []int{8}
	}
	// The scenario networks are built up front in the sequential order
	// (preserving the shared stream's draws), then measured as parallel
	// cells; the branch-and-bound inside each cell fans out further.
	type a2cell struct {
		name   string
		n      int
		blocks int
		it     *delta.Iterated
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var cells []a2cell
	for _, n := range sizes {
		l := bits.Lg(n)
		cells = append(cells, a2cell{"butterfly", n, 1,
			delta.NewIterated(n).AddBlock(nil, delta.Butterfly(l))})
		cells = append(cells, a2cell{"random", n, 1,
			delta.NewIterated(n).AddBlock(nil, delta.Random(l, 1.0, rng))})
		it := delta.NewIterated(n).AddBlock(nil, delta.Butterfly(l))
		cells = append(cells, a2cell{"butterfly×2", n, 2,
			it.AddBlock(perm.Random(n, rng), delta.Butterfly(l))})
	}
	searchOpt := optimalSearch(cfg)
	searchNanos := make([]int64, len(cells))
	if !runCells(cfg, t, len(cells), func(i int) cellRow {
		c := cells[i]
		an, err := core.Theorem41Ctx(cfg.Context(), c.it, 0)
		if err != nil {
			return cellRow{err: err}
		}
		circ, _ := c.it.ToNetwork()
		start := time.Now()
		opt, _, _, err := core.OptimalNoncollidingOpt(cfg.Context(), circ, searchOpt)
		if err != nil {
			return cellRow{err: err}
		}
		searchNanos[i] = time.Since(start).Nanoseconds()
		ratio := 0.0
		if opt > 0 {
			ratio = float64(len(an.D)) / float64(opt)
		}
		return row(c.name, c.n, c.blocks, len(an.D), opt, ratio)
	}) {
		return t
	}
	t.Note("optimal = max |[M_0]| over every {S0,M0,L0}-pattern whose M-set is noncolliding (brute force; the best any adversary in the paper's framework can do on the instance)")
	t.Note("the adversary must also be *constructive across blocks*, so ratios below 1 on multi-block stacks reflect both the averaging slack and the keep-one-set policy of Theorem 4.1")
	total := int64(0)
	for _, ns := range searchNanos {
		total += ns
	}
	// Timing lines last, so everything above is byte-stable per seed.
	t.Note("timing: optimal search took %.3fs total across %d instances (branch-and-bound, exact)",
		float64(total)/1e9, len(cells))
	noteMemo(t, searchOpt)
	return t
}

// A3OptimumCap drives the exact optimum search to the engine's
// symmetry-reduced cap (core.MaxOptimalWires = 26) on its measured
// worst case: dense random level circuits (randnet.Levels — uniformly
// random perfect matchings with random directions, so the
// automorphism group is almost surely trivial and every pruning rule
// has to earn its keep). The engine's cap has moved 20 → 24 → 26 as
// pruning, symmetry reduction, and now the durable sharded frontier
// (PR 9) landed; these rows are the evidence for the cap and for the
// EXPERIMENTS.md timings. Rows are byte-stable per seed; the
// per-instance timings go in the notes.
func A3OptimumCap(cfg Config) *Table {
	t := &Table{
		ID:    "A3",
		Title: "Optimum search at the symmetry-reduced cap (dense random circuits)",
		Claim: "engineering claim, not a paper claim: the pruned branch-and-bound (canonical memo + dominance + capacity + lex incumbent, resumable and shardable since PR 9) reaches n = 26 on its worst-case family",
		Columns: []string{
			"n", "levels", "comparators", "optimal |D|", "|D|/n",
		},
	}
	type a3case struct{ n, depth int }
	cases := []a3case{{18, 10}, {20, 10}, {22, 10}, {24, 6}, {26, 6}}
	if cfg.Quick {
		cases = []a3case{{12, 8}, {14, 8}}
	}
	// Instances are drawn sequentially from the shared stream so the
	// table is byte-stable per seed, then measured as parallel cells.
	rng := rand.New(rand.NewSource(cfg.Seed))
	circs := make([]*network.Network, len(cases))
	for i, c := range cases {
		circs[i] = randnet.Levels(c.n, c.depth, rng)
	}
	searchOpt := optimalSearch(cfg)
	searchNanos := make([]int64, len(cases))
	if !runCells(cfg, t, len(cases), func(i int) cellRow {
		c := cases[i]
		start := time.Now()
		opt, _, _, err := core.OptimalNoncollidingOpt(cfg.Context(), circs[i], searchOpt)
		if err != nil {
			return cellRow{err: err}
		}
		searchNanos[i] = time.Since(start).Nanoseconds()
		return row(c.n, c.depth, circs[i].Size(), opt, float64(opt)/float64(c.n))
	}) {
		return t
	}
	t.Note("optimal = max |[M_0]| over every {S0,M0,L0}-pattern whose M-set is noncolliding, exact; dense random circuits keep it near lg n — far below the butterfly's n/2 — which is why they are the branch-and-bound's worst case")
	for i, c := range cases {
		t.Note("timing: n=%d levels=%d took %.3fs", c.n, c.depth, float64(searchNanos[i])/1e9)
	}
	noteMemo(t, searchOpt)
	return t
}
