package experiments

import (
	"math/rand"
	"time"

	"shufflenet/internal/bits"
	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/perm"
)

// A2Optimality is an ablation: it compares the constructive adversary's
// surviving set |D| against the brute-force optimum over all 3^n
// patterns (core.OptimalNoncolliding) on small networks. The ratio
// measures the per-instance slack of the paper's averaging argument —
// the analysis guarantees polylog decay, but how much does the
// construction actually leave on the table?
func A2Optimality(cfg Config) *Table {
	t := &Table{
		ID:    "A2",
		Title: "Ablation: constructive adversary vs. brute-force optimum",
		Claim: "design-space study: Lemma/Theorem 4.1's |D| against the best noncolliding [M_0]-set any pattern admits (exhaustive over 3^n patterns)",
		Columns: []string{
			"network", "n", "blocks", "adversary |D|", "optimal |D|", "ratio",
		},
	}
	sizes := []int{8, 16}
	if cfg.Quick {
		sizes = []int{8}
	}
	// The scenario networks are built up front in the sequential order
	// (preserving the shared stream's draws), then measured as parallel
	// cells; the branch-and-bound inside each cell fans out further.
	type a2cell struct {
		name   string
		n      int
		blocks int
		it     *delta.Iterated
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var cells []a2cell
	for _, n := range sizes {
		l := bits.Lg(n)
		cells = append(cells, a2cell{"butterfly", n, 1,
			delta.NewIterated(n).AddBlock(nil, delta.Butterfly(l))})
		cells = append(cells, a2cell{"random", n, 1,
			delta.NewIterated(n).AddBlock(nil, delta.Random(l, 1.0, rng))})
		it := delta.NewIterated(n).AddBlock(nil, delta.Butterfly(l))
		cells = append(cells, a2cell{"butterfly×2", n, 2,
			it.AddBlock(perm.Random(n, rng), delta.Butterfly(l))})
	}
	searchNanos := make([]int64, len(cells))
	if !runCells(cfg, t, len(cells), func(i int) cellRow {
		c := cells[i]
		an, err := core.Theorem41Ctx(cfg.Context(), c.it, 0)
		if err != nil {
			return cellRow{err: err}
		}
		circ, _ := c.it.ToNetwork()
		start := time.Now()
		opt, _, _, err := core.OptimalNoncollidingCtx(cfg.Context(), circ, cfg.Workers)
		if err != nil {
			return cellRow{err: err}
		}
		searchNanos[i] = time.Since(start).Nanoseconds()
		ratio := 0.0
		if opt > 0 {
			ratio = float64(len(an.D)) / float64(opt)
		}
		return row(c.name, c.n, c.blocks, len(an.D), opt, ratio)
	}) {
		return t
	}
	t.Note("optimal = max |[M_0]| over every {S0,M0,L0}-pattern whose M-set is noncolliding (brute force; the best any adversary in the paper's framework can do on the instance)")
	t.Note("the adversary must also be *constructive across blocks*, so ratios below 1 on multi-block stacks reflect both the averaging slack and the keep-one-set policy of Theorem 4.1")
	total := int64(0)
	for _, ns := range searchNanos {
		total += ns
	}
	// Timing line last, so everything above is byte-stable per seed.
	t.Note("timing: optimal search took %.3fs total across %d instances (branch-and-bound, exact)",
		float64(total)/1e9, len(cells))
	return t
}
