package experiments

import (
	"math/rand"

	"shufflenet/internal/bits"
	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/perm"
)

// A2Optimality is an ablation: it compares the constructive adversary's
// surviving set |D| against the brute-force optimum over all 3^n
// patterns (core.OptimalNoncolliding) on small networks. The ratio
// measures the per-instance slack of the paper's averaging argument —
// the analysis guarantees polylog decay, but how much does the
// construction actually leave on the table?
func A2Optimality(cfg Config) *Table {
	t := &Table{
		ID:    "A2",
		Title: "Ablation: constructive adversary vs. brute-force optimum",
		Claim: "design-space study: Lemma/Theorem 4.1's |D| against the best noncolliding [M_0]-set any pattern admits (exhaustive over 3^n patterns)",
		Columns: []string{
			"network", "n", "blocks", "adversary |D|", "optimal |D|", "ratio",
		},
	}
	sizes := []int{8, 16}
	if cfg.Quick {
		sizes = []int{8}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range sizes {
		l := bits.Lg(n)
		type scenario struct {
			name   string
			blocks int
			build  func() *delta.Iterated
		}
		scenarios := []scenario{
			{"butterfly", 1, func() *delta.Iterated {
				return delta.NewIterated(n).AddBlock(nil, delta.Butterfly(l))
			}},
			{"random", 1, func() *delta.Iterated {
				return delta.NewIterated(n).AddBlock(nil, delta.Random(l, 1.0, rng))
			}},
			{"butterfly×2", 2, func() *delta.Iterated {
				it := delta.NewIterated(n).AddBlock(nil, delta.Butterfly(l))
				return it.AddBlock(perm.Random(n, rng), delta.Butterfly(l))
			}},
		}
		for _, sc := range scenarios {
			if err := cfg.Err(); err != nil {
				t.NoteCanceled(err)
				return t
			}
			it := sc.build()
			an := core.Theorem41(it, 0)
			circ, _ := it.ToNetwork()
			opt, _, _ := core.OptimalNoncolliding(circ)
			ratio := 0.0
			if opt > 0 {
				ratio = float64(len(an.D)) / float64(opt)
			}
			t.AddRow(sc.name, n, sc.blocks, len(an.D), opt, ratio)
		}
	}
	t.Note("optimal = max |[M_0]| over every {S0,M0,L0}-pattern whose M-set is noncolliding (brute force; the best any adversary in the paper's framework can do on the instance)")
	t.Note("the adversary must also be *constructive across blocks*, so ratios below 1 on multi-block stacks reflect both the averaging slack and the keep-one-set policy of Theorem 4.1")
	return t
}
