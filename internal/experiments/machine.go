package experiments

import (
	"math/rand"

	"shufflenet/internal/bits"
	"shufflenet/internal/machine"
	"shufflenet/internal/perm"
	"shufflenet/internal/shuffle"
	"shufflenet/internal/sortcheck"
)

// E10Machine runs the workloads on a simulated shuffle-exchange
// multiprocessor (internal/machine) under the unit cost model: the
// Section 1 motivation made quantitative. Sorting pays the lg²n depth
// the paper's lower bound says is (nearly) unavoidable for this
// machine's strict-ascend programs, routing pays far less, and
// wavefront pipelining amortizes the depth across a batch.
func E10Machine(cfg Config) *Table {
	t := &Table{
		ID:    "E10",
		Title: "Simulated shuffle-exchange machine: cycles, work, messages",
		Claim: "strict-ascend programs on the shuffle machine: sorting costs Θ(lg²n) cycles/input (unavoidable up to lg lg n by the main theorem), routing Θ(lg n)–Θ(lg²n), and pipelining amortizes depth",
		Columns: []string{
			"workload", "n", "steps", "cycles/input", "pipelined(64)/input",
			"comparisons", "messages", "output ok",
		},
	}
	sizes := []int{64, 256, 1024}
	if cfg.Quick {
		sizes = []int{64, 256}
	}
	const B = 64
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range sizes {
		if err := cfg.Err(); err != nil {
			t.NoteCanceled(err)
			return t
		}
		m := machine.New(n, machine.DefaultCost)
		d := bits.Lg(n)
		_ = d

		workloads := []struct {
			name string
			run  func() (steps int, single, pipe machine.Stats, ok bool)
		}{
			{"sort/stone-bitonic", func() (int, machine.Stats, machine.Stats, bool) {
				r := shuffle.Bitonic(n)
				in := []int(perm.Random(n, rng))
				out, s1 := m.Run(r, in)
				batch := make([][]int, B)
				for i := range batch {
					batch[i] = []int(perm.Random(n, rng))
				}
				outs, sp := m.RunPipelined(r, batch)
				ok := sortcheck.IsSorted(out)
				for _, o := range outs {
					ok = ok && sortcheck.IsSorted(o)
				}
				return r.Depth(), s1, sp, ok
			}},
			{"route/by-sorting", func() (int, machine.Stats, machine.Stats, bool) {
				target := perm.Random(n, rng)
				r := shuffle.RoutePermutation(target)
				in := []int(perm.Random(n, rng))
				out, s1 := m.Run(r, in)
				batch := make([][]int, B)
				for i := range batch {
					batch[i] = []int(perm.Random(n, rng))
				}
				_, sp := m.RunPipelined(r, batch)
				ok := true
				for i := range in {
					if out[target[i]] != in[i] {
						ok = false
					}
				}
				return r.Depth(), s1, sp, ok
			}},
			{"route/shuffle-unshuffle", func() (int, machine.Stats, machine.Stats, bool) {
				target := perm.Random(n, rng)
				r := shuffle.RouteShuffleUnshuffle(target)
				in := []int(perm.Random(n, rng))
				out, s1 := m.Run(r, in)
				batch := make([][]int, B)
				for i := range batch {
					batch[i] = []int(perm.Random(n, rng))
				}
				_, sp := m.RunPipelined(r, batch)
				ok := true
				for i := range in {
					if out[target[i]] != in[i] {
						ok = false
					}
				}
				return r.Depth(), s1, sp, ok
			}},
		}
		for _, w := range workloads {
			steps, s1, sp, ok := w.run()
			t.AddRow(w.name, n, steps, s1.Cycles, sp.CyclesPerInput(),
				s1.Comparisons, s1.Messages, boolMark(ok))
		}
	}
	t.Note("unit cost model (route 1, compare 1, swap 1, idle 0); pipelined = 64-input wavefront, cycles amortized per input")
	t.Note("route/shuffle-unshuffle uses the ascend-descend machine (both π and π⁻¹ wired); the others are strict ascend")
	return t
}
