package experiments

import (
	"math"
	"math/rand"

	"shufflenet/internal/bits"
	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/obs"
	"shufflenet/internal/pattern"
	"shufflenet/internal/perm"
)

// E2LemmaSurvival measures the constructive Lemma 4.1 on single reverse
// delta blocks: the fraction of the tracked set that survives across
// the t(l) noncolliding sets, against the guaranteed 1 − l/k².
func E2LemmaSurvival(cfg Config) *Table {
	t := &Table{
		ID:    "E2",
		Title: "Lemma 4.1: survival through one reverse delta block",
		Claim: "|B| >= |A|(1 − l/k²) across t(l) = k³+lk² noncolliding sets; k = lg n",
		Columns: []string{
			"topology", "n", "l=k", "t(l)", "|A|", "|B|", "measured frac", "bound frac", "largest set",
		},
	}
	sizes := []int{16, 64, 256, 1024, 4096, 16384}
	if cfg.Quick {
		sizes = []int{16, 64, 256}
	}
	// Pre-draw the random topologies in the sequential row order, so the
	// shared stream yields the same trees as before; the rows themselves
	// are then independent and run as parallel cells.
	type e2cell struct {
		topo string
		n, l int
		tree *delta.Network
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var cells []e2cell
	for _, n := range sizes {
		l := bits.Lg(n)
		for _, topo := range []string{"butterfly", "random"} {
			tree := delta.Butterfly(l)
			if topo == "random" {
				tree = delta.Random(l, 1.0, rng)
			}
			cells = append(cells, e2cell{topo: topo, n: n, l: l, tree: tree})
		}
	}
	if !runCells(cfg, t, len(cells), func(i int) cellRow {
		c := cells[i]
		sp := cfg.Phase("lemma41", obs.A("n", c.n), obs.A("topo", c.topo))
		defer sp.End()
		p := pattern.Uniform(c.n, pattern.M(0))
		res, err := core.Lemma41Ctx(cfg.Context(), c.tree, p, c.l)
		if err != nil {
			return cellRow{err: err}
		}
		_, largest := res.LargestSet()
		sp.SetAttr("survivors", res.Survivors)
		sp.SetAttr("collisions", res.Collisions)
		return row(c.topo, c.n, c.l, res.T, res.Initial, res.Survivors,
			float64(res.Survivors)/float64(res.Initial),
			1.0-float64(c.l)/float64(c.l*c.l),
			len(largest),
		)
	}) {
		return t
	}
	t.Note("measured frac must dominate bound frac (asserted in code); the slack shows the analysis is conservative")
	return t
}

// E3IteratedSurvival measures Theorem 4.1: the size |D| of the
// noncolliding set maintained across d consecutive full-width blocks,
// against the guaranteed n / lg^{4d} n.
func E3IteratedSurvival(cfg Config) *Table {
	t := &Table{
		ID:    "E3",
		Title: "Theorem 4.1: |D| across d iterated reverse delta blocks",
		Claim: "|D| >= n / lg^{4d} n after d blocks (k = lg n), for every inter-block permutation",
		Columns: []string{
			"n", "d", "|D| measured", "paper bound", "survivors", "chosen set",
		},
	}
	sizes := []int{64, 256, 1024, 4096}
	if cfg.Quick {
		sizes = []int{64, 256}
	}
	dMax := 6
	if cfg.Quick {
		dMax = 4
	}
	// Pre-draw the inter-block permutations in the sequential order, so
	// the shared stream yields the same networks as before; each n is
	// then an independent parallel cell. (A seed whose adversary
	// collapses before dMax would have skipped its remaining draws under
	// the old interleaving and can shift later trees; seeds that ran the
	// full sweep — including the recorded seed 1 — are byte-identical.)
	rng := rand.New(rand.NewSource(cfg.Seed))
	pres := make([][]perm.Perm, len(sizes))
	for si, n := range sizes {
		pres[si] = make([]perm.Perm, dMax+1)
		for d := 2; d <= dMax; d++ {
			pres[si][d] = perm.Random(n, rng)
		}
	}
	if !runCells(cfg, t, len(sizes), func(si int) cellRow {
		n := sizes[si]
		l := bits.Lg(n)
		it := delta.NewIterated(n)
		var out cellRow
		for d := 1; d <= dMax; d++ {
			sp := cfg.Phase("theorem41", obs.A("n", n), obs.A("d", d))
			it.AddBlock(pres[si][d], delta.Butterfly(l))
			an, err := core.Theorem41Ctx(cfg.Context(), it, 0)
			if err != nil {
				sp.End()
				out.err = err
				return out
			}
			rep := an.Reports[len(an.Reports)-1]
			sp.SetAttr("D", len(an.D))
			sp.End()
			out.cells = append(out.cells, []interface{}{
				n, d, len(an.D), math.Max(paperBoundFor(n, d), 0), rep.Survivors, rep.ChosenSet,
			})
			if len(an.D) < 2 {
				break
			}
		}
		return out
	}) {
		return t
	}
	t.Note("the paper bound is asymptotic; at these n it is vacuous (<1) beyond the first blocks while the measured |D| stays far above it")
	return t
}

// E4Certificates runs the full Corollary 4.1.1 pipeline: adversary →
// certificate → independent verification, on shallow shuffle-based
// networks (truncated bitonic as iterated RDN, iterated butterflies,
// random RDN stacks). Every certificate is replayed through the
// flattened circuit.
func E4Certificates(cfg Config) *Table {
	t := &Table{
		ID:    "E4",
		Title: "Corollary 4.1.1: constructive non-sortability certificates",
		Claim: "any iterated RDN with d < lg n/(4 lg lg n) blocks fails to sort; the adversary emits a verified witness pair",
		Columns: []string{
			"network", "n", "blocks", "depth", "|D|", "certificate", "verified", "m", "wires",
		},
	}
	sizes := []int{64, 256, 1024}
	if cfg.Quick {
		sizes = []int{64, 256}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range sizes {
		l := bits.Lg(n)

		// (a) iterated butterflies with random glue, 2 blocks.
		it := delta.NewIterated(n)
		it.AddBlock(nil, delta.Butterfly(l))
		it.AddBlock(perm.Random(n, rng), delta.Butterfly(l))
		row, err := certRow(cfg, "butterfly×2", n, it)
		if err != nil {
			t.NoteCanceled(err)
			return t
		}
		t.Rows = append(t.Rows, row)

		// (b) truncated bitonic: the first 2 stages of Batcher's sorter
		// (an iterated RDN by construction).
		itb := delta.NewIterated(n)
		prev := perm.Identity(n)
		for s := 1; s <= 2 && s <= l; s++ {
			rho := delta.ReverseLowBits(n, s)
			itb.AddBlock(prev.Compose(rho), delta.BitonicStage(l, s))
			prev = rho
		}
		row, err = certRow(cfg, "bitonic/2-stages", n, itb)
		if err != nil {
			t.NoteCanceled(err)
			return t
		}
		t.Rows = append(t.Rows, row)

		// (c) random full RDN stack.
		itr := delta.NewIterated(n)
		for b := 0; b < 2; b++ {
			itr.AddBlock(perm.Random(n, rng), delta.Random(l, 1.0, rng))
		}
		row, err = certRow(cfg, "random×2", n, itr)
		if err != nil {
			t.NoteCanceled(err)
			return t
		}
		t.Rows = append(t.Rows, row)
	}
	t.Note("certificate = inputs π, π′ differing in adjacent values m, m+1 on two wires the network never compares; verified = replay through the flattened circuit confirms identical routing and unsorted output")
	return t
}

func certRow(cfg Config, name string, n int, it *delta.Iterated) ([]string, error) {
	an, cerr := core.Theorem41Ctx(cfg.Context(), it, 0)
	if cerr != nil {
		return nil, cerr
	}
	cert, err := an.Certificate()
	row := &Table{}
	if err != nil {
		row.AddRow(name, n, it.Blocks(), it.Depth(), len(an.D), "none", "-", "-", "-")
		return row.Rows[0], nil
	}
	circ, _ := it.ToNetwork()
	verified := "FAIL"
	if err := cert.Verify(circ); err == nil {
		verified = "yes"
	}
	row.AddRow(name, n, it.Blocks(), it.Depth(), len(an.D), "yes", verified,
		cert.M, pair(cert.W0, cert.W1))
	return row.Rows[0], nil
}

// E5TruncatedBlocks explores the Section 5 generalization: arbitrary
// permutations every f stages (forest blocks of f-level trees). The
// technique then gives Ω((lg n / lg f)·f); we measure how many blocks
// the adversary survives for various f.
func E5TruncatedBlocks(cfg Config) *Table {
	t := &Table{
		ID:    "E5",
		Title: "Section 5: blocks of f levels between free permutations",
		Claim: "with an arbitrary permutation every f stages the technique yields Ω((lg n/lg f)·f) depth",
		Columns: []string{
			"n", "f", "blocks survived", "total depth", "|D| at stop", "Ω formula",
		},
	}
	sizes := []int{256, 1024}
	if cfg.Quick {
		sizes = []int{256}
	}
	// Each (n, f) cell draws an unpredictable number of blocks (the loop
	// stops when the tracked set collapses), so cells cannot share one
	// sequential stream without serializing the sweep: each gets its own
	// stream derived from (seed, n, f). Recorded tables changed once
	// when this replaced the shared stream; per seed they are stable.
	type e5cell struct{ n, d, f int }
	var cells []e5cell
	for _, n := range sizes {
		d := bits.Lg(n)
		for _, f := range dedupeInts([]int{1, 2, 3, 4, d / 2, d}) {
			if f < 1 || f > d {
				continue
			}
			cells = append(cells, e5cell{n: n, d: d, f: f})
		}
	}
	if !runCells(cfg, t, len(cells), func(i int) cellRow {
		c := cells[i]
		rng := rand.New(rand.NewSource(cellSeed(cfg.Seed, 5, int64(c.n), int64(c.f))))
		maxBlocks := 24 * c.d
		if cfg.Quick {
			maxBlocks = 4 * c.d
		}
		inc := core.NewIncremental(c.n, 0)
		blocks, lastD := 0, c.n
		for blocks < maxBlocks {
			trees := make([]*delta.Network, c.n/(1<<uint(c.f)))
			for i := range trees {
				trees[i] = delta.Random(c.f, 1.0, rng)
			}
			if _, err := inc.AddBlockCtx(cfg.Context(), perm.Random(c.n, rng), delta.NewForest(trees...)); err != nil {
				return cellRow{err: err}
			}
			if d := len(inc.D()); d < 2 {
				break
			} else {
				lastD = d
			}
			blocks++
		}
		survived := trimFloat(float64(blocks))
		if blocks == maxBlocks {
			survived = ">=" + survived // censored at the cap
		}
		formula := float64(c.f) * math.Log2(float64(c.n)) / math.Max(1, math.Log2(float64(c.f)+1))
		return row(c.n, c.f, survived, blocks*c.f, lastD, formula)
	}) {
		return t
	}
	t.Note("blocks survived = largest k with |D| >= 2 after k blocks (incremental adversary); total depth = k·f comparator levels; >= marks runs censored at the block cap")
	t.Note("the Ω formula column is the asymptotic shape (lg n/lg f)·f for comparison of trends, not an absolute prediction")
	return t
}

func dedupeInts(xs []int) []int {
	seen := map[int]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// E8AdversaryDepth measures the empirical constant of Corollary 4.1.1:
// the deepest iterated-butterfly stack the adversary survives, against
// lg n/(4 lg lg n) (the proof's constant) and lg n/(2 lg lg n) (the
// sharper constant the paper notes is achievable).
func E8AdversaryDepth(cfg Config) *Table {
	t := &Table{
		ID:    "E8",
		Title: "Empirical adversary depth vs. the proof's constant",
		Claim: "the proof guarantees survival for d < lg n/(4 lg lg n); a sharper analysis gives 1/(2+ε); empirically the adversary lasts longer",
		Columns: []string{
			"n", "max d (|D|>=2)", "lg n/(4 lglg n)", "lg n/(2 lglg n)", "|D| at max d",
		},
	}
	sizes := []int{64, 256, 1024, 4096}
	if cfg.Quick {
		sizes = []int{64, 256}
	}
	// Each n draws permutations until its adversary collapses — a
	// result-dependent count — so the per-n cells use derived streams
	// (see E5); per seed the table is stable.
	if !runCells(cfg, t, len(sizes), func(si int) cellRow {
		n := sizes[si]
		l := bits.Lg(n)
		rng := rand.New(rand.NewSource(cellSeed(cfg.Seed, 8, int64(n))))
		cap := 40 * l
		if cfg.Quick {
			cap = 8 * l
		}
		inc := core.NewIncremental(n, 0)
		maxD, lastSize := 0, 0
		for d := 1; d <= cap; d++ {
			var pre perm.Perm
			if d > 1 {
				pre = perm.Random(n, rng)
			}
			if _, err := inc.AddBlockCtx(cfg.Context(), pre, delta.NewForest(delta.Butterfly(l))); err != nil {
				return cellRow{err: err}
			}
			if len(inc.D()) < 2 {
				break
			}
			maxD, lastSize = d, len(inc.D())
		}
		shown := trimFloat(float64(maxD))
		if maxD == cap {
			shown = ">=" + shown // censored
		}
		lgn := math.Log2(float64(n))
		lglgn := math.Log2(lgn)
		return row(n, shown, lgn/(4*lglgn), lgn/(2*lglgn), lastSize)
	}) {
		return t
	}
	t.Note("max d counts butterfly blocks with random inter-block permutations (incremental adversary; >= marks the block cap); comparator depth is d·lg n")
	return t
}

func paperBoundFor(n, d int) float64 {
	return float64(n) / math.Pow(math.Log2(float64(n)), float64(4*d))
}
