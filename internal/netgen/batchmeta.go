package netgen

// Batch meta-file emission (ModeBatch): "batch.go" carries the public
// batch API of the generated package — shape validation, dispatch
// tables over the pure-Go kernels, the SIMD hook tables that
// batch_amd64.go fills in at init when AVX-512 is available, the
// pooled transpose scratch behind the row-major entry points, and the
// SetBatchSIMD test/bench toggle.

import (
	"fmt"
	"strings"
)

// concreteBatchKinds filters kinds down to the non-generic batch
// families, in emission order.
func concreteBatchKinds(kinds []Kind) []Kind {
	var out []Kind
	for _, k := range batchKinds {
		if k == KindOrdered {
			continue
		}
		for _, want := range kinds {
			if k == want {
				out = append(out, k)
				break
			}
		}
	}
	return out
}

func hasKind(kinds []Kind, want Kind) bool {
	for _, k := range kinds {
		if k == want {
			return true
		}
	}
	return false
}

// simdWidths lists the kernel widths that get AVX-512 columnar kernels
// and transpose helpers: every element is a 64-bit scalar, eight lanes
// per zmm register, and the two-block transpose tops out at 16 columns.
func simdWidths(kernels []kernel) []int {
	var out []int
	for _, k := range kernels {
		if k.n <= 16 {
			out = append(out, k.n)
		}
	}
	return out
}

// genBatchMetaFile emits "batch.go".
func genBatchMetaFile(opts Options, kinds []Kind, kernels []kernel) ([]byte, error) {
	concrete := concreteBatchKinds(kinds)
	ordered := hasKind(kinds, KindOrdered)
	simd := len(concrete) > 0 && len(simdWidths(kernels)) > 0

	var b strings.Builder
	header(opts, &b)
	b.WriteString("// Batch entry points: sort many same-width slices per call.\n")
	b.WriteString("//\n")
	b.WriteString("// Batch<Kind> takes the column-major (\"vertical\") layout — data holds\n")
	b.WriteString("// n columns of length m, column w at data[w*m:(w+1)*m], and logical\n")
	b.WriteString("// row r is the n values {data[w*m+r]}. Every row is sorted in place.\n")
	b.WriteString("// BatchFlat<Kind> takes the row-major layout — m contiguous rows of\n")
	b.WriteString("// width n. Both report whether a kernel of that width was available;\n")
	b.WriteString("// on false the data is untouched.\n")
	fmt.Fprintf(&b, "package %s\n\n", opts.Package)

	var imports []string
	if ordered {
		imports = append(imports, "cmp")
	}
	if simd {
		imports = append(imports, "sync", "unsafe")
	}
	switch len(imports) {
	case 0:
	case 1:
		fmt.Fprintf(&b, "import %q\n\n", imports[0])
	default:
		b.WriteString("import (\n")
		for _, im := range imports {
			fmt.Fprintf(&b, "\t%q\n", im)
		}
		b.WriteString(")\n\n")
	}

	minW, maxW := kernels[0].n, kernels[len(kernels)-1].n
	fmt.Fprintf(&b, "// Batch kernel widths span [BatchMinWidth, BatchMaxWidth];\n// BatchWidths lists the ones actually present.\nconst (\n\tBatchMinWidth = %d\n\tBatchMaxWidth = %d\n)\n\n", minW, maxW)
	b.WriteString("// BatchWidths returns the batch kernel widths available, ascending.\nfunc BatchWidths() []int {\n\treturn []int{")
	for i, k := range kernels {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", k.n)
	}
	b.WriteString("}\n}\n\n")

	// SIMD switches. Emitted even without SIMD kernels so the API is
	// stable across generation configurations.
	b.WriteString(`// batchSIMDAvail records whether the CPU supports the AVX-512 batch
// kernels (set at init by the amd64 build); batchSIMDOn is the live
// switch.
var (
	batchSIMDAvail bool
	batchSIMDOn    bool
)

// BatchSIMDAvailable reports whether AVX-512 batch kernels are
// compiled in and supported by this CPU.
func BatchSIMDAvailable() bool { return batchSIMDAvail }

// BatchSIMD reports whether the batch entry points currently use the
// AVX-512 kernels.
func BatchSIMD() bool { return batchSIMDOn }

// SetBatchSIMD toggles the AVX-512 batch kernels (a no-op request when
// they are unavailable) and returns the previous setting. It is meant
// for tests and benchmarks that pin down one implementation; it is not
// synchronized with concurrent Batch calls.
func SetBatchSIMD(on bool) (prev bool) {
	prev = batchSIMDOn
	batchSIMDOn = on && batchSIMDAvail
	return prev
}

// batchDims validates a column-major batch shape and returns its
// width. trivial means there is nothing to sort (no rows, or rows
// shorter than 2); ok is false when the shape fits no kernel.
func batchDims(lenData, m, maxWidth int) (n int, trivial, ok bool) {
	if lenData == 0 {
		return 0, true, m >= 0
	}
	if m <= 0 {
		return 0, false, false
	}
	n = lenData / m
	if n*m != lenData || n > maxWidth {
		return 0, false, false
	}
	return n, n < 2, true
}

// batchFlatDims validates a row-major batch shape and returns its row
// count, with the same trivial/ok split as batchDims.
func batchFlatDims(lenData, width, maxWidth int) (m int, trivial, ok bool) {
	if lenData == 0 {
		return 0, true, width >= 0
	}
	if width <= 0 {
		return 0, false, false
	}
	m = lenData / width
	if m*width != lenData || width > maxWidth {
		return 0, false, false
	}
	return m, width < 2, true
}

`)

	if simd {
		b.WriteString(`// batchTransTo and batchTransFrom hold the AVX-512 transpose helpers
// between the row-major and column-major layouts (filled in by the
// amd64 init; element type is any 64-bit scalar, hence the untyped
// pointers). batchTransTo[n] gathers m rows of width n into columns;
// batchTransFrom[n] scatters them back.
var (
	batchTransTo   [BatchMaxWidth + 1]func(dst, src unsafe.Pointer, m int)
	batchTransFrom [BatchMaxWidth + 1]func(dst, src unsafe.Pointer, m int)
)

`)
	}

	for _, kind := range concrete {
		elem := kind.elem()
		// Go dispatch tables.
		fmt.Fprintf(&b, "var batchCols%sKernels = [BatchMaxWidth + 1]func(data []%s, m int){\n", kind, elem)
		for _, k := range kernels {
			fmt.Fprintf(&b, "\t%d: batchCols%d%s,\n", k.n, k.n, kind)
		}
		b.WriteString("}\n\n")
		fmt.Fprintf(&b, "var batchFlat%sKernels = [BatchMaxWidth + 1]func(data []%s, m int){\n", kind, elem)
		for _, k := range kernels {
			fmt.Fprintf(&b, "\t%d: batchFlat%d%s,\n", k.n, k.n, kind)
		}
		b.WriteString("}\n\n")
		if simd {
			fmt.Fprintf(&b, "// simdCols%sKernels is filled in by the amd64 init when AVX-512 is\n// available.\nvar simdCols%sKernels [BatchMaxWidth + 1]func(data []%s, m int)\n\n", kind, kind, elem)
			fmt.Fprintf(&b, "var batchScratch%s = sync.Pool{New: func() any { return new([]%s) }}\n\n", kind, elem)
		}

		// Batch<Kind> (column-major).
		fmt.Fprintf(&b, "// Batch%s sorts, in place, every row of the column-major batch:\n", kind)
		fmt.Fprintf(&b, "// data holds len(data)/m columns of length m, column w at\n// data[w*m:(w+1)*m]. It reports whether a kernel of that width was\n// available; on false the data is untouched.\n")
		if kind == KindFloat64 {
			b.WriteString("// Input must be NaN-free (shufflenet.SortBatch prescans); ±0 bit\n// patterns are preserved as a multiset.\n")
		}
		fmt.Fprintf(&b, "func Batch%s(data []%s, m int) bool {\n", kind, elem)
		b.WriteString("\tn, trivial, ok := batchDims(len(data), m, BatchMaxWidth)\n\tif !ok {\n\t\treturn false\n\t}\n\tif trivial {\n\t\treturn true\n\t}\n")
		if simd {
			fmt.Fprintf(&b, "\tif batchSIMDOn {\n\t\tif k := simdCols%sKernels[n]; k != nil {\n\t\t\tk(data, m)\n\t\t\treturn true\n\t\t}\n\t}\n", kind)
		}
		fmt.Fprintf(&b, "\tif k := batchCols%sKernels[n]; k != nil {\n\t\tk(data, m)\n\t\treturn true\n\t}\n\treturn false\n}\n\n", kind)

		// BatchFlat<Kind> (row-major).
		fmt.Fprintf(&b, "// BatchFlat%s sorts, in place, every row of the row-major batch:\n", kind)
		fmt.Fprintf(&b, "// data holds len(data)/width contiguous rows of the given width. It\n// reports whether a kernel of that width was available; on false the\n// data is untouched.\n")
		if kind == KindFloat64 {
			b.WriteString("// Input must be NaN-free (shufflenet.SortBatchFlat prescans).\n")
		}
		fmt.Fprintf(&b, "func BatchFlat%s(data []%s, width int) bool {\n", kind, elem)
		b.WriteString("\tm, trivial, ok := batchFlatDims(len(data), width, BatchMaxWidth)\n\tif !ok {\n\t\treturn false\n\t}\n\tif trivial {\n\t\treturn true\n\t}\n")
		if simd {
			fmt.Fprintf(&b, `	if batchSIMDOn {
		if k := simdCols%sKernels[width]; k != nil && batchTransTo[width] != nil {
			sp := batchScratch%s.Get().(*[]%s)
			s := *sp
			if cap(s) < len(data) {
				s = make([]%s, len(data))
			}
			s = s[:len(data)]
			batchTransTo[width](unsafe.Pointer(&s[0]), unsafe.Pointer(&data[0]), m)
			k(s, m)
			batchTransFrom[width](unsafe.Pointer(&data[0]), unsafe.Pointer(&s[0]), m)
			*sp = s
			batchScratch%s.Put(sp)
			return true
		}
	}
`, kind, kind, elem, elem, kind)
		}
		fmt.Fprintf(&b, "\tif k := batchFlat%sKernels[width]; k != nil {\n\t\tk(data, m)\n\t\treturn true\n\t}\n\treturn false\n}\n\n", kind)

		// Accessors.
		fmt.Fprintf(&b, "// Batch%sKernel returns the width-n column-major batch kernel that a\n// Batch%s call would run right now (AVX-512 when enabled), or nil when\n// none exists. Hot loops can hoist the lookup.\n", kind, kind)
		fmt.Fprintf(&b, "func Batch%sKernel(n int) func(data []%s, m int) {\n\tif n < BatchMinWidth || n > BatchMaxWidth {\n\t\treturn nil\n\t}\n", kind, elem)
		if simd {
			fmt.Fprintf(&b, "\tif batchSIMDOn {\n\t\tif k := simdCols%sKernels[n]; k != nil {\n\t\t\treturn k\n\t\t}\n\t}\n", kind)
		}
		fmt.Fprintf(&b, "\treturn batchCols%sKernels[n]\n}\n\n", kind)
		fmt.Fprintf(&b, "// BatchFlat%sKernel returns the portable width-n row-major batch\n// kernel, or nil when none exists. (The SIMD row-major path needs\n// transpose scratch and lives only behind BatchFlat%s.)\n", kind, kind)
		fmt.Fprintf(&b, "func BatchFlat%sKernel(n int) func(data []%s, m int) {\n\tif n < BatchMinWidth || n > BatchMaxWidth {\n\t\treturn nil\n\t}\n\treturn batchFlat%sKernels[n]\n}\n\n", kind, elem, kind)
	}

	if ordered {
		b.WriteString("// BatchOrdered sorts, in place, every row of the column-major batch\n// of any ordered element type (pure Go; the SIMD kernels cover the\n// concrete 64-bit families). Same contract as BatchInt.\nfunc BatchOrdered[T cmp.Ordered](data []T, m int) bool {\n\tn, trivial, ok := batchDims(len(data), m, BatchMaxWidth)\n\tif !ok {\n\t\treturn false\n\t}\n\tif trivial {\n\t\treturn true\n\t}\n\tswitch n {\n")
		for _, k := range kernels {
			fmt.Fprintf(&b, "\tcase %d:\n\t\tbatchCols%dOrdered(data, m)\n", k.n, k.n)
		}
		b.WriteString("\tdefault:\n\t\treturn false\n\t}\n\treturn true\n}\n\n")
		b.WriteString("// BatchFlatOrdered sorts, in place, every row of the row-major batch\n// of any ordered element type. Same contract as BatchFlatInt.\nfunc BatchFlatOrdered[T cmp.Ordered](data []T, width int) bool {\n\tm, trivial, ok := batchFlatDims(len(data), width, BatchMaxWidth)\n\tif !ok {\n\t\treturn false\n\t}\n\tif trivial {\n\t\treturn true\n\t}\n\tswitch width {\n")
		for _, k := range kernels {
			fmt.Fprintf(&b, "\tcase %d:\n\t\tbatchFlat%dOrdered(data, m)\n", k.n, k.n)
		}
		b.WriteString("\tdefault:\n\t\treturn false\n\t}\n\treturn true\n}\n")
	}

	return gofmt(b.String(), "batch.go")
}
