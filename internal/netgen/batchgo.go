package netgen

// Pure-Go batch kernel emission (ModeBatch): for every width and
// element family, two fused kernels that sort many small slices per
// call —
//
//   - batchCols<N><Kind>(data, m): column-major ("vertical") layout,
//     column w at data[w*m:(w+1)*m], logical row r = {data[w*m+r]}w.
//     One loop over rows; the whole comparator schedule runs on locals
//     per row, so the comparator cost is amortized over the batch with
//     no per-slice dispatch and no data-dependent branches on the
//     integer families.
//   - batchFlat<N><Kind>(data, m): row-major layout, row r contiguous
//     at data[r*n:(r+1)*n]. Same fused schedule, one slice-header bound
//     check per row instead of per call.
//
// On amd64 the columnar layout additionally gets AVX-512 kernels (see
// batchasm.go); these Go versions are the portable fallback and the
// differential oracle for them.

import (
	"fmt"
	"strings"
)

// batchKinds lists the element families that get batch kernels: the
// Func family is excluded (a per-element comparison callback defeats
// the point of a fused batch pass).
var batchKinds = []Kind{KindInt, KindUint64, KindFloat64, KindOrdered}

// batchFile returns the generated file holding one family's batch
// kernels.
func (k Kind) batchFile() string {
	return "batch_" + strings.ToLower(k.String()) + ".go"
}

// genBatchKindFile emits every batch kernel of one family.
func genBatchKindFile(opts Options, kind Kind, kernels []kernel) ([]byte, error) {
	var b strings.Builder
	header(opts, &b)
	fmt.Fprintf(&b, "package %s\n\n", opts.Package)
	if kind == KindOrdered {
		b.WriteString("import \"cmp\"\n\n")
	}
	for i, k := range kernels {
		if i > 0 {
			b.WriteString("\n")
		}
		genBatchColsKernel(&b, kind, k)
		b.WriteString("\n")
		genBatchFlatKernel(&b, kind, k)
	}
	return gofmt(b.String(), kind.batchFile())
}

// batchExchange emits one compare-exchange on the locals v<lo>, v<hi>.
//
// The integer families use the min/max builtins (conditional moves).
// Float64 uses them too: builtin min/max on floats is branchless on
// amd64 and keeps the bit multiset on ±0 (min prefers -0, max +0) —
// but it would turn one NaN into two, so the batch float kernels
// require NaN-free input (the shufflenet façade prescans). The Ordered
// family keeps the compare-and-swap `if`: one comparison per exchange,
// correct for every ordered type.
func batchExchange(b *strings.Builder, kind Kind, lo, hi int) {
	switch kind {
	case KindInt, KindUint64, KindFloat64:
		fmt.Fprintf(b, "\t\tv%d, v%d = min(v%d, v%d), max(v%d, v%d)\n", lo, hi, lo, hi, lo, hi)
	default: // ordered
		fmt.Fprintf(b, "\t\tif v%d < v%d {\n\t\t\tv%d, v%d = v%d, v%d\n\t\t}\n", hi, lo, lo, hi, hi, lo)
	}
}

// genBatchColsKernel emits the column-major fused kernel of one width.
func genBatchColsKernel(b *strings.Builder, kind Kind, k kernel) {
	name := fmt.Sprintf("batchCols%d%s", k.n, kind)
	fmt.Fprintf(b, "// %s sorts each of the m rows of a %d-column\n", name, k.n)
	fmt.Fprintf(b, "// column-major batch: column w is data[w*m:(w+1)*m], row r is the\n")
	fmt.Fprintf(b, "// %d values {data[w*m+r]}. Depth %d, size %d", k.n, k.depth, k.size)
	if k.note != "" {
		fmt.Fprintf(b, ", %s", k.note)
	}
	b.WriteString(".\n")
	if kind == KindFloat64 {
		b.WriteString("// Input must be NaN-free (callers prescan); ±0 bit patterns are\n// preserved as a multiset.\n")
	}
	switch kind {
	case KindOrdered:
		fmt.Fprintf(b, "func %s[T cmp.Ordered](data []T, m int) {\n", name)
	default:
		fmt.Fprintf(b, "func %s(data []%s, m int) {\n", name, kind.elem())
	}
	for w := 0; w < k.n; w++ {
		fmt.Fprintf(b, "\tc%d := data[%d*m : %d*m]\n", w, w, w+1)
	}
	b.WriteString("\tfor r := range c0 {\n")
	b.WriteString("\t\t")
	for w := 0; w < k.n; w++ {
		if w > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "v%d", w)
	}
	b.WriteString(" := ")
	for w := 0; w < k.n; w++ {
		if w > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "c%d[r]", w)
	}
	b.WriteString("\n")
	for li, lv := range k.levels {
		if len(lv) == 0 {
			continue
		}
		fmt.Fprintf(b, "\n\t\t// level %d\n", li+1)
		for _, p := range lv {
			batchExchange(b, kind, p[0], p[1])
		}
	}
	b.WriteString("\n\t\t")
	for w := 0; w < k.n; w++ {
		if w > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "c%d[r]", w)
	}
	b.WriteString(" = ")
	for w := 0; w < k.n; w++ {
		if w > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "v%d", k.outPerm[w])
	}
	b.WriteString("\n\t}\n}\n")
}

// genBatchFlatKernel emits the row-major fused kernel of one width.
func genBatchFlatKernel(b *strings.Builder, kind Kind, k kernel) {
	name := fmt.Sprintf("batchFlat%d%s", k.n, kind)
	fmt.Fprintf(b, "// %s sorts each of the m contiguous width-%d rows of a\n", name, k.n)
	fmt.Fprintf(b, "// row-major batch in place: row r is data[r*%d:(r+1)*%d].\n", k.n, k.n)
	if kind == KindFloat64 {
		b.WriteString("// Input must be NaN-free (callers prescan).\n")
	}
	switch kind {
	case KindOrdered:
		fmt.Fprintf(b, "func %s[T cmp.Ordered](data []T, m int) {\n", name)
	default:
		fmt.Fprintf(b, "func %s(data []%s, m int) {\n", name, kind.elem())
	}
	fmt.Fprintf(b, "\tfor r := 0; r < m; r++ {\n")
	fmt.Fprintf(b, "\t\ts := data[r*%d : r*%d+%d : r*%d+%d]\n", k.n, k.n, k.n, k.n, k.n)
	b.WriteString("\t\t")
	for w := 0; w < k.n; w++ {
		if w > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "v%d", w)
	}
	b.WriteString(" := ")
	for w := 0; w < k.n; w++ {
		if w > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "s[%d]", w)
	}
	b.WriteString("\n")
	for li, lv := range k.levels {
		if len(lv) == 0 {
			continue
		}
		fmt.Fprintf(b, "\n\t\t// level %d\n", li+1)
		for _, p := range lv {
			batchExchange(b, kind, p[0], p[1])
		}
	}
	b.WriteString("\n\t\t")
	for w := 0; w < k.n; w++ {
		if w > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "s[%d]", w)
	}
	b.WriteString(" = ")
	for w := 0; w < k.n; w++ {
		if w > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "v%d", k.outPerm[w])
	}
	b.WriteString("\n\t}\n}\n")
}
