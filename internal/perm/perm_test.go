package perm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shufflenet/internal/bits"
)

func randPerm(t *testing.T, n int, seed int64) Perm {
	t.Helper()
	p := Random(n, rand.New(rand.NewSource(seed)))
	if !p.Valid() {
		t.Fatalf("Random produced invalid permutation %v", p)
	}
	return p
}

func TestIdentity(t *testing.T) {
	p := Identity(6)
	if !p.Valid() || !p.IsIdentity() || p.Fixed() != 6 || p.Order() != 1 || p.Sign() != 1 {
		t.Errorf("Identity(6) misbehaves: %v", p)
	}
}

func TestShuffleDefinition(t *testing.T) {
	// For n=8: pi(j_2 j_1 j_0) = j_1 j_0 j_2.
	want := Perm{0, 2, 4, 6, 1, 3, 5, 7}
	if got := Shuffle(8); !got.Equal(want) {
		t.Errorf("Shuffle(8) = %v, want %v", got, want)
	}
}

func TestShuffleInterleavesHalves(t *testing.T) {
	// Routing by the shuffle must interleave the two halves of the deck:
	// (0..3, 4..7) -> 0 4 1 5 2 6 3 7.
	data := []int{0, 1, 2, 3, 4, 5, 6, 7}
	got := Shuffle(8).Route(data)
	want := []int{0, 4, 1, 5, 2, 6, 3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Shuffle route = %v, want %v", got, want)
		}
	}
}

func TestUnshuffleIsInverse(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64, 256} {
		if !Shuffle(n).Compose(Unshuffle(n)).IsIdentity() {
			t.Errorf("n=%d: unshuffle∘shuffle != id", n)
		}
		if !Shuffle(n).Inverse().Equal(Unshuffle(n)) {
			t.Errorf("n=%d: Shuffle.Inverse != Unshuffle", n)
		}
	}
}

func TestShuffleOrderIsLgN(t *testing.T) {
	// shuffle^d = identity on 2^d elements, and no smaller power is
	// (the order is exactly d when d is prime; in general it divides d).
	for _, n := range []int{2, 4, 8, 16, 32, 128} {
		d := bits.Lg(n)
		p := Identity(n)
		for i := 0; i < d; i++ {
			p = p.Compose(Shuffle(n))
		}
		if !p.IsIdentity() {
			t.Errorf("n=%d: shuffle^%d != id", n, d)
		}
	}
	if Shuffle(8).Order() != 3 {
		t.Errorf("Shuffle(8) order = %d, want 3", Shuffle(8).Order())
	}
}

func TestBitReversalInvolution(t *testing.T) {
	for _, n := range []int{2, 8, 64, 1024} {
		r := BitReversal(n)
		if !r.Compose(r).IsIdentity() {
			t.Errorf("n=%d: bit reversal is not an involution", n)
		}
	}
}

func TestBitReversalConjugatesShuffle(t *testing.T) {
	// R ∘ shuffle ∘ R = unshuffle: rotating left in reversed bit order
	// is rotating right.
	for _, n := range []int{4, 16, 256} {
		r := BitReversal(n)
		got := r.Compose(Shuffle(n)).Compose(r)
		if !got.Equal(Unshuffle(n)) {
			t.Errorf("n=%d: R∘shuffle∘R != unshuffle", n)
		}
	}
}

func TestBitFlip(t *testing.T) {
	p := BitFlip(8, 0)
	want := Perm{1, 0, 3, 2, 5, 4, 7, 6}
	if !p.Equal(want) {
		t.Errorf("BitFlip(8,0) = %v", p)
	}
	if !p.Compose(p).IsIdentity() {
		t.Error("BitFlip not an involution")
	}
	if p.Sign() != 1 { // 4 transpositions: even
		t.Error("BitFlip(8,0) should be even")
	}
}

func TestTransposition(t *testing.T) {
	p := Transposition(5, 1, 3)
	if p.Sign() != -1 || p.Fixed() != 3 || p.Order() != 2 {
		t.Errorf("Transposition(5,1,3) = %v misbehaves", p)
	}
}

func TestInverseComposeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		p := Random(n, rng)
		if !p.Compose(p.Inverse()).IsIdentity() || !p.Inverse().Compose(p).IsIdentity() {
			t.Fatalf("inverse failed for %v", p)
		}
	}
}

func TestComposeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(64)
		p, q, r := Random(n, rng), Random(n, rng), Random(n, rng)
		if !p.Compose(q).Compose(r).Equal(p.Compose(q.Compose(r))) {
			t.Fatal("composition not associative")
		}
	}
}

func TestRouteMatchesCompose(t *testing.T) {
	// Routing data by p then q must equal routing by p.Compose(q).
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(64)
		p, q := Random(n, rng), Random(n, rng)
		data := make([]int, n)
		for i := range data {
			data[i] = rng.Intn(1000)
		}
		step := q.Route(p.Route(data))
		direct := p.Compose(q).Route(data)
		for i := range step {
			if step[i] != direct[i] {
				t.Fatalf("route mismatch at %d", i)
			}
		}
	}
}

func TestRouteInverseRestores(t *testing.T) {
	p := randPerm(t, 40, 99)
	data := make([]int, 40)
	for i := range data {
		data[i] = i * i
	}
	back := p.Inverse().Route(p.Route(data))
	for i := range data {
		if back[i] != data[i] {
			t.Fatal("inverse route did not restore data")
		}
	}
}

func TestRouteInto(t *testing.T) {
	p := Shuffle(8)
	data := []int{10, 11, 12, 13, 14, 15, 16, 17}
	dst := make([]int, 8)
	p.RouteInto(dst, data)
	want := p.Route(data)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatal("RouteInto differs from Route")
		}
	}
}

func TestCycles(t *testing.T) {
	p := Perm{1, 2, 0, 4, 3, 5} // (0 1 2)(3 4)(5)
	cycles := p.Cycles()
	if len(cycles) != 3 {
		t.Fatalf("got %d cycles", len(cycles))
	}
	if len(cycles[0]) != 3 || len(cycles[1]) != 2 || len(cycles[2]) != 1 {
		t.Errorf("cycle shape wrong: %v", cycles)
	}
	if p.Order() != 6 {
		t.Errorf("order = %d, want 6", p.Order())
	}
	if p.Sign() != -1 {
		t.Errorf("sign = %d, want -1", p.Sign())
	}
}

func TestSignHomomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(32)
		p, q := Random(n, rng), Random(n, rng)
		if p.Compose(q).Sign() != p.Sign()*q.Sign() {
			t.Fatal("sign is not a homomorphism")
		}
	}
}

func TestValidRejects(t *testing.T) {
	bad := []Perm{{0, 0}, {1, 2}, {-1, 0}, {2, 1, 0, 2}}
	for _, p := range bad {
		if p.Valid() {
			t.Errorf("Valid accepted %v", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustValid did not panic")
		}
	}()
	Perm{0, 0}.MustValid()
}

func TestQuickInverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		p := Random(33, rand.New(rand.NewSource(seed)))
		return p.Inverse().Inverse().Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRandomIsValid(t *testing.T) {
	f := func(seed int64) bool {
		return Random(65, rand.New(rand.NewSource(seed))).Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	p := Shuffle(8)
	q := p.Clone()
	q[0], q[1] = q[1], q[0]
	if p.Equal(q) {
		t.Error("Clone aliases original")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Compose mismatch", func() { Identity(3).Compose(Identity(4)) })
	mustPanic("Route mismatch", func() { Identity(3).Route([]int{1, 2}) })
	mustPanic("BitFlip range", func() { BitFlip(8, 3) })
	mustPanic("Shuffle non-pow2", func() { Shuffle(6) })
}
