// Package perm implements permutations of {0, ..., n-1} and the named
// permutation families that hypercubic networks are built from.
//
// A Perm p is stored in one-line notation: p[i] is the image of i. When
// a Perm is used to route data between network levels (the Π_i of the
// paper's register model), the value on wire i moves to wire p[i]; see
// Apply and Route for the two directions of that convention.
package perm

import (
	"fmt"
	"math/rand"

	"shufflenet/internal/bits"
)

// Perm is a permutation of {0, ..., n-1} in one-line notation:
// the image of i is p[i].
type Perm []int

// Identity returns the identity permutation on n elements.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Random returns a uniformly random permutation on n elements drawn
// from rng (Fisher–Yates).
func Random(n int, rng *rand.Rand) Perm {
	p := Identity(n)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle returns the perfect shuffle permutation π on n = 2^d
// elements: if j has binary representation j_{d-1}...j_0, then
// π(j) = j_{d-2}...j_0 j_{d-1} (a left rotation of the bit string).
// Following the paper (Section 1), shuffling register contents by π
// interleaves the two halves of the register file.
func Shuffle(n int) Perm {
	d := bits.Lg(n)
	p := make(Perm, n)
	for j := range p {
		p[j] = bits.RotLeft(j, d)
	}
	return p
}

// Unshuffle returns the inverse π⁻¹ of the perfect shuffle on n = 2^d
// elements (a right rotation of the bit string).
func Unshuffle(n int) Perm {
	d := bits.Lg(n)
	p := make(Perm, n)
	for j := range p {
		p[j] = bits.RotRight(j, d)
	}
	return p
}

// BitReversal returns the bit-reversal permutation on n = 2^d elements.
func BitReversal(n int) Perm {
	d := bits.Lg(n)
	p := make(Perm, n)
	for j := range p {
		p[j] = bits.Reverse(j, d)
	}
	return p
}

// BitFlip returns the permutation on n = 2^d elements that complements
// bit k of the index: the "exchange" dimension-k neighbor map of the
// hypercube.
func BitFlip(n, k int) Perm {
	d := bits.Lg(n)
	if k < 0 || k >= d {
		panic(fmt.Sprintf("perm.BitFlip: bit %d out of range for n=%d", k, n))
	}
	p := make(Perm, n)
	for j := range p {
		p[j] = bits.FlipBit(j, k)
	}
	return p
}

// Transposition returns the permutation on n elements exchanging a and b.
func Transposition(n, a, b int) Perm {
	p := Identity(n)
	p[a], p[b] = p[b], p[a]
	return p
}

// Len returns the number of elements the permutation acts on.
func (p Perm) Len() int { return len(p) }

// Valid reports whether p is a permutation of {0, ..., len(p)-1}.
func (p Perm) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// MustValid panics if p is not a valid permutation.
func (p Perm) MustValid() {
	if !p.Valid() {
		panic(fmt.Sprintf("perm: invalid permutation %v", []int(p)))
	}
}

// Inverse returns the inverse permutation of p.
func (p Perm) Inverse() Perm {
	inv := make(Perm, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// Compose returns the permutation "q after p": (p.Compose(q))(i) = q(p(i)).
// In routing terms: first move data along p, then along q.
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic(fmt.Sprintf("perm.Compose: size mismatch %d vs %d", len(p), len(q)))
	}
	r := make(Perm, len(p))
	for i := range r {
		r[i] = q[p[i]]
	}
	return r
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsIdentity reports whether p is the identity.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}

// Clone returns a copy of p.
func (p Perm) Clone() Perm {
	q := make(Perm, len(p))
	copy(q, p)
	return q
}

// Route permutes data according to p in the register-model convention:
// the value data[i] moves to position p[i] of the result. Route leaves
// data unmodified and returns a fresh slice.
func (p Perm) Route(data []int) []int {
	if len(data) != len(p) {
		panic(fmt.Sprintf("perm.Route: data length %d != permutation size %d", len(data), len(p)))
	}
	out := make([]int, len(data))
	for i, v := range data {
		out[p[i]] = v
	}
	return out
}

// RouteInto is Route writing into dst (which must have the same length
// as p and must not alias data).
func (p Perm) RouteInto(dst, data []int) {
	if len(data) != len(p) || len(dst) != len(p) {
		panic("perm.RouteInto: length mismatch")
	}
	for i, v := range data {
		dst[p[i]] = v
	}
}

// Apply returns the image of a single point under p.
func (p Perm) Apply(i int) int { return p[i] }

// Cycles returns the cycle decomposition of p. Each cycle lists its
// elements starting from its minimum element; cycles are ordered by
// their minimum element. Fixed points are included as 1-cycles.
func (p Perm) Cycles() [][]int {
	seen := make([]bool, len(p))
	var cycles [][]int
	for i := range p {
		if seen[i] {
			continue
		}
		var c []int
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			c = append(c, j)
		}
		cycles = append(cycles, c)
	}
	return cycles
}

// Order returns the multiplicative order of p (the lcm of its cycle
// lengths).
func (p Perm) Order() int {
	order := 1
	for _, c := range p.Cycles() {
		order = lcm(order, len(c))
	}
	return order
}

// Sign returns +1 for even permutations and -1 for odd ones.
func (p Perm) Sign() int {
	s := 1
	for _, c := range p.Cycles() {
		if len(c)%2 == 0 {
			s = -s
		}
	}
	return s
}

// Fixed returns the number of fixed points of p.
func (p Perm) Fixed() int {
	n := 0
	for i, v := range p {
		if i == v {
			n++
		}
	}
	return n
}

// String renders p in one-line notation.
func (p Perm) String() string {
	return fmt.Sprintf("%v", []int(p))
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int {
	return a / gcd(a, b) * b
}
