package network

import (
	"math/rand"
	"testing"

	"shufflenet/internal/perm"
)

// sorted2 is the 2-wire sorter.
func sorted2() *Network {
	return New(2).AddComparators(0, 1)
}

// bubble4 is a 4-wire bubble/odd-even transposition sorting network.
func bubble4() *Network {
	c := New(4)
	c.AddComparators(0, 1, 2, 3)
	c.AddComparators(1, 2)
	c.AddComparators(0, 1, 2, 3)
	c.AddComparators(1, 2)
	return c
}

func isSorted(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}

func TestEvalSingleComparator(t *testing.T) {
	c := sorted2()
	if got := c.Eval([]int{5, 3}); got[0] != 3 || got[1] != 5 {
		t.Errorf("Eval([5 3]) = %v", got)
	}
	if got := c.Eval([]int{3, 5}); got[0] != 3 || got[1] != 5 {
		t.Errorf("Eval([3 5]) = %v", got)
	}
}

func TestDecreasingComparator(t *testing.T) {
	c := New(2).AddLevel(Level{{Min: 1, Max: 0}})
	if got := c.Eval([]int{3, 5}); got[0] != 5 || got[1] != 3 {
		t.Errorf("decreasing comparator: Eval([3 5]) = %v", got)
	}
}

func TestEvalDoesNotMutateInput(t *testing.T) {
	c := sorted2()
	in := []int{9, 1}
	c.Eval(in)
	if in[0] != 9 || in[1] != 1 {
		t.Error("Eval mutated its input")
	}
}

func TestBubble4SortsAllPermutations(t *testing.T) {
	c := bubble4()
	data := []int{0, 1, 2, 3}
	permute(data, func(p []int) {
		if out := c.Eval(p); !isSorted(out) {
			t.Fatalf("bubble4 failed on %v: %v", p, out)
		}
	})
}

func TestDepthSizeAccounting(t *testing.T) {
	c := bubble4()
	if c.Depth() != 4 || c.Size() != 6 || c.Wires() != 4 {
		t.Errorf("depth=%d size=%d wires=%d", c.Depth(), c.Size(), c.Wires())
	}
	if c.String() != "network[n=4 depth=4 size=6]" {
		t.Errorf("String() = %q", c.String())
	}
}

func TestAddLevelValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("out of range", func() { New(2).AddComparators(0, 2) })
	mustPanic("negative", func() { New(2).AddComparators(-1, 0) })
	mustPanic("self loop", func() { New(2).AddLevel(Level{{Min: 1, Max: 1}}) })
	mustPanic("wire reused", func() { New(3).AddComparators(0, 1, 1, 2) })
	mustPanic("odd pairs", func() { New(3).AddComparators(0, 1, 2) })
	mustPanic("zero wires", func() { New(0) })
}

func TestTruncateAndSlice(t *testing.T) {
	c := bubble4()
	half := c.Truncate(2)
	if half.Depth() != 2 || half.Size() != 3 {
		t.Errorf("Truncate: depth=%d size=%d", half.Depth(), half.Size())
	}
	// Truncation must not affect the original.
	if c.Depth() != 4 {
		t.Error("Truncate mutated original")
	}
	rest := c.Slice(2, 4)
	if rest.Depth() != 2 {
		t.Errorf("Slice depth = %d", rest.Depth())
	}
	// Composing the two halves re-sorts everything.
	whole := half.Clone().Append(rest)
	data := []int{0, 1, 2, 3}
	permute(data, func(p []int) {
		if out := whole.Eval(p); !isSorted(out) {
			t.Fatalf("recomposed network failed on %v", p)
		}
	})
}

func TestParallelComposition(t *testing.T) {
	a, b := sorted2(), sorted2()
	c := Parallel(a, b)
	if c.Wires() != 4 || c.Depth() != 1 || c.Size() != 2 {
		t.Fatalf("Parallel: %v", c)
	}
	out := c.Eval([]int{4, 2, 9, 1})
	want := []int{2, 4, 1, 9}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Parallel eval = %v, want %v", out, want)
		}
	}
}

func TestParallelUnequalDepth(t *testing.T) {
	a := sorted2()
	b := New(2).AddComparators(0, 1).AddComparators(0, 1)
	c := Parallel(a, b)
	if c.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", c.Depth())
	}
	if len(c.Level(1)) != 1 {
		t.Fatalf("level 1 should contain only b's comparator")
	}
}

func TestEvalTraceRecordsComparisons(t *testing.T) {
	c := bubble4()
	out, trace := c.EvalTrace([]int{3, 1, 2, 0})
	if !isSorted(out) {
		t.Fatalf("output %v not sorted", out)
	}
	if len(trace) != c.Size() {
		t.Fatalf("trace has %d entries, want %d", len(trace), c.Size())
	}
	// Every adjacent value pair must be compared somewhere (the basic
	// observation that opens Section 2 of the paper).
	for m := 0; m < 3; m++ {
		found := false
		for _, cp := range trace {
			if cp.Lo() == m && cp.Hi() == m+1 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("adjacent pair {%d,%d} never compared by a sorting network", m, m+1)
		}
	}
}

func TestComparedMatchesTrace(t *testing.T) {
	c := bubble4()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		in := []int(perm.Random(4, rng))
		_, trace := c.EvalTrace(in)
		met := map[[2]int]bool{}
		for _, cp := range trace {
			met[[2]int{cp.Lo(), cp.Hi()}] = true
		}
		for v := 0; v < 4; v++ {
			for w := v + 1; w < 4; w++ {
				if got := c.Compared(in, v, w); got != met[[2]int{v, w}] {
					t.Fatalf("Compared(%v,%d,%d) = %v, trace says %v", in, v, w, got, met[[2]int{v, w}])
				}
			}
		}
	}
}

func TestComparisonLevels(t *testing.T) {
	c := bubble4()
	_, trace := c.EvalTrace([]int{3, 2, 1, 0})
	last := -1
	for _, cp := range trace {
		if cp.Level < last {
			t.Fatal("trace not in level order")
		}
		last = cp.Level
	}
	if last != 3 {
		t.Fatalf("final comparison at level %d, want 3", last)
	}
}

func TestEvalParallelAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := randomNetwork(64, 30, rng)
	for trial := 0; trial < 10; trial++ {
		in := []int(perm.Random(64, rng))
		seq := c.Eval(in)
		for _, w := range []int{1, 2, 8} {
			paropt := c.EvalParallel(in, w)
			for i := range seq {
				if seq[i] != paropt[i] {
					t.Fatalf("EvalParallel(workers=%d) differs at %d", w, i)
				}
			}
		}
	}
}

func TestEvalInPlace(t *testing.T) {
	c := bubble4()
	data := []int{3, 1, 0, 2}
	c.EvalInPlace(data)
	if !isSorted(data) {
		t.Fatalf("EvalInPlace left %v", data)
	}
}

func TestValidateAcceptsBuilt(t *testing.T) {
	if err := bubble4().Validate(); err != nil {
		t.Errorf("Validate rejected a built network: %v", err)
	}
}

func TestEqualAndClone(t *testing.T) {
	a, b := bubble4(), bubble4()
	if !a.Equal(b) {
		t.Error("identical networks not Equal")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone not Equal")
	}
	c.AddComparators(0, 1)
	if a.Equal(c) {
		t.Error("Equal ignored extra level")
	}
	if a.Equal(New(5)) {
		t.Error("Equal ignored wire count")
	}
}

// randomNetwork builds a random valid network: depth levels, each a
// random matching over a random subset of wires.
func randomNetwork(n, depth int, rng *rand.Rand) *Network {
	c := New(n)
	for l := 0; l < depth; l++ {
		p := perm.Random(n, rng)
		lv := Level{}
		for i := 0; i+1 < n; i += 2 {
			if rng.Intn(4) == 0 {
				continue // leave some wires idle
			}
			a, b := p[i], p[i+1]
			if rng.Intn(2) == 0 {
				a, b = b, a
			}
			lv = append(lv, Comparator{Min: a, Max: b})
		}
		c.AddLevel(lv)
	}
	return c
}

// permute invokes f on every permutation of data (Heap's algorithm).
func permute(data []int, f func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			cp := make([]int, len(data))
			copy(cp, data)
			f(cp)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				data[i], data[k-1] = data[k-1], data[i]
			} else {
				data[0], data[k-1] = data[k-1], data[0]
			}
		}
	}
	rec(len(data))
}

// The key lemma behind the 0-1 principle: comparator networks commute
// with monotone maps — Eval(f(x)) = f(Eval(x)) pointwise for any
// nondecreasing f. (min/max commute with monotone functions.)
func TestEvalCommutesWithMonotoneMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	mono := []func(int) int{
		func(v int) int { return v },
		func(v int) int { return v * v },
		func(v int) int { return v / 3 },
		func(v int) int {
			if v >= 10 {
				return 1
			}
			return 0
		},
	}
	for trial := 0; trial < 20; trial++ {
		n := 4 + 2*rng.Intn(8)
		c := randomNetwork(n, 1+rng.Intn(8), rng)
		x := []int(perm.Random(n, rng))
		outX := c.Eval(x)
		for fi, f := range mono {
			fx := make([]int, n)
			for i, v := range x {
				fx[i] = f(v)
			}
			outFX := c.Eval(fx)
			for r := 0; r < n; r++ {
				if outFX[r] != f(outX[r]) {
					t.Fatalf("monotone map %d does not commute at rail %d", fi, r)
				}
			}
		}
	}
}
