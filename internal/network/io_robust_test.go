package network

import (
	"bytes"
	"strings"
	"testing"
)

// TestReadTextLineEndings: the text parser must accept the line-ending
// styles real HTTP clients produce — LF, CRLF, lone CR, trailing
// spaces/tabs, and a missing final newline — and parse them all to the
// same network.
func TestReadTextLineEndings(t *testing.T) {
	want, err := ReadText(strings.NewReader("wires 4\nlevel 0:1 2:3\nlevel 1:2\n"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"crlf":             "wires 4\r\nlevel 0:1 2:3\r\nlevel 1:2\r\n",
		"lone-cr":          "wires 4\rlevel 0:1 2:3\rlevel 1:2\r",
		"mixed":            "wires 4\r\nlevel 0:1 2:3\nlevel 1:2\r",
		"trailing-ws":      "wires 4  \nlevel 0:1 2:3\t \nlevel 1:2   \n",
		"no-final-newline": "wires 4\nlevel 0:1 2:3\nlevel 1:2",
		"blank-crlf-lines": "wires 4\r\n\r\nlevel 0:1 2:3\r\n\r\nlevel 1:2\r\n",
	}
	for name, src := range cases {
		got, err := ReadText(strings.NewReader(src))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("%s: parsed %v, want %v", name, got, want)
		}
	}
}

// TestReadRegisterTextLineEndings: same contract for the register-model
// parser.
func TestReadRegisterTextLineEndings(t *testing.T) {
	want, err := ReadRegisterText(strings.NewReader("registers 4\nstep ++ pi shuffle\nstep .\n"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"crlf":        "registers 4\r\nstep ++ pi shuffle\r\nstep .\r\n",
		"lone-cr":     "registers 4\rstep ++ pi shuffle\rstep .\r",
		"trailing-ws": "registers 4 \nstep ++ pi shuffle\t\nstep . \n",
	}
	for name, src := range cases {
		got, err := ReadRegisterText(strings.NewReader(src))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if got.Registers() != want.Registers() || got.Depth() != want.Depth() || got.Size() != want.Size() {
			t.Errorf("%s: parsed %v, want %v", name, got, want)
		}
	}
}

// TestReadTextErrorLineNumbers: parse errors must point at the actual
// 1-based source line for every line-ending style — the lone-CR style
// used to collapse the whole body into "line 1".
func TestReadTextErrorLineNumbers(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"lf", "wires 4\nlevel 0:1\nlevel 9:1\n", "line 3"},
		{"crlf", "wires 4\r\nlevel 0:1\r\nlevel 9:1\r\n", "line 3"},
		{"lone-cr", "wires 4\rlevel 0:1\rlevel 9:1\r", "line 3"},
		{"bad-directive-crlf", "wires 4\r\nbogus\r\n", "line 2"},
		{"reg-crlf", "registers 4\r\nstep ++\r\nstep xx\r\n", "line 3"},
	}
	for _, tc := range cases {
		var err error
		if strings.HasPrefix(tc.src, "registers") {
			_, err = ReadRegisterText(strings.NewReader(tc.src))
		} else {
			_, err = ReadText(strings.NewReader(tc.src))
		}
		if err == nil {
			t.Errorf("%s: want an error mentioning %q, got nil", tc.name, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestReadDOTRoundTrip: WriteDOT then ReadDOT must reproduce the
// network exactly, including empty levels and min>max ("reversed")
// comparators.
func TestReadDOTRoundTrip(t *testing.T) {
	nets := []*Network{
		New(4).AddComparators(0, 1, 2, 3).AddComparators(1, 2),
		New(2),
		New(8).AddLevel(nil).AddComparators(7, 0), // empty level, reversed comparator
		New(1),
	}
	for i, c := range nets {
		var buf bytes.Buffer
		if err := c.WriteDOT(&buf, "t"); err != nil {
			t.Fatal(err)
		}
		back, err := ReadDOT(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
		if back.Wires() != c.Wires() || back.Depth() != c.Depth() || back.Size() != c.Size() {
			t.Fatalf("net %d: round trip %v, want %v", i, back, c)
		}
		if !back.Equal(c) {
			t.Fatalf("net %d: round trip changed the network", i)
		}
	}
	// CRLF DOT bodies parse too.
	var buf bytes.Buffer
	if err := nets[0].WriteDOT(&buf, "t"); err != nil {
		t.Fatal(err)
	}
	crlf := strings.ReplaceAll(buf.String(), "\n", "\r\n")
	back, err := ReadDOT(strings.NewReader(crlf))
	if err != nil {
		t.Fatalf("crlf dot: %v", err)
	}
	if !back.Equal(nets[0]) {
		t.Fatal("crlf dot round trip changed the network")
	}
}

// TestReadDOTRejects: malformed DOT inputs fail cleanly.
func TestReadDOTRejects(t *testing.T) {
	for name, src := range map[string]string{
		"empty":       "",
		"no-graph":    "w0_1 -> w1_1 [constraint=false];\n",
		"no-rails":    "digraph \"x\" {\n}\n",
		"col-span":    "digraph \"x\" {\n w0_0; w1_1;\n w1_1 -> w0_2 [constraint=false];\n}\n",
		"col-zero":    "digraph \"x\" {\n w0_1; w1_1;\n w1_0 -> w0_0 [constraint=false];\n}\n",
		"dup-in-lvl":  "digraph \"x\" {\n w0_1; w1_1;\n w1_1 -> w0_1 [constraint=false];\n w0_1 -> w1_1 [constraint=false];\n}\n",
		"self-compar": "digraph \"x\" {\n w0_1; w1_1;\n w0_1 -> w0_1 [constraint=false];\n}\n",
	} {
		if _, err := ReadDOT(strings.NewReader(src)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}
