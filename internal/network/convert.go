package network

import (
	"shufflenet/internal/perm"
)

// FromRegister converts a register-model network into an equivalent
// circuit-model network of the same depth and size, together with the
// final placement of wires in registers.
//
// The conversion tracks, for every register, which circuit wire's value
// it currently holds: the step permutation Π_i and the "1" (exchange)
// elements move values between registers without comparing them, so
// they become pure wire relabelings in the circuit model, exactly as
// the paper's equivalence claim requires. Comparator ("+"/"−") entries
// become circuit comparators directed by the current wire labels.
//
// The returned placement has placement[r] = w meaning that the value in
// register r at the end of the register network is the value on circuit
// wire w at the end of the circuit network:
//
//	reg.Eval(x)[r] == circ.Eval(x)[placement[r]]  for all inputs x.
func FromRegister(r *Register) (*Network, perm.Perm) {
	n := r.Registers()
	circ := New(n)
	wireAt := perm.Identity(n) // wireAt[reg] = circuit wire residing in reg
	tmp := make(perm.Perm, n)
	for _, st := range r.Steps() {
		if st.Pi != nil {
			for reg, w := range wireAt {
				tmp[st.Pi[reg]] = w
			}
			copy(wireAt, tmp)
		}
		var lv Level
		for k, op := range st.Ops {
			a, b := wireAt[2*k], wireAt[2*k+1]
			switch op {
			case OpPlus:
				lv = append(lv, Comparator{Min: a, Max: b})
			case OpMinus:
				lv = append(lv, Comparator{Min: b, Max: a})
			case OpSwap:
				wireAt[2*k], wireAt[2*k+1] = b, a
			}
		}
		circ.AddLevel(lv)
	}
	return circ, wireAt
}

// ToRegister converts a circuit-model network into an equivalent
// register-model network of the same depth and size, together with the
// final placement of wires in registers.
//
// Each circuit level becomes one step whose permutation routes the two
// endpoints of every comparator into an adjacent register pair
// (Min to 2k, Max to 2k+1, op "+"); wires idle at that level are routed
// to the remaining registers with op "0". The returned placement has
// placement[r] = w meaning:
//
//	reg.Eval(x)[r] == circ.Eval(x)[placement[r]]  for all inputs x.
func ToRegister(c *Network) (*Register, perm.Perm) {
	n := c.Wires()
	reg := NewRegister(n)
	// wireAt[r] = circuit wire whose value register r currently holds.
	wireAt := perm.Identity(n)
	for _, lv := range c.Levels() {
		// Choose target registers: comparator k occupies (2k, 2k+1).
		targetReg := make([]int, n)
		for i := range targetReg {
			targetReg[i] = -1
		}
		ops := make([]Op, n/2)
		for k, cm := range lv {
			targetReg[cm.Min] = 2 * k
			targetReg[cm.Max] = 2*k + 1
			ops[k] = OpPlus
		}
		next := 2 * len(lv)
		for w := 0; w < n; w++ {
			if targetReg[w] == -1 {
				targetReg[w] = next
				next++
			}
		}
		// Π routes register contents: content of register r (wire
		// wireAt[r]) must land in register targetReg[wireAt[r]].
		pi := make(perm.Perm, n)
		for r := 0; r < n; r++ {
			pi[r] = targetReg[wireAt[r]]
		}
		reg.AddStep(Step{Pi: pi, Ops: ops})
		// Rebuild wireAt by inverting targetReg (wire -> register).
		for w := 0; w < n; w++ {
			wireAt[targetReg[w]] = w
		}
	}
	return reg, wireAt
}
