package network

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteText serializes the network in a line-oriented text format:
//
//	wires <n>
//	level <a0>:<b0> <a1>:<b1> ...
//
// with one "level" line per level (possibly with no pairs for an empty
// level). Each pair a:b is a comparator placing the smaller value on
// wire a and the larger on wire b.
func (c *Network) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "wires %d\n", c.n)
	for _, lv := range c.levels {
		bw.WriteString("level")
		for _, cm := range lv {
			fmt.Fprintf(bw, " %d:%d", cm.Min, cm.Max)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadText parses the format written by WriteText and validates the
// result.
func ReadText(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var net *Network
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "wires":
			if net != nil {
				return nil, fmt.Errorf("line %d: duplicate wires declaration", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: want \"wires <n>\"", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("line %d: bad wire count %q", lineNo, fields[1])
			}
			net = New(n)
		case "level":
			if net == nil {
				return nil, fmt.Errorf("line %d: level before wires declaration", lineNo)
			}
			lv := make(Level, 0, len(fields)-1)
			for _, f := range fields[1:] {
				parts := strings.SplitN(f, ":", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("line %d: bad comparator %q", lineNo, f)
				}
				a, err1 := strconv.Atoi(parts[0])
				b, err2 := strconv.Atoi(parts[1])
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("line %d: bad comparator %q", lineNo, f)
				}
				lv = append(lv, Comparator{Min: a, Max: b})
			}
			tmp := New(net.n)
			tmp.levels = append(tmp.levels, lv)
			if err := tmp.Validate(); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			net.levels = append(net.levels, lv)
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if net == nil {
		return nil, fmt.Errorf("no wires declaration found")
	}
	return net, nil
}

// WriteDOT emits a Graphviz rendering of the network: wires are
// horizontal rails, comparators are vertical edges, levels are ranked
// columns. Intended for inspection of small networks.
func (c *Network) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n  node [shape=point];\n", name)
	// node id: w<wire>_<column>, columns 0..depth
	for wi := 0; wi < c.n; wi++ {
		fmt.Fprintf(bw, "  in%d [shape=plaintext, label=\"w%d\"];\n", wi, wi)
		fmt.Fprintf(bw, "  in%d -> w%d_0 [arrowhead=none];\n", wi, wi)
	}
	for col := 0; col <= len(c.levels); col++ {
		fmt.Fprintf(bw, "  { rank=same;")
		for wi := 0; wi < c.n; wi++ {
			fmt.Fprintf(bw, " w%d_%d;", wi, col)
		}
		fmt.Fprintln(bw, " }")
	}
	for wi := 0; wi < c.n; wi++ {
		for col := 0; col < len(c.levels); col++ {
			fmt.Fprintf(bw, "  w%d_%d -> w%d_%d [arrowhead=none];\n", wi, col, wi, col+1)
		}
	}
	for li, lv := range c.levels {
		for _, cm := range lv {
			fmt.Fprintf(bw, "  w%d_%d -> w%d_%d [constraint=false, color=red];\n",
				cm.Max, li+1, cm.Min, li+1)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// String returns a compact single-line description, e.g.
// "network[n=8 depth=6 size=19]".
func (c *Network) String() string {
	return fmt.Sprintf("network[n=%d depth=%d size=%d]", c.n, c.Depth(), c.Size())
}

// String returns a compact single-line description of the register
// network.
func (r *Register) String() string {
	return fmt.Sprintf("register[n=%d depth=%d size=%d shuffleBased=%v]",
		r.n, r.Depth(), r.Size(), r.IsShuffleBased())
}

// FormatOps renders an ops vector in the paper's notation, e.g. "++0-1".
func FormatOps(ops []Op) string {
	var sb strings.Builder
	for _, op := range ops {
		sb.WriteString(op.String())
	}
	return sb.String()
}

// CanonicalLevel returns a copy of the level with comparators sorted by
// their smaller wire index, for deterministic comparison and printing.
func CanonicalLevel(lv Level) Level {
	out := make(Level, len(lv))
	copy(out, lv)
	sort.Slice(out, func(i, j int) bool {
		li, lj := out[i], out[j]
		mi, mj := li.Min, lj.Min
		if li.Max < mi {
			mi = li.Max
		}
		if lj.Max < mj {
			mj = lj.Max
		}
		return mi < mj
	})
	return out
}

// Equal reports whether two networks have identical structure (same
// wires, same levels with comparators in the same order up to
// canonicalization).
func (c *Network) Equal(other *Network) bool {
	if c.n != other.n || len(c.levels) != len(other.levels) {
		return false
	}
	for i := range c.levels {
		a, b := CanonicalLevel(c.levels[i]), CanonicalLevel(other.levels[i])
		if len(a) != len(b) {
			return false
		}
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}
