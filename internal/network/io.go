package network

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// WriteText serializes the network in a line-oriented text format:
//
//	wires <n>
//	level <a0>:<b0> <a1>:<b1> ...
//
// with one "level" line per level (possibly with no pairs for an empty
// level). Each pair a:b is a comparator placing the smaller value on
// wire a and the larger on wire b.
func (c *Network) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "wires %d\n", c.n)
	for _, lv := range c.levels {
		bw.WriteString("level")
		for _, cm := range lv {
			fmt.Fprintf(bw, " %d:%d", cm.Min, cm.Max)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// newLineScanner builds the scanner all the text parsers share. Its
// split function terminates a line at "\n", "\r\n", or a lone "\r":
// network bodies arrive over HTTP from clients that send CRLF (and
// occasionally bare-CR) line endings, and with the stock ScanLines a
// bare-CR body collapses into a single "line" in which '\r' acts as a
// field separator — the parse then fails with a misleading error
// attributed to line 1. Trailing whitespace on a line is the callers'
// concern (they TrimSpace), but the terminator accounting here is what
// keeps reported line numbers 1-based and honest for every ending
// style.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	sc.Split(func(data []byte, atEOF bool) (advance int, token []byte, err error) {
		for i := 0; i < len(data); i++ {
			switch data[i] {
			case '\n':
				return i + 1, data[:i], nil
			case '\r':
				if i+1 < len(data) {
					if data[i+1] == '\n' {
						return i + 2, data[:i], nil
					}
					return i + 1, data[:i], nil
				}
				if atEOF {
					return i + 1, data[:i], nil
				}
				// Might be the first byte of a \r\n split across reads.
				return 0, nil, nil
			}
		}
		if atEOF && len(data) > 0 {
			return len(data), data, nil
		}
		return 0, nil, nil
	})
	return sc
}

// ReadText parses the format written by WriteText and validates the
// result. Lines may end in "\n", "\r\n", or a lone "\r", and may carry
// trailing whitespace; parse errors report 1-based line numbers.
func ReadText(r io.Reader) (*Network, error) {
	sc := newLineScanner(r)
	var net *Network
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "wires":
			if net != nil {
				return nil, fmt.Errorf("line %d: duplicate wires declaration", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: want \"wires <n>\"", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("line %d: bad wire count %q", lineNo, fields[1])
			}
			net = New(n)
		case "level":
			if net == nil {
				return nil, fmt.Errorf("line %d: level before wires declaration", lineNo)
			}
			lv := make(Level, 0, len(fields)-1)
			for _, f := range fields[1:] {
				parts := strings.SplitN(f, ":", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("line %d: bad comparator %q", lineNo, f)
				}
				a, err1 := strconv.Atoi(parts[0])
				b, err2 := strconv.Atoi(parts[1])
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("line %d: bad comparator %q", lineNo, f)
				}
				lv = append(lv, Comparator{Min: a, Max: b})
			}
			tmp := New(net.n)
			tmp.levels = append(tmp.levels, lv)
			if err := tmp.Validate(); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			net.levels = append(net.levels, lv)
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if net == nil {
		return nil, fmt.Errorf("no wires declaration found")
	}
	return net, nil
}

// WriteDOT emits a Graphviz rendering of the network: wires are
// horizontal rails, comparators are vertical edges, levels are ranked
// columns. Intended for inspection of small networks.
func (c *Network) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n  node [shape=point];\n", name)
	// node id: w<wire>_<column>, columns 0..depth
	for wi := 0; wi < c.n; wi++ {
		fmt.Fprintf(bw, "  in%d [shape=plaintext, label=\"w%d\"];\n", wi, wi)
		fmt.Fprintf(bw, "  in%d -> w%d_0 [arrowhead=none];\n", wi, wi)
	}
	for col := 0; col <= len(c.levels); col++ {
		fmt.Fprintf(bw, "  { rank=same;")
		for wi := 0; wi < c.n; wi++ {
			fmt.Fprintf(bw, " w%d_%d;", wi, col)
		}
		fmt.Fprintln(bw, " }")
	}
	for wi := 0; wi < c.n; wi++ {
		for col := 0; col < len(c.levels); col++ {
			fmt.Fprintf(bw, "  w%d_%d -> w%d_%d [arrowhead=none];\n", wi, col, wi, col+1)
		}
	}
	for li, lv := range c.levels {
		for _, cm := range lv {
			fmt.Fprintf(bw, "  w%d_%d -> w%d_%d [constraint=false, color=red];\n",
				cm.Max, li+1, cm.Min, li+1)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// maxDOTExtent bounds the wire and column indices ReadDOT accepts. A
// hostile (or fuzz-mutated) body naming rail node w0_999999999 would
// otherwise make the parser materialize a level per named column —
// gigabytes of allocation (and a gigabyte WriteDOT round trip) from a
// few dozen input bytes. The DOT rendering draws n·(depth+1) rail
// nodes, so it is explicitly a small-network format (see WriteDOT);
// every consumer in-repo (the daemon's submission endpoint, the snet
// CLI) sits far below this cap.
const maxDOTExtent = 1 << 10

// dotCompEdge matches the comparator edges WriteDOT emits:
// "w<max>_<col> -> w<min>_<col> [constraint=false, color=red];".
var dotCompEdge = regexp.MustCompile(`^w(\d+)_(\d+)\s*->\s*w(\d+)_(\d+)\s*\[constraint=false`)

// dotRailNode matches the per-column rail nodes ("w<wire>_<col>")
// inside rank=same groups, which carry the wire count and the depth
// even for networks with empty levels.
var dotRailNode = regexp.MustCompile(`\bw(\d+)_(\d+)\b`)

// ReadDOT parses the Graphviz rendering written by WriteDOT back into a
// network. It understands exactly the subset WriteDOT emits — rail
// nodes w<wire>_<col> grouped per column and comparator edges from the
// max wire to the min wire tagged constraint=false — so
// WriteDOT/ReadDOT round-trips any network, including empty levels.
// Lines may end in "\n", "\r\n", or a lone "\r"; parse errors report
// 1-based line numbers.
func ReadDOT(r io.Reader) (*Network, error) {
	sc := newLineScanner(r)
	lineNo := 0
	maxWire, maxCol := -1, 0
	type dotComp struct {
		min, max, level, line int
	}
	var comps []dotComp
	sawGraph := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//"):
			continue
		case strings.HasPrefix(line, "digraph"):
			sawGraph = true
			continue
		}
		if m := dotCompEdge.FindStringSubmatch(line); m != nil {
			hi, e1 := strconv.Atoi(m[1])
			c1, e2 := strconv.Atoi(m[2])
			lo, e3 := strconv.Atoi(m[3])
			c2, e4 := strconv.Atoi(m[4])
			if e1 != nil || e2 != nil || e3 != nil || e4 != nil ||
				hi >= maxDOTExtent || lo >= maxDOTExtent || c1 >= maxDOTExtent {
				return nil, fmt.Errorf("line %d: comparator edge out of range", lineNo)
			}
			if c1 != c2 || c1 < 1 {
				return nil, fmt.Errorf("line %d: comparator edge spans columns %d and %d", lineNo, c1, c2)
			}
			comps = append(comps, dotComp{min: lo, max: hi, level: c1 - 1, line: lineNo})
			continue
		}
		// Every remaining well-formed line only contributes rail
		// extents: rank groups, rail edges, input labels, the brace
		// lines. Harvest every w<wire>_<col> occurrence.
		for _, m := range dotRailNode.FindAllStringSubmatch(line, -1) {
			w, errW := strconv.Atoi(m[1])
			c, errC := strconv.Atoi(m[2])
			if errW != nil || errC != nil || w >= maxDOTExtent || c >= maxDOTExtent {
				return nil, fmt.Errorf("line %d: rail node w%s_%s out of range", lineNo, m[1], m[2])
			}
			if w > maxWire {
				maxWire = w
			}
			if c > maxCol {
				maxCol = c
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawGraph {
		return nil, fmt.Errorf("no digraph declaration found")
	}
	if maxWire < 0 {
		return nil, fmt.Errorf("no wire rails found")
	}
	n := maxWire + 1
	depth := maxCol // columns run 0..depth
	net := New(n)
	levels := make([]Level, depth)
	for _, cm := range comps {
		if cm.level >= depth {
			return nil, fmt.Errorf("line %d: comparator in column %d beyond the rail columns", cm.line, cm.level+1)
		}
		levels[cm.level] = append(levels[cm.level], Comparator{Min: cm.min, Max: cm.max})
	}
	for _, lv := range levels {
		net.levels = append(net.levels, lv)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// String returns a compact single-line description, e.g.
// "network[n=8 depth=6 size=19]".
func (c *Network) String() string {
	return fmt.Sprintf("network[n=%d depth=%d size=%d]", c.n, c.Depth(), c.Size())
}

// String returns a compact single-line description of the register
// network.
func (r *Register) String() string {
	return fmt.Sprintf("register[n=%d depth=%d size=%d shuffleBased=%v]",
		r.n, r.Depth(), r.Size(), r.IsShuffleBased())
}

// FormatOps renders an ops vector in the paper's notation, e.g. "++0-1".
func FormatOps(ops []Op) string {
	var sb strings.Builder
	for _, op := range ops {
		sb.WriteString(op.String())
	}
	return sb.String()
}

// CanonicalLevel returns a copy of the level with comparators sorted by
// their smaller wire index, for deterministic comparison and printing.
func CanonicalLevel(lv Level) Level {
	out := make(Level, len(lv))
	copy(out, lv)
	sort.Slice(out, func(i, j int) bool {
		li, lj := out[i], out[j]
		mi, mj := li.Min, lj.Min
		if li.Max < mi {
			mi = li.Max
		}
		if lj.Max < mj {
			mj = lj.Max
		}
		return mi < mj
	})
	return out
}

// Equal reports whether two networks have identical structure (same
// wires, same levels with comparators in the same order up to
// canonicalization).
func (c *Network) Equal(other *Network) bool {
	if c.n != other.n || len(c.levels) != len(other.levels) {
		return false
	}
	for i := range c.levels {
		a, b := CanonicalLevel(c.levels[i]), CanonicalLevel(other.levels[i])
		if len(a) != len(b) {
			return false
		}
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}
