// Package network implements the two comparator-network models of
// Plaxton & Suel (SPAA 1992), Section 1:
//
//   - the circuit model: an acyclic circuit of 2-input comparator
//     elements arranged in levels on n wires (type Network), and
//   - the register model: a sequence of steps (Π_i, x⃗_i) where Π_i
//     permutes the n register contents and x⃗_i applies one of
//     {+, −, 0, 1} to each adjacent register pair (type Register).
//
// The two models are equivalent (the paper states this; Convert and
// ToRegister realize the equivalence constructively and the tests
// verify it by exhaustive and randomized evaluation).
//
// Evaluation is defined for integer inputs. EvalTrace additionally
// records every comparison performed, which is what the lower-bound
// machinery (Definition 3.6: collision) observes.
package network

import (
	"fmt"

	"shufflenet/internal/par"
)

// Comparator is a single comparator element between two wires.
// After the comparator fires, the smaller value is on wire Min and the
// larger on wire Max. Min and Max are unordered as wire indices: a
// "decreasing" comparator simply has Max < Min.
type Comparator struct {
	Min int // wire receiving the smaller value
	Max int // wire receiving the larger value
}

// Level is one level of comparators; each wire may appear at most once.
type Level []Comparator

// Network is a comparator network in the circuit model: a sequence of
// levels on n wires. The zero value is an empty network on 0 wires;
// use New to create one.
type Network struct {
	n      int
	levels []Level
}

// New returns an empty comparator network on n wires (n >= 1).
func New(n int) *Network {
	if n < 1 {
		panic(fmt.Sprintf("network.New: n = %d < 1", n))
	}
	return &Network{n: n}
}

// Wires returns the number of wires.
func (c *Network) Wires() int { return c.n }

// Depth returns the number of levels.
func (c *Network) Depth() int { return len(c.levels) }

// Size returns the total number of comparator elements.
func (c *Network) Size() int {
	s := 0
	for _, lv := range c.levels {
		s += len(lv)
	}
	return s
}

// Levels returns the underlying levels. The caller must not modify the
// result.
func (c *Network) Levels() []Level { return c.levels }

// Level returns level i.
func (c *Network) Level(i int) Level { return c.levels[i] }

// AddLevel appends a level of comparators. It panics if any comparator
// references an out-of-range wire or if a wire is used twice within the
// level. An empty level is allowed (a pass-through stage).
func (c *Network) AddLevel(lv Level) *Network {
	used := make(map[int]bool, 2*len(lv))
	for _, cm := range lv {
		for _, w := range [2]int{cm.Min, cm.Max} {
			if w < 0 || w >= c.n {
				panic(fmt.Sprintf("network.AddLevel: wire %d out of range [0,%d)", w, c.n))
			}
			if used[w] {
				panic(fmt.Sprintf("network.AddLevel: wire %d used twice in one level", w))
			}
			used[w] = true
		}
		if cm.Min == cm.Max {
			panic(fmt.Sprintf("network.AddLevel: comparator connects wire %d to itself", cm.Min))
		}
	}
	own := make(Level, len(lv))
	copy(own, lv)
	c.levels = append(c.levels, own)
	return c
}

// AddComparators is shorthand for AddLevel over (min, max) pairs given
// as a flat list: AddComparators(a0, b0, a1, b1, ...).
func (c *Network) AddComparators(pairs ...int) *Network {
	if len(pairs)%2 != 0 {
		panic("network.AddComparators: odd number of wire indices")
	}
	lv := make(Level, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		lv = append(lv, Comparator{Min: pairs[i], Max: pairs[i+1]})
	}
	return c.AddLevel(lv)
}

// Append concatenates the levels of other (serial composition with the
// identity wire mapping). other must have the same number of wires.
func (c *Network) Append(other *Network) *Network {
	if other.n != c.n {
		panic(fmt.Sprintf("network.Append: wire counts differ (%d vs %d)", c.n, other.n))
	}
	for _, lv := range other.levels {
		c.AddLevel(lv)
	}
	return c
}

// Clone returns a deep copy of the network.
func (c *Network) Clone() *Network {
	out := New(c.n)
	for _, lv := range c.levels {
		out.AddLevel(lv)
	}
	return out
}

// Truncate returns a copy consisting of the first depth levels. depth
// must be in [0, Depth()].
func (c *Network) Truncate(depth int) *Network {
	if depth < 0 || depth > len(c.levels) {
		panic(fmt.Sprintf("network.Truncate: depth %d out of range [0,%d]", depth, len(c.levels)))
	}
	out := New(c.n)
	for _, lv := range c.levels[:depth] {
		out.AddLevel(lv)
	}
	return out
}

// Slice returns a copy consisting of levels [lo, hi).
func (c *Network) Slice(lo, hi int) *Network {
	if lo < 0 || hi > len(c.levels) || lo > hi {
		panic(fmt.Sprintf("network.Slice: [%d,%d) out of range [0,%d]", lo, hi, len(c.levels)))
	}
	out := New(c.n)
	for _, lv := range c.levels[lo:hi] {
		out.AddLevel(lv)
	}
	return out
}

// Parallel returns the parallel composition of a and b (the paper's
// Λ₀ ⊕ Λ₁): a network on a.Wires()+b.Wires() wires in which b's wires
// are renumbered to start at a.Wires(). Levels are aligned index-wise;
// if one operand is shallower, its missing levels are empty.
func Parallel(a, b *Network) *Network {
	out := New(a.n + b.n)
	depth := a.Depth()
	if b.Depth() > depth {
		depth = b.Depth()
	}
	for i := 0; i < depth; i++ {
		var lv Level
		if i < a.Depth() {
			lv = append(lv, a.levels[i]...)
		}
		if i < b.Depth() {
			for _, cm := range b.levels[i] {
				lv = append(lv, Comparator{Min: cm.Min + a.n, Max: cm.Max + a.n})
			}
		}
		out.AddLevel(lv)
	}
	return out
}

// Eval runs the network on input (length n), returning a fresh output
// slice. The input is not modified.
func (c *Network) Eval(input []int) []int {
	out := c.checkedCopy(input)
	for _, lv := range c.levels {
		applyLevel(lv, out)
	}
	return out
}

// EvalInPlace runs the network on data, modifying it.
func (c *Network) EvalInPlace(data []int) {
	if len(data) != c.n {
		panic(fmt.Sprintf("network.Eval: input length %d != %d wires", len(data), c.n))
	}
	for _, lv := range c.levels {
		applyLevel(lv, data)
	}
}

// Comparison records one comparison performed during EvalTrace: the two
// values that met at a comparator (A carries the value that was on the
// Min wire before the exchange decision — i.e. the pair is unordered in
// value; use Lo/Hi for the sorted pair) and the level at which they met.
type Comparison struct {
	A, B  int // the two values compared, in pre-comparison wire order (Min wire, Max wire)
	Level int
}

// Lo returns the smaller of the compared values.
func (cp Comparison) Lo() int {
	if cp.A < cp.B {
		return cp.A
	}
	return cp.B
}

// Hi returns the larger of the compared values.
func (cp Comparison) Hi() int {
	if cp.A > cp.B {
		return cp.A
	}
	return cp.B
}

// EvalTrace runs the network on input and additionally returns every
// comparison performed, in level order. This is the observable the
// paper's collision arguments are about: input values v, w "collide"
// (Definition 3.6) iff a Comparison with {A,B} = {v,w} appears.
func (c *Network) EvalTrace(input []int) ([]int, []Comparison) {
	out := c.checkedCopy(input)
	trace := make([]Comparison, 0, c.Size())
	for li, lv := range c.levels {
		for _, cm := range lv {
			a, b := out[cm.Min], out[cm.Max]
			trace = append(trace, Comparison{A: a, B: b, Level: li})
			if a > b {
				out[cm.Min], out[cm.Max] = b, a
			}
		}
	}
	return out, trace
}

// Compared reports whether the values v and w are compared when the
// network runs on input.
func (c *Network) Compared(input []int, v, w int) bool {
	out := c.checkedCopy(input)
	for _, lv := range c.levels {
		for _, cm := range lv {
			a, b := out[cm.Min], out[cm.Max]
			if (a == v && b == w) || (a == w && b == v) {
				return true
			}
			if a > b {
				out[cm.Min], out[cm.Max] = b, a
			}
		}
	}
	return false
}

// evalParallelGrain is the smallest level width (comparators per
// level) EvalParallel splits across goroutines: below it, scheduling
// costs more than the comparisons do.
const evalParallelGrain = 2048

// EvalParallel evaluates the network level-synchronously, splitting each
// level's comparators across workers goroutines (0 = GOMAXPROCS).
// Distinct comparators in a level touch disjoint wires, so the level is
// data-parallel. Levels narrower than evalParallelGrain comparators run
// sequentially — a level holds at most n/2 comparators, so the parallel
// path only engages for networks of at least 2·evalParallelGrain = 4096
// wires, and EvalParallel degenerates to a slightly costlier Eval below
// that. Benchmarked against Eval in the ablation benches.
func (c *Network) EvalParallel(input []int, workers int) []int {
	out := c.checkedCopy(input)
	for _, lv := range c.levels {
		lv := lv
		par.ForEachGrain(len(lv), workers, evalParallelGrain, func(i int) {
			cm := lv[i]
			if out[cm.Min] > out[cm.Max] {
				out[cm.Min], out[cm.Max] = out[cm.Max], out[cm.Min]
			}
		})
	}
	return out
}

// Validate checks structural invariants (wire ranges, per-level wire
// uniqueness) and returns an error describing the first violation.
// Networks built through AddLevel are always valid; Validate exists for
// networks reconstructed from serialized form.
func (c *Network) Validate() error {
	if c.n < 1 {
		return fmt.Errorf("network: %d wires", c.n)
	}
	for li, lv := range c.levels {
		used := make(map[int]bool, 2*len(lv))
		for _, cm := range lv {
			if cm.Min == cm.Max {
				return fmt.Errorf("level %d: comparator connects wire %d to itself", li, cm.Min)
			}
			for _, w := range [2]int{cm.Min, cm.Max} {
				if w < 0 || w >= c.n {
					return fmt.Errorf("level %d: wire %d out of range [0,%d)", li, w, c.n)
				}
				if used[w] {
					return fmt.Errorf("level %d: wire %d used twice", li, w)
				}
				used[w] = true
			}
		}
	}
	return nil
}

func (c *Network) checkedCopy(input []int) []int {
	if len(input) != c.n {
		panic(fmt.Sprintf("network.Eval: input length %d != %d wires", len(input), c.n))
	}
	out := make([]int, c.n)
	copy(out, input)
	return out
}

func applyLevel(lv Level, data []int) {
	for _, cm := range lv {
		if data[cm.Min] > data[cm.Max] {
			data[cm.Min], data[cm.Max] = data[cm.Max], data[cm.Min]
		}
	}
}
