package network

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteASCIIBasic(t *testing.T) {
	c := New(3)
	c.AddComparators(0, 1)
	c.AddComparators(1, 2)
	var buf bytes.Buffer
	if err := c.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // 2n-1 rows
		t.Fatalf("got %d rows:\n%s", len(lines), out)
	}
	if strings.Count(out, "o") != 2 || strings.Count(out, "x") != 2 {
		t.Errorf("expected 2 comparators (o/x pairs):\n%s", out)
	}
	// Wire rows must start with a dash.
	for i := 0; i < 5; i += 2 {
		if !strings.HasPrefix(lines[i], "-") {
			t.Errorf("wire row %d does not start with '-':\n%s", i, out)
		}
	}
}

func TestWriteASCIIStaggersOverlaps(t *testing.T) {
	// Comparators (0,2) and (1,3) overlap in span and must land in
	// different character columns even though they share a level.
	c := New(4)
	c.AddComparators(0, 2, 1, 3)
	var buf bytes.Buffer
	if err := c.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Row of wire 0: exactly one 'o'; row of wire 1: one 'o'; their
	// column positions must differ.
	c0 := strings.IndexRune(lines[0], 'o')
	c1 := strings.IndexRune(lines[2], 'o')
	if c0 < 0 || c1 < 0 || c0 == c1 {
		t.Errorf("overlapping comparators not staggered:\n%s", buf.String())
	}
}

func TestWriteASCIIDescendingComparator(t *testing.T) {
	c := New(2).AddLevel(Level{{Min: 1, Max: 0}})
	var buf bytes.Buffer
	if err := c.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Max on wire 0: the upper wire shows 'x'.
	if !strings.Contains(lines[0], "x") || !strings.Contains(lines[2], "o") {
		t.Errorf("descending comparator drawn wrong:\n%s", buf.String())
	}
}
