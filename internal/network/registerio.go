package network

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"shufflenet/internal/perm"
)

// WriteText serializes the register network in a line-oriented format:
//
//	registers <n>
//	step <ops> [pi <p0> <p1> ...]
//
// <ops> is the paper's {0,+,-,1} vector ("0+-1..."), or "." for an
// all-0 vector. The permutation is omitted for identity steps and
// written as the named forms "shuffle" / "unshuffle" when it matches
// those, else in one-line notation.
func (r *Register) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "registers %d\n", r.n)
	var sh, unsh perm.Perm
	for _, st := range r.steps {
		ops := "."
		if st.Ops != nil {
			allNone := true
			for _, op := range st.Ops {
				if op != OpNone {
					allNone = false
					break
				}
			}
			if !allNone {
				ops = FormatOps(st.Ops)
			}
		}
		bw.WriteString("step ")
		bw.WriteString(ops)
		if st.Pi != nil && !st.Pi.IsIdentity() {
			if sh == nil && r.n&(r.n-1) == 0 {
				sh, unsh = perm.Shuffle(r.n), perm.Unshuffle(r.n)
			}
			switch {
			case sh != nil && st.Pi.Equal(sh):
				bw.WriteString(" pi shuffle")
			case unsh != nil && st.Pi.Equal(unsh):
				bw.WriteString(" pi unshuffle")
			default:
				bw.WriteString(" pi")
				for _, v := range st.Pi {
					fmt.Fprintf(bw, " %d", v)
				}
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadRegisterText parses the format written by Register.WriteText.
// Lines may end in "\n", "\r\n", or a lone "\r", and may carry trailing
// whitespace; parse errors report 1-based line numbers.
func ReadRegisterText(rd io.Reader) (*Register, error) {
	sc := newLineScanner(rd)
	var reg *Register
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "registers":
			if reg != nil {
				return nil, fmt.Errorf("line %d: duplicate registers declaration", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: want \"registers <n>\"", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 2 || n%2 != 0 {
				return nil, fmt.Errorf("line %d: bad register count %q", lineNo, fields[1])
			}
			reg = NewRegister(n)
		case "step":
			if reg == nil {
				return nil, fmt.Errorf("line %d: step before registers declaration", lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: step needs an ops vector", lineNo)
			}
			var st Step
			if fields[1] != "." {
				ops, err := parseOps(fields[1], reg.n/2)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
				st.Ops = ops
			}
			rest := fields[2:]
			if len(rest) > 0 {
				if rest[0] != "pi" {
					return nil, fmt.Errorf("line %d: unexpected token %q", lineNo, rest[0])
				}
				pow2 := reg.n&(reg.n-1) == 0
				switch {
				case len(rest) == 2 && rest[1] == "shuffle":
					if !pow2 {
						return nil, fmt.Errorf("line %d: shuffle needs a power-of-two register count", lineNo)
					}
					st.Pi = perm.Shuffle(reg.n)
				case len(rest) == 2 && rest[1] == "unshuffle":
					if !pow2 {
						return nil, fmt.Errorf("line %d: unshuffle needs a power-of-two register count", lineNo)
					}
					st.Pi = perm.Unshuffle(reg.n)
				default:
					if len(rest)-1 != reg.n {
						return nil, fmt.Errorf("line %d: permutation has %d entries, want %d", lineNo, len(rest)-1, reg.n)
					}
					p := make(perm.Perm, reg.n)
					for i, f := range rest[1:] {
						v, err := strconv.Atoi(f)
						if err != nil {
							return nil, fmt.Errorf("line %d: bad permutation entry %q", lineNo, f)
						}
						p[i] = v
					}
					if !p.Valid() {
						return nil, fmt.Errorf("line %d: not a permutation", lineNo)
					}
					st.Pi = p
				}
			}
			reg.AddStep(st)
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if reg == nil {
		return nil, fmt.Errorf("no registers declaration found")
	}
	return reg, nil
}

func parseOps(s string, want int) ([]Op, error) {
	if len(s) != want {
		return nil, fmt.Errorf("ops vector has %d entries, want %d", len(s), want)
	}
	ops := make([]Op, want)
	for i, ch := range s {
		switch ch {
		case '0':
			ops[i] = OpNone
		case '+':
			ops[i] = OpPlus
		case '-':
			ops[i] = OpMinus
		case '1':
			ops[i] = OpSwap
		default:
			return nil, fmt.Errorf("bad op %q", ch)
		}
	}
	return ops, nil
}
