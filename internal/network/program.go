package network

import (
	"fmt"

	"shufflenet/internal/obs"
)

// Scalar-path metrics. The bit-sliced kernel (EvalBits) is deliberately
// not counted here: one atomic per 64-lane call would cost several
// percent of its ~100ns budget, so word counts are accumulated
// non-atomically in BitBatch and flushed per worker chunk instead (see
// bitslice.go and DESIGN.md §4).
var (
	metEvalCalls    = obs.C("network.eval.calls")
	metEvalCompiles = obs.C("network.compile.count")
)

// Program is a compiled comparator network: the level structure
// flattened into a branch-predictable stream of wire pairs, plus an
// optional output relabeling (for register-model networks, whose final
// register contents are a permutation of the circuit wires).
//
// A Program is immutable after Compile and safe for concurrent use; the
// Eval* methods write only into caller-provided (or freshly allocated)
// buffers. It exists for the hot paths: exhaustive 0-1 checking,
// Monte-Carlo sweeps, and the bit-sliced kernel (EvalBits), which
// pushes 64 independent 0-1 inputs through the network at once with two
// bitwise ops per comparator.
type Program struct {
	n        int
	pairs    []int32   // flat (min, max) wire pairs, level by level
	levelOff []int32   // pairs[2*levelOff[i]:2*levelOff[i+1]] is level i
	gather   [][]int32 // output relabeling as permutation cycles; nil = identity
}

// Compilable is implemented by network representations that can be
// lowered to a compiled Program. Both *Network and *Register satisfy
// it; checkers use it to route any Evaluator they recognize onto the
// compiled (and, for 0-1 inputs, bit-sliced) kernel.
type Compilable interface {
	Compile() *Program
}

// Compile flattens a circuit-model network into a Program.
func Compile(c *Network) *Program {
	metEvalCompiles.Inc()
	p := &Program{
		n:        c.n,
		pairs:    make([]int32, 0, 2*c.Size()),
		levelOff: make([]int32, 1, c.Depth()+1),
	}
	for _, lv := range c.levels {
		for _, cm := range lv {
			p.pairs = append(p.pairs, int32(cm.Min), int32(cm.Max))
		}
		p.levelOff = append(p.levelOff, int32(len(p.pairs)/2))
	}
	return p
}

// Compile lowers the circuit to its compiled Program form.
func (c *Network) Compile() *Program { return Compile(c) }

// CompileRegister lowers a register-model network to a Program via the
// model equivalence (FromRegister): the step permutations and exchange
// ("1") elements become wire relabelings, and the final placement of
// wires in registers becomes the Program's output gather, so that
//
//	prog.Eval(x) == reg.Eval(x)  for all inputs x.
func CompileRegister(r *Register) *Program {
	circ, place := FromRegister(r)
	p := Compile(circ)
	// reg.Eval(x)[i] == circ.Eval(x)[place[i]]: gather along the cycles
	// of place so no scratch buffer is needed at eval time.
	for _, cy := range place.Cycles() {
		if len(cy) < 2 {
			continue
		}
		own := make([]int32, len(cy))
		for i, w := range cy {
			own[i] = int32(w)
		}
		p.gather = append(p.gather, own)
	}
	return p
}

// Compile lowers the register network to its compiled Program form.
func (r *Register) Compile() *Program { return CompileRegister(r) }

// Wires returns the number of wires.
func (p *Program) Wires() int { return p.n }

// Depth returns the number of levels of the source network.
func (p *Program) Depth() int { return len(p.levelOff) - 1 }

// Size returns the number of comparators.
func (p *Program) Size() int { return len(p.pairs) / 2 }

// Eval runs the program on input, returning a fresh output slice.
func (p *Program) Eval(input []int) []int {
	out := make([]int, p.n)
	p.EvalInto(out, input)
	return out
}

// EvalInto runs the program on input, writing the output into dst
// (length n) without allocating. dst and input may be the same slice.
func (p *Program) EvalInto(dst, input []int) {
	if len(input) != p.n || len(dst) != p.n {
		panic(fmt.Sprintf("network.Program.EvalInto: dst/input lengths %d/%d != %d wires", len(dst), len(input), p.n))
	}
	metEvalCalls.Inc()
	copy(dst, input)
	pairs := p.pairs
	for i := 0; i+1 < len(pairs); i += 2 {
		lo, hi := pairs[i], pairs[i+1]
		a, b := dst[lo], dst[hi]
		if a > b {
			dst[lo], dst[hi] = b, a
		}
	}
	applyCycles(p.gather, dst)
}

// EvalBits runs the program on 64 independent 0-1 inputs at once,
// in place: state[w] holds, in bit (lane) j, the value of wire w in the
// j-th input. A comparator (lo, hi) is branch-free — the smaller value
// is AND, the larger OR:
//
//	state[lo], state[hi] = state[lo]&state[hi], state[lo]|state[hi]
//
// This is sound for 0-1 values by the same monotone-threshold argument
// as the 0-1 principle itself, and it is what makes exhaustive
// verification run two orders of magnitude faster than scalar Eval.
func (p *Program) EvalBits(state []uint64) {
	if len(state) != p.n {
		panic(fmt.Sprintf("network.Program.EvalBits: state length %d != %d wires", len(state), p.n))
	}
	pairs := p.pairs
	for i := 0; i+1 < len(pairs); i += 2 {
		lo, hi := pairs[i], pairs[i+1]
		a, b := state[lo], state[hi]
		state[lo] = a & b
		state[hi] = a | b
	}
	applyCycles(p.gather, state)
}

// SortsZeroOneInput reports whether the network sorts the single 0-1
// input in (length n, nonzero entries read as 1), using the bit-sliced
// kernel with the input broadcast across all lanes. It works for any
// width, unlike mask-based enumeration which needs n <= 64.
func (p *Program) SortsZeroOneInput(in []int) bool {
	if len(in) != p.n {
		panic(fmt.Sprintf("network.Program.SortsZeroOneInput: input length %d != %d wires", len(in), p.n))
	}
	state := make([]uint64, p.n)
	for w, v := range in {
		if v != 0 {
			state[w] = ^uint64(0)
		}
	}
	p.EvalBits(state)
	var bad uint64
	for i := 0; i+1 < len(state); i++ {
		bad |= state[i] &^ state[i+1]
	}
	return bad == 0
}

// Levels returns the compiled level structure as (min, max) wire-index
// pairs, one slice per level. The result is freshly allocated; callers
// may mutate it. It exposes the flat comparator stream to consumers
// that re-emit the program in another form (internal/netgen compiles
// it to branchless Go source).
func (p *Program) Levels() [][][2]int {
	out := make([][][2]int, p.Depth())
	for l := range out {
		lo, hi := p.levelOff[l], p.levelOff[l+1]
		lv := make([][2]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			lv = append(lv, [2]int{int(p.pairs[2*i]), int(p.pairs[2*i+1])})
		}
		out[l] = lv
	}
	return out
}

// OutputPerm returns the output relabeling as a permutation g with
// out[i] = in[g[i]] applied after the comparator stream — the identity
// for circuit-model programs, and the final register placement for
// register-model ones.
func (p *Program) OutputPerm() []int {
	g := make([]int, p.n)
	for i := range g {
		g[i] = i
	}
	for _, cy := range p.gather {
		for i := range cy {
			g[cy[i]] = int(cy[(i+1)%len(cy)])
		}
	}
	return g
}

// applyCycles applies the output relabeling out[r] = in[gather(r)]
// in place by walking each cycle (r0, r1=g(r0), r2=g(r1), ...).
func applyCycles[T any](cycles [][]int32, a []T) {
	for _, cy := range cycles {
		tmp := a[cy[0]]
		for i := 0; i < len(cy)-1; i++ {
			a[cy[i]] = a[cy[i+1]]
		}
		a[cy[len(cy)-1]] = tmp
	}
}

// compile-time interface checks
var (
	_ Compilable = (*Network)(nil)
	_ Compilable = (*Register)(nil)
)
