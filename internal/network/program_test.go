package network

import (
	"math/rand"
	"testing"
)

// These tests reuse randomNetwork (network_test.go) and randomRegister
// (register_test.go) as structure generators.

func TestCompileMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		c := randomNetwork(n, 1+rng.Intn(8), rng)
		p := c.Compile()
		if p.Wires() != c.Wires() || p.Depth() != c.Depth() || p.Size() != c.Size() {
			t.Fatalf("compiled shape %d/%d/%d != network %d/%d/%d",
				p.Wires(), p.Depth(), p.Size(), c.Wires(), c.Depth(), c.Size())
		}
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(2 * n)
		}
		want := c.Eval(in)
		got := p.Eval(in)
		buf := make([]int, n)
		p.EvalInto(buf, in)
		for i := range want {
			if got[i] != want[i] || buf[i] != want[i] {
				t.Fatalf("n=%d trial=%d: Eval/EvalInto mismatch at wire %d: %v / %v vs %v",
					n, trial, i, got, buf, want)
			}
		}
	}
}

func TestCompileRegisterMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 2 * (1 + rng.Intn(8))
		r := randomRegister(n, 1+rng.Intn(8), rng)
		p := r.Compile()
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(2 * n)
		}
		want := r.Eval(in)
		got := p.Eval(in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d trial=%d: register program mismatch at %d: %v vs %v",
					n, trial, i, got, want)
			}
		}
	}
}

func TestEvalIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomNetwork(12, 6, rng)
	p := c.Compile()
	in := rng.Perm(12)
	want := c.Eval(in)
	p.EvalInto(in, in) // dst == input must be allowed
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("aliased EvalInto differs at %d: %v vs %v", i, in, want)
		}
	}
}

// TestEvalBitsMatchesScalar checks every lane of EvalBits against the
// scalar evaluation of the corresponding 0-1 input, for circuit and
// register programs, across random blocks.
func TestEvalBitsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 2 * (1 + rng.Intn(10))
		var p *Program
		var ev interface{ Eval([]int) []int }
		if trial%2 == 0 {
			c := randomNetwork(n, 1+rng.Intn(6), rng)
			p, ev = c.Compile(), c
		} else {
			r := randomRegister(n, 1+rng.Intn(6), rng)
			p, ev = r.Compile(), r
		}
		blocks, laneMask := ZeroOneBlocks(n)
		bb := NewBitBatch(p)
		for rep := 0; rep < 4; rep++ {
			block := uint64(rng.Intn(blocks))
			bb.LoadBlock(block)
			out := bb.Eval()
			for j := 0; j < 64; j++ {
				if laneMask>>uint(j)&1 == 0 {
					continue
				}
				mask := block*64 + uint64(j)
				in := make([]int, n)
				for w := 0; w < n; w++ {
					in[w] = int(mask >> uint(w) & 1)
				}
				want := ev.Eval(in)
				for w := 0; w < n; w++ {
					if got := int(out[w] >> uint(j) & 1); got != want[w] {
						t.Fatalf("n=%d block=%d lane=%d wire=%d: bit %d != scalar %d",
							n, block, j, w, got, want[w])
					}
				}
			}
		}
	}
}

func TestUnsortedLanesMatchesIsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(16)
		c := randomNetwork(n, 1+rng.Intn(5), rng)
		p := c.Compile()
		blocks, laneMask := ZeroOneBlocks(n)
		bb := NewBitBatch(p)
		block := uint64(rng.Intn(blocks))
		bad := bb.Run(block) & laneMask
		for j := 0; j < 64; j++ {
			if laneMask>>uint(j)&1 == 0 {
				continue
			}
			mask := block*64 + uint64(j)
			in := make([]int, n)
			for w := 0; w < n; w++ {
				in[w] = int(mask >> uint(w) & 1)
			}
			out := c.Eval(in)
			sorted := true
			for i := 1; i < n; i++ {
				if out[i-1] > out[i] {
					sorted = false
				}
			}
			if gotBad := bad>>uint(j)&1 == 1; gotBad == sorted {
				t.Fatalf("n=%d mask=%d: UnsortedLanes says bad=%v, scalar sorted=%v",
					n, mask, gotBad, sorted)
			}
		}
	}
}

func TestLoadBlockLaneConstants(t *testing.T) {
	c := New(10) // no comparators: state is the raw input lanes
	bb := NewBitBatch(c.Compile())
	for _, block := range []uint64{0, 1, 7, 15} {
		bb.LoadBlock(block)
		s := bb.State()
		for j := 0; j < 64; j++ {
			mask := block*64 + uint64(j)
			for w := 0; w < 10; w++ {
				if got, want := s[w]>>uint(j)&1, mask>>uint(w)&1; got != want {
					t.Fatalf("block %d lane %d wire %d: loaded %d want %d", block, j, w, got, want)
				}
			}
		}
	}
}

func TestZeroOneBlocks(t *testing.T) {
	cases := []struct {
		n      int
		blocks int
		mask   uint64
	}{
		{1, 1, 0x3},
		{3, 1, 0xFF},
		{5, 1, 0xFFFFFFFF},
		{6, 1, ^uint64(0)},
		{7, 2, ^uint64(0)},
		{16, 1 << 10, ^uint64(0)},
	}
	for _, tc := range cases {
		blocks, mask := ZeroOneBlocks(tc.n)
		if blocks != tc.blocks || mask != tc.mask {
			t.Errorf("ZeroOneBlocks(%d) = (%d, %#x), want (%d, %#x)",
				tc.n, blocks, mask, tc.blocks, tc.mask)
		}
	}
}

func TestSortsZeroOneInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(20)
		c := randomNetwork(n, 1+rng.Intn(6), rng)
		p := c.Compile()
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(2)
		}
		out := c.Eval(in)
		sorted := true
		for i := 1; i < n; i++ {
			if out[i-1] > out[i] {
				sorted = false
			}
		}
		if got := p.SortsZeroOneInput(in); got != sorted {
			t.Fatalf("n=%d in=%v: SortsZeroOneInput=%v, scalar=%v", n, in, got, sorted)
		}
	}
}

func TestProgramGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	p := New(4).AddComparators(0, 1).Compile()
	mustPanic("EvalInto short dst", func() { p.EvalInto(make([]int, 3), make([]int, 4)) })
	mustPanic("EvalInto short input", func() { p.EvalInto(make([]int, 4), make([]int, 3)) })
	mustPanic("EvalBits wrong width", func() { p.EvalBits(make([]uint64, 3)) })
	mustPanic("SortsZeroOneInput wrong width", func() { p.SortsZeroOneInput(make([]int, 3)) })
}
