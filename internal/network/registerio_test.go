package network

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"shufflenet/internal/perm"
)

func registerEquivalent(t *testing.T, a, b *Register, trials int, rng *rand.Rand) {
	t.Helper()
	if a.Registers() != b.Registers() || a.Depth() != b.Depth() || a.Size() != b.Size() {
		t.Fatalf("shape mismatch: %v vs %v", a, b)
	}
	for i := 0; i < trials; i++ {
		in := []int(perm.Random(a.Registers(), rng))
		x, y := a.Eval(in), b.Eval(in)
		for j := range x {
			if x[j] != y[j] {
				t.Fatalf("behavioural mismatch on %v", in)
			}
		}
	}
}

func TestRegisterTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		n := 2 * (1 + rng.Intn(8))
		r := randomRegister(n, 1+rng.Intn(6), rng)
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadRegisterText(&buf)
		if err != nil {
			t.Fatalf("parse failed: %v", err)
		}
		registerEquivalent(t, r, back, 10, rng)
	}
}

func TestRegisterTextNamedPermutations(t *testing.T) {
	n := 8
	r := NewRegister(n)
	r.AddStep(Step{Pi: perm.Shuffle(n), Ops: []Op{OpPlus, OpNone, OpMinus, OpSwap}})
	r.AddStep(Step{Pi: perm.Unshuffle(n)})
	r.AddStep(Step{}) // identity, no ops
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pi shuffle") || !strings.Contains(out, "pi unshuffle") {
		t.Errorf("named permutations not used:\n%s", out)
	}
	if !strings.Contains(out, "step .") {
		t.Errorf("empty ops not abbreviated:\n%s", out)
	}
	back, err := ReadRegisterText(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	registerEquivalent(t, r, back, 10, rand.New(rand.NewSource(62)))
}

func TestReadRegisterTextErrors(t *testing.T) {
	bad := []string{
		"",
		"step +\n",
		"registers 3\n",
		"registers x\n",
		"registers 4\nregisters 4\n",
		"registers 4\nstep\n",
		"registers 4\nstep ++0\n",           // wrong ops length
		"registers 4\nstep ?+\n",            // bad op char
		"registers 4\nstep ++ pi 0 1\n",     // short perm
		"registers 4\nstep ++ pi 0 0 1 2\n", // invalid perm
		"registers 4\nstep ++ rho 1\n",      // unknown token
		"registers 4\nbogus\n",
	}
	for _, src := range bad {
		if _, err := ReadRegisterText(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestReadRegisterTextComments(t *testing.T) {
	src := "# stone fragment\nregisters 4\n\nstep ++ pi shuffle\nstep .\n"
	r, err := ReadRegisterText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if r.Depth() != 2 || r.Size() != 2 || !r.Steps()[0].Pi.Equal(perm.Shuffle(4)) {
		t.Errorf("parsed wrong: %v", r)
	}
}
