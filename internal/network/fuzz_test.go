package network

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText: the parser must never panic, and anything it accepts
// must be a valid network that survives a write/read round trip.
func FuzzReadText(f *testing.F) {
	f.Add("wires 4\nlevel 0:1 2:3\nlevel 1:2\n")
	f.Add("wires 2\nlevel\n")
	f.Add("# comment\nwires 8\nlevel 0:7\n")
	f.Add("wires 1\n")
	f.Add("wires 4\nlevel 3:0\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ReadText(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid network: %v", err)
		}
		var buf bytes.Buffer
		if err := c.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if !c.Equal(back) {
			t.Fatal("round trip changed the network")
		}
	})
}

// FuzzReadRegisterText: same contract for the register-model parser.
func FuzzReadRegisterText(f *testing.F) {
	f.Add("registers 4\nstep ++ pi shuffle\nstep .\n")
	f.Add("registers 2\nstep 1\n")
	f.Add("registers 4\nstep 0- pi 3 2 1 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := ReadRegisterText(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadRegisterText(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if back.Registers() != r.Registers() || back.Depth() != r.Depth() || back.Size() != r.Size() {
			t.Fatal("round trip changed the network shape")
		}
		// Behavioral agreement on one probe.
		n := r.Registers()
		in := make([]int, n)
		for i := range in {
			in[i] = i
		}
		a, b := r.Eval(in), back.Eval(in)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("round trip changed behaviour")
			}
		}
	})
}
