package network

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText: the parser must never panic, and anything it accepts
// must be a valid network that survives a write/read round trip.
func FuzzReadText(f *testing.F) {
	f.Add("wires 4\nlevel 0:1 2:3\nlevel 1:2\n")
	f.Add("wires 2\nlevel\n")
	f.Add("# comment\nwires 8\nlevel 0:7\n")
	f.Add("wires 1\n")
	f.Add("wires 4\nlevel 3:0\n")
	f.Add("wires 4\r\nlevel 0:1 2:3\r\nlevel 1:2\r\n") // CRLF (HTTP clients)
	f.Add("wires 4\rlevel 0:1\r")                      // lone CR
	f.Add("wires 4 \nlevel 0:1 2:3\t\n")               // trailing whitespace
	f.Add("wires 4\r\n\r\nlevel 0:1\r\n")              // blank CRLF lines
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ReadText(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid network: %v", err)
		}
		var buf bytes.Buffer
		if err := c.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if !c.Equal(back) {
			t.Fatal("round trip changed the network")
		}
	})
}

// FuzzReadRegisterText: same contract for the register-model parser.
func FuzzReadRegisterText(f *testing.F) {
	f.Add("registers 4\nstep ++ pi shuffle\nstep .\n")
	f.Add("registers 2\nstep 1\n")
	f.Add("registers 4\nstep 0- pi 3 2 1 0\n")
	f.Add("registers 4\r\nstep ++ pi shuffle\r\nstep .\r\n") // CRLF
	f.Add("registers 4\rstep ++\r")                          // lone CR
	f.Add("registers 4  \nstep ++ pi 3 2 1 0 \n")            // trailing whitespace
	f.Fuzz(func(t *testing.T, src string) {
		r, err := ReadRegisterText(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadRegisterText(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if back.Registers() != r.Registers() || back.Depth() != r.Depth() || back.Size() != r.Size() {
			t.Fatal("round trip changed the network shape")
		}
		// Behavioral agreement on one probe.
		n := r.Registers()
		in := make([]int, n)
		for i := range in {
			in[i] = i
		}
		a, b := r.Eval(in), back.Eval(in)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("round trip changed behaviour")
			}
		}
	})
}

// FuzzReadDOT: the DOT parser must never panic, and anything it
// accepts must be a valid network that survives a DOT write/read round
// trip.
func FuzzReadDOT(f *testing.F) {
	seed := func(c *Network) {
		var buf bytes.Buffer
		if err := c.WriteDOT(&buf, "seed"); err == nil {
			f.Add(buf.String())
		}
	}
	seed(New(4).AddComparators(0, 1, 2, 3).AddComparators(1, 2))
	seed(New(2))
	seed(New(8).AddLevel(nil).AddComparators(7, 0))
	f.Add("digraph \"x\" {\r\n w0_0; w1_0; w0_1; w1_1;\r\n w1_1 -> w0_1 [constraint=false];\r\n}\r\n")
	f.Add("digraph \"x\" {\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ReadDOT(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid network: %v", err)
		}
		var buf bytes.Buffer
		if err := c.WriteDOT(&buf, "rt"); err != nil {
			t.Fatal(err)
		}
		back, err := ReadDOT(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if !c.Equal(back) {
			t.Fatal("round trip changed the network")
		}
	})
}

// FuzzCompileEval: Compile must round-trip evaluation — for any network
// decoded from the fuzz bytes and any 0-1 input mask, Network.Eval,
// Program.Eval, Program.EvalInto, and lane 0 of Program.EvalBits must
// all agree.
func FuzzCompileEval(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 2, 3}, uint64(5))
	f.Add(uint8(8), []byte{7, 0, 1, 6, 2, 5}, uint64(0xA5))
	f.Add(uint8(2), []byte{}, uint64(1))
	f.Fuzz(func(t *testing.T, width uint8, pairs []byte, mask uint64) {
		n := 2 + int(width)%31 // 2..32
		c := New(n)
		// Decode pairs into levels, skipping bytes that would reuse a
		// wire within the level; a zero byte starts a new level.
		var lv Level
		used := make(map[int]bool)
		flush := func() {
			c.AddLevel(lv)
			lv, used = nil, make(map[int]bool)
		}
		for i := 0; i+1 < len(pairs); i += 2 {
			a, b := int(pairs[i])%n, int(pairs[i+1])%n
			if a == b || used[a] || used[b] {
				flush()
			}
			if a != b {
				lv = append(lv, Comparator{Min: a, Max: b})
				used[a], used[b] = true, true
			}
		}
		flush()
		p := c.Compile()
		in := make([]int, n)
		state := make([]uint64, n)
		for w := 0; w < n; w++ {
			in[w] = int(mask >> uint(w) & 1)
			state[w] = mask >> uint(w) & 1 // lane 0 only
		}
		want := c.Eval(in)
		got := p.Eval(in)
		into := make([]int, n)
		p.EvalInto(into, in)
		p.EvalBits(state)
		for w := 0; w < n; w++ {
			if got[w] != want[w] {
				t.Fatalf("wire %d: Program.Eval %d != Network.Eval %d", w, got[w], want[w])
			}
			if into[w] != want[w] {
				t.Fatalf("wire %d: EvalInto %d != Network.Eval %d", w, into[w], want[w])
			}
			if bit := int(state[w] & 1); bit != want[w] {
				t.Fatalf("wire %d: EvalBits lane 0 bit %d != Network.Eval %d", w, bit, want[w])
			}
		}
	})
}
