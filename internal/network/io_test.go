package network

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		c := randomNetwork(2+2*rng.Intn(8), rng.Intn(8), rng)
		var buf bytes.Buffer
		if err := c.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("ReadText: %v\n", err)
		}
		if !c.Equal(back) {
			t.Fatal("text round trip changed the network")
		}
	}
}

func TestReadTextComments(t *testing.T) {
	src := "# a comment\nwires 4\n\nlevel 0:1 2:3\nlevel 1:2\n"
	c, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Wires() != 4 || c.Depth() != 2 || c.Size() != 3 {
		t.Errorf("parsed %v", c)
	}
}

func TestReadTextEmptyLevel(t *testing.T) {
	c, err := ReadText(strings.NewReader("wires 2\nlevel\nlevel 0:1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Depth() != 2 || c.Size() != 1 {
		t.Errorf("parsed %v", c)
	}
}

func TestReadTextErrors(t *testing.T) {
	bad := []string{
		"",                         // no wires
		"level 0:1\n",              // level before wires
		"wires x\n",                // bad count
		"wires 0\n",                // zero wires
		"wires 2\nwires 2\n",       // duplicate
		"wires 2\nlevel 0-1\n",     // bad pair syntax
		"wires 2\nlevel 0:2\n",     // out of range
		"wires 2\nlevel a:b\n",     // non-numeric
		"wires 4\nlevel 0:1 1:2\n", // wire reuse
		"wires 2\nbogus\n",         // unknown directive
		"wires 2\nlevel 0:0\n",     // self loop
	}
	for _, src := range bad {
		if _, err := ReadText(strings.NewReader(src)); err == nil {
			t.Errorf("ReadText accepted %q", src)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := bubble4().WriteDOT(&buf, "bubble4"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "rank=same", "color=red", "w0_0"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestCanonicalLevel(t *testing.T) {
	lv := Level{{Min: 5, Max: 4}, {Min: 0, Max: 1}, {Min: 3, Max: 2}}
	got := CanonicalLevel(lv)
	if got[0].Min != 0 || got[1].Min != 3 || got[2].Min != 5 {
		t.Errorf("CanonicalLevel = %v", got)
	}
	// Original untouched.
	if lv[0].Min != 5 {
		t.Error("CanonicalLevel mutated input")
	}
}

func TestRegisterString(t *testing.T) {
	r := regSorter4()
	s := r.String()
	if !strings.Contains(s, "n=4") || !strings.Contains(s, "shuffleBased=false") {
		t.Errorf("Register.String() = %q", s)
	}
}
