package network

import "shufflenet/internal/obs"

// Bit-sliced 0-1 enumeration: the 2^n inputs of the 0-1 principle are
// walked in blocks of 64, with block b covering masks 64b..64b+63.
// Wire w of lane j carries bit w of mask 64b+j, so the six low wires
// are block-independent lane constants and every higher wire is a
// constant 0 or all-ones word per block. One EvalBits call then settles
// 64 inputs with two bitwise ops per comparator — the kernel the
// optimal-sorting-network searches (Bundala–Závodný, Harder) run on.

// laneIndex[k] has bit j equal to bit k of j: the lane constants that
// seed wires 0..5 for every block.
var laneIndex = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// ZeroOneBlocks returns how many 64-lane blocks cover all 2^n 0-1
// masks, and the mask of valid lanes within each block (all 64 lanes
// for n >= 6; for n < 6 there is a single block whose low 2^n lanes
// are the distinct masks and the rest are duplicates to be ignored).
func ZeroOneBlocks(n int) (blocks int, laneMask uint64) {
	if n < 6 {
		return 1, uint64(1)<<(1<<uint(n)) - 1
	}
	return 1 << uint(n-6), ^uint64(0)
}

// Bit-sliced kernel metrics: EvalBits itself carries no per-call
// atomics (an atomic add would cost several percent of a ~100ns call),
// so BitBatch counts words locally and workers flush once per chunk
// via FlushMetrics.
var (
	metBitsWords = obs.C("network.evalbits.words")
	metBitsLanes = obs.C("network.evalbits.lanes")
)

// BitBatch is per-worker scratch for pushing 64-lane 0-1 blocks
// through a compiled Program. It is not safe for concurrent use; give
// each worker its own (NewBitBatch is two small allocations).
type BitBatch struct {
	prog  *Program
	state []uint64
	words int64 // 64-lane evaluations since the last FlushMetrics
}

// NewBitBatch returns scratch for evaluating 64-wide 0-1 blocks of p.
func NewBitBatch(p *Program) *BitBatch {
	return &BitBatch{prog: p, state: make([]uint64, p.n)}
}

// LoadBlock fills the lanes with the 64 masks 64*block .. 64*block+63:
// wire w of lane j is bit w of mask 64*block+j.
func (b *BitBatch) LoadBlock(block uint64) {
	n := b.prog.n
	s := b.state
	for w := 0; w < n && w < 6; w++ {
		s[w] = laneIndex[w]
	}
	for w := 6; w < n; w++ {
		s[w] = -(block >> uint(w-6) & 1) // 0 or all-ones
	}
}

// Eval runs the compiled program over the loaded lanes in place and
// returns the state: state[w] holds wire w's output bit for each lane.
func (b *BitBatch) Eval() []uint64 {
	b.words++
	b.prog.EvalBits(b.state)
	return b.state
}

// State returns the lane words (wire-major) without evaluating.
func (b *BitBatch) State() []uint64 { return b.state }

// UnsortedLanes returns the set of lanes whose current state is not
// sorted, as a bitmask: a 0-1 output is unsorted iff some adjacent wire
// pair has a 1 above a 0, detected wordwise as state[i] &^ state[i+1].
func (b *BitBatch) UnsortedLanes() uint64 {
	var bad uint64
	s := b.state
	for i := 0; i+1 < len(s); i++ {
		bad |= s[i] &^ s[i+1]
	}
	return bad
}

// Run loads block, evaluates it, and returns the unsorted-lane mask:
// bit j set means mask 64*block+j is a 0-1 witness of non-sortedness.
func (b *BitBatch) Run(block uint64) uint64 {
	b.words++
	b.LoadBlock(block)
	b.prog.EvalBits(b.state)
	return b.UnsortedLanes()
}

// FlushMetrics publishes the words (64-lane evaluations) settled since
// the last flush to the obs registry. Checkers call it once per worker
// chunk (typically deferred), keeping the kernel loop free of atomics.
func (b *BitBatch) FlushMetrics() {
	if b.words == 0 {
		return
	}
	metBitsWords.Add(b.words)
	metBitsLanes.Add(64 * b.words)
	b.words = 0
}
