package network

import (
	"fmt"

	"shufflenet/internal/perm"
)

// Op is one entry of the operation vector x⃗_i of the register model:
// the action applied to a pair of adjacent registers (2k, 2k+1) after
// the step's permutation has been applied.
type Op byte

const (
	// OpNone ("0"): no operation on the register pair.
	OpNone Op = iota
	// OpPlus ("+"): compare; smaller value to register 2k, larger to 2k+1.
	OpPlus
	// OpMinus ("−"): compare; larger value to register 2k, smaller to 2k+1.
	OpMinus
	// OpSwap ("1"): unconditionally exchange the two register contents.
	OpSwap
)

// String renders the op in the paper's {0, +, −, 1} notation.
func (o Op) String() string {
	switch o {
	case OpNone:
		return "0"
	case OpPlus:
		return "+"
	case OpMinus:
		return "-"
	case OpSwap:
		return "1"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// Step is one step (Π_i, x⃗_i) of the register model: permute the n
// register contents by Pi, then apply Ops[k] to registers (2k, 2k+1).
type Step struct {
	Pi  perm.Perm // permutation of register contents; nil means identity
	Ops []Op      // length n/2; nil means all OpNone
}

// Register is a comparator network in the register model: n registers
// operated on by a sequence of steps. n must be even (ops act on pairs).
type Register struct {
	n     int
	steps []Step
}

// NewRegister returns an empty register-model network on n registers.
func NewRegister(n int) *Register {
	if n < 2 || n%2 != 0 {
		panic(fmt.Sprintf("network.NewRegister: n = %d must be even and >= 2", n))
	}
	return &Register{n: n}
}

// Registers returns the number of registers n.
func (r *Register) Registers() int { return r.n }

// Depth returns the number of steps d.
func (r *Register) Depth() int { return len(r.steps) }

// Steps returns the underlying steps; the caller must not modify them.
func (r *Register) Steps() []Step { return r.steps }

// Size returns the number of comparator elements (OpPlus/OpMinus
// entries) across all steps.
func (r *Register) Size() int {
	s := 0
	for _, st := range r.steps {
		for _, op := range st.Ops {
			if op == OpPlus || op == OpMinus {
				s++
			}
		}
	}
	return s
}

// AddStep appends a step. A nil Pi means the identity permutation; a
// nil Ops vector means all-OpNone. Pi must be a valid permutation on n
// elements and Ops must have length n/2.
func (r *Register) AddStep(st Step) *Register {
	if st.Pi != nil {
		if len(st.Pi) != r.n {
			panic(fmt.Sprintf("network.AddStep: permutation on %d elements, want %d", len(st.Pi), r.n))
		}
		st.Pi.MustValid()
		st.Pi = st.Pi.Clone()
	}
	if st.Ops != nil {
		if len(st.Ops) != r.n/2 {
			panic(fmt.Sprintf("network.AddStep: ops vector length %d, want %d", len(st.Ops), r.n/2))
		}
		own := make([]Op, len(st.Ops))
		copy(own, st.Ops)
		st.Ops = own
	}
	r.steps = append(r.steps, st)
	return r
}

// Append concatenates the steps of other, which must have the same
// register count.
func (r *Register) Append(other *Register) *Register {
	if other.n != r.n {
		panic(fmt.Sprintf("network.Register.Append: register counts differ (%d vs %d)", r.n, other.n))
	}
	for _, st := range other.steps {
		r.AddStep(st)
	}
	return r
}

// Clone returns a deep copy.
func (r *Register) Clone() *Register {
	out := NewRegister(r.n)
	for _, st := range r.steps {
		out.AddStep(st)
	}
	return out
}

// Truncate returns a copy consisting of the first depth steps.
func (r *Register) Truncate(depth int) *Register {
	if depth < 0 || depth > len(r.steps) {
		panic(fmt.Sprintf("network.Register.Truncate: depth %d out of range [0,%d]", depth, len(r.steps)))
	}
	out := NewRegister(r.n)
	for _, st := range r.steps[:depth] {
		out.AddStep(st)
	}
	return out
}

// Eval runs the register network on input (length n), returning a fresh
// output slice giving the final register contents.
func (r *Register) Eval(input []int) []int {
	if len(input) != r.n {
		panic(fmt.Sprintf("network.Register.Eval: input length %d != %d registers", len(input), r.n))
	}
	cur := make([]int, r.n)
	copy(cur, input)
	tmp := make([]int, r.n)
	for _, st := range r.steps {
		if st.Pi != nil {
			st.Pi.RouteInto(tmp, cur)
			cur, tmp = tmp, cur
		}
		applyOps(st.Ops, cur)
	}
	return cur
}

// EvalTrace runs the network and records every comparison performed
// (OpPlus and OpMinus entries; OpSwap and OpNone perform none —
// Definition 3.6 explicitly excludes them from "collisions").
func (r *Register) EvalTrace(input []int) ([]int, []Comparison) {
	if len(input) != r.n {
		panic(fmt.Sprintf("network.Register.Eval: input length %d != %d registers", len(input), r.n))
	}
	cur := make([]int, r.n)
	copy(cur, input)
	tmp := make([]int, r.n)
	var trace []Comparison
	for si, st := range r.steps {
		if st.Pi != nil {
			st.Pi.RouteInto(tmp, cur)
			cur, tmp = tmp, cur
		}
		for k, op := range st.Ops {
			a, b := cur[2*k], cur[2*k+1]
			switch op {
			case OpPlus:
				trace = append(trace, Comparison{A: a, B: b, Level: si})
				if a > b {
					cur[2*k], cur[2*k+1] = b, a
				}
			case OpMinus:
				trace = append(trace, Comparison{A: b, B: a, Level: si})
				if a < b {
					cur[2*k], cur[2*k+1] = b, a
				}
			case OpSwap:
				cur[2*k], cur[2*k+1] = b, a
			}
		}
	}
	return cur, trace
}

// IsShuffleBased reports whether every step's permutation is the perfect
// shuffle (Section 1: "a network is based on the shuffle permutation if
// Π_i = π for all i"). A nil (identity) permutation does not count.
func (r *Register) IsShuffleBased() bool {
	shuffle := perm.Shuffle(r.n)
	for _, st := range r.steps {
		if st.Pi == nil || !st.Pi.Equal(shuffle) {
			return false
		}
	}
	return true
}

func applyOps(ops []Op, data []int) {
	for k, op := range ops {
		a, b := data[2*k], data[2*k+1]
		switch op {
		case OpPlus:
			if a > b {
				data[2*k], data[2*k+1] = b, a
			}
		case OpMinus:
			if a < b {
				data[2*k], data[2*k+1] = b, a
			}
		case OpSwap:
			data[2*k], data[2*k+1] = b, a
		}
	}
}
