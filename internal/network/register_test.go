package network

import (
	"math/rand"
	"testing"

	"shufflenet/internal/perm"
)

// regSorter4 is a 4-register sorting network in the register model:
// odd-even transposition expressed with explicit permutations.
func regSorter4() *Register {
	r := NewRegister(4)
	// Step: compare (0,1) and (2,3).
	even := Step{Ops: []Op{OpPlus, OpPlus}}
	// Step: rotate so that the (1,2) pair becomes adjacent, compare once.
	rot := perm.Perm{1, 2, 3, 0} // content of register i moves to i+1 mod 4
	odd := Step{Pi: rot, Ops: []Op{OpNone, OpPlus}}
	unrot := Step{Pi: rot.Inverse()}
	r.AddStep(even).AddStep(odd).AddStep(unrot).AddStep(even).AddStep(odd).AddStep(unrot)
	return r
}

func TestRegisterSorts(t *testing.T) {
	r := regSorter4()
	data := []int{0, 1, 2, 3}
	permute(data, func(p []int) {
		if out := r.Eval(p); !isSorted(out) {
			t.Fatalf("register sorter failed on %v: %v", p, out)
		}
	})
}

func TestRegisterOps(t *testing.T) {
	r := NewRegister(2)
	r.AddStep(Step{Ops: []Op{OpMinus}})
	if out := r.Eval([]int{1, 5}); out[0] != 5 || out[1] != 1 {
		t.Errorf("OpMinus: %v", out)
	}
	r2 := NewRegister(2)
	r2.AddStep(Step{Ops: []Op{OpSwap}})
	if out := r2.Eval([]int{1, 5}); out[0] != 5 || out[1] != 1 {
		t.Errorf("OpSwap: %v", out)
	}
	r3 := NewRegister(2)
	r3.AddStep(Step{Ops: []Op{OpNone}})
	if out := r3.Eval([]int{5, 1}); out[0] != 5 || out[1] != 1 {
		t.Errorf("OpNone: %v", out)
	}
}

func TestOpString(t *testing.T) {
	if FormatOps([]Op{OpNone, OpPlus, OpMinus, OpSwap}) != "0+-1" {
		t.Errorf("FormatOps = %q", FormatOps([]Op{OpNone, OpPlus, OpMinus, OpSwap}))
	}
	if Op(9).String() == "" {
		t.Error("unknown op should still render")
	}
}

func TestRegisterSizeCountsComparatorsOnly(t *testing.T) {
	r := NewRegister(4)
	r.AddStep(Step{Ops: []Op{OpPlus, OpSwap}})
	r.AddStep(Step{Ops: []Op{OpMinus, OpNone}})
	if r.Size() != 2 {
		t.Errorf("Size = %d, want 2 (swap/none are not comparators)", r.Size())
	}
	if r.Depth() != 2 || r.Registers() != 4 {
		t.Error("depth/registers wrong")
	}
}

func TestRegisterEvalTraceExcludesSwaps(t *testing.T) {
	r := NewRegister(4)
	r.AddStep(Step{Ops: []Op{OpSwap, OpPlus}})
	out, trace := r.EvalTrace([]int{9, 8, 7, 6})
	if len(trace) != 1 {
		t.Fatalf("trace length %d, want 1 (Definition 3.6: swaps are not comparisons)", len(trace))
	}
	if trace[0].Lo() != 6 || trace[0].Hi() != 7 {
		t.Errorf("traced values %v", trace[0])
	}
	if out[0] != 8 || out[1] != 9 {
		t.Errorf("swap not applied: %v", out)
	}
}

func TestRegisterEvalTraceMinusDirection(t *testing.T) {
	r := NewRegister(2)
	r.AddStep(Step{Ops: []Op{OpMinus}})
	out, trace := r.EvalTrace([]int{3, 7})
	if out[0] != 7 || out[1] != 3 || len(trace) != 1 {
		t.Fatalf("OpMinus trace: out=%v trace=%v", out, trace)
	}
}

func TestIsShuffleBased(t *testing.T) {
	n := 8
	r := NewRegister(n)
	sh := perm.Shuffle(n)
	for i := 0; i < 3; i++ {
		r.AddStep(Step{Pi: sh, Ops: make([]Op, n/2)})
	}
	if !r.IsShuffleBased() {
		t.Error("shuffle-based network not recognized")
	}
	r.AddStep(Step{Ops: make([]Op, n/2)}) // identity step
	if r.IsShuffleBased() {
		t.Error("identity step should disqualify shuffle-based")
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("odd registers", func() { NewRegister(3) })
	mustPanic("short ops", func() { NewRegister(4).AddStep(Step{Ops: []Op{OpPlus}}) })
	mustPanic("wrong perm size", func() { NewRegister(4).AddStep(Step{Pi: perm.Identity(3)}) })
	mustPanic("invalid perm", func() { NewRegister(4).AddStep(Step{Pi: perm.Perm{0, 0, 1, 2}}) })
	mustPanic("bad input size", func() { NewRegister(4).Eval([]int{1, 2}) })
}

func TestRegisterCloneTruncateAppend(t *testing.T) {
	r := regSorter4()
	cl := r.Clone()
	if cl.Depth() != r.Depth() || cl.Size() != r.Size() {
		t.Error("clone mismatch")
	}
	tr := r.Truncate(2)
	if tr.Depth() != 2 {
		t.Error("truncate depth")
	}
	if r.Depth() != 6 {
		t.Error("truncate mutated original")
	}
	joined := tr.Clone().Append(r.Truncate(6).Clone())
	if joined.Depth() != 8 {
		t.Error("append depth")
	}
}

func TestRegisterStepDefensiveCopies(t *testing.T) {
	n := 4
	pi := perm.Identity(n)
	ops := make([]Op, n/2)
	r := NewRegister(n)
	r.AddStep(Step{Pi: pi, Ops: ops})
	pi[0], pi[1] = 1, 0
	ops[0] = OpSwap
	out := r.Eval([]int{1, 2, 3, 4})
	for i, v := range []int{1, 2, 3, 4} {
		if out[i] != v {
			t.Fatal("AddStep did not defensively copy its arguments")
		}
	}
}

// Conversion equivalence: register -> circuit.
func TestFromRegisterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 2 * (1 + rng.Intn(8)) // even n in [2,16]
		r := randomRegister(n, 1+rng.Intn(10), rng)
		circ, place := FromRegister(r)
		if circ.Depth() != r.Depth() || circ.Size() != r.Size() {
			t.Fatalf("conversion changed depth/size: %v vs %v", circ, r)
		}
		for rep := 0; rep < 10; rep++ {
			in := []int(perm.Random(n, rng))
			ro := r.Eval(in)
			co := circ.Eval(in)
			for reg := 0; reg < n; reg++ {
				if ro[reg] != co[place[reg]] {
					t.Fatalf("n=%d: outputs disagree at register %d", n, reg)
				}
			}
		}
	}
}

// Conversion equivalence: circuit -> register.
func TestToRegisterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		n := 2 * (1 + rng.Intn(8))
		c := randomNetwork(n, 1+rng.Intn(10), rng)
		reg, place := ToRegister(c)
		if reg.Depth() != c.Depth() || reg.Size() != c.Size() {
			t.Fatalf("conversion changed depth/size")
		}
		for rep := 0; rep < 10; rep++ {
			in := []int(perm.Random(n, rng))
			co := c.Eval(in)
			ro := reg.Eval(in)
			for r := 0; r < n; r++ {
				if ro[r] != co[place[r]] {
					t.Fatalf("n=%d: outputs disagree at register %d", n, r)
				}
			}
		}
	}
}

// Round trip: circuit -> register -> circuit preserves behaviour.
func TestConversionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := randomNetwork(8, 6, rng)
	reg, p1 := ToRegister(c)
	c2, p2 := FromRegister(reg)
	for rep := 0; rep < 20; rep++ {
		in := []int(perm.Random(8, rng))
		a := c.Eval(in)
		b := c2.Eval(in)
		// c.Eval(x)[p1[r]] == reg.Eval(x)[r] == c2.Eval(x)[p2[r]].
		for r := 0; r < 8; r++ {
			if a[p1[r]] != b[p2[r]] {
				t.Fatal("round-trip equivalence violated")
			}
		}
	}
}

// randomRegister builds a random register network with arbitrary
// permutations and op vectors.
func randomRegister(n, depth int, rng *rand.Rand) *Register {
	r := NewRegister(n)
	for i := 0; i < depth; i++ {
		ops := make([]Op, n/2)
		for k := range ops {
			ops[k] = Op(rng.Intn(4))
		}
		st := Step{Ops: ops}
		if rng.Intn(4) > 0 {
			st.Pi = perm.Random(n, rng)
		}
		r.AddStep(st)
	}
	return r
}
