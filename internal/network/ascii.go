package network

import (
	"bufio"
	"io"
	"sort"
)

// WriteASCII renders the network as a Knuth-style wire diagram: one row
// per wire running left to right, comparators drawn as vertical
// connectors. Comparators within one level whose wire spans overlap are
// staggered into separate character columns. The min endpoint is drawn
// 'o' and the max endpoint 'x' (so a standard ascending comparator has
// 'o' on the upper wire).
//
// Intended for small networks; the width grows with depth.
func (c *Network) WriteASCII(w io.Writer) error {
	n := c.n
	// Build the character grid column by column.
	var cols [][]rune // cols[k][wireRow]
	wireCol := func() []rune {
		col := make([]rune, 2*n-1)
		for i := range col {
			if i%2 == 0 {
				col[i] = '-'
			} else {
				col[i] = ' '
			}
		}
		return col
	}
	cols = append(cols, wireCol())
	for _, lv := range c.levels {
		// Stagger overlapping comparators: greedy interval coloring.
		sorted := CanonicalLevel(lv)
		type iv struct {
			lo, hi  int
			minAtLo bool
		}
		ivs := make([]iv, len(sorted))
		for i, cm := range sorted {
			lo, hi := cm.Min, cm.Max
			minAtLo := true
			if lo > hi {
				lo, hi = hi, lo
				minAtLo = false
			}
			ivs[i] = iv{lo, hi, minAtLo}
		}
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].lo < ivs[b].lo })
		var sub [][]iv
		for _, v := range ivs {
			placed := false
			for s := range sub {
				if sub[s][len(sub[s])-1].hi < v.lo {
					sub[s] = append(sub[s], v)
					placed = true
					break
				}
			}
			if !placed {
				sub = append(sub, []iv{v})
			}
		}
		for _, group := range sub {
			col := wireCol()
			for _, v := range group {
				for r := 2*v.lo + 1; r < 2*v.hi; r++ {
					col[r] = '|'
				}
				loMark, hiMark := 'o', 'x'
				if !v.minAtLo {
					loMark, hiMark = 'x', 'o'
				}
				col[2*v.lo] = loMark
				col[2*v.hi] = hiMark
			}
			cols = append(cols, col)
			cols = append(cols, wireCol())
		}
		// Level separator: a plain wire column (already appended).
	}
	bw := bufio.NewWriter(w)
	for r := 0; r < 2*n-1; r++ {
		for _, col := range cols {
			bw.WriteRune(col[r])
			if col[r] == '-' || col[r] == 'o' || col[r] == 'x' {
				bw.WriteRune('-')
			} else if col[r] == '|' {
				bw.WriteRune(' ')
			} else {
				bw.WriteRune(' ')
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
