// Package par provides the small parallel-execution runtime used by the
// evaluators and checkers in shufflenet: chunked parallel loops over
// index ranges, parallel map, and an early-exit parallel search.
//
// All functions degrade gracefully to sequential execution for small
// inputs, so callers can use them unconditionally. Worker counts default
// to GOMAXPROCS and are capped by the work available.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"shufflenet/internal/obs"
)

// minParallel is the smallest range worth splitting across goroutines;
// below this the scheduling overhead dominates.
const minParallel = 2048

// Runtime metrics: one or two atomic adds per parallel *invocation*
// (never per item), so the loops themselves stay untouched. The
// workers gauge records the fan-out of the most recent parallel
// invocation — on a loaded run it reads as effective parallelism.
var (
	metChunks     = obs.C("par.chunks")
	metSequential = obs.C("par.sequential")
	metItems      = obs.C("par.items")
	metWorkers    = obs.G("par.workers.last")
)

// Workers returns the effective worker count for a range of size n given
// a requested count (0 means GOMAXPROCS). The result is at least 1 and
// at most n.
func Workers(n, requested int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach invokes body(i) for every i in [0, n), splitting the range into
// contiguous chunks across up to workers goroutines (0 = GOMAXPROCS).
// body must be safe for concurrent invocation on distinct indices.
// Ranges smaller than the default grain (2048) run sequentially; use
// ForEachGrain when the per-item cost justifies a different threshold.
func ForEach(n, workers int, body func(i int)) {
	ForEachGrain(n, workers, minParallel, body)
}

// ForEachGrain is ForEach with an explicit grain size: ranges smaller
// than grain run sequentially, since below it goroutine scheduling
// costs more than the work. Callers with expensive bodies can pass a
// small grain (>= 1) to force parallelism on short ranges; callers
// with trivial bodies should keep it large.
func ForEachGrain(n, workers, grain int, body func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(n, workers)
	metItems.Add(int64(n))
	if w == 1 || n < grain {
		metSequential.Inc()
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	metChunks.Add(int64((n + chunk - 1) / chunk))
	metWorkers.Set(int64(w))
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForEachChunk invokes body(lo, hi) for a partition of [0, n) into
// contiguous half-open chunks, one per worker goroutine. Use this
// instead of ForEach when the body benefits from per-chunk state
// (e.g. scratch buffers).
func ForEachChunk(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(n, workers)
	metItems.Add(int64(n))
	if w == 1 {
		metSequential.Inc()
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	metChunks.Add(int64((n + chunk - 1) / chunk))
	metWorkers.Set(int64(w))
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Find searches [0, n) in parallel for an index satisfying pred and
// returns the smallest satisfying index found, or -1 if none satisfies
// pred. Workers abandon chunks that can no longer contain a smaller hit,
// so Find is effective for needle-in-haystack searches such as locating
// the first unsorted 0-1 input of a network.
func Find(n, workers int, pred func(i int) bool) int {
	if n <= 0 {
		return -1
	}
	w := Workers(n, workers)
	metItems.Add(int64(n))
	if w == 1 || n < minParallel {
		metSequential.Inc()
		for i := 0; i < n; i++ {
			if pred(i) {
				return i
			}
		}
		return -1
	}
	best := int64(n)
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	metChunks.Add(int64((n + chunk - 1) / chunk))
	metWorkers.Set(int64(w))
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if int64(i) >= atomic.LoadInt64(&best) {
					return // a smaller index already found
				}
				if pred(i) {
					for {
						cur := atomic.LoadInt64(&best)
						if int64(i) >= cur || atomic.CompareAndSwapInt64(&best, cur, int64(i)) {
							break
						}
					}
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if best == int64(n) {
		return -1
	}
	return int(best)
}

// SumInt64 computes sum over i in [0, n) of f(i) in parallel.
func SumInt64(n, workers int, f func(i int) int64) int64 {
	if n <= 0 {
		return 0
	}
	w := Workers(n, workers)
	metItems.Add(int64(n))
	if w == 1 || n < minParallel {
		metSequential.Inc()
		var s int64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	partial := make([]int64, w)
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	metChunks.Add(int64((n + chunk - 1) / chunk))
	metWorkers.Set(int64(w))
	slot := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			var s int64
			for i := lo; i < hi; i++ {
				s += f(i)
			}
			partial[slot] = s
		}(slot, lo, hi)
		slot++
	}
	wg.Wait()
	var total int64
	for _, s := range partial {
		total += s
	}
	return total
}

// Map applies f to every index of dst in parallel, storing the results.
func Map[T any](dst []T, workers int, f func(i int) T) {
	ForEach(len(dst), workers, func(i int) {
		dst[i] = f(i)
	})
}
