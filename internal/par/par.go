// Package par provides the small parallel-execution runtime used by the
// evaluators and checkers in shufflenet: chunked parallel loops over
// index ranges, parallel map, and an early-exit parallel search.
//
// All functions degrade gracefully to sequential execution for small
// inputs, so callers can use them unconditionally. Worker counts default
// to GOMAXPROCS and are capped by the work available.
//
// Every loop has a ctx-aware variant (ForEachCtx, ForEachChunkCtx,
// FindCtx, SumInt64Ctx) that observes cancellation once per chunk —
// never per item — so the hot inner loops pay nothing: with a
// non-cancelable context (ctx.Done() == nil, e.g. context.Background())
// the probe compiles down to a nil check and the execution layout is
// identical to the non-ctx entry points, which are thin
// context.Background() wrappers. On cancellation the variants return
// the context's error; workers abandon un-started chunks but finish the
// chunk they are in, so the residual work after a cancel is bounded by
// one chunk per worker.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"shufflenet/internal/obs"
)

// minParallel is the smallest range worth splitting across goroutines;
// below this the scheduling overhead dominates. It doubles as the
// default cancellation-probe stride: a cancelable loop checks its
// context every minParallel items.
const minParallel = 2048

// Runtime metrics: one or two atomic adds per parallel *invocation*
// plus one add/sub pair per worker *goroutine* (never per item), so the
// loops themselves stay untouched. The workers.last gauge records the
// fan-out of the most recent parallel invocation; workers.active counts
// goroutines currently inside a parallel region, so a live-telemetry
// sample of it reads as instantaneous occupancy.
var (
	metChunks     = obs.C("par.chunks")
	metSequential = obs.C("par.sequential")
	metItems      = obs.C("par.items")
	metCanceled   = obs.C("par.canceled")
	metWorkers    = obs.G("par.workers.last")
	metActive     = obs.G("par.workers.active")
)

// workerEnter/workerExit bracket each worker goroutine's life for the
// occupancy gauge.
func workerEnter() { metActive.Add(1) }
func workerExit()  { metActive.Add(-1) }

// Workers returns the effective worker count for a range of size n given
// a requested count (0 means GOMAXPROCS). The result is at least 1 and
// at most n.
func Workers(n, requested int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// canceled is the once-per-chunk cancellation probe: a single
// non-blocking channel receive when the context is cancelable, and a
// nil check compiled to nothing when it is not (done == nil for
// context.Background and context.TODO).
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// ForEach invokes body(i) for every i in [0, n), splitting the range into
// contiguous chunks across up to workers goroutines (0 = GOMAXPROCS).
// body must be safe for concurrent invocation on distinct indices.
// Ranges smaller than the default grain (2048) run sequentially; use
// ForEachGrain when the per-item cost justifies a different threshold.
func ForEach(n, workers int, body func(i int)) {
	forEachGrain(context.Background(), nil, n, workers, minParallel, body)
}

// ForEachCtx is ForEach with cancellation: it observes ctx once per
// chunk of 2048 items and returns ctx.Err() when the run was cut short
// (some indices unvisited), nil when every index was visited.
func ForEachCtx(ctx context.Context, n, workers int, body func(i int)) error {
	return forEachGrain(ctx, ctx.Done(), n, workers, minParallel, body)
}

// ForEachGrain is ForEach with an explicit grain size: ranges smaller
// than grain run sequentially, since below it goroutine scheduling
// costs more than the work. Callers with expensive bodies can pass a
// small grain (>= 1) to force parallelism on short ranges; callers
// with trivial bodies should keep it large.
func ForEachGrain(n, workers, grain int, body func(i int)) {
	forEachGrain(context.Background(), nil, n, workers, grain, body)
}

// ForEachGrainCtx is ForEachGrain with cancellation, probed once per
// grain-sized piece of each worker's range.
func ForEachGrainCtx(ctx context.Context, n, workers, grain int, body func(i int)) error {
	return forEachGrain(ctx, ctx.Done(), n, workers, grain, body)
}

func forEachGrain(ctx context.Context, done <-chan struct{}, n, workers, grain int, body func(i int)) error {
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers(n, workers)
	metItems.Add(int64(n))
	if w == 1 || n < grain {
		metSequential.Inc()
		for lo := 0; lo < n; lo += grain {
			if canceled(done) {
				metCanceled.Inc()
				return ctx.Err()
			}
			hi := min(lo+grain, n)
			for i := lo; i < hi; i++ {
				body(i)
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	metChunks.Add(int64((n + chunk - 1) / chunk))
	metWorkers.Set(int64(w))
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			workerEnter()
			defer workerExit()
			for ; lo < hi; lo += grain {
				if canceled(done) {
					return
				}
				stop := min(lo+grain, hi)
				for i := lo; i < stop; i++ {
					body(i)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if canceled(done) {
		metCanceled.Inc()
		return ctx.Err()
	}
	return nil
}

// ForEachChunk invokes body(lo, hi) for a partition of [0, n) into
// contiguous half-open chunks, one per worker goroutine. Use this
// instead of ForEach when the body benefits from per-chunk state
// (e.g. scratch buffers). Ranges smaller than the default grain (2048)
// run as a single body(0, n) call on the calling goroutine; use
// ForEachChunkGrain when few-but-heavy chunks justify a lower
// threshold.
func ForEachChunk(n, workers int, body func(lo, hi int)) {
	forEachChunk(context.Background(), nil, n, workers, minParallel, body)
}

// ForEachChunkGrain is ForEachChunk with an explicit sequential
// threshold: ranges smaller than grain run as one body(0, n) call.
// Callers whose chunks are individually expensive (e.g. per-slot
// Monte-Carlo batches) pass a small grain to keep parallelism on short
// ranges.
func ForEachChunkGrain(n, workers, grain int, body func(lo, hi int)) {
	forEachChunk(context.Background(), nil, n, workers, grain, body)
}

// ForEachChunkCtx is ForEachChunk with cancellation. With a cancelable
// context each worker's range is re-split into grain-sized (2048)
// pieces with a probe before each piece, so body runs O(n/2048) times
// instead of once per worker; bodies that amortize per-chunk state
// (scratch buffers, batched metric flushes) amortize it over a piece
// instead of a worker-range, which costs nothing measurable at that
// stride. With a non-cancelable context the layout is exactly
// ForEachChunk's. Returns ctx.Err() when chunks were abandoned.
func ForEachChunkCtx(ctx context.Context, n, workers int, body func(lo, hi int)) error {
	return forEachChunk(ctx, ctx.Done(), n, workers, minParallel, body)
}

// ForEachChunkGrainCtx is ForEachChunkGrain with cancellation, probed
// once per grain-sized piece.
func ForEachChunkGrainCtx(ctx context.Context, n, workers, grain int, body func(lo, hi int)) error {
	return forEachChunk(ctx, ctx.Done(), n, workers, grain, body)
}

func forEachChunk(ctx context.Context, done <-chan struct{}, n, workers, grain int, body func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers(n, workers)
	metItems.Add(int64(n))
	if w == 1 || n < grain {
		metSequential.Inc()
		if done == nil {
			body(0, n)
			return nil
		}
		for lo := 0; lo < n; lo += grain {
			if canceled(done) {
				metCanceled.Inc()
				return ctx.Err()
			}
			body(lo, min(lo+grain, n))
		}
		return nil
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	metChunks.Add(int64((n + chunk - 1) / chunk))
	metWorkers.Set(int64(w))
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			workerEnter()
			defer workerExit()
			if done == nil {
				body(lo, hi)
				return
			}
			for ; lo < hi; lo += grain {
				if canceled(done) {
					return
				}
				body(lo, min(lo+grain, hi))
			}
		}(lo, hi)
	}
	wg.Wait()
	if canceled(done) {
		metCanceled.Inc()
		return ctx.Err()
	}
	return nil
}

// Find searches [0, n) in parallel for an index satisfying pred and
// returns the smallest satisfying index found, or -1 if none satisfies
// pred. Workers abandon chunks that can no longer contain a smaller hit,
// so Find is effective for needle-in-haystack searches such as locating
// the first unsorted 0-1 input of a network.
func Find(n, workers int, pred func(i int) bool) int {
	i, _ := findCtx(context.Background(), nil, n, workers, pred)
	return i
}

// FindCtx is Find with cancellation, probed once per chunk of 2048
// candidates. On cancellation it returns the smallest hit observed so
// far (or -1) together with ctx.Err(); the returned index still
// satisfies pred but is no longer guaranteed minimal, since chunks
// below it may have been abandoned.
func FindCtx(ctx context.Context, n, workers int, pred func(i int) bool) (int, error) {
	return findCtx(ctx, ctx.Done(), n, workers, pred)
}

func findCtx(ctx context.Context, done <-chan struct{}, n, workers int, pred func(i int) bool) (int, error) {
	if n <= 0 {
		return -1, nil
	}
	w := Workers(n, workers)
	metItems.Add(int64(n))
	if w == 1 || n < minParallel {
		metSequential.Inc()
		for lo := 0; lo < n; lo += minParallel {
			if canceled(done) {
				metCanceled.Inc()
				return -1, ctx.Err()
			}
			hi := min(lo+minParallel, n)
			for i := lo; i < hi; i++ {
				if pred(i) {
					return i, nil
				}
			}
		}
		return -1, nil
	}
	best := int64(n)
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	metChunks.Add(int64((n + chunk - 1) / chunk))
	metWorkers.Set(int64(w))
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			workerEnter()
			defer workerExit()
			for ; lo < hi; lo += minParallel {
				if canceled(done) {
					return
				}
				stop := min(lo+minParallel, hi)
				for i := lo; i < stop; i++ {
					if int64(i) >= atomic.LoadInt64(&best) {
						return // a smaller index already found
					}
					if pred(i) {
						for {
							cur := atomic.LoadInt64(&best)
							if int64(i) >= cur || atomic.CompareAndSwapInt64(&best, cur, int64(i)) {
								break
							}
						}
						return
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	hit := atomic.LoadInt64(&best)
	if canceled(done) {
		metCanceled.Inc()
		if hit < int64(n) {
			return int(hit), ctx.Err()
		}
		return -1, ctx.Err()
	}
	if hit == int64(n) {
		return -1, nil
	}
	return int(hit), nil
}

// SumInt64 computes sum over i in [0, n) of f(i) in parallel.
func SumInt64(n, workers int, f func(i int) int64) int64 {
	s, _ := sumInt64(context.Background(), nil, n, workers, f)
	return s
}

// SumInt64Ctx is SumInt64 with cancellation, probed once per chunk of
// 2048 items. On cancellation it returns the partial sum accumulated
// so far (an undercount) together with ctx.Err().
func SumInt64Ctx(ctx context.Context, n, workers int, f func(i int) int64) (int64, error) {
	return sumInt64(ctx, ctx.Done(), n, workers, f)
}

func sumInt64(ctx context.Context, done <-chan struct{}, n, workers int, f func(i int) int64) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	w := Workers(n, workers)
	metItems.Add(int64(n))
	if w == 1 || n < minParallel {
		metSequential.Inc()
		var s int64
		for lo := 0; lo < n; lo += minParallel {
			if canceled(done) {
				metCanceled.Inc()
				return s, ctx.Err()
			}
			hi := min(lo+minParallel, n)
			for i := lo; i < hi; i++ {
				s += f(i)
			}
		}
		return s, nil
	}
	partial := make([]int64, w)
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	metChunks.Add(int64((n + chunk - 1) / chunk))
	metWorkers.Set(int64(w))
	slot := 0
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			workerEnter()
			defer workerExit()
			var s int64
			for ; lo < hi; lo += minParallel {
				if canceled(done) {
					break
				}
				stop := min(lo+minParallel, hi)
				for i := lo; i < stop; i++ {
					s += f(i)
				}
			}
			partial[slot] = s
		}(slot, lo, hi)
		slot++
	}
	wg.Wait()
	var total int64
	for _, s := range partial {
		total += s
	}
	if canceled(done) {
		metCanceled.Inc()
		return total, ctx.Err()
	}
	return total, nil
}

// Map applies f to every index of dst in parallel, storing the results.
func Map[T any](dst []T, workers int, f func(i int) T) {
	ForEach(len(dst), workers, func(i int) {
		dst[i] = f(i)
	})
}
