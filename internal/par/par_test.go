package par

import (
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(10, 4) != 4 {
		t.Error("requested workers not honored")
	}
	if Workers(2, 100) != 2 {
		t.Error("workers not capped by n")
	}
	if Workers(100, 0) < 1 {
		t.Error("default workers < 1")
	}
	if Workers(0, 0) != 1 {
		t.Error("empty range should still report 1 worker")
	}
}

func TestForEachCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, minParallel - 1, minParallel, 3*minParallel + 5} {
		counts := make([]int32, n)
		ForEach(n, 0, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForEachWorkerCounts(t *testing.T) {
	const n = 3 * minParallel
	for _, w := range []int{1, 2, 3, 16, 1000} {
		var sum int64
		ForEach(n, w, func(i int) { atomic.AddInt64(&sum, int64(i)) })
		want := int64(n) * int64(n-1) / 2
		if sum != want {
			t.Fatalf("workers=%d: sum=%d want %d", w, sum, want)
		}
	}
}

func TestForEachChunkPartitions(t *testing.T) {
	for _, n := range []int{0, 1, 10, 1000} {
		for _, w := range []int{1, 3, 7} {
			covered := make([]int32, n)
			ForEachChunk(n, w, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d covered %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestFindSmallestHit(t *testing.T) {
	const n = 4 * minParallel
	targets := []int{0, 1, minParallel + 3, n - 1}
	for _, target := range targets {
		got := Find(n, 8, func(i int) bool { return i >= target })
		if got != target {
			t.Errorf("Find returned %d, want %d", got, target)
		}
	}
}

func TestFindNoHit(t *testing.T) {
	if got := Find(4*minParallel, 8, func(i int) bool { return false }); got != -1 {
		t.Errorf("Find returned %d on no-hit input", got)
	}
	if got := Find(0, 8, func(i int) bool { return true }); got != -1 {
		t.Errorf("Find on empty range returned %d", got)
	}
}

func TestFindSequentialSmall(t *testing.T) {
	if got := Find(10, 1, func(i int) bool { return i == 7 }); got != 7 {
		t.Errorf("sequential Find = %d", got)
	}
}

func TestSumInt64(t *testing.T) {
	for _, n := range []int{0, 1, 100, 3 * minParallel} {
		for _, w := range []int{1, 4} {
			got := SumInt64(n, w, func(i int) int64 { return int64(i) })
			want := int64(n) * int64(n-1) / 2
			if got != want {
				t.Fatalf("SumInt64(n=%d,w=%d) = %d, want %d", n, w, got, want)
			}
		}
	}
}

func TestMap(t *testing.T) {
	dst := make([]int, 5000)
	Map(dst, 4, func(i int) int { return i * 2 })
	for i, v := range dst {
		if v != i*2 {
			t.Fatalf("Map wrong at %d: %d", i, v)
		}
	}
}

func TestForEachGrain(t *testing.T) {
	for _, n := range []int{0, 1, 100, 3000} {
		for _, grain := range []int{1, 64, 5000} {
			var hits = make([]int32, n)
			ForEachGrain(n, 4, grain, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d grain=%d: index %d visited %d times", n, grain, i, h)
				}
			}
		}
	}
}
