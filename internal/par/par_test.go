package par

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(10, 4) != 4 {
		t.Error("requested workers not honored")
	}
	if Workers(2, 100) != 2 {
		t.Error("workers not capped by n")
	}
	if Workers(100, 0) < 1 {
		t.Error("default workers < 1")
	}
	if Workers(0, 0) != 1 {
		t.Error("empty range should still report 1 worker")
	}
}

func TestForEachCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, minParallel - 1, minParallel, 3*minParallel + 5} {
		counts := make([]int32, n)
		ForEach(n, 0, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForEachWorkerCounts(t *testing.T) {
	const n = 3 * minParallel
	for _, w := range []int{1, 2, 3, 16, 1000} {
		var sum int64
		ForEach(n, w, func(i int) { atomic.AddInt64(&sum, int64(i)) })
		want := int64(n) * int64(n-1) / 2
		if sum != want {
			t.Fatalf("workers=%d: sum=%d want %d", w, sum, want)
		}
	}
}

func TestForEachChunkPartitions(t *testing.T) {
	for _, n := range []int{0, 1, 10, 1000} {
		for _, w := range []int{1, 3, 7} {
			covered := make([]int32, n)
			ForEachChunk(n, w, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d covered %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestFindSmallestHit(t *testing.T) {
	const n = 4 * minParallel
	targets := []int{0, 1, minParallel + 3, n - 1}
	for _, target := range targets {
		got := Find(n, 8, func(i int) bool { return i >= target })
		if got != target {
			t.Errorf("Find returned %d, want %d", got, target)
		}
	}
}

func TestFindNoHit(t *testing.T) {
	if got := Find(4*minParallel, 8, func(i int) bool { return false }); got != -1 {
		t.Errorf("Find returned %d on no-hit input", got)
	}
	if got := Find(0, 8, func(i int) bool { return true }); got != -1 {
		t.Errorf("Find on empty range returned %d", got)
	}
}

func TestFindSequentialSmall(t *testing.T) {
	if got := Find(10, 1, func(i int) bool { return i == 7 }); got != 7 {
		t.Errorf("sequential Find = %d", got)
	}
}

func TestSumInt64(t *testing.T) {
	for _, n := range []int{0, 1, 100, 3 * minParallel} {
		for _, w := range []int{1, 4} {
			got := SumInt64(n, w, func(i int) int64 { return int64(i) })
			want := int64(n) * int64(n-1) / 2
			if got != want {
				t.Fatalf("SumInt64(n=%d,w=%d) = %d, want %d", n, w, got, want)
			}
		}
	}
}

func TestMap(t *testing.T) {
	dst := make([]int, 5000)
	Map(dst, 4, func(i int) int { return i * 2 })
	for i, v := range dst {
		if v != i*2 {
			t.Fatalf("Map wrong at %d: %d", i, v)
		}
	}
}

func TestForEachGrain(t *testing.T) {
	for _, n := range []int{0, 1, 100, 3000} {
		for _, grain := range []int{1, 64, 5000} {
			var hits = make([]int32, n)
			ForEachGrain(n, 4, grain, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d grain=%d: index %d visited %d times", n, grain, i, h)
				}
			}
		}
	}
}

// TestForEachChunkSmallRangeSequential pins the grain fallback: a tiny
// range must run as exactly one body(0, n) call on the calling
// goroutine instead of fanning out one goroutine per item (the
// historical bug: a 2-element range spawned up to GOMAXPROCS
// goroutines).
func TestForEachChunkSmallRangeSequential(t *testing.T) {
	for _, n := range []int{1, 2, 10, minParallel - 1} {
		var calls [][2]int
		ForEachChunk(n, 8, func(lo, hi int) {
			// No synchronization on purpose: if this ever runs on more
			// than one goroutine, the race detector flags it.
			calls = append(calls, [2]int{lo, hi})
		})
		if len(calls) != 1 || calls[0] != [2]int{0, n} {
			t.Fatalf("n=%d: want one sequential chunk [0,%d), got %v", n, n, calls)
		}
	}
}

// TestForEachChunkGrainKeepsParallelism verifies the explicit-grain
// escape hatch: few-but-heavy chunks (grain 1) still partition across
// workers.
func TestForEachChunkGrainKeepsParallelism(t *testing.T) {
	const n = 4
	covered := make([]int32, n)
	var chunks int32
	ForEachChunkGrain(n, n, 1, func(lo, hi int) {
		atomic.AddInt32(&chunks, 1)
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	if chunks != n {
		t.Fatalf("grain=1: want %d chunks, got %d", n, chunks)
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestCtxVariantsMatchPlainOnBackground(t *testing.T) {
	ctx := context.Background()
	const n = 3*minParallel + 7
	var sum int64
	if err := ForEachCtx(ctx, n, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) }); err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * int64(n-1) / 2; sum != want {
		t.Fatalf("ForEachCtx sum = %d, want %d", sum, want)
	}
	got, err := FindCtx(ctx, n, 4, func(i int) bool { return i >= minParallel })
	if err != nil || got != minParallel {
		t.Fatalf("FindCtx = (%d, %v)", got, err)
	}
	s, err := SumInt64Ctx(ctx, n, 4, func(i int) int64 { return 1 })
	if err != nil || s != int64(n) {
		t.Fatalf("SumInt64Ctx = (%d, %v)", s, err)
	}
	covered := make([]int32, n)
	if err := ForEachChunkCtx(ctx, n, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("ForEachChunkCtx: index %d covered %d times", i, c)
		}
	}
}

func TestCtxVariantsCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	body := func(i int) { atomic.AddInt64(&ran, 1) }
	if err := ForEachCtx(ctx, 4*minParallel, 4, body); err != context.Canceled {
		t.Fatalf("ForEachCtx err = %v", err)
	}
	if err := ForEachChunkCtx(ctx, 4*minParallel, 4, func(lo, hi int) { atomic.AddInt64(&ran, int64(hi-lo)) }); err != context.Canceled {
		t.Fatalf("ForEachChunkCtx err = %v", err)
	}
	if i, err := FindCtx(ctx, 4*minParallel, 4, func(i int) bool { atomic.AddInt64(&ran, 1); return false }); err != context.Canceled || i != -1 {
		t.Fatalf("FindCtx = (%d, %v)", i, err)
	}
	if s, err := SumInt64Ctx(ctx, 4*minParallel, 4, func(i int) int64 { atomic.AddInt64(&ran, 1); return 1 }); err != context.Canceled || s != 0 {
		t.Fatalf("SumInt64Ctx = (%d, %v)", s, err)
	}
	if ran != 0 {
		t.Fatalf("canceled context still ran %d items", ran)
	}
}

// TestForEachCtxCancelPrompt is the promptness contract: after cancel,
// each worker finishes at most the grain-sized piece it is in and
// abandons the rest, so the residual work is under two chunks per
// worker (satellite requirement; runs under -race in make check-ctx).
func TestForEachCtxCancelPrompt(t *testing.T) {
	const (
		workers = 4
		grain   = 32
		n       = 1 << 16
	)
	ctx, cancel := context.WithCancel(context.Background())
	var processed int64
	err := ForEachGrainCtx(ctx, n, workers, grain, func(i int) {
		if atomic.AddInt64(&processed, 1) == 1 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each worker was at most mid-piece when the cancel landed and may
	// start at most one more piece before its next probe observes it.
	limit := int64(2 * workers * grain)
	if got := atomic.LoadInt64(&processed); got > limit {
		t.Fatalf("processed %d items after cancel, want <= %d (<2 chunks/worker)", got, limit)
	}
}

// TestFindCtxCancelPrompt: same promptness contract for the early-exit
// search (probe stride is minParallel there).
func TestFindCtxCancelPrompt(t *testing.T) {
	const (
		workers = 4
		n       = 1 << 20
	)
	ctx, cancel := context.WithCancel(context.Background())
	var processed int64
	got, err := FindCtx(ctx, n, workers, func(i int) bool {
		if atomic.AddInt64(&processed, 1) == 1 {
			cancel()
		}
		return false
	})
	if err != context.Canceled || got != -1 {
		t.Fatalf("FindCtx = (%d, %v), want (-1, context.Canceled)", got, err)
	}
	limit := int64(2 * workers * minParallel)
	if p := atomic.LoadInt64(&processed); p > limit {
		t.Fatalf("processed %d candidates after cancel, want <= %d (<2 chunks/worker)", p, limit)
	}
}

// TestFindCtxCancelKeepsHit: a hit found before the cancel is still
// returned (partial result), alongside the error.
func TestFindCtxCancelKeepsHit(t *testing.T) {
	const n = 1 << 18
	ctx, cancel := context.WithCancel(context.Background())
	got, err := FindCtx(ctx, n, 4, func(i int) bool {
		if i == 3 {
			cancel()
			return true
		}
		return false
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got < 0 {
		t.Skip("cancel observed before the hit was recorded (legal schedule)")
	}
	if got != 3 {
		t.Fatalf("hit = %d, want 3", got)
	}
}
