package par

import "fmt"

// ErrCanceled is the typed cancellation error returned by the
// ctx-aware checkers and the adversary (sortcheck.ZeroOneCtx,
// halver.EpsilonCtx, core.Theorem41Ctx, ...) when their context is
// canceled or its deadline expires. Instead of discarding the work
// done so far it carries the partial progress, so CLIs can journal
// "how far we got" and print a truncated-but-honest summary.
//
// Unwrap returns the underlying context error, so
// errors.Is(err, context.DeadlineExceeded) distinguishes a timeout
// from an interrupt, and errors.As(err, &ce) recovers the progress.
type ErrCanceled struct {
	// Op names the operation that was cut short (e.g. "core.Theorem41").
	Op string
	// Cause is the context's error: context.Canceled or
	// context.DeadlineExceeded.
	Cause error
	// BlocksDone counts adversary blocks fully completed before the
	// cancellation was observed (0 for the checkers).
	BlocksDone int
	// MasksChecked counts 0-1 input masks settled before the
	// cancellation was observed — a lower bound, since in-flight
	// chunks are abandoned without reporting (0 for the adversary).
	MasksChecked int64
	// Survivors is the adversary's current surviving-set size |D|
	// (the result of the last completed block; 0 for the checkers).
	Survivors int
}

func (e *ErrCanceled) Error() string {
	return fmt.Sprintf("%s canceled: %v (blocks_done=%d masks_checked=%d survivors=%d)",
		e.Op, e.Cause, e.BlocksDone, e.MasksChecked, e.Survivors)
}

// Unwrap exposes the context error for errors.Is.
func (e *ErrCanceled) Unwrap() error { return e.Cause }

// Fields returns the journal-ready partial-progress map recorded by
// the CLIs under the entry's "partial" key. The schema is fixed (all
// fields always present) so journal consumers need no case analysis.
func (e *ErrCanceled) Fields() map[string]any {
	cause := ""
	if e.Cause != nil {
		cause = e.Cause.Error()
	}
	return map[string]any{
		"op":            e.Op,
		"cause":         cause,
		"blocks_done":   e.BlocksDone,
		"masks_checked": e.MasksChecked,
		"survivors":     e.Survivors,
	}
}
