package netbuild

import (
	"fmt"

	"shufflenet/internal/network"
)

// This file holds the curated small-width sorting networks of minimal
// depth, the defaults behind cmd/netgen and the generated sortkernels
// package. Depth minimality is settled for all n <= 16: classically for
// n <= 8 (Knuth, TAOCP vol. 3 §5.3.4), by Parberry (1991) for n = 9,
// 10, and by Bundala & Závodný ("Optimal Sorting Networks", LATA 2014)
// for n = 11..16.
//
// Provenance of the comparator tables: the widths 2, 3, 4 and 8 are
// the classical textbook networks; 5, 6, 7, 9, 10 and 11 follow the
// published best-known depth-optimal networks (see the survey list of
// B. Dobbelaere, "Smallest and fastest sorting networks for a given
// number of inputs"); the remaining widths were found by an offline
// SorterHunter-style local search over fixed-depth layered matchings
// run for this repository. Every table, whatever its origin, is
// exhaustively re-verified against the 0-1 principle on the bit-sliced
// kernel by TestDepthOptimalSortsExhaustively, so none of the entries
// is trusted — only checked.

// OptimalDepths[n] is the proven minimal depth of an n-input sorting
// network, for 1 <= n <= 16.
var OptimalDepths = [17]int{0, 0, 1, 3, 3, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 9, 9}

// depthOptimal[n] holds the curated comparator tables, level by level.
var depthOptimal = map[int][][][2]int{
	2: {
		{{0, 1}},
	},
	3: {
		{{0, 2}},
		{{0, 1}},
		{{1, 2}},
	},
	4: {
		{{0, 2}, {1, 3}},
		{{0, 1}, {2, 3}},
		{{1, 2}},
	},
	5: {
		{{0, 3}, {1, 4}},
		{{0, 2}, {1, 3}},
		{{0, 1}, {2, 4}},
		{{1, 2}, {3, 4}},
		{{2, 3}},
	},
	6: {
		{{0, 5}, {1, 3}, {2, 4}},
		{{1, 2}, {3, 4}},
		{{0, 3}, {2, 5}},
		{{0, 1}, {2, 3}, {4, 5}},
		{{1, 2}, {3, 4}},
	},
	7: {
		{{0, 6}, {2, 3}, {4, 5}},
		{{0, 2}, {1, 4}, {3, 6}},
		{{0, 1}, {2, 5}, {3, 4}},
		{{1, 2}, {4, 6}},
		{{2, 3}, {4, 5}},
		{{1, 2}, {3, 4}, {5, 6}},
	},
	8: {
		{{0, 2}, {1, 3}, {4, 6}, {5, 7}},
		{{0, 4}, {1, 5}, {2, 6}, {3, 7}},
		{{0, 1}, {2, 3}, {4, 5}, {6, 7}},
		{{2, 4}, {3, 5}},
		{{1, 4}, {3, 6}},
		{{1, 2}, {3, 4}, {5, 6}},
	},
	9: {
		{{0, 3}, {1, 7}, {2, 5}, {4, 8}},
		{{0, 7}, {2, 4}, {3, 8}, {5, 6}},
		{{0, 2}, {1, 3}, {4, 5}, {7, 8}},
		{{1, 4}, {3, 6}, {5, 7}},
		{{0, 1}, {2, 4}, {3, 5}, {6, 8}},
		{{2, 3}, {4, 5}, {6, 7}},
		{{1, 2}, {3, 4}, {5, 6}},
	},
	10: {
		{{0, 1}, {2, 5}, {3, 6}, {4, 7}, {8, 9}},
		{{0, 6}, {1, 8}, {2, 4}, {3, 9}, {5, 7}},
		{{0, 2}, {1, 3}, {4, 5}, {6, 8}, {7, 9}},
		{{0, 1}, {2, 7}, {3, 5}, {4, 6}, {8, 9}},
		{{1, 2}, {3, 4}, {5, 6}, {7, 8}},
		{{1, 3}, {2, 4}, {5, 7}, {6, 8}},
		{{2, 3}, {4, 5}, {6, 7}},
	},
	11: {
		{{0, 9}, {1, 6}, {2, 4}, {3, 7}, {5, 8}},
		{{0, 1}, {3, 5}, {4, 10}, {6, 9}, {7, 8}},
		{{1, 3}, {2, 5}, {4, 7}, {8, 10}},
		{{0, 4}, {1, 2}, {3, 7}, {5, 9}, {6, 8}},
		{{0, 1}, {2, 6}, {4, 5}, {7, 8}, {9, 10}},
		{{2, 4}, {3, 6}, {5, 7}, {8, 9}},
		{{1, 2}, {3, 4}, {5, 6}, {7, 8}},
		{{2, 3}, {4, 5}, {6, 7}},
	},
	12: {
		{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}},
		{{0, 6}, {1, 7}, {2, 9}, {3, 8}, {4, 10}, {5, 11}},
		{{0, 11}, {1, 3}, {2, 5}, {4, 7}, {6, 9}, {8, 10}},
		{{0, 2}, {1, 4}, {3, 5}, {6, 8}, {7, 10}, {9, 11}},
		{{0, 1}, {2, 4}, {3, 8}, {7, 9}, {10, 11}},
		{{1, 2}, {3, 6}, {4, 7}, {5, 8}, {9, 10}},
		{{2, 3}, {4, 6}, {5, 7}, {8, 9}},
		{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}},
	},
	// 13..15 are derived from the width-16 table below by wire
	// elimination (pin +inf on the top wire: every comparator touching
	// it is a no-op and can be dropped, leaving a sorter on one fewer
	// wire at no extra depth) followed by greedy redundant-comparator
	// pruning.
	13: {
		{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}},
		{{0, 2}, {1, 3}, {4, 6}, {5, 7}, {8, 10}, {9, 11}},
		{{0, 4}, {1, 6}, {2, 5}, {3, 7}, {8, 12}},
		{{0, 8}, {1, 9}, {2, 10}, {3, 11}, {4, 12}},
		{{1, 2}, {3, 12}, {4, 8}, {5, 9}, {6, 10}, {7, 11}},
		{{2, 8}, {3, 10}, {5, 12}, {6, 9}},
		{{1, 2}, {3, 8}, {5, 6}, {7, 12}, {9, 10}},
		{{2, 4}, {3, 5}, {6, 8}, {7, 9}, {10, 12}},
		{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}},
	},
	14: {
		{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}, {12, 13}},
		{{0, 2}, {1, 3}, {4, 6}, {5, 7}, {8, 10}, {9, 11}},
		{{0, 4}, {1, 6}, {2, 5}, {3, 7}, {8, 12}, {10, 13}},
		{{0, 8}, {1, 9}, {2, 10}, {3, 11}, {4, 12}, {5, 13}},
		{{1, 2}, {3, 12}, {4, 8}, {5, 9}, {6, 10}, {7, 11}},
		{{2, 8}, {3, 10}, {5, 12}, {6, 9}, {7, 13}},
		{{1, 2}, {3, 8}, {5, 6}, {7, 12}, {9, 10}},
		{{2, 4}, {3, 5}, {6, 8}, {7, 9}, {10, 12}, {11, 13}},
		{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}},
	},
	15: {
		{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}, {12, 13}},
		{{0, 2}, {1, 3}, {4, 6}, {5, 7}, {8, 10}, {9, 11}, {12, 14}},
		{{0, 4}, {1, 6}, {2, 5}, {3, 7}, {8, 12}, {9, 14}, {10, 13}},
		{{0, 8}, {1, 9}, {2, 10}, {3, 11}, {4, 12}, {5, 13}, {6, 14}},
		{{1, 2}, {3, 12}, {4, 8}, {5, 9}, {6, 10}, {7, 11}, {13, 14}},
		{{2, 8}, {3, 10}, {5, 12}, {6, 9}, {7, 13}},
		{{1, 2}, {3, 8}, {5, 6}, {7, 12}, {9, 10}, {13, 14}},
		{{2, 4}, {3, 5}, {6, 8}, {7, 9}, {10, 12}, {11, 13}},
		{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}, {13, 14}},
	},
	// Found by the offline local search seeded with the first layers of
	// Green's 16-sorter; meets the proven optimal depth 9 (Green's
	// classic network has depth 10).
	16: {
		{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}, {12, 13}, {14, 15}},
		{{0, 2}, {1, 3}, {4, 6}, {5, 7}, {8, 10}, {9, 11}, {12, 14}, {13, 15}},
		{{0, 4}, {1, 6}, {2, 5}, {3, 7}, {8, 12}, {9, 14}, {10, 13}, {11, 15}},
		{{0, 8}, {1, 9}, {2, 10}, {3, 11}, {4, 12}, {5, 13}, {6, 14}, {7, 15}},
		{{1, 2}, {3, 12}, {4, 8}, {5, 9}, {6, 10}, {7, 11}, {13, 14}},
		{{2, 8}, {3, 10}, {5, 12}, {6, 9}, {7, 13}},
		{{1, 2}, {3, 8}, {5, 6}, {7, 12}, {9, 10}, {13, 14}},
		{{0, 1}, {2, 4}, {3, 5}, {6, 8}, {7, 9}, {10, 12}, {11, 13}, {14, 15}},
		{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}, {13, 14}},
	},
}

// DepthOptimal returns the curated depth-optimal sorting network on n
// wires, 2 <= n <= 16. It panics outside that range; use BestKnown for
// a total construction.
func DepthOptimal(n int) *network.Network {
	layers, ok := depthOptimal[n]
	if !ok {
		panic(fmt.Sprintf("netbuild.DepthOptimal: no curated network for n = %d (want 2..16)", n))
	}
	c := network.New(n)
	for _, lv := range layers {
		level := make(network.Level, 0, len(lv))
		for _, p := range lv {
			level = append(level, network.Comparator{Min: p[0], Max: p[1]})
		}
		c.AddLevel(level)
	}
	return c
}

// BestKnown returns the best construction this package knows for n
// wires: the curated depth-optimal network for 2 <= n <= 16, Batcher's
// merge-exchange network above that. It panics for n < 2.
func BestKnown(n int) *network.Network {
	if n >= 2 && n <= 16 {
		if _, ok := depthOptimal[n]; ok {
			return DepthOptimal(n)
		}
	}
	return MergeExchange(n)
}
