package netbuild

import (
	"testing"

	"shufflenet/internal/sortcheck"
)

// Every curated table must be a valid network that sorts all 2^n 0-1
// inputs (0-1 principle, bit-sliced kernel) — the tables are data, so
// nothing short of exhaustive verification is trusted.
func TestDepthOptimalSortsExhaustively(t *testing.T) {
	for n := range depthOptimal {
		c := DepthOptimal(n)
		if err := c.Validate(); err != nil {
			t.Fatalf("DepthOptimal(%d): invalid network: %v", n, err)
		}
		if ok, witness := sortcheck.ZeroOne(n, c, 0); !ok {
			t.Errorf("DepthOptimal(%d) does not sort; 0-1 witness %v", n, witness)
		}
	}
}

// The curated networks must meet the proven optimal depths — that is
// the whole point of the table.
func TestDepthOptimalDepths(t *testing.T) {
	for n := range depthOptimal {
		c := DepthOptimal(n)
		if got, want := c.Depth(), OptimalDepths[n]; got != want {
			t.Errorf("DepthOptimal(%d): depth %d, proven optimum %d", n, got, want)
		}
	}
}

func TestBestKnown(t *testing.T) {
	for n := 2; n <= 20; n++ {
		c := BestKnown(n)
		if c.Wires() != n {
			t.Fatalf("BestKnown(%d): %d wires", n, c.Wires())
		}
		if n <= sortcheck.MaxZeroOneWires {
			if ok, witness := sortcheck.ZeroOne(n, c, 0); !ok {
				t.Errorf("BestKnown(%d) does not sort; witness %v", n, witness)
			}
		}
	}
}
