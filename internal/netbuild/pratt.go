package netbuild

import (
	"sort"

	"shufflenet/internal/network"
)

// PrattIncrements returns the 2^p·3^q increments below n in decreasing
// order — the increment sequence of Pratt's O(lg²n)-depth Shellsort
// network. The paper cites Cypher's Ω(lg²n/lg lg n) lower bound for
// Shellsort-based sorting networks with decreasing increments; Pratt's
// construction is the classical near-matching upper bound in that
// class, included here as the Shellsort-class baseline.
func PrattIncrements(n int) []int {
	var incs []int
	for p := 1; p < n; p *= 2 {
		for q := p; q < n; q *= 3 {
			incs = append(incs, q)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(incs)))
	return incs
}

// Pratt returns Pratt's sorting network on n wires: for every increment
// h = 2^p·3^q < n in decreasing order, one round of compare-exchanges
// (i, i+h), scheduled into two levels (even and odd multiples of h) so
// that no wire is used twice per level. Depth Θ(lg²n), size Θ(n lg²n).
// Works for any n >= 2.
//
// Correctness rests on Pratt's theorem: after processing increments 2h
// and 3h, a single round at increment h restores h-ordering, so the
// final round at h = 1 leaves the output sorted. The tests verify this
// via the 0-1 principle.
func Pratt(n int) *network.Network {
	if n < 2 {
		panic("netbuild.Pratt: n < 2")
	}
	c := network.New(n)
	for _, h := range PrattIncrements(n) {
		// Chains i, i+h, i+2h conflict on shared wires; split the round
		// by the parity of i/h.
		for par := 0; par < 2; par++ {
			lv := network.Level{}
			for i := 0; i+h < n; i++ {
				if (i/h)%2 == par {
					lv = append(lv, network.Comparator{Min: i, Max: i + h})
				}
			}
			if len(lv) > 0 {
				c.AddLevel(lv)
			}
		}
	}
	return c
}
