package netbuild

import (
	"fmt"

	"shufflenet/internal/bits"
	"shufflenet/internal/network"
)

// MergeExchange returns Batcher's merge-exchange sorting network for
// ANY n >= 2 (Knuth, TAOCP vol. 3, Algorithm 5.2.2M) — the
// arbitrary-width counterpart of OddEvenMergeSort, with depth
// t(t+1)/2 for t = ceil(lg n). Each (p, q, r, d) round of the
// algorithm is one level (its comparators are disjoint by
// construction).
func MergeExchange(n int) *network.Network {
	if n < 2 {
		panic(fmt.Sprintf("netbuild.MergeExchange: n = %d < 2", n))
	}
	t := bits.CeilLg(n)
	c := network.New(n)
	for p := 1 << uint(t-1); p > 0; p >>= 1 {
		q := 1 << uint(t-1)
		r := 0
		d := p
		for {
			lv := network.Level{}
			for i := 0; i+d < n; i++ {
				if i&p == r {
					lv = append(lv, network.Comparator{Min: i, Max: i + d})
				}
			}
			c.AddLevel(lv)
			if q == p {
				break
			}
			d = q - p
			q >>= 1
			r = p
		}
	}
	return c
}
