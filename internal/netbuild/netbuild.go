// Package netbuild constructs the classical comparator networks the
// paper uses as reference points: Batcher's bitonic and odd-even
// mergesort networks (the Θ(lg²n) upper bound of Section 1), the
// odd-even transposition network (the Θ(n) baseline), and assorted
// building blocks (bitonic mergers, half-cleaners, random levels).
//
// All constructions are in the circuit model; see internal/shuffle for
// the shuffle-based register-model realizations.
package netbuild

import (
	"fmt"
	"math/rand"

	"shufflenet/internal/bits"
	"shufflenet/internal/network"
	"shufflenet/internal/perm"
)

// Bitonic returns Batcher's bitonic sorting network on n = 2^d wires,
// with depth d(d+1)/2 and size n·d(d+1)/4.
//
// Stage k = 2, 4, ..., n sorts runs of length k into alternating
// directions, so that stage 2k sees bitonic runs; each stage is a
// bitonic merger of depth lg k.
func Bitonic(n int) *network.Network {
	d := bits.Lg(n)
	c := network.New(n)
	for s := 1; s <= d; s++ {
		k := 1 << uint(s) // run length after this stage
		for t := s - 1; t >= 0; t-- {
			j := 1 << uint(t) // comparison distance
			lv := make(network.Level, 0, n/2)
			for i := 0; i < n; i++ {
				l := i ^ j
				if l <= i {
					continue // handle each pair once, from its lower end
				}
				if i&k == 0 {
					lv = append(lv, network.Comparator{Min: i, Max: l})
				} else {
					lv = append(lv, network.Comparator{Min: l, Max: i})
				}
			}
			c.AddLevel(lv)
		}
	}
	return c
}

// BitonicMerger returns the depth-lg n network that sorts any bitonic
// sequence on n = 2^d wires (ascending output). It is the final stage
// of Bitonic with all comparators ascending.
func BitonicMerger(n int) *network.Network {
	d := bits.Lg(n)
	c := network.New(n)
	for t := d - 1; t >= 0; t-- {
		j := 1 << uint(t)
		lv := make(network.Level, 0, n/2)
		for i := 0; i < n; i++ {
			if i&j == 0 {
				lv = append(lv, network.Comparator{Min: i, Max: i | j})
			}
		}
		c.AddLevel(lv)
	}
	return c
}

// HalfCleaner returns the single level comparing wire i with wire
// i + n/2 for all i < n/2: the first level of a bitonic merger. Applied
// to a bitonic input it leaves every element of the bottom half no
// larger than every element of the top half.
func HalfCleaner(n int) *network.Network {
	if !bits.IsPow2(n) {
		panic(fmt.Sprintf("netbuild.HalfCleaner: n = %d not a power of two", n))
	}
	c := network.New(n)
	lv := make(network.Level, 0, n/2)
	for i := 0; i < n/2; i++ {
		lv = append(lv, network.Comparator{Min: i, Max: i + n/2})
	}
	return c.AddLevel(lv)
}

// OddEvenMergeSort returns Batcher's odd-even mergesort network on
// n = 2^d wires, with depth d(d+1)/2 and size n(d² − d + 4)/4 − 1
// (slightly smaller than Bitonic).
func OddEvenMergeSort(n int) *network.Network {
	bits.Lg(n) // validate power of two
	c := network.New(n)
	for p := 1; p < n; p *= 2 {
		for k := p; k >= 1; k /= 2 {
			lv := network.Level{}
			for j := k % p; j+k < n; j += 2 * k {
				for i := 0; i < k && i+j+k < n; i++ {
					if (i+j)/(2*p) == (i+j+k)/(2*p) {
						lv = append(lv, network.Comparator{Min: i + j, Max: i + j + k})
					}
				}
			}
			c.AddLevel(lv)
		}
	}
	return c
}

// OddEvenTransposition returns the n-round odd-even transposition
// ("brick wall") sorting network on n wires: depth n, size ~n²/2.
// Works for any n >= 2, not only powers of two.
func OddEvenTransposition(n int) *network.Network {
	if n < 2 {
		panic(fmt.Sprintf("netbuild.OddEvenTransposition: n = %d < 2", n))
	}
	c := network.New(n)
	for round := 0; round < n; round++ {
		lv := network.Level{}
		for i := round % 2; i+1 < n; i += 2 {
			lv = append(lv, network.Comparator{Min: i, Max: i + 1})
		}
		c.AddLevel(lv)
	}
	return c
}

// Insertion returns the triangle-shaped insertion sorting network on n
// wires: depth 2n − 3, size n(n−1)/2. Equivalent to bubble sort as a
// network (Knuth 5.3.4); included as the textbook small-n baseline.
func Insertion(n int) *network.Network {
	if n < 2 {
		panic(fmt.Sprintf("netbuild.Insertion: n = %d < 2", n))
	}
	// Build as levels of non-conflicting comparators: the standard
	// diagonal schedule.
	levels := make([]network.Level, 2*n-3)
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			// Comparator (j-1, j) fires at time i + (i - j) = 2i - j.
			tm := 2*i - j - 1
			levels[tm] = append(levels[tm], network.Comparator{Min: j - 1, Max: j})
		}
	}
	c := network.New(n)
	for _, lv := range levels {
		c.AddLevel(dedupe(lv))
	}
	return c
}

// RandomLevels returns a network of the given depth on n wires where
// each level is a random perfect matching of a random subset of wires
// with random comparator directions. Used for fuzzing and as
// adversarial topology input.
func RandomLevels(n, depth int, rng *rand.Rand) *network.Network {
	c := network.New(n)
	for l := 0; l < depth; l++ {
		p := perm.Random(n, rng)
		lv := network.Level{}
		for i := 0; i+1 < n; i += 2 {
			if rng.Intn(8) == 0 {
				continue
			}
			a, b := p[i], p[i+1]
			if rng.Intn(2) == 0 {
				a, b = b, a
			}
			lv = append(lv, network.Comparator{Min: a, Max: b})
		}
		c.AddLevel(lv)
	}
	return c
}

func dedupe(lv network.Level) network.Level {
	seen := map[network.Comparator]bool{}
	out := lv[:0]
	for _, cm := range lv {
		if !seen[cm] {
			seen[cm] = true
			out = append(out, cm)
		}
	}
	return out
}
