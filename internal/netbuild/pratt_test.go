package netbuild

import (
	"testing"

	"shufflenet/internal/bits"
)

func TestPrattIncrements(t *testing.T) {
	incs := PrattIncrements(12)
	want := []int{9, 8, 6, 4, 3, 2, 1}
	if len(incs) != len(want) {
		t.Fatalf("increments %v, want %v", incs, want)
	}
	for i := range want {
		if incs[i] != want[i] {
			t.Fatalf("increments %v, want %v", incs, want)
		}
	}
}

func TestPrattSorts(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8, 12, 16} {
		checkSorts(t, "Pratt", Pratt(n))
	}
}

func TestPrattSortsLarge(t *testing.T) {
	for _, n := range []int{100, 256, 1000} {
		checkSorts(t, "Pratt", Pratt(n))
	}
}

func TestPrattDepthIsPolylog(t *testing.T) {
	// Depth ~ 2 · #increments ~ lg²n / (lg 2 · lg 3) · ... ; concretely
	// check depth <= 2 (lg n)² and strictly below the transposition
	// network for larger n.
	for _, n := range []int{64, 256, 1024} {
		d := bits.CeilLg(n)
		p := Pratt(n)
		if p.Depth() > 2*d*d {
			t.Errorf("n=%d: Pratt depth %d > 2 lg²n = %d", n, p.Depth(), 2*d*d)
		}
		if p.Depth() >= OddEvenTransposition(n).Depth() {
			t.Errorf("n=%d: Pratt depth %d not below transposition depth %d",
				n, p.Depth(), n)
		}
	}
}

func TestPrattPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pratt(1) did not panic")
		}
	}()
	Pratt(1)
}

func TestMergeExchangeSortsAllWidths(t *testing.T) {
	// Every width 2..16 exhaustively (0-1 principle); spot sizes beyond.
	for n := 2; n <= 16; n++ {
		checkSorts(t, "MergeExchange", MergeExchange(n))
	}
	for _, n := range []int{33, 100, 255, 256, 257} {
		checkSorts(t, "MergeExchange", MergeExchange(n))
	}
}

func TestMergeExchangeMatchesBatcherAtPowersOfTwo(t *testing.T) {
	// Same depth as odd-even mergesort at powers of two.
	for _, n := range []int{4, 16, 64} {
		me, oe := MergeExchange(n), OddEvenMergeSort(n)
		if me.Depth() != oe.Depth() {
			t.Errorf("n=%d: merge-exchange depth %d, odd-even %d", n, me.Depth(), oe.Depth())
		}
	}
}

func TestMergeExchangeDepthFormula(t *testing.T) {
	for _, n := range []int{2, 5, 9, 17, 100} {
		tt := bits.CeilLg(n)
		if got, want := MergeExchange(n).Depth(), tt*(tt+1)/2; got != want {
			t.Errorf("n=%d: depth %d, want %d", n, got, want)
		}
	}
}

func TestMergeExchangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MergeExchange(1) did not panic")
		}
	}()
	MergeExchange(1)
}
