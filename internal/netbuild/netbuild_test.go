package netbuild

import (
	"math/rand"
	"testing"

	"shufflenet/internal/bits"
	"shufflenet/internal/network"
	"shufflenet/internal/sortcheck"
)

func checkSorts(t *testing.T, name string, c *network.Network) {
	t.Helper()
	n := c.Wires()
	if n <= sortcheck.MaxZeroOneWires && n <= 16 {
		if ok, w := sortcheck.ZeroOne(n, c, 0); !ok {
			t.Fatalf("%s(%d) fails 0-1 check on %v", name, n, w)
		}
		return
	}
	rng := rand.New(rand.NewSource(1234))
	if ok, w := sortcheck.RandomPerms(n, 300, c, rng); !ok {
		t.Fatalf("%s(%d) fails random check on %v", name, n, w)
	}
}

func TestBitonicSorts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		checkSorts(t, "Bitonic", Bitonic(n))
	}
}

func TestBitonicSortsLarge(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		checkSorts(t, "Bitonic", Bitonic(n))
	}
}

func TestBitonicDepthSize(t *testing.T) {
	for _, n := range []int{2, 8, 64, 512} {
		d := bits.Lg(n)
		c := Bitonic(n)
		if got, want := c.Depth(), d*(d+1)/2; got != want {
			t.Errorf("Bitonic(%d) depth = %d, want %d", n, got, want)
		}
		if got, want := c.Size(), n*d*(d+1)/4; got != want {
			t.Errorf("Bitonic(%d) size = %d, want %d", n, got, want)
		}
	}
}

func TestBitonicMergerSortsBitonicInputs(t *testing.T) {
	n := 16
	m := BitonicMerger(n)
	if m.Depth() != 4 {
		t.Fatalf("merger depth %d", m.Depth())
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		// Build a random bitonic sequence: ascending then descending
		// rotated by a random amount... rotation of a bitonic sequence
		// stays bitonic only cyclically; the classic merger handles
		// ascending-then-descending (and all cyclic rotations). Use
		// ascending prefix + descending suffix.
		cut := rng.Intn(n + 1)
		vals := rng.Perm(n)
		in := make([]int, 0, n)
		asc := append([]int(nil), vals[:cut]...)
		desc := append([]int(nil), vals[cut:]...)
		sortInts(asc)
		sortInts(desc)
		reverse(desc)
		in = append(in, asc...)
		in = append(in, desc...)
		if out := m.Eval(in); !sortcheck.IsSorted(out) {
			t.Fatalf("merger failed on bitonic input %v: %v", in, out)
		}
	}
}

func TestBitonicMergerZeroOneBitonic(t *testing.T) {
	// All bitonic 0-1 inputs of length 8: 0^a 1^b 0^c and 1^a 0^b 1^c.
	n := 8
	m := BitonicMerger(n)
	for a := 0; a <= n; a++ {
		for b := 0; a+b <= n; b++ {
			c := n - a - b
			in := make([]int, 0, n)
			for i := 0; i < a; i++ {
				in = append(in, 0)
			}
			for i := 0; i < b; i++ {
				in = append(in, 1)
			}
			for i := 0; i < c; i++ {
				in = append(in, 0)
			}
			if out := m.Eval(in); !sortcheck.IsSorted(out) {
				t.Errorf("merger failed on 0^%d 1^%d 0^%d: %v", a, b, c, out)
			}
		}
	}
}

func TestHalfCleaner(t *testing.T) {
	n := 8
	h := HalfCleaner(n)
	if h.Depth() != 1 || h.Size() != n/2 {
		t.Fatalf("HalfCleaner shape wrong: %v", h)
	}
	// On a bitonic 0-1 input, after the half cleaner every bottom
	// element <= every top element.
	in := []int{0, 0, 1, 1, 1, 1, 0, 0}
	out := h.Eval(in)
	maxBot, minTop := 0, 1
	for i := 0; i < n/2; i++ {
		if out[i] > maxBot {
			maxBot = out[i]
		}
		if out[i+n/2] < minTop {
			minTop = out[i+n/2]
		}
	}
	if maxBot > minTop {
		t.Errorf("half cleaner did not clean: %v", out)
	}
}

func TestOddEvenMergeSortSorts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		checkSorts(t, "OddEvenMergeSort", OddEvenMergeSort(n))
	}
}

func TestOddEvenMergeSortLarge(t *testing.T) {
	for _, n := range []int{64, 512} {
		checkSorts(t, "OddEvenMergeSort", OddEvenMergeSort(n))
	}
}

func TestOddEvenMergeSortDepth(t *testing.T) {
	for _, n := range []int{2, 8, 64, 512} {
		d := bits.Lg(n)
		c := OddEvenMergeSort(n)
		if got, want := c.Depth(), d*(d+1)/2; got != want {
			t.Errorf("OddEvenMergeSort(%d) depth = %d, want %d", n, got, want)
		}
		// Batcher's odd-even network is strictly smaller than bitonic
		// for n >= 4.
		if n >= 4 && c.Size() >= Bitonic(n).Size() {
			t.Errorf("OddEvenMergeSort(%d) size %d not below Bitonic %d",
				n, c.Size(), Bitonic(n).Size())
		}
	}
}

func TestOddEvenTranspositionSorts(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 13} {
		checkSorts(t, "OddEvenTransposition", OddEvenTransposition(n))
	}
}

func TestOddEvenTranspositionShape(t *testing.T) {
	c := OddEvenTransposition(7)
	if c.Depth() != 7 {
		t.Errorf("depth = %d", c.Depth())
	}
}

func TestInsertionSorts(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 9, 12} {
		checkSorts(t, "Insertion", Insertion(n))
	}
}

func TestInsertionShape(t *testing.T) {
	for _, n := range []int{2, 5, 10} {
		c := Insertion(n)
		if n > 2 && c.Depth() != 2*n-3 {
			t.Errorf("Insertion(%d) depth = %d, want %d", n, c.Depth(), 2*n-3)
		}
		if c.Size() != n*(n-1)/2 {
			t.Errorf("Insertion(%d) size = %d, want %d", n, c.Size(), n*(n-1)/2)
		}
	}
}

func TestRandomLevelsValidAndDeterministic(t *testing.T) {
	a := RandomLevels(32, 10, rand.New(rand.NewSource(5)))
	b := RandomLevels(32, 10, rand.New(rand.NewSource(5)))
	if err := a.Validate(); err != nil {
		t.Fatalf("invalid random network: %v", err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different networks")
	}
	if a.Depth() != 10 {
		t.Errorf("depth = %d", a.Depth())
	}
}

func TestConstructorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Bitonic(6)", func() { Bitonic(6) })
	mustPanic("OddEvenMergeSort(12)", func() { OddEvenMergeSort(12) })
	mustPanic("HalfCleaner(3)", func() { HalfCleaner(3) })
	mustPanic("Transposition(1)", func() { OddEvenTransposition(1) })
	mustPanic("Insertion(1)", func() { Insertion(1) })
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func reverse(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
