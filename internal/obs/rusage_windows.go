//go:build windows

package obs

import "syscall"

// cpuMillis returns the process's kernel+user CPU time in
// milliseconds, from GetProcessTimes — the Windows equivalent of the
// unix getrusage(2) reading, so journals stay comparable across
// platforms.
func cpuMillis() float64 {
	h, err := syscall.GetCurrentProcess()
	if err != nil {
		return 0
	}
	var creation, exit, kernel, user syscall.Filetime
	if err := syscall.GetProcessTimes(h, &creation, &exit, &kernel, &user); err != nil {
		return 0
	}
	return float64(kernel.Nanoseconds()+user.Nanoseconds()) / 1e6
}

// maxRSSKB reports the MemStats-based fallback (std-lib syscall has no
// GetProcessMemoryInfo): an underestimate of working-set peak, but
// nonzero and comparable run-over-run.
func maxRSSKB() int64 { return memSysKB() }
