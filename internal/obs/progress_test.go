package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// waitFirstSample blocks until Start's immediate first sample (taken on
// the sampler goroutine) has landed, so tests can drive further samples
// with Emit deterministically.
func waitFirstSample(t *testing.T, p *Progress) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Last() == nil {
		if time.Now().After(deadline) {
			t.Fatal("first sample never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProgressHeartbeatTrail simulates a killed run: heartbeats are
// written to the journal but the process "dies" before the final entry.
// The journal tail must be a parseable, monotonic heartbeat sequence
// with honest partial counters — that trail is all a post-mortem has.
func TestProgressHeartbeatTrail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}

	var nodes atomic.Int64
	p := NewProgress("testcmd", "testcmd-1-abc", time.Hour) // ticker never fires; Emit drives sampling
	p.AddSink(JournalSink(j))
	p.Register(func(s *Sample) {
		s.Counter("nodes", nodes.Load())
		s.SetFraction(float64(nodes.Load()), 3000)
	})
	p.Start() // emits the first sample immediately
	waitFirstSample(t, p)
	for i := 0; i < 3; i++ {
		nodes.Add(1000)
		p.Emit()
	}
	// Simulated kill: no Stop, no final entry — just the file closing
	// as the OS would on process death.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d journal lines, want 4 heartbeats:\n%s", len(lines), data)
	}
	lastSeq := int64(-1)
	lastNodes := int64(-1)
	for i, line := range lines {
		var hb struct {
			Type   string         `json:"type"`
			Run    string         `json:"run"`
			Seq    int64          `json:"seq"`
			Frac   float64        `json:"frac"`
			Fields map[string]any `json:"fields"`
			Final  bool           `json:"final"`
		}
		if err := json.Unmarshal([]byte(line), &hb); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i+1, err, line)
		}
		if hb.Type != "heartbeat" {
			t.Fatalf("line %d type = %q, want heartbeat", i+1, hb.Type)
		}
		if hb.Run != "testcmd-1-abc" {
			t.Fatalf("line %d run = %q: heartbeats must carry the correlation ID", i+1, hb.Run)
		}
		if hb.Final {
			t.Fatalf("line %d marked final, but the run was killed, not stopped", i+1)
		}
		if hb.Seq != lastSeq+1 {
			t.Fatalf("line %d seq = %d, want %d (monotonic, gap-free)", i+1, hb.Seq, lastSeq+1)
		}
		lastSeq = hb.Seq
		n := int64(hb.Fields["nodes"].(float64))
		if n < lastNodes {
			t.Fatalf("line %d nodes = %d went backwards from %d", i+1, n, lastNodes)
		}
		lastNodes = n
	}
	if lastNodes != 3000 {
		t.Fatalf("final heartbeat nodes = %d, want the honest partial count 3000", lastNodes)
	}
}

// TestProgressStopEmitsFinal checks the orderly-shutdown path: Stop
// emits one last sample marked final and closes the sinks.
func TestProgressStopEmitsFinal(t *testing.T) {
	var samples []*Sample
	closed := false
	p := NewProgress("testcmd", "r", time.Hour)
	p.AddSink(struct {
		funcSink
	}{funcSink(func(s *Sample) { samples = append(samples, s) })})
	p.AddSink(SinkFunc(func(*Sample) {}))
	// Track Close via a custom sink.
	p.AddSink(closeSink{fn: func() { closed = true }})
	p.Start()
	p.Stop()
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2 (start + final)", len(samples))
	}
	if samples[0].Final || !samples[1].Final {
		t.Fatalf("final flags wrong: %v %v", samples[0].Final, samples[1].Final)
	}
	if !closed {
		t.Fatal("Stop must close sinks")
	}
	if p.Enabled() {
		t.Fatal("stopped engine still reports enabled")
	}
	p.Stop() // idempotent
}

type closeSink struct{ fn func() }

func (c closeSink) Emit(*Sample) {}
func (c closeSink) Close()       { c.fn() }

// TestProgressRatesAndETA checks the derived fields: counter rates from
// consecutive samples and the prefix-completion-rate ETA.
func TestProgressRatesAndETA(t *testing.T) {
	var done atomic.Int64
	var last *Sample
	p := NewProgress("testcmd", "", time.Hour)
	p.AddSink(SinkFunc(func(s *Sample) { last = s }))
	p.Register(func(s *Sample) {
		s.Counter("work", done.Load())
		s.SetFraction(float64(done.Load()), 100)
		s.SetFraction(0, 100) // later setters must lose: first-setter-wins
	})
	p.Start()
	waitFirstSample(t, p)
	done.Store(50)
	time.Sleep(10 * time.Millisecond) // a nonzero dt for the rate
	p.Emit()
	p.on.Store(false) // avoid Stop's extra final sample
	close(p.stop)
	p.wg.Wait()

	if last == nil {
		t.Fatal("no sample emitted")
	}
	if last.Frac != 0.5 {
		t.Fatalf("frac = %v, want 0.5 (and first-setter-wins)", last.Frac)
	}
	if last.EtaMS <= 0 {
		t.Fatalf("eta_ms = %v, want > 0 at 50%% done", last.EtaMS)
	}
	rate, ok := last.Fields["work_per_s"].(float64)
	if !ok || rate <= 0 {
		t.Fatalf("work_per_s = %v, want a positive derived rate", last.Fields["work_per_s"])
	}
	if last.Fields["work"].(int64) != 50 {
		t.Fatalf("work = %v, want 50", last.Fields["work"])
	}
}

// TestProgressLateCounterNoRate: a counter that first appears mid-run
// (e.g. a registry counter only folded in at a worker's defer) has an
// unknown accumulation window — the sample it debuts in must not carry
// a rate, and rating starts from the next sample.
func TestProgressLateCounterNoRate(t *testing.T) {
	var v atomic.Int64
	var appeared atomic.Bool
	var last *Sample
	p := NewProgress("testcmd", "", time.Hour)
	p.AddSink(SinkFunc(func(s *Sample) { last = s }))
	p.Register(func(s *Sample) {
		if appeared.Load() {
			s.Counter("late", v.Load())
		}
	})
	p.Start()
	waitFirstSample(t, p)
	p.Emit() // seq 1: counter still absent
	appeared.Store(true)
	v.Store(1_000_000)
	p.Emit() // seq 2: debut — a rate here would claim 1M ops this tick
	if _, ok := last.Fields["late_per_s"]; ok {
		t.Fatalf("debut sample must not rate an unknown window: %v", last.Fields)
	}
	if last.Fields["late"].(int64) != 1_000_000 {
		t.Fatalf("late = %v, want 1000000", last.Fields["late"])
	}
	v.Store(1_000_100)
	time.Sleep(5 * time.Millisecond)
	p.Emit() // seq 3: now the window is known
	if r, ok := last.Fields["late_per_s"].(float64); !ok || r <= 0 {
		t.Fatalf("late_per_s = %v, want a positive rate from the second observation", last.Fields["late_per_s"])
	}
	p.Stop()
}

// TestProgressEvents checks event buffering: bounded, drained into the
// next sample, drops counted.
func TestProgressEvents(t *testing.T) {
	var last *Sample
	p := NewProgress("testcmd", "", time.Hour)
	p.AddSink(SinkFunc(func(s *Sample) { last = s }))
	p.Start()
	waitFirstSample(t, p)
	for i := 0; i < maxPendingEvents+7; i++ {
		p.Event("incumbent", map[string]any{"size": i})
	}
	p.Emit()
	if len(last.Events) != maxPendingEvents {
		t.Fatalf("got %d events, want the %d cap", len(last.Events), maxPendingEvents)
	}
	if dropped := last.Fields["events_dropped"].(int64); dropped != 7 {
		t.Fatalf("events_dropped = %v, want 7", dropped)
	}
	p.Emit()
	if len(last.Events) != 0 {
		t.Fatalf("events must drain into one sample; second sample has %d", len(last.Events))
	}
	p.Stop()
	p.Event("after-stop", nil) // must be a no-op, not a panic
}

// TestProgressDisabledZeroAlloc proves the disabled hot path allocates
// nothing: Enabled and Event on a nil engine, a never-started engine,
// and a stopped engine.
func TestProgressDisabledZeroAlloc(t *testing.T) {
	var nilP *Progress
	idle := NewProgress("x", "", time.Hour)
	stopped := NewProgress("y", "", time.Hour)
	stopped.Start()
	stopped.Stop()
	for name, p := range map[string]*Progress{"nil": nilP, "idle": idle, "stopped": stopped} {
		p := p
		if n := testing.AllocsPerRun(1000, func() {
			if p.Enabled() {
				t.Fatal("disabled engine reports enabled")
			}
			p.Event("e", nil)
		}); n != 0 {
			t.Errorf("%s engine: %v allocs/op on the disabled path, want 0", name, n)
		}
	}
}

// TestStatusSinkPipe checks the non-TTY rendering: one full line per
// sample, no carriage returns (CI logs must stay readable).
func TestStatusSinkPipe(t *testing.T) {
	var sb strings.Builder
	ss := &StatusSink{w: &sb}
	s := &Sample{Cmd: "adversary", ElapsedMS: 1500, Frac: 0.25, fracSet: true, EtaMS: 4500}
	s.Field("core.optimal.nodes", int64(1234567))
	ss.Emit(s)
	ss.Close()
	out := sb.String()
	if strings.Contains(out, "\r") {
		t.Fatalf("pipe output must not use carriage returns: %q", out)
	}
	for _, want := range []string{"adversary", "25%", "eta", "optimal.nodes=1.23M"} {
		if !strings.Contains(out, want) {
			t.Errorf("status line lacks %q: %q", want, out)
		}
	}
}

// BenchmarkProgressDisabled is the zero-alloc proof benchmark for the
// disabled hot path — what every search pays per probe stride when
// -progress is off.
func BenchmarkProgressDisabled(b *testing.B) {
	var p *Progress // the CLIs pass nil when -progress is off
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p.Enabled() {
			b.Fatal("unreachable")
		}
	}
}

// TestStartProgressTwiceSameProcess is the server-readiness regression
// test: two Progress engines started in one process, each mounted on
// its own mux, must not touch http.DefaultServeMux and must not panic.
// The old code registered /debug/progress on the default mux at the
// first Start — the handler leaked onto every server using the default
// mux, and an unguarded second registration is a duplicate-pattern
// panic in net/http. Now the handler is a value (ProgressHandler) the
// caller mounts wherever it wants, any number of times.
func TestStartProgressTwiceSameProcess(t *testing.T) {
	p1 := NewProgress("first", "r1", time.Hour)
	p1.Start()
	defer p1.Stop()
	p2 := NewProgress("second", "r2", time.Hour) // would have re-registered
	p2.Start()
	defer p2.Stop()
	p1.Emit()
	p2.Emit()

	// Each server owns its mux; both can mount the handler.
	for i := 0; i < 2; i++ {
		mux := http.NewServeMux()
		mux.Handle("/debug/progress", ProgressHandler())
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/progress", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("mux %d: /debug/progress status %d", i, rec.Code)
		}
		var samples []Sample
		if err := json.Unmarshal(rec.Body.Bytes(), &samples); err != nil {
			t.Fatalf("mux %d: bad JSON: %v", i, err)
		}
		cmds := map[string]bool{}
		for _, s := range samples {
			cmds[s.Cmd] = true
		}
		if !cmds["first"] || !cmds["second"] {
			t.Fatalf("mux %d: want samples from both engines, got %v", i, cmds)
		}
	}

	// The default mux must not have grown a /debug/progress route: a
	// request against it may hit pprof's catch-all or 404, but never
	// our JSON sample payload.
	rec := httptest.NewRecorder()
	http.DefaultServeMux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/progress", nil))
	if ct := rec.Header().Get("Content-Type"); ct == "application/json" {
		t.Fatalf("/debug/progress leaked onto http.DefaultServeMux (Content-Type %q)", ct)
	}
}
