package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanNestingOrder(t *testing.T) {
	root := NewSpan("root", A("n", 16))
	c1 := root.Child("first")
	c1a := c1.Child("first.inner")
	c1a.End()
	c1.End()
	c2 := root.Child("second")
	c2.SetAttr("rows", 3)
	c2.End()
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "first" || kids[1].Name() != "second" {
		t.Fatalf("children = %v", kids)
	}
	if inner := kids[0].Children(); len(inner) != 1 || inner[0].Name() != "first.inner" {
		t.Fatalf("inner children = %v", inner)
	}

	var sb strings.Builder
	if err := root.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("tree has %d lines:\n%s", len(lines), sb.String())
	}
	// Depth-first order with two-space indentation per level.
	wantPrefix := []string{"root", "  first", "    first.inner", "  second"}
	for i, p := range wantPrefix {
		if !strings.HasPrefix(lines[i], p) {
			t.Fatalf("line %d = %q, want prefix %q", i, lines[i], p)
		}
	}
	if !strings.Contains(lines[0], "n=16") || !strings.Contains(lines[3], "rows=3") {
		t.Fatalf("attrs missing from tree:\n%s", sb.String())
	}
}

func TestSpanJSONL(t *testing.T) {
	root := NewSpan("root")
	root.Child("a").End()
	root.Child("b").Child("c").End()
	root.End()

	var sb strings.Builder
	if err := root.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	var paths []string
	var depths []int
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var rec struct {
			Path  string  `json:"path"`
			Depth int     `json:"depth"`
			MS    float64 `json:"ms"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		if rec.MS < 0 {
			t.Fatalf("negative duration in %q", sc.Text())
		}
		paths = append(paths, rec.Path)
		depths = append(depths, rec.Depth)
	}
	wantPaths := []string{"root", "root/a", "root/b", "root/b/c"}
	wantDepths := []int{0, 1, 1, 2}
	if len(paths) != len(wantPaths) {
		t.Fatalf("paths = %v", paths)
	}
	for i := range wantPaths {
		if paths[i] != wantPaths[i] || depths[i] != wantDepths[i] {
			t.Fatalf("record %d = (%s, %d), want (%s, %d)", i, paths[i], depths[i], wantPaths[i], wantDepths[i])
		}
	}
}

func TestNilSpanIsInert(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	s.SetAttr("k", 1)
	s.End()
	if s.Duration() != 0 || s.Name() != "" || s.Children() != nil {
		t.Fatal("nil span not inert")
	}
	if err := s.WriteTree(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSONL(nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	s := NewSpan("s")
	s.End()
	d := s.Duration()
	s.End()
	if s.Duration() != d {
		t.Fatal("second End changed the duration")
	}
}
