package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Entry is one run-journal record: everything needed to reproduce and
// audit a CLI or experiment invocation. Marshaled as a single JSON
// object (one line in the journal).
type Entry struct {
	Time string `json:"time"` // RFC3339, start of run
	Cmd  string `json:"cmd"`
	// Run correlates this entry with the heartbeat records the same
	// invocation wrote (see Progress/JournalSink): a heartbeat trail
	// with no matching entry is the signature of a killed/OOM'd run.
	Run       string   `json:"run,omitempty"`
	Args      []string `json:"args"`
	Seed      int64    `json:"seed,omitempty"`
	GoVersion string   `json:"go_version"`
	OS        string   `json:"os"`
	Arch      string   `json:"arch"`
	Git       string   `json:"git,omitempty"` // git describe --always --dirty
	MaxProcs  int      `json:"maxprocs"`

	WallMS float64 `json:"wall_ms"`
	CPUMS  float64 `json:"cpu_ms,omitempty"` // user+system, rusage (0 where unsupported)

	Mem struct {
		HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
		TotalAllocBytes uint64 `json:"total_alloc_bytes"`
		SysBytes        uint64 `json:"sys_bytes"`
		NumGC           uint32 `json:"num_gc"`
		MaxRSSKB        int64  `json:"max_rss_kb,omitempty"` // rusage peak (0 where unsupported)
	} `json:"mem"`

	// Interrupted / TimedOut record why a run was cut short: a
	// SIGINT/SIGTERM or the -timeout deadline. Partial then carries the
	// progress fields from the engines' *par.ErrCanceled (via
	// ErrCanceled.Fields), so a truncated run still journals how far it
	// got.
	Interrupted bool           `json:"interrupted,omitempty"`
	TimedOut    bool           `json:"timed_out,omitempty"`
	Partial     map[string]any `json:"partial,omitempty"`

	Metrics map[string]any `json:"metrics,omitempty"`
	Spans   []spanRecord   `json:"spans,omitempty"`
	Extra   map[string]any `json:"extra,omitempty"`

	start time.Time
}

// NewEntry starts a journal entry for the named command, capturing the
// start time, the process arguments, toolchain/platform identity, and
// the repository's git-describe (best effort; empty when git or the
// repo is unavailable).
func NewEntry(cmd string) *Entry {
	now := time.Now()
	e := &Entry{
		Time:      now.UTC().Format(time.RFC3339),
		Cmd:       cmd,
		Run:       fmt.Sprintf("%s-%d-%x", cmd, os.Getpid(), now.UnixNano()),
		Args:      append([]string(nil), os.Args[1:]...),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Git:       gitDescribe(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		Extra:     map[string]any{},
		start:     now,
	}
	return e
}

// Set records an arbitrary extra field (per-command payload such as
// the adversary's per-block reports).
func (e *Entry) Set(key string, value any) {
	if e == nil {
		return
	}
	e.Extra[key] = value
}

// SetPartial records the partial-progress fields of a canceled run
// (typically par.ErrCanceled.Fields()); they land in the entry's
// "partial" key next to the timed_out/interrupted markers.
func (e *Entry) SetPartial(fields map[string]any) {
	if e == nil {
		return
	}
	e.Partial = fields
}

// AddSpans attaches a span tree (flattened depth-first) to the entry.
func (e *Entry) AddSpans(root *Span) {
	if e == nil || root == nil {
		return
	}
	e.Spans = root.records("", 0, e.Spans)
}

// Finish stamps the entry with wall/CPU time, memory statistics, and a
// snapshot of every metric in reg (nil skips the snapshot). Idempotent
// enough for the interrupt path: a second call refreshes the readings.
func (e *Entry) Finish(reg *Registry) {
	if e == nil {
		return
	}
	e.WallMS = float64(time.Since(e.start)) / float64(time.Millisecond)
	e.CPUMS = cpuMillis()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.Mem.HeapAllocBytes = ms.HeapAlloc
	e.Mem.TotalAllocBytes = ms.TotalAlloc
	e.Mem.SysBytes = ms.Sys
	e.Mem.NumGC = ms.NumGC
	e.Mem.MaxRSSKB = maxRSSKB()
	if reg != nil {
		e.Metrics = reg.Snapshot()
	}
}

// gitDescribe returns `git describe --always --dirty --tags` for the
// current directory, or "" if git is unavailable, slow, or this is not
// a work tree.
func gitDescribe() string {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := exec.CommandContext(ctx, "git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Journal appends one JSON object per line to a file. Writes are
// mutex-guarded and flushed with the line, so an entry written from a
// signal handler survives the subsequent exit. A nil *Journal is
// inert.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) the journal at path in append
// mode. An empty path returns (nil, nil): the nil journal is a no-op,
// so CLIs can pass their -journal flag through unconditionally.
func OpenJournal(path string) (*Journal, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

// Write appends the entry as one JSON line and syncs the file.
func (j *Journal) Write(e *Entry) error {
	if j == nil || e == nil {
		return nil
	}
	return j.WriteRecord(e)
}

// WriteRecord appends any JSON-marshalable record as one line and
// syncs the file — the heartbeat path (Progress's JournalSink) shares
// the entry path's durability: a record that was written survives a
// kill -9 one line later.
func (j *Journal) WriteRecord(v any) error {
	if j == nil {
		return nil
	}
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
