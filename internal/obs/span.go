package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values must be
// JSON-marshalable for WriteJSONL; fmt verbs render them in the tree.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// A constructs an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Span times one named phase of a computation. Spans nest: Child
// starts a sub-span, and End records the duration. A nil *Span is
// inert (Child returns nil, End is a no-op), so callers can thread an
// optional span through APIs without conditionals.
//
// A span tree is rendered with WriteTree (indented text) or WriteJSONL
// (one JSON object per span, depth-first). Child and End are safe for
// concurrent use on the same parent, matching the parallel phases in
// core and par.
type Span struct {
	name  string
	attrs []Attr
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	children []*Span
}

// NewSpan starts a root span.
func NewSpan(name string, attrs ...Attr) *Span {
	return &Span{name: name, attrs: attrs, start: time.Now()}
}

// Child starts a sub-span. Nil-safe: a nil receiver returns nil, so an
// entire instrumentation tree collapses to no-ops when tracing is off.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := NewSpan(name, attrs...)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr appends an annotation (typically a result computed during
// the span, e.g. a surviving-set size).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End fixes the span's duration (first call wins; later calls are
// no-ops). It returns s for defer chaining.
func (s *Span) End() *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
	return s
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded duration; for a still-open span it
// returns the time elapsed so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Children returns the direct sub-spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// WriteTree renders the span and its descendants as an indented trace
// tree:
//
//	experiments                          152ms
//	  E2                                  41ms  n=256
//	    lemma41                           39ms
func (s *Span) WriteTree(w io.Writer) error {
	if s == nil {
		return nil
	}
	var sb strings.Builder
	s.writeTree(&sb, 0)
	_, err := io.WriteString(w, sb.String())
	return err
}

func (s *Span) writeTree(sb *strings.Builder, depth int) {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(sb, "%-40s %10s", indent+s.name, dur.Round(time.Microsecond))
	for _, a := range attrs {
		fmt.Fprintf(sb, "  %s=%v", a.Key, a.Value)
	}
	sb.WriteByte('\n')
	for _, c := range children {
		c.writeTree(sb, depth+1)
	}
}

// spanRecord is the JSONL form of one span.
type spanRecord struct {
	Path  string  `json:"path"` // slash-joined names from the root
	Depth int     `json:"depth"`
	MS    float64 `json:"ms"`
	Attrs []Attr  `json:"attrs,omitempty"`
}

// WriteJSONL renders the span and its descendants depth-first, one
// JSON object per line with the slash-joined path from the root.
func (s *Span) WriteJSONL(w io.Writer) error {
	if s == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	return s.writeJSONL(enc, "", 0)
}

func (s *Span) writeJSONL(enc *json.Encoder, prefix string, depth int) error {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	path := s.name
	if prefix != "" {
		path = prefix + "/" + s.name
	}
	if err := enc.Encode(spanRecord{Path: path, Depth: depth, MS: float64(dur) / float64(time.Millisecond), Attrs: attrs}); err != nil {
		return err
	}
	for _, c := range children {
		if err := c.writeJSONL(enc, path, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// records flattens the tree into journal-friendly structs (used by
// Entry.AddSpans).
func (s *Span) records(prefix string, depth int, out []spanRecord) []spanRecord {
	if s == nil {
		return out
	}
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	path := s.name
	if prefix != "" {
		path = prefix + "/" + s.name
	}
	out = append(out, spanRecord{Path: path, Depth: depth, MS: float64(dur) / float64(time.Millisecond), Attrs: attrs})
	for _, c := range children {
		out = c.records(path, depth+1, out)
	}
	return out
}
