package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")

	reg := NewRegistry()
	reg.Counter("test.masks").Add(65536)
	reg.FGauge("test.eps").Set(0.125)

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEntry("testcmd")
	e.Seed = 7
	e.Set("blocks", []map[string]int{{"survivors": 40, "collisions": 2}})
	root := NewSpan("run")
	root.Child("phase").End()
	root.End()
	e.AddSpans(root)
	e.Finish(reg)
	if err := j.Write(e); err != nil {
		t.Fatal(err)
	}
	// Second entry: the journal appends.
	e2 := NewEntry("testcmd2")
	e2.Finish(nil)
	if err := j.Write(e2); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []Entry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var got Entry
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, got)
	}
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines, want 2", len(lines))
	}
	got := lines[0]
	if got.Cmd != "testcmd" || got.Seed != 7 {
		t.Fatalf("cmd/seed = %s/%d", got.Cmd, got.Seed)
	}
	if got.GoVersion == "" || got.OS == "" || got.Arch == "" || got.Time == "" {
		t.Fatalf("identity fields missing: %+v", got)
	}
	if got.WallMS < 0 {
		t.Fatalf("wall_ms = %g", got.WallMS)
	}
	if got.Mem.TotalAllocBytes == 0 {
		t.Fatal("mem stats missing")
	}
	if v, ok := got.Metrics["test.masks"]; !ok || v.(float64) != 65536 {
		t.Fatalf("metrics round-trip: %v", got.Metrics)
	}
	if v, ok := got.Metrics["test.eps"]; !ok || v.(float64) != 0.125 {
		t.Fatalf("fgauge round-trip: %v", got.Metrics)
	}
	if len(got.Spans) != 2 || got.Spans[0].Path != "run" || got.Spans[1].Path != "run/phase" {
		t.Fatalf("spans = %+v", got.Spans)
	}
	if _, ok := got.Extra["blocks"]; !ok {
		t.Fatalf("extra payload missing: %v", got.Extra)
	}
	if lines[1].Cmd != "testcmd2" {
		t.Fatalf("second line cmd = %s", lines[1].Cmd)
	}
}

func TestOpenJournalEmptyPath(t *testing.T) {
	j, err := OpenJournal("")
	if err != nil || j != nil {
		t.Fatalf("OpenJournal(\"\") = %v, %v", j, err)
	}
	// The nil journal is inert.
	if err := j.Write(NewEntry("x")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
