package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("test.counter") != c {
		t.Fatal("re-registration returned a different handle")
	}
	var nilC *Counter
	nilC.Add(7) // must not panic
	if nilC.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
}

func TestConcurrentCounterIncrements(t *testing.T) {
	// Run with -race (make race) to verify the atomic contract.
	r := NewRegistry()
	c := r.Counter("test.concurrent")
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGauges(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test.gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	f := r.FGauge("test.fgauge")
	f.Set(0.25)
	f.Max(0.125) // lower: ignored
	if got := f.Value(); got != 0.25 {
		t.Fatalf("fgauge = %g, want 0.25", got)
	}
	f.Max(0.5)
	if got := f.Value(); got != 0.5 {
		t.Fatalf("fgauge after Max = %g, want 0.5", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.hist", []int64{1, 2, 4, 8})
	// An observation lands in the first bucket with v <= bound;
	// values above the last bound land in the overflow bucket.
	for _, v := range []int64{0, 1} {
		h.Observe(v) // bucket le=1
	}
	h.Observe(2) // le=2, exactly on the boundary
	h.Observe(3) // le=4
	h.Observe(4) // le=4, boundary
	h.Observe(5) // le=8
	h.Observe(9) // overflow
	snap := h.Snapshot()
	want := []Bucket{
		{LE: 1, N: 2},
		{LE: 2, N: 1},
		{LE: 4, N: 2},
		{LE: 8, N: 1},
		{LE: math.MaxInt64, N: 1},
	}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", snap.Buckets, want)
	}
	for i, b := range snap.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if snap.Count != 7 || snap.Sum != 0+1+2+3+4+5+9 {
		t.Fatalf("count/sum = %d/%d, want 7/%d", snap.Count, snap.Sum, 0+1+2+3+4+5+9)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewRegistry().Histogram("test.bad", []int64{4, 2})
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.name")
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("test.name")
}

func TestPow2Bounds(t *testing.T) {
	got := Pow2Bounds(3)
	want := []int64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("Pow2Bounds(3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pow2Bounds(3) = %v, want %v", got, want)
		}
	}
}

func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("test.disabled")
	g := r.Gauge("test.disabled.gauge")
	h := r.Histogram("test.disabled.hist", []int64{1})
	SetEnabled(false)
	c.Inc()
	g.Set(5)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled metrics moved: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled counter did not move")
	}
}

// TestHotPathDoesNotAllocate asserts the acceptance criterion
// directly: neither the enabled nor the disabled metric path
// allocates.
func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.alloc")
	h := r.Histogram("test.alloc.hist", Pow2Bounds(10))
	for name, enabled := range map[string]bool{"enabled": true, "disabled": false} {
		prev := SetEnabled(enabled)
		if n := testing.AllocsPerRun(1000, func() { c.Add(1); h.Observe(3) }); n != 0 {
			t.Errorf("%s path allocates %.1f per op", name, n)
		}
		SetEnabled(prev)
	}
}

func TestSnapshotWriteTextReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.counter").Add(3)
	r.Gauge("a.gauge").Set(-1)
	r.FGauge("c.f").Set(0.5)
	r.Histogram("d.h", []int64{10}).Observe(7)

	snap := r.Snapshot()
	if snap["b.counter"].(int64) != 3 || snap["a.gauge"].(int64) != -1 || snap["c.f"].(float64) != 0.5 {
		t.Fatalf("snapshot = %v", snap)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	// Sorted output: a.gauge before b.counter before c.f before d.h.
	if !strings.Contains(text, "a.gauge -1\n") || !strings.Contains(text, "b.counter 3\n") ||
		!strings.Contains(text, "c.f 0.5\n") || !strings.Contains(text, "d.h count=1 sum=7 le10:1\n") {
		t.Fatalf("WriteText output:\n%s", text)
	}
	if strings.Index(text, "a.gauge") > strings.Index(text, "b.counter") {
		t.Fatalf("WriteText not sorted:\n%s", text)
	}

	r.Reset()
	if r.Counter("b.counter").Value() != 0 || r.Histogram("d.h", nil).Count() != 0 {
		t.Fatal("Reset left values behind")
	}
}

// BenchmarkCounterAdd bounds the hot-path cost: the enabled path is
// one atomic load plus one atomic add; the disabled path a single
// atomic load. Both must report 0 allocs/op (the dedicated
// disabled-path allocation benchmark from the PR acceptance).
func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.counter")
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		prev := SetEnabled(false)
		defer SetEnabled(prev)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
}
