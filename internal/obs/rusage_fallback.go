package obs

import "runtime"

// memSysKB is the platform-independent peak-footprint fallback:
// MemStats.Sys (total bytes obtained from the OS, which only grows) in
// KiB. Used where the OS offers no rusage-style peak-RSS reading.
func memSysKB() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys / 1024)
}
