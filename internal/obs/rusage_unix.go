//go:build unix

package obs

import "syscall"

// cpuMillis returns the process's user+system CPU time in
// milliseconds, from getrusage(2).
func cpuMillis() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	toMS := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec)*1000 + float64(tv.Usec)/1000
	}
	return toMS(ru.Utime) + toMS(ru.Stime)
}

// maxRSSKB returns the peak resident set size in KiB (ru_maxrss is
// KiB on Linux; other unixes may use bytes — the value is recorded
// as reported).
func maxRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return int64(ru.Maxrss)
}
