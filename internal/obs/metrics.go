// Package obs is the std-lib-only observability layer for shufflenet:
// a zero-allocation metrics registry (counters, gauges, fixed-bucket
// histograms) with expvar export, lightweight nested spans that render
// as an indented trace tree or JSONL, and a run-journal writer that
// records one JSON object per CLI/experiment invocation.
//
// Design constraints (see DESIGN.md §4):
//
//   - std-lib only, so the kernel packages (network, sortcheck, par)
//     can depend on it without pulling a metrics framework into a
//     repository whose whole point is auditable reproduction;
//   - the hot path must stay hot: Counter.Add on the enabled path is
//     one atomic load plus one atomic add and never allocates, and
//     with SetEnabled(false) it is a single atomic load. The SWAR
//     kernel itself (network.Program.EvalBits) carries no per-call
//     atomics at all — word counts are accumulated in BitBatch and
//     flushed per worker chunk;
//   - handles are nil-safe: a nil *Counter, *Span, or *Journal is an
//     inert no-op, so instrumented code needs no conditionals.
//
// Metric handles are cheap to create and are normally package-level
// vars obtained once from the Default registry:
//
//	var evalCalls = obs.C("network.eval.calls")
//	func f() { evalCalls.Inc() }
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricsOn is the global collection switch. It defaults to on:
// collection is cheap enough to leave enabled, and the CLIs only
// control whether the registry is *dumped*, not whether it fills.
var metricsOn atomic.Bool

func init() { metricsOn.Store(true) }

// SetEnabled turns metric collection on or off globally and returns
// the previous state. With collection off, every Add/Set/Observe is a
// single atomic load and nothing else — the "no-op mode" whose cost
// the kernel benchmarks bound.
func SetEnabled(on bool) (prev bool) {
	prev = metricsOn.Load()
	metricsOn.Store(on)
	return prev
}

// Enabled reports whether metric collection is on.
func Enabled() bool { return metricsOn.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v    atomic.Int64
	name string
}

// Add increments the counter by n. Nil-safe; no-op when collection is
// disabled; never allocates.
func (c *Counter) Add(n int64) {
	if c == nil || !metricsOn.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an atomic int64 instantaneous value.
type Gauge struct {
	v    atomic.Int64
	name string
}

// Set stores v. Nil-safe; no-op when collection is disabled.
func (g *Gauge) Set(v int64) {
	if g == nil || !metricsOn.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil || !metricsOn.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the registered name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// FGauge is an atomic float64 instantaneous value (stored as bits).
type FGauge struct {
	bits atomic.Uint64
	name string
}

// Set stores v. Nil-safe; no-op when collection is disabled.
func (g *FGauge) Set(v float64) {
	if g == nil || !metricsOn.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Max raises the gauge to v if v exceeds the current value.
func (g *FGauge) Max(v float64) {
	if g == nil || !metricsOn.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *FGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the registered name.
func (g *FGauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Histogram is a fixed-bucket histogram of int64 observations. An
// observation v falls in the first bucket whose upper bound satisfies
// v <= bound; values above the last bound land in the overflow bucket.
// Bounds are fixed at registration, so Observe is a short scan plus
// two atomic adds and never allocates.
type Histogram struct {
	bounds []int64        // ascending upper bounds; len(bounds)+1 buckets
	counts []atomic.Int64 // one per bucket, last = overflow
	sum    atomic.Int64
	total  atomic.Int64
	name   string
}

// Observe records one value. Nil-safe; no-op when collection is
// disabled; never allocates.
func (h *Histogram) Observe(v int64) {
	if h == nil || !metricsOn.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Name returns the registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Bucket is one histogram bucket in a snapshot. LE is the inclusive
// upper bound; the overflow bucket reports LE = math.MaxInt64.
type Bucket struct {
	LE int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is the JSON-friendly state of a Histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot returns the histogram state. Only buckets with nonzero
// counts are included, keeping journal lines compact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.total.Load(), Sum: h.sum.Load()}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := int64(math.MaxInt64)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{LE: le, N: n})
	}
	return s
}

// Registry holds named metrics. The zero value is not usable;
// construct with NewRegistry or use Default. Lookup is mutex-guarded
// (handles are meant to be fetched once, at package init or call-site
// setup, not per operation).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FGauge
	hists    map[string]*Histogram
	pubOnce  sync.Once
}

// Default is the process-wide registry used by the package-level
// C/G/FG/H helpers and dumped by the CLIs' -metrics flag.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		fgauges:  map[string]*FGauge{},
		hists:    map[string]*Histogram{},
	}
}

// checkFree panics if name is already registered under a different
// metric kind in r. Caller holds r.mu.
func (r *Registry) checkFree(name, kind string) {
	for k, m := range map[string]bool{
		"counter":   r.counters[name] != nil,
		"gauge":     r.gauges[name] != nil,
		"fgauge":    r.fgauges[name] != nil,
		"histogram": r.hists[name] != nil,
	} {
		if m && k != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s", name, k))
		}
	}
}

// Counter returns the counter with the given name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the int64 gauge with the given name, creating it if
// needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// FGauge returns the float64 gauge with the given name, creating it if
// needed.
func (r *Registry) FGauge(name string) *FGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.fgauges[name]; ok {
		return g
	}
	r.checkFree(name, "fgauge")
	g := &FGauge{name: name}
	r.fgauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it
// with the given ascending upper bounds if needed. Re-registration
// ignores bounds and returns the existing histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// Pow2Bounds returns the upper bounds 1, 2, 4, ..., 2^maxExp — the
// standard bucket layout for size-like quantities (surviving-set
// sizes, chunk lengths).
func Pow2Bounds(maxExp int) []int64 {
	b := make([]int64, maxExp+1)
	for i := range b {
		b[i] = int64(1) << uint(i)
	}
	return b
}

// C returns (creating if needed) a counter in the Default registry.
func C(name string) *Counter { return Default.Counter(name) }

// G returns (creating if needed) an int64 gauge in the Default
// registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// FG returns (creating if needed) a float64 gauge in the Default
// registry.
func FG(name string) *FGauge { return Default.FGauge(name) }

// H returns (creating if needed) a histogram in the Default registry.
func H(name string, bounds []int64) *Histogram { return Default.Histogram(name, bounds) }

// Snapshot returns all metric values: int64 for counters and gauges,
// float64 for float gauges, HistogramSnapshot for histograms. The map
// is fresh and safe to retain; encoding/json renders map keys sorted,
// so journal lines are stable.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.fgauges)+len(r.hists))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, g := range r.fgauges {
		out[n] = g.Value()
	}
	for n, h := range r.hists {
		out[n] = h.Snapshot()
	}
	return out
}

// SampleInto writes the registry's nonzero metrics whose names start
// with one of the given prefixes (no prefixes = all) into the progress
// sample: counters via Sample.Counter, so the engine derives per-second
// rates; gauges as plain fields; histograms contribute their count.
// Zero values are skipped to keep heartbeat lines compact — a metric
// appears once the instrumented path has actually run.
func (r *Registry) SampleInto(s *Sample, prefixes ...string) {
	match := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		if v := c.Value(); v != 0 && match(n) {
			s.Counter(n, v)
		}
	}
	for n, g := range r.gauges {
		if v := g.Value(); v != 0 && match(n) {
			s.Field(n, v)
		}
	}
	for n, g := range r.fgauges {
		if v := g.Value(); v != 0 && match(n) {
			s.Field(n, v)
		}
	}
	for n, h := range r.hists {
		if v := h.Count(); v != 0 && match(n) {
			s.Counter(n+".count", v)
		}
	}
}

// WriteText dumps the registry as sorted "name value" lines —
// what the CLIs print for -metrics.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		switch v := snap[n].(type) {
		case HistogramSnapshot:
			fmt.Fprintf(&sb, "%s count=%d sum=%d", n, v.Count, v.Sum)
			for _, b := range v.Buckets {
				if b.LE == math.MaxInt64 {
					fmt.Fprintf(&sb, " +Inf:%d", b.N)
				} else {
					fmt.Fprintf(&sb, " le%d:%d", b.LE, b.N)
				}
			}
			sb.WriteByte('\n')
		case float64:
			fmt.Fprintf(&sb, "%s %g\n", n, v)
		default:
			fmt.Fprintf(&sb, "%s %v\n", n, v)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Reset zeroes every registered metric (handles stay valid). Intended
// for tests and for delimiting phases in long-running processes.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, g := range r.fgauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.total.Store(0)
	}
}

// Expvar publishes the registry under the given expvar name (at most
// once per registry; later calls are no-ops). The values then appear
// at /debug/vars on any HTTP server using the default mux, e.g. the
// one started by the CLIs' -pprof flag.
func (r *Registry) Expvar(name string) {
	r.pubOnce.Do(func() {
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}
