//go:build !unix

package obs

// cpuMillis is unavailable on non-unix platforms; journals record 0.
func cpuMillis() float64 { return 0 }

// maxRSSKB is unavailable on non-unix platforms; journals record 0.
func maxRSSKB() int64 { return 0 }
