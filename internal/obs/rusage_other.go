//go:build !unix && !windows

package obs

// cpuMillis has no process-CPU clock to read here (no getrusage, no
// GetProcessTimes); journals record 0 and the cpu_ms field is omitted.
func cpuMillis() float64 { return 0 }

// maxRSSKB falls back to the Go runtime's MemStats.Sys — total bytes
// obtained from the OS — so journals written off-unix carry a
// comparable peak-footprint figure instead of zero. It underestimates
// a true RSS (no cgo allocations, no binary text) but tracks the same
// growth ru_maxrss tracks, which is what run-over-run comparisons in
// obsreport need.
func maxRSSKB() int64 { return memSysKB() }
