package obs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// CLIRun bundles the per-invocation observability shared by the three
// CLIs (snet, adversary, experiments): an optional run journal, an
// optional metrics dump at exit, an optional pprof/expvar debug
// server, and one cancellation path shared by -timeout and SIGINT.
// Typical use:
//
//	run, err := obs.StartCLI("adversary", *journalPath, *metrics, *pprofAddr)
//	...
//	ctx := run.SetupContext(*timeout)
//	... pass ctx to the engines; on *par.ErrCanceled call run.Entry.SetPartial ...
//	run.Finish()
//	os.Exit(run.ExitCode())
type CLIRun struct {
	// Entry is the journal record under construction; commands add
	// their payload with Entry.Set before Finish.
	Entry *Entry

	journal  *Journal
	metrics  bool
	reg      *Registry
	ln       net.Listener // debug server listener; closed by Finish
	progress *Progress    // from StartProgress; stopped by Finish

	ctx    context.Context    // from SetupContext; nil when not used
	cancel context.CancelFunc // cancels ctx and releases the signal goroutine

	mu          sync.Mutex
	done        bool
	interrupted bool // a SIGINT/SIGTERM arrived (vs. deadline expiry)
}

// StartCLI opens the journal (empty path = none), starts the debug
// server (empty addr = none), and begins a journal entry for cmd. The
// Default registry is published to expvar as "shufflenet" when the
// debug server is up.
func StartCLI(cmd, journalPath string, metrics bool, pprofAddr string) (*CLIRun, error) {
	j, err := OpenJournal(journalPath)
	if err != nil {
		return nil, err
	}
	r := &CLIRun{
		Entry:   NewEntry(cmd),
		journal: j,
		metrics: metrics,
		reg:     Default,
	}
	if pprofAddr != "" {
		Default.Expvar("shufflenet")
		ln, err := ServeDebug(pprofAddr)
		if err != nil {
			j.Close()
			return nil, err
		}
		r.ln = ln
	}
	return r, nil
}

// Journaling reports whether a journal file is attached.
func (r *CLIRun) Journaling() bool { return r != nil && r.journal != nil }

// Journal exposes the run's journal (nil when none is attached) so
// long-lived processes can interleave their own records — the daemon's
// per-request lines — with the run entry and progress heartbeats.
func (r *CLIRun) Journal() *Journal {
	if r == nil {
		return nil
	}
	return r.journal
}

// StartProgress begins live telemetry for the run: a status line on
// stderr, heartbeat records in the journal (when -journal is given, so
// killed runs leave a trace trail), and /debug/progress + the
// "shufflenet.progress" expvar on the -pprof debug server. interval <= 0
// selects the 1 s default. The returned engine is already running; the
// caller registers richer sources (engines pass it down via options)
// and Finish stops it. A built-in source samples the run's metric
// registry — memo hits/misses/load, par worker occupancy, experiment
// cells, kernel counters — so every heartbeat carries the registry
// state with derived rates even before any engine-specific source
// registers.
func (r *CLIRun) StartProgress(interval time.Duration) *Progress {
	if r == nil {
		return nil
	}
	p := NewProgress(r.Entry.Cmd, r.Entry.Run, interval)
	reg := r.reg
	p.Register(func(s *Sample) {
		reg.SampleInto(s,
			"core.", "par.", "experiments.", "sortcheck.", "halver.", "network.evalbits.")
	})
	p.AddSink(NewStatusSink(os.Stderr))
	if r.journal != nil {
		p.AddSink(JournalSink(r.journal))
	}
	p.Start()
	r.progress = p
	return p
}

// SetupContext returns the run's context: canceled when timeout
// elapses (timeout <= 0 means none) or when SIGINT/SIGTERM arrives, so
// the deadline and the interrupt share one cancellation path — the
// engines only ever see a ctx. The first signal cancels gracefully and
// restores the default disposition, so a second ^C kills the process
// the usual way. Finish later inspects the context to mark the journal
// entry timed_out or interrupted.
func (r *CLIRun) SetupContext(timeout time.Duration) context.Context {
	if r == nil {
		return context.Background()
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			r.mu.Lock()
			r.interrupted = true
			r.mu.Unlock()
			fmt.Fprintf(os.Stderr, "\n%s: %v — canceling; interrupt again to kill\n", r.Entry.Cmd, sig)
			signal.Stop(ch)
			cancel()
		case <-ctx.Done():
			signal.Stop(ch)
		}
	}()
	r.ctx, r.cancel = ctx, cancel
	return ctx
}

// ExitCode returns the process exit status this run should end with:
// 130 after an interrupt (the shell convention for SIGINT), 0
// otherwise — a deadline expiry is a requested, orderly stop, not a
// failure. Call after Finish.
func (r *CLIRun) ExitCode() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.interrupted {
		return 130
	}
	return 0
}

// Finish completes the entry (wall/CPU/mem/metrics, cancellation
// state), writes it to the journal, closes the journal and the debug
// server, and dumps the registry to stderr when -metrics was given.
// Idempotent; errors are reported to stderr rather than returned,
// since this runs at exit.
func (r *CLIRun) Finish() { r.finish(r.metrics) }

func (r *CLIRun) finish(dumpMetrics bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	interrupted := r.interrupted
	r.mu.Unlock()

	// Stop the progress engine first: its final heartbeat lands before
	// the entry, so the journal tail reads heartbeat…heartbeat, entry.
	r.progress.Stop()

	// Read the cancellation state before releasing the context: an
	// interrupt beats a deadline when both raced (the user acted).
	if r.ctx != nil {
		if interrupted {
			r.Entry.Interrupted = true
		} else if errors.Is(r.ctx.Err(), context.DeadlineExceeded) {
			r.Entry.TimedOut = true
		}
		r.cancel()
	}
	if r.ln != nil {
		r.ln.Close()
	}

	r.Entry.Finish(r.reg)
	if err := r.journal.Write(r.Entry); err != nil {
		fmt.Fprintf(os.Stderr, "%s: journal: %v\n", r.Entry.Cmd, err)
	}
	if err := r.journal.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: journal: %v\n", r.Entry.Cmd, err)
	}
	if dumpMetrics {
		fmt.Fprintf(os.Stderr, "--- metrics (%s) ---\n", r.Entry.Cmd)
		r.reg.WriteText(os.Stderr)
	}
}

// ServeDebug starts an HTTP server on addr exposing /debug/pprof and
// /debug/vars (via the default mux, where the pprof and expvar imports
// register themselves) plus /debug/progress (mounted explicitly on a
// per-server wrapper mux — see ProgressHandler; nothing of ours touches
// http.DefaultServeMux, so a daemon owning its own mux can coexist with
// a -pprof debug server in one process). The listener is created
// synchronously so bad addresses fail fast and returned so callers can
// close it on every exit path; serving happens in a background
// goroutine.
func ServeDebug(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/progress", ProgressHandler())
	mux.Handle("/", http.DefaultServeMux)
	go func() {
		if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintf(os.Stderr, "obs: debug server: %v\n", err)
		}
	}()
	return ln, nil
}
