package obs

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// CLIRun bundles the per-invocation observability shared by the three
// CLIs (snet, adversary, experiments): an optional run journal, an
// optional metrics dump at exit, an optional pprof/expvar debug
// server, and SIGINT flushing. Typical use:
//
//	run, err := obs.StartCLI("adversary", *journalPath, *metrics, *pprofAddr)
//	...
//	run.HandleInterrupt(nil)
//	defer run.Finish()
type CLIRun struct {
	// Entry is the journal record under construction; commands add
	// their payload with Entry.Set before Finish.
	Entry *Entry

	journal *Journal
	metrics bool
	reg     *Registry

	mu   sync.Mutex
	done bool
}

// StartCLI opens the journal (empty path = none), starts the debug
// server (empty addr = none), and begins a journal entry for cmd. The
// Default registry is published to expvar as "shufflenet" when the
// debug server is up.
func StartCLI(cmd, journalPath string, metrics bool, pprofAddr string) (*CLIRun, error) {
	j, err := OpenJournal(journalPath)
	if err != nil {
		return nil, err
	}
	if pprofAddr != "" {
		Default.Expvar("shufflenet")
		if err := ServeDebug(pprofAddr); err != nil {
			j.Close()
			return nil, err
		}
	}
	return &CLIRun{
		Entry:   NewEntry(cmd),
		journal: j,
		metrics: metrics,
		reg:     Default,
	}, nil
}

// Journaling reports whether a journal file is attached.
func (r *CLIRun) Journaling() bool { return r != nil && r.journal != nil }

// HandleInterrupt installs a SIGINT/SIGTERM handler that runs note (if
// non-nil), marks the entry interrupted, flushes the journal, dumps
// partial metrics to stderr, and exits with status 130 — so a Ctrl-C
// mid-table still leaves a valid journal line behind.
func (r *CLIRun) HandleInterrupt(note func(e *Entry)) {
	if r == nil {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		fmt.Fprintf(os.Stderr, "\n%s: %v — flushing journal and metrics\n", r.Entry.Cmd, sig)
		if note != nil {
			note(r.Entry)
		}
		r.Entry.Interrupted = true
		r.finish(true)
		os.Exit(130)
	}()
}

// Finish completes the entry (wall/CPU/mem/metrics), writes it to the
// journal, closes the journal, and dumps the registry to stderr when
// -metrics was given. Idempotent; errors are reported to stderr rather
// than returned, since this runs at exit.
func (r *CLIRun) Finish() { r.finish(r.metrics) }

func (r *CLIRun) finish(dumpMetrics bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	r.mu.Unlock()

	r.Entry.Finish(r.reg)
	if err := r.journal.Write(r.Entry); err != nil {
		fmt.Fprintf(os.Stderr, "%s: journal: %v\n", r.Entry.Cmd, err)
	}
	if err := r.journal.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: journal: %v\n", r.Entry.Cmd, err)
	}
	if dumpMetrics {
		fmt.Fprintf(os.Stderr, "--- metrics (%s) ---\n", r.Entry.Cmd)
		r.reg.WriteText(os.Stderr)
	}
}

// ServeDebug starts an HTTP server on addr exposing the default mux:
// /debug/pprof (imported above) and /debug/vars (expvar, which every
// published registry feeds). The listener is created synchronously so
// bad addresses fail fast; serving happens in a background goroutine
// for the life of the process.
func ServeDebug(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintf(os.Stderr, "obs: debug server: %v\n", err)
		}
	}()
	return nil
}
