package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the live-telemetry engine for long-running searches: a
// periodic snapshot ticker that polls registered sources (pull-based,
// so the instrumented hot loops pay nothing between samples), derives
// rates and an ETA, and fans each Sample out to sinks — the CLIs' -progress
// stderr status line, heartbeat records in the JSONL run journal, and
// the /debug/progress endpoint plus expvar on the -pprof debug server.
//
// The hot-path contract matches the metrics registry (DESIGN.md §4,
// decision 12): a nil or stopped Progress costs one atomic load per
// Enabled/Event probe and zero allocations; all real work happens on
// the sampling goroutine at the configured cadence (default 1 s).
// Sources read state the computation already maintains — shared
// atomics, the metric registry — so sampling never perturbs a search,
// and registering a Progress never changes any result (the
// byte-per-seed determinism contract is untouched).
type Progress struct {
	cmd      string
	run      string
	interval time.Duration
	start    time.Time

	// on gates Event/Enabled; Start sets it, Stop clears it. One
	// atomic load is the entire disabled hot path.
	on atomic.Bool

	mu      sync.Mutex
	sources []progressSource
	sinks   []Sink
	events  []Event
	dropped int64
	seq     int64
	nextSrc int64

	// emitMu serializes sample construction (the ticker goroutine,
	// Stop's final sample, and test-driven Emit calls), protecting the
	// rate-tracking state below.
	emitMu sync.Mutex
	prev   map[string]int64
	prevT  time.Time

	last atomic.Pointer[Sample]

	stop chan struct{}
	wg   sync.WaitGroup
}

type progressSource struct {
	id int64
	fn func(*Sample)
}

// Event is one discrete occurrence worth timestamping between samples
// — an incumbent improvement in the optimum search, a completed
// adversary block. Events are buffered (bounded) and drained into the
// next Sample.
type Event struct {
	TMS    float64        `json:"t_ms"` // milliseconds since the run started
	Name   string         `json:"name"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Sample is one progress snapshot: what every sink sees and what a
// heartbeat journal record serializes to. The "type":"heartbeat"
// discriminator keeps heartbeat lines distinguishable from run-journal
// entries in the same JSONL file (entries have no "type" field).
type Sample struct {
	Type      string         `json:"type"` // always "heartbeat"
	Run       string         `json:"run,omitempty"`
	Cmd       string         `json:"cmd,omitempty"`
	Seq       int64          `json:"seq"`
	Time      string         `json:"time"`
	ElapsedMS float64        `json:"elapsed_ms"`
	Frac      float64        `json:"frac,omitempty"`   // completion fraction of the dominant phase (omitted at 0)
	EtaMS     float64        `json:"eta_ms,omitempty"` // elapsed·(1−frac)/frac, the prefix-completion-rate ETA
	Fields    map[string]any `json:"fields,omitempty"`
	Events    []Event        `json:"events,omitempty"`
	Final     bool           `json:"final,omitempty"` // emitted by Stop: the run ended in an orderly way

	counters []string // field keys registered via Counter, for rate derivation
	fracSet  bool
}

// Field records one key/value in the sample.
func (s *Sample) Field(key string, v any) {
	if s.Fields == nil {
		s.Fields = map[string]any{}
	}
	s.Fields[key] = v
}

// Counter records a monotonically increasing value; the engine derives
// a "<key>_per_s" rate field from the previous sample.
func (s *Sample) Counter(key string, v int64) {
	s.Field(key, v)
	s.counters = append(s.counters, key)
}

// SetFraction records the completion fraction done/total. The first
// source to set it owns the sample's ETA — sources run in registration
// order, so the outermost phase (the sweep, not the cell) wins.
func (s *Sample) SetFraction(done, total float64) {
	if s.fracSet || total <= 0 {
		return
	}
	f := done / total
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	s.Frac = f
	s.fracSet = true
}

// Sink receives samples. Emit is called from the sampling goroutine
// only, so sinks need no internal locking; Close is called once by
// Stop after the final sample.
type Sink interface {
	Emit(s *Sample)
	Close()
}

// NewProgress creates a progress engine for the named command.
// interval <= 0 selects the 1 s default; run tags every sample with
// the run-journal correlation ID (may be empty). The engine is inert
// until Start.
func NewProgress(cmd, run string, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	return &Progress{
		cmd:      cmd,
		run:      run,
		interval: interval,
		start:    time.Now(),
		prev:     map[string]int64{},
	}
}

// Enabled reports whether the engine is running: the one-atomic-load
// probe hot loops use to skip event construction entirely. Nil-safe.
func (p *Progress) Enabled() bool {
	return p != nil && p.on.Load()
}

// Register adds a source polled at every sample and returns its
// unregister function (call it when the instrumented phase ends — a
// source must not outlive the state it reads). Nil-safe: a nil
// receiver returns a no-op unregister.
func (p *Progress) Register(fn func(*Sample)) (unregister func()) {
	if p == nil {
		return func() {}
	}
	p.mu.Lock()
	p.nextSrc++
	id := p.nextSrc
	p.sources = append(p.sources, progressSource{id: id, fn: fn})
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		for i, src := range p.sources {
			if src.id == id {
				p.sources = append(p.sources[:i], p.sources[i+1:]...)
				break
			}
		}
		p.mu.Unlock()
	}
}

// AddSink attaches a sink. Add sinks before Start.
func (p *Progress) AddSink(s Sink) {
	if p == nil || s == nil {
		return
	}
	p.mu.Lock()
	p.sinks = append(p.sinks, s)
	p.mu.Unlock()
}

// maxPendingEvents bounds the event buffer between samples; overflow
// is counted and reported as an "events_dropped" field rather than
// silently discarded.
const maxPendingEvents = 128

// Event records a timestamped occurrence for the next sample. Nil-safe
// and disabled-safe: when the engine is not running this is one atomic
// load and returns — guard expensive field-map construction with
// Enabled() at the call site.
func (p *Progress) Event(name string, fields map[string]any) {
	if p == nil || !p.on.Load() {
		return
	}
	ev := Event{TMS: float64(time.Since(p.start)) / float64(time.Millisecond), Name: name, Fields: fields}
	p.mu.Lock()
	if len(p.events) < maxPendingEvents {
		p.events = append(p.events, ev)
	} else {
		p.dropped++
	}
	p.mu.Unlock()
}

// Start begins sampling: an immediate first sample (so even a run
// killed before one interval leaves a heartbeat), then one per
// interval. Idempotent; nil-safe.
func (p *Progress) Start() {
	if p == nil || p.on.Swap(true) {
		return
	}
	p.emitMu.Lock()
	p.prevT = p.start
	p.emitMu.Unlock()
	p.stop = make(chan struct{})
	publishProgressExpvar()
	progressTrack(p, true)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.Emit()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.Emit()
			case <-p.stop:
				return
			}
		}
	}()
}

// Stop halts sampling, emits one final sample (marked Final) so the
// last heartbeat reflects the end state, and closes the sinks.
// Idempotent; nil-safe.
func (p *Progress) Stop() {
	if p == nil || !p.on.Swap(false) {
		return
	}
	close(p.stop)
	p.wg.Wait()
	p.emit(true)
	progressTrack(p, false)
	p.mu.Lock()
	sinks := p.sinks
	p.sinks = nil
	p.mu.Unlock()
	for _, s := range sinks {
		s.Close()
	}
}

// Last returns the most recent sample (nil before the first). What
// /debug/progress serves.
func (p *Progress) Last() *Sample {
	if p == nil {
		return nil
	}
	return p.last.Load()
}

// Emit takes one sample immediately, outside the ticker cadence —
// used by tests and by Stop for the final sample. Safe to call
// concurrently with the ticker.
func (p *Progress) Emit() {
	if p == nil {
		return
	}
	p.emit(false)
}

func (p *Progress) emit(final bool) {
	p.emitMu.Lock()
	defer p.emitMu.Unlock()

	now := time.Now()
	s := &Sample{
		Type:      "heartbeat",
		Run:       p.run,
		Cmd:       p.cmd,
		Time:      now.UTC().Format(time.RFC3339Nano),
		ElapsedMS: float64(now.Sub(p.start)) / float64(time.Millisecond),
		Final:     final,
	}

	p.mu.Lock()
	s.Seq = p.seq
	p.seq++
	sources := make([]progressSource, len(p.sources))
	copy(sources, p.sources)
	sinks := make([]Sink, len(p.sinks))
	copy(sinks, p.sinks)
	s.Events = p.events
	p.events = nil
	if p.dropped > 0 {
		s.Field("events_dropped", p.dropped)
		p.dropped = 0
	}
	p.mu.Unlock()

	for _, src := range sources {
		src.fn(s)
	}

	// Derive per-second rates for Counter-marked fields from the
	// previous sample; the first sample rates against the run start,
	// i.e. reports the average so far.
	if dt := now.Sub(p.prevT).Seconds(); dt > 0 {
		for _, k := range s.counters {
			v, ok := s.Fields[k].(int64)
			if !ok {
				continue
			}
			prevV, seen := p.prev[k]
			if !seen && s.Seq > 0 {
				// The counter first appeared mid-run (e.g. it is only
				// folded in at a phase boundary): its accumulation
				// window is unknown, so rating it against this
				// interval would be nonsense. Start from next sample.
				p.prev[k] = v
				continue
			}
			rate := float64(v-prevV) / dt
			if rate < 0 {
				rate = 0 // a phase restarted its counter; don't report nonsense
			}
			s.Fields[k+"_per_s"] = math.Round(rate)
			p.prev[k] = v
		}
	}
	p.prevT = now

	if s.fracSet && s.Frac > 0 {
		s.EtaMS = s.ElapsedMS * (1 - s.Frac) / s.Frac
	}

	p.last.Store(s)
	for _, sink := range sinks {
		sink.Emit(s)
	}
}

// ---- sinks ----

// StatusSink renders each sample as a single stderr/TTY status line:
// carriage-return rewriting on a terminal, one full line per sample on
// a pipe (CI logs). Close terminates the line so subsequent output
// starts clean.
type StatusSink struct {
	w     io.Writer
	tty   bool
	width int // last rendered width, for clearing on TTYs
}

// NewStatusSink builds a status-line sink for w, detecting whether w
// is a terminal (os.File character device).
func NewStatusSink(w io.Writer) *StatusSink {
	tty := false
	if f, ok := w.(*os.File); ok {
		if st, err := f.Stat(); err == nil && st.Mode()&os.ModeCharDevice != 0 {
			tty = true
		}
	}
	return &StatusSink{w: w, tty: tty}
}

// Emit renders the sample.
func (ss *StatusSink) Emit(s *Sample) {
	line := renderStatus(s)
	if !ss.tty {
		fmt.Fprintln(ss.w, line)
		return
	}
	pad := ""
	if n := ss.width - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(ss.w, "\r%s%s", line, pad)
	ss.width = len(line)
}

// Close finishes the status line.
func (ss *StatusSink) Close() {
	if ss.tty && ss.width > 0 {
		fmt.Fprintln(ss.w)
	}
}

// statusWidth caps the rendered status line; busy registries would
// otherwise wrap the terminal and defeat the \r rewrite.
const statusWidth = 160

// renderStatus formats one sample as a compact single line:
// elapsed, percent + ETA when known, then sorted fields (humanized),
// truncated to statusWidth.
func renderStatus(s *Sample) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s", s.Cmd, fmtDuration(s.ElapsedMS))
	if s.fracSet || s.Frac > 0 {
		fmt.Fprintf(&sb, " %2.0f%%", s.Frac*100)
		if s.EtaMS > 0 {
			fmt.Fprintf(&sb, " eta %s", fmtDuration(s.EtaMS))
		}
	}
	keys := make([]string, 0, len(s.Fields))
	for k := range s.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		frag := " " + statusKey(k) + "=" + humanAny(s.Fields[k])
		if sb.Len()+len(frag) > statusWidth {
			sb.WriteString(" …")
			break
		}
		sb.WriteString(frag)
	}
	if len(s.Events) > 0 {
		fmt.Fprintf(&sb, " [%d events]", len(s.Events))
	}
	return sb.String()
}

// statusKey shortens dotted metric names for the one-line rendering:
// the last two segments carry the meaning ("core.optimal.memo.hits" →
// "memo.hits").
func statusKey(k string) string {
	parts := strings.Split(k, ".")
	if len(parts) > 2 {
		return strings.Join(parts[len(parts)-2:], ".")
	}
	return k
}

// fmtDuration renders milliseconds as a compact duration (1.2s, 3m05s).
func fmtDuration(ms float64) string {
	d := time.Duration(ms * float64(time.Millisecond))
	switch {
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	case d < time.Minute:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
}

// humanAny renders a field value compactly (large numbers humanized).
func humanAny(v any) string {
	switch x := v.(type) {
	case int64:
		return humanCount(float64(x))
	case int:
		return humanCount(float64(x))
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return humanCount(x)
		}
		return fmt.Sprintf("%.3g", x)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// humanCount renders a count with k/M/G suffixes.
func humanCount(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// journalSink appends each sample as one heartbeat line to the run
// journal, synced with the line — the whole point is that a killed or
// OOM'd run leaves a resumable trace trail instead of nothing.
type journalSink struct{ j *Journal }

// JournalSink builds a heartbeat sink over j (nil journal → nil sink,
// which AddSink ignores).
func JournalSink(j *Journal) Sink {
	if j == nil {
		return nil
	}
	return journalSink{j: j}
}

func (js journalSink) Emit(s *Sample) {
	if err := js.j.WriteRecord(s); err != nil {
		fmt.Fprintf(os.Stderr, "obs: heartbeat: %v\n", err)
	}
}

// Close leaves the journal open: the CLI's final entry still has to go
// through it.
func (js journalSink) Close() {}

// funcSink adapts a function to the Sink interface (tests, custom fanout).
type funcSink func(*Sample)

// SinkFunc wraps fn as a Sink with a no-op Close.
func SinkFunc(fn func(*Sample)) Sink { return funcSink(fn) }

func (f funcSink) Emit(s *Sample) { f(s) }
func (f funcSink) Close()         {}

// ---- /debug/progress + expvar ----

var (
	progMu     sync.Mutex
	progActive []*Progress
	progOnce   sync.Once
)

func progressTrack(p *Progress, add bool) {
	progMu.Lock()
	defer progMu.Unlock()
	if add {
		progActive = append(progActive, p)
		return
	}
	for i, q := range progActive {
		if q == p {
			progActive = append(progActive[:i], progActive[i+1:]...)
			return
		}
	}
}

// progressSamples snapshots the latest sample of every active engine.
func progressSamples() []*Sample {
	progMu.Lock()
	defer progMu.Unlock()
	out := make([]*Sample, 0, len(progActive))
	for _, p := range progActive {
		if s := p.last.Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// ProgressHandler returns the /debug/progress handler: the latest
// sample of every active engine as indented JSON. The handler is a
// plain value the caller mounts on a mux of its choosing — nothing is
// ever registered on http.DefaultServeMux, so any number of Progress
// engines and any number of HTTP servers can coexist in one process
// (the old global http.HandleFunc registration leaked the route onto
// whatever server used the default mux, and a second registration
// would have been a duplicate-pattern panic). ServeDebug mounts it for
// the CLIs' -pprof flag; a daemon mounts it on its own mux.
func ProgressHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSONIndent(w, progressSamples())
	})
}

// publishProgressExpvar publishes the live samples as the
// "shufflenet.progress" expvar. At most once per process — the expvar
// namespace is global by design, so this stays Once-guarded.
func publishProgressExpvar() {
	progOnce.Do(func() {
		expvar.Publish("shufflenet.progress", expvar.Func(func() any { return progressSamples() }))
	})
}

// writeJSONIndent encodes v as indented JSON; errors go to stderr
// (the endpoint has no better channel once the header is out).
func writeJSONIndent(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "obs: /debug/progress: %v\n", err)
	}
}
