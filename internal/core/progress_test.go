package core

import (
	"context"
	"testing"
	"time"

	"shufflenet/internal/delta"
	"shufflenet/internal/obs"
)

// TestOptimalProgressReadOnly is the determinism contract for the
// telemetry tentpole: attaching a running Progress engine to the
// optimum search changes nothing about its result — same size, same
// witness, byte for byte — while the incumbent-improvement events
// arrive with honest sizes.
func TestOptimalProgressReadOnly(t *testing.T) {
	circ := delta.Butterfly(4).ToNetwork()
	baseSize, baseP, _, err := OptimalNoncollidingCtx(context.Background(), circ, 4)
	if err != nil {
		t.Fatal(err)
	}

	var samples []*obs.Sample
	p := obs.NewProgress("test", "r", time.Hour)
	p.AddSink(obs.SinkFunc(func(s *obs.Sample) { samples = append(samples, s) }))
	p.Start()
	size, pp, _, err := OptimalNoncollidingOpt(context.Background(), circ, OptimalOptions{
		Workers: 4, Progress: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Emit() // drain the events the search buffered
	p.Stop()

	if size != baseSize || !pp.Equal(baseP) {
		t.Fatalf("telemetry changed the result: %d/%v vs %d/%v", size, pp, baseSize, baseP)
	}

	// The incumbent events carry size + packed witness; the best one
	// must match the returned optimum (CAS success order guarantees the
	// final improvement is the final incumbent).
	best := 0
	for _, s := range samples {
		for _, ev := range s.Events {
			if ev.Name != "incumbent" {
				continue
			}
			if v, ok := ev.Fields["size"].(int); ok && v > best {
				best = v
			}
			if _, ok := ev.Fields["packed"]; !ok {
				t.Fatal("incumbent event lacks the packed witness")
			}
		}
	}
	if best != size {
		t.Fatalf("best incumbent event size = %d, want the optimum %d", best, size)
	}
}

// TestOptimalProgressSampleFields samples mid-search state through the
// registered source and checks the frontier fields the status line and
// heartbeats are built from.
func TestOptimalProgressSampleFields(t *testing.T) {
	circ := delta.Butterfly(4).ToNetwork()
	p := obs.NewProgress("test", "r", time.Hour)
	p.AddSink(obs.SinkFunc(func(*obs.Sample) {}))
	p.Start()
	if _, _, _, err := OptimalNoncollidingOpt(context.Background(), circ, OptimalOptions{
		Workers: 2, Progress: p,
	}); err != nil {
		t.Fatal(err)
	}
	// After the search returns its source is unregistered: a sample
	// taken now must NOT carry search fields (no stale reads of dead
	// state).
	p.Emit()
	if after := p.Last(); after != nil {
		if _, ok := after.Fields["optimal.prefixes_total"]; ok {
			t.Fatalf("sample taken after the search still carries search fields: %+v", after.Fields)
		}
	}
	p.Stop()

	// Now hold the source open by sampling mid-search via the engine's
	// own ticker: a tight interval against the larger butterfly-5 search.
	p2 := obs.NewProgress("test", "r2", time.Millisecond)
	var got *obs.Sample
	p2.AddSink(obs.SinkFunc(func(s *obs.Sample) {
		if _, ok := s.Fields["optimal.prefixes_total"]; ok && got == nil {
			got = s
		}
	}))
	p2.Start()
	if _, _, _, err := OptimalNoncollidingOpt(context.Background(), delta.Butterfly(4).ToNetwork(), OptimalOptions{
		Workers: 1, Progress: p2,
	}); err != nil {
		t.Fatal(err)
	}
	p2.Stop()
	if got != nil {
		if got.Fields["optimal.prefixes_total"].(int64) != 81 {
			t.Fatalf("prefixes_total = %v, want 81 (3^4 roots)", got.Fields["optimal.prefixes_total"])
		}
		if done := got.Fields["optimal.prefixes_done"].(int64); done < 0 || done > 81 {
			t.Fatalf("prefixes_done = %d out of range", done)
		}
	}
	// got may legitimately be nil when the search beats the first tick;
	// the read-only test above already proves the source registers.
}

// TestTheorem41ProgressReadOnly checks the adversary path: Theorem41Prog
// with a live engine returns the identical analysis and reports block
// completion through its source.
func TestTheorem41ProgressReadOnly(t *testing.T) {
	it := delta.BitonicIterated(4)
	base := Theorem41(it, 0)

	p := obs.NewProgress("test", "r", time.Hour)
	var samples []*obs.Sample
	p.AddSink(obs.SinkFunc(func(s *obs.Sample) { samples = append(samples, s) }))
	p.Start()
	an, err := Theorem41Prog(context.Background(), it, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Emit()
	p.Stop()

	if len(an.D) != len(base.D) || !an.P.Equal(base.P) {
		t.Fatalf("telemetry changed the analysis: |D|=%d vs %d", len(an.D), len(base.D))
	}
	blocks := 0
	for _, s := range samples {
		for _, ev := range s.Events {
			if ev.Name == "block" {
				blocks++
			}
		}
	}
	if blocks == 0 {
		t.Fatal("no block events arrived")
	}
	if blocks > it.Blocks() {
		t.Fatalf("%d block events for %d blocks", blocks, it.Blocks())
	}
}
