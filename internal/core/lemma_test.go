package core

import (
	"math/rand"
	"testing"

	"shufflenet/internal/delta"
	"shufflenet/internal/pattern"
)

// checkLemmaInvariants verifies every claim of Lemma 4.1 on the result,
// independently of the construction: set disjointness, B ⊆ A, the
// survival bound, the refinement relation p ⊃_A q, that each set is the
// [M_i]-set of q, and — the core property — that every set is
// noncolliding in the tree under q (checked by symbol simulation on the
// flattened circuit, which is an independent code path from the
// recursion).
func checkLemmaInvariants(t *testing.T, tree *delta.Network, p pattern.Pattern, k int, res *LemmaResult) {
	t.Helper()
	a := p.Set(pattern.M(0))
	inA := map[int]bool{}
	for _, w := range a {
		inA[w] = true
	}

	// t(l) bound and set-index range.
	if want := k*k*k + tree.Levels()*k*k; res.T != want {
		t.Fatalf("T = %d, want %d", res.T, want)
	}

	if len(res.Sets) != res.T {
		t.Fatalf("Sets has length %d, want T = %d", len(res.Sets), res.T)
	}
	seen := map[int]bool{}
	total := 0
	for i, ws := range res.Sets {
		if len(ws) == 0 {
			continue
		}
		for _, w := range ws {
			if seen[w] {
				t.Fatalf("wire %d in two sets", w)
			}
			seen[w] = true
			if !inA[w] {
				t.Fatalf("wire %d in B but not in A", w)
			}
			if res.Q[w] != pattern.M(i) {
				t.Fatalf("wire %d in set %d carries %v", w, i, res.Q[w])
			}
		}
		total += len(ws)
		// Conversely the [M_i]-set of Q must be exactly ws.
		if got := res.Q.Set(pattern.M(i)); len(got) != len(ws) {
			t.Fatalf("[M_%d]-set of Q has %d wires, set has %d", i, len(got), len(ws))
		}
	}
	if total != res.Survivors {
		t.Fatalf("Survivors = %d, but sets hold %d", res.Survivors, total)
	}
	if res.Initial != len(a) {
		t.Fatalf("Initial = %d, |A| = %d", res.Initial, len(a))
	}
	// Survival bound: |B| >= |A|(1 - l/k²).
	if k*k*res.Survivors < res.Initial*(k*k-tree.Levels()) {
		t.Fatalf("survival bound violated: |B|=%d |A|=%d l=%d k=%d",
			res.Survivors, res.Initial, tree.Levels(), k)
	}

	// Refinement: p ⊃_A q.
	if !p.URefines(res.Q, a) {
		t.Fatalf("Q is not an A-refinement of p")
	}

	// Noncollision, independently via pattern evaluation on the
	// flattened circuit.
	circ := tree.ToNetwork()
	for i, ws := range res.Sets {
		if len(ws) == 0 {
			continue
		}
		if !pattern.Noncolliding(circ, res.Q, pattern.M(i)) {
			t.Fatalf("set %d collides in the tree under Q", i)
		}
	}

	// OutWire must be a permutation of the slots.
	seenOut := make([]bool, tree.Inputs())
	for _, w := range res.OutWire {
		if seenOut[w] {
			t.Fatalf("OutWire not a permutation")
		}
		seenOut[w] = true
	}
}

func allM(n int) pattern.Pattern { return pattern.Uniform(n, pattern.M(0)) }

func TestLemma41Leaf(t *testing.T) {
	res := Lemma41(delta.Leaf(), pattern.Pattern{pattern.M(0)}, 3)
	if res.Survivors != 1 || len(res.Sets[0]) != 1 {
		t.Fatalf("leaf result wrong: %+v", res)
	}
	res = Lemma41(delta.Leaf(), pattern.Pattern{pattern.S(0)}, 3)
	if res.Survivors != 0 || res.SetCount() != 0 {
		t.Fatalf("leaf with S0 should have no sets")
	}
}

func TestLemma41Butterfly(t *testing.T) {
	for _, l := range []int{1, 2, 3, 4, 5} {
		tree := delta.Butterfly(l)
		p := allM(tree.Inputs())
		k := maxInt(2, l)
		res := Lemma41(tree, p, k)
		checkLemmaInvariants(t, tree, p, k, res)
	}
}

func TestLemma41ButterflyPaperParameters(t *testing.T) {
	// The paper's setting: l = k = lg n.
	for _, l := range []int{3, 4, 5, 6} {
		tree := delta.Butterfly(l)
		p := allM(tree.Inputs())
		res := Lemma41(tree, p, l)
		checkLemmaInvariants(t, tree, p, l, res)
		if res.Survivors == 0 {
			t.Fatalf("l=%d: everything lost", l)
		}
	}
}

func TestLemma41RandomRDNs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		l := 1 + rng.Intn(5)
		tree := delta.Random(l, 0.3+0.7*rng.Float64(), rng)
		p := allM(tree.Inputs())
		k := 2 + rng.Intn(4)
		res := Lemma41(tree, p, k)
		checkLemmaInvariants(t, tree, p, k, res)
	}
}

func TestLemma41MixedPattern(t *testing.T) {
	// S and L wires dilute the tracked set; invariants must still hold.
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 25; trial++ {
		l := 2 + rng.Intn(4)
		tree := delta.Random(l, 0.8, rng)
		n := tree.Inputs()
		p := make(pattern.Pattern, n)
		for i := range p {
			switch rng.Intn(3) {
			case 0:
				p[i] = pattern.S(0)
			case 1:
				p[i] = pattern.M(0)
			default:
				p[i] = pattern.L(0)
			}
		}
		k := 2 + rng.Intn(3)
		res := Lemma41(tree, p, k)
		checkLemmaInvariants(t, tree, p, k, res)
	}
}

func TestLemma41EmptyASurvivesTrivially(t *testing.T) {
	tree := delta.Butterfly(3)
	p := pattern.Uniform(8, pattern.S(0))
	res := Lemma41(tree, p, 3)
	if res.Survivors != 0 || res.Initial != 0 || res.SetCount() != 0 {
		t.Fatal("no tracked wires expected")
	}
}

func TestLemma41LargestSet(t *testing.T) {
	tree := delta.Butterfly(4)
	p := allM(16)
	res := Lemma41(tree, p, 4)
	idx, ws := res.LargestSet()
	if idx < 0 || len(ws) == 0 {
		t.Fatal("no largest set")
	}
	for i, s := range res.Sets {
		if len(s) > len(ws) {
			t.Fatalf("set %d larger than reported largest", i)
		}
	}
}

func TestLemma41OutWireConsistentWithEvaluation(t *testing.T) {
	// For tracked wires, OutWire must match concrete-value routing
	// under a refinement of Q.
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 10; trial++ {
		l := 2 + rng.Intn(3)
		tree := delta.Random(l, 0.9, rng)
		p := allM(tree.Inputs())
		res := Lemma41(tree, p, 3)
		circ := tree.ToNetwork()
		sim := pattern.EvalTrace(circ, res.Q)
		for _, ws := range res.Sets {
			for _, w := range ws {
				// o is the output slot with OutWire[o] == w; the
				// independent simulation must route w there too.
				o := indexWhere(res.OutWire, w)
				if sim.PosOf[w] != o {
					t.Fatalf("tracked wire %d: recursion says slot %d, simulation %d",
						w, o, sim.PosOf[w])
				}
			}
		}
	}
}

func TestLemma41Panics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad width", func() { Lemma41(delta.Butterfly(2), allM(8), 2) })
	mustPanic("bad k", func() { Lemma41(delta.Butterfly(2), allM(4), 0) })
	mustPanic("bad symbol", func() {
		p := allM(4)
		p[0] = pattern.X(0, 0)
		Lemma41(delta.Butterfly(2), p, 2)
	})
}

func indexWhere(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
