package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"shufflenet/internal/delta"
	"shufflenet/internal/par"
)

// Cancellation contract of the ctx-aware engine entry points: a
// Background context is free and behaviorally identical to the legacy
// API, a canceled context yields a typed *par.ErrCanceled carrying the
// honest partial progress, and a partial Analysis never claims blocks
// it did not finish.

func TestTheorem41CtxBackgroundMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	it := iteratedButterflies(64, 2, rng)
	want := Theorem41(it, 0)
	got, err := Theorem41Ctx(context.Background(), it, 0)
	if err != nil {
		t.Fatalf("Background run errored: %v", err)
	}
	if len(got.D) != len(want.D) || len(got.Reports) != len(want.Reports) {
		t.Fatalf("ctx/plain disagree: |D| %d vs %d, reports %d vs %d",
			len(got.D), len(want.D), len(got.Reports), len(want.Reports))
	}
}

func TestTheorem41CtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	it := iteratedButterflies(64, 2, nil)
	an, err := Theorem41Ctx(ctx, it, 0)
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	var ce *par.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *par.ErrCanceled", err)
	}
	if ce.Op != "core.Theorem41" {
		t.Fatalf("Op = %q", ce.Op)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
	if ce.BlocksDone != 0 {
		t.Fatalf("pre-canceled run claims %d completed blocks", ce.BlocksDone)
	}
	// The partial Analysis is the state before any block: the whole
	// input set survives.
	if an == nil {
		t.Fatal("no partial Analysis returned")
	}
	if len(an.D) != 64 || ce.Survivors != 64 {
		t.Fatalf("partial survivors: |D|=%d, field=%d, want 64", len(an.D), ce.Survivors)
	}
	if len(an.Reports) != 0 {
		t.Fatalf("partial Analysis claims %d block reports", len(an.Reports))
	}
}

func TestLemma41CtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tree := delta.Butterfly(4)
	res, err := Lemma41Ctx(ctx, tree, allM(16), 2)
	if res != nil {
		t.Fatalf("canceled lemma returned a result: %+v", res)
	}
	var ce *par.ErrCanceled
	if !errors.As(err, &ce) || ce.Op != "core.Lemma41" {
		t.Fatalf("error = %v, want ErrCanceled{Op: core.Lemma41}", err)
	}
}

func TestAddBlockCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inc := NewIncremental(16, 0)
	_, err := inc.AddBlockCtx(ctx, nil, delta.NewForest(delta.Butterfly(4)))
	var ce *par.ErrCanceled
	if !errors.As(err, &ce) || ce.Op != "core.Incremental.AddBlock" {
		t.Fatalf("error = %v, want ErrCanceled{Op: core.Incremental.AddBlock}", err)
	}
	if ce.BlocksDone != 0 || ce.Survivors != 16 {
		t.Fatalf("partial fields: blocks=%d survivors=%d", ce.BlocksDone, ce.Survivors)
	}
}

// TestTheorem41CtxDeadlineMidRun drives a real deadline through the
// parallel recursion (run under -race this doubles as a data-race
// check on the cancellation unwinding). The assertions hold whichever
// side of the race fires: a canceled run must report a consistent
// prefix, a completed run must match the plain API.
func TestTheorem41CtxDeadlineMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	it := iteratedButterflies(4096, 3, rng)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	an, err := Theorem41Ctx(ctx, it, 0)
	if an == nil {
		t.Fatal("no Analysis either way")
	}
	if err == nil {
		if len(an.Reports) != 3 {
			t.Fatalf("clean run has %d reports, want 3", len(an.Reports))
		}
		return
	}
	var ce *par.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *par.ErrCanceled", err)
	}
	if ce.BlocksDone != len(an.Reports) || ce.BlocksDone >= 3 {
		t.Fatalf("canceled after %d blocks but Analysis has %d reports",
			ce.BlocksDone, len(an.Reports))
	}
	if ce.Survivors != len(an.D) {
		t.Fatalf("Survivors field %d != |D| %d", ce.Survivors, len(an.D))
	}
}
