package core

import (
	"math/rand"
	"testing"

	"shufflenet/internal/delta"
	"shufflenet/internal/perm"
	"shufflenet/internal/sortcheck"
)

func TestZeroOneWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{16, 64, 256} {
		l := lg(n)
		it := delta.NewIterated(n)
		it.AddBlock(nil, delta.Butterfly(l))
		it.AddBlock(perm.Random(n, rng), delta.Butterfly(l))
		an := Theorem41(it, 0)
		cert, err := an.Certificate()
		if err != nil {
			t.Fatal(err)
		}
		circ, _ := it.ToNetwork()
		w, err := cert.ZeroOneWitness(circ)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, v := range w {
			if v != 0 && v != 1 {
				t.Fatalf("witness not 0-1: %v", w)
			}
		}
		if sortcheck.IsSorted(circ.Eval(w)) {
			t.Fatalf("n=%d: witness does not fail", n)
		}
	}
}

func TestZeroOneWitnessRejectsBadCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	n := 32
	it := delta.NewIterated(n)
	it.AddBlock(nil, delta.Butterfly(5))
	it.AddBlock(perm.Random(n, rng), delta.Butterfly(5))
	an := Theorem41(it, 0)
	cert, err := an.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	// Verify against the wrong circuit: must fail cleanly.
	wrong, _ := delta.BitonicIterated(5).ToNetwork()
	if _, err := cert.ZeroOneWitness(wrong); err == nil {
		t.Fatal("witness extracted with an invalid certificate")
	}
}
