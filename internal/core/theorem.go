package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"shufflenet/internal/delta"
	"shufflenet/internal/obs"
	"shufflenet/internal/par"
	"shufflenet/internal/pattern"
)

// BlockReport records the adversary's state after one block of an
// iterated reverse delta network — the per-block telemetry surfaced by
// `adversary -v` and recorded in run journals.
type BlockReport struct {
	Block      int     // block index
	Levels     int     // levels of the block's trees (= recursion depth)
	Before     int     // |D| entering the block
	Survivors  int     // |B| across all sets after the block
	SetCount   int     // number of nonempty surviving noncolliding sets
	Collisions int     // tracked wires charged to collision sets in the block
	ChosenSet  int     // index i0 of the largest set kept
	After      int     // |D| = size of the kept set
	PaperBound float64 // n / lg^{4(d+1)} n, the Theorem 4.1 guarantee
}

// Analysis is the outcome of Theorem41: a pattern over the network's
// original input wires whose [M_0]-set D is noncolliding in the entire
// iterated network.
type Analysis struct {
	// P is the final input pattern over original input wires; it uses
	// only S_0, M_0, L_0.
	P pattern.Pattern
	// D is the [M_0]-set of P: wires whose values are pairwise never
	// compared by the network under any refinement of P.
	D []int
	// Reports describes the per-block evolution.
	Reports []BlockReport
	// K is the averaging parameter used (lg n unless overridden).
	K int
}

// Theorem41 runs the constructive Theorem 4.1 on an iterated reverse
// delta network: it pushes a pattern through the blocks, applying
// Lemma41 to every tree of every block and keeping, after each block,
// the largest surviving noncolliding set (renamed to M_0 by Lemma 3.4's
// ρ). k is the averaging parameter; k <= 0 selects the paper's choice
// k = lg n.
func Theorem41(it *delta.Iterated, k int) *Analysis {
	an, _ := Theorem41Ctx(context.Background(), it, k)
	return an
}

// Theorem41Ctx is Theorem41 under a context. On cancellation it
// returns the analysis as of the last *completed* block — the pattern
// and set D are exactly what the adversary holds at that point, so the
// partial reports are honest telemetry, not an approximation — plus a
// *par.ErrCanceled whose BlocksDone and Survivors record the cut
// point. The in-flight block is discarded (Lemma 4.1's induction has
// no meaningful half-state). Callers must not derive a certificate
// from a canceled run: D is noncolliding only for the prefix of the
// network actually processed.
func Theorem41Ctx(ctx context.Context, it *delta.Iterated, k int) (*Analysis, error) {
	return Theorem41Prog(ctx, it, k, nil)
}

// Theorem41Prog is Theorem41Ctx with live telemetry: when prog is
// non-nil a registered source reports blocks done/total (driving the
// engine's completion fraction and ETA) and the adversary's current
// survivor count after the last completed block. Telemetry is
// read-only; the analysis is identical with it on or off.
func Theorem41Prog(ctx context.Context, it *delta.Iterated, k int, prog *obs.Progress) (*Analysis, error) {
	inc := NewIncremental(it.Slots(), k)
	blocks := it.Blocks()
	var blocksDone, survivors atomic.Int64
	if prog != nil {
		survivors.Store(int64(len(inc.D())))
		unregister := prog.Register(func(s *obs.Sample) {
			bd := blocksDone.Load()
			s.Field("adversary.blocks_done", bd)
			s.Field("adversary.blocks_total", int64(blocks))
			s.Field("adversary.survivors", survivors.Load())
			s.SetFraction(float64(bd), float64(blocks))
		})
		defer unregister()
	}
	for b := 0; b < blocks; b++ {
		if _, err := inc.AddBlockCtx(ctx, it.Pre(b), it.Block(b)); err != nil {
			return inc.Analysis(), &par.ErrCanceled{
				Op:         "core.Theorem41",
				Cause:      ctx.Err(),
				BlocksDone: b,
				Survivors:  len(inc.D()),
			}
		}
		blocksDone.Store(int64(b + 1))
		survivors.Store(int64(len(inc.D())))
		if prog.Enabled() {
			prog.Event("block", map[string]any{
				"block":     b,
				"survivors": len(inc.D()),
			})
		}
		if inc.Dead() {
			break
		}
	}
	return inc.Analysis(), nil
}

// paperBound returns n / lg^{4d} n (Theorem 4.1's guaranteed survival
// after d full-width blocks with k = lg n).
func paperBound(n, d int) float64 {
	return float64(n) / math.Pow(math.Log2(float64(n)), float64(4*d))
}

// lg returns floor(log2 n) for n >= 1.
func lg(n int) int {
	l := 0
	for 1<<uint(l+1) <= n {
		l++
	}
	return l
}

// String summarizes the analysis.
func (an *Analysis) String() string {
	return fmt.Sprintf("analysis[k=%d blocks=%d |D|=%d]", an.K, len(an.Reports), len(an.D))
}
