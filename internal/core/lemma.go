// Package core implements the paper's contribution: the lower-bound
// adversary of Section 4, made constructive.
//
// Lemma41 executes the induction of Lemma 4.1 on a reverse delta
// network: starting from a pattern over {S_0, M_0, L_0}, it maintains a
// collection of t(l) = k³ + l·k² noncolliding [M_i]-sets through the
// network, computing at every node the collision sets C_{i,j}, the
// averaging offset i₀ minimizing |L_{i₀}|, the partial matching between
// the two sub-networks' collections, and the order-preserving renamings
// (steps 1, 2, 1', 2' of the paper) that realize the matching as a
// pattern refinement.
//
// Theorem41 iterates Lemma41 across the blocks of an iterated reverse
// delta network, between blocks renaming the largest surviving set to
// M_0 via Lemma 3.4's ρ_i and discarding the rest.
//
// Certificate turns the surviving set into the Corollary 4.1.1 witness:
// two concrete inputs π, π′ differing in a pair of adjacent values that
// the network never compares, so it cannot sort both. Verify replays
// both inputs through an independent evaluation of the network and
// checks every step of that argument.
package core

import (
	"context"
	"fmt"

	"shufflenet/internal/delta"
	"shufflenet/internal/obs"
	"shufflenet/internal/par"
	"shufflenet/internal/pattern"
)

// Adversary metrics, added once per Lemma41 call (the recursion itself
// stays atomic-free; collision counts ride up through LemmaResult).
var (
	metLemmaTrees      = obs.C("core.lemma41.trees")
	metLemmaWires      = obs.C("core.lemma41.wires")
	metLemmaLevels     = obs.C("core.lemma41.levels")
	metLemmaCollisions = obs.C("core.lemma41.collisions")
)

// LemmaResult is the outcome of Lemma41 on one reverse delta tree.
type LemmaResult struct {
	// Q is the refined input pattern over the tree's slots: an
	// A-refinement of the input pattern (paper notation: p ⊐_A q).
	Q pattern.Pattern
	// Sets maps set index i to the [M_i]-set of Q (input slots).
	// Only nonempty sets are present; every index is < T.
	Sets map[int][]int
	// T is t(l) = k³ + l·k², the bound on the number of sets.
	T int
	// OutWire[o] is the input slot whose value reaches output slot o
	// under Q (exact for all tracked wires).
	OutWire []int
	// Survivors is |B| = Σ|Sets[i]|; Initial is |A|.
	Survivors, Initial int
	// Collisions is the total number of tracked wires charged to
	// collision sets C_{j,j-i0} (and hence renamed to X symbols)
	// across every node of the recursion — the adversary's entire
	// loss budget, spent where the averaging argument says it may.
	Collisions int
	// xNext is the next unused X subscript (internal bookkeeping,
	// exported via method only).
	xNext int
}

// OutPattern returns the output pattern Λ(Q): the symbol on each output
// slot.
func (r *LemmaResult) OutPattern() pattern.Pattern {
	out := make(pattern.Pattern, len(r.OutWire))
	for o, w := range r.OutWire {
		out[o] = r.Q[w]
	}
	return out
}

// LargestSet returns the index and wires of a largest surviving set
// (ties broken toward the smallest index), or (-1, nil) if all sets are
// empty.
func (r *LemmaResult) LargestSet() (int, []int) {
	best, bestIdx := -1, -1
	for i := 0; i < r.T; i++ {
		s, ok := r.Sets[i]
		if !ok {
			continue
		}
		if len(s) > best {
			best, bestIdx = len(s), i
		}
	}
	if bestIdx < 0 {
		return -1, nil
	}
	return bestIdx, r.Sets[bestIdx]
}

// Lemma41 runs the constructive Lemma 4.1 on the l-level reverse delta
// tree d under input pattern p (which must use only S_0, M_0, L_0),
// with averaging parameter k >= 1. It returns a refinement Q of p and
// at most t(l) = k³ + l·k² disjoint noncolliding [M_i]-sets that
// together contain at least |A|·(1 − l/k²) of the wires of the original
// [M_0]-set A.
func Lemma41(d *delta.Network, p pattern.Pattern, k int) *LemmaResult {
	res, _ := Lemma41Ctx(context.Background(), d, p, k)
	return res
}

// Lemma41Ctx is Lemma41 under a context. The recursion probes the
// context's done channel once per tree node (never inside a node's
// comparator loops), which a Background context compiles down to a nil
// check. On cancellation the induction's intermediate state is
// discarded — a half-built refinement proves nothing — and a
// *par.ErrCanceled is returned with a nil result.
func Lemma41Ctx(ctx context.Context, d *delta.Network, p pattern.Pattern, k int) (*LemmaResult, error) {
	if len(p) != d.Inputs() {
		panic(fmt.Sprintf("core.Lemma41: pattern width %d != %d inputs", len(p), d.Inputs()))
	}
	if k < 1 {
		panic("core.Lemma41: k must be positive")
	}
	for _, s := range p {
		if s != pattern.S(0) && s != pattern.M(0) && s != pattern.L(0) {
			panic(fmt.Sprintf("core.Lemma41: input pattern contains %v; only S0/M0/L0 allowed", s))
		}
	}
	metLemmaTrees.Inc()
	metLemmaWires.Add(int64(d.Inputs()))
	metLemmaLevels.Add(int64(d.Levels()))
	res := lemmaRec(d, p, k, ctx.Done())
	if res == nil {
		return nil, &par.ErrCanceled{Op: "core.Lemma41", Cause: ctx.Err()}
	}
	metLemmaCollisions.Add(int64(res.Collisions))
	// Paper invariant: |B| >= |A| - l*|A|/k².
	if float64(res.Survivors) < float64(res.Initial)-float64(d.Levels()*res.Initial)/float64(k*k)-1e-9 {
		panic(fmt.Sprintf("core.Lemma41: survival bound violated: |B|=%d |A|=%d l=%d k=%d",
			res.Survivors, res.Initial, d.Levels(), k))
	}
	return res, nil
}

// parallelSubtree is the sub-network size above which the two
// sub-recursions of lemmaRec run on separate goroutines. With halving
// sizes the spawn count is O(n / parallelSubtree), so the threshold
// bounds goroutine overhead while exposing ~n/threshold-way
// parallelism at the top of the recursion.
const parallelSubtree = 1 << 11

// lemmaRec is the induction of Lemma 4.1. All slot indices in the
// result are local to d. done is the caller's cancellation channel
// (nil when the run is not cancelable); a closed done makes the whole
// recursion unwind with a nil result. One probe per node keeps the
// per-comparator loops branch-free, and a nil done is a single pointer
// check — the non-cancelable path is unchanged.
func lemmaRec(d *delta.Network, p pattern.Pattern, k int, done <-chan struct{}) *LemmaResult {
	if done != nil {
		select {
		case <-done:
			return nil
		default:
		}
	}
	k2 := k * k
	t := func(l int) int { return k*k2 + l*k2 }

	if d.Levels() == 0 {
		// Base case: M_0 := A, all other sets empty, q := p.
		res := &LemmaResult{
			Q:       p.Clone(),
			Sets:    map[int][]int{},
			T:       t(0),
			OutWire: []int{0},
			Initial: 0,
		}
		if p[0] == pattern.M(0) {
			res.Sets[0] = []int{0}
			res.Survivors, res.Initial = 1, 1
		}
		res.xNext = 0
		return res
	}

	h := d.Inputs() / 2
	l := d.Levels() - 1 // sub-networks have l levels; this node is level l+1

	// The two sub-recursions touch disjoint slot ranges and share no
	// state, so above a size threshold they run concurrently. The
	// result is bit-identical to the sequential order (all averaging
	// ties are broken deterministically).
	var st0, st1 *LemmaResult
	if h >= parallelSubtree {
		joined := make(chan struct{})
		go func() {
			defer close(joined)
			st1 = lemmaRec(d.Sub(1), p[h:].Clone(), k, done)
		}()
		st0 = lemmaRec(d.Sub(0), p[:h].Clone(), k, done)
		<-joined
	} else {
		st0 = lemmaRec(d.Sub(0), p[:h].Clone(), k, done)
		if st0 == nil {
			return nil
		}
		st1 = lemmaRec(d.Sub(1), p[h:].Clone(), k, done)
	}
	if st0 == nil || st1 == nil {
		return nil // canceled somewhere below; unwind
	}

	// setOf[side][slot] = index of the set containing the slot, or -1.
	setOf0 := indexSets(st0.Sets, h)
	setOf1 := indexSets(st1.Sets, h)

	// Final-level meetings between tracked wires: for each comparator,
	// the values arriving are those of st.OutWire at the comparator's
	// slots. A meeting between M_{0,i} and M_{1,j} contributes the
	// sub0 wire to C_{i,j}; the paper's L_offset collects C_{j, j-offset}.
	type meeting struct{ w0, j0, j1 int }
	var meetings []meeting
	offsetCount := make([]int, k2)
	for _, cmp := range d.Final() {
		w0 := st0.OutWire[cmp.O0]
		w1 := st1.OutWire[cmp.O1]
		j0, j1 := setOf0[w0], setOf1[w1]
		if j0 < 0 || j1 < 0 {
			continue
		}
		meetings = append(meetings, meeting{w0: w0, j0: j0, j1: j1})
		if off := j0 - j1; off >= 0 && off < k2 {
			offsetCount[off]++
		}
	}

	// Averaging: choose i0 minimizing |L_{i0}|.
	i0 := 0
	for off := 1; off < k2; off++ {
		if offsetCount[off] < offsetCount[i0] {
			i0 = off
		}
	}

	// removed: wires of C_{j, j-i0} (sub0 side), grouped by set index.
	removed := map[int]bool{}
	for _, m := range meetings {
		if m.j0-m.j1 == i0 {
			removed[m.w0] = true
		}
	}

	// Renaming step 1 / 1' (defensive; such symbols normally absent):
	// shift M_i / X_{i,j} with i >= t(l) (sub0) or i >= t(l)+i0 (sub1)
	// up by k². Step 2: removed sub0 wires M_j -> X(j, j0fresh).
	// Step 2': shift all sub1 M_i / X_{i,j} with i < t(l) up by i0.
	xFresh := maxInt(st0.xNext, st1.xNext)
	usedFresh := false

	q := make(pattern.Pattern, d.Inputs())
	for w := 0; w < h; w++ {
		s := st0.Q[w]
		s = shiftFrom(s, t(l), k2)
		if removed[w] {
			if s.Kind != pattern.KindM {
				panic(fmt.Sprintf("core: removed wire %d carries %v, want an M symbol", w, s))
			}
			s = pattern.X(s.I, xFresh)
			usedFresh = true
		}
		q[w] = s
	}
	for w := 0; w < h; w++ {
		s := st1.Q[w]
		s = shiftFrom(s, t(l)+i0, k2)
		s = shiftBelow(s, t(l), i0)
		q[h+w] = s
	}
	if usedFresh {
		xFresh++
	}

	// Merge the collections: M_j := (M_{0,j} \ C_{j,j-i0}) ∪ M_{1,j-i0}.
	sets := map[int][]int{}
	for j, ws := range st0.Sets {
		var kept []int
		for _, w := range ws {
			if !removed[w] {
				kept = append(kept, w)
			}
		}
		if len(kept) > 0 {
			sets[j] = kept
		}
	}
	for j, ws := range st1.Sets {
		nj := j + i0
		dst := sets[nj]
		for _, w := range ws {
			dst = append(dst, h+w)
		}
		sets[nj] = dst
	}

	// Output wires: sub outputs concatenated, then the final level
	// applied with the *renamed* symbols (renamings are order-preserving
	// so earlier routing decisions are unaffected).
	outWire := make([]int, d.Inputs())
	copy(outWire, st0.OutWire)
	for o, w := range st1.OutWire {
		outWire[h+o] = h + w
	}
	for _, cmp := range d.Final() {
		oa, ob := cmp.O0, h+cmp.O1
		sa, sb := q[outWire[oa]], q[outWire[ob]]
		c := pattern.Compare(sa, sb)
		if c == 0 {
			// Ambiguous meeting: both sides must now be untracked.
			if setOf(sets, outWire[oa]) >= 0 && setOf(sets, outWire[ob]) >= 0 {
				panic("core: tracked wires still collide after removal")
			}
			continue // convention: equal symbols stay in place
		}
		// Route min to the MinFirst side.
		minAtA := c < 0
		if cmp.MinFirst != minAtA {
			outWire[oa], outWire[ob] = outWire[ob], outWire[oa]
		}
	}

	surv := 0
	for _, ws := range sets {
		surv += len(ws)
	}
	return &LemmaResult{
		Q:          q,
		Sets:       sets,
		T:          t(l + 1),
		OutWire:    outWire,
		Survivors:  surv,
		Initial:    st0.Initial + st1.Initial,
		Collisions: st0.Collisions + st1.Collisions + len(removed),
		xNext:      xFresh,
	}
}

// indexSets builds slot -> set-index lookup for a collection.
func indexSets(sets map[int][]int, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	for j, ws := range sets {
		for _, w := range ws {
			if idx[w] != -1 {
				panic(fmt.Sprintf("core: slot %d in two sets (%d and %d)", w, idx[w], j))
			}
			idx[w] = j
		}
	}
	return idx
}

// setOf does a linear lookup of the set containing slot w (-1 if none);
// used only on the final-level assertion path.
func setOf(sets map[int][]int, w int) int {
	for j, ws := range sets {
		for _, x := range ws {
			if x == w {
				return j
			}
		}
	}
	return -1
}

// shiftFrom shifts M_i -> M_{i+by} and X_{i,j} -> X_{i+by,j} for all
// i >= from, leaving other symbols unchanged.
func shiftFrom(s pattern.Symbol, from, by int) pattern.Symbol {
	if (s.Kind == pattern.KindM || s.Kind == pattern.KindX) && s.I >= from {
		s.I += by
	}
	return s
}

// shiftBelow shifts M_i -> M_{i+by} and X_{i,j} -> X_{i+by,j} for all
// i < below, leaving other symbols unchanged.
func shiftBelow(s pattern.Symbol, below, by int) pattern.Symbol {
	if (s.Kind == pattern.KindM || s.Kind == pattern.KindX) && s.I < below {
		s.I += by
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
