// Package core implements the paper's contribution: the lower-bound
// adversary of Section 4, made constructive.
//
// Lemma41 executes the induction of Lemma 4.1 on a reverse delta
// network: starting from a pattern over {S_0, M_0, L_0}, it maintains a
// collection of t(l) = k³ + l·k² noncolliding [M_i]-sets through the
// network, computing at every node the collision sets C_{i,j}, the
// averaging offset i₀ minimizing |L_{i₀}|, the partial matching between
// the two sub-networks' collections, and the order-preserving renamings
// (steps 1, 2, 1', 2' of the paper) that realize the matching as a
// pattern refinement.
//
// Theorem41 iterates Lemma41 across the blocks of an iterated reverse
// delta network, between blocks renaming the largest surviving set to
// M_0 via Lemma 3.4's ρ_i and discarding the rest.
//
// Certificate turns the surviving set into the Corollary 4.1.1 witness:
// two concrete inputs π, π′ differing in a pair of adjacent values that
// the network never compares, so it cannot sort both. Verify replays
// both inputs through an independent evaluation of the network and
// checks every step of that argument.
package core

import (
	"context"
	"fmt"

	"shufflenet/internal/delta"
	"shufflenet/internal/obs"
	"shufflenet/internal/par"
	"shufflenet/internal/pattern"
)

// Adversary metrics, added once per Lemma41 call (the recursion itself
// stays atomic-free; collision counts ride up through LemmaResult).
var (
	metLemmaTrees      = obs.C("core.lemma41.trees")
	metLemmaWires      = obs.C("core.lemma41.wires")
	metLemmaLevels     = obs.C("core.lemma41.levels")
	metLemmaCollisions = obs.C("core.lemma41.collisions")
)

// LemmaResult is the outcome of Lemma41 on one reverse delta tree.
type LemmaResult struct {
	// Q is the refined input pattern over the tree's slots: an
	// A-refinement of the input pattern (paper notation: p ⊐_A q).
	Q pattern.Pattern
	// Sets[i] is the [M_i]-set of Q (input slots, increasing order).
	// The slice has length T; indices with no surviving wires are nil.
	// The set index is dense (< t(l)), so a flat slice replaces the
	// map the recursion used to carry per node.
	Sets [][]int
	// T is t(l) = k³ + l·k², the bound on the number of sets.
	T int
	// OutWire[o] is the input slot whose value reaches output slot o
	// under Q (exact for all tracked wires).
	OutWire []int
	// Survivors is |B| = Σ|Sets[i]|; Initial is |A|.
	Survivors, Initial int
	// Collisions is the total number of tracked wires charged to
	// collision sets C_{j,j-i0} (and hence renamed to X symbols)
	// across every node of the recursion — the adversary's entire
	// loss budget, spent where the averaging argument says it may.
	Collisions int
	// xNext is the next unused X subscript (internal bookkeeping,
	// exported via method only).
	xNext int
}

// OutPattern returns the output pattern Λ(Q): the symbol on each output
// slot.
func (r *LemmaResult) OutPattern() pattern.Pattern {
	out := make(pattern.Pattern, len(r.OutWire))
	for o, w := range r.OutWire {
		out[o] = r.Q[w]
	}
	return out
}

// SetCount returns the number of nonempty surviving sets.
func (r *LemmaResult) SetCount() int {
	n := 0
	for _, s := range r.Sets {
		if len(s) > 0 {
			n++
		}
	}
	return n
}

// LargestSet returns the index and wires of a largest surviving set
// (ties broken toward the smallest index), or (-1, nil) if all sets are
// empty.
func (r *LemmaResult) LargestSet() (int, []int) {
	best, bestIdx := 0, -1
	for i, s := range r.Sets {
		if len(s) > best {
			best, bestIdx = len(s), i
		}
	}
	if bestIdx < 0 {
		return -1, nil
	}
	return bestIdx, r.Sets[bestIdx]
}

// Lemma41 runs the constructive Lemma 4.1 on the l-level reverse delta
// tree d under input pattern p (which must use only S_0, M_0, L_0),
// with averaging parameter k >= 1. It returns a refinement Q of p and
// at most t(l) = k³ + l·k² disjoint noncolliding [M_i]-sets that
// together contain at least |A|·(1 − l/k²) of the wires of the original
// [M_0]-set A.
func Lemma41(d *delta.Network, p pattern.Pattern, k int) *LemmaResult {
	res, _ := Lemma41Ctx(context.Background(), d, p, k)
	return res
}

// Lemma41Ctx is Lemma41 under a context. The recursion probes the
// context's done channel once per tree node (never inside a node's
// comparator loops), which a Background context compiles down to a nil
// check. On cancellation the induction's intermediate state is
// discarded — a half-built refinement proves nothing — and a
// *par.ErrCanceled is returned with a nil result.
func Lemma41Ctx(ctx context.Context, d *delta.Network, p pattern.Pattern, k int) (*LemmaResult, error) {
	if len(p) != d.Inputs() {
		panic(fmt.Sprintf("core.Lemma41: pattern width %d != %d inputs", len(p), d.Inputs()))
	}
	if k < 1 {
		panic("core.Lemma41: k must be positive")
	}
	for _, s := range p {
		if s != pattern.S(0) && s != pattern.M(0) && s != pattern.L(0) {
			panic(fmt.Sprintf("core.Lemma41: input pattern contains %v; only S0/M0/L0 allowed", s))
		}
	}
	metLemmaTrees.Inc()
	metLemmaWires.Add(int64(d.Inputs()))
	metLemmaLevels.Add(int64(d.Levels()))

	// One allocation block for the whole run: the recursion mutates
	// disjoint subranges of these buffers in place instead of cloning
	// patterns and rebuilding collections at every node.
	n := d.Inputs()
	st := &lemmaState{
		q:       p.Clone(),
		outWire: make([]int, n),
		setIdx:  make([]int, n),
	}
	nr, ok := lemmaRec(d, st, 0, k, newLemmaScratch(k), ctx.Done())
	if !ok {
		return nil, &par.ErrCanceled{Op: "core.Lemma41", Cause: ctx.Err()}
	}
	metLemmaCollisions.Add(int64(nr.collisions))

	t := k*k*k + d.Levels()*k*k
	sets := make([][]int, t)
	for w, j := range st.setIdx {
		if j >= 0 {
			sets[j] = append(sets[j], w)
		}
	}
	res := &LemmaResult{
		Q:          st.q,
		Sets:       sets,
		T:          t,
		OutWire:    st.outWire,
		Survivors:  nr.survivors,
		Initial:    nr.initial,
		Collisions: nr.collisions,
		xNext:      nr.xNext,
	}
	// Paper invariant: |B| >= |A| - l*|A|/k².
	if float64(res.Survivors) < float64(res.Initial)-float64(d.Levels()*res.Initial)/float64(k*k)-1e-9 {
		panic(fmt.Sprintf("core.Lemma41: survival bound violated: |B|=%d |A|=%d l=%d k=%d",
			res.Survivors, res.Initial, d.Levels(), k))
	}
	return res, nil
}

// parallelSubtree is the sub-network size above which the two
// sub-recursions of lemmaRec run on separate goroutines. With halving
// sizes the spawn count is O(n / parallelSubtree), so the threshold
// bounds goroutine overhead while exposing ~n/threshold-way
// parallelism at the top of the recursion.
const parallelSubtree = 1 << 11

// setRemoved marks a slot whose wire was just charged to the collision
// set C_{j,j-i0} at the current node: the renaming loop turns it into an
// X symbol and downgrades the mark to -1 (untracked).
const setRemoved = -2

// lemmaState is the shared per-run state of the Lemma 4.1 recursion. A
// node over slots [base, base+m) owns exactly that subrange of each
// buffer; the two sub-recursions touch disjoint ranges, so the parallel
// fork needs no locking.
type lemmaState struct {
	// q is the pattern being refined in place (global slot indexing).
	q pattern.Pattern
	// outWire[base+o] is the global input slot whose value reaches the
	// subtree-local output slot o.
	outWire []int
	// setIdx[w] is the index of the noncolliding set containing global
	// slot w, or -1 (untracked) or setRemoved (being removed at the
	// current node). This inverted representation makes the per-node
	// set lookup O(1) — it replaces both the map collection and the
	// setOf linear scan on the assertion path.
	setIdx []int
}

// lemmaScratch is per-goroutine scratch reused across the nodes of a
// (sub-)recursion: the meeting list and the averaging histogram. The
// parallel fork hands the spawned goroutine a fresh scratch; everything
// else on the hot path reuses the parent's buffers, so steady-state
// node processing allocates nothing.
type lemmaScratch struct {
	meetings    []lemmaMeeting
	offsetCount []int // len k²
}

// lemmaMeeting records one final-level meeting of two tracked wires:
// global slot w0 on the sub0 side, set indices j0 (sub0) and j1 (sub1).
type lemmaMeeting struct{ w0, j0, j1 int }

func newLemmaScratch(k int) *lemmaScratch {
	return &lemmaScratch{offsetCount: make([]int, k*k)}
}

// lemmaNode is the by-value summary a recursion level hands its parent;
// the heavy state lives in the shared lemmaState buffers.
type lemmaNode struct {
	survivors, initial, collisions, xNext int
}

// lemmaRec is the induction of Lemma 4.1 over the subtree d occupying
// global slots [base, base+d.Inputs()). done is the caller's
// cancellation channel (nil when the run is not cancelable); a closed
// done makes the whole recursion unwind with ok = false. One probe per
// node keeps the per-comparator loops branch-free, and a nil done is a
// single pointer check — the non-cancelable path is unchanged.
func lemmaRec(d *delta.Network, st *lemmaState, base, k int, sc *lemmaScratch, done <-chan struct{}) (lemmaNode, bool) {
	if done != nil {
		select {
		case <-done:
			return lemmaNode{}, false
		default:
		}
	}

	if d.Levels() == 0 {
		// Base case: M_0 := A, all other sets empty, q := p (in place).
		nr := lemmaNode{}
		st.outWire[base] = base
		if st.q[base] == pattern.M(0) {
			st.setIdx[base] = 0
			nr.survivors, nr.initial = 1, 1
		} else {
			st.setIdx[base] = -1
		}
		return nr, true
	}

	h := d.Inputs() / 2
	l := d.Levels() - 1 // sub-networks have l levels; this node is level l+1
	k2 := k * k
	tl := k*k2 + l*k2 // t(l)

	// The two sub-recursions touch disjoint slot ranges and share no
	// state, so above a size threshold they run concurrently (the
	// spawned side gets its own scratch). The result is bit-identical
	// to the sequential order (all averaging ties are broken
	// deterministically).
	var st0, st1 lemmaNode
	var ok0, ok1 bool
	if h >= parallelSubtree {
		joined := make(chan struct{})
		go func() {
			defer close(joined)
			st1, ok1 = lemmaRec(d.Sub(1), st, base+h, k, newLemmaScratch(k), done)
		}()
		st0, ok0 = lemmaRec(d.Sub(0), st, base, k, sc, done)
		<-joined
	} else {
		st0, ok0 = lemmaRec(d.Sub(0), st, base, k, sc, done)
		if !ok0 {
			return lemmaNode{}, false
		}
		st1, ok1 = lemmaRec(d.Sub(1), st, base+h, k, sc, done)
	}
	if !ok0 || !ok1 {
		return lemmaNode{}, false // canceled somewhere below; unwind
	}

	// Final-level meetings between tracked wires: for each comparator,
	// the values arriving are those of outWire at the comparator's
	// slots. A meeting between M_{0,i} and M_{1,j} contributes the
	// sub0 wire to C_{i,j}; the paper's L_offset collects C_{j, j-offset}.
	fin := d.Final()
	meetings := sc.meetings[:0]
	offsetCount := sc.offsetCount
	for i := range offsetCount {
		offsetCount[i] = 0
	}
	for _, cmp := range fin {
		w0 := st.outWire[base+cmp.O0]
		w1 := st.outWire[base+h+cmp.O1]
		j0, j1 := st.setIdx[w0], st.setIdx[w1]
		if j0 < 0 || j1 < 0 {
			continue
		}
		meetings = append(meetings, lemmaMeeting{w0: w0, j0: j0, j1: j1})
		if off := j0 - j1; off >= 0 && off < k2 {
			offsetCount[off]++
		}
	}
	sc.meetings = meetings // keep the grown capacity for later nodes

	// Averaging: choose i0 minimizing |L_{i0}|.
	i0 := 0
	for off := 1; off < k2; off++ {
		if offsetCount[off] < offsetCount[i0] {
			i0 = off
		}
	}

	// Mark the wires of C_{j, j-i0} (sub0 side) for removal. Each sub0
	// wire appears in at most one final comparator, so the marks are
	// distinct.
	removed := 0
	for _, m := range meetings {
		if m.j0-m.j1 == i0 {
			st.setIdx[m.w0] = setRemoved
			removed++
		}
	}

	// Renaming step 1 / 1' (defensive; such symbols normally absent):
	// shift M_i / X_{i,j} with i >= t(l) (sub0) or i >= t(l)+i0 (sub1)
	// up by k². Step 2: removed sub0 wires M_j -> X(j, j0fresh).
	// Step 2': shift all sub1 M_i / X_{i,j} with i < t(l) up by i0 —
	// which realizes the merge M_j := (M_{0,j} \ C_{j,j-i0}) ∪ M_{1,j-i0}
	// directly on the setIdx marks.
	xFresh := maxInt(st0.xNext, st1.xNext)
	usedFresh := false
	for w := base; w < base+h; w++ {
		s := shiftFrom(st.q[w], tl, k2)
		if st.setIdx[w] == setRemoved {
			if s.Kind != pattern.KindM {
				panic(fmt.Sprintf("core: removed wire %d carries %v, want an M symbol", w-base, s))
			}
			s = pattern.X(s.I, xFresh)
			usedFresh = true
			st.setIdx[w] = -1
		}
		st.q[w] = s
	}
	for w := base + h; w < base+2*h; w++ {
		s := shiftFrom(st.q[w], tl+i0, k2)
		st.q[w] = shiftBelow(s, tl, i0)
		if st.setIdx[w] >= 0 {
			st.setIdx[w] += i0
		}
	}
	if usedFresh {
		xFresh++
	}

	// Output wires: the sub-recursions already wrote the concatenation
	// (global slots), so only the final level remains, applied with the
	// *renamed* symbols (renamings are order-preserving so earlier
	// routing decisions are unaffected).
	for _, cmp := range fin {
		oa, ob := base+cmp.O0, base+h+cmp.O1
		wa, wb := st.outWire[oa], st.outWire[ob]
		c := pattern.Compare(st.q[wa], st.q[wb])
		if c == 0 {
			// Ambiguous meeting: both sides must now be untracked.
			if st.setIdx[wa] >= 0 && st.setIdx[wb] >= 0 {
				panic("core: tracked wires still collide after removal")
			}
			continue // convention: equal symbols stay in place
		}
		// Route min to the MinFirst side.
		minAtA := c < 0
		if cmp.MinFirst != minAtA {
			st.outWire[oa], st.outWire[ob] = wb, wa
		}
	}

	return lemmaNode{
		survivors:  st0.survivors + st1.survivors - removed,
		initial:    st0.initial + st1.initial,
		collisions: st0.collisions + st1.collisions + removed,
		xNext:      xFresh,
	}, true
}

// shiftFrom shifts M_i -> M_{i+by} and X_{i,j} -> X_{i+by,j} for all
// i >= from, leaving other symbols unchanged.
func shiftFrom(s pattern.Symbol, from, by int) pattern.Symbol {
	if (s.Kind == pattern.KindM || s.Kind == pattern.KindX) && s.I >= from {
		s.I += by
	}
	return s
}

// shiftBelow shifts M_i -> M_{i+by} and X_{i,j} -> X_{i+by,j} for all
// i < below, leaving other symbols unchanged.
func shiftBelow(s pattern.Symbol, below, by int) pattern.Symbol {
	if (s.Kind == pattern.KindM || s.Kind == pattern.KindX) && s.I < below {
		s.I += by
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
