package core

import (
	"context"
	"fmt"

	"shufflenet/internal/delta"
	"shufflenet/internal/obs"
	"shufflenet/internal/par"
	"shufflenet/internal/pattern"
	"shufflenet/internal/perm"
)

// Per-block adversary metrics. The survivors histogram buckets the
// size of the kept set after each block (powers of two up to 2^20),
// so a long run shows at a glance where the tracked set collapses.
var (
	metBlocks         = obs.C("core.adversary.blocks")
	metBlockSurvivors = obs.H("core.adversary.block_kept", obs.Pow2Bounds(20))
)

// Incremental is the adversary of Theorem 4.1 driven one block at a
// time. It serves two purposes:
//
//   - efficiency: experiments that grow a network block by block (E5,
//     E8) advance the adversary in O(one block) per step instead of
//     re-running the whole prefix; and
//   - adaptivity (Section 5): the paper observes that the lower bound
//     holds even when each level's labeling is chosen after seeing all
//     previous comparison outcomes. Incremental realizes that game
//     exactly — the caller may inspect D(), Pattern(), and the reports
//     before choosing the next block, and the bound still holds because
//     the adversary commits only to a pattern, never to an input.
//
// The zero value is not usable; construct with NewIncremental.
type Incremental struct {
	n        int
	k        int
	pOrig    pattern.Pattern
	originAt perm.Perm
	reports  []BlockReport
	dead     bool
}

// NewIncremental starts an adversary on n = 2^d wires with averaging
// parameter k (k <= 0 selects the paper's k = lg n).
func NewIncremental(n, k int) *Incremental {
	if k <= 0 {
		k = lg(n)
		if k < 1 {
			k = 1
		}
	}
	return &Incremental{
		n:        n,
		k:        k,
		pOrig:    pattern.Uniform(n, pattern.M(0)),
		originAt: perm.Identity(n),
	}
}

// N returns the wire count.
func (inc *Incremental) N() int { return inc.n }

// K returns the averaging parameter.
func (inc *Incremental) K() int { return inc.k }

// D returns the current noncolliding [M_0]-set over original wires.
func (inc *Incremental) D() []int { return inc.pOrig.Set(pattern.M(0)) }

// Pattern returns (a copy of) the current pattern over original wires.
func (inc *Incremental) Pattern() pattern.Pattern { return inc.pOrig.Clone() }

// Reports returns the per-block reports so far.
func (inc *Incremental) Reports() []BlockReport { return inc.reports }

// Dead reports whether the tracked set has collapsed (|D| < 1); further
// blocks cannot revive it.
func (inc *Incremental) Dead() bool { return inc.dead }

// AddBlock advances the adversary through one block: the permutation
// pre (nil = identity) followed by the forest f. It returns the report
// for the block. The caller must feed the same blocks, in the same
// order, to the network being argued about.
func (inc *Incremental) AddBlock(pre perm.Perm, f delta.Forest) BlockReport {
	rep, _ := inc.AddBlockCtx(context.Background(), pre, f)
	return rep
}

// AddBlockCtx is AddBlock under a context. On cancellation the block
// is abandoned: the pattern, D, and reports are left exactly as after
// the last completed block (so Analysis() stays honest), and the
// returned *par.ErrCanceled records that state. The receiver is then
// mid-block (its slot bookkeeping has already absorbed pre) and must
// not be advanced further — read it out and drop it.
func (inc *Incremental) AddBlockCtx(ctx context.Context, pre perm.Perm, f delta.Forest) (BlockReport, error) {
	n := inc.n
	if f.Slots() != n {
		panic(fmt.Sprintf("core.Incremental: forest covers %d slots, want %d", f.Slots(), n))
	}
	if pre != nil {
		if len(pre) != n {
			panic(fmt.Sprintf("core.Incremental: permutation on %d slots, want %d", len(pre), n))
		}
		tmp := make(perm.Perm, n)
		for s, w := range inc.originAt {
			tmp[pre[s]] = w
		}
		inc.originAt = tmp
	}

	pSlots := make(pattern.Pattern, n)
	for s, w := range inc.originAt {
		pSlots[s] = inc.pOrig[w]
	}
	before := pSlots.Count(pattern.M(0))

	merged := map[int][]int{}
	qSlots := make(pattern.Pattern, n)
	outWire := make([]int, n)
	off := 0
	tMax := 0
	collisions := 0
	for _, tree := range f.Trees() {
		m := tree.Inputs()
		res, err := Lemma41Ctx(ctx, tree, pSlots[off:off+m].Clone(), inc.k)
		if err != nil {
			return BlockReport{}, &par.ErrCanceled{
				Op:         "core.Incremental.AddBlock",
				Cause:      ctx.Err(),
				BlocksDone: len(inc.reports),
				Survivors:  len(inc.D()),
			}
		}
		collisions += res.Collisions
		if res.T > tMax {
			tMax = res.T
		}
		for i, ws := range res.Sets {
			if len(ws) == 0 {
				continue
			}
			for _, w := range ws {
				merged[i] = append(merged[i], off+w)
			}
		}
		copy(qSlots[off:off+m], res.Q)
		for o, w := range res.OutWire {
			outWire[off+o] = off + w
		}
		off += m
	}

	bestIdx, bestLen := -1, -1
	surv := 0
	setCount := 0
	for i := 0; i < tMax; i++ {
		ws, ok := merged[i]
		if !ok {
			continue
		}
		surv += len(ws)
		setCount++
		if len(ws) > bestLen {
			bestIdx, bestLen = i, len(ws)
		}
	}

	rep := BlockReport{
		Block:      len(inc.reports),
		Levels:     f.Levels(),
		Before:     before,
		Survivors:  surv,
		SetCount:   setCount,
		Collisions: collisions,
		ChosenSet:  bestIdx,
		After:      bestLen,
		PaperBound: paperBound(n, len(inc.reports)+1),
	}
	inc.reports = append(inc.reports, rep)
	metBlocks.Inc()

	if bestIdx < 0 {
		for w := range inc.pOrig {
			inc.pOrig[w] = pattern.L(0)
		}
		inc.dead = true
		rep.After = 0
		inc.reports[len(inc.reports)-1] = rep
		metBlockSurvivors.Observe(0)
		return rep, nil
	}
	metBlockSurvivors.Observe(int64(bestLen))

	renamed := qSlots.Rename(bestIdx)
	for s, w := range inc.originAt {
		inc.pOrig[w] = renamed[s]
	}
	next := make(perm.Perm, n)
	for o, s := range outWire {
		next[o] = inc.originAt[s]
	}
	inc.originAt = next
	return rep, nil
}

// Analysis snapshots the adversary's state in the Theorem41 result
// form.
func (inc *Incremental) Analysis() *Analysis {
	return &Analysis{
		P:       inc.Pattern(),
		D:       inc.D(),
		Reports: append([]BlockReport(nil), inc.reports...),
		K:       inc.k,
	}
}
