package core

import (
	"errors"
	"math/rand"
	"testing"

	"shufflenet/internal/delta"
	"shufflenet/internal/pattern"
	"shufflenet/internal/perm"
	"shufflenet/internal/sortcheck"
)

// checkAnalysis verifies the Theorem 4.1 claims independently: the
// final pattern uses only S0/M0/L0, and its [M_0]-set is noncolliding
// in the flattened circuit, checked both by symbol simulation and by
// concrete-input replay.
func checkAnalysis(t *testing.T, it *delta.Iterated, an *Analysis) {
	t.Helper()
	for _, s := range an.P {
		if s != pattern.S(0) && s != pattern.M(0) && s != pattern.L(0) {
			t.Fatalf("final pattern contains %v", s)
		}
	}
	circ, _ := it.ToNetwork()
	if len(an.D) >= 2 {
		if !pattern.Noncolliding(circ, an.P, pattern.M(0)) {
			t.Fatal("D is not noncolliding (symbol simulation)")
		}
		if !pattern.VerifyNoncollidingByInputs(circ, an.P, pattern.M(0), 2*len(an.D)) {
			t.Fatal("D is not noncolliding (concrete replay)")
		}
	}
	set := an.P.Set(pattern.M(0))
	if len(set) != len(an.D) {
		t.Fatalf("D inconsistent with pattern: %d vs %d", len(an.D), len(set))
	}
}

func iteratedButterflies(n, blocks int, rng *rand.Rand) *delta.Iterated {
	it := delta.NewIterated(n)
	l := lg(n)
	for b := 0; b < blocks; b++ {
		var pre perm.Perm
		if b > 0 && rng != nil {
			pre = perm.Random(n, rng)
		}
		it.AddBlock(pre, delta.Butterfly(l))
	}
	return it
}

func TestTheorem41SingleButterfly(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		it := iteratedButterflies(n, 1, nil)
		an := Theorem41(it, 0)
		checkAnalysis(t, it, an)
		if len(an.Reports) != 1 {
			t.Fatalf("want 1 report, got %d", len(an.Reports))
		}
		rep := an.Reports[0]
		if rep.Before != n {
			t.Fatalf("n=%d: Before = %d", n, rep.Before)
		}
		// Lemma guarantee with k = lg n, l = lg n: at least n(1 - 1/lg n)
		// survive across all sets.
		k := an.K
		if k*k*rep.Survivors < n*(k*k-lg(n)) {
			t.Fatalf("n=%d: survivors %d below bound", n, rep.Survivors)
		}
		if rep.After < 1 {
			t.Fatalf("n=%d: largest set empty", n)
		}
	}
}

func TestTheorem41MultiBlockRandomGlue(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{16, 32, 64} {
		for blocks := 1; blocks <= 3; blocks++ {
			it := iteratedButterflies(n, blocks, rng)
			an := Theorem41(it, 0)
			checkAnalysis(t, it, an)
			if len(an.Reports) != blocks {
				t.Fatalf("reports: %d", len(an.Reports))
			}
			// |D| must meet the paper bound whenever that bound is
			// nontrivial.
			if pb := an.Reports[blocks-1].PaperBound; float64(len(an.D)) < pb {
				t.Fatalf("n=%d blocks=%d: |D|=%d below paper bound %.3f",
					n, blocks, len(an.D), pb)
			}
		}
	}
}

func TestTheorem41RandomRDNBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 32
	for trial := 0; trial < 10; trial++ {
		it := delta.NewIterated(n)
		blocks := 1 + rng.Intn(3)
		for b := 0; b < blocks; b++ {
			it.AddBlock(perm.Random(n, rng), delta.Random(5, 0.5+0.5*rng.Float64(), rng))
		}
		an := Theorem41(it, 0)
		checkAnalysis(t, it, an)
	}
}

func TestTheorem41ForestBlocks(t *testing.T) {
	// Truncated blocks (Section 5): forests of shallow trees.
	rng := rand.New(rand.NewSource(44))
	n := 32
	it := delta.NewIterated(n)
	for b := 0; b < 4; b++ {
		f := 2 // tree levels
		var trees []*delta.Network
		for i := 0; i < n/(1<<f); i++ {
			trees = append(trees, delta.Random(f, 1.0, rng))
		}
		it.AddForest(perm.Random(n, rng), delta.NewForest(trees...))
	}
	an := Theorem41(it, 0)
	checkAnalysis(t, it, an)
	// Shallow blocks lose little: with l=2 and k=5, each block keeps
	// > 90% of wires across sets; after 4 blocks the largest set should
	// still be sizable.
	if len(an.D) < 2 {
		t.Fatalf("|D| = %d after shallow blocks", len(an.D))
	}
}

func TestCertificateOnIteratedButterflies(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, n := range []int{16, 32, 64} {
		it := iteratedButterflies(n, 2, rng)
		an := Theorem41(it, 0)
		cert, err := an.Certificate()
		if err != nil {
			if errors.Is(err, ErrSetTooSmall) {
				t.Fatalf("n=%d: adversary should survive 2 butterfly blocks (|D|=%d)", n, len(an.D))
			}
			t.Fatal(err)
		}
		circ, _ := it.ToNetwork()
		if err := cert.Verify(circ); err != nil {
			t.Fatalf("n=%d: certificate rejected: %v", n, err)
		}
		// The certificate also demonstrates unsortedness concretely:
		// the two outputs cannot both be sorted under any labeling —
		// in particular under the identity labeling at most one is.
		o1, o2 := circ.Eval(cert.Pi), circ.Eval(cert.PiPrime)
		if sortcheck.IsSorted(o1) && sortcheck.IsSorted(o2) {
			t.Fatal("both certificate outputs sorted?!")
		}
	}
}

func TestAdversaryCannotBeatSortingNetwork(t *testing.T) {
	// Bitonic sort IS an iterated RDN (with bit-reversal glue); the
	// adversary must NOT find a noncolliding pair in it — a sorting
	// network compares every adjacent pair. This is the strongest
	// soundness check available: if the machinery ever reported |D| >= 2
	// here, it would be provably buggy.
	for _, d := range []int{2, 3, 4} {
		n := 1 << uint(d)
		it := delta.BitonicIterated(d)
		// Confirm it sorts first.
		circ, place := it.ToNetwork()
		ok, w := sortcheck.ZeroOne(n, remapEval{circ, place}, 0)
		if !ok {
			t.Fatalf("d=%d: bitonic iterated RDN does not sort (%v)", d, w)
		}
		an := Theorem41(it, 0)
		checkAnalysis(t, it, an)
		if _, err := an.Certificate(); err == nil {
			t.Fatalf("d=%d: extracted a certificate from a sorting network!", d)
		}
	}
}

// remapEval evaluates a flattened iterated network and reorders the
// output rails back to slot order (sortedness in slot space).
type remapEval struct {
	c     interface{ Eval([]int) []int }
	place perm.Perm
}

func (e remapEval) Eval(in []int) []int {
	out := e.c.Eval(in)
	fixed := make([]int, len(out))
	for s, r := range e.place {
		fixed[s] = out[r]
	}
	return fixed
}

func TestCertificateVerifyRejectsTampering(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	n := 32
	it := iteratedButterflies(n, 2, rng)
	an := Theorem41(it, 0)
	cert, err := an.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	circ, _ := it.ToNetwork()
	if err := cert.Verify(circ); err != nil {
		t.Fatal(err)
	}

	// Tamper 1: swap a value pair outside D.
	bad := *cert
	bad.Pi = append([]int(nil), cert.Pi...)
	var o1, o2 int = -1, -1
	for w := range bad.Pi {
		if w != cert.W0 && w != cert.W1 {
			if o1 == -1 {
				o1 = w
			} else if o2 == -1 {
				o2 = w
			}
		}
	}
	bad.Pi[o1], bad.Pi[o2] = bad.Pi[o2], bad.Pi[o1]
	if err := bad.Verify(circ); err == nil {
		t.Error("tampered Pi accepted")
	}

	// Tamper 2: claim a colliding pair. Take two wires carrying S0.
	bad2 := *cert
	sWires := cert.P.Set(pattern.S(0))
	if len(sWires) >= 2 {
		bad2.W0, bad2.W1 = sWires[0], sWires[1]
		if err := bad2.Verify(circ); err == nil {
			t.Error("certificate with wrong wires accepted")
		}
	}

	// Tamper 3: verify against the wrong network (a sorting network of
	// the same width flattened from the bitonic construction).
	it2 := delta.BitonicIterated(5)
	circ2, _ := it2.ToNetwork()
	if err := cert.Verify(circ2); err == nil {
		t.Error("certificate accepted against a sorting network")
	}
}

func TestPaperBound(t *testing.T) {
	// n / lg^{4d} n for n = 2^20, d = 1: 2^20 / 20^4 = 6.55...
	got := paperBound(1<<20, 1)
	if got < 6.5 || got > 6.6 {
		t.Errorf("paperBound = %v", got)
	}
}

func TestAnalysisString(t *testing.T) {
	an := &Analysis{K: 4, Reports: make([]BlockReport, 2), D: []int{1, 2, 3}}
	if an.String() != "analysis[k=4 blocks=2 |D|=3]" {
		t.Errorf("String = %q", an.String())
	}
}
