package core

import (
	"shufflenet/internal/pattern"
)

// Symbol ranks for the three-letter alphabet {S_0, M_0, L_0} the
// optimum search enumerates. Compare on these patterns reduces to
// integer comparison of the ranks (S < M < L in <_P), so the
// incremental simulator works on bytes instead of Symbol structs.
const (
	rankS uint8 = 0
	rankM uint8 = 1
	rankL uint8 = 2
)

var rankSymbols = [3]pattern.Symbol{pattern.S(0), pattern.M(0), pattern.L(0)}

// incSim extends a symbol simulation of a circuit one input wire at a
// time, with O(fired comparators) undo — the engine under the
// branch-and-bound in OptimalNoncolliding. The from-scratch
// alternative (pattern.Noncolliding per leaf) re-simulates all
// c.Size() comparators for every enumerated pattern; incSim fires each
// comparator exactly once per DFS branch and rolls it back on
// backtrack.
//
// The key observation is that a comparator's outcome is determined as
// soon as every input wire in its cone of influence is assigned, and
// the static schedule for any assignment order is computable up front:
// grouping comparators by the last-assigned wire of their cone
// (canonizer.trigger) and firing group t when step t's wire is
// assigned replays exactly the level-major simulation of
// pattern.EvalTrace restricted to determined comparators. Any
// comparator feeding one of c's rails has a cone contained in c's,
// hence an equal-or-earlier group (and an earlier level-major position
// within the same group); comparators of incomparable cones touch
// disjoint rails, so firing them out of order cannot change what
// either sees.
//
// A consequence used for pruning: a collision (both inputs of a fired
// comparator carrying M) witnessed while assigning step t depends only
// on the wires assigned so far, so every completion of the current
// prefix collides — the whole subtree is dead, not just the leaf.
//
// The static analysis (assignment order, trigger groups, liveness)
// lives in the shared read-only canonizer; incSim is the per-worker
// mutable part: the rail symbols and the undo trail.
type incSim struct {
	cz *canonizer
	// sym[r] is the symbol rank currently on rail r for the fired
	// prefix of the simulation. Rails whose cone contains unassigned
	// wires are never read (their comparators are in later groups).
	sym []uint8
	// trail records fired comparators for backtracking.
	trail []incUndo
}

type incComp struct{ a, b int32 } // rails (a = min rail, b = max rail)

type incUndo struct {
	a, b    int32
	swapped bool
}

// newIncSim attaches fresh simulation state to a canonizer.
func newIncSim(cz *canonizer) *incSim {
	return &incSim{
		cz:    cz,
		sym:   make([]uint8, cz.n),
		trail: make([]incUndo, 0, len(cz.comps)),
	}
}

// mark returns the current trail position; pass it to undo to roll the
// simulation back to this point.
func (s *incSim) mark() int { return len(s.trail) }

// assign sets the input wire of search step t (which must be the next
// unassigned step, with all earlier steps assigned and their trigger
// groups fired) to the given rank and fires the comparators of trigger
// group t. It reports false if any of them collides (sees M on both
// inputs): the caller must then undo to its mark and try another
// branch — every completion of this prefix is colliding. The wire's
// rail still holds its own raw value when the group fires: any
// comparator touching that rail has the wire in its cone, so it is in
// group >= t.
func (s *incSim) assign(t int, rank uint8) bool {
	s.sym[s.cz.order[t]] = rank
	for _, ci := range s.cz.trigger[t] {
		cm := s.cz.comps[ci]
		sa, sb := s.sym[cm.a], s.sym[cm.b]
		if sa == sb {
			if sa == rankM {
				return false // M-M collision: subtree dead
			}
			// Equal non-M symbols stay in place (EvalTrace convention);
			// nothing to record beyond the no-op.
			s.trail = append(s.trail, incUndo{a: cm.a, b: cm.b, swapped: false})
			continue
		}
		swapped := sa > sb
		if swapped {
			s.sym[cm.a], s.sym[cm.b] = sb, sa
		}
		s.trail = append(s.trail, incUndo{a: cm.a, b: cm.b, swapped: swapped})
	}
	return true
}

// undo rolls the simulation back to a previous mark, unswapping fired
// comparators in reverse order.
func (s *incSim) undo(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		u := s.trail[i]
		if u.swapped {
			s.sym[u.a], s.sym[u.b] = s.sym[u.b], s.sym[u.a]
		}
	}
	s.trail = s.trail[:mark]
}
