package core

import (
	"shufflenet/internal/network"
	"shufflenet/internal/pattern"
)

// Symbol ranks for the three-letter alphabet {S_0, M_0, L_0} the
// optimum search enumerates. Compare on these patterns reduces to
// integer comparison of the ranks (S < M < L in <_P), so the
// incremental simulator works on bytes instead of Symbol structs.
const (
	rankS uint8 = 0
	rankM uint8 = 1
	rankL uint8 = 2
)

var rankSymbols = [3]pattern.Symbol{pattern.S(0), pattern.M(0), pattern.L(0)}

// incSim extends a symbol simulation of a circuit one input wire at a
// time, with O(fired comparators) undo — the engine under the
// branch-and-bound in OptimalNoncolliding. The from-scratch
// alternative (pattern.Noncolliding per leaf) re-simulates all
// c.Size() comparators for every enumerated pattern; incSim fires each
// comparator exactly once per DFS branch and rolls it back on
// backtrack.
//
// The key observation is that a comparator's outcome is determined as
// soon as every input wire in its cone of influence is assigned, and
// the highest such wire ("maxSupport") is computable statically: rail r
// starts with support {r}, and a comparator merges the supports of its
// two rails. Grouping comparators by maxSupport ("trigger groups") and
// firing group w when wire w is assigned replays exactly the
// level-major simulation of pattern.EvalTrace restricted to determined
// comparators: any comparator feeding one of c's rails has a cone
// contained in c's, hence an equal-or-smaller maxSupport, so it fires
// before c (in an earlier group, or earlier in the same group since
// groups preserve level-major order); and comparators of incomparable
// cones touch disjoint rails, so firing them out of order cannot
// change what either sees.
//
// A consequence used for pruning: a collision (both inputs of a fired
// comparator carrying M) witnessed while assigning wire w depends only
// on wires <= w, so every completion of the current prefix collides —
// the whole subtree is dead, not just the leaf.
type incSim struct {
	n     int
	comps []incComp // level-major order
	// trigger[w] lists (indices of) the comparators whose outcome
	// becomes determined when wire w is assigned, ascending (=
	// level-major within the group).
	trigger [][]int32
	// sym[r] is the symbol rank currently on rail r for the fired
	// prefix of the simulation. Rails whose cone contains unassigned
	// wires are never read (their comparators are in later groups).
	sym []uint8
	// trail records fired comparators for backtracking.
	trail []incUndo
}

type incComp struct{ a, b int32 } // rails (a = min rail, b = max rail)

type incUndo struct {
	a, b    int32
	swapped bool
}

// newIncSim builds the trigger schedule for c.
func newIncSim(c *network.Network) *incSim {
	n := c.Wires()
	s := &incSim{
		n:       n,
		comps:   make([]incComp, 0, c.Size()),
		trigger: make([][]int32, n),
		sym:     make([]uint8, n),
		trail:   make([]incUndo, 0, c.Size()),
	}
	// coneMax[r] = highest input wire influencing the value on rail r
	// after the comparators scanned so far.
	coneMax := make([]int, n)
	for r := range coneMax {
		coneMax[r] = r
	}
	for _, lv := range c.Levels() {
		for _, cm := range lv {
			ms := coneMax[cm.Min]
			if coneMax[cm.Max] > ms {
				ms = coneMax[cm.Max]
			}
			coneMax[cm.Min], coneMax[cm.Max] = ms, ms
			s.trigger[ms] = append(s.trigger[ms], int32(len(s.comps)))
			s.comps = append(s.comps, incComp{a: int32(cm.Min), b: int32(cm.Max)})
		}
	}
	return s
}

// mark returns the current trail position; pass it to undo to roll the
// simulation back to this point.
func (s *incSim) mark() int { return len(s.trail) }

// assign sets input wire w (which must be the next unassigned wire,
// with all wires < w assigned and their trigger groups fired) to the
// given rank and fires the comparators of trigger group w. It reports
// false if any of them collides (sees M on both inputs): the caller
// must then undo to its mark and try another branch — every completion
// of this prefix is colliding. Rail w still holds wire w's own value
// when the group fires: any comparator touching rail w has w in its
// cone, so it is in group >= w.
func (s *incSim) assign(w int, rank uint8) bool {
	s.sym[w] = rank
	for _, ci := range s.trigger[w] {
		cm := s.comps[ci]
		sa, sb := s.sym[cm.a], s.sym[cm.b]
		if sa == sb {
			if sa == rankM {
				return false // M-M collision: subtree dead
			}
			// Equal non-M symbols stay in place (EvalTrace convention);
			// nothing to record beyond the no-op.
			s.trail = append(s.trail, incUndo{a: cm.a, b: cm.b, swapped: false})
			continue
		}
		swapped := sa > sb
		if swapped {
			s.sym[cm.a], s.sym[cm.b] = sb, sa
		}
		s.trail = append(s.trail, incUndo{a: cm.a, b: cm.b, swapped: swapped})
	}
	return true
}

// undo rolls the simulation back to a previous mark, unswapping fired
// comparators in reverse order.
func (s *incSim) undo(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		u := s.trail[i]
		if u.swapped {
			s.sym[u.a], s.sym[u.b] = s.sym[u.b], s.sym[u.a]
		}
	}
	s.trail = s.trail[:mark]
}
