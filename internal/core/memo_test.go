package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"shufflenet/internal/pattern"
)

func TestMemoTableBasics(t *testing.T) {
	m := NewMemo(1 << 16)
	if m.Stats().Bytes <= 0 || m.Stats().Bytes > 1<<16 {
		t.Fatalf("table bytes %d out of budget", m.Stats().Bytes)
	}
	var st memoStats
	if _, ok := m.probe(1, 2, 5, &st); ok {
		t.Fatal("hit on empty table")
	}
	m.store(1, 2, 5, 7, &st)
	ub, ok := m.probe(1, 2, 5, &st)
	if !ok || ub != 7 {
		t.Fatalf("probe after store: %d,%v want 7,true", ub, ok)
	}
	// Same key at a different step is a different entry.
	if _, ok := m.probe(1, 2, 6, &st); ok {
		t.Fatal("step is not part of the key")
	}
	// A matching store keeps the tighter bound.
	m.store(1, 2, 5, 9, &st)
	if ub, _ := m.probe(1, 2, 5, &st); ub != 7 {
		t.Fatalf("looser store overwrote: %d want 7", ub)
	}
	m.store(1, 2, 5, 3, &st)
	if ub, _ := m.probe(1, 2, 5, &st); ub != 3 {
		t.Fatalf("tighter store ignored: %d want 3", ub)
	}
	// Two-slot bucket: a third distinct entry on the same bucket evicts
	// the deeper (larger-step) slot and keeps the shallower.
	m.store(1, 20, 9, 1, &st) // same h1 -> same shard and bucket
	m.store(1, 30, 2, 4, &st) // bucket full: step-9 slot is the victim
	if _, ok := m.probe(1, 20, 9, &st); ok {
		t.Fatal("deeper slot survived eviction")
	}
	if ub, ok := m.probe(1, 2, 5, &st); !ok || ub != 3 {
		t.Fatal("shallower slot did not survive eviction")
	}
	if ub, ok := m.probe(1, 30, 2, &st); !ok || ub != 4 {
		t.Fatal("incoming entry not installed")
	}
	m.flush(&st)
	s := m.Stats()
	if s.Hits == 0 || s.Misses == 0 || s.Stores == 0 || s.Evictions != 1 {
		t.Fatalf("stats %+v look wrong", s)
	}
	// nil Memo is inert.
	var nilM *Memo
	nilM.flush(&st)
	if nilM.Stats() != (MemoStats{}) {
		t.Fatal("nil Memo stats not empty")
	}
}

// The satellite differential: on every n <= 12 test circuit, the
// memo-on search, the memo-off search, and the PR 4 exhaustive oracle
// must return byte-identical results — size, witness pattern, and set —
// at 1 and at 8 workers. A single Memo shared across all circuits (the
// experiment-cell usage) must not change anything either.
func TestOptimalMemoModesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	shared := NewMemo(1 << 20)
	for ci, c := range testCircuits(12, rng) {
		wantSize, wantP, wantSet := bruteOptimalNoncolliding(c)
		check := func(mode string, size int, p pattern.Pattern, set []int, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("circuit %d %s: %v", ci, mode, err)
			}
			if size != wantSize || !p.Equal(wantP) || len(set) != len(wantSet) {
				t.Fatalf("circuit %d %s: (%d,%v) oracle (%d,%v)", ci, mode, size, p, wantSize, wantP)
			}
			for i := range set {
				if set[i] != wantSet[i] {
					t.Fatalf("circuit %d %s: set %v oracle %v", ci, mode, set, wantSet)
				}
			}
		}
		ctx := context.Background()
		for _, workers := range []int{1, 8} {
			s, p, set, err := OptimalNoncollidingOpt(ctx, c, OptimalOptions{Workers: workers})
			check("memo-auto", s, p, set, err)
			s, p, set, err = OptimalNoncollidingOpt(ctx, c, OptimalOptions{Workers: workers, NoMemo: true})
			check("memo-off", s, p, set, err)
			s, p, set, err = OptimalNoncollidingOpt(ctx, c, OptimalOptions{Workers: workers, Memo: shared})
			check("memo-shared", s, p, set, err)
		}
		// A second pass over the now-warm shared table: probes hit
		// immediately and still must not change the answer.
		s, p, set, err := OptimalNoncollidingOpt(ctx, c, OptimalOptions{Workers: 2, Memo: shared})
		check("memo-warm", s, p, set, err)
	}
	if st := shared.Stats(); st.Stores == 0 {
		t.Fatal("shared memo never stored anything across the whole suite")
	}
}

// TestNewMemoDegenerateBudgets: budgets below MinMemoBytes — including
// the zero and negative values a server flag or env var can produce —
// must clamp to a small working table, never hang (a negative budget
// used to sign-flip through a uint64 conversion and spin the sizing
// loop forever) and never yield a zero-slot table.
func TestNewMemoDegenerateBudgets(t *testing.T) {
	cases := []struct {
		name  string
		bytes int64
	}{
		{"negative-large", -(1 << 40)},
		{"negative-one", -1},
		{"zero", 0},
		{"one", 1},
		{"just-below-min", MinMemoBytes - 1},
		{"exactly-min", MinMemoBytes},
		{"modest", 1 << 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			done := make(chan *Memo, 1)
			go func() { done <- NewMemo(tc.bytes) }() // guard against the historical hang
			var m *Memo
			select {
			case m = <-done:
			case <-time.After(10 * time.Second):
				t.Fatalf("NewMemo(%d) hung", tc.bytes)
			}
			st := m.Stats()
			if st.Capacity <= 0 {
				t.Fatalf("NewMemo(%d): capacity %d, want > 0", tc.bytes, st.Capacity)
			}
			if st.Bytes < MinMemoBytes/2 {
				// The budget rounds down to a power-of-two bucket count,
				// so the realized size may sit below MinMemoBytes — but
				// never below half of it.
				t.Fatalf("NewMemo(%d): realized %d bytes, below the documented floor", tc.bytes, st.Bytes)
			}
			if tc.bytes > 0 && tc.bytes >= MinMemoBytes && st.Bytes > tc.bytes {
				t.Fatalf("NewMemo(%d): realized %d bytes exceeds the budget", tc.bytes, st.Bytes)
			}
			// The table must actually work.
			var ms memoStats
			m.store(3, 4, 2, 5, &ms)
			if ub, ok := m.probe(3, 4, 2, &ms); !ok || ub != 5 {
				t.Fatalf("NewMemo(%d): store/probe round trip failed (%d,%v)", tc.bytes, ub, ok)
			}
		})
	}
}

// TestMemoConcurrentHammer: one minimum-size memo shared by many
// goroutines doing interleaved probe/store/flush/Stats — the daemon's
// cross-request sharing pattern. Run under -race this proves the
// lock-striping and the stats flushing are race-clean; functionally it
// checks that flushed counters balance and a store the goroutine just
// made is immediately visible to its own probe.
func TestMemoConcurrentHammer(t *testing.T) {
	m := NewMemo(0) // minimum-size table: maximal contention and eviction
	const (
		workers = 16
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var st memoStats
			for i := 0; i < rounds; i++ {
				h1 := uint64(g)<<32 ^ uint64(i)*0x9e3779b97f4a7c15
				h2 := h1 ^ 0xdeadbeef
				step := i % 30
				ub := uint8(i % 20)
				m.store(h1, h2, step, ub, &st)
				if got, ok := m.probe(h1, h2, step, &st); ok && got > ub {
					t.Errorf("probe returned %d, looser than the %d just stored", got, ub)
					return
				}
				m.probe(h1^1, h2, step, &st) // mostly a miss
				if i%64 == 0 {
					m.flush(&st)
					m.Stats()
				}
			}
			m.flush(&st)
		}(g)
	}
	wg.Wait()
	st := m.Stats()
	if st.Stores == 0 || st.Misses == 0 {
		t.Fatalf("hammer produced no traffic: %+v", st)
	}
	if st.Entries < 0 || st.Entries > st.Capacity {
		t.Fatalf("entries %d out of range [0,%d]", st.Entries, st.Capacity)
	}
	if st.Stores > int64(workers*rounds) {
		t.Fatalf("stores %d exceed the %d store calls made", st.Stores, workers*rounds)
	}
}

// A tiny table forces constant eviction; the answer must not change.
func TestOptimalMemoTinyTableEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	tiny := NewMemo(1) // clamped up to MinMemoBytes: the smallest legal table
	for ci, c := range testCircuits(10, rng) {
		wantSize, wantP, _ := bruteOptimalNoncolliding(c)
		s, p, _, err := OptimalNoncollidingOpt(context.Background(), c, OptimalOptions{Workers: 4, Memo: tiny})
		if err != nil || s != wantSize || !p.Equal(wantP) {
			t.Fatalf("circuit %d: (%d,%v,%v) oracle (%d,%v)", ci, s, err, p, wantSize, wantP)
		}
	}
}
