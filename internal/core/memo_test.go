package core

import (
	"context"
	"math/rand"
	"testing"

	"shufflenet/internal/pattern"
)

func TestMemoTableBasics(t *testing.T) {
	m := NewMemo(1 << 16)
	if m.Stats().Bytes <= 0 || m.Stats().Bytes > 1<<16 {
		t.Fatalf("table bytes %d out of budget", m.Stats().Bytes)
	}
	var st memoStats
	if _, ok := m.probe(1, 2, 5, &st); ok {
		t.Fatal("hit on empty table")
	}
	m.store(1, 2, 5, 7, &st)
	ub, ok := m.probe(1, 2, 5, &st)
	if !ok || ub != 7 {
		t.Fatalf("probe after store: %d,%v want 7,true", ub, ok)
	}
	// Same key at a different step is a different entry.
	if _, ok := m.probe(1, 2, 6, &st); ok {
		t.Fatal("step is not part of the key")
	}
	// A matching store keeps the tighter bound.
	m.store(1, 2, 5, 9, &st)
	if ub, _ := m.probe(1, 2, 5, &st); ub != 7 {
		t.Fatalf("looser store overwrote: %d want 7", ub)
	}
	m.store(1, 2, 5, 3, &st)
	if ub, _ := m.probe(1, 2, 5, &st); ub != 3 {
		t.Fatalf("tighter store ignored: %d want 3", ub)
	}
	// Two-slot bucket: a third distinct entry on the same bucket evicts
	// the deeper (larger-step) slot and keeps the shallower.
	m.store(1, 20, 9, 1, &st) // same h1 -> same shard and bucket
	m.store(1, 30, 2, 4, &st) // bucket full: step-9 slot is the victim
	if _, ok := m.probe(1, 20, 9, &st); ok {
		t.Fatal("deeper slot survived eviction")
	}
	if ub, ok := m.probe(1, 2, 5, &st); !ok || ub != 3 {
		t.Fatal("shallower slot did not survive eviction")
	}
	if ub, ok := m.probe(1, 30, 2, &st); !ok || ub != 4 {
		t.Fatal("incoming entry not installed")
	}
	m.flush(&st)
	s := m.Stats()
	if s.Hits == 0 || s.Misses == 0 || s.Stores == 0 || s.Evictions != 1 {
		t.Fatalf("stats %+v look wrong", s)
	}
	// nil Memo is inert.
	var nilM *Memo
	nilM.flush(&st)
	if nilM.Stats() != (MemoStats{}) {
		t.Fatal("nil Memo stats not empty")
	}
}

// The satellite differential: on every n <= 12 test circuit, the
// memo-on search, the memo-off search, and the PR 4 exhaustive oracle
// must return byte-identical results — size, witness pattern, and set —
// at 1 and at 8 workers. A single Memo shared across all circuits (the
// experiment-cell usage) must not change anything either.
func TestOptimalMemoModesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	shared := NewMemo(1 << 20)
	for ci, c := range testCircuits(12, rng) {
		wantSize, wantP, wantSet := bruteOptimalNoncolliding(c)
		check := func(mode string, size int, p pattern.Pattern, set []int, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("circuit %d %s: %v", ci, mode, err)
			}
			if size != wantSize || !p.Equal(wantP) || len(set) != len(wantSet) {
				t.Fatalf("circuit %d %s: (%d,%v) oracle (%d,%v)", ci, mode, size, p, wantSize, wantP)
			}
			for i := range set {
				if set[i] != wantSet[i] {
					t.Fatalf("circuit %d %s: set %v oracle %v", ci, mode, set, wantSet)
				}
			}
		}
		ctx := context.Background()
		for _, workers := range []int{1, 8} {
			s, p, set, err := OptimalNoncollidingOpt(ctx, c, OptimalOptions{Workers: workers})
			check("memo-auto", s, p, set, err)
			s, p, set, err = OptimalNoncollidingOpt(ctx, c, OptimalOptions{Workers: workers, NoMemo: true})
			check("memo-off", s, p, set, err)
			s, p, set, err = OptimalNoncollidingOpt(ctx, c, OptimalOptions{Workers: workers, Memo: shared})
			check("memo-shared", s, p, set, err)
		}
		// A second pass over the now-warm shared table: probes hit
		// immediately and still must not change the answer.
		s, p, set, err := OptimalNoncollidingOpt(ctx, c, OptimalOptions{Workers: 2, Memo: shared})
		check("memo-warm", s, p, set, err)
	}
	if st := shared.Stats(); st.Stores == 0 {
		t.Fatal("shared memo never stored anything across the whole suite")
	}
}

// A tiny table forces constant eviction; the answer must not change.
func TestOptimalMemoTinyTableEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	tiny := NewMemo(1) // minimum size: one bucket per shard
	for ci, c := range testCircuits(10, rng) {
		wantSize, wantP, _ := bruteOptimalNoncolliding(c)
		s, p, _, err := OptimalNoncollidingOpt(context.Background(), c, OptimalOptions{Workers: 4, Memo: tiny})
		if err != nil || s != wantSize || !p.Equal(wantP) {
			t.Fatalf("circuit %d: (%d,%v,%v) oracle (%d,%v)", ci, s, err, p, wantSize, wantP)
		}
	}
}
