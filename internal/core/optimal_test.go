package core

import (
	"testing"

	"shufflenet/internal/delta"
	"shufflenet/internal/network"
	"shufflenet/internal/pattern"
)

func TestOptimalNoncollidingButterfly(t *testing.T) {
	circ := delta.Butterfly(3).ToNetwork()
	size, p, set := OptimalNoncolliding(circ)
	if size != len(set) || p.Count(pattern.M(0)) != size {
		t.Fatalf("inconsistent result: size=%d set=%v", size, set)
	}
	if !pattern.Noncolliding(circ, p, pattern.M(0)) {
		t.Fatal("witness pattern is colliding")
	}
	// The 3-level butterfly admits a noncolliding pair at least.
	if size < 2 {
		t.Fatalf("optimal size %d < 2 on a lg-n-depth network", size)
	}
	// The constructive adversary cannot beat it.
	an := Theorem41(delta.NewIterated(8).AddBlock(nil, delta.Butterfly(3)), 0)
	if len(an.D) > size {
		t.Fatalf("adversary %d beats optimum %d", len(an.D), size)
	}
}

func TestOptimalNoncollidingEmptyNetwork(t *testing.T) {
	// With no comparators, everything is noncolliding: optimum = n.
	size, _, _ := OptimalNoncolliding(network.New(6))
	if size != 6 {
		t.Fatalf("empty network optimum = %d, want 6", size)
	}
}

func TestOptimalNoncollidingSorter(t *testing.T) {
	// A sorting network admits only singletons.
	circ, place := delta.BitonicIterated(3).ToNetwork()
	_ = place
	size, _, _ := OptimalNoncolliding(circ)
	if size != 1 {
		t.Fatalf("sorting network optimum = %d, want 1", size)
	}
}

func TestOptimalNoncollidingGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for n > MaxOptimalWires")
		}
	}()
	OptimalNoncolliding(network.New(MaxOptimalWires + 1))
}
