package core

import (
	"fmt"
	"math/bits"

	"shufflenet/internal/network"
)

// canonizer is the per-network static analysis under the optimum
// search: everything about the circuit that does not depend on the
// pattern being enumerated is computed here once and shared (read-only)
// by every worker. It owns
//
//   - the assignment order: a permutation of the input wires chosen so
//     that comparator cones close as early as possible, which is what
//     lets the incremental simulation witness collisions near the root
//     of the search tree instead of near its leaves;
//   - the trigger schedule for that order (the incSim firing groups);
//   - the residual-state geometry: which rails are still readable at
//     each search boundary, and at which boundaries two distinct
//     prefixes can first map to the same residual state;
//   - the direct-pair capacity bound: input wires that provably meet at
//     a first-contact comparator can contribute at most one M between
//     them, and these pairs form a matching, so the bound is exact and
//     O(1) to maintain during the descent;
//   - the network's verified wire-relabeling automorphisms and mirror
//     (direction-reversing) anti-automorphisms, and the canonical
//     residual-state key that quotients the transposition table by
//     them.
//
// The canonizer never aliases mutable search state: incSim holds the
// per-worker rail symbols and undo trail on top of it.
type canonizer struct {
	n     int
	comps []incComp // level-major order; rail indices
	// order[t] is the input wire assigned at search step t; stepOf is
	// its inverse. The order is the greedy cone-closing heuristic of
	// assignOrder, identical for every run on the same network.
	order  []int32
	stepOf []int32
	// trigger[t] lists (indices of) the comparators whose outcome
	// becomes determined when step t's wire is assigned, ascending
	// (= level-major within the group).
	trigger [][]int32
	// lastTouch[r] is the last step whose trigger group contains a
	// comparator touching rail r, or -1 if no comparator ever does.
	lastTouch []int32
	// liveList[t] lists, ascending, the rails whose boundary-t value is
	// still read by some unfired comparator: the residual state at
	// boundary t is exactly the symbols on these rails (dead rails and
	// unassigned rails cannot influence any completion).
	liveList [][]int32
	// probeAt[t] reports whether two prefixes that differ at boundary
	// t-1 can first coincide at boundary t. States merge only when a
	// trigger group fires (sorting is lossy) or a rail dies, and a rail
	// dies at t only if a group-(t-1) comparator was its last touch —
	// so both reduce to "trigger[t-1] is nonempty". Memo probes and
	// stores are gated on this: at every other boundary a lookup could
	// only rediscover the current path.
	probeAt []bool
	// mOnly[t] reports that step t's wire is read by no comparator at
	// all: its symbol is invisible to the simulation, so only the M
	// branch can matter (S and L reach the same residual state with one
	// fewer M).
	mOnly []bool
	// partner[w] is the input wire that provably meets wire w at the
	// first comparator on both their rails (-1 if none). Each rail's
	// first comparator is unique, so these pairs form a matching; if
	// both ends are M the pair collides, so each pair contributes at
	// most one M to any noncolliding pattern.
	partner []int32
	// capInit = n - (number of partner pairs): the root value of the
	// pair-capacity bound maintained by the descent.
	capInit int
	// autos are the verified symmetries usable for canonicalization;
	// salt/salt2 fold the network structure into the memo keys so one
	// table can be shared between concurrent searches on different
	// networks.
	autos       []autoMap
	salt, salt2 uint64
}

// autoMap is one verified symmetry of the network. For a plain
// automorphism, relabeling rails by perm maps every level's directed
// comparator set onto itself; for a mirror anti-automorphism the
// directions reverse (Min and Max swap), which on patterns is the
// S <-> L value swap — the 0/1/⊥ symmetry of the three-letter
// alphabet. Either way the map sends residual states to residual
// states with the same best achievable completion.
type autoMap struct {
	perm   []int32
	inv    []int32
	mirror bool
	// stab[t] reports that perm fixes the set of wires assigned before
	// boundary t (and hence the boundary's live-rail set): only then
	// does the transported state live at the same boundary.
	stab []bool
}

const (
	// maxAutos caps the symmetry group (including the identity) that
	// canonical keys minimize over. The kept set is always a genuine
	// subgroup — closed under composition, hence under inverse — so
	// the key is a class function: states related by a kept symmetry
	// get identical keys. Discovered generators whose closure would
	// exceed the cap are dropped, which is sound (a smaller subgroup
	// only coarsens the quotient) and keeps the per-probe cost bounded
	// on highly symmetric networks.
	maxAutos = 32
	// autoSearchBudget caps the backtracking nodes spent discovering
	// symmetries; dense random networks fail the color refinement long
	// before this bites.
	autoSearchBudget = 1 << 17
)

// newCanonizer runs the full static analysis for c.
func newCanonizer(c *network.Network) *canonizer {
	n := c.Wires()
	if n > 32 {
		panic("core: canonizer requires n <= 32 (wire sets are bitmasks)")
	}
	cz := &canonizer{n: n}

	// Level-major comparator list and per-comparator cone masks.
	// coneMask[r] = set of input wires influencing rail r's value after
	// the comparators scanned so far.
	type compCone struct {
		cone uint32
	}
	coneMask := make([]uint32, n)
	for r := range coneMask {
		coneMask[r] = 1 << uint(r)
	}
	var cones []compCone
	for _, lv := range c.Levels() {
		for _, cm := range lv {
			cz.comps = append(cz.comps, incComp{a: int32(cm.Min), b: int32(cm.Max)})
			cone := coneMask[cm.Min] | coneMask[cm.Max]
			coneMask[cm.Min], coneMask[cm.Max] = cone, cone
			cones = append(cones, compCone{cone: cone})
		}
	}
	m := len(cz.comps)

	// Assignment order: greedily complete the comparator with the
	// fewest unassigned cone wires, preferring (on ties) the one whose
	// cone overlaps the assigned set most and then level-major order.
	// This walks up each cone tree as soon as its leaves are paid for,
	// so collisions are witnessed at the shallowest possible depth.
	cz.order = make([]int32, 0, n)
	cz.stepOf = make([]int32, n)
	var assigned uint32
	fired := make([]bool, m)
	appendWire := func(w int) {
		cz.stepOf[w] = int32(len(cz.order))
		cz.order = append(cz.order, int32(w))
		assigned |= 1 << uint(w)
	}
	for len(cz.order) < n {
		best, bestMissing, bestOverlap := -1, n+1, -1
		for ci := 0; ci < m; ci++ {
			if fired[ci] {
				continue
			}
			missing := bits.OnesCount32(cones[ci].cone &^ assigned)
			if missing == 0 {
				fired[ci] = true
				continue
			}
			overlap := bits.OnesCount32(cones[ci].cone & assigned)
			if missing < bestMissing || (missing == bestMissing && overlap > bestOverlap) {
				best, bestMissing, bestOverlap = ci, missing, overlap
			}
		}
		if best < 0 {
			for w := 0; w < n; w++ {
				if assigned&(1<<uint(w)) == 0 {
					appendWire(w)
				}
			}
			break
		}
		miss := cones[best].cone &^ assigned
		for w := 0; w < n; w++ {
			if miss&(1<<uint(w)) != 0 {
				appendWire(w)
			}
		}
		fired[best] = true
	}

	// Trigger groups under that order: comparator ci fires at the step
	// assigning the last wire of its cone. Appending level-major keeps
	// each group level-major, which is what makes firing a group
	// equivalent to the level-major simulation (see incSim).
	cz.trigger = make([][]int32, n)
	group := make([]int32, m)
	for ci := 0; ci < m; ci++ {
		g := int32(-1)
		cone := cones[ci].cone
		for cone != 0 {
			w := bits.TrailingZeros32(cone)
			cone &= cone - 1
			if s := cz.stepOf[w]; s > g {
				g = s
			}
		}
		group[ci] = g
		cz.trigger[g] = append(cz.trigger[g], int32(ci))
	}

	// Rail liveness per boundary. Rail r's boundary value is read by a
	// future comparator iff some comparator touching r is in a group
	// >= t; all of them are in groups >= stepOf[r] (r is in their
	// cones), so rails of unassigned wires are never live.
	cz.lastTouch = make([]int32, n)
	for r := range cz.lastTouch {
		cz.lastTouch[r] = -1
	}
	for ci := 0; ci < m; ci++ {
		for _, r := range [2]int32{cz.comps[ci].a, cz.comps[ci].b} {
			if group[ci] > cz.lastTouch[r] {
				cz.lastTouch[r] = group[ci]
			}
		}
	}
	cz.liveList = make([][]int32, n+1)
	for t := 0; t <= n; t++ {
		var live []int32
		for r := 0; r < n; r++ {
			if int(cz.stepOf[r]) < t && cz.lastTouch[r] >= int32(t) {
				live = append(live, int32(r))
			}
		}
		cz.liveList[t] = live
	}
	cz.probeAt = make([]bool, n+1)
	for t := 1; t <= n; t++ {
		cz.probeAt[t] = len(cz.trigger[t-1]) > 0
	}
	cz.mOnly = make([]bool, n)
	for t := 0; t < n; t++ {
		cz.mOnly[t] = cz.lastTouch[cz.order[t]] < 0
	}

	// Direct pairs: the first comparator on both its rails still sees
	// the raw input values, so its two wires meet unconditionally.
	cz.partner = make([]int32, n)
	for w := range cz.partner {
		cz.partner[w] = -1
	}
	touched := make([]bool, n)
	pairs := 0
	for ci := 0; ci < m; ci++ {
		a, b := cz.comps[ci].a, cz.comps[ci].b
		if !touched[a] && !touched[b] {
			cz.partner[a], cz.partner[b] = b, a
			pairs++
		}
		touched[a], touched[b] = true, true
	}
	cz.capInit = n - pairs

	cz.salt, cz.salt2 = structureSalt(c)
	cz.findAutos(c)
	return cz
}

// structureSalt digests the comparator structure so canonical keys
// from different networks sharing one transposition table cannot
// alias each other except by hash collision.
func structureSalt(c *network.Network) (uint64, uint64) {
	h1 := uint64(0x9e3779b97f4a7c15) ^ uint64(c.Wires())
	h2 := uint64(0xc2b2ae3d27d4eb4f) + uint64(c.Wires())
	mix := func(v uint64) {
		h1 = (h1 ^ v) * 0x100000001b3
		h2 = (h2 + v) * 0xc6a4a7935bd1e995
		h2 ^= h2 >> 29
	}
	for _, lv := range c.Levels() {
		mix(0xa5a5a5a5)
		for _, cm := range lv {
			mix(uint64(cm.Min)<<32 | uint64(cm.Max))
		}
	}
	return h1, h2
}

// NetworkFingerprint digests the comparator structure (wire count and
// the full leveled comparator list) into a fixed 32-hex-digit string —
// the same salts the transposition table keys carry. Frontier journals
// and the shard coordinator stamp it on their records so a resume or a
// merge against a *different* network is refused up front instead of
// producing a silently wrong certificate.
func NetworkFingerprint(c *network.Network) string {
	h1, h2 := structureSalt(c)
	return fmt.Sprintf("%016x%016x", h1, h2)
}

// findAutos discovers up to maxAutos verified symmetries: wire
// relabelings mapping each level's directed comparator set onto itself
// (mirror=false), and relabelings mapping it onto the direction-
// reversed set (mirror=true). Candidates are pruned by iterated color
// refinement and every completed map is re-verified against the full
// comparator list, so a truncated or abandoned search is still sound —
// it just canonicalizes more coarsely.
func (cz *canonizer) findAutos(c *network.Network) {
	n := cz.n
	levels := c.Levels()
	L := len(levels)
	// role: 0 none, 1 min, 2 max; partner rail per level.
	role := make([][]uint8, L)
	lpart := make([][]int32, L)
	for l, lv := range levels {
		role[l] = make([]uint8, n)
		lpart[l] = make([]int32, n)
		for r := range lpart[l] {
			lpart[l][r] = -1
		}
		for _, cm := range lv {
			role[l][cm.Min], role[l][cm.Max] = 1, 2
			lpart[l][cm.Min], lpart[l][cm.Max] = int32(cm.Max), int32(cm.Min)
		}
	}

	refine := func(flip bool) []uint64 {
		col := make([]uint64, n)
		for r := range col {
			col[r] = 1
		}
		next := make([]uint64, n)
		for round := 0; round < 4; round++ {
			for r := 0; r < n; r++ {
				h := col[r] * 0x9e3779b97f4a7c15
				for l := 0; l < L; l++ {
					rr := role[l][r]
					if flip && rr != 0 {
						rr = 3 - rr
					}
					h = (h ^ uint64(rr)) * 0x100000001b3
					if p := lpart[l][r]; p >= 0 {
						h = (h ^ col[p]) * 0x100000001b3
					} else {
						h = (h ^ 0x7f) * 0x100000001b3
					}
				}
				next[r] = h
			}
			copy(col, next)
		}
		return col
	}
	cN := refine(false)
	cF := refine(true)

	// verify checks sigma against every comparator (colors are hashes;
	// this is the real gate).
	verify := func(sigma []int32, mirror bool) bool {
		for l := 0; l < L; l++ {
			for _, cm := range levels[l] {
				sa, sb := sigma[cm.Min], sigma[cm.Max]
				if mirror {
					sa, sb = sb, sa
				}
				if role[l][sa] != 1 || lpart[l][sa] != sb {
					return false
				}
			}
		}
		return true
	}

	budget := autoSearchBudget
	sigma := make([]int32, n)
	used := make([]bool, n)
	var search func(r int, mirror bool, target []uint64)
	search = func(r int, mirror bool, target []uint64) {
		if len(cz.autos) >= maxAutos || budget <= 0 {
			return
		}
		budget--
		if r == n {
			id := true
			for i := range sigma {
				if sigma[i] != int32(i) {
					id = false
					break
				}
			}
			if id && !mirror {
				return
			}
			if !verify(sigma, mirror) {
				return
			}
			cz.autos = append(cz.autos, autoMap{perm: append([]int32(nil), sigma...), mirror: mirror})
			return
		}
		for q := 0; q < n; q++ {
			if used[q] || cN[q] != target[r] {
				continue
			}
			// Local consistency: every level where r has a comparator to
			// an already-mapped partner must map onto a real comparator
			// with the right (possibly flipped) orientation.
			ok := true
			for l := 0; l < L && ok; l++ {
				rr := role[l][r]
				want := rr
				if mirror && rr != 0 {
					want = 3 - rr
				}
				if role[l][q] != want {
					ok = false
					break
				}
				if rr != 0 {
					p := lpart[l][r]
					if int(p) < r {
						if lpart[l][q] != sigma[p] {
							ok = false
						}
					}
				}
			}
			if !ok {
				continue
			}
			sigma[r] = int32(q)
			used[q] = true
			search(r+1, mirror, target)
			used[q] = false
			if len(cz.autos) >= maxAutos || budget <= 0 {
				return
			}
		}
	}
	search(0, false, cN)
	search(0, true, cF)

	// Close the discovered generators into a capped subgroup: the key
	// minimizes over whatever list it has, and only a genuine group
	// makes that minimum a class function (with a bare generator list,
	// key(x) and key(a·x) can disagree because a² or a⁻¹ is missing).
	// Generators whose closure would blow past maxAutos are dropped.
	gens := cz.autos
	cz.autos = nil
	sig := func(a autoMap) string {
		b := make([]byte, n+1)
		for i, v := range a.perm {
			b[i] = byte(v)
		}
		if a.mirror {
			b[n] = 1
		}
		return string(b)
	}
	identity := autoMap{perm: make([]int32, n)}
	for i := range identity.perm {
		identity.perm[i] = int32(i)
	}
	compose := func(x, y autoMap) autoMap { // apply y, then x
		c := autoMap{perm: make([]int32, n), mirror: x.mirror != y.mirror}
		for i := range c.perm {
			c.perm[i] = x.perm[y.perm[i]]
		}
		return c
	}
	group := []autoMap{identity}
	have := map[string]bool{sig(identity): true}
	for _, g := range gens {
		if have[sig(g)] {
			continue
		}
		trial := append(append([]autoMap(nil), group...), g)
		thave := map[string]bool{}
		for _, a := range trial {
			thave[sig(a)] = true
		}
		ok := true
		for grew := true; grew && ok; {
			grew = false
			for i := 0; i < len(trial) && ok; i++ {
				for j := 0; j < len(trial) && ok; j++ {
					c := compose(trial[i], trial[j])
					if s := sig(c); !thave[s] {
						thave[s] = true
						trial = append(trial, c)
						grew = true
						if len(trial) > maxAutos {
							ok = false
						}
					}
				}
			}
		}
		if ok {
			group = trial
			have = thave
		}
	}
	for _, a := range group {
		if s := sig(a); s == sig(identity) {
			continue
		}
		a.inv = make([]int32, n)
		for i, v := range a.perm {
			a.inv[v] = int32(i)
		}
		cz.autos = append(cz.autos, a)
	}

	// Boundary stabilization: auto a transports boundary-t states to
	// boundary-t states iff it fixes the assigned wire set.
	for ai := range cz.autos {
		a := &cz.autos[ai]
		a.stab = make([]bool, n+1)
		a.stab[0] = true
		var set, img uint32
		for t := 1; t <= n; t++ {
			w := cz.order[t-1]
			set |= 1 << uint(w)
			img |= 1 << uint(a.perm[w])
			a.stab[t] = set == img
		}
	}
}

// key returns the canonical transposition-table key for the residual
// state at boundary t: the lexicographically least image of the
// live-rail symbols under the applicable symmetries (identity always
// included; mirrors swap S and L), hashed twice with independent
// salts. h1 selects the bucket, h2 is stored as a verifier; together
// with the step byte that is ~91 bits of discrimination, so a false
// match — the only way the table could return a wrong bound — needs a
// hash collision, not just a bucket collision. scratch must have
// capacity n and is clobbered.
func (cz *canonizer) key(t int, sym []uint8, scratch []uint8) (uint64, uint64) {
	live := cz.liveList[t]
	best := scratch[:len(live)]
	for i, r := range live {
		best[i] = sym[r]
	}
	for ai := range cz.autos {
		a := &cz.autos[ai]
		if !a.stab[t] {
			continue
		}
		better := false
		for i, r := range live {
			v := sym[a.inv[r]]
			if a.mirror {
				v = 2 - v
			}
			if !better {
				if v > best[i] {
					break
				}
				if v == best[i] {
					continue
				}
				better = true
			}
			best[i] = v
		}
	}
	h1 := cz.salt ^ uint64(t)*0x9e3779b97f4a7c15
	h2 := cz.salt2 + uint64(t)*0xbf58476d1ce4e5b9
	for _, b := range best {
		h1 = (h1 ^ uint64(b)) * 0x100000001b3
		h2 = (h2 + uint64(b)) * 0xc6a4a7935bd1e995
		h2 ^= h2 >> 29
	}
	return h1, h2
}
