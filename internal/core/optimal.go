package core

import (
	"fmt"

	"shufflenet/internal/network"
	"shufflenet/internal/pattern"
)

// MaxOptimalWires bounds OptimalNoncolliding's 3^n pattern enumeration.
const MaxOptimalWires = 16

// OptimalNoncolliding finds, by brute force over all 3^n patterns with
// symbols {S_0, M_0, L_0}, a largest noncolliding [M_0]-set in the
// circuit — the best any adversary of the paper's form could possibly
// achieve on this network. It returns the set size, the witnessing
// pattern, and the set itself.
//
// The constructive Lemma 4.1/Theorem 4.1 adversary is a lower bound on
// this optimum; comparing the two (experiment A2) measures the
// per-instance slack of the paper's argument. n must be at most
// MaxOptimalWires.
func OptimalNoncolliding(c *network.Network) (int, pattern.Pattern, []int) {
	n := c.Wires()
	if n > MaxOptimalWires {
		panic(fmt.Sprintf("core.OptimalNoncolliding: n = %d exceeds %d (3^n patterns)", n, MaxOptimalWires))
	}
	symbols := [3]pattern.Symbol{pattern.S(0), pattern.M(0), pattern.L(0)}
	p := make(pattern.Pattern, n)
	var bestP pattern.Pattern
	var bestSize int

	// Enumerate base-3 assignments; prune branches that cannot beat the
	// incumbent (remaining wires all M would still be too small).
	var rec func(w, mCount int)
	rec = func(w, mCount int) {
		if mCount+(n-w) <= bestSize {
			return // cannot beat the incumbent
		}
		if w == n {
			if mCount > bestSize && pattern.Noncolliding(c, p, pattern.M(0)) {
				bestSize = mCount
				bestP = p.Clone()
			}
			return
		}
		// Try M first so large sets are found early (better pruning).
		p[w] = symbols[1]
		rec(w+1, mCount+1)
		p[w] = symbols[0]
		rec(w+1, mCount)
		p[w] = symbols[2]
		rec(w+1, mCount)
	}
	rec(0, 0)
	if bestP == nil {
		// Any singleton M-set is trivially noncolliding.
		bestP = pattern.Uniform(n, pattern.S(0))
		bestP[0] = pattern.M(0)
		bestSize = 1
	}
	return bestSize, bestP, bestP.Set(pattern.M(0))
}
