package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"shufflenet/internal/network"
	"shufflenet/internal/obs"
	"shufflenet/internal/par"
	"shufflenet/internal/pattern"
)

// MaxOptimalWires bounds OptimalNoncolliding. The cost model is not
// 3^n leaf enumeration: the branch-and-bound explores only prefixes
// that are noncolliding so far and not provably unable to beat the
// incumbent, with collision pruning (incSim), a direct-pair capacity
// bound, canonical-state memoization, and sibling dominance cutting
// the rest (see canon.go and memo.go). The cap is set by two things:
// the witness encoding — size plus a 2-bit-per-wire pattern packed
// into one atomic 64-bit word (2·26 + 6 bits) — and the measured
// worst case, dense random circuits, whose optimum is small and whose
// automorphism group is trivial (see EXPERIMENTS.md, "Symmetry
// reduction" and A3). A single process handles n=26 at moderate depth
// in minutes; what moved the cap past 24 is that a search can now be
// checkpointed (frontier records + -resume), its table spilled to
// disk and reopened warm (OpenSpillMemo), and its prefix frontier
// sharded across worker processes (internal/coord) — runs no longer
// have to fit one uninterrupted process. Friendly circuits
// (butterflies, sparse levels, RDN stacks) finish n=26 in seconds.
const MaxOptimalWires = 26

// optimalPrefixDigits fans the top of the search out as independent
// branch-and-bound roots (3^digits prefixes over the first search
// steps). The prefixes are scanned in DFS order by a worker pool
// sharing one atomic incumbent, so the split is both the parallel
// decomposition and a work queue fine enough (81 prefixes) to balance
// uneven subtrees.
const optimalPrefixDigits = 4

// optimalRanks maps a base-3 prefix digit to a symbol rank; the order
// (M, S, L) matches the DFS branch order below, so ascending prefix
// index is exactly sequential DFS order.
var optimalRanks = [3]uint8{rankM, rankS, rankL}

// lexOf maps a symbol rank to its position in the witness order
// M < S < L — the branch order of the reference first-maximum DFS —
// and lexSymbols maps back. The packed incumbent compares witnesses
// in this order.
var lexOf = [3]uint8{rankS: 1, rankM: 0, rankL: 2}

var lexSymbols = [3]pattern.Symbol{pattern.M(0), pattern.S(0), pattern.L(0)}

var (
	metOptimalNodes   = obs.C("core.optimal.nodes")
	metOptimalDomCuts = obs.C("core.optimal.dominance.cuts")
)

// Probe/store boundaries where the residual subtree is at least this
// deep; below it a table round-trip costs more than the subtree.
const memoMinRemain = 3

// Take sibling-dominance snapshots only where the residual subtree is
// at least this deep, for the same reason.
const domMinRemain = 4

// OptimalOptions configures OptimalNoncollidingOpt.
type OptimalOptions struct {
	// Workers is the worker count (0 = GOMAXPROCS, clamped by par.Workers).
	Workers int
	// Memo is the transposition table to consult and fill. nil means
	// allocate a private table of memoAutoBytes(n) for this search;
	// set NoMemo to run without one. A shared table may be passed to
	// concurrent searches, including on different networks.
	Memo *Memo
	// NoMemo disables the transposition table entirely.
	NoMemo bool
	// Progress, when non-nil and started, receives live telemetry: a
	// registered source reports DFS nodes (with derived nodes/sec),
	// prefix-frontier completion (driving the ETA), the current
	// incumbent size, and memo occupancy; incumbent improvements are
	// published as timestamped events carrying the packed witness.
	// Telemetry is read-only — results are byte-identical with it on
	// or off — and when the engine is disabled the search pays one
	// atomic load per cancellation-probe stride (every 2^13 nodes),
	// nothing per node.
	Progress *obs.Progress

	// ShardStart/ShardEnd restrict the scan to prefixes in
	// [ShardStart, ShardEnd) of the OptimalPrefixes(n)-wide frontier;
	// ShardEnd <= 0 means the full frontier. Because the packed
	// incumbent is a pure max over leaves, the max of the shards'
	// packed results over any partition of the frontier equals the
	// whole search's packed result — this is what the coordinator
	// (internal/coord) merges.
	ShardStart, ShardEnd int

	// SkipPrefix, when non-nil, reports prefixes a previous run
	// already completed; their subtrees are not re-explored. Sound
	// only together with a SeedIncumbent at least as large as the
	// incumbent recorded when each skipped prefix finished (the
	// frontier journal guarantees this — see the resume proof in
	// DESIGN.md §4, decision 14).
	SkipPrefix func(prefix int) bool

	// SeedIncumbent pre-loads the packed incumbent (a value previously
	// returned or journaled by this search, i.e. a real leaf). The
	// final result is unchanged by any seed that the full search
	// dominates; a seed from completed prefixes makes skipping them
	// exact.
	SeedIncumbent uint64

	// OnPrefixDone, when non-nil, is called after each prefix subtree
	// is exhausted (including prefixes that die in their own digits
	// and prefixes skipped by SkipPrefix), with the global packed
	// incumbent at that moment. The incumbent is then an upper bound
	// witness for everything the prefix's subtree could contribute,
	// which is exactly what a resume needs to seed. Called
	// concurrently from worker goroutines; implementations
	// synchronize.
	OnPrefixDone func(prefix int, incumbent uint64)
}

// OptimalPrefixes is the width of the search's top-level prefix
// frontier for an n-wire circuit: 3^min(optimalPrefixDigits, n), the
// unit of work distribution, checkpointing, and sharding (81 for every
// n >= 4).
func OptimalPrefixes(n int) int {
	digits := optimalPrefixDigits
	if digits > n {
		digits = n
	}
	p := 1
	for i := 0; i < digits; i++ {
		p *= 3
	}
	return p
}

// DecodeOptimalWitness unpacks a packed incumbent (size<<2n | inverted
// lex key) into the result triple OptimalNoncolliding returns: set
// size, witnessing pattern, and the [M_0]-set. A zero pack decodes to
// the defensive singleton-M default (unreachable from a completed
// search on n >= 1 wires).
func DecodeOptimalWitness(n int, packed uint64) (int, pattern.Pattern, []int) {
	keyBits := uint(2 * n)
	keyMask := uint64(1)<<keyBits - 1
	size := int(packed >> keyBits)
	var p pattern.Pattern
	if size == 0 {
		p = pattern.Uniform(n, pattern.S(0))
		p[0] = pattern.M(0)
		size = 1
	} else {
		p = make(pattern.Pattern, n)
		key := (packed & keyMask) ^ keyMask
		for j := n - 1; j >= 0; j-- {
			p[j] = lexSymbols[key&3]
			key >>= 2
		}
	}
	return size, p, p.Set(pattern.M(0))
}

// OptimalNoncolliding finds, over all 3^n patterns with symbols
// {S_0, M_0, L_0}, a largest noncolliding [M_0]-set in the circuit —
// the best any adversary of the paper's form could possibly achieve on
// this network. It returns the set size, the witnessing pattern, and
// the set itself.
//
// The search is branch-and-bound: patterns are enumerated wire by wire
// in the canonizer's cone-closing order (M, then S, then L at each
// wire — M first so large sets are found early and the incumbent bound
// bites), and an incremental simulation (incSim) fires each comparator
// as soon as its cone of influence is fully assigned. A collision
// witnessed at a node condemns every completion of its prefix, a
// residual state already known to the transposition table bounds the
// subtree without descending, and a sibling whose residual state is
// pointwise dominated cannot contribute anything new. The result —
// including which of several maximum-size patterns is returned — is
// identical to the sequential first-maximum DFS of the exhaustive
// oracle, for any worker count and with the memo on or off (see
// DESIGN.md §4, decision 10).
//
// The constructive Lemma 4.1/Theorem 4.1 adversary is a lower bound on
// this optimum; comparing the two (experiment A2) measures the
// per-instance slack of the paper's argument. n must be at most
// MaxOptimalWires.
func OptimalNoncolliding(c *network.Network) (int, pattern.Pattern, []int) {
	size, p, set, _ := OptimalNoncollidingCtx(context.Background(), c, 0)
	return size, p, set
}

// OptimalNoncollidingCtx is OptimalNoncolliding under a context and an
// explicit worker count (0 = GOMAXPROCS). The search probes for
// cancellation between prefixes and every few thousand DFS nodes; on
// cancellation the incumbent so far is discarded — a partial
// enumeration proves no optimum — and a *par.ErrCanceled is returned.
func OptimalNoncollidingCtx(ctx context.Context, c *network.Network, workers int) (int, pattern.Pattern, []int, error) {
	return OptimalNoncollidingOpt(ctx, c, OptimalOptions{Workers: workers})
}

// OptimalNoncollidingOpt is OptimalNoncollidingCtx with full control
// over the transposition table, checkpointing, and sharding.
func OptimalNoncollidingOpt(ctx context.Context, c *network.Network, opt OptimalOptions) (int, pattern.Pattern, []int, error) {
	packed, err := OptimalNoncollidingPacked(ctx, c, opt)
	if err != nil {
		return 0, nil, nil, err
	}
	size, p, set := DecodeOptimalWitness(c.Wires(), packed)
	return size, p, set, nil
}

// OptimalNoncollidingPacked runs the search and returns the raw packed
// incumbent — size<<2n | inverted lex witness key — without decoding.
// This is the merge currency of distribution: shard workers return it,
// the coordinator folds shards with an integer max (the prefix-order
// reduce of DESIGN.md decision 9 applied across processes), and the
// frontier journal records it per completed prefix. A full-frontier,
// unseeded call packs exactly what OptimalNoncollidingOpt decodes.
func OptimalNoncollidingPacked(ctx context.Context, c *network.Network, opt OptimalOptions) (uint64, error) {
	n := c.Wires()
	if n > MaxOptimalWires {
		panic(fmt.Sprintf("core.OptimalNoncolliding: n = %d exceeds the %d-wire cap (the packed witness holds 2 bits per wire plus the size in one 64-bit word, and the pruned branch-and-bound worst case — dense random circuits — is calibrated to %d wires; see MaxOptimalWires)", n, MaxOptimalWires, MaxOptimalWires))
	}
	cz := newCanonizer(c)
	mm := opt.Memo
	if mm == nil && !opt.NoMemo {
		mm = NewMemo(memoAutoBytes(n))
	}

	digits := optimalPrefixDigits
	if digits > n {
		digits = n
	}
	prefixes := OptimalPrefixes(n)
	shardStart, shardEnd := opt.ShardStart, opt.ShardEnd
	if shardEnd <= 0 || shardEnd > prefixes {
		shardEnd = prefixes
	}
	if shardStart < 0 {
		shardStart = 0
	}
	if shardStart > shardEnd {
		shardStart = shardEnd
	}
	shardN := shardEnd - shardStart

	// The incumbent packs the best leaf found so far as
	// size<<(2n) | (witness lex key ^ keyMask): bigger sets win, and
	// among equal sizes the witness that is lexicographically least in
	// the reference order (wire 0..n-1 ascending, M < S < L) wins.
	// Because the packed order is a pure max over leaves, the final
	// value is independent of exploration order, scheduling, worker
	// count, and memoization — every cut below only removes leaves
	// that provably cannot beat the final pack.
	keyBits := uint(2 * n)
	keyMask := uint64(1)<<keyBits - 1
	var incumbent atomic.Uint64
	incumbent.Store(opt.SeedIncumbent)
	var nextPrefix atomic.Int64
	var canceled atomic.Bool
	var liveNodes, prefixesDone atomic.Int64
	done := ctx.Done()

	// onDone retires a frontier prefix: the progress counter always
	// moves, and the checkpoint callback (if any) observes the global
	// incumbent *after* the subtree is exhausted — by the resume proof
	// (DESIGN.md decision 14) that value dominates everything the
	// prefix could have contributed, so it is exactly the seed a
	// resumed run needs when skipping this prefix.
	onDone := func(p int) {
		prefixesDone.Add(1)
		if opt.OnPrefixDone != nil {
			opt.OnPrefixDone(p, incumbent.Load())
		}
	}

	// Live-telemetry state: workers fold their local node counts in at
	// the cancellation-probe cadence (and at prefix boundaries), so a
	// Progress source can report nodes/sec and frontier completion
	// without the hot loop ever touching a shared atomic per node.
	prog := opt.Progress
	if prog != nil {
		unregister := prog.Register(func(s *obs.Sample) {
			s.Counter("optimal.nodes", liveNodes.Load())
			dp := prefixesDone.Load()
			s.Field("optimal.prefixes_done", dp)
			s.Field("optimal.prefixes_total", int64(shardN))
			s.SetFraction(float64(dp), float64(shardN))
			s.Field("optimal.incumbent", int64(incumbent.Load()>>keyBits))
			if mm != nil {
				s.Field("optimal.memo_load", mm.Stats().LoadFactor)
			}
		})
		defer unregister()
	}

	worker := func() {
		sim := newIncSim(cz)
		ranks := make([]uint8, n) // by wire
		scratch := make([]uint8, n)
		witLex := make([]uint8, n)
		witFor := ^uint64(0)
		domM := make([][]uint8, n)
		domS := make([][]uint8, n)
		var st memoStats
		var nodes, domCuts int64
		var nodesFlushed int64
		stopped := false
		probe := 0
		const probeEvery = 1 << 13
		defer func() {
			mm.flush(&st)
			metOptimalNodes.Add(nodes)
			metOptimalDomCuts.Add(domCuts)
			liveNodes.Add(nodes - nodesFlushed)
		}()

		checkCancel := func() bool {
			if canceled.Load() {
				return true
			}
			if done != nil {
				select {
				case <-done:
					canceled.Store(true)
					return true
				default:
				}
			}
			return false
		}

		// lexGreater reports that every leaf of the current subtree is
		// lexicographically greater than the incumbent witness: the
		// first reference-order wire where the subtree is not pinned to
		// the witness value decides, and if it is unassigned the
		// subtree straddles the witness. O(first unassigned wire).
		lexGreater := func(t int, inc uint64) bool {
			if witFor != inc {
				key := (inc & keyMask) ^ keyMask
				for j := n - 1; j >= 0; j-- {
					witLex[j] = uint8(key & 3)
					key >>= 2
				}
				witFor = inc
			}
			for j := 0; j < n; j++ {
				if int(cz.stepOf[j]) >= t {
					return false
				}
				if d := lexOf[ranks[j]]; d != witLex[j] {
					return d > witLex[j]
				}
			}
			return false
		}

		// capAfter maintains the direct-pair capacity bound across the
		// assignment of wire w: every pair contributes at most one M,
		// and an unpaired wire at most one.
		capAfter := func(t, w int, rank uint8, cap int) int {
			p := cz.partner[w]
			if p < 0 {
				return cap - 1
			}
			if cz.stepOf[p] > int32(t) { // partner still unassigned
				if rank == rankM {
					return cap - 1
				}
				return cap // the pair's unit passes to the partner
			}
			if ranks[p] == rankM {
				return cap // unit was consumed at the partner
			}
			return cap - 1
		}

		// dfs explores the subtree at boundary t and returns a true
		// upper bound on the size of any noncolliding leaf in it:
		// leaves return their exact size, cut nodes return the bound
		// that justified the cut, and interior nodes return the max of
		// their children's bounds (capped by their own entry bound).
		// Truth of the returned bound is the invariant that makes memo
		// entries sound wherever they are probed.
		var dfs func(t, mCount, cap int) int
		dfs = func(t, mCount, cap int) int {
			nodes++
			ub := n - t
			if cap < ub {
				ub = cap
			}
			bound := mCount + ub
			inc := incumbent.Load()
			incSize := int(inc >> keyBits)
			if bound < incSize {
				return bound
			}
			if bound == incSize && lexGreater(t, inc) {
				return bound
			}
			if probe++; probe >= probeEvery {
				probe = 0
				if checkCancel() {
					stopped = true
				}
				if prog.Enabled() {
					liveNodes.Add(nodes - nodesFlushed)
					nodesFlushed = nodes
					mm.flush(&st)
				}
			}
			if stopped {
				return bound
			}
			if t == n {
				if mCount > 0 {
					var key uint64
					for j := 0; j < n; j++ {
						key = key<<2 | uint64(lexOf[ranks[j]])
					}
					pk := uint64(mCount)<<keyBits | (key ^ keyMask)
					for {
						cur := incumbent.Load()
						if pk <= cur {
							break
						}
						if incumbent.CompareAndSwap(cur, pk) {
							if prog.Enabled() {
								prog.Event("incumbent", map[string]any{
									"size":   mCount,
									"packed": pk,
								})
							}
							break
						}
					}
				}
				return mCount
			}

			useMemo := mm != nil && cz.probeAt[t] && n-t >= memoMinRemain
			var h1, h2 uint64
			if useMemo {
				h1, h2 = cz.key(t, sim.sym, scratch)
				if mub, ok := mm.probe(h1, h2, t, &st); ok && int(mub) < ub {
					ub = int(mub)
					bound = mCount + ub
					if bound < incSize {
						return bound
					}
					if bound == incSize && lexGreater(t, inc) {
						return bound
					}
				}
			}

			w := int(cz.order[t])
			mark := sim.mark()
			B := 0
			dom := len(cz.trigger[t]) > 0 && n-t >= domMinRemain && !cz.mOnly[t]
			live := cz.liveList[t+1]
			haveM, haveS := false, false
			if dom {
				if domM[t] == nil {
					domM[t] = make([]uint8, n)
					domS[t] = make([]uint8, n)
				}
			}
			// dominated reports that the just-assigned sibling's
			// residual state is pointwise dominated by snap: equal
			// everywhere except rails where the new state has M where
			// the sibling had a non-M. Demoting those M's maps every
			// valid completion of the new state to a valid completion
			// of the sibling's with the same added M's, so the subtree
			// cannot contribute anything the explored sibling did not
			// already account for.
			dominated := func(snap []uint8) bool {
				for i, r := range live {
					if v := sim.sym[r]; v != snap[i] && v != rankM {
						return false
					}
				}
				return true
			}
			snapshot := func(buf []uint8) {
				for i, r := range live {
					buf[i] = sim.sym[r]
				}
			}

			ranks[w] = rankM
			if sim.assign(t, rankM) {
				if dom {
					snapshot(domM[t])
					haveM = true
				}
				if b := dfs(t+1, mCount+1, capAfter(t, w, rankM, cap)); b > B {
					B = b
				}
			}
			sim.undo(mark)
			if !stopped && !cz.mOnly[t] {
				ranks[w] = rankS
				if sim.assign(t, rankS) {
					if haveM && dominated(domM[t]) {
						domCuts++
					} else {
						if dom {
							snapshot(domS[t])
							haveS = true
						}
						if b := dfs(t+1, mCount, capAfter(t, w, rankS, cap)); b > B {
							B = b
						}
					}
				}
				sim.undo(mark)
				if !stopped {
					ranks[w] = rankL
					if sim.assign(t, rankL) {
						if (haveM && dominated(domM[t])) || (haveS && dominated(domS[t])) {
							domCuts++
						} else if b := dfs(t+1, mCount, capAfter(t, w, rankL, cap)); b > B {
							B = b
						}
					}
					sim.undo(mark)
				}
			}
			if B < bound {
				bound = B
			}
			if useMemo && !stopped {
				d := bound - mCount
				if d < 0 {
					d = 0
				}
				mm.store(h1, h2, t, uint8(d), &st)
			}
			return bound
		}

		for {
			p := shardStart + int(nextPrefix.Add(1)-1)
			if p >= shardEnd || checkCancel() {
				return
			}
			if opt.SkipPrefix != nil && opt.SkipPrefix(p) {
				// A previous run finished this subtree; SeedIncumbent
				// already dominates it, so skipping is exact.
				onDone(p)
				continue
			}

			// Assign the prefix digits (most significant digit = step 0).
			sim.undo(0)
			mCount, cap := 0, cz.capInit
			live := true
			for t, rest, div := 0, p, prefixes/3; t < digits; t++ {
				rank := optimalRanks[rest/div]
				rest %= div
				if div > 1 {
					div /= 3
				}
				w := int(cz.order[t])
				ranks[w] = rank
				if rank == rankM {
					mCount++
				}
				cap = capAfter(t, w, rank, cap)
				if !sim.assign(t, rank) {
					live = false // the prefix itself collides: subtree dead
					break
				}
			}
			if !live {
				onDone(p)
				continue
			}
			dfs(digits, mCount, cap)
			if stopped {
				return
			}
			onDone(p)
		}
	}

	if nw := par.Workers(shardN, opt.Workers); nw <= 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		for i := 0; i < nw; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}
	if canceled.Load() {
		return 0, &par.ErrCanceled{Op: "core.OptimalNoncolliding", Cause: ctx.Err()}
	}

	// The packed incumbent is simultaneously the maximum and its own
	// witness, so there is nothing to reduce — and nothing to decode
	// here: callers that want the triple go through DecodeOptimalWitness.
	return incumbent.Load(), nil
}
