package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"shufflenet/internal/network"
	"shufflenet/internal/par"
	"shufflenet/internal/pattern"
)

// MaxOptimalWires bounds OptimalNoncolliding's 3^n pattern enumeration.
// The branch-and-bound with incremental collision pruning (incSim)
// raised this from 16: the A2 workloads at n=16 dropped from minutes to
// milliseconds. The cap is set by the measured worst case, dense
// random circuits — their optimum is small, so neither the incumbent
// bound nor collision pruning cuts early — at ~12s on one slow core
// for n=20 with 100 comparators; friendly circuits (butterflies,
// sparse levels, RDN stacks) finish n=20 in well under a second.
const MaxOptimalWires = 20

// optimalPrefixDigits fans the top wires out as independent
// branch-and-bound roots (3^digits prefixes). The prefixes are scanned
// in DFS order by a worker pool sharing one atomic incumbent, so the
// split is both the parallel decomposition and a work queue fine
// enough (81 prefixes) to balance uneven subtrees.
const optimalPrefixDigits = 4

// optimalRanks maps a base-3 prefix digit to a symbol rank; the order
// (M, S, L) matches the DFS branch order below, so ascending prefix
// index is exactly sequential DFS order.
var optimalRanks = [3]uint8{rankM, rankS, rankL}

// OptimalNoncolliding finds, over all 3^n patterns with symbols
// {S_0, M_0, L_0}, a largest noncolliding [M_0]-set in the circuit —
// the best any adversary of the paper's form could possibly achieve on
// this network. It returns the set size, the witnessing pattern, and
// the set itself.
//
// The search is branch-and-bound: patterns are enumerated wire by wire
// (M, then S, then L at each wire — M first so large sets are found
// early and the incumbent bound bites), and an incremental simulation
// (incSim) fires each comparator as soon as its cone of influence is
// fully assigned. A collision witnessed while assigning wire w depends
// only on wires <= w and so condemns every completion of the prefix:
// colliding branches are cut at the node instead of being re-simulated
// from scratch at each of their 3^(n-w) leaves, which is where the
// speedup over the old per-leaf pattern.Noncolliding search comes
// from. The result — including which of several maximum-size patterns
// is returned — is identical to the old sequential first-maximum DFS,
// for any worker count (see optimalPacked).
//
// The constructive Lemma 4.1/Theorem 4.1 adversary is a lower bound on
// this optimum; comparing the two (experiment A2) measures the
// per-instance slack of the paper's argument. n must be at most
// MaxOptimalWires.
func OptimalNoncolliding(c *network.Network) (int, pattern.Pattern, []int) {
	size, p, set, _ := OptimalNoncollidingCtx(context.Background(), c, 0)
	return size, p, set
}

// optimalPacked orders (set size, prefix index) pairs so that a bigger
// set always wins and, among equal sizes, the earlier prefix wins:
// packed = size<<32 | (prefixes - prefix). The shared incumbent is the
// maximum published pack, and a branch with upper bound U in prefix p
// is cut iff pack(U, p) <= incumbent: the branch cannot strictly beat
// a known set, except by tying one found in an earlier prefix — and
// "first maximum in DFS order" means the earlier prefix's set is the
// answer regardless. Cutting an early branch via a later, larger
// incumbent is safe too: anything the branch could still contribute is
// strictly smaller than a set that provably exists elsewhere, so the
// final reduce could never pick it.
func optimalPacked(size, prefixes, prefix int) int64 {
	return int64(size)<<32 | int64(prefixes-prefix)
}

// OptimalNoncollidingCtx is OptimalNoncolliding under a context and an
// explicit worker count (0 = GOMAXPROCS). The search probes for
// cancellation between prefixes and every few thousand DFS nodes; on
// cancellation the incumbent so far is discarded — a partial
// enumeration proves no optimum — and a *par.ErrCanceled is returned.
func OptimalNoncollidingCtx(ctx context.Context, c *network.Network, workers int) (int, pattern.Pattern, []int, error) {
	n := c.Wires()
	if n > MaxOptimalWires {
		panic(fmt.Sprintf("core.OptimalNoncolliding: n = %d exceeds %d (3^n patterns)", n, MaxOptimalWires))
	}

	digits := optimalPrefixDigits
	if digits > n {
		digits = n
	}
	prefixes := 1
	for i := 0; i < digits; i++ {
		prefixes *= 3
	}

	// results[p] is prefix p's local best: its first maximum-size
	// noncolliding leaf in DFS order, among leaves the cut rule cannot
	// prove irrelevant.
	type localBest struct {
		size  int
		ranks []uint8
	}
	results := make([]localBest, prefixes)
	var incumbent atomic.Int64
	var nextPrefix atomic.Int64
	var canceled atomic.Bool
	done := ctx.Done()

	worker := func() {
		sim := newIncSim(c)
		ranks := make([]uint8, n)
		probe := 0
		const probeEvery = 1 << 13

		checkCancel := func() bool {
			if canceled.Load() {
				return true
			}
			if done != nil {
				select {
				case <-done:
					canceled.Store(true)
					return true
				default:
				}
			}
			return false
		}

		for {
			p := int(nextPrefix.Add(1) - 1)
			if p >= prefixes || checkCancel() {
				return
			}

			// Assign the prefix digits (most significant digit = wire 0).
			sim.undo(0)
			mCount := 0
			live := true
			for w, rest, div := 0, p, prefixes/3; w < digits; w++ {
				rank := optimalRanks[rest/div]
				rest %= div
				if div > 1 {
					div /= 3
				}
				ranks[w] = rank
				if rank == rankM {
					mCount++
				}
				if !sim.assign(w, rank) {
					live = false // the prefix itself collides: subtree dead
					break
				}
			}
			if !live {
				continue
			}

			local := &results[p]
			var dfs func(w, mCount int) bool
			dfs = func(w, mCount int) bool {
				upper := mCount + n - w
				if upper <= local.size {
					return true
				}
				if optimalPacked(upper, prefixes, p) <= incumbent.Load() {
					return true
				}
				if probe++; probe >= probeEvery {
					probe = 0
					if checkCancel() {
						return false
					}
				}
				if w == n {
					// Reaching a leaf means no fired comparator ever saw
					// M on both inputs — the pattern is noncolliding.
					local.size = mCount
					local.ranks = append(local.ranks[:0], ranks...)
					pack := optimalPacked(mCount, prefixes, p)
					for {
						cur := incumbent.Load()
						if pack <= cur || incumbent.CompareAndSwap(cur, pack) {
							break
						}
					}
					return true
				}
				mark := sim.mark()
				ranks[w] = rankM
				if sim.assign(w, rankM) && !dfs(w+1, mCount+1) {
					return false
				}
				sim.undo(mark)
				ranks[w] = rankS
				if sim.assign(w, rankS) && !dfs(w+1, mCount) {
					return false
				}
				sim.undo(mark)
				ranks[w] = rankL
				if sim.assign(w, rankL) && !dfs(w+1, mCount) {
					return false
				}
				sim.undo(mark)
				return true
			}
			if !dfs(digits, mCount) {
				return
			}
		}
	}

	if nw := par.Workers(prefixes, workers); nw <= 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		for i := 0; i < nw; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}
	if canceled.Load() {
		return 0, nil, nil, &par.ErrCanceled{Op: "core.OptimalNoncolliding", Cause: ctx.Err()}
	}

	// Reduce in prefix (= DFS) order with strict improvement: together
	// with the cut rule this reproduces the sequential first-maximum
	// answer exactly, for any worker count or scheduling.
	bestSize := 0
	var bestRanks []uint8
	for p := range results {
		if results[p].size > bestSize {
			bestSize, bestRanks = results[p].size, results[p].ranks
		}
	}
	var bestP pattern.Pattern
	if bestRanks == nil {
		// Any singleton M-set is trivially noncolliding.
		bestP = pattern.Uniform(n, pattern.S(0))
		bestP[0] = pattern.M(0)
		bestSize = 1
	} else {
		bestP = make(pattern.Pattern, n)
		for w, r := range bestRanks {
			bestP[w] = rankSymbols[r]
		}
	}
	return bestSize, bestP, bestP.Set(pattern.M(0)), nil
}
