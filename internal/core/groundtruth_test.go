package core

import (
	"math/rand"
	"testing"

	"shufflenet/internal/delta"
	"shufflenet/internal/pattern"
	"shufflenet/internal/perm"
)

// Ground truth at small n: the certificate's noncolliding claim is
// checked against EVERY refinement of the final pattern (Definition
// 3.6 verbatim), not just the symbol simulation — the certificate pair
// must classify as CollideNever and the whole set D as noncolliding by
// exhaustion.
func TestCertificateGroundTruthExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 5; trial++ {
		n := 8
		it := delta.NewIterated(n)
		it.AddBlock(nil, delta.Random(3, 1.0, rng))
		it.AddBlock(perm.Random(n, rng), delta.Random(3, 1.0, rng))
		an := Theorem41(it, 0)
		if len(an.D) < 2 {
			continue // tiny n: the adversary may legitimately run dry
		}
		if cnt := an.P.RefinementCount(); cnt < 0 || cnt > 100_000 {
			t.Fatalf("unexpected refinement count %d at n=8", cnt)
		}
		circ, _ := it.ToNetwork()
		if !pattern.NoncollidingExhaustive(circ, an.P, pattern.M(0)) {
			t.Fatalf("trial %d: D fails the exhaustive ground-truth check", trial)
		}
		cert, err := an.Certificate()
		if err != nil {
			t.Fatal(err)
		}
		if got := pattern.Classify(circ, an.P, cert.W0, cert.W1); got != pattern.CollideNever {
			t.Fatalf("certificate pair classifies as %v", got)
		}
	}
}
