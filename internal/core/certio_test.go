package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"shufflenet/internal/delta"
	"shufflenet/internal/perm"
)

func TestCertificateJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	n := 64
	it := delta.NewIterated(n)
	it.AddBlock(nil, delta.Butterfly(6))
	it.AddBlock(perm.Random(n, rng), delta.Butterfly(6))
	an := Theorem41(it, 0)
	cert, err := an.Certificate()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cert.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCertificateJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The deserialized certificate must still verify.
	circ, _ := it.ToNetwork()
	if err := back.Verify(circ); err != nil {
		t.Fatalf("round-tripped certificate rejected: %v", err)
	}
	if back.W0 != cert.W0 || back.W1 != cert.W1 || back.M != cert.M {
		t.Fatal("round trip changed fields")
	}
	if !back.P.Equal(cert.P) {
		t.Fatal("round trip changed the pattern")
	}
}

func TestReadCertificateJSONErrors(t *testing.T) {
	bad := []string{
		``,
		`{`,
		`{"pattern":"","d":[],"pi":[],"piPrime":[]}`,
		`{"pattern":"SML","d":[0],"w0":0,"w1":1,"m":0,"pi":[0,1],"piPrime":[0,1,2]}`,
		`{"pattern":"SXL","d":[0],"w0":0,"w1":1,"m":0,"pi":[0,1,2],"piPrime":[0,1,2]}`,
		`{"pattern":"SML","d":[9],"w0":0,"w1":1,"m":0,"pi":[0,1,2],"piPrime":[0,1,2]}`,
	}
	for _, src := range bad {
		if _, err := ReadCertificateJSON(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
