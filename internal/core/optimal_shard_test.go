package core

import (
	"context"
	"math/rand"
	"testing"

	"shufflenet/internal/randnet"
)

// TestOptimalShardMergeIdentity pins the distribution invariant the
// coordinator relies on: for any partition of the prefix frontier into
// [start, end) shards, the integer max of the shards' packed results
// equals the whole search's packed result — including uneven partitions
// and shard counts that do not divide 81.
func TestOptimalShardMergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	circ := randnet.Levels(12, 6, rng)
	ctx := context.Background()

	want, err := OptimalNoncollidingPacked(ctx, circ, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("full search packed 0")
	}

	prefixes := OptimalPrefixes(circ.Wires())
	for _, parts := range []int{2, 3, 7, prefixes} {
		var merged uint64
		for s := 0; s < parts; s++ {
			got, err := OptimalNoncollidingPacked(ctx, circ, OptimalOptions{
				ShardStart: s * prefixes / parts,
				ShardEnd:   (s + 1) * prefixes / parts,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got > merged {
				merged = got
			}
		}
		if merged != want {
			t.Fatalf("%d-way shard merge packed %#x, full search packed %#x", parts, merged, want)
		}
	}

	// An empty shard is legal and contributes nothing.
	if got, err := OptimalNoncollidingPacked(ctx, circ, OptimalOptions{ShardStart: 5, ShardEnd: 5}); err != nil || got != 0 {
		t.Fatalf("empty shard = (%#x, %v), want (0, nil)", got, err)
	}
	// Out-of-range bounds clamp rather than panic.
	if got, err := OptimalNoncollidingPacked(ctx, circ, OptimalOptions{ShardStart: -3, ShardEnd: prefixes + 99}); err != nil || got != want {
		t.Fatalf("clamped full shard = (%#x, %v), want (%#x, nil)", got, err, want)
	}
}

// TestOptimalSkipSeedResume pins the resume identity: interrupt a
// search after any number of completed prefixes, then restart skipping
// those prefixes and seeding the incumbent recorded when the last one
// finished — the resumed result must equal the uninterrupted search's,
// bit for bit. This is the core fact behind -resume (DESIGN.md
// decision 14); the CLI test layers SIGKILL and journal parsing on top.
func TestOptimalSkipSeedResume(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	circ := randnet.Levels(12, 6, rng)
	ctx := context.Background()

	// Workers: 1 scans prefixes in ascending order, so the checkpoint
	// log below is exactly what a journal of an interrupted single
	// worker run would hold.
	type ckpt struct {
		prefix    int
		incumbent uint64
	}
	var log []ckpt
	want, err := OptimalNoncollidingPacked(ctx, circ, OptimalOptions{
		Workers: 1,
		OnPrefixDone: func(p int, inc uint64) {
			log = append(log, ckpt{p, inc})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	prefixes := OptimalPrefixes(circ.Wires())
	if len(log) != prefixes {
		t.Fatalf("OnPrefixDone fired %d times, want %d", len(log), prefixes)
	}
	seen := make(map[int]bool)
	for i, c := range log {
		if c.prefix != i || seen[c.prefix] {
			t.Fatalf("checkpoint %d retired prefix %d (duplicate=%v); single worker must retire in order", i, c.prefix, seen[c.prefix])
		}
		seen[c.prefix] = true
	}
	if log[len(log)-1].incumbent != want {
		t.Fatalf("final checkpoint incumbent %#x != result %#x", log[len(log)-1].incumbent, want)
	}

	for _, cut := range []int{0, 1, 10, 40, prefixes - 1, prefixes} {
		done := make(map[int]bool, cut)
		var seed uint64
		for _, c := range log[:cut] {
			done[c.prefix] = true
			seed = c.incumbent
		}
		var resumed int
		got, err := OptimalNoncollidingPacked(ctx, circ, OptimalOptions{
			SkipPrefix:    func(p int) bool { return done[p] },
			SeedIncumbent: seed,
			OnPrefixDone:  func(int, uint64) { resumed++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("resume after %d prefixes packed %#x, uninterrupted run packed %#x", cut, got, want)
		}
		if resumed != prefixes {
			t.Fatalf("resume after %d prefixes retired %d, want %d (skipped prefixes still check in)", cut, resumed, prefixes)
		}
	}
}

// TestDecodeOptimalWitnessRoundTrip: the packed value decodes to
// exactly the triple the classic API returns.
func TestDecodeOptimalWitnessRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	circ := randnet.Levels(10, 6, rng)
	wantSize, wantP, wantSet := OptimalNoncolliding(circ)
	packed, err := OptimalNoncollidingPacked(context.Background(), circ, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	size, p, set := DecodeOptimalWitness(circ.Wires(), packed)
	if size != wantSize || !p.Equal(wantP) {
		t.Fatalf("decode = (%d, %v), want (%d, %v)", size, p, wantSize, wantP)
	}
	if len(set) != len(wantSet) {
		t.Fatalf("set = %v, want %v", set, wantSet)
	}
	for i := range set {
		if set[i] != wantSet[i] {
			t.Fatalf("set = %v, want %v", set, wantSet)
		}
	}
}
