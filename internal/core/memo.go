package core

import (
	"sync"
	"sync/atomic"

	"shufflenet/internal/mmapio"
	"shufflenet/internal/obs"
)

// Memo is the transposition table for OptimalNoncolliding: a bounded,
// sharded, lock-striped map from canonical residual states (see
// canonizer.key) to an upper bound on the number of M's any completion
// of that state can still add. Entries are true bounds, never exact
// values conditioned on the path that stored them, which is what makes
// probing sound under branch-and-bound cuts and under sharing between
// workers — see DESIGN.md §4, decision 10.
//
// The table is sized in bytes at construction and never grows. Each
// bucket holds two slots; on a full bucket the slot whose residual
// subtree is shallower (the larger step index, i.e. the cheaper
// recomputation) is sacrificed for the incoming entry. A stored key is
// the 64-bit verifier hash plus the step, on top of the shard and
// bucket index drawn from the first hash: ~91 bits of discrimination,
// so a wrong bound requires a full hash collision.
//
// A Memo may be shared between concurrent searches, including searches
// on different networks (keys are salted per network): the A-series
// experiment cells run that way.
type Memo struct {
	shards []memoShard
	mask   uint64 // buckets per shard - 1
	bytes  int64

	// Disk tier (nil without a spill file): per-shard bucket arrays
	// viewed directly over the mmap'd spill file, guarded by the same
	// shard mutexes as the RAM tier. RAM evictions demote the victim
	// here instead of dropping it, and a RAM miss probes here before
	// reporting a miss — see memospill.go.
	disk      [][]memoBucket
	diskMask  uint64 // disk buckets per shard - 1
	diskBytes int64
	spill     *mmapio.File

	hits, misses, stores, evicts atomic.Int64
	diskHits, demotions          atomic.Int64
}

type memoShard struct {
	mu      sync.Mutex
	buckets []memoBucket
	_       [40]byte // keep shards off each other's cache lines
}

// memoBucket packs two entries: key[i] is the verifier hash, meta[i]
// is occupied<<16 | step<<8 | ub.
type memoBucket struct {
	key  [2]uint64
	meta [2]uint32
}

const (
	memoShardBits = 7
	memoShardN    = 1 << memoShardBits
	memoEntryCost = 24 / 2 // bucket bytes per entry

	// DefaultMemoBytes is the table budget OptimalNoncolliding uses
	// when the caller does not supply a Memo; memoAutoBytes shrinks it
	// for small n, where the whole state space is far smaller.
	DefaultMemoBytes = 256 << 20

	// MinMemoBytes is the smallest budget NewMemo will honor: requests
	// below it (including zero and negative values, which reach us
	// unvalidated from server flags and environment variables) are
	// clamped up to it. The floor guarantees every shard gets at least
	// a handful of buckets — a zero- or negative-budget request must
	// degrade to a small-but-working table, never to a zero-slot one.
	// (Before the clamp, a negative budget sign-flipped through the
	// uint64 conversion in the bucket-count sizing loop and NewMemo
	// spun forever.)
	MinMemoBytes = 1 << 14
)

var (
	metMemoHits     = obs.C("core.optimal.memo.hits")
	metMemoMisses   = obs.C("core.optimal.memo.misses")
	metMemoStores   = obs.C("core.optimal.memo.stores")
	metMemoEvicts   = obs.C("core.optimal.memo.evictions")
	metMemoEntries  = obs.G("core.optimal.memo.entries")
	metMemoLoad     = obs.FG("core.optimal.memo.load")
	metMemoDiskHits = obs.C("core.optimal.memo.disk.hits")
	metMemoDemotes  = obs.C("core.optimal.memo.disk.demotions")
)

// NewMemo allocates a table of at most the given byte budget (rounded
// down to a power-of-two bucket count per shard). Budgets below
// MinMemoBytes — including zero and negative values — are clamped up
// to it, so a degenerate server flag or env value yields a small
// working table instead of a degenerate one.
func NewMemo(bytes int64) *Memo {
	if bytes < MinMemoBytes {
		bytes = MinMemoBytes
	}
	perShard := bytes / (2 * memoEntryCost) / memoShardN
	pow := uint64(1)
	for pow*2 <= uint64(perShard) {
		pow *= 2
	}
	m := &Memo{
		shards: make([]memoShard, memoShardN),
		mask:   pow - 1,
		bytes:  int64(pow) * memoShardN * 2 * memoEntryCost,
	}
	for i := range m.shards {
		m.shards[i].buckets = make([]memoBucket, pow)
	}
	return m
}

// memoAutoBytes sizes the default table for an n-wire search: the
// state space is far below 3^n (live rails only, quotiented by
// symmetry), so small n get small tables; the cap is DefaultMemoBytes.
func memoAutoBytes(n int) int64 {
	b := int64(2 * memoEntryCost)
	for i := 0; i < n-4; i++ {
		b *= 3
		if b >= DefaultMemoBytes {
			return DefaultMemoBytes
		}
	}
	if b < MinMemoBytes {
		b = MinMemoBytes
	}
	return b
}

// AutoMemoBytes is the table budget OptimalNoncolliding picks for an
// n-wire search when the caller passes neither a Memo nor NoMemo.
// Exported so CLIs can build the same table explicitly and report its
// Stats in run journals.
func AutoMemoBytes(n int) int64 {
	return memoAutoBytes(n)
}

// memoStats accumulates one worker's counters locally so the hot probe
// path never touches shared atomics; flush folds them into the table
// totals and the obs registry once per search.
type memoStats struct {
	hits, misses, stores, evicts int64
	dhits, demotes               int64
}

func (m *Memo) flush(st *memoStats) {
	if m == nil || st == nil {
		return
	}
	m.hits.Add(st.hits)
	m.misses.Add(st.misses)
	m.stores.Add(st.stores)
	m.evicts.Add(st.evicts)
	m.diskHits.Add(st.dhits)
	m.demotions.Add(st.demotes)
	metMemoHits.Add(st.hits)
	metMemoMisses.Add(st.misses)
	metMemoStores.Add(st.stores)
	metMemoEvicts.Add(st.evicts)
	metMemoDiskHits.Add(st.dhits)
	metMemoDemotes.Add(st.demotes)
	// Occupancy gauges: entries = stores − evictions (a store either
	// fills a free slot or replaces an occupied one). When several
	// tables share the registry the gauges track the most recently
	// flushed table — the one actively searching.
	entries := m.stores.Load() - m.evicts.Load()
	metMemoEntries.Set(entries)
	if slots := m.bytes / memoEntryCost; slots > 0 {
		metMemoLoad.Set(float64(entries) / float64(slots))
	}
	*st = memoStats{}
}

func (m *Memo) slot(h1 uint64) (*memoShard, uint64) {
	s := &m.shards[h1>>(64-memoShardBits)]
	return s, h1 & m.mask
}

// probe looks up the canonical state (h1, h2) at boundary step t and
// returns the stored bound on additional M's, if present.
func (m *Memo) probe(h1, h2 uint64, t int, st *memoStats) (uint8, bool) {
	s, i := m.slot(h1)
	want := uint32(1)<<16 | uint32(t)<<8
	s.mu.Lock()
	b := &s.buckets[i]
	for k := 0; k < 2; k++ {
		if b.key[k] == h2 && b.meta[k]&^0xff == want {
			ub := uint8(b.meta[k])
			s.mu.Unlock()
			st.hits++
			return ub, true
		}
	}
	if m.disk != nil {
		si := int(h1 >> (64 - memoShardBits))
		if ub, ok := m.diskProbe(si, h2, want); ok {
			s.mu.Unlock()
			st.dhits++
			return ub, true
		}
	}
	s.mu.Unlock()
	st.misses++
	return 0, false
}

// store records ub as a true upper bound for the canonical state
// (h1, h2) at boundary step t. A matching entry keeps the tighter
// bound; a full bucket evicts the deeper (shallower-subtree) slot.
func (m *Memo) store(h1, h2 uint64, t int, ub uint8, st *memoStats) {
	s, i := m.slot(h1)
	want := uint32(1)<<16 | uint32(t)<<8
	s.mu.Lock()
	b := &s.buckets[i]
	victim, victimStep := -1, -1
	for k := 0; k < 2; k++ {
		if b.key[k] == h2 && b.meta[k]&^0xff == want {
			if uint8(b.meta[k]) > ub {
				b.meta[k] = want | uint32(ub)
			}
			s.mu.Unlock()
			return
		}
		if b.meta[k]&(1<<16) == 0 {
			victim, victimStep = k, 1<<30
		} else if step := int(b.meta[k] >> 8 & 0xff); step > victimStep {
			victim, victimStep = k, step
		}
	}
	evict := b.meta[victim]&(1<<16) != 0
	if evict && m.disk != nil {
		// Spill path: the sacrificed entry demotes to the disk tier
		// (still under the shard lock — both tiers share it) instead of
		// being forgotten; a warm reopen serves it back.
		si := int(h1 >> (64 - memoShardBits))
		m.diskStore(si, b.key[victim], b.meta[victim])
		st.demotes++
	}
	b.key[victim] = h2
	b.meta[victim] = want | uint32(ub)
	s.mu.Unlock()
	st.stores++
	if evict {
		st.evicts++
	}
}

// MemoStats is a point-in-time snapshot of table activity, suitable
// for run journals.
type MemoStats struct {
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	// Entries is the number of occupied slots (stores − evictions),
	// Capacity the total slot count, and LoadFactor their ratio — how
	// full the bounded table is, i.e. how close the search is to
	// eviction churn.
	Entries    int64   `json:"entries"`
	Capacity   int64   `json:"capacity"`
	LoadFactor float64 `json:"load_factor"`
	// Spill-tier activity (zero without a spill file): the disk tier's
	// byte size, probe hits served from it, and RAM evictions demoted
	// into it instead of dropped.
	DiskBytes int64 `json:"disk_bytes,omitempty"`
	DiskHits  int64 `json:"disk_hits,omitempty"`
	Demotions int64 `json:"demotions,omitempty"`
}

// Stats reports the table size and cumulative counters. Counters are
// flushed at the end of each search — and, when a Progress engine is
// attached to the search, at the cancellation-probe cadence — so
// mid-search reads lag by at most one flush stride.
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	s := MemoStats{
		Bytes:     m.bytes,
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Stores:    m.stores.Load(),
		Evictions: m.evicts.Load(),
		Capacity:  m.bytes / memoEntryCost,
		DiskBytes: m.diskBytes,
		DiskHits:  m.diskHits.Load(),
		Demotions: m.demotions.Load(),
	}
	s.Entries = s.Stores - s.Evictions
	if s.Capacity > 0 {
		s.LoadFactor = float64(s.Entries) / float64(s.Capacity)
	}
	return s
}
