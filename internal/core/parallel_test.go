package core

import (
	"testing"

	"shufflenet/internal/delta"
	"shufflenet/internal/pattern"
)

// Above parallelSubtree the recursion forks; the result must be
// bit-identical across runs (all ties deterministic) and still satisfy
// every Lemma 4.1 invariant.
func TestLemma41ParallelPathDeterministicAndSound(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n adversary run")
	}
	n := 4 * parallelSubtree // forces several forked levels
	l := lg(n)
	tree := delta.Butterfly(l)
	p := pattern.Uniform(n, pattern.M(0))

	a := Lemma41(tree, p, l)
	b := Lemma41(tree, p, l)

	if !a.Q.Equal(b.Q) {
		t.Fatal("parallel recursion nondeterministic: patterns differ")
	}
	if a.Survivors != b.Survivors || a.T != b.T {
		t.Fatal("parallel recursion nondeterministic: summary differs")
	}
	for i := range a.OutWire {
		if a.OutWire[i] != b.OutWire[i] {
			t.Fatal("parallel recursion nondeterministic: routing differs")
		}
	}
	if len(a.Sets) != len(b.Sets) {
		t.Fatal("parallel recursion nondeterministic: set counts differ")
	}
	for i, ws := range a.Sets {
		if len(b.Sets[i]) != len(ws) {
			t.Fatalf("set %d differs across runs", i)
		}
	}

	// Spot-check the survival bound and set disjointness at this scale
	// (the full independent noncollision check is quadratic in n and is
	// covered at smaller n by checkLemmaInvariants).
	if l*l*a.Survivors < a.Initial*(l*l-l) {
		t.Fatalf("survival bound violated at n=%d", n)
	}
	seen := make([]bool, n)
	for _, ws := range a.Sets {
		for _, w := range ws {
			if seen[w] {
				t.Fatal("sets overlap")
			}
			seen[w] = true
		}
	}
}
