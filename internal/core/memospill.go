package core

import (
	"encoding/binary"
	"fmt"
	"os"
	"unsafe"

	"shufflenet/internal/mmapio"
)

// Spillable transposition table: a second, disk-resident bucket tier
// under the in-RAM Memo, mmap'd from a versioned on-disk file. The RAM
// tier stays exactly as decision 10 built it (bounded, lock-striped,
// two slots per bucket); what changes is the fate of an evicted entry —
// with a spill attached it demotes into the disk tier instead of being
// dropped, and a RAM miss probes the disk tier before giving up. Both
// tiers of a shard share one mutex, so there is no new lock order.
//
// Soundness is inherited, not re-proven: every entry in either tier is
// a true upper bound keyed by the canonical, structure-salted residual
// state, so serving it from disk — or from a *previous run's* file
// reopened warm — can only prune subtrees that provably cannot beat
// the final incumbent. The one genuinely new hazard is a torn bucket:
// a SIGKILL can flush the mmap'd pages of a bucket's key and meta
// words from different stores (a bucket may straddle a page boundary).
// The disk tier therefore never stores the verifier hash raw; it
// stores key = h2 XOR spillMix(meta), so a key and meta that did not
// come from the same store fail verification and read as a miss —
// corruption degrades the cache, never the bound.
//
// File layout (little endian):
//
//	[0,64)  header: magic, version, shard geometry, tag hash, checksum
//	[64,…)  memoShardN shard arrays, bucketsPerShard 24-byte buckets each
//
// The header is checksummed (FNV-1a) and carries a caller tag (git
// describe / version string, hashed) so a file written by incompatible
// code or for a different deployment is rejected as *SpillFormatError
// rather than silently misread.

const (
	spillMagic   = "SNSPILL\x01"
	spillVersion = 1
	spillHdrSize = 64

	// MinSpillMemoBytes is the smallest disk budget OpenSpillMemo
	// accepts: 64 KiB gives every one of the memoShardN shards at
	// least 16 buckets. Unlike NewMemo's silent clamp — where any
	// budget can degrade to a small working RAM table — an undersized
	// *disk* budget is a misconfiguration worth surfacing (the caller
	// asked for persistence that could not hold one shard), so budgets
	// below the floor fail with *SpillBudgetError instead of producing
	// a degenerate or corrupt mapping.
	MinSpillMemoBytes = 1 << 16
)

// SpillBudgetError reports a spill budget below MinSpillMemoBytes
// (including zero and negative values).
type SpillBudgetError struct {
	Requested int64
	Min       int64
}

func (e *SpillBudgetError) Error() string {
	return fmt.Sprintf("core: spill budget %d bytes is below the %d-byte floor (one bucket row per shard plus the header); raise the budget or drop the spill file", e.Requested, e.Min)
}

// SpillFormatError reports a spill file that exists but cannot be
// reopened: wrong magic/version, checksum mismatch, a different tag,
// or a size that disagrees with its own header.
type SpillFormatError struct {
	Path   string
	Reason string
}

func (e *SpillFormatError) Error() string {
	return fmt.Sprintf("core: spill file %s: %s", e.Path, e.Reason)
}

// spillMix entangles a bucket's meta word into its stored verifier so
// a torn (key, meta) pair from different stores cannot verify.
func spillMix(meta uint32) uint64 {
	h := (uint64(meta) + 0x9e3779b97f4a7c15) * 0xc6a4a7935bd1e995
	return h ^ h>>29
}

func spillChecksum(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return h
}

func spillTagHash(tag string) uint64 {
	return spillChecksum([]byte("tag:" + tag))
}

// spillGeometry rounds a disk budget down to the largest power-of-two
// buckets-per-shard that fits under it alongside the header.
func spillGeometry(diskBytes int64) (perShard int64) {
	per := (diskBytes - spillHdrSize) / (2 * memoEntryCost) / memoShardN
	pow := int64(1)
	for pow*2 <= per {
		pow *= 2
	}
	return pow
}

func spillFileSize(perShard int64) int64 {
	return spillHdrSize + perShard*memoShardN*2*memoEntryCost
}

// OpenSpillMemo builds a Memo whose RAM tier has ramBytes of budget
// (clamped as NewMemo does) and attaches a disk tier mapped from the
// spill file at path, sized by diskBytes. If the file already exists
// its header is validated against tag and the stored geometry wins
// (diskBytes is ignored); warm reports that case — the table starts
// pre-populated with the previous run's demoted bounds. diskBytes
// below MinSpillMemoBytes fails with *SpillBudgetError; an existing
// file with a bad header fails with *SpillFormatError. The caller owns
// Close, which syncs the mapping.
func OpenSpillMemo(path string, ramBytes, diskBytes int64, tag string) (m *Memo, warm bool, err error) {
	if diskBytes < MinSpillMemoBytes {
		return nil, false, &SpillBudgetError{Requested: diskBytes, Min: MinSpillMemoBytes}
	}

	var f *mmapio.File
	var perShard int64
	if _, statErr := os.Stat(path); statErr == nil {
		f, err = mmapio.Open(path)
		if err != nil {
			return nil, false, err
		}
		perShard, err = validateSpillHeader(path, f.Bytes(), f.Size(), tag)
		if err != nil {
			f.Close()
			return nil, false, err
		}
		warm = true
	} else {
		perShard = spillGeometry(diskBytes)
		f, err = mmapio.Create(path, spillFileSize(perShard))
		if err != nil {
			return nil, false, err
		}
		writeSpillHeader(f.Bytes(), perShard, tag)
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, false, err
		}
	}

	m = NewMemo(ramBytes)
	m.spill = f
	m.diskBytes = f.Size() - spillHdrSize
	m.diskMask = uint64(perShard - 1)
	m.disk = make([][]memoBucket, memoShardN)
	data := f.Bytes()
	for s := 0; s < memoShardN; s++ {
		off := spillHdrSize + int64(s)*perShard*2*memoEntryCost
		m.disk[s] = unsafe.Slice((*memoBucket)(unsafe.Pointer(&data[off])), perShard)
	}
	return m, warm, nil
}

func writeSpillHeader(b []byte, perShard int64, tag string) {
	copy(b[0:8], spillMagic)
	binary.LittleEndian.PutUint32(b[8:12], spillVersion)
	binary.LittleEndian.PutUint32(b[12:16], memoShardBits)
	binary.LittleEndian.PutUint64(b[16:24], uint64(perShard))
	binary.LittleEndian.PutUint64(b[24:32], spillTagHash(tag))
	// b[32:56) reserved, zero.
	binary.LittleEndian.PutUint64(b[56:64], spillChecksum(b[0:56]))
}

func validateSpillHeader(path string, b []byte, size int64, tag string) (perShard int64, err error) {
	bad := func(reason string) (int64, error) {
		return 0, &SpillFormatError{Path: path, Reason: reason}
	}
	if int64(len(b)) < spillHdrSize {
		return bad("shorter than the header")
	}
	if string(b[0:8]) != spillMagic {
		return bad("bad magic (not a spill file)")
	}
	if got := binary.LittleEndian.Uint64(b[56:64]); got != spillChecksum(b[0:56]) {
		return bad("header checksum mismatch (truncated or corrupt)")
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != spillVersion {
		return bad(fmt.Sprintf("format version %d (this build reads %d)", v, spillVersion))
	}
	if sb := binary.LittleEndian.Uint32(b[12:16]); sb != memoShardBits {
		return bad(fmt.Sprintf("shard geometry %d bits (this build uses %d)", sb, memoShardBits))
	}
	if th := binary.LittleEndian.Uint64(b[24:32]); th != spillTagHash(tag) {
		return bad("tag mismatch (written by a different build or deployment)")
	}
	perShard = int64(binary.LittleEndian.Uint64(b[16:24]))
	if perShard < 1 || perShard&(perShard-1) != 0 {
		return bad(fmt.Sprintf("buckets per shard %d is not a positive power of two", perShard))
	}
	if want := spillFileSize(perShard); size != want {
		return bad(fmt.Sprintf("file is %d bytes, header geometry needs %d", size, want))
	}
	return perShard, nil
}

// diskProbe looks the (h2, step) verifier pair up in shard si's disk
// tier. Caller holds the shard lock.
func (m *Memo) diskProbe(si int, h2 uint64, want uint32) (uint8, bool) {
	b := &m.disk[si][h2&m.diskMask]
	for k := 0; k < 2; k++ {
		meta := b.meta[k]
		if meta&^0xff == want && b.key[k] == h2^spillMix(meta) {
			return uint8(meta), true
		}
	}
	return 0, false
}

// diskStore demotes an evicted RAM entry (raw verifier h2, full meta
// word) into shard si's disk tier, evicting by the same
// shallower-subtree rule as the RAM tier. Caller holds the shard lock.
func (m *Memo) diskStore(si int, h2 uint64, meta uint32) {
	b := &m.disk[si][h2&m.diskMask]
	step := int(meta >> 8 & 0xff)
	victim, victimStep := -1, -1
	for k := 0; k < 2; k++ {
		km := b.meta[k]
		if km&(1<<16) == 0 {
			victim, victimStep = k, 1<<30
			continue
		}
		if km&^0xff == meta&^0xff && b.key[k] == h2^spillMix(km) {
			// Same state and step: keep the tighter bound. Rewriting
			// meta re-entangles the key.
			if uint8(km) > uint8(meta) {
				b.key[k] = h2 ^ spillMix(meta)
				b.meta[k] = meta
			}
			return
		}
		if ks := int(km >> 8 & 0xff); ks > victimStep {
			victim, victimStep = k, ks
		}
	}
	// Prefer keeping the deeper (more expensive to recompute) entry:
	// only displace an occupied slot whose step is not shallower than
	// the incoming one's.
	if victimStep != 1<<30 && victimStep < step {
		return
	}
	b.key[victim] = h2 ^ spillMix(meta)
	b.meta[victim] = meta
}

// Spilling reports whether a disk tier is attached.
func (m *Memo) Spilling() bool { return m != nil && m.disk != nil }

// SyncSpill flushes the disk tier's mapping to the file. A no-op
// without a spill (and on nil).
func (m *Memo) SyncSpill() error {
	if m == nil || m.spill == nil {
		return nil
	}
	return m.spill.Sync()
}

// Close syncs and unmaps the spill file, if any. The Memo must not be
// probed or stored to afterwards. Nil-safe and idempotent; a Memo
// without a spill closes trivially.
func (m *Memo) Close() error {
	if m == nil || m.spill == nil {
		return nil
	}
	err := m.spill.Close()
	m.spill = nil
	m.disk = nil
	return err
}
