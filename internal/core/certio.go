package core

import (
	"encoding/json"
	"fmt"
	"io"

	"shufflenet/internal/pattern"
)

// certJSON is the serialized form of a Certificate. The pattern is
// stored as a compact symbol string ("S"/"M"/"L" per wire; certificates
// only ever carry those three symbols).
type certJSON struct {
	Pattern string `json:"pattern"`
	D       []int  `json:"d"`
	W0      int    `json:"w0"`
	W1      int    `json:"w1"`
	M       int    `json:"m"`
	Pi      []int  `json:"pi"`
	PiPrime []int  `json:"piPrime"`
}

// WriteJSON serializes the certificate. The format is stable and
// self-contained: a certificate written by one run can be verified
// against the network by another (see cmd/adversary -save/-check).
func (c *Certificate) WriteJSON(w io.Writer) error {
	syms := make([]byte, len(c.P))
	for i, s := range c.P {
		switch s {
		case pattern.S(0):
			syms[i] = 'S'
		case pattern.M(0):
			syms[i] = 'M'
		case pattern.L(0):
			syms[i] = 'L'
		default:
			return fmt.Errorf("core: certificate pattern contains %v; cannot serialize", s)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(certJSON{
		Pattern: string(syms), D: c.D, W0: c.W0, W1: c.W1, M: c.M,
		Pi: c.Pi, PiPrime: c.PiPrime,
	})
}

// ReadCertificateJSON parses a certificate written by WriteJSON and
// validates its internal consistency (Verify still must be called
// against the network to establish the non-sortability claim).
func ReadCertificateJSON(r io.Reader) (*Certificate, error) {
	var cj certJSON
	if err := json.NewDecoder(r).Decode(&cj); err != nil {
		return nil, fmt.Errorf("core: parsing certificate: %w", err)
	}
	n := len(cj.Pattern)
	if n == 0 || len(cj.Pi) != n || len(cj.PiPrime) != n {
		return nil, fmt.Errorf("core: certificate widths inconsistent (%d/%d/%d)",
			n, len(cj.Pi), len(cj.PiPrime))
	}
	p := make(pattern.Pattern, n)
	for i, ch := range cj.Pattern {
		switch ch {
		case 'S':
			p[i] = pattern.S(0)
		case 'M':
			p[i] = pattern.M(0)
		case 'L':
			p[i] = pattern.L(0)
		default:
			return nil, fmt.Errorf("core: bad pattern symbol %q", ch)
		}
	}
	for _, w := range append([]int{cj.W0, cj.W1}, cj.D...) {
		if w < 0 || w >= n {
			return nil, fmt.Errorf("core: wire %d out of range", w)
		}
	}
	return &Certificate{
		P: p, D: cj.D, W0: cj.W0, W1: cj.W1, M: cj.M,
		Pi: cj.Pi, PiPrime: cj.PiPrime,
	}, nil
}
