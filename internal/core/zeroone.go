package core

import (
	"errors"
	"fmt"

	"shufflenet/internal/network"
)

// ZeroOneWitness converts the certificate into a failing 0-1 input via
// the monotone-threshold argument behind the 0-1 principle: comparator
// networks commute with monotone maps, so if the network leaves values
// out[i] > out[j] on rails i < j for the input π, then thresholding π
// at out[i] yields a 0-1 input whose output has a 1 on rail i before a
// 0 on rail j.
//
// At least one of the certificate's two inputs must produce an
// unsorted output (that is what the certificate proves); the returned
// witness is verified against circuit before being returned.
func (c *Certificate) ZeroOneWitness(circuit *network.Network) ([]int, error) {
	if err := c.Verify(circuit); err != nil {
		return nil, fmt.Errorf("certificate invalid: %w", err)
	}
	// The verification evaluations run on the compiled program: scalar
	// for the permutation inputs, bit-sliced (broadcast lanes) for the
	// 0-1 witness check, with no per-level dispatch either way.
	prog := network.Compile(circuit)
	for _, pi := range [][]int{c.Pi, c.PiPrime} {
		out := prog.Eval(pi)
		// Find an inversion out[i] > out[j], i < j (adjacent suffices:
		// unsorted means some adjacent rail pair is inverted).
		thr := -1
		for r := 1; r < len(out); r++ {
			if out[r-1] > out[r] {
				thr = out[r-1]
				break
			}
		}
		if thr < 0 {
			continue // this input happens to sort; try the other
		}
		witness := make([]int, len(pi))
		for w, v := range pi {
			if v >= thr {
				witness[w] = 1
			}
		}
		if prog.SortsZeroOneInput(witness) {
			return nil, errors.New("core: threshold witness unexpectedly sorted (monotonicity violated?)")
		}
		return witness, nil
	}
	return nil, errors.New("core: both certificate inputs produced sorted outputs")
}
