package core

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"shufflenet/internal/delta"
	"shufflenet/internal/network"
	"shufflenet/internal/par"
	"shufflenet/internal/pattern"
	"shufflenet/internal/perm"
)

// bruteOptimalNoncolliding is the pre-branch-and-bound implementation,
// kept verbatim as the oracle: plain 3^n DFS with a from-scratch
// pattern.Noncolliding simulation at every leaf. The new search must
// reproduce its result exactly — size, witnessing pattern, and set.
func bruteOptimalNoncolliding(c *network.Network) (int, pattern.Pattern, []int) {
	n := c.Wires()
	symbols := [3]pattern.Symbol{pattern.S(0), pattern.M(0), pattern.L(0)}
	p := make(pattern.Pattern, n)
	var bestP pattern.Pattern
	var bestSize int
	var rec func(w, mCount int)
	rec = func(w, mCount int) {
		if mCount+(n-w) <= bestSize {
			return
		}
		if w == n {
			if mCount > bestSize && pattern.Noncolliding(c, p, pattern.M(0)) {
				bestSize = mCount
				bestP = p.Clone()
			}
			return
		}
		p[w] = symbols[1]
		rec(w+1, mCount+1)
		p[w] = symbols[0]
		rec(w+1, mCount)
		p[w] = symbols[2]
		rec(w+1, mCount)
	}
	rec(0, 0)
	if bestP == nil {
		bestP = pattern.Uniform(n, pattern.S(0))
		bestP[0] = pattern.M(0)
		bestSize = 1
	}
	return bestSize, bestP, bestP.Set(pattern.M(0))
}

// testCircuits returns a mix of small circuits exercising the search:
// butterflies, sparse and dense random RDNs, and a two-block stack with
// a random inter-block permutation (comparators across distant wires,
// like the A2 workloads).
func testCircuits(maxWires int, rng *rand.Rand) []*network.Network {
	var cs []*network.Network
	for l := 1; l <= 3; l++ {
		if 1<<l > maxWires {
			break
		}
		cs = append(cs, delta.Butterfly(l).ToNetwork())
		cs = append(cs, delta.Random(l, 0.4, rng).ToNetwork())
		cs = append(cs, delta.Random(l, 1.0, rng).ToNetwork())
	}
	if maxWires >= 8 {
		it := delta.NewIterated(8).AddBlock(nil, delta.Butterfly(3))
		it.AddBlock(perm.Random(8, rng), delta.Butterfly(3))
		circ, _ := it.ToNetwork()
		cs = append(cs, circ)
	}
	cs = append(cs, network.New(minInt(6, maxWires))) // comparator-free
	return cs
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestOptimalNoncollidingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for ci, c := range testCircuits(8, rng) {
		wantSize, wantP, wantSet := bruteOptimalNoncolliding(c)
		gotSize, gotP, gotSet := OptimalNoncolliding(c)
		if gotSize != wantSize {
			t.Fatalf("circuit %d: size %d, oracle %d", ci, gotSize, wantSize)
		}
		if !gotP.Equal(wantP) {
			t.Fatalf("circuit %d: pattern %v, oracle %v", ci, gotP, wantP)
		}
		if len(gotSet) != len(wantSet) {
			t.Fatalf("circuit %d: set %v, oracle %v", ci, gotSet, wantSet)
		}
		for i := range gotSet {
			if gotSet[i] != wantSet[i] {
				t.Fatalf("circuit %d: set %v, oracle %v", ci, gotSet, wantSet)
			}
		}
	}
}

// The worker pool must not change the answer: the packed-incumbent cut
// rule makes the search deterministic for any worker count and any
// scheduling, including which of several maximum-size patterns wins.
func TestOptimalNoncollidingWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := 4
	circs := []*network.Network{
		delta.Butterfly(l).ToNetwork(),
		delta.Random(l, 0.6, rng).ToNetwork(),
	}
	shared := NewMemo(1 << 20)
	for ci, c := range circs {
		s1, p1, set1, err1 := OptimalNoncollidingCtx(context.Background(), c, 1)
		s8, p8, set8, err8 := OptimalNoncollidingCtx(context.Background(), c, 8)
		if err1 != nil || err8 != nil {
			t.Fatalf("circuit %d: unexpected errors %v, %v", ci, err1, err8)
		}
		if s1 != s8 || !p1.Equal(p8) || len(set1) != len(set8) {
			t.Fatalf("circuit %d: workers=1 gives (%d,%v), workers=8 gives (%d,%v)",
				ci, s1, p1, s8, p8)
		}
		for i := range set1 {
			if set1[i] != set8[i] {
				t.Fatalf("circuit %d: sets differ across worker counts", ci)
			}
		}
		// Memo on (workers racing on one shared table), memo off, and
		// a warm shared table must all reproduce the same answer; this
		// is the configuration the memo-differential CI job runs under
		// -race.
		for _, opt := range []OptimalOptions{
			{Workers: 8, Memo: shared},
			{Workers: 8, NoMemo: true},
			{Workers: 1, Memo: shared},
		} {
			sm, pm, setm, errm := OptimalNoncollidingOpt(context.Background(), c, opt)
			if errm != nil {
				t.Fatalf("circuit %d: unexpected error %v", ci, errm)
			}
			if sm != s1 || !pm.Equal(p1) || len(setm) != len(set1) {
				t.Fatalf("circuit %d (memo=%v workers=%d): (%d,%v) differs from (%d,%v)",
					ci, !opt.NoMemo, opt.Workers, sm, pm, s1, p1)
			}
		}
	}
}

func TestOptimalNoncollidingCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := OptimalNoncollidingCtx(ctx, delta.Butterfly(3).ToNetwork(), 2)
	var ce *par.ErrCanceled
	if !asErrCanceled(err, &ce) {
		t.Fatalf("err = %v, want *par.ErrCanceled", err)
	}
}

func asErrCanceled(err error, out **par.ErrCanceled) bool {
	ce, ok := err.(*par.ErrCanceled)
	if ok {
		*out = ce
	}
	return ok
}

// The incremental simulator must agree with the from-scratch
// level-major simulation on every circuit and pattern: assigning all
// wires succeeds iff the pattern's [M_0]-set is noncolliding, and on
// success the final rail symbols equal pattern.Eval's output.
func TestIncSimDifferentialNoncolliding(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, c := range testCircuits(16, rng) {
		n := c.Wires()
		cz := newCanonizer(c)
		sim := newIncSim(cz)
		for trial := 0; trial < 200; trial++ {
			p := make(pattern.Pattern, n)
			ranks := make([]uint8, n)
			for w := range p {
				r := uint8(rng.Intn(3))
				ranks[w] = r
				p[w] = rankSymbols[r]
			}
			sim.undo(0)
			ok := true
			for t := 0; t < n && ok; t++ {
				ok = sim.assign(t, ranks[cz.order[t]])
			}
			want := pattern.Noncolliding(c, p, pattern.M(0))
			if ok != want {
				t.Fatalf("n=%d pattern %v: incSim says %v, Noncolliding says %v", n, p, ok, want)
			}
			if !ok {
				continue
			}
			out := pattern.Eval(c, p)
			for r := 0; r < n; r++ {
				if rankSymbols[sim.sym[r]] != out[r] {
					t.Fatalf("n=%d pattern %v: rail %d holds %v, Eval says %v",
						n, p, r, rankSymbols[sim.sym[r]], out[r])
				}
			}
		}
	}
}

// Undo must restore the simulation exactly: after a random sequence of
// assigns and rollbacks, re-extending a prefix behaves as if freshly
// assigned on a new simulator.
func TestIncSimUndoRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	c := delta.Random(4, 0.8, rng).ToNetwork()
	n := c.Wires()
	cz := newCanonizer(c)
	sim := newIncSim(cz)
	for trial := 0; trial < 100; trial++ {
		// Build a random prefix with detours: at each step, try a
		// random rank, maybe undo it and commit a different one.
		sim.undo(0)
		ranks := make([]uint8, 0, n)
		live := true
		for t := 0; t < n && live; t++ {
			if detour := uint8(rng.Intn(3)); rng.Intn(2) == 0 {
				mark := sim.mark()
				sim.assign(t, detour)
				sim.undo(mark)
			}
			r := uint8(rng.Intn(3))
			ranks = append(ranks, r)
			live = sim.assign(t, r)
		}
		// Replay the committed ranks on a fresh simulator: same verdict,
		// same state.
		fresh := newIncSim(cz)
		freshLive := true
		for t := 0; t < len(ranks) && freshLive; t++ {
			freshLive = fresh.assign(t, ranks[t])
		}
		if live != freshLive {
			t.Fatalf("trial %d: detoured sim says %v, fresh says %v", trial, live, freshLive)
		}
		if live {
			for r := 0; r < n; r++ {
				if sim.sym[r] != fresh.sym[r] {
					t.Fatalf("trial %d: rail %d differs after undo", trial, r)
				}
			}
		}
	}
}

// The lemmaRec fork must be invisible: pinning the runtime to one CPU
// and letting it fan out freely must give bit-identical results.
func TestLemma41GOMAXPROCSDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n adversary run")
	}
	n := 4 * parallelSubtree
	tree := delta.Butterfly(lg(n))
	p := pattern.Uniform(n, pattern.M(0))

	old := runtime.GOMAXPROCS(1)
	a := Lemma41(tree, p, lg(n))
	runtime.GOMAXPROCS(old)
	b := Lemma41(tree, p, lg(n))

	if !a.Q.Equal(b.Q) || a.Survivors != b.Survivors {
		t.Fatal("Lemma41 differs between GOMAXPROCS=1 and default")
	}
	for i := range a.OutWire {
		if a.OutWire[i] != b.OutWire[i] {
			t.Fatal("Lemma41 routing differs between GOMAXPROCS=1 and default")
		}
	}
	for i := range a.Sets {
		if len(a.Sets[i]) != len(b.Sets[i]) {
			t.Fatalf("set %d differs between GOMAXPROCS=1 and default", i)
		}
		for j := range a.Sets[i] {
			if a.Sets[i][j] != b.Sets[i][j] {
				t.Fatalf("set %d differs between GOMAXPROCS=1 and default", i)
			}
		}
	}
}
