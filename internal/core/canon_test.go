package core

import (
	"math/rand"
	"testing"

	"shufflenet/internal/delta"
	"shufflenet/internal/network"
	"shufflenet/internal/pattern"
)

// Every discovered symmetry must map each level's directed comparator
// set onto itself (mirrors: onto the direction-reversed set). This
// re-verifies with an independent lookup structure, so a bug in the
// search's own verify step cannot hide.
func TestCanonizerAutosVerified(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	total := 0
	for ci, c := range testCircuits(16, rng) {
		cz := newCanonizer(c)
		total += len(cz.autos)
		for ai, a := range cz.autos {
			for _, lv := range c.Levels() {
				have := make(map[[2]int32]bool)
				for _, cm := range lv {
					have[[2]int32{int32(cm.Min), int32(cm.Max)}] = true
				}
				for _, cm := range lv {
					img := [2]int32{a.perm[cm.Min], a.perm[cm.Max]}
					if a.mirror {
						img[0], img[1] = img[1], img[0]
					}
					if !have[img] {
						t.Fatalf("circuit %d auto %d (mirror=%v): (%d,%d) -> (%d,%d) is not a comparator",
							ci, ai, a.mirror, cm.Min, cm.Max, img[0], img[1])
					}
				}
			}
			// perm must be a permutation.
			seen := make([]bool, cz.n)
			for _, v := range a.perm {
				if seen[v] {
					t.Fatalf("circuit %d auto %d: not a permutation", ci, ai)
				}
				seen[v] = true
			}
		}
	}
	if total == 0 {
		t.Fatal("no symmetries discovered on any structured test circuit (butterflies have plenty)")
	}
}

// transportState assigns p to a boundary on a fresh simulator and
// reports the rail state, or nil if some prefix comparator collides.
func transportState(cz *canonizer, p []uint8, t int) []uint8 {
	sim := newIncSim(cz)
	for s := 0; s < t; s++ {
		if !sim.assign(s, p[cz.order[s]]) {
			return nil
		}
	}
	return sim.sym
}

// Canonical keys must be invariant under the discovered symmetries:
// assigning a pattern and assigning its relabeled (and, for mirrors,
// S<->L-flipped) image reach residual states with identical keys at
// every stabilized boundary.
func TestCanonicalKeyInvariantUnderAutos(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for ci, c := range testCircuits(16, rng) {
		cz := newCanonizer(c)
		if len(cz.autos) == 0 {
			continue
		}
		n := cz.n
		scratch := make([]uint8, n)
		for trial := 0; trial < 50; trial++ {
			p := make([]uint8, n)
			for w := range p {
				p[w] = uint8(rng.Intn(3))
			}
			for _, a := range cz.autos {
				q := make([]uint8, n)
				for w := range p {
					v := p[w]
					if a.mirror {
						v = 2 - v
					}
					q[a.perm[w]] = v
				}
				for bt := 1; bt <= n; bt++ {
					if !a.stab[bt] || !cz.probeAt[bt] {
						continue
					}
					sp := transportState(cz, p, bt)
					sq := transportState(cz, q, bt)
					if (sp == nil) != (sq == nil) {
						t.Fatalf("circuit %d: collision verdict not transported at boundary %d", ci, bt)
					}
					if sp == nil {
						continue
					}
					h1p, h2p := cz.key(bt, sp, scratch)
					h1q, h2q := cz.key(bt, sq, scratch)
					if h1p != h1q || h2p != h2q {
						t.Fatalf("circuit %d boundary %d (mirror=%v): canonical keys differ", ci, bt, a.mirror)
					}
				}
			}
		}
	}
}

// relabelNetwork applies a wire permutation to every comparator,
// preserving directions: the relabeled network computes the same
// function up to renaming, so its optimum must be identical.
func relabelNetwork(c *network.Network, sigma []int) *network.Network {
	out := network.New(c.Wires())
	for _, lv := range c.Levels() {
		nl := make(network.Level, 0, len(lv))
		for _, cm := range lv {
			nl = append(nl, network.Comparator{Min: sigma[cm.Min], Max: sigma[cm.Max]})
		}
		out.AddLevel(nl)
	}
	return out
}

// FuzzCanonicalRelabel drives the symmetry machinery end to end: a
// fuzz-chosen small network is relabeled by a fuzz-chosen wire
// permutation and both optima must agree (the canonical layer may
// never make the answer depend on wire names); and on the original
// network, canonical keys must be invariant under every discovered
// automorphism for a fuzz-chosen pattern.
func FuzzCanonicalRelabel(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(3))
	f.Add(int64(7), uint8(6), uint8(5))
	f.Add(int64(99), uint8(10), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, depthRaw uint8) {
		n := 2 + int(nRaw)%9         // 2..10
		depth := 1 + int(depthRaw)%5 // 1..5
		rng := rand.New(rand.NewSource(seed))
		c := network.New(n)
		for d := 0; d < depth; d++ {
			lv := make(network.Level, 0, n/2)
			used := make([]bool, n)
			for k := 0; k < n/2; k++ {
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b || used[a] || used[b] {
					continue
				}
				used[a], used[b] = true, true
				if rng.Intn(2) == 0 {
					a, b = b, a
				}
				lv = append(lv, network.Comparator{Min: a, Max: b})
			}
			if len(lv) > 0 {
				c.AddLevel(lv)
			}
		}
		sigma := rng.Perm(n)
		sizeA, pA, _ := OptimalNoncolliding(c)
		sizeB, _, _ := OptimalNoncolliding(relabelNetwork(c, sigma))
		if sizeA != sizeB {
			t.Fatalf("optimum changed under relabeling: %d vs %d", sizeA, sizeB)
		}
		if !pattern.Noncolliding(c, pA, pattern.M(0)) {
			t.Fatalf("witness is colliding")
		}

		cz := newCanonizer(c)
		if len(cz.autos) == 0 {
			return
		}
		scratch := make([]uint8, n)
		p := make([]uint8, n)
		for w := range p {
			p[w] = uint8(rng.Intn(3))
		}
		for _, a := range cz.autos {
			q := make([]uint8, n)
			for w := range p {
				v := p[w]
				if a.mirror {
					v = 2 - v
				}
				q[a.perm[w]] = v
			}
			for bt := 1; bt <= n; bt++ {
				if !a.stab[bt] || !cz.probeAt[bt] {
					continue
				}
				sp := transportState(cz, p, bt)
				sq := transportState(cz, q, bt)
				if (sp == nil) != (sq == nil) {
					t.Fatalf("collision verdict not transported at boundary %d", bt)
				}
				if sp == nil {
					continue
				}
				h1p, h2p := cz.key(bt, sp, scratch)
				h1q, h2q := cz.key(bt, sq, scratch)
				if h1p != h1q || h2p != h2q {
					t.Fatalf("canonical keys differ at boundary %d (mirror=%v)", bt, a.mirror)
				}
			}
		}
	})
}

// The cone-closing assignment order must be a permutation, and the
// trigger schedule must fire every comparator exactly once.
func TestCanonizerScheduleComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for ci, c := range testCircuits(16, rng) {
		cz := newCanonizer(c)
		seen := make([]bool, cz.n)
		for _, w := range cz.order {
			if seen[w] {
				t.Fatalf("circuit %d: wire %d assigned twice", ci, w)
			}
			seen[w] = true
		}
		fired := 0
		for _, g := range cz.trigger {
			fired += len(g)
		}
		if fired != len(cz.comps) {
			t.Fatalf("circuit %d: %d comparators fired, have %d", ci, fired, len(cz.comps))
		}
		// The butterfly block is deep enough that a cone-closing order
		// must fire something before the last wire.
		if c.Size() > 0 && len(cz.trigger[cz.n-1]) == c.Size() {
			t.Logf("circuit %d: all comparators fire at the last step (degenerate order)", ci)
		}
	}
}

// A sanity anchor for the capacity bound: on a single level of
// disjoint comparators every pair is a direct pair, so capInit = n/2,
// and indeed no noncolliding set can use both ends of any comparator.
func TestCanonizerDirectPairs(t *testing.T) {
	c := delta.Butterfly(3).ToNetwork()
	cz := newCanonizer(c)
	pairs := 0
	for w, p := range cz.partner {
		if p >= 0 {
			if cz.partner[p] != int32(w) {
				t.Fatalf("partner not symmetric at wire %d", w)
			}
			pairs++
		}
	}
	if pairs != 8 { // first butterfly level pairs all 8 wires
		t.Fatalf("butterfly(3): %d paired wires, want 8", pairs)
	}
	if cz.capInit != 8-4 {
		t.Fatalf("capInit = %d, want 4", cz.capInit)
	}
}
