package core

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"shufflenet/internal/randnet"
)

// TestSpillBudgetDegenerate is the table-driven degenerate-budget gate
// for the spill path: budgets below the floor — including zero and
// negative values, which reach OpenSpillMemo unvalidated from CLI
// flags — must fail with a typed *SpillBudgetError before any file is
// created, and in-range budgets must produce a file whose size matches
// its own header geometry (rounded down to a power of two per shard,
// never up past the budget).
func TestSpillBudgetDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		budget int64
		wantOK bool
	}{
		{"negative", -1, false},
		{"very negative", -1 << 40, false},
		{"zero", 0, false},
		{"one byte", 1, false},
		{"header only", spillHdrSize, false},
		{"one under floor", MinSpillMemoBytes - 1, false},
		{"floor", MinSpillMemoBytes, true},
		{"odd budget", MinSpillMemoBytes + 12345, true},
		{"1 MiB", 1 << 20, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "spill.bin")
			m, warm, err := OpenSpillMemo(path, MinMemoBytes, tc.budget, "test")
			if !tc.wantOK {
				var be *SpillBudgetError
				if !errors.As(err, &be) {
					t.Fatalf("budget %d: err = %v, want *SpillBudgetError", tc.budget, err)
				}
				if be.Requested != tc.budget || be.Min != MinSpillMemoBytes {
					t.Fatalf("error fields = %+v", be)
				}
				if _, statErr := os.Stat(path); statErr == nil {
					t.Fatal("rejected budget still created the spill file")
				}
				return
			}
			if err != nil {
				t.Fatalf("budget %d: %v", tc.budget, err)
			}
			defer m.Close()
			if warm {
				t.Fatal("fresh file reported warm")
			}
			if !m.Spilling() {
				t.Fatal("no disk tier attached")
			}
			per := int64(m.diskMask + 1)
			if per&(per-1) != 0 {
				t.Fatalf("buckets per shard %d not a power of two", per)
			}
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != spillFileSize(per) {
				t.Fatalf("file size %d, geometry needs %d", st.Size(), spillFileSize(per))
			}
			if st.Size() > tc.budget {
				t.Fatalf("file size %d exceeds the %d budget", st.Size(), tc.budget)
			}
		})
	}
}

func TestSpillFormatErrors(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, corrupt func(b []byte)) string {
		path := filepath.Join(dir, name)
		m, _, err := OpenSpillMemo(path, MinMemoBytes, MinSpillMemoBytes, "tag-a")
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if corrupt != nil {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			corrupt(b)
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return path
	}

	cases := []struct {
		name    string
		path    string
		tag     string
		wantErr bool
	}{
		{"clean reopen", mk("ok.bin", nil), "tag-a", false},
		{"bad magic", mk("magic.bin", func(b []byte) { b[0] ^= 0xff }), "tag-a", true},
		{"bad checksum", mk("sum.bin", func(b []byte) { b[57] ^= 0xff }), "tag-a", true},
		{"flipped geometry", mk("geom.bin", func(b []byte) { b[16] ^= 0x01 }), "tag-a", true},
		{"wrong tag", mk("tag.bin", nil), "tag-b", true},
		{"truncated", mk("trunc.bin", nil), "tag-a", true},
	}
	// Truncate the last case's file body so size disagrees with header.
	if err := os.Truncate(cases[len(cases)-1].path, spillHdrSize+24); err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, warm, err := OpenSpillMemo(tc.path, MinMemoBytes, MinSpillMemoBytes, tc.tag)
			if tc.wantErr {
				var fe *SpillFormatError
				if !errors.As(err, &fe) {
					t.Fatalf("err = %v, want *SpillFormatError", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if !warm {
				t.Fatal("valid existing file did not report warm")
			}
		})
	}
}

// TestSpillTornBucketIsMiss pins the torn-write defense: a disk bucket
// whose key and meta words did not come from the same store — the
// signature of a SIGKILL mid page flush — must verify as a miss, never
// return a bound.
func TestSpillTornBucketIsMiss(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spill.bin")
	m, _, err := OpenSpillMemo(path, MinMemoBytes, MinSpillMemoBytes, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const h2, step, ub = 0xdeadbeefcafef00d, 5, 7
	want := uint32(1)<<16 | uint32(step)<<8
	m.diskStore(3, h2, want|ub)
	if got, ok := m.diskProbe(3, h2, want); !ok || got != ub {
		t.Fatalf("clean entry: probe = (%d, %v), want (%d, true)", got, ok, ub)
	}

	// Tear the bucket: meta now claims a different (tighter) bound than
	// the one the key was entangled with.
	b := &m.disk[3][h2&m.diskMask]
	for k := 0; k < 2; k++ {
		if b.meta[k]&(1<<16) != 0 {
			b.meta[k] = want | (ub - 3)
		}
	}
	if got, ok := m.diskProbe(3, h2, want); ok {
		t.Fatalf("torn bucket verified: probe = (%d, true), want miss", got)
	}
}

// TestOptimalSpillDifferential is the spill analogue of the memo
// differential gate: the search with a spilling table — RAM tier
// squeezed to the floor so demotions actually happen — and then again
// with the same file reopened warm must be byte-identical to the
// memo-less search. Runs a dense random circuit so the table is under
// real eviction pressure.
func TestOptimalSpillDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	circ := randnet.Levels(14, 8, rng)
	wantSize, wantP, wantSet := OptimalNoncolliding(circ)

	path := filepath.Join(t.TempDir(), "spill.bin")
	for pass, label := range []string{"cold", "warm"} {
		m, warm, err := OpenSpillMemo(path, 1, 1<<20, "test") // RAM tier clamps to MinMemoBytes
		if err != nil {
			t.Fatal(err)
		}
		if (pass == 1) != warm {
			t.Fatalf("%s pass: warm = %v", label, warm)
		}
		gotSize, gotP, gotSet, err := OptimalNoncollidingOpt(context.Background(), circ, OptimalOptions{Memo: m})
		if err != nil {
			t.Fatal(err)
		}
		if gotSize != wantSize || !gotP.Equal(wantP) || !slices.Equal(gotSet, wantSet) {
			t.Fatalf("%s spill pass diverged: got (%d, %v), want (%d, %v)", label, gotSize, gotP, wantSize, wantP)
		}
		st := m.Stats()
		if pass == 0 && st.Demotions == 0 {
			t.Fatalf("cold pass: no demotions — RAM tier never overflowed, the spill path was not exercised (stats %+v)", st)
		}
		if pass == 1 && st.DiskHits == 0 {
			t.Fatalf("warm pass: no disk hits — the reopened table served nothing (stats %+v)", st)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
