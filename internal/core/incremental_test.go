package core

import (
	"math/rand"
	"testing"

	"shufflenet/internal/delta"
	"shufflenet/internal/pattern"
	"shufflenet/internal/perm"
)

// Incremental must agree exactly with the batch Theorem41.
func TestIncrementalMatchesTheorem41(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 8; trial++ {
		n := 32
		it := delta.NewIterated(n)
		inc := NewIncremental(n, 0)
		blocks := 1 + rng.Intn(4)
		for b := 0; b < blocks; b++ {
			var pre perm.Perm
			if b > 0 {
				pre = perm.Random(n, rng)
			}
			tree := delta.Random(5, 0.9, rng)
			it.AddBlock(pre, tree)
			inc.AddBlock(pre, delta.NewForest(tree))
		}
		batch := Theorem41(it, 0)
		live := inc.Analysis()
		if !batch.P.Equal(live.P) {
			t.Fatalf("patterns differ:\nbatch %v\nlive  %v", batch.P, live.P)
		}
		if len(batch.D) != len(live.D) {
			t.Fatalf("D sizes differ: %d vs %d", len(batch.D), len(live.D))
		}
		if len(batch.Reports) != len(live.Reports) {
			t.Fatalf("report counts differ")
		}
		for i := range batch.Reports {
			if batch.Reports[i] != live.Reports[i] {
				t.Fatalf("report %d differs: %+v vs %+v", i, batch.Reports[i], live.Reports[i])
			}
		}
	}
}

// The Section 5 adaptivity claim: even a builder that inspects the
// adversary's full state before choosing each next block cannot beat
// the survival guarantee. The greedy builder here aims its butterfly
// levels at the surviving set by routing D-wires together via the
// pre-permutation — the most informed single-block attack available in
// the model — and the per-block Lemma 4.1 bound must still hold.
func TestIncrementalAdaptiveBuilder(t *testing.T) {
	n := 64
	l := 6
	inc := NewIncremental(n, 0)
	k := inc.K()
	for b := 0; b < 3; b++ {
		d := inc.D()
		if len(d) < 2 {
			break
		}
		// Adaptive attack: permute so the current D-wires sit on
		// adjacent slots (maximally exposed to the butterfly's low
		// levels). The adversary's wires-at-slots layout is internal,
		// but the input pattern is public; attack the original wires.
		pre := packFirst(n, d)
		rep := inc.AddBlock(pre, delta.NewForest(delta.Butterfly(l)))
		// Lemma 4.1 guarantee holds regardless of adaptivity.
		if k*k*rep.Survivors < rep.Before*(k*k-l) {
			t.Fatalf("block %d: adaptive builder beat the bound: %+v", b, rep)
		}
	}
	if len(inc.D()) < 1 {
		t.Fatal("adversary annihilated by an adaptive builder — contradicts Theorem 4.1")
	}
}

// packFirst builds a permutation routing the given wires to slots
// 0..len(ws)-1 (in order) and the rest after them.
func packFirst(n int, ws []int) perm.Perm {
	p := make(perm.Perm, n)
	for i := range p {
		p[i] = -1
	}
	for i, w := range ws {
		p[w] = i
	}
	next := len(ws)
	for w := 0; w < n; w++ {
		if p[w] == -1 {
			p[w] = next
			next++
		}
	}
	return p
}

func TestIncrementalDeadStaysDead(t *testing.T) {
	// Drive an adversary to death with k = 1 on deep trees (k²=1 allows
	// total loss per block) — then confirm Dead() latches and D stays
	// empty.
	rng := rand.New(rand.NewSource(92))
	inc := NewIncremental(8, 1)
	for b := 0; b < 20 && !inc.Dead(); b++ {
		inc.AddBlock(perm.Random(8, rng), delta.NewForest(delta.Random(3, 1.0, rng)))
	}
	if !inc.Dead() {
		t.Skip("adversary survived even with k=1 (possible; nothing to assert)")
	}
	inc.AddBlock(nil, delta.NewForest(delta.Butterfly(3)))
	if len(inc.D()) != 0 {
		t.Fatal("dead adversary revived")
	}
	if inc.Pattern().Count(pattern.M(0)) != 0 {
		t.Fatal("dead pattern still contains M0")
	}
}

func TestIncrementalAccessors(t *testing.T) {
	inc := NewIncremental(16, 0)
	if inc.N() != 16 || inc.K() != 4 || inc.Dead() {
		t.Fatal("fresh incremental state wrong")
	}
	if len(inc.D()) != 16 {
		t.Fatal("initial D must be all wires")
	}
	p := inc.Pattern()
	p[0] = pattern.L(0)
	if inc.Pattern()[0] != pattern.M(0) {
		t.Fatal("Pattern() did not return a copy")
	}
}

func TestIncrementalValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	inc := NewIncremental(16, 0)
	mustPanic("wrong forest width", func() {
		inc.AddBlock(nil, delta.NewForest(delta.Butterfly(3)))
	})
	mustPanic("wrong perm width", func() {
		inc.AddBlock(perm.Identity(8), delta.NewForest(delta.Butterfly(4)))
	})
}

func TestIncrementalReportsAndOutPattern(t *testing.T) {
	inc := NewIncremental(16, 0)
	inc.AddBlock(nil, delta.NewForest(delta.Butterfly(4)))
	reps := inc.Reports()
	if len(reps) != 1 || reps[0].Before != 16 {
		t.Fatalf("Reports() = %+v", reps)
	}

	// OutPattern of a Lemma result: the output pattern must contain the
	// same symbol multiset as the input pattern of the block.
	res := Lemma41(delta.Butterfly(3), pattern.Uniform(8, pattern.M(0)), 3)
	out := res.OutPattern()
	if len(out) != 8 {
		t.Fatalf("OutPattern length %d", len(out))
	}
	counts := map[pattern.Symbol]int{}
	for _, s := range out {
		counts[s]++
	}
	for i, ws := range res.Sets {
		if counts[pattern.M(i)] != len(ws) {
			t.Fatalf("OutPattern lost symbols of set %d", i)
		}
	}
}
