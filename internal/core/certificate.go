package core

import (
	"errors"
	"fmt"

	"shufflenet/internal/network"
	"shufflenet/internal/pattern"
)

// Certificate is the Corollary 4.1.1 witness of non-sortability: two
// inputs that the network maps through identical comparator outcomes,
// differing only in a pair of adjacent values that are never compared.
// No comparator network that behaves this way can sort both inputs.
type Certificate struct {
	// P is the pattern both inputs refine; its [M_0]-set is D.
	P pattern.Pattern
	// D is the noncolliding set the pair was drawn from.
	D []int
	// W0, W1 are the two chosen wires of D.
	W0, W1 int
	// M is the smaller of the two adjacent values: Pi[W0] = M,
	// Pi[W1] = M+1.
	M int
	// Pi and PiPrime are the two concrete inputs (permutations of
	// 0..n-1), identical except that the values M and M+1 are swapped
	// between wires W0 and W1.
	Pi, PiPrime []int
}

// ErrSetTooSmall is returned when the surviving noncolliding set has
// fewer than two wires, so no certificate can be extracted — the
// adversary ran out of depth (the network may well be a sorting
// network).
var ErrSetTooSmall = errors.New("core: noncolliding set has fewer than two wires")

// Certificate extracts the Corollary 4.1.1 witness from the analysis.
func (an *Analysis) Certificate() (*Certificate, error) {
	if len(an.D) < 2 {
		return nil, ErrSetTooSmall
	}
	pi := an.P.RefineToInput(nil)
	// All D wires carry M_0, so their values form a block of adjacent
	// integers; pick the two smallest.
	w0, w1 := an.D[0], an.D[1]
	for _, w := range an.D {
		if pi[w] < pi[w0] {
			w1, w0 = w0, w
		} else if w != w0 && pi[w] < pi[w1] {
			w1 = w
		}
	}
	if pi[w1] != pi[w0]+1 {
		return nil, fmt.Errorf("core: values on chosen wires not adjacent: %d, %d", pi[w0], pi[w1])
	}
	piPrime := append([]int(nil), pi...)
	piPrime[w0], piPrime[w1] = piPrime[w1], piPrime[w0]
	return &Certificate{
		P: an.P.Clone(), D: append([]int(nil), an.D...),
		W0: w0, W1: w1, M: pi[w0],
		Pi: pi, PiPrime: piPrime,
	}, nil
}

// Verify replays the certificate against an independently flattened
// circuit of the network and checks the complete Corollary 4.1.1
// argument:
//
//  1. Pi and PiPrime are permutations refining P, identical except for
//     the swap of M and M+1 on wires W0, W1 in D;
//  2. the values M and M+1 are never compared on either run;
//  3. the network performs the same permutation on both inputs (outputs
//     agree except that the rails of M and M+1 are exchanged).
//
// From (3) the network cannot sort both inputs under any fixed output
// labeling, so a nil error proves the circuit is not a sorting network.
func (c *Certificate) Verify(circuit *network.Network) error {
	n := circuit.Wires()
	if len(c.Pi) != n || len(c.PiPrime) != n {
		return fmt.Errorf("certificate width %d != circuit width %d", len(c.Pi), n)
	}
	if !isPermutation(c.Pi) || !isPermutation(c.PiPrime) {
		return errors.New("certificate inputs are not permutations")
	}
	if !c.P.RefinesInput(c.Pi) || !c.P.RefinesInput(c.PiPrime) {
		return errors.New("certificate inputs do not refine the pattern")
	}
	if c.Pi[c.W0] != c.M || c.Pi[c.W1] != c.M+1 ||
		c.PiPrime[c.W0] != c.M+1 || c.PiPrime[c.W1] != c.M {
		return errors.New("certificate swap is malformed")
	}
	for w := 0; w < n; w++ {
		if w != c.W0 && w != c.W1 && c.Pi[w] != c.PiPrime[w] {
			return fmt.Errorf("inputs differ on wire %d outside the swapped pair", w)
		}
	}

	out1, tr1 := circuit.EvalTrace(c.Pi)
	out2, tr2 := circuit.EvalTrace(c.PiPrime)
	for _, tr := range [][]network.Comparison{tr1, tr2} {
		for _, cp := range tr {
			if cp.Lo() == c.M && cp.Hi() == c.M+1 {
				return fmt.Errorf("values %d and %d were compared at level %d", c.M, c.M+1, cp.Level)
			}
		}
	}

	// Outputs must agree except for the two rails carrying M and M+1,
	// which must be exchanged.
	diff := 0
	for r := 0; r < n; r++ {
		if out1[r] == out2[r] {
			continue
		}
		diff++
		swapped := (out1[r] == c.M && out2[r] == c.M+1) ||
			(out1[r] == c.M+1 && out2[r] == c.M)
		if !swapped {
			return fmt.Errorf("outputs differ at rail %d in values other than the pair", r)
		}
	}
	if diff != 2 {
		return fmt.Errorf("outputs differ at %d rails, want exactly 2", diff)
	}
	return nil
}

func isPermutation(xs []int) bool {
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if v < 0 || v >= len(xs) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
