package core

import (
	"math/rand"
	"testing"

	"shufflenet/internal/delta"
	"shufflenet/internal/perm"
)

// The adversary must work on networks given only as circuits: flatten
// an iterated RDN, recover the structure with DecomposeIterated, run
// Theorem 4.1 on the recovery, and verify the certificate against the
// ORIGINAL circuit.
func TestAdversaryOnDecomposedCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, n := range []int{32, 64} {
		l := lg(n)
		orig := delta.NewIterated(n)
		orig.AddBlock(nil, delta.Butterfly(l))
		orig.AddBlock(perm.Random(n, rng), delta.Random(l, 1.0, rng))
		circ, _ := orig.ToNetwork()

		recovered, ok := delta.DecomposeIterated(circ, l)
		if !ok {
			t.Fatalf("n=%d: decomposition failed", n)
		}
		an := Theorem41(recovered, 0)
		if len(an.D) < 2 {
			t.Fatalf("n=%d: adversary found nothing on the recovered structure", n)
		}
		cert, err := an.Certificate()
		if err != nil {
			t.Fatal(err)
		}
		// Verified against the original circuit, not the recovery.
		if err := cert.Verify(circ); err != nil {
			t.Fatalf("n=%d: certificate rejected by the original circuit: %v", n, err)
		}
	}
}

// Round-trip soundness: a decomposed sorting network still defeats the
// adversary.
func TestAdversaryOnDecomposedBitonic(t *testing.T) {
	d := 4
	circ, _ := delta.BitonicIterated(d).ToNetwork()
	recovered, ok := delta.DecomposeIterated(circ, d)
	if !ok {
		t.Fatal("decomposition failed")
	}
	an := Theorem41(recovered, 0)
	if _, err := an.Certificate(); err == nil {
		t.Fatal("certificate extracted from a (decomposed) sorting network")
	}
}
