// Package coord makes the optimum search durable and distributable:
// typed frontier records checkpoint the 81-prefix frontier into the
// JSONL run journal (so a killed run resumes with -resume), and an
// HTTP coordinator leases prefix ranges to worker processes and merges
// their packed incumbents (so one search spans machines).
//
// Everything rests on one algebraic fact, proved as DESIGN.md §4
// decision 14: the packed incumbent is a pure max over the search's
// leaves, and when a frontier prefix completes, the global incumbent
// at that moment dominates everything the prefix's subtree could
// contribute. Hence (a) a resumed run that skips completed prefixes
// and seeds the recorded incumbent returns the byte-identical result,
// and (b) the max of per-shard results over any partition of the
// frontier equals the whole search's result. Checkpointing and
// sharding are the same mechanism at two granularities.
package coord

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"shufflenet/internal/obs"
)

// Record type tags, shared by the journal writer, the resume parser,
// and obsreport's renderer. They live in the same JSONL stream as run
// entries and heartbeats; the "type" field discriminates.
const (
	RecFrontierInit = "frontier_init"
	RecPrefixDone   = "prefix_done"
	RecResumed      = "resumed"
)

// FrontierInit opens a checkpointed search in the journal: which
// network (by fingerprint — see core.NetworkFingerprint), how wide its
// frontier is, and the incumbent the run was seeded with (non-zero on
// a resumed run, so chains of resumes stay sound).
type FrontierInit struct {
	Type     string `json:"type"`
	Run      string `json:"run,omitempty"`
	Net      string `json:"net"`
	N        int    `json:"n"`
	Prefixes int    `json:"prefixes"`
	Seed     uint64 `json:"seed,omitempty"`
	Seq      int    `json:"seq"`
}

// PrefixDone checkpoints one retired frontier prefix together with the
// global packed incumbent at the moment its subtree was exhausted —
// by the resume proof, a sound seed for any run that skips it.
type PrefixDone struct {
	Type      string `json:"type"`
	Run       string `json:"run,omitempty"`
	Prefix    int    `json:"prefix"`
	Incumbent uint64 `json:"incumbent"`
	Seq       int    `json:"seq"`
}

// Resumed is written by a -resume run after parsing a prior journal:
// where it resumed from, how much of the frontier it inherited, and
// the seed it starts with. obsreport renders it as "resumed from seq
// N, M/P prefixes skipped".
type Resumed struct {
	Type     string `json:"type"`
	Run      string `json:"run,omitempty"`
	From     string `json:"from"`
	FromSeq  int    `json:"from_seq"`
	Skipped  int    `json:"skipped"`
	Prefixes int    `json:"prefixes"`
	Seed     uint64 `json:"seed"`
	Seq      int    `json:"seq"`
}

// FrontierWriter journals frontier records with monotonically
// increasing per-run sequence numbers. Safe for concurrent use (the
// search calls PrefixDone from worker goroutines). A writer over a nil
// journal is inert, mirroring obs.Journal's nil behavior.
type FrontierWriter struct {
	mu  sync.Mutex
	j   *obs.Journal
	run string
	seq int
}

// NewFrontierWriter wraps a journal (nil is allowed and yields an
// inert writer); run correlates the records with the run's entry and
// heartbeats.
func NewFrontierWriter(j *obs.Journal, run string) *FrontierWriter {
	return &FrontierWriter{j: j, run: run}
}

func (w *FrontierWriter) nextSeq() int {
	w.seq++
	return w.seq
}

// Init journals the FrontierInit record.
func (w *FrontierWriter) Init(net string, n, prefixes int, seed uint64) error {
	if w == nil || w.j == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.j.WriteRecord(FrontierInit{
		Type: RecFrontierInit, Run: w.run,
		Net: net, N: n, Prefixes: prefixes, Seed: seed, Seq: w.nextSeq(),
	})
}

// PrefixDone journals one retired prefix. Errors are returned so the
// CLI can surface a failing disk, but the search result does not
// depend on them.
func (w *FrontierWriter) PrefixDone(prefix int, incumbent uint64) error {
	if w == nil || w.j == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.j.WriteRecord(PrefixDone{
		Type: RecPrefixDone, Run: w.run,
		Prefix: prefix, Incumbent: incumbent, Seq: w.nextSeq(),
	})
}

// Resumed journals the resume provenance record.
func (w *FrontierWriter) Resumed(from string, fromSeq, skipped, prefixes int, seed uint64) error {
	if w == nil || w.j == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.j.WriteRecord(Resumed{
		Type: RecResumed, Run: w.run,
		From: from, FromSeq: fromSeq, Skipped: skipped, Prefixes: prefixes, Seed: seed, Seq: w.nextSeq(),
	})
}

// Frontier is the resumable state reconstructed from a journal: which
// prefixes any prior run completed, the strongest incumbent recorded,
// and the identity the records were stamped with.
type Frontier struct {
	Net      string
	N        int
	Prefixes int
	Done     map[int]bool
	Seed     uint64
	// LastSeq is the highest frontier sequence number seen — the
	// "resumed from seq N" of the provenance record.
	LastSeq int
}

// Skip is a core.OptimalOptions.SkipPrefix for this frontier. Safe on
// a nil receiver (skips nothing).
func (f *Frontier) Skip(prefix int) bool {
	return f != nil && f.Done[prefix]
}

// ParseResumeJournal reads a JSONL run journal and reconstructs the
// checkpointed frontier. Non-frontier records (run entries,
// heartbeats) are ignored; unparseable lines are an error except for a
// torn final line, which is the expected signature of a killed run and
// is tolerated. Records from multiple runs (a chain of resumes
// appending to one file) accumulate: a prefix done in any run stays
// done, and the seed is the max incumbent recorded anywhere — both
// sound because every recorded incumbent is a real leaf of this
// network's search. Mixing networks in one journal is an error.
func ParseResumeJournal(r io.Reader) (*Frontier, error) {
	f := &Frontier{Done: map[int]bool{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	line, torn := 0, false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if torn {
			return nil, fmt.Errorf("line %d: unparseable record followed by more records (corrupt journal, not a torn tail)", line-1)
		}
		var tag struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(text), &tag); err != nil {
			torn = true
			continue
		}
		switch tag.Type {
		case RecFrontierInit:
			var rec FrontierInit
			if err := json.Unmarshal([]byte(text), &rec); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			if f.Net != "" && rec.Net != f.Net {
				return nil, fmt.Errorf("line %d: journal mixes networks (%s then %s)", line, f.Net, rec.Net)
			}
			if f.Net != "" && (rec.N != f.N || rec.Prefixes != f.Prefixes) {
				return nil, fmt.Errorf("line %d: journal mixes frontier geometries (%d wires/%d prefixes then %d/%d)", line, f.N, f.Prefixes, rec.N, rec.Prefixes)
			}
			f.Net, f.N, f.Prefixes = rec.Net, rec.N, rec.Prefixes
			if rec.Seed > f.Seed {
				f.Seed = rec.Seed
			}
			if rec.Seq > f.LastSeq {
				f.LastSeq = rec.Seq
			}
		case RecPrefixDone:
			var rec PrefixDone
			if err := json.Unmarshal([]byte(text), &rec); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			if f.Net == "" {
				return nil, fmt.Errorf("line %d: %s record before any %s", line, RecPrefixDone, RecFrontierInit)
			}
			if rec.Prefix < 0 || rec.Prefix >= f.Prefixes {
				return nil, fmt.Errorf("line %d: prefix %d outside the %d-wide frontier", line, rec.Prefix, f.Prefixes)
			}
			f.Done[rec.Prefix] = true
			if rec.Incumbent > f.Seed {
				f.Seed = rec.Incumbent
			}
			if rec.Seq > f.LastSeq {
				f.LastSeq = rec.Seq
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f.Net == "" {
		return nil, fmt.Errorf("no %s record: not a checkpointed optimum journal", RecFrontierInit)
	}
	return f, nil
}

// ParseResumeJournalFile is ParseResumeJournal over a file path.
func ParseResumeJournalFile(path string) (*Frontier, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	f, err := ParseResumeJournal(fd)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return f, nil
}
