package coord

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"shufflenet/internal/core"
	"shufflenet/internal/network"
	"shufflenet/internal/obs"
	"shufflenet/internal/randnet"
)

func testCircuit(t *testing.T, seed int64) *network.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return randnet.Levels(12, 6, rng)
}

// TestTwoWorkerByteIdentity is the headline invariant: two worker
// processes (here, goroutines over a real HTTP round-trip) splitting
// the frontier through the coordinator produce exactly the packed
// result — and therefore exactly the witness bytes — of a
// single-process search.
func TestTwoWorkerByteIdentity(t *testing.T) {
	circ := testCircuit(t, 3)
	ctx := context.Background()
	want, err := core.OptimalNoncollidingPacked(ctx, circ, core.OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}

	co, err := New(circ, Options{Chunk: 5, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	results := make([]uint64, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := RunWorker(ctx, srv.URL, WorkerOptions{Name: "w", Workers: 2})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			results[i] = got
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, got := range results {
		if got != want {
			t.Fatalf("worker %d returned %#x, single-process search packed %#x", i, got, want)
		}
	}
	packed, done := co.Result()
	if !done || packed != want {
		t.Fatalf("coordinator result (%#x, %v), want (%#x, true)", packed, done, want)
	}
	if !co.Verified() {
		t.Fatal("final witness failed verification")
	}
	wantSize, wantP, _ := core.DecodeOptimalWitness(circ.Wires(), want)
	size, p, _ := core.DecodeOptimalWitness(circ.Wires(), packed)
	if size != wantSize || !p.Equal(wantP) {
		t.Fatalf("witness (%d, %v), want (%d, %v)", size, p, wantSize, wantP)
	}
}

// TestStragglerRelease: a worker that leases a chunk and dies never
// reports; after the TTL the chunk is re-leased to a live worker and
// the search still completes with the exact result.
func TestStragglerRelease(t *testing.T) {
	circ := testCircuit(t, 9)
	ctx := context.Background()
	want, err := core.OptimalNoncollidingPacked(ctx, circ, core.OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}

	co, err := New(circ, Options{Chunk: 30, LeaseTTL: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// The doomed worker takes one lease and vanishes.
	doomed := co.lease("doomed")
	if doomed.Wait || doomed.Done {
		t.Fatalf("doomed lease = %+v", doomed)
	}
	time.Sleep(20 * time.Millisecond)

	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	got, err := RunWorker(ctx, srv.URL, WorkerOptions{Name: "live", Workers: 2, Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("after straggler recovery packed %#x, want %#x", got, want)
	}
	if !co.Verified() {
		t.Fatal("final witness failed verification")
	}
}

// TestCoordinatorResume: a coordinator journaling chunk completions is
// "killed" (its journal taken as-is mid-run), a second coordinator
// resumes from the parsed frontier, and the merged result is exact.
func TestCoordinatorResume(t *testing.T) {
	circ := testCircuit(t, 17)
	ctx := context.Background()
	want, err := core.OptimalNoncollidingPacked(ctx, circ, core.OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := obs.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	fw := NewFrontierWriter(j, "run-1")
	fp := core.NetworkFingerprint(circ)
	prefixes := core.OptimalPrefixes(circ.Wires())
	if err := fw.Init(fp, circ.Wires(), prefixes, 0); err != nil {
		t.Fatal(err)
	}

	// First coordinator: work exactly two chunks, then stop.
	co1, err := New(circ, Options{Chunk: 8, LeaseTTL: time.Minute, Writer: fw})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		lease := co1.lease("w")
		packed, err := core.OptimalNoncollidingPacked(ctx, circ, core.OptimalOptions{
			ShardStart: lease.Start, ShardEnd: lease.End, SeedIncumbent: lease.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := co1.report(reportReq{Lease: lease.Lease, Start: lease.Start, End: lease.End, Packed: packed}); err != nil {
			t.Fatal(err)
		}
	}
	co1.Close()
	j.Close()

	fr, err := ParseResumeJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Net != fp || len(fr.Done) != 16 {
		t.Fatalf("frontier = net %s, %d done, want net %s, 16 done", fr.Net, len(fr.Done), fp)
	}

	co2, err := New(circ, Options{Chunk: 8, LeaseTTL: time.Minute, Frontier: fr})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	srv := httptest.NewServer(co2.Handler())
	defer srv.Close()
	got, err := RunWorker(ctx, srv.URL, WorkerOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("resumed coordinator packed %#x, want %#x", got, want)
	}
}

func TestFrontierMismatchRejected(t *testing.T) {
	circ := testCircuit(t, 3)
	fr := &Frontier{Net: "not-this-network", N: circ.Wires(), Prefixes: core.OptimalPrefixes(circ.Wires()), Done: map[int]bool{}}
	if _, err := New(circ, Options{Frontier: fr}); err == nil {
		t.Fatal("coordinator accepted a frontier for a different network")
	}
}

func TestParseResumeJournal(t *testing.T) {
	const init = `{"type":"frontier_init","net":"abc","n":12,"prefixes":81,"seq":1}`
	parse := func(lines ...string) (*Frontier, error) {
		return ParseResumeJournal(strings.NewReader(strings.Join(lines, "\n")))
	}

	t.Run("accumulates", func(t *testing.T) {
		f, err := parse(
			init,
			`{"type":"heartbeat","seq":9}`, // foreign records ignored
			`{"type":"prefix_done","prefix":4,"incumbent":100,"seq":2}`,
			`{"type":"prefix_done","prefix":7,"incumbent":260,"seq":3}`,
			`{"type":"frontier_init","net":"abc","n":12,"prefixes":81,"seed":50,"seq":1}`,
			`{"type":"prefix_done","prefix":4,"incumbent":90,"seq":2}`,
		)
		if err != nil {
			t.Fatal(err)
		}
		if f.Net != "abc" || len(f.Done) != 2 || !f.Done[4] || !f.Done[7] {
			t.Fatalf("frontier = %+v", f)
		}
		if f.Seed != 260 {
			t.Fatalf("seed = %d, want the max incumbent 260", f.Seed)
		}
		if f.LastSeq != 3 {
			t.Fatalf("last seq = %d, want 3", f.LastSeq)
		}
		if !f.Skip(4) || f.Skip(5) {
			t.Fatal("Skip does not reflect the done set")
		}
	})

	t.Run("torn tail tolerated", func(t *testing.T) {
		f, err := parse(init,
			`{"type":"prefix_done","prefix":1,"incumbent":7,"seq":2}`,
			`{"type":"prefix_done","pre`)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Done) != 1 {
			t.Fatalf("done = %v", f.Done)
		}
	})

	t.Run("torn middle rejected", func(t *testing.T) {
		if _, err := parse(init, `{"type":"prefix`, init); err == nil {
			t.Fatal("corrupt mid-journal accepted")
		}
	})

	t.Run("mixed networks rejected", func(t *testing.T) {
		if _, err := parse(init, `{"type":"frontier_init","net":"zzz","n":12,"prefixes":81,"seq":1}`); err == nil {
			t.Fatal("mixed networks accepted")
		}
	})

	t.Run("orphan prefix_done rejected", func(t *testing.T) {
		if _, err := parse(`{"type":"prefix_done","prefix":1,"incumbent":7,"seq":1}`); err == nil {
			t.Fatal("prefix_done before frontier_init accepted")
		}
	})

	t.Run("out of range prefix rejected", func(t *testing.T) {
		if _, err := parse(init, `{"type":"prefix_done","prefix":81,"incumbent":7,"seq":2}`); err == nil {
			t.Fatal("out-of-range prefix accepted")
		}
	})

	t.Run("plain run journal rejected", func(t *testing.T) {
		if _, err := parse(`{"time":"2026-01-01T00:00:00Z","cmd":"adversary"}`); err == nil {
			t.Fatal("journal without frontier records accepted")
		}
	})
}

// TestFrontierWriterRoundTrip: records written through the writer
// parse back to the same frontier, and a nil-journal writer is inert.
func TestFrontierWriterRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := obs.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewFrontierWriter(j, "r")
	if err := w.Init("net-x", 12, 81, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.PrefixDone(3, 500); err != nil {
		t.Fatal(err)
	}
	if err := w.Resumed("old.jsonl", 9, 1, 81, 500); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := ParseResumeJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Net != "net-x" || f.Seed != 500 || !f.Done[3] || f.LastSeq != 2 {
		t.Fatalf("frontier = %+v", f)
	}

	var inert *FrontierWriter
	if err := inert.PrefixDone(0, 0); err != nil {
		t.Fatal("nil writer errored")
	}
	if err := NewFrontierWriter(nil, "").Init("", 0, 0, 0); err != nil {
		t.Fatal("nil-journal writer errored")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
