package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"shufflenet/internal/core"
	"shufflenet/internal/network"
	"shufflenet/internal/obs"
	"shufflenet/internal/pattern"
)

// Defaults for the lease protocol. Eight prefixes per lease keeps the
// queue fine enough to balance uneven subtrees across a handful of
// workers (81/8 ≈ 10 chunks) without a round-trip per prefix; the TTL
// only has to beat the heartbeat of real progress, since an expired
// lease is re-issued lazily on the next request, never by a timer.
const (
	DefaultChunk    = 8
	DefaultLeaseTTL = 30 * time.Second
)

var (
	metLeases   = obs.C("coord.leases")
	metReports  = obs.C("coord.reports")
	metReleases = obs.C("coord.releases") // expired leases re-issued
)

// Options configures a Coordinator.
type Options struct {
	// Chunk is the number of frontier prefixes per lease (0 =
	// DefaultChunk).
	Chunk int
	// LeaseTTL is how long a lease may sit unreported before another
	// worker may claim it (0 = DefaultLeaseTTL). Expiry is lazy: a
	// lease is only re-issued when a worker asks and nothing else is
	// pending, so a slow-but-alive worker's duplicate report is
	// harmless (the merge is an idempotent max).
	LeaseTTL time.Duration
	// Frontier, when non-nil, resumes: its Done prefixes are never
	// leased and its Seed becomes the initial merged incumbent. The
	// caller must have checked Frontier.Net against the network.
	Frontier *Frontier
	// Writer, when non-nil, checkpoints each reported chunk as
	// PrefixDone records, so a killed coordinator resumes too.
	Writer *FrontierWriter
	// Progress, when non-nil, receives chunk-frontier completion.
	Progress *obs.Progress
}

type chunkState int

const (
	chunkPending chunkState = iota
	chunkLeased
	chunkDone
)

type chunk struct {
	start, end int   // prefix range [start, end)
	skip       []int // prefixes inside the range already done pre-resume
	state      chunkState
	lease      int // lease ID, valid when state == chunkLeased
	expiry     time.Time
	worker     string
}

// Coordinator owns one distributed optimum search: it serves the
// network to workers, leases frontier chunks, merges reported packed
// incumbents with max, re-leases chunks whose worker went quiet, and
// verifies the final witness against the network with the existing
// checker. All state is in memory; durability comes from the optional
// frontier Writer.
type Coordinator struct {
	net      *network.Network
	netText  string
	fp       string
	n        int
	prefixes int
	chunkSz  int
	ttl      time.Duration
	writer   *FrontierWriter

	mu        sync.Mutex
	chunks    []*chunk
	remaining int // chunks not yet done
	incumbent uint64
	nextLease int
	verified  bool
	finished  bool
	done      chan struct{}

	unregister func()
}

// New builds a coordinator for the network. Panics only where the
// search itself would (n over the wire cap).
func New(c *network.Network, opt Options) (*Coordinator, error) {
	var sb strings.Builder
	if err := c.WriteText(&sb); err != nil {
		return nil, err
	}
	co := &Coordinator{
		net:      c,
		netText:  sb.String(),
		fp:       core.NetworkFingerprint(c),
		n:        c.Wires(),
		prefixes: core.OptimalPrefixes(c.Wires()),
		chunkSz:  opt.Chunk,
		ttl:      opt.LeaseTTL,
		writer:   opt.Writer,
		done:     make(chan struct{}),
	}
	if co.chunkSz <= 0 {
		co.chunkSz = DefaultChunk
	}
	if co.ttl <= 0 {
		co.ttl = DefaultLeaseTTL
	}
	var fr *Frontier
	if opt.Frontier != nil {
		fr = opt.Frontier
		if fr.Net != co.fp {
			return nil, fmt.Errorf("coord: frontier fingerprint %s does not match network %s", fr.Net, co.fp)
		}
		if fr.Prefixes != co.prefixes {
			return nil, fmt.Errorf("coord: frontier width %d does not match network's %d", fr.Prefixes, co.prefixes)
		}
		co.incumbent = fr.Seed
	}
	for s := 0; s < co.prefixes; s += co.chunkSz {
		e := s + co.chunkSz
		if e > co.prefixes {
			e = co.prefixes
		}
		ch := &chunk{start: s, end: e}
		covered := 0
		for p := s; p < e; p++ {
			if fr.Skip(p) {
				ch.skip = append(ch.skip, p)
				covered++
			}
		}
		if covered == e-s {
			ch.state = chunkDone // fully inherited from the frontier
		} else {
			co.remaining++
		}
		co.chunks = append(co.chunks, ch)
	}
	if co.remaining == 0 {
		co.finish()
	}
	if opt.Progress != nil {
		total := len(co.chunks)
		co.unregister = opt.Progress.Register(func(s *obs.Sample) {
			co.mu.Lock()
			dn := total - co.remaining
			inc := co.incumbent
			co.mu.Unlock()
			s.Field("coord.chunks_done", int64(dn))
			s.Field("coord.chunks_total", int64(total))
			s.SetFraction(float64(dn), float64(total))
			s.Field("coord.incumbent", int64(inc>>(2*uint(co.n))))
		})
	}
	return co, nil
}

// finish is called with mu held (or before any worker can race) once
// remaining hits zero: verify the merged witness and release waiters.
func (co *Coordinator) finish() {
	if co.finished {
		return
	}
	co.finished = true
	size, p, _ := core.DecodeOptimalWitness(co.n, co.incumbent)
	co.verified = size >= 1 && pattern.Noncolliding(co.net, p, pattern.M(0)) && len(p.Set(pattern.M(0))) == size
	close(co.done)
}

// Close unregisters the progress source. It does not abort workers.
func (co *Coordinator) Close() {
	if co.unregister != nil {
		co.unregister()
		co.unregister = nil
	}
}

// Result reports the merged packed incumbent and whether the whole
// frontier is accounted for (at which point the value is final and
// verified — see Verified).
func (co *Coordinator) Result() (packed uint64, done bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.incumbent, co.finished
}

// Verified reports whether the final witness decoded and re-checked
// against the network (meaningful only once done).
func (co *Coordinator) Verified() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.verified
}

// Wait blocks until every chunk is reported (or ctx ends) and returns
// the final packed incumbent.
func (co *Coordinator) Wait(ctx context.Context) (uint64, error) {
	select {
	case <-co.done:
		packed, _ := co.Result()
		return packed, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Protocol bodies. Packed incumbents ride as JSON numbers: Go's
// encoder emits full-precision integers and the workers are Go, so no
// 2^53 truncation occurs on this path (journals use the same
// representation).
type netInfo struct {
	N           int    `json:"n"`
	Prefixes    int    `json:"prefixes"`
	Fingerprint string `json:"fingerprint"`
	NetText     string `json:"net_text"`
}

type leaseReq struct {
	Worker string `json:"worker"`
}

type leaseResp struct {
	Done  bool   `json:"done,omitempty"`  // frontier complete; stop
	Wait  bool   `json:"wait,omitempty"`  // everything leased; poll again
	Lease int    `json:"lease,omitempty"` // lease ID to echo in the report
	Start int    `json:"start"`
	End   int    `json:"end"`
	Skip  []int  `json:"skip,omitempty"`
	Seed  uint64 `json:"seed"`
	// Packed carries the final result when Done.
	Packed uint64 `json:"packed,omitempty"`
}

type reportReq struct {
	Worker      string `json:"worker"`
	Lease       int    `json:"lease"`
	Start       int    `json:"start"`
	End         int    `json:"end"`
	Packed      uint64 `json:"packed"`
	Fingerprint string `json:"fingerprint"`
}

type resultResp struct {
	Done     bool   `json:"done"`
	Packed   uint64 `json:"packed"`
	Size     int    `json:"size"`
	Pattern  string `json:"pattern,omitempty"`
	Set      []int  `json:"set,omitempty"`
	Verified bool   `json:"verified"`
}

// Handler serves the coordinator protocol:
//
//	GET  /v1/net     the network (text format), fingerprint, frontier width
//	POST /v1/lease   claim a chunk of the frontier
//	POST /v1/report  deliver a chunk's packed result
//	GET  /v1/result  the merged (possibly partial) result
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/net", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, netInfo{N: co.n, Prefixes: co.prefixes, Fingerprint: co.fp, NetText: co.netText})
	})
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, co.lease(req.Worker))
	})
	mux.HandleFunc("POST /v1/report", func(w http.ResponseWriter, r *http.Request) {
		var req reportReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := co.report(req); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/result", func(w http.ResponseWriter, r *http.Request) {
		packed, done := co.Result()
		resp := resultResp{Done: done, Packed: packed}
		if done {
			size, p, set := core.DecodeOptimalWitness(co.n, packed)
			resp.Size, resp.Pattern, resp.Set = size, p.String(), set
			resp.Verified = co.Verified()
		}
		writeJSON(w, resp)
	})
	return mux
}

func (co *Coordinator) lease(worker string) leaseResp {
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.finished {
		return leaseResp{Done: true, Packed: co.incumbent}
	}
	var pick *chunk
	for _, ch := range co.chunks {
		if ch.state == chunkPending {
			pick = ch
			break
		}
	}
	if pick == nil {
		// Straggler recovery: nothing pending, so re-issue the first
		// expired lease. The original worker may still finish and
		// report — duplicate reports merge idempotently.
		for _, ch := range co.chunks {
			if ch.state == chunkLeased && now.After(ch.expiry) {
				pick = ch
				metReleases.Add(1)
				break
			}
		}
	}
	if pick == nil {
		return leaseResp{Wait: true}
	}
	co.nextLease++
	pick.state = chunkLeased
	pick.lease = co.nextLease
	pick.expiry = now.Add(co.ttl)
	pick.worker = worker
	metLeases.Add(1)
	return leaseResp{
		Lease: pick.lease,
		Start: pick.start, End: pick.end,
		Skip: append([]int(nil), pick.skip...),
		Seed: co.incumbent,
	}
}

func (co *Coordinator) report(req reportReq) error {
	if req.Fingerprint != "" && req.Fingerprint != co.fp {
		return fmt.Errorf("report for network %s, serving %s", req.Fingerprint, co.fp)
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	var ch *chunk
	for _, c := range co.chunks {
		if c.start == req.Start && c.end == req.End {
			ch = c
			break
		}
	}
	if ch == nil {
		return fmt.Errorf("report for unknown chunk [%d, %d)", req.Start, req.End)
	}
	metReports.Add(1)
	if req.Packed > co.incumbent {
		co.incumbent = req.Packed
	}
	if ch.state == chunkDone {
		return nil // duplicate from a re-leased straggler; already merged
	}
	ch.state = chunkDone
	co.remaining--
	if w := co.writer; w != nil {
		// Checkpoint: the merged incumbent now dominates every prefix
		// of this chunk's subtrees, so each is individually resumable.
		for p := ch.start; p < ch.end; p++ {
			if err := w.PrefixDone(p, co.incumbent); err != nil {
				return err
			}
		}
	}
	if co.remaining == 0 {
		co.finish()
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
