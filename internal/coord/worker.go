package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"shufflenet/internal/core"
	"shufflenet/internal/network"
	"shufflenet/internal/obs"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Name identifies this worker in leases (default "worker").
	Name string
	// Workers is the per-process search worker count (0 = GOMAXPROCS).
	Workers int
	// Memo is the transposition table for this process's searches (nil
	// = a private auto-sized table per process; a spill-backed table
	// from core.OpenSpillMemo persists bounds across leases and runs).
	Memo *core.Memo
	// Poll is how long to sleep when every chunk is leased elsewhere
	// (0 = 250ms).
	Poll time.Duration
	// Progress, when non-nil, receives the underlying searches' live
	// telemetry plus a lease counter.
	Progress *obs.Progress
	// Client is the HTTP client to use (nil = http.DefaultClient).
	Client *http.Client
}

var metWorkerLeases = obs.C("coord.worker.leases")

// RunWorker joins the coordinator at baseURL and works leases until
// the frontier is complete, returning the final merged packed
// incumbent. It fetches the network once, verifies the fingerprint
// round-trips (refusing to compute against a different circuit than
// the coordinator will verify), and then loops lease → search the
// [start, end) shard with the leased seed → report. Transient HTTP
// errors abort with an error; the coordinator's TTL re-leases the
// abandoned chunk, so a crashed worker costs only its in-flight chunk.
func RunWorker(ctx context.Context, baseURL string, opt WorkerOptions) (uint64, error) {
	name := opt.Name
	if name == "" {
		name = "worker"
	}
	poll := opt.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	client := opt.Client
	if client == nil {
		client = http.DefaultClient
	}
	baseURL = strings.TrimRight(baseURL, "/")

	c, info, err := fetchNet(ctx, client, baseURL)
	if err != nil {
		return 0, err
	}

	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		var lease leaseResp
		if err := postJSON(ctx, client, baseURL+"/v1/lease", leaseReq{Worker: name}, &lease); err != nil {
			return 0, fmt.Errorf("coord worker: lease: %w", err)
		}
		switch {
		case lease.Done:
			return lease.Packed, nil
		case lease.Wait:
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(poll):
			}
			continue
		}
		metWorkerLeases.Add(1)

		skip := make(map[int]bool, len(lease.Skip))
		for _, p := range lease.Skip {
			skip[p] = true
		}
		packed, err := core.OptimalNoncollidingPacked(ctx, c, core.OptimalOptions{
			Workers:       opt.Workers,
			Memo:          opt.Memo,
			Progress:      opt.Progress,
			ShardStart:    lease.Start,
			ShardEnd:      lease.End,
			SkipPrefix:    func(p int) bool { return skip[p] },
			SeedIncumbent: lease.Seed,
		})
		if err != nil {
			return 0, err
		}
		report := reportReq{
			Worker: name, Lease: lease.Lease,
			Start: lease.Start, End: lease.End,
			Packed: packed, Fingerprint: info.Fingerprint,
		}
		if err := postJSON(ctx, client, baseURL+"/v1/report", report, nil); err != nil {
			return 0, fmt.Errorf("coord worker: report: %w", err)
		}
	}
}

// FetchNet fetches the coordinator's network and verifies it
// round-trips to the advertised fingerprint. CLIs use it to size
// per-process resources (e.g. the transposition table) before joining
// as a worker. client nil means http.DefaultClient.
func FetchNet(ctx context.Context, client *http.Client, baseURL string) (*network.Network, error) {
	if client == nil {
		client = http.DefaultClient
	}
	c, _, err := fetchNet(ctx, client, strings.TrimRight(baseURL, "/"))
	return c, err
}

func fetchNet(ctx context.Context, client *http.Client, baseURL string) (*network.Network, netInfo, error) {
	var info netInfo
	if err := getJSON(ctx, client, baseURL+"/v1/net", &info); err != nil {
		return nil, info, fmt.Errorf("coord worker: fetch network: %w", err)
	}
	c, err := network.ReadText(strings.NewReader(info.NetText))
	if err != nil {
		return nil, info, fmt.Errorf("coord worker: parse network: %w", err)
	}
	if fp := core.NetworkFingerprint(c); fp != info.Fingerprint {
		return nil, info, fmt.Errorf("coord worker: network fingerprint %s does not round-trip (coordinator sent %s)", fp, info.Fingerprint)
	}
	if got := core.OptimalPrefixes(c.Wires()); got != info.Prefixes {
		return nil, info, fmt.Errorf("coord worker: frontier width %d does not match coordinator's %d", got, info.Prefixes)
	}
	return c, info, nil
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(client, req, out)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
