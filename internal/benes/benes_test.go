package benes

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shufflenet/internal/bits"
	"shufflenet/internal/perm"
)

func checkRoutes(t *testing.T, target perm.Perm) {
	t.Helper()
	n := target.Len()
	r := Route(target)
	if r.Size() != 0 {
		t.Fatalf("Beneš network contains %d comparators; must be switch-only", r.Size())
	}
	in := make([]int, n)
	for i := range in {
		in[i] = 100 + i
	}
	out := r.Eval(in)
	for i := range in {
		if out[target[i]] != in[i] {
			t.Fatalf("n=%d: input %d should reach %d; out=%v target=%v", n, i, target[i], out, target)
		}
	}
}

func TestRouteIdentity(t *testing.T) {
	for _, n := range []int{2, 4, 8, 32} {
		checkRoutes(t, perm.Identity(n))
	}
}

func TestRouteNamedPermutations(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64} {
		checkRoutes(t, perm.Shuffle(n))
		checkRoutes(t, perm.Unshuffle(n))
		checkRoutes(t, perm.BitReversal(n))
		checkRoutes(t, perm.BitFlip(n, 0))
	}
}

func TestRouteReversal(t *testing.T) {
	n := 16
	p := make(perm.Perm, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	checkRoutes(t, p)
}

func TestRouteAllPermutationsN4(t *testing.T) {
	// Rearrangeability: every permutation of 4 elements must route.
	var rec func(p []int, used []bool)
	var count int
	rec = func(p []int, used []bool) {
		if len(p) == 4 {
			checkRoutes(t, perm.Perm(append([]int(nil), p...)))
			count++
			return
		}
		for v := 0; v < 4; v++ {
			if !used[v] {
				used[v] = true
				rec(append(p, v), used)
				used[v] = false
			}
		}
	}
	rec(nil, make([]bool, 4))
	if count != 24 {
		t.Fatalf("enumerated %d permutations", count)
	}
}

func TestRouteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		for trial := 0; trial < 5; trial++ {
			checkRoutes(t, perm.Random(n, rng))
		}
	}
}

func TestRouteQuick(t *testing.T) {
	f := func(seed int64) bool {
		target := perm.Random(32, rand.New(rand.NewSource(seed)))
		r := Route(target)
		in := make([]int, 32)
		for i := range in {
			in[i] = i * 3
		}
		out := r.Eval(in)
		for i := range in {
			if out[target[i]] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestColumns(t *testing.T) {
	cases := map[int]int{2: 1, 4: 3, 8: 5, 1024: 19}
	for n, want := range cases {
		if got := Columns(n); got != want {
			t.Errorf("Columns(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRouteDepth(t *testing.T) {
	// Depth in register steps: switch columns plus shuffle wirings.
	// For n = 2^d the recursion yields 2d-1 switch columns and 2(d-1)
	// wiring steps: total 4d - 3.
	for _, n := range []int{2, 4, 8, 32} {
		d := bits.Lg(n)
		r := Route(perm.Identity(n))
		if got, want := r.Depth(), 4*d-3; got != want {
			t.Errorf("n=%d: depth %d, want %d", n, got, want)
		}
	}
}

func TestRouteRejectsBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("non-pow2", func() { Route(perm.Identity(6)) })
	mustPanic("invalid perm", func() { Route(perm.Perm{0, 0, 1, 2}) })
}
