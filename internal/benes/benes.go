// Package benes implements the Beneš rearrangeable network and its
// looping (cycle-coloring) routing algorithm.
//
// The paper's Definition 3.4 composes consecutive reverse delta
// networks with arbitrary fixed permutations between them; this package
// is the constructive realization of "arbitrary fixed permutation" as
// an explicit switching network: Route(target) returns a register-model
// network containing only "0"/"1" (pass/exchange) elements — no
// comparators — that moves the value in register i to register
// target[i], for every input, using 2·lg n − 1 switch columns.
package benes

import (
	"fmt"

	"shufflenet/internal/bits"
	"shufflenet/internal/network"
	"shufflenet/internal/perm"
)

// Columns returns the number of switch columns of a Beneš network on
// n = 2^d inputs: 2d − 1.
func Columns(n int) int {
	return 2*bits.Lg(n) - 1
}

// Route returns a register-model network of pass/exchange elements
// realizing the permutation target on n = 2^d registers: for all
// inputs x and all i, Route(target).Eval(x)[target[i]] == x[i].
// The network contains no comparators (Size() == 0), and its depth is
// 2d + 1 steps (2d − 1 switch columns plus the two shuffle wirings
// around the recursion, which carry no switches).
func Route(target perm.Perm) *network.Register {
	n := target.Len()
	bits.Lg(n)
	target.MustValid()
	r := route(target)
	// Sanity: replaying the switches must realize the permutation.
	probe := make([]int, n)
	for i := range probe {
		probe[i] = i
	}
	out := r.Eval(probe)
	for i := range probe {
		if out[target[i]] != i {
			panic(fmt.Sprintf("benes.Route: internal: switch settings do not realize %v (got %v)", target, out))
		}
	}
	return r
}

func route(target perm.Perm) *network.Register {
	n := target.Len()
	r := network.NewRegister(n)
	if n == 2 {
		ops := []network.Op{network.OpNone}
		if target[0] == 1 {
			ops[0] = network.OpSwap
		}
		r.AddStep(network.Step{Ops: ops})
		return r
	}
	h := n / 2

	// Looping algorithm. inSide[x] = subnet (0 top / 1 bottom) carrying
	// input x; outSide[y] likewise for output y. Constraints: the two
	// inputs of an input switch use different subnets, as do the two
	// outputs of an output switch, and inSide[x] == outSide[target[x]].
	inv := target.Inverse()
	inSide := make([]int, n)
	for i := range inSide {
		inSide[i] = -1
	}
	for start := 0; start < n; start++ {
		if inSide[start] != -1 {
			continue
		}
		// Walk the cycle: fixing input x to side s forces its switch
		// partner x^1 to side 1−s; the other output of x^1's output
		// switch must then come from side s again, so follow to that
		// input and repeat until the cycle closes.
		for x := start; inSide[x] == -1; x = inv[target[x^1]^1] {
			inSide[x] = 0
			inSide[x^1] = 1
		}
	}

	// Column A: exchange so register 2i holds the side-0 value.
	opsA := make([]network.Op, h)
	for i := 0; i < h; i++ {
		if inSide[2*i] == 1 {
			opsA[i] = network.OpSwap
		}
	}
	r.AddStep(network.Step{Ops: opsA})

	// Wire into subnets: 2i -> i (top), 2i+1 -> h+i (bottom). This is
	// exactly the unshuffle.
	r.AddStep(network.Step{Pi: perm.Unshuffle(n)})

	// Subnet permutations: subnet s must send its slot i (from input
	// switch i) to slot target[x]/2 (toward output switch target[x]/2),
	// where x is the side-s input of switch i.
	sub := [2]perm.Perm{make(perm.Perm, h), make(perm.Perm, h)}
	for i := 0; i < h; i++ {
		for b := 0; b < 2; b++ {
			x := 2*i + b
			s := inSide[x]
			sub[s][i] = target[x] / 2
		}
	}
	top, bot := route(sub[0]), route(sub[1])
	appendParallel(r, top, bot)

	// Wire out of subnets: i -> 2i, h+i -> 2i+1: the shuffle.
	r.AddStep(network.Step{Pi: perm.Shuffle(n)})

	// Column C: register 2j now holds the side-0 value destined for
	// output switch j; swap if that value's target is 2j+1.
	opsC := make([]network.Op, h)
	for j := 0; j < h; j++ {
		// The side-0 value arriving at switch j is the input x with
		// inSide[x] == 0 and target[x]/2 == j; it must land at target[x].
		// Equivalently: output 2j comes from side outSide[2j] where
		// outSide[y] = inSide[inv[y]].
		if inSide[inv[2*j]] == 1 {
			opsC[j] = network.OpSwap
		}
	}
	r.AddStep(network.Step{Ops: opsC})
	return r
}

// appendParallel appends the steps of two equal-depth register networks
// side by side: a on the low registers, b on the high ones.
func appendParallel(r *network.Register, a, b *network.Register) {
	if a.Depth() != b.Depth() {
		panic(fmt.Sprintf("benes: subnetwork depths differ: %d vs %d", a.Depth(), b.Depth()))
	}
	ha, hb := a.Registers(), b.Registers()
	n := ha + hb
	for s := 0; s < a.Depth(); s++ {
		sa, sb := a.Steps()[s], b.Steps()[s]
		var pi perm.Perm
		if sa.Pi != nil || sb.Pi != nil {
			pi = make(perm.Perm, n)
			for i := 0; i < ha; i++ {
				if sa.Pi != nil {
					pi[i] = sa.Pi[i]
				} else {
					pi[i] = i
				}
			}
			for i := 0; i < hb; i++ {
				if sb.Pi != nil {
					pi[ha+i] = ha + sb.Pi[i]
				} else {
					pi[ha+i] = ha + i
				}
			}
		}
		ops := make([]network.Op, n/2)
		if sa.Ops != nil {
			copy(ops, sa.Ops)
		}
		if sb.Ops != nil {
			copy(ops[ha/2:], sb.Ops)
		}
		r.AddStep(network.Step{Pi: pi, Ops: ops})
	}
}
