package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"shufflenet/internal/network"
	"shufflenet/internal/obs"
)

var (
	metCacheHits   = obs.C("serve.cache.hits")
	metCacheMisses = obs.C("serve.cache.misses")
	metCacheEvicts = obs.C("serve.cache.evictions")
)

// canonicalKey content-addresses a network: the SHA-256 of its
// canonical text form (each level sorted by CanonicalLevel, so two
// submissions that list a level's comparators in different orders — or
// arrive in different serialization formats — share one key). Responses
// and certificates are cached under this key, which is also why two
// clients submitting the same circuit warm each other's caches.
func canonicalKey(c *network.Network) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "wires %d\n", c.Wires())
	for _, lv := range c.Levels() {
		sb.WriteString("level")
		for _, cm := range network.CanonicalLevel(lv) {
			fmt.Fprintf(&sb, " %d:%d", cm.Min, cm.Max)
		}
		sb.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// respCache is a bounded FIFO map from request keys to marshaled
// response bodies. FIFO (not LRU) keeps eviction O(1) with no
// per-get bookkeeping; the daemon's working set is "the handful of
// circuits under study", far below any reasonable bound, so the
// replacement policy is not load-bearing. Storing the marshaled bytes
// rather than the response struct is what makes the warm-vs-cold
// determinism guarantee trivially auditable: a cache hit is the
// byte-identical body of the miss that filled it.
type respCache struct {
	mu    sync.Mutex
	max   int
	m     map[string][]byte
	order []string
}

func newRespCache(max int) *respCache {
	if max < 1 {
		max = 1
	}
	return &respCache{max: max, m: make(map[string][]byte, max)}
}

func (c *respCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.m[key]
	if ok {
		metCacheHits.Inc()
	} else {
		metCacheMisses.Inc()
	}
	return b, ok
}

func (c *respCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		c.m[key] = body
		return
	}
	if len(c.order) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
		metCacheEvicts.Inc()
	}
	c.m[key] = body
	c.order = append(c.order, key)
}
