package serve

import (
	"sync"
	"time"

	"shufflenet/internal/network"
	"shufflenet/internal/obs"
)

// The probe coalescer batches concurrent /v1/check probe requests onto
// the 64-lane SWAR kernel. Each lane of an EvalBits word settles one
// 0-1 input, so a request probing a single mask would waste 63 of the
// 64 lanes; instead, probes for the *same* network (same canonicalKey,
// hence identical behavior) arriving within a short window are packed
// into shared words — up to 64 pending inputs per word — and evaluated
// with one kernel pass. The words/lanes counters below make the
// packing observable: lanes counts probe masks settled, words counts
// 64-lane kernel evaluations, so lanes/words is the realized SWAR
// occupancy (64 = perfectly packed, 1 = nothing shared).
var (
	metProbeLanes   = obs.C("serve.check.probe.lanes")
	metProbeWords   = obs.C("serve.check.probe.words")
	metProbeFlushes = obs.C("serve.check.probe.flushes")
	metProbeShared  = obs.C("serve.check.probe.shared_requests")
)

type coalescer struct {
	window   time.Duration
	maxLanes int

	mu     sync.Mutex
	groups map[string]*probeGroup
}

type probeGroup struct {
	prog    *network.Program
	masks   []uint64
	waiters []probeWait
	timer   *time.Timer
}

type probeWait struct {
	off, n int
	ch     chan []bool
}

func newCoalescer(window time.Duration, maxLanes int) *coalescer {
	if window <= 0 {
		window = 2 * time.Millisecond
	}
	if maxLanes < 64 {
		maxLanes = 64
	}
	return &coalescer{window: window, maxLanes: maxLanes, groups: make(map[string]*probeGroup)}
}

// submit queues masks for evaluation against prog (grouped by the
// network's canonical key) and returns a channel that receives the
// per-mask sorted verdicts, in input order. The first submission for a
// key opens the coalescing window; the group flushes when the window
// closes or the pending lanes reach maxLanes, whichever is first.
func (co *coalescer) submit(key string, prog *network.Program, masks []uint64) <-chan []bool {
	ch := make(chan []bool, 1)
	co.mu.Lock()
	g := co.groups[key]
	if g == nil {
		g = &probeGroup{prog: prog}
		co.groups[key] = g
		g.timer = time.AfterFunc(co.window, func() { co.flush(key, g) })
	}
	g.waiters = append(g.waiters, probeWait{off: len(g.masks), n: len(masks), ch: ch})
	g.masks = append(g.masks, masks...)
	full := len(g.masks) >= co.maxLanes
	co.mu.Unlock()
	if full {
		co.flush(key, g)
	}
	return ch
}

// flush detaches the group (a racing timer/full flush finds it gone and
// returns), evaluates the packed lanes, and fans the verdicts back out
// to the waiting requests.
func (co *coalescer) flush(key string, g *probeGroup) {
	co.mu.Lock()
	if co.groups[key] != g {
		co.mu.Unlock()
		return
	}
	delete(co.groups, key)
	co.mu.Unlock()
	g.timer.Stop()

	sorted := evalProbes(g.prog, g.masks)
	metProbeLanes.Add(int64(len(g.masks)))
	metProbeWords.Add(int64((len(g.masks) + 63) / 64))
	metProbeFlushes.Inc()
	if len(g.waiters) > 1 {
		metProbeShared.Add(int64(len(g.waiters)))
	}
	for _, w := range g.waiters {
		w.ch <- sorted[w.off : w.off+w.n]
	}
}

// evalProbes packs the masks 64 per word — wire w of lane j carries bit
// w of masks[base+j] — runs the bit-sliced kernel once per word, and
// reads back which lanes came out sorted (no 1 above a 0 on any
// adjacent wire pair).
func evalProbes(prog *network.Program, masks []uint64) []bool {
	n := prog.Wires()
	out := make([]bool, len(masks))
	state := make([]uint64, n)
	for base := 0; base < len(masks); base += 64 {
		cnt := len(masks) - base
		if cnt > 64 {
			cnt = 64
		}
		for w := 0; w < n; w++ {
			state[w] = 0
		}
		for j := 0; j < cnt; j++ {
			m := masks[base+j]
			for w := 0; w < n; w++ {
				state[w] |= m >> uint(w) & 1 << uint(j)
			}
		}
		prog.EvalBits(state)
		var bad uint64
		for i := 0; i+1 < n; i++ {
			bad |= state[i] &^ state[i+1]
		}
		for j := 0; j < cnt; j++ {
			out[base+j] = bad>>uint(j)&1 == 0
		}
	}
	return out
}
