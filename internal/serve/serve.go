// Package serve implements the adversary-as-a-service HTTP/JSON API
// behind cmd/shufflenetd: clients submit a comparator network (text,
// DOT, or register serialization — the same fuzz-tested parsers the
// CLIs use) and query sortability verdicts, halver quality, the
// paper's Lemma 4.1 / Theorem 4.1 adversary certificate, or the exact
// noncolliding optimum.
//
// Endpoints (all POST, JSON in/out, plus GET /healthz):
//
//	/v1/check      0-1 sortability verdict with witness; with "inputs",
//	               per-mask probe verdicts coalesced onto shared SWAR words
//	/v1/halver     exact ε of the network as an ε-halver
//	/v1/adversary  Theorem 4.1 run + verified non-sortability certificate
//	/v1/optimal    exact optimal noncolliding [M_0]-set (branch and bound)
//
// Server-wide behavior: an admission semaphore bounds in-flight
// requests (overload answers 429 immediately, it does not queue);
// every request runs under a deadline (client-chosen via timeout_ms,
// clamped to a server maximum) and a deadline expiry answers 504 with
// the engine's partial progress as the error body — the same
// *par.ErrCanceled fields the CLIs journal; /v1/optimal requests share
// one process-wide transposition table (memo keys are salted by
// network structure, so identical circuits submitted by different
// clients warm each other); verdict/certificate bodies are cached
// content-addressed by canonical network hash, and a cache hit replays
// the byte-identical body of the miss that filled it.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"shufflenet/internal/core"
	"shufflenet/internal/network"
	"shufflenet/internal/obs"
	"shufflenet/internal/par"
	"shufflenet/internal/perm"
)

// Config sizes the server. Zero values select the documented defaults.
type Config struct {
	// Workers caps each request's engine parallelism (0 = GOMAXPROCS).
	Workers int
	// MaxInFlight bounds concurrently served requests; requests beyond
	// it are answered 429 without queueing (default 64).
	MaxInFlight int
	// DefaultTimeout is the per-request deadline when the body carries
	// no timeout_ms (default 30s). MaxTimeout clamps client-requested
	// deadlines (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MemoBytes sizes the process-wide transposition table shared by
	// /v1/optimal requests (default 64 MiB; core.NewMemo clamps
	// degenerate values).
	MemoBytes int64
	// CacheEntries bounds each response cache (default 256 bodies).
	CacheEntries int
	// CoalesceWindow is how long a /v1/check probe waits for other
	// probes of the same network to share its SWAR words (default 2ms);
	// CoalesceLanes flushes a group early once this many lanes are
	// pending (default 4096).
	CoalesceWindow time.Duration
	CoalesceLanes  int
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Journal, when non-nil, receives one lightweight JSON record per
	// request (type "request": endpoint, status, latency, cache state,
	// partial-progress fields on timeouts).
	Journal *obs.Journal
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MemoBytes == 0 {
		c.MemoBytes = 64 << 20
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.CoalesceWindow <= 0 {
		c.CoalesceWindow = 2 * time.Millisecond
	}
	if c.CoalesceLanes <= 0 {
		c.CoalesceLanes = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server is the daemon's request-handling core. It is self-contained
// and mountable under httptest for end-to-end tests.
type Server struct {
	cfg   Config
	sem   chan struct{}
	memo  *core.Memo
	co    *coalescer
	resp  *respCache // full /v1/check and /v1/optimal bodies
	certs *respCache // /v1/adversary bodies (certificates inline)
}

// New builds a Server from cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInFlight),
		memo:  core.NewMemo(cfg.MemoBytes),
		co:    newCoalescer(cfg.CoalesceWindow, cfg.CoalesceLanes),
		resp:  newRespCache(cfg.CacheEntries),
		certs: newRespCache(cfg.CacheEntries),
	}
}

// MemoStats exposes the shared transposition table's counters (for the
// daemon's shutdown journal entry).
func (s *Server) MemoStats() core.MemoStats { return s.memo.Stats() }

// Handler returns the server's mux: the /v1 endpoints, /healthz, and
// the debug surface (/debug/progress, /debug/vars) mounted on the
// server's own mux — nothing touches http.DefaultServeMux, so the
// daemon coexists with a -pprof debug listener in one process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/check", s.endpoint("check", s.handleCheck))
	mux.Handle("/v1/halver", s.endpoint("halver", s.handleHalver))
	mux.Handle("/v1/adversary", s.endpoint("adversary", s.handleAdversary))
	mux.Handle("/v1/optimal", s.endpoint("optimal", s.handleOptimal))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	mux.Handle("/debug/progress", obs.ProgressHandler())
	obs.Default.Expvar("shufflenet") // Once-guarded; /debug/vars then carries the registry
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// request is the shared JSON envelope of the /v1 endpoints.
type request struct {
	// Network is the serialized network; Format selects the parser:
	// "text" (default, network.ReadText), "dot" (network.ReadDOT), or
	// "register" (network.ReadRegisterText; the register machine is
	// converted to its equivalent circuit with the final register
	// placement folded into the wire labels, so sortedness verdicts are
	// about the register machine's output order).
	Network string `json:"network"`
	Format  string `json:"format,omitempty"`
	// Inputs, on /v1/check, switches to probe mode: each entry is a 0-1
	// input mask (bit w = wire w) evaluated on the SWAR kernel, batched
	// with concurrent probes of the same network.
	Inputs []uint64 `json:"inputs,omitempty"`
	// L and K parameterize /v1/adversary: block height for the RDN
	// decomposition and the averaging parameter (0 = the paper's lg n).
	L int `json:"l,omitempty"`
	K int `json:"k,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline
	// (clamped to the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache skips the response cache for this request (the shared
	// memo still applies — this is how warm-memo latency is measured
	// apart from body replay).
	NoCache bool `json:"nocache,omitempty"`
}

// httpError carries a status and an optional partial-progress map to
// the error writer.
type httpError struct {
	status  int
	msg     string
	partial map[string]any
}

func (e *httpError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// errorBody is the JSON error envelope. Partial carries the
// *par.ErrCanceled fields of a deadline-exceeded request — the same
// schema the CLIs journal — plus any endpoint-specific
// partial-result fields (e.g. the halver's ε lower bound).
type errorBody struct {
	Error   string         `json:"error"`
	Partial map[string]any `json:"partial,omitempty"`
}

type epMetrics struct {
	reqs, errs *obs.Counter
	latUS      *obs.Histogram
}

func newEPMetrics(name string) epMetrics {
	return epMetrics{
		reqs:  obs.C("serve." + name + ".requests"),
		errs:  obs.C("serve." + name + ".errors"),
		latUS: obs.H("serve."+name+".latency_us", obs.Pow2Bounds(30)),
	}
}

var (
	epMet = map[string]epMetrics{
		"check":     newEPMetrics("check"),
		"halver":    newEPMetrics("halver"),
		"adversary": newEPMetrics("adversary"),
		"optimal":   newEPMetrics("optimal"),
	}
	metInflight  = obs.G("serve.inflight")
	metThrottled = obs.C("serve.throttled")
	metDeadline  = obs.C("serve.deadline_exceeded")
)

// requestRecord is the per-request journal line. Deliberately much
// lighter than obs.Entry (which shells out to git and snapshots the
// registry): a daemon writes one of these per request, so it must cost
// one Marshal and one write.
type requestRecord struct {
	Type     string         `json:"type"`
	Time     string         `json:"time"`
	Endpoint string         `json:"endpoint"`
	Status   int            `json:"status"`
	MS       float64        `json:"ms"`
	N        int            `json:"n,omitempty"`
	Cache    string         `json:"cache,omitempty"`
	Error    string         `json:"error,omitempty"`
	Partial  map[string]any `json:"partial,omitempty"`
}

// handlerResult is what an endpoint handler returns to the shared
// wrapper: either a response body or an error, plus journal fields.
type handlerResult struct {
	body  []byte // marshaled response (cache hits replay these bytes)
	n     int    // network width, for the journal
	cache string // "hit" | "miss" | "" (uncached path)
}

type handlerFunc func(ctx context.Context, req *request) (handlerResult, error)

// endpoint wraps a handler with the shared pipeline: method check,
// admission control, body limit + parse, per-request deadline, error
// mapping, metrics, and the journal record.
func (s *Server) endpoint(name string, fn handlerFunc) http.Handler {
	met := epMet[name]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		met.reqs.Inc()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.fail(w, name, met, time.Now(), 0, errf(http.StatusMethodNotAllowed, "use POST"))
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			metThrottled.Inc()
			s.fail(w, name, met, time.Now(), 0, errf(http.StatusTooManyRequests,
				"server at capacity (%d in-flight requests); retry later", s.cfg.MaxInFlight))
			return
		}
		metInflight.Add(1)
		defer metInflight.Add(-1)
		start := time.Now()

		var req request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.fail(w, name, met, start, 0, errf(http.StatusBadRequest, "bad request body: %v", err))
			return
		}

		d := s.cfg.DefaultTimeout
		if req.TimeoutMS > 0 {
			d = time.Duration(req.TimeoutMS) * time.Millisecond
			if d > s.cfg.MaxTimeout {
				d = s.cfg.MaxTimeout
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()

		res, err := s.call(ctx, fn, &req)
		if err != nil {
			s.fail(w, name, met, start, res.n, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if res.cache != "" {
			w.Header().Set("X-Cache", res.cache)
		}
		w.Header().Set("X-Served-In", time.Since(start).String())
		w.Write(res.body)
		met.latUS.Observe(time.Since(start).Microseconds())
		s.journal(requestRecord{
			Type: "request", Time: time.Now().UTC().Format(time.RFC3339Nano),
			Endpoint: name, Status: http.StatusOK,
			MS: float64(time.Since(start)) / float64(time.Millisecond),
			N:  res.n, Cache: res.cache,
		})
	})
}

// call runs the handler with a panic guard: a handler bug answers 500
// instead of killing the daemon's connection (the engines' width caps
// are all pre-checked, so a panic here is a genuine bug, and the
// journal line preserves its trace head).
func (s *Server) call(ctx context.Context, fn handlerFunc, req *request) (res handlerResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			trace := string(debug.Stack())
			if i := strings.IndexByte(trace, '\n'); i > 0 {
				trace = trace[:i]
			}
			err = errf(http.StatusInternalServerError, "internal error: %v (%s)", p, trace)
		}
	}()
	return fn(ctx, req)
}

// fail maps an error to its HTTP response and journal record.
// *par.ErrCanceled from an expired request deadline becomes 504 with
// the partial-progress fields as the error body.
func (s *Server) fail(w http.ResponseWriter, name string, met epMetrics, start time.Time, n int, err error) {
	met.errs.Inc()
	status := http.StatusInternalServerError
	body := errorBody{Error: err.Error()}
	var he *httpError
	var ce *par.ErrCanceled
	switch {
	case errors.As(err, &he):
		status = he.status
		body.Partial = he.partial
	case errors.As(err, &ce):
		status = http.StatusGatewayTimeout
		metDeadline.Inc()
		body.Partial = ce.Fields()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
	met.latUS.Observe(time.Since(start).Microseconds())
	s.journal(requestRecord{
		Type: "request", Time: time.Now().UTC().Format(time.RFC3339Nano),
		Endpoint: name, Status: status,
		MS: float64(time.Since(start)) / float64(time.Millisecond),
		N:  n, Error: body.Error, Partial: body.Partial,
	})
}

func (s *Server) journal(rec requestRecord) {
	if s.cfg.Journal == nil {
		return
	}
	s.cfg.Journal.WriteRecord(rec)
}

// parseNetwork decodes the request's network with the parser its
// format selects.
func parseNetwork(req *request) (*network.Network, error) {
	if strings.TrimSpace(req.Network) == "" {
		return nil, errf(http.StatusBadRequest, "missing network")
	}
	rd := strings.NewReader(req.Network)
	switch req.Format {
	case "", "text":
		c, err := network.ReadText(rd)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "parse (text): %v", err)
		}
		return c, nil
	case "dot":
		c, err := network.ReadDOT(rd)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "parse (dot): %v", err)
		}
		return c, nil
	case "register":
		reg, err := network.ReadRegisterText(rd)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "parse (register): %v", err)
		}
		circ, place := network.FromRegister(reg)
		return relabel(circ, place.Inverse()), nil
	default:
		return nil, errf(http.StatusBadRequest, "unknown format %q (want text, dot, or register)", req.Format)
	}
}

// relabel renames circuit wires by q. Used to fold a register
// machine's final placement into the circuit: reg.Eval(x)[r] ==
// circ.Eval(x)[place[r]], so relabeling every wire w to place⁻¹[w]
// yields a circuit that is a sorting network iff the register machine
// leaves its registers sorted in order.
func relabel(c *network.Network, q perm.Perm) *network.Network {
	if q.IsIdentity() {
		return c
	}
	out := network.New(c.Wires())
	for _, lv := range c.Levels() {
		nl := make(network.Level, len(lv))
		for i, cm := range lv {
			nl[i] = network.Comparator{Min: q[cm.Min], Max: q[cm.Max]}
		}
		out.AddLevel(nl)
	}
	return out
}
