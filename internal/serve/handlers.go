package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"shufflenet/internal/bits"
	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/halver"
	"shufflenet/internal/par"
	"shufflenet/internal/sortcheck"
)

// checkResponse answers /v1/check. In full mode Sorts carries the 0-1
// verdict and, when false, Witness/WitnessMask the smallest failing
// 0-1 input. In probe mode Probes carries one verdict per submitted
// mask, in submission order.
type checkResponse struct {
	N     int   `json:"n"`
	Depth int   `json:"depth"`
	Size  int   `json:"size"`
	Sorts *bool `json:"sorts,omitempty"`
	// Witness is the smallest-mask failing 0-1 input (bit i of
	// WitnessMask = entry i), present only when Sorts is false.
	Witness     []int          `json:"witness,omitempty"`
	WitnessMask *uint64        `json:"witness_mask,omitempty"`
	Probes      []probeVerdict `json:"probes,omitempty"`
}

type probeVerdict struct {
	Mask   uint64 `json:"mask"`
	Sorted bool   `json:"sorted"`
}

func (s *Server) handleCheck(ctx context.Context, req *request) (handlerResult, error) {
	c, err := parseNetwork(req)
	if err != nil {
		return handlerResult{}, err
	}
	n := c.Wires()
	res := handlerResult{n: n}

	if len(req.Inputs) > 0 {
		if n > 64 {
			return res, errf(http.StatusUnprocessableEntity,
				"probe mode handles at most 64 wires (masks are 64-bit); the network has %d", n)
		}
		if n < 64 {
			for _, m := range req.Inputs {
				if m >= 1<<uint(n) {
					return res, errf(http.StatusBadRequest,
						"input mask %d exceeds the %d-wire network's 2^%d masks", m, n, n)
				}
			}
		}
		ch := s.co.submit(canonicalKey(c), c.Compile(), req.Inputs)
		select {
		case sorted := <-ch:
			probes := make([]probeVerdict, len(sorted))
			for i, ok := range sorted {
				probes[i] = probeVerdict{Mask: req.Inputs[i], Sorted: ok}
			}
			body, err := json.Marshal(checkResponse{
				N: n, Depth: c.Depth(), Size: c.Size(), Probes: probes,
			})
			if err != nil {
				return res, err
			}
			res.body = body
			return res, nil
		case <-ctx.Done():
			return res, &par.ErrCanceled{Op: "serve.check.probe", Cause: ctx.Err()}
		}
	}

	if n > sortcheck.MaxZeroOneWires {
		return res, errf(http.StatusUnprocessableEntity,
			"the full 0-1 check handles at most %d wires (2^n inputs); the network has %d — submit probe inputs instead",
			sortcheck.MaxZeroOneWires, n)
	}
	key := "check:" + canonicalKey(c)
	if !req.NoCache {
		if body, ok := s.resp.get(key); ok {
			res.cache, res.body = "hit", body
			return res, nil
		}
		res.cache = "miss"
	}
	ok, witness, err := sortcheck.ZeroOneCtx(ctx, n, c, s.cfg.Workers)
	if err != nil {
		return res, err
	}
	resp := checkResponse{N: n, Depth: c.Depth(), Size: c.Size(), Sorts: &ok}
	if !ok {
		var mask uint64
		for i, v := range witness {
			mask |= uint64(v&1) << uint(i)
		}
		resp.Witness, resp.WitnessMask = witness, &mask
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return res, err
	}
	res.body = body
	if !req.NoCache {
		s.resp.put(key, body)
	}
	return res, nil
}

// halverResponse answers /v1/halver: Epsilon is the exact smallest ε
// such that the network is an ε-halver.
type halverResponse struct {
	N       int     `json:"n"`
	Depth   int     `json:"depth"`
	Size    int     `json:"size"`
	Epsilon float64 `json:"epsilon"`
}

func (s *Server) handleHalver(ctx context.Context, req *request) (handlerResult, error) {
	c, err := parseNetwork(req)
	if err != nil {
		return handlerResult{}, err
	}
	n := c.Wires()
	res := handlerResult{n: n}
	if n > halver.MaxEpsilonWires {
		return res, errf(http.StatusUnprocessableEntity,
			"ε is exhausted over 2^n inputs for at most %d wires; the network has %d", halver.MaxEpsilonWires, n)
	}
	if n%2 != 0 {
		return res, errf(http.StatusUnprocessableEntity, "ε-halving needs an even wire count; the network has %d", n)
	}
	key := "halver:" + canonicalKey(c)
	if !req.NoCache {
		if body, ok := s.resp.get(key); ok {
			res.cache, res.body = "hit", body
			return res, nil
		}
		res.cache = "miss"
	}
	eps, err := halver.EpsilonCtx(ctx, c, s.cfg.Workers)
	if err != nil {
		var ce *par.ErrCanceled
		if errors.As(err, &ce) {
			// The partial ε is a valid lower bound (it only grows as
			// more masks are seen), so it rides along in the 504 body.
			fields := ce.Fields()
			fields["epsilon_lower_bound"] = eps
			return res, &httpError{status: http.StatusGatewayTimeout, msg: err.Error(), partial: fields}
		}
		return res, err
	}
	body, err := json.Marshal(halverResponse{N: n, Depth: c.Depth(), Size: c.Size(), Epsilon: eps})
	if err != nil {
		return res, err
	}
	res.body = body
	if !req.NoCache {
		s.resp.put(key, body)
	}
	return res, nil
}

// adversaryResponse answers /v1/adversary. Certificate, when present,
// is the self-contained Corollary 4.1.1 witness in the same JSON
// schema cmd/adversary -save writes (verified against the submitted
// circuit before being returned); SortingRuledOut mirrors its
// presence.
type adversaryResponse struct {
	N               int                `json:"n"`
	Blocks          int                `json:"blocks"`
	L               int                `json:"l"`
	K               int                `json:"k"`
	DSize           int                `json:"d_size"`
	Reports         []core.BlockReport `json:"reports"`
	SortingRuledOut bool               `json:"sorting_ruled_out"`
	Certificate     json.RawMessage    `json:"certificate,omitempty"`
	Note            string             `json:"note,omitempty"`
}

func (s *Server) handleAdversary(ctx context.Context, req *request) (handlerResult, error) {
	c, err := parseNetwork(req)
	if err != nil {
		return handlerResult{}, err
	}
	n := c.Wires()
	res := handlerResult{n: n}
	if !bits.IsPow2(n) {
		return res, errf(http.StatusUnprocessableEntity,
			"the adversary needs a power-of-two wire count; the network has %d", n)
	}
	l := req.L
	if l <= 0 {
		l = bits.Lg(n)
	}
	key := fmt.Sprintf("adversary:%s:l=%d:k=%d", canonicalKey(c), l, req.K)
	if !req.NoCache {
		if body, ok := s.certs.get(key); ok {
			res.cache, res.body = "hit", body
			return res, nil
		}
		res.cache = "miss"
	}
	it, ok := delta.DecomposeIterated(c, l)
	if !ok {
		return res, errf(http.StatusUnprocessableEntity,
			"the circuit is not an iterated reverse delta network of block height %d; the paper's lower bound does not apply to it", l)
	}
	an, terr := core.Theorem41Ctx(ctx, it, req.K)
	if terr != nil {
		// No certificate from a canceled run: D is noncolliding only
		// for the prefix of the network actually processed.
		return res, terr
	}
	resp := adversaryResponse{
		N: n, Blocks: it.Blocks(), L: l, K: an.K,
		DSize: len(an.D), Reports: an.Reports,
	}
	cert, cerr := an.Certificate()
	switch {
	case cerr == nil:
		if verr := cert.Verify(c); verr != nil {
			return res, fmt.Errorf("derived certificate failed verification: %v", verr)
		}
		var cb bytes.Buffer
		if werr := cert.WriteJSON(&cb); werr != nil {
			return res, werr
		}
		resp.SortingRuledOut = true
		resp.Certificate = json.RawMessage(bytes.TrimSpace(cb.Bytes()))
	case errors.Is(cerr, core.ErrSetTooSmall):
		resp.Note = "surviving noncolliding set has fewer than two wires; the adversary cannot rule out that this network sorts"
	default:
		return res, cerr
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return res, err
	}
	res.body = body
	if !req.NoCache {
		s.certs.put(key, body)
	}
	return res, nil
}

// optimalResponse answers /v1/optimal: the exact largest noncolliding
// [M_0]-set any pattern admits on the circuit, with the witness
// pattern and set. The body is fully deterministic (the search result
// is byte-identical at any worker count and memo state; timing lives
// in the X-Served-In header), which is what makes the warm-vs-cold
// cache determinism testable.
type optimalResponse struct {
	N        int    `json:"n"`
	Depth    int    `json:"depth"`
	Size     int    `json:"size"`
	OptimalD int    `json:"optimal_d"`
	Pattern  string `json:"pattern"`
	Set      []int  `json:"set"`
}

func (s *Server) handleOptimal(ctx context.Context, req *request) (handlerResult, error) {
	c, err := parseNetwork(req)
	if err != nil {
		return handlerResult{}, err
	}
	n := c.Wires()
	res := handlerResult{n: n}
	if n > core.MaxOptimalWires {
		return res, errf(http.StatusUnprocessableEntity,
			"the exact optimum search handles at most %d wires; the network has %d", core.MaxOptimalWires, n)
	}
	key := "optimal:" + canonicalKey(c)
	if !req.NoCache {
		if body, ok := s.resp.get(key); ok {
			res.cache, res.body = "hit", body
			return res, nil
		}
		res.cache = "miss"
	}
	// One process-wide memo serves every request: entries are keyed by
	// canonical residual state salted with the network's structure, so
	// repeat submissions of the same circuit (from any client) probe
	// warm, and different circuits cannot collide.
	size, p, set, err := core.OptimalNoncollidingOpt(ctx, c, core.OptimalOptions{
		Workers: s.cfg.Workers, Memo: s.memo,
	})
	if err != nil {
		return res, err
	}
	body, err := json.Marshal(optimalResponse{
		N: n, Depth: c.Depth(), Size: c.Size(),
		OptimalD: size, Pattern: p.String(), Set: set,
	})
	if err != nil {
		return res, err
	}
	res.body = body
	if !req.NoCache {
		s.resp.put(key, body)
	}
	return res, nil
}
