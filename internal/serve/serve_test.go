package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"shufflenet/internal/delta"
	"shufflenet/internal/netbuild"
	"shufflenet/internal/network"
	"shufflenet/internal/obs"
)

func netText(t testing.TB, c *network.Network) string {
	t.Helper()
	var b bytes.Buffer
	if err := c.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func post(t testing.TB, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf []byte
	switch b := body.(type) {
	case string:
		buf = []byte(b)
	default:
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	out := new(bytes.Buffer)
	out.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, out.Bytes()
}

func decode(t testing.TB, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("bad response body %q: %v", raw, err)
	}
}

// butterflyRDN builds the n-wire single-block butterfly iterated RDN —
// the canonical circuit the paper's adversary applies to.
func butterflyRDN(t testing.TB, n, lgn int) *network.Network {
	t.Helper()
	it := delta.NewIterated(n)
	it.AddBlock(nil, delta.Butterfly(lgn))
	c, _ := it.ToNetwork()
	return c
}

// TestServeHappyPaths drives every endpoint end to end over real HTTP:
// a sorter checks true, a non-sorter checks false with the witness, ε
// comes back exact, the adversary returns a verified certificate, and
// the optimum search returns the exact noncolliding maximum.
func TestServeHappyPaths(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	resp, raw := post(t, ts, "/v1/check", map[string]any{"network": netText(t, netbuild.Bitonic(8))})
	if resp.StatusCode != 200 {
		t.Fatalf("check sorter: %d %s", resp.StatusCode, raw)
	}
	var cr checkResponse
	decode(t, raw, &cr)
	if cr.Sorts == nil || !*cr.Sorts || cr.N != 8 || cr.Witness != nil {
		t.Fatalf("check sorter: %s", raw)
	}

	oneLevel := network.New(4).AddComparators(0, 1, 2, 3)
	resp, raw = post(t, ts, "/v1/check", map[string]any{"network": netText(t, oneLevel)})
	var cr2 checkResponse
	decode(t, raw, &cr2)
	if resp.StatusCode != 200 || cr2.Sorts == nil || *cr2.Sorts {
		t.Fatalf("check non-sorter: %d %s", resp.StatusCode, raw)
	}
	if cr2.WitnessMask == nil || len(cr2.Witness) != 4 {
		t.Fatalf("missing witness: %s", raw)
	}
	// The witness must actually fail: re-evaluate it locally.
	out := oneLevel.Eval(cr2.Witness)
	sorted := true
	for i := 1; i < len(out); i++ {
		if out[i-1] > out[i] {
			sorted = false
		}
	}
	if sorted {
		t.Fatalf("returned witness %v does not fail the network", cr2.Witness)
	}

	resp, raw = post(t, ts, "/v1/halver", map[string]any{"network": netText(t, netbuild.HalfCleaner(8))})
	var hr halverResponse
	decode(t, raw, &hr)
	if resp.StatusCode != 200 || hr.Epsilon != 0.5 {
		// A lone half-cleaner is exactly a 1/2-halver: pairing the k ones
		// up leaves ⌊k/2⌋ of them in the top half.
		t.Fatalf("halver: half-cleaner has ε = 1/2, got %d %s", resp.StatusCode, raw)
	}

	resp, raw = post(t, ts, "/v1/adversary", map[string]any{"network": netText(t, butterflyRDN(t, 16, 4))})
	var ar adversaryResponse
	decode(t, raw, &ar)
	if resp.StatusCode != 200 {
		t.Fatalf("adversary: %d %s", resp.StatusCode, raw)
	}
	if !ar.SortingRuledOut || ar.Certificate == nil || ar.DSize < 2 || len(ar.Reports) != 1 {
		t.Fatalf("adversary: expected a certificate on a 1-block butterfly, got %s", raw)
	}

	resp, raw = post(t, ts, "/v1/optimal", map[string]any{"network": netText(t, network.New(8).AddComparators(0, 1, 2, 3, 4, 5, 6, 7))})
	var or optimalResponse
	decode(t, raw, &or)
	if resp.StatusCode != 200 || or.OptimalD < 2 || len(or.Set) != or.OptimalD || or.Pattern == "" {
		t.Fatalf("optimal: %d %s", resp.StatusCode, raw)
	}

	// Health and debug surfaces answer on the server's own mux.
	for _, path := range []string{"/healthz", "/debug/progress", "/debug/vars"} {
		gr, err := http.Get(ts.URL + path)
		if err != nil || gr.StatusCode != 200 {
			t.Fatalf("GET %s: %v %v", path, gr, err)
		}
		gr.Body.Close()
	}
}

// TestServeFormats: the DOT and register serializations of a network
// produce the same verdict as its text form, and the register
// machine's final placement is folded in (a register network that
// sorts via exchanges still checks true).
func TestServeFormats(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	sorter := netbuild.Bitonic(8)

	var dot bytes.Buffer
	if err := sorter.WriteDOT(&dot, "s"); err != nil {
		t.Fatal(err)
	}
	resp, raw := post(t, ts, "/v1/check", map[string]any{"network": dot.String(), "format": "dot"})
	var cr checkResponse
	decode(t, raw, &cr)
	if resp.StatusCode != 200 || cr.Sorts == nil || !*cr.Sorts {
		t.Fatalf("dot check: %d %s", resp.StatusCode, raw)
	}

	reg, _ := network.ToRegister(sorter)
	var rt bytes.Buffer
	if err := reg.WriteText(&rt); err != nil {
		t.Fatal(err)
	}
	resp, raw = post(t, ts, "/v1/check", map[string]any{"network": rt.String(), "format": "register"})
	var cr2 checkResponse
	decode(t, raw, &cr2)
	if resp.StatusCode != 200 || cr2.Sorts == nil || !*cr2.Sorts {
		t.Fatalf("register check: %d %s", resp.StatusCode, raw)
	}
}

// TestServeMalformedRequests: every malformed body is a clean 4xx with
// a JSON error envelope — never a 500, never a hang.
func TestServeMalformedRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	cases := []struct {
		name, path string
		body       any
		want       int
	}{
		{"not-json", "/v1/check", `{not json`, 400},
		{"unknown-field", "/v1/check", `{"network":"wires 2\n","bogus":1}`, 400},
		{"missing-network", "/v1/check", map[string]any{}, 400},
		{"bad-network", "/v1/check", map[string]any{"network": "wires 4\nlevel 9:1\n"}, 400},
		{"bad-format", "/v1/check", map[string]any{"network": "wires 2\n", "format": "yaml"}, 400},
		{"bad-dot", "/v1/halver", map[string]any{"network": "not dot", "format": "dot"}, 400},
		{"too-wide-check", "/v1/check", map[string]any{"network": "wires 40\n"}, 422},
		{"probe-mask-range", "/v1/check", map[string]any{"network": "wires 4\nlevel 0:1\n", "inputs": []uint64{99}}, 400},
		{"odd-halver", "/v1/halver", map[string]any{"network": "wires 5\n"}, 422},
		{"too-wide-optimal", "/v1/optimal", map[string]any{"network": "wires 30\n"}, 422},
		{"non-pow2-adversary", "/v1/adversary", map[string]any{"network": "wires 6\n"}, 422},
		{"non-rdn-adversary", "/v1/adversary", map[string]any{"network": netText(t, netbuild.OddEvenTransposition(8))}, 422},
	}
	for _, tc := range cases {
		resp, raw := post(t, ts, tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.want, raw)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q is not the JSON envelope", tc.name, raw)
		}
	}

	// Wrong method and unknown path.
	gr, err := http.Get(ts.URL + "/v1/check")
	if err != nil || gr.StatusCode != 405 {
		t.Fatalf("GET /v1/check: %v %v", gr.StatusCode, err)
	}
	gr.Body.Close()
	gr, err = http.Get(ts.URL + "/v1/nope")
	if err != nil || gr.StatusCode != 404 {
		t.Fatalf("GET /v1/nope: %v %v", gr.StatusCode, err)
	}
	gr.Body.Close()
}

// TestServeDeadlinePartial: a request whose deadline expires answers
// 504 and the error body carries the engine's partial progress — the
// *par.ErrCanceled fields plus the halver's ε lower bound.
func TestServeDeadlinePartial(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	// 26 wires = 2^26 masks: far more than a 1 ms deadline allows, but
	// chunk-level cancellation checks surface the 504 in milliseconds.
	resp, raw := post(t, ts, "/v1/halver", map[string]any{
		"network": netText(t, netbuild.OddEvenTransposition(26)), "timeout_ms": 1,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d want 504 (%s)", resp.StatusCode, raw)
	}
	var eb errorBody
	decode(t, raw, &eb)
	if eb.Error == "" || eb.Partial == nil {
		t.Fatalf("504 body missing partial fields: %s", raw)
	}
	for _, key := range []string{"op", "cause", "masks_checked", "epsilon_lower_bound"} {
		if _, ok := eb.Partial[key]; !ok {
			t.Errorf("partial missing %q: %s", key, raw)
		}
	}
	if op := eb.Partial["op"]; op != "halver.Epsilon" {
		t.Errorf("partial op %v", op)
	}
}

// TestServeAdmissionControl: with MaxInFlight=1 and one request parked
// inside its coalescing window (holding the admission slot), the next
// request is answered 429 immediately — the server sheds load instead
// of queueing it.
func TestServeAdmissionControl(t *testing.T) {
	ts := httptest.NewServer(New(Config{
		MaxInFlight:    1,
		CoalesceWindow: 500 * time.Millisecond,
	}).Handler())
	defer ts.Close()
	sorter := netText(t, netbuild.Bitonic(8))

	release := make(chan struct{})
	go func() {
		defer close(release)
		resp, raw := post(t, ts, "/v1/check", map[string]any{"network": sorter, "inputs": []uint64{1}})
		if resp.StatusCode != 200 {
			t.Errorf("parked probe: %d %s", resp.StatusCode, raw)
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the probe take the slot and park

	start := time.Now()
	resp, raw := post(t, ts, "/v1/check", map[string]any{"network": sorter})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d want 429 (%s)", resp.StatusCode, raw)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("429 took %v; admission control must answer immediately", d)
	}
	var eb errorBody
	decode(t, raw, &eb)
	if !strings.Contains(eb.Error, "capacity") {
		t.Fatalf("429 body: %s", raw)
	}
	<-release
}

// TestServeCoalescing: many concurrent single-mask probe requests of
// the same network share SWAR words. The words/lanes counters prove
// it: 24 requests of one mask each must settle in at most a couple of
// 64-lane kernel words, not 24.
func TestServeCoalescing(t *testing.T) {
	ts := httptest.NewServer(New(Config{
		MaxInFlight:    64,
		CoalesceWindow: 300 * time.Millisecond,
	}).Handler())
	defer ts.Close()
	sorter := netbuild.Bitonic(8)
	text := netText(t, sorter)

	lanes0 := metProbeLanes.Value()
	words0 := metProbeWords.Value()

	const requests = 24
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mask := uint64(i) & 0xff
			resp, raw := post(t, ts, "/v1/check", map[string]any{"network": text, "inputs": []uint64{mask}})
			if resp.StatusCode != 200 {
				t.Errorf("probe %d: %d %s", i, resp.StatusCode, raw)
				return
			}
			var cr checkResponse
			if err := json.Unmarshal(raw, &cr); err != nil || len(cr.Probes) != 1 {
				t.Errorf("probe %d: %s", i, raw)
				return
			}
			// Every probe of a sorting network is sorted.
			if !cr.Probes[0].Sorted || cr.Probes[0].Mask != mask {
				t.Errorf("probe %d: %+v", i, cr.Probes[0])
			}
		}(i)
	}
	wg.Wait()

	lanes := metProbeLanes.Value() - lanes0
	words := metProbeWords.Value() - words0
	if lanes != requests {
		t.Fatalf("lanes %d want %d", lanes, requests)
	}
	// All requests arrive well inside one 300 ms window, so they pack
	// into very few words. Allow a little slack for straggler flushes,
	// but far below one word per request — that is the coalescing claim.
	if words > 4 {
		t.Fatalf("%d requests needed %d kernel words; expected them to share (≤4)", requests, words)
	}
	t.Logf("coalescing: %d probe lanes in %d kernel words", lanes, words)
}

// TestServeOptimalDeterminism: /v1/optimal bodies are byte-identical
// cold (first computation), warm (recompute against the shared memo,
// nocache), and cached (body replay) — the warm-vs-cold determinism
// guarantee the A-series experiments rely on, now over HTTP.
func TestServeOptimalDeterminism(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	circ := netText(t, netbuild.OddEvenTransposition(10))

	resp, cold := post(t, ts, "/v1/optimal", map[string]any{"network": circ, "nocache": true})
	if resp.StatusCode != 200 {
		t.Fatalf("cold: %d %s", resp.StatusCode, cold)
	}
	if h := resp.Header.Get("X-Cache"); h != "" {
		t.Fatalf("nocache request reported X-Cache %q", h)
	}
	resp, warm := post(t, ts, "/v1/optimal", map[string]any{"network": circ, "nocache": true})
	if resp.StatusCode != 200 {
		t.Fatalf("warm: %d %s", resp.StatusCode, warm)
	}
	resp, miss := post(t, ts, "/v1/optimal", map[string]any{"network": circ})
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("fill: %d X-Cache=%q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp, hit := post(t, ts, "/v1/optimal", map[string]any{"network": circ})
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("hit: %d X-Cache=%q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(cold, warm) || !bytes.Equal(cold, miss) || !bytes.Equal(cold, hit) {
		t.Fatalf("bodies differ across cold/warm/miss/hit:\n%s\n%s\n%s\n%s", cold, warm, miss, hit)
	}
}

// TestServeCanonicalCacheKey: two textual spellings of the same
// network (levels listed in different comparator order) share one
// cache entry — the second spelling hits.
func TestServeCanonicalCacheKey(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	a := "wires 4\nlevel 0:1 2:3\n"
	b := "wires 4\nlevel 2:3 0:1\n"
	resp, _ := post(t, ts, "/v1/check", map[string]any{"network": a})
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first spelling: %d %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp, _ = post(t, ts, "/v1/check", map[string]any{"network": b})
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second spelling should hit the canonical cache: %d %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
}

// TestServeJournalRecords: with a journal attached, every request
// leaves one type:"request" line with endpoint, status, and latency.
func TestServeJournalRecords(t *testing.T) {
	path := t.TempDir() + "/requests.jsonl"
	j, err := obs.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Journal: j}).Handler())
	post(t, ts, "/v1/check", map[string]any{"network": "wires 4\nlevel 0:1 2:3\n"})
	post(t, ts, "/v1/check", map[string]any{"network": "not a network"})
	ts.Close()
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("want 2 journal lines, got %d: %s", len(lines), raw)
	}
	var recs []requestRecord
	for _, line := range lines {
		var r requestRecord
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	if recs[0].Type != "request" || recs[0].Endpoint != "check" || recs[0].Status != 200 || recs[0].N != 4 {
		t.Fatalf("first record %+v", recs[0])
	}
	if recs[1].Status != 400 || recs[1].Error == "" {
		t.Fatalf("second record %+v", recs[1])
	}
}

// BenchmarkServeCheckProbe measures end-to-end probe latency through
// the full HTTP stack and the coalescer (tiny window so the benchmark
// measures the kernel path, not the batching wait).
func BenchmarkServeCheckProbe(b *testing.B) {
	ts := httptest.NewServer(New(Config{CoalesceWindow: 50 * time.Microsecond}).Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]any{
		"network": netText(b, netbuild.Bitonic(16)),
		"inputs":  []uint64{0x5a5a, 0x00ff, 0x1234, 0xfedc},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("%d %s", resp.StatusCode, buf.Bytes())
		}
	}
}

// BenchmarkServeOptimalWarm measures /v1/optimal against the shared
// warm memo with the response cache bypassed — the recompute path a
// new-but-identical submission pays after the first client ran.
func BenchmarkServeOptimalWarm(b *testing.B) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]any{
		"network": netText(b, netbuild.OddEvenTransposition(10)),
		"nocache": true,
	})
	warm := func() {
		resp, err := http.Post(ts.URL+"/v1/optimal", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("%d %s", resp.StatusCode, buf.Bytes())
		}
	}
	warm() // cold fill
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm()
	}
}
