// Differential tests for the bit-sliced 0-1 kernel: every exhaustive
// checker must return byte-identical verdicts, witnesses, and fractions
// whether it runs on the compiled SWAR path (Compilable evaluators) or
// on the retained scalar oracle. The external test package lets us pull
// in the real constructions (bitonic, odd-even, random RDNs, shuffle
// registers) without import cycles.
package sortcheck_test

import (
	"math/rand"
	"reflect"
	"testing"

	"shufflenet/internal/delta"
	"shufflenet/internal/netbuild"
	"shufflenet/internal/network"
	"shufflenet/internal/shuffle"
	"shufflenet/internal/sortcheck"
)

// opaque hides the Compilable interface, forcing the scalar path.
type opaque struct{ ev sortcheck.Evaluator }

func (o opaque) Eval(in []int) []int { return o.ev.Eval(in) }

// brokenBitonic returns a sorter (merge-exchange, any width) with one
// comparator deleted from the middle level — a deliberately
// almost-correct non-sorter whose witnesses are sparse.
func brokenBitonic(n int) *network.Network {
	full := netbuild.MergeExchange(n)
	c := network.New(n)
	for i, lv := range full.Levels() {
		if i == full.Depth()/2 && len(lv) > 0 {
			lv = lv[1:]
		}
		c.AddLevel(lv)
	}
	return c
}

// suite returns the networks the kernel must agree with the oracle on:
// sorters, shallow non-sorters, random RDNs, and broken sorters.
func suite(n int, rng *rand.Rand) map[string]sortcheck.Evaluator {
	l := 0
	for 1<<l < n {
		l++
	}
	evs := map[string]sortcheck.Evaluator{
		"merge-exchange": netbuild.MergeExchange(n),
		"broken-sorter":  brokenBitonic(n),
	}
	if 1<<l == n {
		evs["bitonic"] = netbuild.Bitonic(n)
		evs["odd-even"] = netbuild.OddEvenMergeSort(n)
		evs["random-rdn"] = delta.Random(l, 0.7, rng).ToNetwork()
		evs["shuffle-register"] = shuffle.Bitonic(n)
	}
	return evs
}

func TestZeroOneBitsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 6, 8, 10, 12} {
		for name, ev := range suite(n, rng) {
			ok, w := sortcheck.ZeroOne(n, ev, 0)
			okS, wS := sortcheck.ZeroOne(n, opaque{ev}, 0)
			if ok != okS || !reflect.DeepEqual(w, wS) {
				t.Errorf("n=%d %s: bits (%v, %v) != scalar (%v, %v)", n, name, ok, w, okS, wS)
			}
			okO, wO := sortcheck.ZeroOneScalar(n, ev, 0)
			if ok != okO || !reflect.DeepEqual(w, wO) {
				t.Errorf("n=%d %s: bits (%v, %v) != oracle (%v, %v)", n, name, ok, w, okO, wO)
			}
		}
	}
}

func TestZeroOneFractionBitsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 6, 8, 10, 12} {
		for name, ev := range suite(n, rng) {
			got := sortcheck.ZeroOneFraction(n, ev, 0)
			want := sortcheck.ZeroOneFractionScalar(n, ev, 0)
			if got != want {
				t.Errorf("n=%d %s: fraction %v != scalar %v", n, name, got, want)
			}
		}
	}
}

func TestUnsortedWitnessesBitsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 6, 8, 10} {
		for name, ev := range suite(n, rng) {
			for _, limit := range []int{1, 5, 1 << 20} {
				got := sortcheck.UnsortedZeroOneWitnesses(n, ev, limit)
				want := sortcheck.UnsortedZeroOneWitnessesScalar(n, ev, limit)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("n=%d %s limit=%d: witnesses %v != scalar %v", n, name, limit, got, want)
				}
			}
		}
	}
}

// TestZeroOneBitsRandomBlocksWide spot-checks the kernel against the
// scalar oracle at widths near MaxZeroOneWires, where exhaustive
// enumeration is out of reach: random 64-mask blocks, every lane
// compared.
func TestZeroOneBitsRandomBlocksWide(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := sortcheck.MaxZeroOneWires
	c := netbuild.Bitonic(n)
	p := c.Compile()
	bb := network.NewBitBatch(p)
	blocks, laneMask := network.ZeroOneBlocks(n)
	for rep := 0; rep < 8; rep++ {
		block := uint64(rng.Int63n(int64(blocks)))
		bad := bb.Run(block) & laneMask
		for j := 0; j < 64; j++ {
			mask := block*64 + uint64(j)
			in := sortcheck.ZeroOneInput(mask, n)
			sorted := sortcheck.IsSorted(c.Eval(in))
			if gotBad := bad>>uint(j)&1 == 1; gotBad == sorted {
				t.Fatalf("n=%d mask=%d: kernel bad=%v, scalar sorted=%v", n, mask, gotBad, sorted)
			}
		}
	}
}

// TestSortedFractionPathIndependent: the Monte-Carlo estimator promises
// byte-identical results per (seed, workers) regardless of whether the
// evaluator compiles; the compiled fast path must not change streams.
func TestSortedFractionPathIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{8, 16} {
		for name, ev := range suite(n, rng) {
			for _, workers := range []int{1, 2, 4} {
				got := sortcheck.SortedFraction(n, 100, ev, 42, workers)
				want := sortcheck.SortedFraction(n, 100, opaque{ev}, 42, workers)
				if got != want {
					t.Errorf("n=%d %s workers=%d: compiled %v != opaque %v", n, name, workers, got, want)
				}
			}
		}
	}
}

// TestRandomPermsPathIndependent: same contract for RandomPerms — the
// rng is consumed identically on both paths, so verdict and witness
// must match for identical seeds.
func TestRandomPermsPathIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{8, 16} {
		for name, ev := range suite(n, rng) {
			ok, w := sortcheck.RandomPerms(n, 200, ev, rand.New(rand.NewSource(7)))
			okS, wS := sortcheck.RandomPerms(n, 200, opaque{ev}, rand.New(rand.NewSource(7)))
			if ok != okS || !reflect.DeepEqual(w, wS) {
				t.Errorf("n=%d %s: compiled (%v, %v) != opaque (%v, %v)", n, name, ok, w, okS, wS)
			}
		}
	}
}

// TestExhaustivePathIndependent: the permutation checker also uses the
// compiled scalar program when available.
func TestExhaustivePathIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{4, 6} {
		for name, ev := range suite(n, rng) {
			ok, w := sortcheck.Exhaustive(n, ev)
			okS, wS := sortcheck.Exhaustive(n, opaque{ev})
			if ok != okS || !reflect.DeepEqual(w, wS) {
				t.Errorf("n=%d %s: compiled (%v, %v) != opaque (%v, %v)", n, name, ok, w, okS, wS)
			}
		}
	}
}
