package sortcheck

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shufflenet/internal/network"
)

// transposition builds the n-wire odd-even transposition sorting
// network (n rounds); a known-correct sorter used as the positive case.
func transposition(n int) *network.Network {
	c := network.New(n)
	for round := 0; round < n; round++ {
		lv := network.Level{}
		for i := round % 2; i+1 < n; i += 2 {
			lv = append(lv, network.Comparator{Min: i, Max: i + 1})
		}
		c.AddLevel(lv)
	}
	return c
}

func TestIsSorted(t *testing.T) {
	cases := []struct {
		xs   []int
		want bool
	}{
		{nil, true},
		{[]int{1}, true},
		{[]int{1, 1, 2}, true},
		{[]int{2, 1}, false},
		{[]int{0, 1, 1, 0}, false},
	}
	for _, c := range cases {
		if got := IsSorted(c.xs); got != c.want {
			t.Errorf("IsSorted(%v) = %v", c.xs, got)
		}
	}
}

func TestZeroOneInput(t *testing.T) {
	in := ZeroOneInput(0b1011, 5)
	want := []int{1, 1, 0, 1, 0}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("ZeroOneInput = %v, want %v", in, want)
		}
	}
}

func TestZeroOneAcceptsSorter(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8, 12} {
		ok, w := ZeroOne(n, transposition(n), 0)
		if !ok {
			t.Errorf("n=%d: sorter rejected, witness %v", n, w)
		}
	}
}

func TestZeroOneRejectsNonSorterWithWitness(t *testing.T) {
	// Truncated transposition network cannot sort.
	n := 8
	c := transposition(n).Truncate(3)
	ok, w := ZeroOne(n, c, 0)
	if ok {
		t.Fatal("truncated network accepted")
	}
	if IsSorted(c.Eval(w)) {
		t.Fatalf("witness %v does not fail", w)
	}
	for _, v := range w {
		if v != 0 && v != 1 {
			t.Fatalf("witness %v is not a 0-1 input", w)
		}
	}
}

func TestZeroOneParallelConsistency(t *testing.T) {
	n := 10
	c := transposition(n).Truncate(4)
	ok1, _ := ZeroOne(n, c, 1)
	ok8, _ := ZeroOne(n, c, 8)
	if ok1 != ok8 {
		t.Fatal("parallel and sequential ZeroOne disagree")
	}
}

func TestZeroOneFraction(t *testing.T) {
	n := 6
	if f := ZeroOneFraction(n, transposition(n), 0); f != 1.0 {
		t.Errorf("fraction for sorter = %v", f)
	}
	// Depth-0 network sorts exactly the already-sorted 0-1 inputs:
	// n+1 of 2^n.
	empty := network.New(n)
	want := float64(n+1) / 64.0
	if f := ZeroOneFraction(n, empty, 0); f != want {
		t.Errorf("fraction for empty = %v, want %v", f, want)
	}
}

func TestExhaustive(t *testing.T) {
	ok, _ := Exhaustive(5, transposition(5))
	if !ok {
		t.Error("Exhaustive rejected a sorter")
	}
	ok, w := Exhaustive(5, transposition(5).Truncate(2))
	if ok {
		t.Error("Exhaustive accepted a non-sorter")
	}
	if IsSorted(transposition(5).Truncate(2).Eval(w)) {
		t.Errorf("witness %v does not fail", w)
	}
}

func TestExhaustiveAgreesWithZeroOne(t *testing.T) {
	// The 0-1 principle itself: both checks must agree on any network.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 4 + 2*rng.Intn(2) // 4 or 6
		depth := rng.Intn(n + 1)
		c := transposition(n).Truncate(depth)
		zo, _ := ZeroOne(n, c, 0)
		ex, _ := Exhaustive(n, c)
		if zo != ex {
			t.Fatalf("0-1 principle violated?! n=%d depth=%d zo=%v ex=%v", n, depth, zo, ex)
		}
	}
}

func TestRandomPerms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ok, _ := RandomPerms(16, 200, transposition(16), rng)
	if !ok {
		t.Error("RandomPerms rejected a sorter")
	}
	ok, w := RandomPerms(16, 200, transposition(16).Truncate(2), rng)
	if ok {
		t.Skip("random testing may miss shallow failures (unlikely at depth 2)")
	}
	if IsSorted(transposition(16).Truncate(2).Eval(w)) {
		t.Errorf("witness does not fail")
	}
}

func TestSortedFractionBounds(t *testing.T) {
	n := 8
	full := transposition(n)
	if f := SortedFraction(n, 500, full, 7, 0); f != 1.0 {
		t.Errorf("sorter fraction = %v", f)
	}
	empty := network.New(n)
	if f := SortedFraction(n, 2000, empty, 7, 4); f > 0.01 {
		t.Errorf("empty network fraction = %v, want ~ 1/8! ", f)
	}
	if f := SortedFraction(n, 0, full, 7, 0); f != 0 {
		t.Errorf("zero trials should give 0, got %v", f)
	}
}

func TestSortedFractionDeterministic(t *testing.T) {
	n := 8
	c := transposition(n).Truncate(5)
	a := SortedFraction(n, 1000, c, 99, 4)
	b := SortedFraction(n, 1000, c, 99, 4)
	if a != b {
		t.Errorf("same seed gave %v and %v", a, b)
	}
}

func TestInversions(t *testing.T) {
	cases := []struct {
		xs   []int
		want int64
	}{
		{nil, 0},
		{[]int{1, 2, 3}, 0},
		{[]int{3, 2, 1}, 3},
		{[]int{2, 1, 3}, 1},
		{[]int{4, 3, 2, 1}, 6},
		{[]int{1, 3, 2, 4}, 1},
	}
	for _, c := range cases {
		if got := Inversions(c.xs); got != c.want {
			t.Errorf("Inversions(%v) = %d, want %d", c.xs, got, c.want)
		}
	}
}

func TestInversionsMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(10)
		}
		var brute int64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if xs[i] > xs[j] {
					brute++
				}
			}
		}
		return Inversions(xs) == brute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInversionsDoesNotMutate(t *testing.T) {
	xs := []int{3, 1, 2}
	Inversions(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Inversions mutated input")
	}
}

func TestMaxDislocation(t *testing.T) {
	cases := []struct {
		xs   []int
		want int
	}{
		{[]int{1, 2, 3}, 0},
		{[]int{2, 1}, 1},
		{[]int{3, 1, 2}, 2},
		{[]int{4, 1, 2, 3}, 3},
		{[]int{1, 1, 1}, 0}, // ties: stable, no dislocation
		{nil, 0},
	}
	for _, c := range cases {
		if got := MaxDislocation(c.xs); got != c.want {
			t.Errorf("MaxDislocation(%v) = %d, want %d", c.xs, got, c.want)
		}
	}
}

func TestUnsortedZeroOneWitnesses(t *testing.T) {
	n := 6
	c := transposition(n).Truncate(2)
	ws := UnsortedZeroOneWitnesses(n, c, 5)
	if len(ws) == 0 {
		t.Fatal("no witnesses for a non-sorter")
	}
	if len(ws) > 5 {
		t.Fatal("limit not honored")
	}
	for _, mask := range ws {
		if IsSorted(c.Eval(ZeroOneInput(mask, n))) {
			t.Fatalf("mask %b is not a witness", mask)
		}
	}
	if len(UnsortedZeroOneWitnesses(n, transposition(n), 5)) != 0 {
		t.Fatal("sorter has witnesses")
	}
}

func TestGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	wide := MaxZeroOneWires + 1
	mustPanic("ZeroOne too wide", func() { ZeroOne(wide, network.New(wide), 0) })
	mustPanic("ZeroOneScalar too wide", func() { ZeroOneScalar(wide, network.New(wide), 0) })
	mustPanic("Exhaustive too wide", func() { Exhaustive(10, network.New(10)) })
	mustPanic("Fraction too wide", func() { ZeroOneFraction(wide, network.New(wide), 0) })
	mustPanic("FractionScalar too wide", func() { ZeroOneFractionScalar(wide, network.New(wide), 0) })
	mustPanic("Witnesses too wide", func() { UnsortedZeroOneWitnesses(wide, network.New(wide), 1) })
}

// The register model plugs into the same checkers.
func TestRegisterEvaluator(t *testing.T) {
	n := 6
	c := transposition(n)
	reg, place := network.ToRegister(c)
	_ = place
	// The register network sorts iff the circuit does, up to the fixed
	// output placement; sortedness of output is placement-sensitive, so
	// check via the circuit converted back.
	ok, _ := ZeroOne(n, c, 0)
	if !ok {
		t.Fatal("base sorter broken")
	}
	if reg.Size() != c.Size() {
		t.Fatal("conversion changed size")
	}
}
