package sortcheck

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"shufflenet/internal/par"
)

// slowEval wraps a network evaluator while hiding its Compile method,
// forcing the scalar oracle path; after trip evaluations it cancels
// the supplied context — a deterministic mid-scan cancellation.
type slowEval struct {
	inner  Evaluator
	calls  atomic.Int64
	trip   int64
	cancel context.CancelFunc
}

func (e *slowEval) Eval(in []int) []int {
	if e.calls.Add(1) == e.trip {
		e.cancel()
	}
	return e.inner.Eval(in)
}

func TestZeroOneCtxBackgroundMatchesPlain(t *testing.T) {
	n := 12
	sorter := transposition(n)
	ok, _, err := ZeroOneCtx(context.Background(), n, sorter, 0)
	if err != nil || !ok {
		t.Fatalf("sorter rejected: ok=%v err=%v", ok, err)
	}
	bad := transposition(n).Truncate(3)
	ok, w, err := ZeroOneCtx(context.Background(), n, bad, 0)
	if err != nil || ok {
		t.Fatalf("truncated network accepted: ok=%v err=%v", ok, err)
	}
	if IsSorted(bad.Eval(w)) {
		t.Fatalf("witness %v does not fail", w)
	}
}

func TestZeroOneCtxPreCanceledBits(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// *network.Network is Compilable, so this exercises the bit-sliced
	// scan's cancellation path.
	_, _, err := ZeroOneCtx(ctx, 16, transposition(16), 0)
	var ce *par.ErrCanceled
	if !errors.As(err, &ce) || ce.Op != "sortcheck.ZeroOne" {
		t.Fatalf("error = %v, want ErrCanceled{Op: sortcheck.ZeroOne}", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
}

func TestZeroOneScalarCtxCancelMidScan(t *testing.T) {
	n := 20 // 2^20 masks: far more than the trip point
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ev := &slowEval{inner: transposition(n), trip: 4096, cancel: cancel}
	_, _, err := ZeroOneScalarCtx(ctx, n, ev, 0)
	var ce *par.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("mid-scan cancel lost: err = %v after %d evals", err, ev.calls.Load())
	}
	if ce.Op != "sortcheck.ZeroOneScalar" {
		t.Fatalf("Op = %q", ce.Op)
	}
	if ce.MasksChecked <= 0 || ce.MasksChecked >= 1<<n {
		t.Fatalf("MasksChecked = %d, want a proper partial count", ce.MasksChecked)
	}
	if ev.calls.Load() >= 1<<n {
		t.Fatalf("scan ran to completion (%d evals) despite cancel", ev.calls.Load())
	}
}

func TestZeroOneScalarCtxKeepsWitnessAcrossCancel(t *testing.T) {
	// A network that fails on many inputs: even a canceled scan that
	// found a witness before the cancel must surface it.
	n := 16
	bad := transposition(n).Truncate(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ev := &slowEval{inner: bad, trip: 2048, cancel: cancel}
	ok, w, _ := ZeroOneScalarCtx(ctx, n, ev, 0)
	if ok {
		t.Fatal("broken network accepted")
	}
	if w != nil && IsSorted(bad.Eval(w)) {
		t.Fatalf("returned witness %v does not fail", w)
	}
}

func TestZeroOneFractionCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ZeroOneFractionCtx(ctx, 16, transposition(16), 0)
	var ce *par.ErrCanceled
	if !errors.As(err, &ce) || ce.Op != "sortcheck.ZeroOneFraction" {
		t.Fatalf("error = %v, want ErrCanceled{Op: sortcheck.ZeroOneFraction}", err)
	}
}

func TestWitnessesCtxPreCanceledKeepsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ws, err := UnsortedZeroOneWitnessesCtx(ctx, 16, transposition(16).Truncate(2), 8)
	var ce *par.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("error = %v, want *par.ErrCanceled", err)
	}
	// Witnesses collected before the cut (possibly none) stay valid.
	bad := transposition(16).Truncate(2)
	for _, m := range ws {
		if IsSorted(bad.Eval(ZeroOneInput(m, 16))) {
			t.Fatalf("partial witness %b does not fail", m)
		}
	}
}
