// Package sortcheck decides whether comparator networks sort, and
// quantifies how badly they fail when they do not.
//
// The main tool is the 0-1 principle (invoked in Section 5 of the
// paper): a comparator network on n wires sorts all inputs iff it sorts
// all 2^n inputs from {0,1}^n. ZeroOne runs that check exhaustively and
// in parallel, returning a witness on failure. Exhaustive and
// RandomPerms check permutation inputs directly. The metrics
// (Inversions, MaxDislocation) grade partially sorted outputs for the
// average-case experiments.
package sortcheck

import (
	"fmt"
	"math/rand"
	"sort"

	"shufflenet/internal/par"
)

// Evaluator is the view of a comparator network this package needs:
// a pure input-to-output mapping on vectors of a fixed width. Both
// *network.Network and *network.Register satisfy it.
type Evaluator interface {
	Eval(input []int) []int
}

// MaxZeroOneWires bounds the width accepted by ZeroOne: 2^n inputs must
// be enumerable in reasonable time.
const MaxZeroOneWires = 30

// IsSorted reports whether xs is nondecreasing.
func IsSorted(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}

// ZeroOneInput expands the low n bits of mask into a 0-1 vector, with
// bit i of mask becoming entry i.
func ZeroOneInput(mask uint64, n int) []int {
	in := make([]int, n)
	for i := 0; i < n; i++ {
		in[i] = int((mask >> uint(i)) & 1)
	}
	return in
}

// ZeroOne applies the 0-1 principle: it evaluates the network on all
// 2^n inputs from {0,1}^n (in parallel across workers; 0 = GOMAXPROCS)
// and returns ok = true if every output is sorted. On failure, witness
// is the smallest-mask failing 0-1 input. n must be at most
// MaxZeroOneWires.
func ZeroOne(n int, ev Evaluator, workers int) (ok bool, witness []int) {
	if n > MaxZeroOneWires {
		panic(fmt.Sprintf("sortcheck.ZeroOne: n = %d exceeds %d (2^n inputs)", n, MaxZeroOneWires))
	}
	total := 1 << uint(n)
	bad := par.Find(total, workers, func(mask int) bool {
		return !IsSorted(ev.Eval(ZeroOneInput(uint64(mask), n)))
	})
	if bad < 0 {
		return true, nil
	}
	return false, ZeroOneInput(uint64(bad), n)
}

// ZeroOneFraction returns the fraction of the 2^n 0-1 inputs that the
// network sorts, evaluated exhaustively in parallel. n must be at most
// MaxZeroOneWires.
func ZeroOneFraction(n int, ev Evaluator, workers int) float64 {
	if n > MaxZeroOneWires {
		panic(fmt.Sprintf("sortcheck.ZeroOneFraction: n = %d exceeds %d", n, MaxZeroOneWires))
	}
	total := 1 << uint(n)
	good := par.SumInt64(total, workers, func(mask int) int64 {
		if IsSorted(ev.Eval(ZeroOneInput(uint64(mask), n))) {
			return 1
		}
		return 0
	})
	return float64(good) / float64(total)
}

// MaxExhaustiveWires bounds Exhaustive: n! permutations must be
// enumerable.
const MaxExhaustiveWires = 9

// Exhaustive evaluates the network on all n! permutations of
// {0,...,n-1} and returns ok = true if every output is sorted; on
// failure, witness is a failing permutation. n must be at most
// MaxExhaustiveWires.
func Exhaustive(n int, ev Evaluator) (ok bool, witness []int) {
	if n > MaxExhaustiveWires {
		panic(fmt.Sprintf("sortcheck.Exhaustive: n = %d exceeds %d (n! inputs)", n, MaxExhaustiveWires))
	}
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	witness = nil
	permute(data, func(p []int) bool {
		if !IsSorted(ev.Eval(p)) {
			witness = append([]int(nil), p...)
			return false
		}
		return true
	})
	return witness == nil, witness
}

// RandomPerms evaluates the network on trials uniformly random
// permutations drawn from rng and returns ok = true if all outputs are
// sorted; on failure, witness is the first failing permutation found.
func RandomPerms(n, trials int, ev Evaluator, rng *rand.Rand) (ok bool, witness []int) {
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	for t := 0; t < trials; t++ {
		shuffleInts(in, rng)
		if !IsSorted(ev.Eval(in)) {
			return false, append([]int(nil), in...)
		}
	}
	return true, nil
}

// SortedFraction estimates, by Monte Carlo over trials random
// permutations, the probability that the network sorts a uniformly
// random input. Deterministic given seed; trials are split across
// workers (0 = GOMAXPROCS), each with an independent stream derived
// from seed.
func SortedFraction(n, trials int, ev Evaluator, seed int64, workers int) float64 {
	if trials <= 0 {
		return 0
	}
	w := par.Workers(trials, workers)
	good := make([]int64, w)
	counts := make([]int, w)
	for i := 0; i < trials; i++ {
		counts[i%w]++
	}
	done := make(chan struct{})
	for slot := 0; slot < w; slot++ {
		go func(slot int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed + int64(slot)*1_000_003))
			in := make([]int, n)
			for i := range in {
				in[i] = i
			}
			var g int64
			for t := 0; t < counts[slot]; t++ {
				shuffleInts(in, rng)
				if IsSorted(ev.Eval(in)) {
					g++
				}
			}
			good[slot] = g
		}(slot)
	}
	for slot := 0; slot < w; slot++ {
		<-done
	}
	var total int64
	for _, g := range good {
		total += g
	}
	return float64(total) / float64(trials)
}

// Inversions returns the number of inverted pairs (i < j with
// xs[i] > xs[j]) via merge counting in O(n log n).
func Inversions(xs []int) int64 {
	buf := make([]int, len(xs))
	work := append([]int(nil), xs...)
	return mergeCount(work, buf)
}

// MaxDislocation returns the maximum distance between any element's
// position and the position it would occupy in sorted order (ties
// resolved by original position, i.e. stable ranking). A sorted slice
// has dislocation 0.
func MaxDislocation(xs []int) int {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Stable sort indices by value; ties keep original position order.
	sort.SliceStable(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	maxd := 0
	for rank, pos := range idx {
		d := pos - rank
		if d < 0 {
			d = -d
		}
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// UnsortedZeroOneWitnesses returns up to limit 0-1 inputs (as masks)
// that the network fails to sort, scanning masks in increasing order.
func UnsortedZeroOneWitnesses(n int, ev Evaluator, limit int) []uint64 {
	if n > MaxZeroOneWires {
		panic(fmt.Sprintf("sortcheck: n = %d exceeds %d", n, MaxZeroOneWires))
	}
	var out []uint64
	total := uint64(1) << uint(n)
	for mask := uint64(0); mask < total && len(out) < limit; mask++ {
		if !IsSorted(ev.Eval(ZeroOneInput(mask, n))) {
			out = append(out, mask)
		}
	}
	return out
}

func mergeCount(xs, buf []int) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(xs[:mid], buf[:mid]) + mergeCount(xs[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if xs[i] <= xs[j] {
			buf[k] = xs[i]
			i++
		} else {
			buf[k] = xs[j]
			j++
			inv += int64(mid - i)
		}
		k++
	}
	for i < mid {
		buf[k] = xs[i]
		i++
		k++
	}
	for j < n {
		buf[k] = xs[j]
		j++
		k++
	}
	copy(xs, buf[:n])
	return inv
}

// permute invokes f on each permutation of data until f returns false.
func permute(data []int, f func([]int) bool) bool {
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == 1 {
			return f(data)
		}
		for i := 0; i < k; i++ {
			if !rec(k - 1) {
				return false
			}
			if k%2 == 0 {
				data[i], data[k-1] = data[k-1], data[i]
			} else {
				data[0], data[k-1] = data[k-1], data[0]
			}
		}
		return true
	}
	return rec(len(data))
}

func shuffleInts(xs []int, rng *rand.Rand) {
	for i := len(xs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
