// Package sortcheck decides whether comparator networks sort, and
// quantifies how badly they fail when they do not.
//
// The main tool is the 0-1 principle (invoked in Section 5 of the
// paper): a comparator network on n wires sorts all inputs iff it sorts
// all 2^n inputs from {0,1}^n. ZeroOne runs that check exhaustively and
// in parallel, returning a witness on failure. Exhaustive and
// RandomPerms check permutation inputs directly. The metrics
// (Inversions, MaxDislocation) grade partially sorted outputs for the
// average-case experiments.
//
// Whenever the evaluator exposes its network structure (it implements
// network.Compilable — both *network.Network and *network.Register do),
// the exhaustive 0-1 checkers run on the compiled bit-sliced kernel:
// 64 inputs per uint64 lane-set, two bitwise ops per comparator, no
// allocation (network.Program.EvalBits). The scalar enumeration is
// retained as ZeroOneScalar / ZeroOneFractionScalar /
// UnsortedZeroOneWitnessesScalar, the differential-test oracle; both
// paths return identical verdicts and witnesses. Opaque evaluators
// fall back to the scalar path automatically.
package sortcheck

import (
	"context"
	"fmt"
	mathbits "math/bits"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"shufflenet/internal/network"
	"shufflenet/internal/obs"
	"shufflenet/internal/par"
)

// Checker metrics. Counts are flushed at chunk granularity on the
// bit-sliced paths (one atomic per worker chunk), never per mask, so
// the kernel throughput is unaffected. On the scalar oracle paths the
// mask count is the number of masks *settled* in scan order (exact
// when the check passes; on failure the masks at and before the
// witness).
var (
	metMasks      = obs.C("sortcheck.zeroone.masks")
	metWitnesses  = obs.C("sortcheck.zeroone.witnesses")
	metEarlyExits = obs.C("sortcheck.zeroone.early_exits")
	metPerms      = obs.C("sortcheck.perm.inputs")
	metFracTrials = obs.C("sortcheck.sortedfrac.trials")
)

// Evaluator is the view of a comparator network this package needs:
// a pure input-to-output mapping on vectors of a fixed width. Both
// *network.Network and *network.Register satisfy it.
type Evaluator interface {
	Eval(input []int) []int
}

// MaxZeroOneWires bounds the width accepted by ZeroOne: 2^n inputs must
// be enumerable in reasonable time. The bit-sliced kernel settles 64
// inputs per program pass, which is what makes widths this large
// practical (the former cap of 30 predates the kernel; see
// EXPERIMENTS.md for measured throughput).
const MaxZeroOneWires = 32

// compiled returns the bit-slice-capable compiled form of ev when ev
// exposes one of the expected width, and nil otherwise (opaque
// evaluators use the scalar oracle path).
func compiled(n int, ev Evaluator) *network.Program {
	if c, ok := ev.(network.Compilable); ok {
		if p := c.Compile(); p.Wires() == n {
			return p
		}
	}
	return nil
}

// IsSorted reports whether xs is nondecreasing.
func IsSorted(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}

// ZeroOneInput expands the low n bits of mask into a 0-1 vector, with
// bit i of mask becoming entry i.
func ZeroOneInput(mask uint64, n int) []int {
	in := make([]int, n)
	for i := 0; i < n; i++ {
		in[i] = int((mask >> uint(i)) & 1)
	}
	return in
}

// intoEvaluator is the allocation-free evaluation contract
// (network.Program implements it): write the output for input into
// dst, where dst and input may alias.
type intoEvaluator interface {
	EvalInto(dst, input []int)
}

// failsZeroOne returns pred(mask) = "ev does not sort the 0-1 input
// mask". When ev exposes the EvalInto scratch path the predicate
// expands the mask into, and evaluates in, a pooled per-worker buffer —
// zero allocations per mask, which is what keeps the scalar oracle
// usable as a differential baseline at width 20+ (one Eval per mask
// costs two allocations and the GC traffic dominates the comparators).
// Opaque evaluators keep the allocating Eval path.
func failsZeroOne(n int, ev Evaluator) func(mask int) bool {
	ie, ok := ev.(intoEvaluator)
	if !ok {
		return func(mask int) bool {
			return !IsSorted(ev.Eval(ZeroOneInput(uint64(mask), n)))
		}
	}
	var pool = sync.Pool{New: func() any { s := make([]int, n); return &s }}
	return func(mask int) bool {
		bp := pool.Get().(*[]int)
		buf := *bp
		for i := 0; i < n; i++ {
			buf[i] = mask >> uint(i) & 1
		}
		ie.EvalInto(buf, buf)
		bad := !IsSorted(buf)
		pool.Put(bp)
		return bad
	}
}

// ZeroOne applies the 0-1 principle: it evaluates the network on all
// 2^n inputs from {0,1}^n (in parallel across workers; 0 = GOMAXPROCS)
// and returns ok = true if every output is sorted. On failure, witness
// is the smallest-mask failing 0-1 input. n must be at most
// MaxZeroOneWires. Compilable evaluators run on the bit-sliced kernel,
// 64 masks per block; others on the scalar oracle. Both agree exactly.
func ZeroOne(n int, ev Evaluator, workers int) (ok bool, witness []int) {
	ok, witness, _ = ZeroOneCtx(context.Background(), n, ev, workers)
	return ok, witness
}

// ZeroOneCtx is ZeroOne under a context: cancellation is observed once
// per worker chunk (never per mask, so the kernel throughput is
// unchanged). On cancellation it returns a *par.ErrCanceled whose
// MasksChecked field records how many of the 2^n inputs were settled
// before the run was cut short; ok and witness are then meaningless.
func ZeroOneCtx(ctx context.Context, n int, ev Evaluator, workers int) (ok bool, witness []int, err error) {
	if n > MaxZeroOneWires {
		panic(fmt.Sprintf("sortcheck.ZeroOne: n = %d exceeds %d (2^n inputs)", n, MaxZeroOneWires))
	}
	if p := compiled(n, ev); p != nil {
		mask, ok, err := zeroOneBits(ctx, n, p, workers)
		if err != nil {
			return false, nil, err
		}
		if ok {
			return true, nil, nil
		}
		metWitnesses.Inc()
		return false, ZeroOneInput(mask, n), nil
	}
	return ZeroOneScalarCtx(ctx, n, ev, workers)
}

// ZeroOneScalar is the scalar-enumeration 0-1 check: one Eval per mask.
// It is the differential-test oracle for the bit-sliced kernel and the
// fallback for evaluators that cannot be compiled.
func ZeroOneScalar(n int, ev Evaluator, workers int) (ok bool, witness []int) {
	ok, witness, _ = ZeroOneScalarCtx(context.Background(), n, ev, workers)
	return ok, witness
}

// ZeroOneScalarCtx is ZeroOneScalar under a context. The per-mask
// progress counter is only maintained when the context is cancelable,
// so the Background-wrapped oracle path is byte-identical to before.
func ZeroOneScalarCtx(ctx context.Context, n int, ev Evaluator, workers int) (ok bool, witness []int, err error) {
	if n > MaxZeroOneWires {
		panic(fmt.Sprintf("sortcheck.ZeroOne: n = %d exceeds %d (2^n inputs)", n, MaxZeroOneWires))
	}
	total := 1 << uint(n)
	pred := failsZeroOne(n, ev)
	var tried int64
	if ctx.Done() != nil {
		inner := pred
		pred = func(mask int) bool {
			atomic.AddInt64(&tried, 1)
			return inner(mask)
		}
	}
	bad, cerr := par.FindCtx(ctx, total, workers, pred)
	if cerr != nil {
		return false, nil, &par.ErrCanceled{
			Op:           "sortcheck.ZeroOneScalar",
			Cause:        cerr,
			MasksChecked: atomic.LoadInt64(&tried),
		}
	}
	if bad < 0 {
		metMasks.Add(int64(total))
		return true, nil, nil
	}
	metMasks.Add(int64(bad) + 1)
	metWitnesses.Inc()
	return false, ZeroOneInput(uint64(bad), n), nil
}

// zeroOneBits scans all 2^n masks through the bit-sliced kernel in
// 64-wide blocks chunked across workers, returning the smallest failing
// mask (matching the scalar path's witness exactly) or ok = true. On
// cancellation the error carries the number of masks settled so far.
func zeroOneBits(ctx context.Context, n int, p *network.Program, workers int) (firstBad uint64, ok bool, err error) {
	blocks, laneMask := network.ZeroOneBlocks(n)
	lanes := int64(mathbits.OnesCount64(laneMask))
	best := int64(blocks)
	var scanned int64 // blocks settled across all chunks (progress reporting)
	cerr := par.ForEachChunkCtx(ctx, blocks, workers, func(lo, hi int) {
		bb := network.NewBitBatch(p)
		defer bb.FlushMetrics()
		processed := int64(0)
		defer func() {
			metMasks.Add(processed * lanes)
			atomic.AddInt64(&scanned, processed)
		}()
		for b := lo; b < hi; b++ {
			if int64(b) >= atomic.LoadInt64(&best) {
				metEarlyExits.Inc()
				return // a smaller failing block already found
			}
			processed++
			if bb.Run(uint64(b))&laneMask == 0 {
				continue
			}
			for {
				cur := atomic.LoadInt64(&best)
				if int64(b) >= cur || atomic.CompareAndSwapInt64(&best, cur, int64(b)) {
					break
				}
			}
			return
		}
	})
	if cerr != nil {
		return 0, false, &par.ErrCanceled{
			Op:           "sortcheck.ZeroOne",
			Cause:        cerr,
			MasksChecked: atomic.LoadInt64(&scanned) * lanes,
		}
	}
	if best == int64(blocks) {
		return 0, true, nil
	}
	bb := network.NewBitBatch(p)
	bad := bb.Run(uint64(best)) & laneMask
	bb.FlushMetrics()
	return uint64(best)*64 + uint64(mathbits.TrailingZeros64(bad)), false, nil
}

// ZeroOneFraction returns the fraction of the 2^n 0-1 inputs that the
// network sorts, evaluated exhaustively in parallel (bit-sliced for
// Compilable evaluators). n must be at most MaxZeroOneWires.
func ZeroOneFraction(n int, ev Evaluator, workers int) float64 {
	frac, _ := ZeroOneFractionCtx(context.Background(), n, ev, workers)
	return frac
}

// ZeroOneFractionCtx is ZeroOneFraction under a context. On
// cancellation the returned fraction is meaningless (in-flight chunks
// are abandoned) and the *par.ErrCanceled reports the masks settled.
func ZeroOneFractionCtx(ctx context.Context, n int, ev Evaluator, workers int) (float64, error) {
	if n > MaxZeroOneWires {
		panic(fmt.Sprintf("sortcheck.ZeroOneFraction: n = %d exceeds %d", n, MaxZeroOneWires))
	}
	p := compiled(n, ev)
	if p == nil {
		return ZeroOneFractionScalarCtx(ctx, n, ev, workers)
	}
	blocks, laneMask := network.ZeroOneBlocks(n)
	lanes := mathbits.OnesCount64(laneMask)
	var good, scanned int64
	cerr := par.ForEachChunkCtx(ctx, blocks, workers, func(lo, hi int) {
		bb := network.NewBitBatch(p)
		defer bb.FlushMetrics()
		var g int64
		for b := lo; b < hi; b++ {
			g += int64(lanes - mathbits.OnesCount64(bb.Run(uint64(b))&laneMask))
		}
		atomic.AddInt64(&good, g)
		atomic.AddInt64(&scanned, int64(hi-lo))
	})
	if cerr != nil {
		return 0, &par.ErrCanceled{
			Op:           "sortcheck.ZeroOneFraction",
			Cause:        cerr,
			MasksChecked: atomic.LoadInt64(&scanned) * int64(lanes),
		}
	}
	total := int64(1) << uint(n)
	metMasks.Add(total)
	metWitnesses.Add(total - good)
	return float64(good) / float64(total), nil
}

// ZeroOneFractionScalar is the scalar-enumeration sorted fraction (the
// differential-test oracle for ZeroOneFraction).
func ZeroOneFractionScalar(n int, ev Evaluator, workers int) float64 {
	frac, _ := ZeroOneFractionScalarCtx(context.Background(), n, ev, workers)
	return frac
}

// ZeroOneFractionScalarCtx is ZeroOneFractionScalar under a context.
func ZeroOneFractionScalarCtx(ctx context.Context, n int, ev Evaluator, workers int) (float64, error) {
	if n > MaxZeroOneWires {
		panic(fmt.Sprintf("sortcheck.ZeroOneFraction: n = %d exceeds %d", n, MaxZeroOneWires))
	}
	total := 1 << uint(n)
	var tried int64
	countTried := ctx.Done() != nil
	fails := failsZeroOne(n, ev)
	good, cerr := par.SumInt64Ctx(ctx, total, workers, func(mask int) int64 {
		if countTried {
			atomic.AddInt64(&tried, 1)
		}
		if !fails(mask) {
			return 1
		}
		return 0
	})
	if cerr != nil {
		return 0, &par.ErrCanceled{
			Op:           "sortcheck.ZeroOneFractionScalar",
			Cause:        cerr,
			MasksChecked: atomic.LoadInt64(&tried),
		}
	}
	metMasks.Add(int64(total))
	metWitnesses.Add(int64(total) - good)
	return float64(good) / float64(total), nil
}

// MaxExhaustiveWires bounds Exhaustive: n! permutations must be
// enumerable.
const MaxExhaustiveWires = 9

// Exhaustive evaluates the network on all n! permutations of
// {0,...,n-1} and returns ok = true if every output is sorted; on
// failure, witness is a failing permutation. n must be at most
// MaxExhaustiveWires.
func Exhaustive(n int, ev Evaluator) (ok bool, witness []int) {
	if n > MaxExhaustiveWires {
		panic(fmt.Sprintf("sortcheck.Exhaustive: n = %d exceeds %d (n! inputs)", n, MaxExhaustiveWires))
	}
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	p := compiled(n, ev)
	out := make([]int, n)
	witness = nil
	checked := int64(0)
	permute(data, func(in []int) bool {
		checked++
		if p != nil {
			p.EvalInto(out, in)
		} else {
			out = ev.Eval(in)
		}
		if !IsSorted(out) {
			witness = append([]int(nil), in...)
			return false
		}
		return true
	})
	metPerms.Add(checked)
	if witness != nil {
		metWitnesses.Inc()
	}
	return witness == nil, witness
}

// RandomPerms evaluates the network on trials uniformly random
// permutations drawn from rng and returns ok = true if all outputs are
// sorted; on failure, witness is the first failing permutation found.
// Compilable evaluators run through the compiled program into a reused
// buffer (no per-trial allocation).
func RandomPerms(n, trials int, ev Evaluator, rng *rand.Rand) (ok bool, witness []int) {
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	p := compiled(n, ev)
	out := make([]int, n)
	for t := 0; t < trials; t++ {
		shuffleInts(in, rng)
		if p != nil {
			p.EvalInto(out, in)
		} else {
			out = ev.Eval(in)
		}
		if !IsSorted(out) {
			metPerms.Add(int64(t) + 1)
			metWitnesses.Inc()
			return false, append([]int(nil), in...)
		}
	}
	metPerms.Add(int64(trials))
	return true, nil
}

// SortedFraction estimates, by Monte Carlo over trials random
// permutations, the probability that the network sorts a uniformly
// random input. Deterministic given seed; trials are split across
// workers (0 = GOMAXPROCS), each with an independent stream derived
// from seed. The slot layout (slot s runs ceil/floor(trials/w) trials
// on stream seed + s*1_000_003) is part of the contract: results are
// byte-identical for a given (seed, workers) regardless of evaluation
// path.
func SortedFraction(n, trials int, ev Evaluator, seed int64, workers int) float64 {
	if trials <= 0 {
		return 0
	}
	w := par.Workers(trials, workers)
	counts := make([]int, w)
	for i := 0; i < trials; i++ {
		counts[i%w]++
	}
	p := compiled(n, ev)
	metFracTrials.Add(int64(trials))
	var good int64
	// Grain 1: there are only w slot-chunks, each carrying a full share
	// of the trials, so the small-n sequential fallback must not fire.
	par.ForEachChunkGrain(w, w, 1, func(lo, hi int) {
		in := make([]int, n)
		out := make([]int, n)
		var g int64
		for slot := lo; slot < hi; slot++ {
			rng := rand.New(rand.NewSource(seed + int64(slot)*1_000_003))
			for i := range in {
				in[i] = i
			}
			for t := 0; t < counts[slot]; t++ {
				shuffleInts(in, rng)
				if p != nil {
					p.EvalInto(out, in)
				} else {
					out = ev.Eval(in)
				}
				if IsSorted(out) {
					g++
				}
			}
		}
		atomic.AddInt64(&good, g)
	})
	return float64(good) / float64(trials)
}

// Inversions returns the number of inverted pairs (i < j with
// xs[i] > xs[j]) via merge counting in O(n log n).
func Inversions(xs []int) int64 {
	buf := make([]int, len(xs))
	work := append([]int(nil), xs...)
	return mergeCount(work, buf)
}

// MaxDislocation returns the maximum distance between any element's
// position and the position it would occupy in sorted order (ties
// resolved by original position, i.e. stable ranking). A sorted slice
// has dislocation 0.
func MaxDislocation(xs []int) int {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Stable sort indices by value; ties keep original position order.
	sort.SliceStable(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	maxd := 0
	for rank, pos := range idx {
		d := pos - rank
		if d < 0 {
			d = -d
		}
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// UnsortedZeroOneWitnesses returns up to limit 0-1 inputs (as masks)
// that the network fails to sort, scanning masks in increasing order
// (bit-sliced for Compilable evaluators, 64 masks per step).
func UnsortedZeroOneWitnesses(n int, ev Evaluator, limit int) []uint64 {
	out, _ := UnsortedZeroOneWitnessesCtx(context.Background(), n, ev, limit)
	return out
}

// witnessProbeStride is how many blocks (64 masks each on the
// bit-sliced path, single masks on the scalar path) the witness scans
// settle between context probes. The scan is sequential, so the probe
// cost is a select every stride iterations — invisible next to the
// evaluations themselves.
const witnessProbeStride = 2048

// UnsortedZeroOneWitnessesCtx is UnsortedZeroOneWitnesses under a
// context. On cancellation the witnesses found so far are returned —
// they remain valid failing inputs — alongside a *par.ErrCanceled
// whose MasksChecked records how far the scan got.
func UnsortedZeroOneWitnessesCtx(ctx context.Context, n int, ev Evaluator, limit int) ([]uint64, error) {
	if n > MaxZeroOneWires {
		panic(fmt.Sprintf("sortcheck: n = %d exceeds %d", n, MaxZeroOneWires))
	}
	p := compiled(n, ev)
	if p == nil {
		return UnsortedZeroOneWitnessesScalarCtx(ctx, n, ev, limit)
	}
	done := ctx.Done()
	var out []uint64
	blocks, laneMask := network.ZeroOneBlocks(n)
	lanes := int64(mathbits.OnesCount64(laneMask))
	bb := network.NewBitBatch(p)
	defer bb.FlushMetrics()
	scanned := int64(0)
	for b := 0; b < blocks && len(out) < limit; b++ {
		if done != nil && scanned%witnessProbeStride == 0 {
			select {
			case <-done:
				metMasks.Add(scanned * lanes)
				metWitnesses.Add(int64(len(out)))
				return out, &par.ErrCanceled{
					Op:           "sortcheck.UnsortedZeroOneWitnesses",
					Cause:        ctx.Err(),
					MasksChecked: scanned * lanes,
				}
			default:
			}
		}
		scanned++
		bad := bb.Run(uint64(b)) & laneMask
		for bad != 0 && len(out) < limit {
			j := mathbits.TrailingZeros64(bad)
			out = append(out, uint64(b)*64+uint64(j))
			bad &= bad - 1
		}
	}
	metMasks.Add(scanned * lanes)
	metWitnesses.Add(int64(len(out)))
	return out, nil
}

// UnsortedZeroOneWitnessesScalar is the scalar-enumeration witness scan
// (the differential-test oracle for UnsortedZeroOneWitnesses).
func UnsortedZeroOneWitnessesScalar(n int, ev Evaluator, limit int) []uint64 {
	out, _ := UnsortedZeroOneWitnessesScalarCtx(context.Background(), n, ev, limit)
	return out
}

// UnsortedZeroOneWitnessesScalarCtx is the ctx-aware scalar witness
// scan, with the same partial-result contract as the bit-sliced path.
func UnsortedZeroOneWitnessesScalarCtx(ctx context.Context, n int, ev Evaluator, limit int) ([]uint64, error) {
	if n > MaxZeroOneWires {
		panic(fmt.Sprintf("sortcheck: n = %d exceeds %d", n, MaxZeroOneWires))
	}
	done := ctx.Done()
	var out []uint64
	fails := failsZeroOne(n, ev)
	total := uint64(1) << uint(n)
	mask := uint64(0)
	for ; mask < total && len(out) < limit; mask++ {
		if done != nil && mask%witnessProbeStride == 0 {
			select {
			case <-done:
				metMasks.Add(int64(mask))
				metWitnesses.Add(int64(len(out)))
				return out, &par.ErrCanceled{
					Op:           "sortcheck.UnsortedZeroOneWitnessesScalar",
					Cause:        ctx.Err(),
					MasksChecked: int64(mask),
				}
			default:
			}
		}
		if fails(int(mask)) {
			out = append(out, mask)
		}
	}
	metMasks.Add(int64(mask))
	metWitnesses.Add(int64(len(out)))
	return out, nil
}

func mergeCount(xs, buf []int) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(xs[:mid], buf[:mid]) + mergeCount(xs[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if xs[i] <= xs[j] {
			buf[k] = xs[i]
			i++
		} else {
			buf[k] = xs[j]
			j++
			inv += int64(mid - i)
		}
		k++
	}
	for i < mid {
		buf[k] = xs[i]
		i++
		k++
	}
	for j < n {
		buf[k] = xs[j]
		j++
		k++
	}
	copy(xs, buf[:n])
	return inv
}

// permute invokes f on each permutation of data until f returns false.
func permute(data []int, f func([]int) bool) bool {
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == 1 {
			return f(data)
		}
		for i := 0; i < k; i++ {
			if !rec(k - 1) {
				return false
			}
			if k%2 == 0 {
				data[i], data[k-1] = data[k-1], data[i]
			} else {
				data[0], data[k-1] = data[k-1], data[0]
			}
		}
		return true
	}
	return rec(len(data))
}

func shuffleInts(xs []int, rng *rand.Rand) {
	for i := len(xs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
