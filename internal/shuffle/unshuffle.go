package shuffle

import (
	"fmt"

	"shufflenet/internal/bits"
	"shufflenet/internal/network"
	"shufflenet/internal/perm"
)

// UnshufflePass appends one full unshuffle pass (d = lg n steps, each
// an unshuffle followed by chosen ops) to r. After c unshuffles,
// register x holds the wire rotLeft^c(x), so the register pair
// (2m, 2m+1) holds wires differing in bit (c mod d): an unshuffle pass
// visits the dimensions 1, 2, ..., d−1, 0 — the mirror complement of
// the shuffle pass's d−1, ..., 1, 0. Machines allowed both passes are
// the paper's "ascend-descend" class (Section 1), for which the lower
// bound provably does not hold.
func UnshufflePass(r *network.Register, choose OpChooser) {
	n := r.Registers()
	d := bits.Lg(n)
	unsh := perm.Unshuffle(n)
	for c := 1; c <= d; c++ {
		t := c % d // dimension compared at this step
		ops := make([]network.Op, n/2)
		for m := 0; m < n/2; m++ {
			u := bits.RotLeftBy(2*m, d, c)
			v := bits.RotLeftBy(2*m+1, d, c)
			if u^v != 1<<uint(t) {
				panic(fmt.Sprintf("shuffle.UnshufflePass: internal: wires %d,%d at step %d do not differ in bit %d", u, v, c, t))
			}
			low := u
			if low&(1<<uint(t)) != 0 {
				low = v
			}
			op := choose(t, low)
			if op == network.OpPlus || op == network.OpMinus {
				if low == v {
					if op == network.OpPlus {
						op = network.OpMinus
					} else {
						op = network.OpPlus
					}
				}
			}
			ops[m] = op
		}
		r.AddStep(network.Step{Pi: unsh, Ops: ops})
	}
}

// RouteShuffleUnshuffle returns a register network of exactly one
// shuffle pass followed by one unshuffle pass (2 lg n steps, no
// comparators) that realizes the permutation target:
// out[target[i]] = in[i] for every input.
//
// The two passes visit the dimension sequence
//
//	d−1, ..., 1, 0, 1, ..., d−1, (0)
//
// whose first 2d−1 stages form a Beneš network with the outermost
// column on dimension d−1; the trailing dimension-0 stage is left as
// all-pass. Switch settings come from the looping algorithm run on
// that MSB-outermost recursion.
//
// Contrast with RoutePermutation (strict shuffle machine, lg²n steps):
// allowing the unshuffle turns routing from a sorting-depth problem
// into a 2-pass one — the constructive face of the ascend vs.
// ascend-descend separation the paper's introduction draws.
func RouteShuffleUnshuffle(target perm.Perm) *network.Register {
	n := target.Len()
	d := bits.Lg(n)
	target.MustValid()

	// swaps[s] holds, for stage s in [1, 2d-1], the set of pairs to
	// exchange, keyed by the pair's wire with the stage dimension bit 0.
	swaps := make([]map[int]bool, 2*d)
	for s := range swaps {
		swaps[s] = map[int]bool{}
	}
	solveMSB(target, d, 0, 0, swaps)

	r := network.NewRegister(n)
	// Shuffle pass: step c handles dimension d−c, i.e. stage c.
	Pass(r, func(t, u int) network.Op {
		if swaps[d-t][u] {
			return network.OpSwap
		}
		return network.OpNone
	})
	// Unshuffle pass: step c < d handles dimension c, i.e. stage d + c;
	// the final step (dimension 0 again) is all-pass.
	UnshufflePass(r, func(t, u int) network.Op {
		if t == 0 {
			return network.OpNone // trailing redundant stage
		}
		if swaps[d+t][u] {
			return network.OpSwap
		}
		return network.OpNone
	})

	// Self-check: replay.
	probe := make([]int, n)
	for i := range probe {
		probe[i] = i
	}
	out := r.Eval(probe)
	for i := range probe {
		if out[target[i]] != i {
			panic(fmt.Sprintf("shuffle.RouteShuffleUnshuffle: internal: settings do not realize %v", target))
		}
	}
	return r
}

// solveMSB runs the looping algorithm on the MSB-outermost Beneš
// recursion: the subproblem covers the 2^k wires {high<<k | x}, its
// outer columns are stage `depth+1` (input side) and `2d-1-depth`
// (output side) on dimension k−1, and its two sub-problems are the
// halves with bit k−1 fixed. target is local (length 2^k).
func solveMSB(target perm.Perm, d, depth, high int, swaps []map[int]bool) {
	k := d - depth
	m := 1 << uint(k)
	if m == 2 {
		// Middle column, stage d, dimension 0.
		if target[0] == 1 {
			swaps[d][high<<1] = true
		}
		return
	}
	h := m / 2
	inv := target.Inverse()

	// side[x] = half occupied by the value entering local wire x during
	// the inner stages. Partner constraints as in package benes, with
	// the pairing x ↔ x^h.
	side := make([]int, m)
	for i := range side {
		side[i] = -1
	}
	for start := 0; start < m; start++ {
		if side[start] != -1 {
			continue
		}
		for x := start; side[x] == -1; x = inv[target[x^h]^h] {
			side[x] = 0
			side[x^h] = 1
		}
	}

	inStage, outStage := depth+1, 2*d-1-depth
	sub := [2]perm.Perm{make(perm.Perm, h), make(perm.Perm, h)}
	for x := 0; x < m; x++ {
		s := side[x]
		// Input column: pair (x mod h, x mod h + h); value at x must
		// move to half s.
		if x < h && s == 1 || x >= h && s == 0 {
			swaps[inStage][high<<uint(k)|(x%h)] = true
		}
		// Sub-target: within half s, position x%h must reach
		// target[x]%h.
		sub[s][x%h] = target[x] % h
		// Output column: the value for output y sits at half s
		// position y%h; swap if bit k-1 of y differs from s.
		y := target[x]
		if (y >= h) != (s == 1) {
			swaps[outStage][high<<uint(k)|(y%h)] = true
		}
	}
	// Both members of a crossing pair mark the same map key (partners
	// have opposite sides, so they cross together); the map makes the
	// double mark idempotent.
	solveMSB(sub[0], d, depth+1, high<<1, swaps)
	solveMSB(sub[1], d, depth+1, high<<1|1, swaps)
}
