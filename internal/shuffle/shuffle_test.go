package shuffle

import (
	"math/rand"
	"testing"

	"shufflenet/internal/bits"
	"shufflenet/internal/network"
	"shufflenet/internal/perm"
	"shufflenet/internal/sortcheck"
)

func TestIdentityPassRestoresContents(t *testing.T) {
	for _, n := range []int{2, 4, 8, 32} {
		r := network.NewRegister(n)
		IdentityPass(r)
		in := []int(perm.Random(n, rand.New(rand.NewSource(1))))
		out := r.Eval(in)
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("n=%d: identity pass moved data: %v -> %v", n, in, out)
			}
		}
		if r.Depth() != bits.Lg(n) {
			t.Fatalf("n=%d: pass depth %d", n, r.Depth())
		}
	}
}

func TestPassIsShuffleBased(t *testing.T) {
	r := Bitonic(16)
	if !r.IsShuffleBased() {
		t.Fatal("Stone bitonic is not shuffle-based?!")
	}
}

// One all-OpPlus pass = butterfly: its circuit conversion must compare
// dimensions d-1, ..., 0 in order.
func TestButterflyPassDimensions(t *testing.T) {
	n := 16
	d := bits.Lg(n)
	r := Butterfly(n)
	circ, _ := network.FromRegister(r)
	if circ.Depth() != d {
		t.Fatalf("depth %d", circ.Depth())
	}
	for li, lv := range circ.Levels() {
		wantDim := d - 1 - li
		if len(lv) != n/2 {
			t.Fatalf("level %d has %d comparators", li, len(lv))
		}
		for _, cm := range lv {
			if cm.Min^cm.Max != 1<<uint(wantDim) {
				t.Fatalf("level %d comparator (%d,%d) not on dimension %d",
					li, cm.Min, cm.Max, wantDim)
			}
			if cm.Min > cm.Max {
				t.Fatalf("butterfly comparator reversed: (%d,%d)", cm.Min, cm.Max)
			}
		}
	}
}

func TestStoneBitonicSortsSmall(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		r := Bitonic(n)
		ok, w := sortcheck.ZeroOne(n, evalSortedness{r}, 0)
		if !ok {
			t.Fatalf("Stone bitonic n=%d fails on %v", n, w)
		}
	}
}

func TestStoneBitonicSortsLarge(t *testing.T) {
	for _, n := range []int{64, 256} {
		r := Bitonic(n)
		rng := rand.New(rand.NewSource(3))
		ok, w := sortcheck.RandomPerms(n, 100, evalSortedness{r}, rng)
		if !ok {
			t.Fatalf("Stone bitonic n=%d fails on %v", n, w)
		}
	}
}

func TestStoneBitonicDepth(t *testing.T) {
	for _, n := range []int{4, 16, 128} {
		d := bits.Lg(n)
		r := Bitonic(n)
		if r.Depth() != d*d {
			t.Errorf("n=%d: depth %d, want %d", n, r.Depth(), d*d)
		}
	}
}

// The circuit conversion of Stone's network must equal Batcher's
// bitonic network in comparator count.
func TestStoneBitonicMatchesCircuitSize(t *testing.T) {
	n := 32
	d := bits.Lg(n)
	r := Bitonic(n)
	if got, want := r.Size(), n*d*(d+1)/4; got != want {
		t.Errorf("size = %d, want %d", got, want)
	}
}

func TestRoutePermutationIdentity(t *testing.T) {
	n := 8
	r := RoutePermutation(perm.Identity(n))
	in := []int{10, 11, 12, 13, 14, 15, 16, 17}
	out := r.Eval(in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("identity routing moved data: %v", out)
		}
	}
	if r.Size() != 0 {
		t.Errorf("routing network contains %d comparators; must be comparator-free", r.Size())
	}
}

func TestRoutePermutationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{2, 4, 8, 16, 64} {
		for trial := 0; trial < 5; trial++ {
			target := perm.Random(n, rng)
			r := RoutePermutation(target)
			if !r.IsShuffleBased() {
				t.Fatal("routing network not shuffle-based")
			}
			in := []int(perm.Random(n, rng))
			out := r.Eval(in)
			for i := range in {
				if out[target[i]] != in[i] {
					t.Fatalf("n=%d: value %d (reg %d) should be at %d; out=%v",
						n, in[i], i, target[i], out)
				}
			}
		}
	}
}

func TestRoutePermutationSpecific(t *testing.T) {
	// Bit reversal, a classically hard permutation for single-pass
	// networks.
	for _, n := range []int{8, 32} {
		target := perm.BitReversal(n)
		r := RoutePermutation(target)
		in := make([]int, n)
		for i := range in {
			in[i] = 100 + i
		}
		out := r.Eval(in)
		for i := range in {
			if out[target[i]] != in[i] {
				t.Fatalf("bit-reversal routing failed at %d", i)
			}
		}
	}
}

func TestRoutePermutationDataIndependent(t *testing.T) {
	// The same network must route every input the same way (it contains
	// no comparators, only fixed swaps).
	n := 16
	rng := rand.New(rand.NewSource(23))
	target := perm.Random(n, rng)
	r := RoutePermutation(target)
	for trial := 0; trial < 10; trial++ {
		in := []int(perm.Random(n, rng))
		out := r.Eval(in)
		for i := range in {
			if out[target[i]] != in[i] {
				t.Fatal("routing depends on data")
			}
		}
	}
}

// evalSortedness adapts a register network for sortcheck: sortedness of
// the register contents in register order is the right criterion for
// Stone's bitonic network, which sorts into register order.
type evalSortedness struct{ r *network.Register }

func (e evalSortedness) Eval(in []int) []int { return e.r.Eval(in) }
