package shuffle

import (
	"math/rand"
	"testing"

	"shufflenet/internal/bits"
	"shufflenet/internal/network"
	"shufflenet/internal/perm"
)

func TestUnshufflePassIdentity(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		r := network.NewRegister(n)
		UnshufflePass(r, func(t, u int) network.Op { return network.OpNone })
		in := []int(perm.Random(n, rand.New(rand.NewSource(1))))
		out := r.Eval(in)
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("n=%d: empty unshuffle pass moved data", n)
			}
		}
	}
}

func TestUnshufflePassDimensions(t *testing.T) {
	// An all-OpPlus unshuffle pass must compare dimensions 1, ..., d-1, 0.
	n := 16
	d := bits.Lg(n)
	r := network.NewRegister(n)
	UnshufflePass(r, func(t, u int) network.Op { return network.OpPlus })
	circ, _ := network.FromRegister(r)
	want := []int{1, 2, 3, 0}
	for li, lv := range circ.Levels() {
		for _, cm := range lv {
			if cm.Min^cm.Max != 1<<uint(want[li]) {
				t.Fatalf("level %d comparator (%d,%d): want dimension %d", li, cm.Min, cm.Max, want[li])
			}
		}
	}
	_ = d
}

func TestUnshufflePassDirections(t *testing.T) {
	// OpPlus must put the min on the wire with the dimension bit 0,
	// matching Pass's convention.
	n := 8
	r := network.NewRegister(n)
	UnshufflePass(r, func(t, u int) network.Op { return network.OpPlus })
	circ, _ := network.FromRegister(r)
	for _, lv := range circ.Levels() {
		for _, cm := range lv {
			if cm.Min > cm.Max {
				t.Fatalf("comparator (%d,%d): min wire above max", cm.Min, cm.Max)
			}
		}
	}
}

func TestRouteShuffleUnshuffleIdentity(t *testing.T) {
	for _, n := range []int{2, 4, 8, 32} {
		r := RouteShuffleUnshuffle(perm.Identity(n))
		in := make([]int, n)
		for i := range in {
			in[i] = 50 + i
		}
		out := r.Eval(in)
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("n=%d: identity route moved data: %v", n, out)
			}
		}
		if r.Size() != 0 {
			t.Fatalf("route contains comparators")
		}
		if r.Depth() != 2*bits.Lg(n) {
			t.Fatalf("n=%d: depth %d, want 2 lg n = %d", n, r.Depth(), 2*bits.Lg(n))
		}
	}
}

func TestRouteShuffleUnshuffleAllPermsN4(t *testing.T) {
	var rec func(p []int, used []bool)
	rec = func(p []int, used []bool) {
		if len(p) == 4 {
			checkRoute2(t, perm.Perm(append([]int(nil), p...)))
			return
		}
		for v := 0; v < 4; v++ {
			if !used[v] {
				used[v] = true
				rec(append(p, v), used)
				used[v] = false
			}
		}
	}
	rec(nil, make([]bool, 4))
}

func TestRouteShuffleUnshuffleAllPermsN8(t *testing.T) {
	var rec func(p []int, used []bool)
	count := 0
	rec = func(p []int, used []bool) {
		if len(p) == 8 {
			checkRoute2(t, perm.Perm(append([]int(nil), p...)))
			count++
			return
		}
		for v := 0; v < 8; v++ {
			if !used[v] {
				used[v] = true
				rec(append(p, v), used)
				used[v] = false
			}
		}
	}
	rec(nil, make([]bool, 8))
	if count != 40320 {
		t.Fatalf("enumerated %d permutations", count)
	}
}

func TestRouteShuffleUnshuffleRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{16, 64, 256, 1024} {
		for trial := 0; trial < 5; trial++ {
			checkRoute2(t, perm.Random(n, rng))
		}
	}
}

func TestRouteShuffleUnshuffleNamed(t *testing.T) {
	for _, n := range []int{8, 64} {
		checkRoute2(t, perm.BitReversal(n))
		checkRoute2(t, perm.Shuffle(n))
		checkRoute2(t, perm.Unshuffle(n))
	}
}

// The step permutations must literally be one shuffle pass then one
// unshuffle pass.
func TestRouteShuffleUnshuffleIsTwoPasses(t *testing.T) {
	n := 16
	d := bits.Lg(n)
	r := RouteShuffleUnshuffle(perm.BitReversal(n))
	sh, unsh := perm.Shuffle(n), perm.Unshuffle(n)
	for i, st := range r.Steps() {
		want := sh
		if i >= d {
			want = unsh
		}
		if st.Pi == nil || !st.Pi.Equal(want) {
			t.Fatalf("step %d: wrong permutation", i)
		}
	}
}

func checkRoute2(t *testing.T, target perm.Perm) {
	t.Helper()
	n := target.Len()
	r := RouteShuffleUnshuffle(target)
	in := make([]int, n)
	for i := range in {
		in[i] = 1000 + i
	}
	out := r.Eval(in)
	for i := range in {
		if out[target[i]] != in[i] {
			t.Fatalf("n=%d: misrouted %v (input %d should reach %d): %v", n, target, i, target[i], out)
		}
	}
}
