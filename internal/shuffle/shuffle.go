// Package shuffle builds comparator networks in the paper's central
// class: register-model networks in which every step's permutation is
// the perfect shuffle (Π_i = π for all i, Section 1).
//
// The key structural fact (Leighton [7, §3.8], used implicitly
// throughout the paper) is that one "pass" of d = lg n consecutive
// shuffle steps emulates a butterfly: after c shuffles, the register
// pair (2m, 2m+1) holds the values of the two conceptual wires whose
// indices differ exactly in bit d−c. Pass exposes that correspondence;
// Bitonic stacks d passes into Stone's shuffle-exchange realization of
// Batcher's bitonic sorter, the Θ(lg²n) upper bound the paper cites.
package shuffle

import (
	"fmt"

	"shufflenet/internal/bits"
	"shufflenet/internal/network"
	"shufflenet/internal/perm"
)

// OpChooser selects the operation for one comparator position during a
// shuffle pass. It receives the dimension t being compared at this step
// (bit index, counting from d−1 down to 0 within a pass) and the
// conceptual wire index u whose bit t is 0; its partner is u | 1<<t.
// Returning OpPlus places the smaller value on wire u; OpMinus places
// the larger value on wire u; OpNone and OpSwap are passed through.
type OpChooser func(t, u int) network.Op

// Pass appends one full shuffle pass (d = lg n steps, each a shuffle
// followed by the ops that choose selects) to r. After a complete pass
// every value is back on its original register (shuffle^d = identity),
// so passes compose: wire u in one pass is wire u in the next.
//
// Step c (1-based) of the pass compares, at register pair (2m, 2m+1),
// the wires u = rotRight^c(2m) and u | 1<<(d−c).
func Pass(r *network.Register, choose OpChooser) {
	n := r.Registers()
	d := bits.Lg(n)
	sh := perm.Shuffle(n)
	for c := 1; c <= d; c++ {
		t := d - c // dimension compared at this step
		ops := make([]network.Op, n/2)
		for m := 0; m < n/2; m++ {
			// Wire held by register 2m after c shuffles.
			u := bits.RotLeftBy(2*m, d, -c)
			v := bits.RotLeftBy(2*m+1, d, -c)
			if u^v != 1<<uint(t) {
				panic(fmt.Sprintf("shuffle.Pass: internal: wires %d,%d at step %d do not differ in bit %d", u, v, c, t))
			}
			low := u // the wire with bit t == 0
			if low&(1<<uint(t)) != 0 {
				low = v
			}
			op := choose(t, low)
			if op == network.OpPlus || op == network.OpMinus {
				// choose's convention is wire-based: OpPlus means the
				// smaller value lands on wire low. If low sits at
				// register 2m+1, the register-level op flips.
				if low == v {
					if op == network.OpPlus {
						op = network.OpMinus
					} else {
						op = network.OpPlus
					}
				}
			}
			ops[m] = op
		}
		r.AddStep(network.Step{Pi: sh, Ops: ops})
	}
}

// IdentityPass appends d shuffle steps with no operations: a full
// barrel roll that returns every value to its original register.
func IdentityPass(r *network.Register) {
	Pass(r, func(t, u int) network.Op { return network.OpNone })
}

// Bitonic returns Stone's shuffle-exchange realization of Batcher's
// bitonic sorting network on n = 2^d registers: d passes of d shuffle
// steps each (depth d² = lg²n, every step's permutation the perfect
// shuffle). Pass s (1-based) performs the stage-s bitonic merge on
// dimensions s−1, ..., 0 during its last s steps; its first d−s steps
// only shuffle.
func Bitonic(n int) *network.Register {
	d := bits.Lg(n)
	r := network.NewRegister(n)
	for s := 1; s <= d; s++ {
		k := 1 << uint(s)
		pass := s
		Pass(r, func(t, u int) network.Op {
			if t >= pass {
				return network.OpNone // waiting steps of this pass
			}
			// Circuit bitonic: comparator between u and u|1<<t is
			// ascending (min at u) iff u & k == 0.
			if u&k == 0 {
				return network.OpPlus
			}
			return network.OpMinus
		})
	}
	return r
}

// Butterfly returns a single ascending shuffle pass with a comparator
// at every position (all OpPlus): the shuffle-based emulation of one
// d-level butterfly with all comparators directed toward the
// higher-indexed wire. This is the canonical depth-lg n reverse delta
// network in shuffle form.
func Butterfly(n int) *network.Register {
	r := network.NewRegister(n)
	Pass(r, func(t, u int) network.Op { return network.OpPlus })
	return r
}

// RoutePermutation returns a shuffle-based register network containing
// only "0"/"1" (pass/exchange) elements that realizes the permutation
// target: for every input x, out[target[i]] = x[i].
//
// Construction ("routing by sorting", the standard data-independent
// technique): run Stone's bitonic network on the destination tags
// offline, record each comparator's exchange decision, and replay the
// decisions as fixed OpSwap/OpNone elements. The depth is lg²n — not
// the optimal 3 lg n − 4 of Parker / Linial–Tarsi / Varma–Raghavendra
// cited by the paper, but exact and sufficient for realizing the
// arbitrary inter-block permutations the paper's model allows (see
// DESIGN.md, substitutions).
func RoutePermutation(target perm.Perm) *network.Register {
	n := target.Len()
	target.MustValid()
	d := bits.Lg(n)

	// Offline simulation state: tags[r] = destination of the value
	// currently in register r.
	tags := make([]int, n)
	copy(tags, target)
	tmp := make([]int, n)
	sh := perm.Shuffle(n)

	r := network.NewRegister(n)
	for s := 1; s <= d; s++ {
		k := 1 << uint(s)
		for c := 1; c <= d; c++ {
			t := d - c
			sh.RouteInto(tmp, tags)
			copy(tags, tmp)
			ops := make([]network.Op, n/2)
			for m := 0; m < n/2; m++ {
				if t >= s {
					continue
				}
				u := bits.RotLeftBy(2*m, d, -c)
				low := u
				if low&(1<<uint(t)) != 0 {
					low = u ^ 1<<uint(t)
				}
				// Ascending iff low & k == 0; decide on tags, emit swap
				// decision.
				a, b := tags[2*m], tags[2*m+1]
				var wantSwap bool
				lowAtEven := bits.RotLeftBy(2*m, d, -c) == low
				asc := low&k == 0
				// min goes to the register holding wire `low` iff asc.
				minAtEven := (asc && lowAtEven) || (!asc && !lowAtEven)
				if minAtEven {
					wantSwap = a > b
				} else {
					wantSwap = a < b
				}
				if wantSwap {
					tags[2*m], tags[2*m+1] = b, a
					ops[m] = network.OpSwap
				}
			}
			r.AddStep(network.Step{Pi: sh, Ops: ops})
		}
	}
	// After sorting by destination tag, tags[r] == r must hold, and the
	// replayed swaps route any input identically.
	for i, v := range tags {
		if v != i {
			panic(fmt.Sprintf("shuffle.RoutePermutation: offline sort failed at %d: %v", i, tags))
		}
	}
	return r
}
