// Package randnet builds the randomized comparator networks of
// Section 5: networks that augment comparators with the
// Leighton–Plaxton "randomizing" element — a switch that exchanges its
// inputs with probability 1/2 — and the shuffle-based nearly-sorting
// networks whose existence bounds what the paper's worst-case lower
// bound can say about average-case and randomized complexity.
//
// A randomized network is sampled at construction time: each call with
// a fresh rng yields one deterministic instance (the random bits become
// fixed "0"/"1" elements), which is exactly how the paper's model
// treats randomization — see DESIGN.md for the substitution notes
// regarding the full Leighton–Plaxton construction.
package randnet

import (
	"math/rand"

	"shufflenet/internal/bits"
	"shufflenet/internal/network"
	"shufflenet/internal/perm"
	"shufflenet/internal/shuffle"
)

// Randomizer appends one shuffle step whose pairs are exchanged with
// probability 1/2 (the Section 5 randomizing element, sampled): a
// shuffle-based scrambling stage containing no comparators.
func Randomizer(r *network.Register, rng *rand.Rand) {
	n := r.Registers()
	ops := make([]network.Op, n/2)
	for k := range ops {
		if rng.Intn(2) == 0 {
			ops[k] = network.OpSwap
		}
	}
	r.AddStep(network.Step{Pi: perm.Shuffle(n), Ops: ops})
}

// ScramblePasses returns a shuffle-based register network of `passes`
// full shuffle passes of randomizing elements: depth passes·lg n, no
// comparators. Composing it before a deterministic network turns that
// network into a randomized sorter instance in the paper's sense.
func ScramblePasses(n, passes int, rng *rand.Rand) *network.Register {
	d := bits.Lg(n)
	r := network.NewRegister(n)
	for p := 0; p < passes*d; p++ {
		Randomizer(r, rng)
	}
	return r
}

// ButterflyPasses returns a shuffle-based register network of `passes`
// consecutive butterfly passes with all comparators ascending: depth
// passes·lg n. One pass routes extremes to the ends; a handful of
// passes nearly sorts most inputs while remaining well below the
// Ω(lg²n/lg lg n) sorting bound — the average-case phenomenon of
// Section 5.
func ButterflyPasses(n, passes int) *network.Register {
	r := network.NewRegister(n)
	for p := 0; p < passes; p++ {
		shuffle.Pass(r, func(t, u int) network.Op { return network.OpPlus })
	}
	return r
}

// RandomizedButterfly returns a shuffle-based instance combining one
// randomizing pass with `passes` butterfly comparator passes: the
// cheapest member of the Leighton–Plaxton family our substitution
// covers. Depth (passes+1)·lg n.
func RandomizedButterfly(n, passes int, rng *rand.Rand) *network.Register {
	r := ScramblePasses(n, 1, rng)
	for p := 0; p < passes; p++ {
		shuffle.Pass(r, func(t, u int) network.Op { return network.OpPlus })
	}
	return r
}

// TruncatedBitonic returns the first `steps` shuffle steps of Stone's
// bitonic sorter on n registers (steps <= lg²n): the canonical
// "shallow shuffle-based network" for sorted-fraction-vs-depth curves.
func TruncatedBitonic(n, steps int) *network.Register {
	return shuffle.Bitonic(n).Truncate(steps)
}

// Levels returns a dense random circuit on n wires (n even, any value —
// no power-of-two constraint): depth levels, each a uniformly random
// perfect matching of the wires with uniformly random comparator
// directions, so the circuit has depth·n/2 comparators. These are the
// adversarially unstructured instances of the optimum-search worst
// case (core.OptimalNoncolliding's cap is calibrated against them):
// their noncolliding optimum is small and their wire-relabeling
// automorphism group is almost surely trivial, so every pruning rule
// has to earn its keep.
func Levels(n, depth int, rng *rand.Rand) *network.Network {
	c := network.New(n)
	for d := 0; d < depth; d++ {
		p := perm.Random(n, rng)
		lv := make(network.Level, 0, n/2)
		for i := 0; i+1 < n; i += 2 {
			a, b := p[i], p[i+1]
			if rng.Intn(2) == 0 {
				a, b = b, a
			}
			lv = append(lv, network.Comparator{Min: a, Max: b})
		}
		c.AddLevel(lv)
	}
	return c
}
