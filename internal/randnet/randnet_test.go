package randnet

import (
	"math/rand"
	"testing"

	"shufflenet/internal/perm"
	"shufflenet/internal/sortcheck"
)

func TestRandomizerIsComparatorFree(t *testing.T) {
	r := ScramblePasses(16, 2, rand.New(rand.NewSource(1)))
	if r.Size() != 0 {
		t.Fatalf("scrambler contains %d comparators", r.Size())
	}
	if !r.IsShuffleBased() {
		t.Fatal("scrambler not shuffle-based")
	}
	if r.Depth() != 2*4 {
		t.Fatalf("depth = %d", r.Depth())
	}
	// It must be a fixed permutation: same input -> same output, and a
	// bijection.
	in := []int(perm.Identity(16))
	out1 := r.Eval(in)
	out2 := r.Eval(in)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatal("instance not deterministic")
		}
	}
	if !perm.Perm(out1).Valid() {
		t.Fatal("scramble not a bijection")
	}
}

func TestScrambleInstancesDiffer(t *testing.T) {
	in := []int(perm.Identity(32))
	a := ScramblePasses(32, 1, rand.New(rand.NewSource(1))).Eval(in)
	b := ScramblePasses(32, 1, rand.New(rand.NewSource(2))).Eval(in)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical scrambles")
	}
}

func TestButterflyPassesExtremes(t *testing.T) {
	// One ascending butterfly pass routes min to register 0 and max to
	// register n-1.
	n := 32
	r := ButterflyPasses(n, 1)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		in := []int(perm.Random(n, rng))
		out := r.Eval(in)
		if out[0] != 0 || out[n-1] != n-1 {
			t.Fatalf("extremes not routed: %v", out)
		}
	}
}

func TestButterflyPassesMonotoneImprovement(t *testing.T) {
	// More passes sort a larger fraction of random inputs.
	n := 16
	f1 := sortcheck.SortedFraction(n, 500, ButterflyPasses(n, 1), 9, 0)
	f3 := sortcheck.SortedFraction(n, 500, ButterflyPasses(n, 3), 9, 0)
	if f3 < f1 {
		t.Errorf("3 passes (%v) worse than 1 pass (%v)", f3, f1)
	}
}

func TestRandomizedButterflyDepthAndShape(t *testing.T) {
	n := 16
	r := RandomizedButterfly(n, 2, rand.New(rand.NewSource(4)))
	if r.Depth() != 3*4 {
		t.Fatalf("depth = %d, want 12", r.Depth())
	}
	if !r.IsShuffleBased() {
		t.Fatal("not shuffle-based")
	}
}

func TestTruncatedBitonicCurve(t *testing.T) {
	// Sorted fraction grows with depth and reaches 1 at full depth.
	n := 16
	d2 := 16 // lg²n
	var prev float64 = -1
	for _, steps := range []int{0, 4, 8, 12, 16} {
		r := TruncatedBitonic(n, steps)
		f := sortcheck.SortedFraction(n, 400, r, 11, 0)
		if f+0.15 < prev { // allow Monte-Carlo wobble
			t.Errorf("sorted fraction dropped sharply at depth %d: %v -> %v", steps, prev, f)
		}
		prev = f
		if steps == d2 && f != 1.0 {
			t.Errorf("full-depth Stone bitonic fraction = %v", f)
		}
	}
}
