package bits

import (
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	cases := map[int]bool{
		-8: false, -1: false, 0: false,
		1: true, 2: true, 3: false, 4: true, 6: false,
		1024: true, 1025: false, 1 << 40: true,
	}
	for n, want := range cases {
		if got := IsPow2(n); got != want {
			t.Errorf("IsPow2(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestLg(t *testing.T) {
	for k := 0; k < 40; k++ {
		if got := Lg(1 << uint(k)); got != k {
			t.Errorf("Lg(2^%d) = %d", k, got)
		}
	}
}

func TestLgPanicsOnNonPow2(t *testing.T) {
	for _, n := range []int{0, -4, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Lg(%d) did not panic", n)
				}
			}()
			Lg(n)
		}()
	}
}

func TestCeilFloorLg(t *testing.T) {
	cases := []struct{ n, ceil, floor int }{
		{1, 0, 0}, {2, 1, 1}, {3, 2, 1}, {4, 2, 2}, {5, 3, 2},
		{7, 3, 2}, {8, 3, 3}, {9, 4, 3}, {1023, 10, 9}, {1024, 10, 10},
	}
	for _, c := range cases {
		if got := CeilLg(c.n); got != c.ceil {
			t.Errorf("CeilLg(%d) = %d, want %d", c.n, got, c.ceil)
		}
		if got := FloorLg(c.n); got != c.floor {
			t.Errorf("FloorLg(%d) = %d, want %d", c.n, got, c.floor)
		}
	}
}

func TestPow2RoundTrip(t *testing.T) {
	for k := 0; k < 62; k++ {
		if got := Lg(Pow2(k)); got != k {
			t.Errorf("Lg(Pow2(%d)) = %d", k, got)
		}
	}
}

func TestBitOps(t *testing.T) {
	x := 0b101101
	if Bit(x, 0) != 1 || Bit(x, 1) != 0 || Bit(x, 5) != 1 || Bit(x, 6) != 0 {
		t.Errorf("Bit extraction wrong for %b", x)
	}
	if got := SetBit(x, 1, 1); got != 0b101111 {
		t.Errorf("SetBit(%b,1,1) = %b", x, got)
	}
	if got := SetBit(x, 0, 0); got != 0b101100 {
		t.Errorf("SetBit(%b,0,0) = %b", x, got)
	}
	if got := FlipBit(x, 2); got != 0b101001 {
		t.Errorf("FlipBit(%b,2) = %b", x, got)
	}
}

func TestReverseExamples(t *testing.T) {
	cases := []struct{ x, d, want int }{
		{0b001, 3, 0b100},
		{0b110, 3, 0b011},
		{0b1011, 4, 0b1101},
		{0, 5, 0},
		{0b11111, 5, 0b11111},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := Reverse(c.x, c.d); got != c.want {
			t.Errorf("Reverse(%b, %d) = %b, want %b", c.x, c.d, got, c.want)
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	f := func(x uint16) bool {
		v := int(x) & 0x3ff // 10 bits
		return Reverse(Reverse(v, 10), 10) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotLeftExamples(t *testing.T) {
	cases := []struct{ x, d, want int }{
		{0b100, 3, 0b001},
		{0b101, 3, 0b011},
		{0b0111, 4, 0b1110},
		{0b1110, 4, 0b1101},
		{1, 1, 1},
		{0, 1, 0},
	}
	for _, c := range cases {
		if got := RotLeft(c.x, c.d); got != c.want {
			t.Errorf("RotLeft(%b, %d) = %b, want %b", c.x, c.d, got, c.want)
		}
	}
}

func TestRotInverse(t *testing.T) {
	f := func(x uint16) bool {
		v := int(x) & 0xfff // 12 bits
		return RotRight(RotLeft(v, 12), 12) == v && RotLeft(RotRight(v, 12), 12) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotLeftFullCycleIsIdentity(t *testing.T) {
	for d := 1; d <= 10; d++ {
		for x := 0; x < 1<<uint(d); x++ {
			v := x
			for i := 0; i < d; i++ {
				v = RotLeft(v, d)
			}
			if v != x {
				t.Fatalf("d=%d: RotLeft^d(%d) = %d", d, x, v)
			}
		}
	}
}

func TestRotLeftBy(t *testing.T) {
	for d := 1; d <= 8; d++ {
		for x := 0; x < 1<<uint(d); x++ {
			want := x
			for k := 0; k <= 2*d; k++ {
				if got := RotLeftBy(x, d, k); got != want {
					t.Fatalf("RotLeftBy(%d, %d, %d) = %d, want %d", x, d, k, got, want)
				}
				want = RotLeft(want, d)
			}
			// Negative rotation equals rotation by d-|k| mod d.
			if got, want := RotLeftBy(x, d, -1), RotLeftBy(x, d, d-1); got != want {
				t.Fatalf("RotLeftBy(%d,%d,-1) = %d, want %d", x, d, got, want)
			}
		}
	}
}

// RotLeft coincides with a shift of the reversal: rotating left is
// reversing, rotating right, reversing. A structural cross-check
// between the two primitives.
func TestRotateReverseDuality(t *testing.T) {
	const d = 9
	for x := 0; x < 1<<d; x++ {
		if got, want := RotLeft(x, d), Reverse(RotRight(Reverse(x, d), d), d); got != want {
			t.Fatalf("duality failed at %d: %d vs %d", x, got, want)
		}
	}
}

func TestOnesCount(t *testing.T) {
	if OnesCount(0) != 0 || OnesCount(0b1011) != 3 || OnesCount(255) != 8 {
		t.Error("OnesCount wrong")
	}
}

func TestGrayCodeAdjacent(t *testing.T) {
	for x := 0; x < 1<<12-1; x++ {
		if d := OnesCount(GrayCode(x) ^ GrayCode(x+1)); d != 1 {
			t.Fatalf("Gray codes of %d and %d differ in %d bits", x, x+1, d)
		}
	}
}

func TestWidthChecks(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Reverse too wide", func() { Reverse(8, 3) })
	mustPanic("RotLeft negative", func() { RotLeft(-1, 3) })
	mustPanic("Pow2 negative", func() { Pow2(-1) })
	mustPanic("SetBit bad bit", func() { SetBit(0, 1, 2) })
	mustPanic("CeilLg zero", func() { CeilLg(0) })
	mustPanic("FloorLg zero", func() { FloorLg(0) })
}
