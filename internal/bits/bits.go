// Package bits provides the bit-manipulation kernel underlying all
// hypercubic index arithmetic in shufflenet.
//
// Every network in this repository (shuffle-exchange, butterfly, Beneš,
// reverse delta) addresses its wires by the binary representation of the
// wire index. This package centralizes the handful of operations the
// paper's definitions are phrased in: base-2 logarithms of powers of two,
// bit reversal, cyclic bit rotation (the shuffle permutation acts on
// indices as a left rotation of the bit string), and bit extraction.
package bits

import (
	"fmt"
	mathbits "math/bits"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// Lg returns the base-2 logarithm of n. It panics if n is not a
// positive power of two; network code relies on exact logarithms.
func Lg(n int) int {
	if !IsPow2(n) {
		panic(fmt.Sprintf("bits.Lg: %d is not a positive power of two", n))
	}
	return mathbits.TrailingZeros(uint(n))
}

// CeilLg returns ceil(log2(n)) for n >= 1. It panics for n < 1.
func CeilLg(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("bits.CeilLg: n = %d < 1", n))
	}
	return mathbits.Len(uint(n - 1))
}

// FloorLg returns floor(log2(n)) for n >= 1. It panics for n < 1.
func FloorLg(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("bits.FloorLg: n = %d < 1", n))
	}
	return mathbits.Len(uint(n)) - 1
}

// Pow2 returns 2^k for 0 <= k < 63. It panics outside that range.
func Pow2(k int) int {
	if k < 0 || k >= 63 {
		panic(fmt.Sprintf("bits.Pow2: exponent %d out of range [0,63)", k))
	}
	return 1 << uint(k)
}

// Bit returns bit k (0 = least significant) of x as 0 or 1.
func Bit(x, k int) int {
	return (x >> uint(k)) & 1
}

// SetBit returns x with bit k set to b (which must be 0 or 1).
func SetBit(x, k, b int) int {
	if b != 0 && b != 1 {
		panic(fmt.Sprintf("bits.SetBit: bit value %d not in {0,1}", b))
	}
	return (x &^ (1 << uint(k))) | (b << uint(k))
}

// FlipBit returns x with bit k complemented.
func FlipBit(x, k int) int {
	return x ^ (1 << uint(k))
}

// Reverse returns the reversal of the d-bit string representing x,
// i.e. bit i of the result equals bit d-1-i of x. x must satisfy
// 0 <= x < 2^d.
func Reverse(x, d int) int {
	checkWidth(x, d, "Reverse")
	r := 0
	for i := 0; i < d; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// RotLeft rotates the d-bit string representing x left by one position:
// j_{d-1} j_{d-2} ... j_0 becomes j_{d-2} ... j_0 j_{d-1}. This is
// exactly the action of the shuffle permutation on wire indices
// (Section 1 of the paper).
func RotLeft(x, d int) int {
	checkWidth(x, d, "RotLeft")
	if d == 0 {
		return 0
	}
	hi := x >> uint(d-1)
	return ((x << 1) &^ (1 << uint(d))) | hi
}

// RotRight rotates the d-bit string representing x right by one
// position; it is the inverse of RotLeft and the index action of the
// unshuffle permutation.
func RotRight(x, d int) int {
	checkWidth(x, d, "RotRight")
	if d == 0 {
		return 0
	}
	lo := x & 1
	return (x >> 1) | (lo << uint(d-1))
}

// RotLeftBy rotates the d-bit string x left by k positions (k may be
// any integer; it is taken modulo d).
func RotLeftBy(x, d, k int) int {
	checkWidth(x, d, "RotLeftBy")
	if d == 0 {
		return 0
	}
	k = ((k % d) + d) % d
	for i := 0; i < k; i++ {
		x = RotLeft(x, d)
	}
	return x
}

// OnesCount returns the number of set bits in x (x >= 0).
func OnesCount(x int) int {
	return mathbits.OnesCount(uint(x))
}

// GrayCode returns the binary-reflected Gray code of x.
func GrayCode(x int) int {
	return x ^ (x >> 1)
}

// checkWidth panics if x does not fit in d bits or if d is negative.
func checkWidth(x, d int, op string) {
	if d < 0 || d >= 63 {
		panic(fmt.Sprintf("bits.%s: width %d out of range [0,63)", op, d))
	}
	if x < 0 || x >= 1<<uint(d) && !(d == 0 && x == 0) {
		panic(fmt.Sprintf("bits.%s: value %d does not fit in %d bits", op, x, d))
	}
}
