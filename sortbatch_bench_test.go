package shufflenet_test

// Benchmarks for the vertical batch sorting kernels (PR 10): the
// columnar and row-major batch entry points against looping Sort (or
// slices.Sort) over the same rows, across widths and batch depths, and
// the raw kernels with the SIMD switch pinned each way.
// BenchmarkSortBatch* and BenchmarkBatchKernel* are guarded in
// cmd/benchjson -diff (see Makefile BENCH_GUARDED).
//
// Methodology: as in BenchmarkGeneratedSort, each iteration copies a
// pristine unsorted batch into the working buffer and sorts it; the
// /baseline leg is that copy alone, so the honest per-sort cost (the
// ratio recorded in EXPERIMENTS.md) is net of it. The copy is the same
// memmove for every leg of one shape.

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"shufflenet"
	"shufflenet/sortkernels"
)

// benchBatch times f over a width-n, m-row batch laid out by layout
// ("rows" builds the row-major/column-major flat buffer itself).
func benchBatch[T any](b *testing.B, n, m int, cols bool, fill func(*rand.Rand) T, f func(data []T)) {
	rng := rand.New(rand.NewSource(42))
	rows := make([][]T, m)
	for r := range rows {
		rows[r] = make([]T, n)
		for w := range rows[r] {
			rows[r][w] = fill(rng)
		}
	}
	src := make([]T, n*m)
	for r := 0; r < m; r++ {
		for w := 0; w < n; w++ {
			if cols {
				src[w*m+r] = rows[r][w]
			} else {
				src[r*n+w] = rows[r][w]
			}
		}
	}
	buf := make([]T, n*m)
	b.ReportAllocs()
	b.SetBytes(int64(n * m * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		f(buf)
	}
}

var (
	batchWidths = []int{4, 8, 16}
	batchDepths = []int{8, 64, 1024}
)

// BenchmarkSortBatch: the public batch entry points against per-row
// sorting. Legs per shape — baseline: the harness copy alone; looped:
// shufflenet.Sort row by row (the pre-batch way); cols: SortBatchCols
// on the column-major layout; flat: SortBatchFlat on the row-major
// layout (includes the transpose round trip); stdlib: slices.Sort row
// by row. The headline ratio (≥4x at n=8, m=1024) is looped vs cols,
// net of baseline.
func BenchmarkSortBatch(b *testing.B) {
	intf := func(rng *rand.Rand) int { return int(rng.Int63()) }
	for _, n := range batchWidths {
		for _, m := range batchDepths {
			tag := fmt.Sprintf("int-n%d-m%d", n, m)
			b.Run(tag+"/baseline", func(b *testing.B) {
				benchBatch(b, n, m, true, intf, func(data []int) {})
			})
			b.Run(tag+"/looped", func(b *testing.B) {
				benchBatch(b, n, m, false, intf, func(data []int) {
					for r := 0; r < m; r++ {
						shufflenet.Sort(data[r*n : (r+1)*n])
					}
				})
			})
			b.Run(tag+"/cols", func(b *testing.B) {
				benchBatch(b, n, m, true, intf, func(data []int) {
					shufflenet.SortBatchCols(data, m)
				})
			})
			b.Run(tag+"/flat", func(b *testing.B) {
				benchBatch(b, n, m, false, intf, func(data []int) {
					shufflenet.SortBatchFlat(data, n)
				})
			})
		}
	}
	// The remaining element families and entry points at the headline
	// shape only.
	const n, m = 8, 1024
	b.Run("uint64-n8-m1024/looped", func(b *testing.B) {
		benchBatch(b, n, m, false, (*rand.Rand).Uint64, func(data []uint64) {
			for r := 0; r < m; r++ {
				shufflenet.Sort(data[r*n : (r+1)*n])
			}
		})
	})
	b.Run("uint64-n8-m1024/cols", func(b *testing.B) {
		benchBatch(b, n, m, true, (*rand.Rand).Uint64, func(data []uint64) {
			shufflenet.SortBatchCols(data, m)
		})
	})
	b.Run("uint64-n8-m1024/flat", func(b *testing.B) {
		benchBatch(b, n, m, false, (*rand.Rand).Uint64, func(data []uint64) {
			shufflenet.SortBatchFlat(data, n)
		})
	})
	b.Run("float64-n8-m1024/looped", func(b *testing.B) {
		benchBatch(b, n, m, false, (*rand.Rand).Float64, func(data []float64) {
			for r := 0; r < m; r++ {
				shufflenet.Sort(data[r*n : (r+1)*n])
			}
		})
	})
	b.Run("float64-n8-m1024/cols", func(b *testing.B) {
		benchBatch(b, n, m, true, (*rand.Rand).Float64, func(data []float64) {
			shufflenet.SortBatchCols(data, m)
		})
	})
	b.Run("float64-n8-m1024/flat", func(b *testing.B) {
		benchBatch(b, n, m, false, (*rand.Rand).Float64, func(data []float64) {
			shufflenet.SortBatchFlat(data, n)
		})
	})
	b.Run("int-n8-m1024/stdlib", func(b *testing.B) {
		benchBatch(b, n, m, false, intf, func(data []int) {
			for r := 0; r < m; r++ {
				slices.Sort(data[r*n : (r+1)*n])
			}
		})
	})
	// SortBatch on [][]T includes the gather/scatter round trip.
	b.Run("int-n8-m1024/batch2d", func(b *testing.B) {
		rng := rand.New(rand.NewSource(42))
		src := make([][]int, m)
		for r := range src {
			src[r] = make([]int, n)
			for w := range src[r] {
				src[r][w] = int(rng.Int63())
			}
		}
		buf := make([][]int, m)
		for r := range buf {
			buf[r] = make([]int, n)
		}
		b.ReportAllocs()
		b.SetBytes(int64(n * m * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := range buf {
				copy(buf[r], src[r])
			}
			shufflenet.SortBatch(buf)
		}
	})
}

// BenchmarkBatchKernel: the raw columnar kernels with the SIMD switch
// pinned each way — the comparator schedule is branchless and
// data-independent, so re-sorting sorted data costs the same and no
// per-op copy is needed; these numbers are pure kernel cost.
func BenchmarkBatchKernel(b *testing.B) {
	const m = 1024
	rng := rand.New(rand.NewSource(42))
	for _, impl := range []struct {
		name string
		simd bool
	}{{"go", false}, {"simd", true}} {
		if impl.simd && !sortkernels.BatchSIMDAvailable() {
			continue
		}
		for _, n := range batchWidths {
			data := make([]int, n*m)
			for i := range data {
				data[i] = int(rng.Int63())
			}
			b.Run(fmt.Sprintf("cols-%s/int-n%d-m%d", impl.name, n, m), func(b *testing.B) {
				prev := sortkernels.SetBatchSIMD(impl.simd)
				defer sortkernels.SetBatchSIMD(prev)
				k := sortkernels.BatchIntKernel(n)
				b.ReportAllocs()
				b.SetBytes(int64(n * m * 8))
				for i := 0; i < b.N; i++ {
					k(data, m)
				}
			})
		}
		data := make([]float64, 8*m)
		for i := range data {
			data[i] = rng.Float64()
		}
		b.Run(fmt.Sprintf("cols-%s/float64-n8-m%d", impl.name, m), func(b *testing.B) {
			prev := sortkernels.SetBatchSIMD(impl.simd)
			defer sortkernels.SetBatchSIMD(prev)
			k := sortkernels.BatchFloat64Kernel(8)
			b.ReportAllocs()
			b.SetBytes(int64(8 * m * 8))
			for i := 0; i < b.N; i++ {
				k(data, m)
			}
		})
	}
}
