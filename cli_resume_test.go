package shufflenet_test

// End-to-end tests of the durable optimum search: SIGKILL a
// checkpointing run mid-frontier and resume it byte-identically,
// reopen a spill-backed transposition table warm, and drive the
// optcoord coordinator with two worker processes. These are the CLI
// acceptance paths for DESIGN.md §4, decision 14.

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// resumeNet generates the kill/resume test circuit: random, n=20,
// depth 12, seed 1 — chosen so a single-worker optimum search takes a
// few seconds (long enough to kill mid-frontier, short enough for CI).
func resumeNet(t *testing.T, dir string, n, depth int, seed int64) string {
	t.Helper()
	out, err := run(t, "snet", "-net", "random", "-n", fmt.Sprint(n),
		"-depth", fmt.Sprint(depth), "-seed", fmt.Sprint(seed), "-op", "text")
	if err != nil {
		t.Fatalf("snet -net random: %v\n%s", err, out)
	}
	path := filepath.Join(dir, fmt.Sprintf("rand-%d-%d-%d.txt", n, depth, seed))
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// witnessLines extracts the run-independent result lines: the optimum
// size (with the timing suffix stripped) and, under -v, the witness
// pattern and set. Two runs over the same circuit must agree on these
// bytes no matter how the search was partitioned or resumed.
func witnessLines(t *testing.T, out string) string {
	t.Helper()
	var b strings.Builder
	for _, ln := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(ln, "optimal noncolliding [M_0]-set:"):
			size, _, ok := strings.Cut(ln, " (exact")
			if !ok {
				t.Fatalf("malformed result line %q", ln)
			}
			b.WriteString(size + "\n")
		case strings.HasPrefix(ln, "  witness pattern:"), strings.HasPrefix(ln, "  set:"):
			b.WriteString(ln + "\n")
		}
	}
	if b.Len() == 0 {
		t.Fatalf("no optimum result in output:\n%s", out)
	}
	return b.String()
}

// countPrefixDone counts prefix_done checkpoint records in a journal.
// A half-written final line (the SIGKILL signature) is fine: a torn
// record simply does not count, which is exactly how -resume reads it.
func countPrefixDone(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return bytes.Count(data, []byte(`"type":"prefix_done"`))
}

// TestCLIOptimalKillResume is the durability acceptance test: a
// checkpointing optimum search is SIGKILLed mid-frontier, resumed with
// -resume, and must report byte-identical witness lines to an
// uninterrupted run. The resumed run's own journal must again be a
// complete checkpoint (second-generation resume skips all 81
// prefixes), and resuming against a different circuit must be refused.
func TestCLIOptimalKillResume(t *testing.T) {
	bin := binaries(t)
	dir := t.TempDir()
	netPath := resumeNet(t, dir, 20, 12, 1)

	out, err := run(t, "adversary", "-optimal", "-file", netPath, "-workers", "1", "-v")
	if err != nil {
		t.Fatalf("reference run failed: %v\n%s", err, out)
	}
	ref := witnessLines(t, out)

	// Start the same search with checkpointing, wait until at least two
	// prefixes are retired, and SIGKILL it — no signal handler, no
	// orderly flush; the journal's synced prefix_done records are all
	// that survives.
	killedJournal := filepath.Join(dir, "killed.jsonl")
	cmd := exec.Command(filepath.Join(bin, "adversary"),
		"-optimal", "-file", netPath, "-workers", "1", "-journal", killedJournal)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	deadline := time.After(60 * time.Second)
	for countPrefixDone(killedJournal) < 2 {
		select {
		case err := <-exited:
			t.Fatalf("search finished before it could be killed (exit %v); the test circuit is too fast", err)
		case <-deadline:
			cmd.Process.Kill()
			t.Fatalf("no prefix_done checkpoints after 60s; journal:\n%d records", countPrefixDone(killedJournal))
		case <-time.After(10 * time.Millisecond):
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-exited
	done := countPrefixDone(killedJournal)
	if done < 2 || done >= 81 {
		t.Fatalf("killed run checkpointed %d prefixes, want mid-frontier (2..80)", done)
	}

	// Resume. The skipped count must match the surviving checkpoints and
	// the witness must be byte-identical to the uninterrupted run.
	resumedJournal := filepath.Join(dir, "resumed.jsonl")
	out, err = run(t, "adversary", "-optimal", "-file", netPath, "-workers", "1", "-v",
		"-resume", killedJournal, "-journal", resumedJournal)
	if err != nil {
		t.Fatalf("resumed run failed: %v\n%s", err, out)
	}
	want := fmt.Sprintf("%d/81 prefixes skipped", done)
	if !strings.Contains(out, "resuming from "+killedJournal) || !strings.Contains(out, want) {
		t.Fatalf("resume summary missing %q:\n%s", want, out)
	}
	if got := witnessLines(t, out); got != ref {
		t.Fatalf("resumed witness differs from uninterrupted run:\n--- resumed\n%s--- reference\n%s", got, ref)
	}

	// The resumed journal checkpoints skipped prefixes too, so it is
	// itself a complete frontier: resuming from it skips everything and
	// still reproduces the witness (the seeded incumbent alone carries
	// the result).
	if got := countPrefixDone(resumedJournal); got != 81 {
		t.Fatalf("resumed journal has %d prefix_done records, want all 81", got)
	}
	out, err = run(t, "adversary", "-optimal", "-file", netPath, "-workers", "1", "-v",
		"-resume", resumedJournal)
	if err != nil {
		t.Fatalf("second-generation resume failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "81/81 prefixes skipped") {
		t.Fatalf("second-generation resume did not skip the whole frontier:\n%s", out)
	}
	if got := witnessLines(t, out); got != ref {
		t.Fatalf("second-generation witness differs:\n--- got\n%s--- reference\n%s", got, ref)
	}

	// A checkpoint journal is bound to its circuit by fingerprint:
	// resuming against a different network must be refused.
	otherPath := resumeNet(t, dir, 20, 12, 2)
	out, err = run(t, "adversary", "-optimal", "-file", otherPath, "-workers", "1",
		"-resume", killedJournal)
	if err == nil || !strings.Contains(out, "different circuit") {
		t.Fatalf("resume against the wrong circuit accepted: %v\n%s", err, out)
	}
}

// TestCLIOptimalSpillWarm reopens a spill-backed transposition table:
// the first run creates the file cold, the second reopens it warm, and
// both report the same optimum.
func TestCLIOptimalSpillWarm(t *testing.T) {
	dir := t.TempDir()
	netPath := resumeNet(t, dir, 18, 10, 5)
	spill := filepath.Join(dir, "memo.spill")

	out, err := run(t, "adversary", "-optimal", "-file", netPath, "-workers", "2",
		"-spill", spill, "-spill-bytes", fmt.Sprint(1<<20))
	if err != nil {
		t.Fatalf("cold spill run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "transposition table spill: "+spill) || !strings.Contains(out, "cold") {
		t.Fatalf("cold spill banner missing:\n%s", out)
	}
	ref := witnessLines(t, out)

	out, err = run(t, "adversary", "-optimal", "-file", netPath, "-workers", "2",
		"-spill", spill, "-spill-bytes", fmt.Sprint(1<<20))
	if err != nil {
		t.Fatalf("warm spill run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "warm (reopened with the previous run's bounds)") {
		t.Fatalf("second run did not reopen the spill file warm:\n%s", out)
	}
	if got := witnessLines(t, out); got != ref {
		t.Fatalf("warm run result differs:\n--- warm\n%s--- cold\n%s", got, ref)
	}
}

// TestCLICoordTwoWorkers drives the distributed search end to end: an
// optcoord coordinator leases the frontier to two adversary worker
// processes, merges their reports, verifies the witness, and all three
// processes agree with a plain single-process run.
func TestCLICoordTwoWorkers(t *testing.T) {
	bin := binaries(t)
	dir := t.TempDir()
	netPath := resumeNet(t, dir, 20, 12, 7)

	out, err := run(t, "adversary", "-optimal", "-file", netPath, "-workers", "1")
	if err != nil {
		t.Fatalf("reference run failed: %v\n%s", err, out)
	}
	ref := witnessLines(t, out)

	coordCmd := exec.Command(filepath.Join(bin, "optcoord"),
		"-file", netPath, "-addr", "127.0.0.1:0", "-chunk", "5", "-linger", "1s")
	var coordStderr bytes.Buffer
	coordCmd.Stderr = &coordStderr
	stdout, err := coordCmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coordCmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer coordCmd.Process.Kill()

	// The coordinator binds :0; scrape the real address off its banner,
	// then keep collecting its stdout until it exits.
	var coordOut strings.Builder
	addr := ""
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		ln := sc.Text()
		coordOut.WriteString(ln + "\n")
		if rest, ok := strings.CutPrefix(ln, "optcoord: listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("coordinator never announced its address:\n%s", coordOut.String())
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			coordOut.WriteString(sc.Text() + "\n")
		}
	}()

	type result struct {
		out []byte
		err error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			w := exec.Command(filepath.Join(bin, "adversary"),
				"-optimal", "-coord", "http://"+addr, "-workers", "1")
			out, err := w.CombinedOutput()
			results <- result{out, err}
		}()
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("worker failed: %v\n%s", r.err, r.out)
		}
		if got := witnessLines(t, string(r.out)); got != ref {
			t.Fatalf("worker result differs:\n--- worker\n%s--- reference\n%s", got, ref)
		}
	}

	// Both workers saw Done, so the coordinator is in its linger window;
	// drain its stdout to EOF, then reap it.
	<-drained
	if err := coordCmd.Wait(); err != nil {
		t.Fatalf("coordinator exited nonzero: %v\nstdout:\n%sstderr:\n%s",
			err, coordOut.String(), coordStderr.String())
	}
	co := coordOut.String()
	if !strings.Contains(co, "witness verified against the circuit (pattern.Noncolliding)") {
		t.Fatalf("coordinator did not verify the merged witness:\n%s", co)
	}
	if got := witnessLines(t, co); got != ref {
		t.Fatalf("coordinator merged result differs:\n--- coordinator\n%s--- reference\n%s", got, ref)
	}
}
