package shufflenet_test

// One benchmark per reproduction experiment (E1–E11 plus ablations; see DESIGN.md's
// experiment index and EXPERIMENTS.md for recorded results), plus
// ablation benches for the design decisions called out in DESIGN.md §4:
// circuit vs. register evaluation, sequential vs. parallel evaluation,
// and the scaling of the Lemma 4.1 recursion.
//
// The experiment benches exercise the dominant computation of the
// corresponding table; regenerating the tables themselves is
// cmd/experiments' job.

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"shufflenet/internal/benes"
	"shufflenet/internal/bits"
	"shufflenet/internal/coord"
	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/experiments"
	"shufflenet/internal/halver"
	"shufflenet/internal/machine"
	"shufflenet/internal/netbuild"
	"shufflenet/internal/network"
	"shufflenet/internal/obs"
	"shufflenet/internal/pattern"
	"shufflenet/internal/perm"
	"shufflenet/internal/randnet"
	"shufflenet/internal/shuffle"
	"shufflenet/internal/sortcheck"
)

// BenchmarkE1BitonicSort measures Stone's shuffle-based bitonic sorter:
// the evaluation leg at n = 1024 and the verification leg (exhaustive
// 0-1 principle, what E1 runs for n <= 16) on the bit-sliced kernel.
func BenchmarkE1BitonicSort(b *testing.B) {
	b.Run("eval/n=1024", func(b *testing.B) {
		const n = 1024
		r := shuffle.Bitonic(n)
		in := []int(perm.Random(n, rand.New(rand.NewSource(1))))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Eval(in)
		}
	})
	b.Run("verify01/n=16", func(b *testing.B) {
		const n = 16
		r := shuffle.Bitonic(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ok, _ := sortcheck.ZeroOne(n, r, 0); !ok {
				b.Fatal("bitonic does not sort")
			}
		}
		reportInputsPerSec(b, 1<<n)
	})
}

// BenchmarkE2LemmaSurvival measures one constructive Lemma 4.1 pass
// over a full butterfly block at n = 1024 with k = lg n.
func BenchmarkE2LemmaSurvival(b *testing.B) {
	const n = 1024
	l := bits.Lg(n)
	tree := delta.Butterfly(l)
	p := pattern.Uniform(n, pattern.M(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Lemma41(tree, p, l)
	}
}

// BenchmarkLemma41 is the allocation-focused view of the Lemma 4.1
// engine (same workload as BenchmarkE2LemmaSurvival, with allocs/op
// reported): the flat in-place recursion is expected to hold allocs/op
// an order of magnitude below the old per-node Clone()+map design.
func BenchmarkLemma41(b *testing.B) {
	const n = 1024
	l := bits.Lg(n)
	tree := delta.Butterfly(l)
	p := pattern.Uniform(n, pattern.M(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Lemma41(tree, p, l)
	}
}

// BenchmarkOptimalNoncolliding measures the exact branch-and-bound
// search over all 3^n patterns on the A2 butterfly instance at n = 16.
func BenchmarkOptimalNoncolliding(b *testing.B) {
	const n = 16
	it := delta.NewIterated(n)
	it.AddBlock(nil, delta.Butterfly(bits.Lg(n)))
	circ, _ := it.ToNetwork()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.OptimalNoncolliding(circ)
	}
}

// BenchmarkOptimalCanonMemo isolates the symmetry machinery's cost in
// the optimum search: the same n=16 searches with the transposition
// table pre-warmed (probes hit, so canonical-key computation and the
// table round-trip dominate) and with the table off (pruning only).
// The butterfly is the structured case the memo is for; the dense
// random instance is canonicalization's worst case — its automorphism
// group is trivial, so keys buy nothing and must at least be cheap.
func BenchmarkOptimalCanonMemo(b *testing.B) {
	const n = 16
	it := delta.NewIterated(n)
	it.AddBlock(nil, delta.Butterfly(bits.Lg(n)))
	fly, _ := it.ToNetwork()
	dense := randnet.Levels(n, 8, rand.New(rand.NewSource(9)))
	ctx := context.Background()
	for _, bc := range []struct {
		name string
		circ *network.Network
		opt  core.OptimalOptions
	}{
		{"butterfly/warm", fly, core.OptimalOptions{Workers: 1, Memo: core.NewMemo(32 << 20)}},
		{"butterfly/off", fly, core.OptimalOptions{Workers: 1, NoMemo: true}},
		{"dense/warm", dense, core.OptimalOptions{Workers: 1, Memo: core.NewMemo(32 << 20)}},
		{"dense/off", dense, core.OptimalOptions{Workers: 1, NoMemo: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			if _, _, _, err := core.OptimalNoncollidingOpt(ctx, bc.circ, bc.opt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := core.OptimalNoncollidingOpt(ctx, bc.circ, bc.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3IteratedSurvival measures Theorem 4.1 across two butterfly
// blocks with random glue at n = 256.
func BenchmarkE3IteratedSurvival(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(2))
	it := delta.NewIterated(n)
	it.AddBlock(nil, delta.Butterfly(bits.Lg(n)))
	it.AddBlock(perm.Random(n, rng), delta.Butterfly(bits.Lg(n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Theorem41(it, 0)
	}
}

// BenchmarkE4Certificate measures the full Corollary 4.1.1 pipeline:
// adversary, certificate extraction, and verification by replay.
func BenchmarkE4Certificate(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(3))
	it := delta.NewIterated(n)
	it.AddBlock(nil, delta.Butterfly(bits.Lg(n)))
	it.AddBlock(perm.Random(n, rng), delta.Butterfly(bits.Lg(n)))
	circ, _ := it.ToNetwork()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an := core.Theorem41(it, 0)
		cert, err := an.Certificate()
		if err != nil {
			b.Fatal(err)
		}
		if err := cert.Verify(circ); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5TruncatedBlocks measures the Section 5 variant: Theorem
// 4.1 over four forest blocks of 3-level trees at n = 256.
func BenchmarkE5TruncatedBlocks(b *testing.B) {
	const n, f = 256, 3
	rng := rand.New(rand.NewSource(4))
	it := delta.NewIterated(n)
	for blk := 0; blk < 4; blk++ {
		trees := make([]*delta.Network, n/(1<<f))
		for i := range trees {
			trees[i] = delta.Random(f, 1.0, rng)
		}
		it.AddForest(perm.Random(n, rng), delta.NewForest(trees...))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Theorem41(it, 0)
	}
}

// BenchmarkE6AverageCase measures the Monte-Carlo sorted-fraction
// estimator on a truncated Stone bitonic network.
func BenchmarkE6AverageCase(b *testing.B) {
	const n = 128
	d := bits.Lg(n)
	net := randnet.TruncatedBitonic(n, d*d/2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sortcheck.SortedFraction(n, 200, net, 5, 0)
	}
}

// BenchmarkE7Constructions measures construction plus structural
// recognition (the reverse-delta recognizer on a butterfly).
func BenchmarkE7Constructions(b *testing.B) {
	const n = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := netbuild.Bitonic(n)
		bf := delta.Butterfly(bits.Lg(n)).ToNetwork()
		if !delta.IsReverseDelta(bf) || c.Size() == 0 {
			b.Fatal("recognizer failed")
		}
	}
}

// BenchmarkE8AdversaryDepth measures running the adversary to
// exhaustion (growing the butterfly stack until |D| < 2) at n = 64.
func BenchmarkE8AdversaryDepth(b *testing.B) {
	const n = 64
	l := bits.Lg(n)
	rng := rand.New(rand.NewSource(6))
	pres := make([]perm.Perm, 6*l)
	for i := range pres {
		pres[i] = perm.Random(n, rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := delta.NewIterated(n)
		it.AddBlock(nil, delta.Butterfly(l))
		for d := 1; d <= 6*l; d++ {
			an := core.Theorem41(it, 0)
			if len(an.D) < 2 {
				break
			}
			it.AddBlock(pres[d-1], delta.Butterfly(l))
		}
	}
}

// BenchmarkE9Routing measures the two routing constructions: the
// strict-shuffle route-by-sorting and the 2-pass shuffle-unshuffle
// Beneš route.
func BenchmarkE9Routing(b *testing.B) {
	const n = 256
	target := perm.Random(n, rand.New(rand.NewSource(11)))
	b.Run("shuffle-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shuffle.RoutePermutation(target)
		}
	})
	b.Run("shuffle-unshuffle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shuffle.RouteShuffleUnshuffle(target)
		}
	})
}

// BenchmarkE10Machine measures the machine simulator on the Stone
// bitonic sorting workload (single run + 64-way pipelined batch).
func BenchmarkE10Machine(b *testing.B) {
	const n = 256
	m := machine.New(n, machine.DefaultCost)
	r := shuffle.Bitonic(n)
	rng := rand.New(rand.NewSource(12))
	batch := make([][]int, 64)
	for i := range batch {
		batch[i] = []int(perm.Random(n, rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunPipelined(r, batch)
	}
}

// BenchmarkE11Witnesses measures the exhaustive 0-1 witness-density
// scan (2^16 evaluations of a shallow network).
func BenchmarkE11Witnesses(b *testing.B) {
	const n = 16
	net := randnet.TruncatedBitonic(n, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sortcheck.ZeroOneFraction(n, net, 0)
	}
}

// BenchmarkExperimentTables regenerates every E-table in quick mode —
// the end-to-end harness cost.
func BenchmarkExperimentTables(b *testing.B) {
	cfg := experiments.Config{Seed: 1, Quick: true}
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.All() {
			if tab := r.Run(cfg); len(tab.Rows) == 0 {
				b.Fatal("empty table")
			}
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationCircuitVsRegister compares evaluating the same
// bitonic sorter in the two network models.
func BenchmarkAblationCircuitVsRegister(b *testing.B) {
	const n = 1024
	circ := netbuild.Bitonic(n)
	reg, _ := network.ToRegister(circ)
	in := []int(perm.Random(n, rand.New(rand.NewSource(7))))
	b.Run("circuit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			circ.Eval(in)
		}
	})
	b.Run("register", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reg.Eval(in)
		}
	})
}

// BenchmarkAblationParallelEval compares sequential and
// level-synchronous parallel circuit evaluation on a wide network.
func BenchmarkAblationParallelEval(b *testing.B) {
	const n = 1 << 14
	circ := netbuild.Bitonic(n)
	in := []int(perm.Random(n, rand.New(rand.NewSource(8))))
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			circ.Eval(in)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			circ.EvalParallel(in, 0)
		}
	})
}

// BenchmarkAblationLemmaScaling shows the Lemma 4.1 recursion cost as n
// grows (near-linear in n·lg n).
func BenchmarkAblationLemmaScaling(b *testing.B) {
	for _, n := range []int{256, 1024, 4096, 16384} {
		n := n
		b.Run(itoa(n), func(b *testing.B) {
			l := bits.Lg(n)
			tree := delta.Butterfly(l)
			p := pattern.Uniform(n, pattern.M(0))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Lemma41(tree, p, l)
			}
		})
	}
}

// BenchmarkAblationZeroOneWorkers compares 0-1-principle checking with
// one worker and with all cores.
func BenchmarkAblationZeroOneWorkers(b *testing.B) {
	const n = 16
	c := netbuild.Bitonic(n)
	b.Run("workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sortcheck.ZeroOneFraction(n, c, 1)
		}
	})
	b.Run("workers=all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sortcheck.ZeroOneFraction(n, c, 0)
		}
	})
}

// BenchmarkBenesRouting measures Beneš switch-setting computation.
func BenchmarkBenesRouting(b *testing.B) {
	const n = 1024
	target := perm.Random(n, rand.New(rand.NewSource(9)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benes.Route(target)
	}
}

// BenchmarkHalverEpsilon measures exact ε computation (2^16 inputs):
// the bit-sliced kernel vs. the retained scalar oracle.
func BenchmarkHalverEpsilon(b *testing.B) {
	c := halver.CrossMatchings(16, 4, rand.New(rand.NewSource(10)))
	b.Run("bits", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			halver.Epsilon(c, 0)
		}
		reportInputsPerSec(b, 1<<16)
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			halver.EpsilonScalar(c, 0)
		}
		reportInputsPerSec(b, 1<<16)
	})
}

// BenchmarkZeroOneScalarVsBits measures exhaustive 0-1 verification of
// Batcher's bitonic sorter at n = 16 (2^16 inputs per op) on the
// bit-sliced kernel vs. the scalar oracle — the acceptance benchmark
// for the SWAR evaluation engine (EXPERIMENTS.md records the ratio).
func BenchmarkZeroOneScalarVsBits(b *testing.B) {
	const n = 16
	c := netbuild.Bitonic(n)
	b.Run("bits", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, _ := sortcheck.ZeroOne(n, c, 0); !ok {
				b.Fatal("bitonic does not sort")
			}
		}
		reportInputsPerSec(b, 1<<n)
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, _ := sortcheck.ZeroOneScalar(n, c, 0); !ok {
				b.Fatal("bitonic does not sort")
			}
		}
		reportInputsPerSec(b, 1<<n)
	})
	b.Run("fraction-bits", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sortcheck.ZeroOneFraction(n, c, 0)
		}
		reportInputsPerSec(b, 1<<n)
	})
	b.Run("fraction-scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sortcheck.ZeroOneFractionScalar(n, c, 0)
		}
		reportInputsPerSec(b, 1<<n)
	})
}

// BenchmarkMemoSpill measures the spill-backed transposition table on
// the warm n=16 dense-random optimum search (PR 9) — the trivial
// automorphism group means real table pressure, unlike the butterfly,
// whose canonicalized state space fits any table. Three legs: an
// eviction-bound RAM table at the floor budget as the baseline, the
// same squeezed RAM tier backed by the mmap'd disk tier (evictions
// become demotions; probes that miss RAM hit disk), and the cost of
// reopening a populated spill file warm (header validation plus the
// mapping — what a resumed run pays at startup).
func BenchmarkMemoSpill(b *testing.B) {
	const n = 16
	circ := randnet.Levels(n, 8, rand.New(rand.NewSource(9)))
	ctx := context.Background()
	search := func(b *testing.B, m *core.Memo) {
		if _, err := core.OptimalNoncollidingPacked(ctx, circ, core.OptimalOptions{Workers: 1, Memo: m}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("ram", func(b *testing.B) {
		m := core.NewMemo(core.MinMemoBytes)
		search(b, m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			search(b, m)
		}
	})
	b.Run("spill", func(b *testing.B) {
		m, _, err := core.OpenSpillMemo(filepath.Join(b.TempDir(), "m.spill"), core.MinMemoBytes, 32<<20, "bench")
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		search(b, m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			search(b, m)
		}
		b.StopTimer()
		st := m.Stats()
		b.ReportMetric(float64(st.DiskHits)/float64(b.N), "diskhits/op")
		b.ReportMetric(float64(st.Demotions)/float64(b.N), "demotions/op")
	})
	b.Run("reopen-warm", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "m.spill")
		m, _, err := core.OpenSpillMemo(path, core.MinMemoBytes, 32<<20, "bench")
		if err != nil {
			b.Fatal(err)
		}
		search(b, m)
		if err := m.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, warm, err := core.OpenSpillMemo(path, core.MinMemoBytes, 32<<20, "bench")
			if err != nil || !warm {
				b.Fatalf("reopen: warm=%v err=%v", warm, err)
			}
			m.Close()
		}
	})
}

// BenchmarkOptimalResume measures the resumable-search machinery on
// the warm n=16 butterfly instance (PR 9): the plain search as the
// baseline, the same search journaling one frontier checkpoint per
// retired prefix (the durability overhead a -journal run pays), and a
// resume whose checkpoint already covers the whole frontier — the
// skip fast path: walk 81 skipped prefixes and return the seeded
// incumbent.
func BenchmarkOptimalResume(b *testing.B) {
	const n = 16
	it := delta.NewIterated(n)
	it.AddBlock(nil, delta.Butterfly(bits.Lg(n)))
	circ, _ := it.ToNetwork()
	ctx := context.Background()
	memo := core.NewMemo(32 << 20)
	base := core.OptimalOptions{Workers: 1, Memo: memo}
	packed, err := core.OptimalNoncollidingPacked(ctx, circ, base)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.OptimalNoncollidingPacked(ctx, circ, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("checkpointed", func(b *testing.B) {
		j, err := obs.OpenJournal(filepath.Join(b.TempDir(), "bench.jsonl"))
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		fw := coord.NewFrontierWriter(j, "bench")
		opt := base
		opt.OnPrefixDone = func(p int, inc uint64) { _ = fw.PrefixDone(p, inc) }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.OptimalNoncollidingPacked(ctx, circ, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("skip-all", func(b *testing.B) {
		opt := base
		opt.SkipPrefix = func(int) bool { return true }
		opt.SeedIncumbent = packed
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := core.OptimalNoncollidingPacked(ctx, circ, opt)
			if err != nil || got != packed {
				b.Fatalf("skip-all returned %d, want the seed %d (err %v)", got, packed, err)
			}
		}
	})
}

// reportInputsPerSec reports exhaustive-checking throughput in 0-1
// inputs (masks) per second.
func reportInputsPerSec(b *testing.B, inputsPerOp int) {
	b.ReportMetric(float64(inputsPerOp)*float64(b.N)/b.Elapsed().Seconds(), "inputs/s")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
