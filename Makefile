GO ?= go

.PHONY: build test check vet race bench fuzz experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

# check is the full gate: static analysis, the race detector in short
# mode, and the tier-1 build+test pass.
check: vet race build test

bench:
	$(GO) test -run XXX -bench . -benchmem .

# Short fuzz pass over the parsers and the compiled-kernel round trip.
fuzz:
	$(GO) test ./internal/network/ -run FuzzCompileEval -fuzz FuzzCompileEval -fuzztime 20s

experiments:
	$(GO) run ./cmd/experiments
