GO ?= go

.PHONY: build test check check-ctx check-memo vet race bench bench-json bench-diff bench-smoke batch-smoke obs-smoke serve-smoke resume-smoke coord-smoke fuzz experiments netgen netgen-check

# Benchmark snapshot recorded for this PR (see EXPERIMENTS.md).
BENCH_JSON ?= BENCH_PR10.json

# Baseline the guarded (SWAR kernel) benchmarks are diffed against by
# bench-diff. Only meaningful on the machine that recorded it.
BENCH_BASE ?= BENCH_PR9.json

# The benchmarks bench-diff/bench-smoke re-run: the guarded SWAR 0-1
# kernels, the daemon's end-to-end request legs, the durable
# optimum-search paths — spill table and checkpoint/resume — and the
# vertical batch sorting entry points and raw columnar kernels (see
# cmd/benchjson defaultGuard).
BENCH_GUARDED = ZeroOneScalarVsBits|HalverEpsilon|GeneratedSort|SortDispatch|BenchmarkServe|MemoSpill|OptimalResume|SortBatch|BatchKernel

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 5m ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short -timeout 5m ./...

# check is the full gate: static analysis, the race detector in short
# mode, and the tier-1 build+test pass.
check: vet race build test

# check-ctx stresses the cancellation and durability paths: the
# ctx-aware par/core/sortcheck/halver entry points, the CLI -timeout
# flows, and the kill/resume + spill + coordinator machinery (SIGKILL
# mid-frontier is the adversarial interleaving those paths must
# survive), under the race detector, twice (cancellation is inherently
# racy — a second run shifts the interleavings).
check-ctx:
	$(GO) test -race -count=2 -timeout 10m -run 'Ctx|Cancel|Canceled|Timeout|Resume|Spill|Coord' \
		./internal/par ./internal/core ./internal/sortcheck ./internal/halver ./internal/coord .

# check-memo is the memo-differential gate: the optimum search with
# the transposition table on, off, shared between searches, and under
# constant eviction must be byte-identical to the exhaustive oracle at
# every worker count. Run under the race detector, twice — worker
# scheduling is the racy input that could corrupt the table.
check-memo:
	$(GO) test -race -count=2 -timeout 10m \
		-run 'OptimalMemo|OptimalNoncollidingWorkersDeterministic|MemoTable|Canon' \
		./internal/core

bench:
	$(GO) test -run XXX -bench . -benchmem .

# bench-json records the full suite (plus the obs hot-path and serve
# end-to-end benchmarks) as machine-readable JSON via cmd/benchjson.
bench-json:
	{ $(GO) test -run XXX -bench . -benchmem . ; \
	  $(GO) test -run XXX -bench . -benchmem ./internal/obs/ ; \
	  $(GO) test -run XXX -bench . -benchmem ./internal/serve/ ; } \
	| $(GO) run ./cmd/benchjson -o $(BENCH_JSON)
	@echo wrote $(BENCH_JSON)

# bench-diff re-runs the guarded benchmarks and fails if any regressed
# more than 15% against the committed baseline (BENCH_BASE). ns/op only
# compares within one machine — run it on the box that recorded the
# baseline.
bench-diff:
	{ $(GO) test -run XXX -bench '$(BENCH_GUARDED)' -benchmem . ; \
	  $(GO) test -run XXX -bench '$(BENCH_GUARDED)' -benchmem ./internal/serve/ ; } \
		| $(GO) run ./cmd/benchjson -o /tmp/bench_head.json
	$(GO) run ./cmd/benchjson -diff $(BENCH_BASE) /tmp/bench_head.json

# bench-smoke exercises the same gate machine-independently: two fresh
# short runs of the guarded benchmarks on the same machine, diffed with
# a lax threshold. Catches gross regressions and keeps the bench + diff
# tooling honest in CI, where comparing against a snapshot recorded on
# different hardware would be meaningless.
bench-smoke:
	{ $(GO) test -run XXX -bench '$(BENCH_GUARDED)' -benchtime 0.3s . ; \
	  $(GO) test -run XXX -bench '$(BENCH_GUARDED)' -benchtime 0.3s ./internal/serve/ ; } \
		| $(GO) run ./cmd/benchjson -o /tmp/bench_smoke_a.json
	{ $(GO) test -run XXX -bench '$(BENCH_GUARDED)' -benchtime 0.3s . ; \
	  $(GO) test -run XXX -bench '$(BENCH_GUARDED)' -benchtime 0.3s ./internal/serve/ ; } \
		| $(GO) run ./cmd/benchjson -o /tmp/bench_smoke_b.json
	$(GO) run ./cmd/benchjson -diff -threshold 0.5 /tmp/bench_smoke_a.json /tmp/bench_smoke_b.json

# batch-smoke exercises the vertical batch sorting surface under the
# race detector: the exhaustive 0-1 verification of every committed
# batch kernel (both the pure-Go and, where the CPU supports it, the
# AVX-512 implementations), the differential tests against slices.Sort,
# the float64 bit-multiset check, the shape-panic contract, and the
# fuzz seed corpus. The SIMD kernels and the pooled transpose scratch
# are the assembly/unsafe surface this PR adds; -race plus the go/simd
# subtest split is the cheapest way to keep both honest in CI.
batch-smoke:
	$(GO) test -race -count=1 -timeout 5m \
		-run 'TestBatch|TestSortBatch|TestSortDispatchZeroAlloc|FuzzSortBatch' .

# obs-smoke drives the live-telemetry path end to end: a short adversary
# optimum search with -progress and -journal, then cmd/obsreport over
# the journal, which must parse every line and find at least one
# heartbeat record. Exercises the sampler, the journal sink, and the
# report parser against each other.
obs-smoke:
	rm -f /tmp/obs_smoke.jsonl
	$(GO) run ./cmd/adversary -optimal -n 16 -blocks 2 -topology random -seed 3 \
		-progress -progress-interval 100ms -journal /tmp/obs_smoke.jsonl 2>/dev/null
	$(GO) run ./cmd/obsreport -require-heartbeats /tmp/obs_smoke.jsonl

# serve-smoke drives the daemon end to end: start shufflenetd with a
# per-request journal, fire a short loadgen burst across every endpoint
# (loadgen itself fails on any non-200), SIGTERM the daemon, and
# require a clean drain (exit 0) plus both per-request records and the
# final run entry in the journal.
serve-smoke:
	rm -f /tmp/serve_smoke.jsonl
	$(GO) build -o /tmp/shufflenetd ./cmd/shufflenetd
	$(GO) build -o /tmp/loadgen ./cmd/loadgen
	/tmp/shufflenetd -addr 127.0.0.1:18451 -journal /tmp/serve_smoke.jsonl & \
	pid=$$!; \
	/tmp/loadgen -addr http://127.0.0.1:18451 -duration 3s -concurrency 4 \
		-max-errors 0 -json || { kill $$pid; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "serve-smoke: daemon exited non-zero"; exit 1; }
	grep -q '"type":"request"' /tmp/serve_smoke.jsonl
	grep -q '"cmd":"shufflenetd"' /tmp/serve_smoke.jsonl
	@echo "serve-smoke: ok ($$(grep -c '"type":"request"' /tmp/serve_smoke.jsonl) requests journaled)"

# resume-smoke drives the checkpoint/resume path end to end with real
# processes: a checkpointing optimum search writes its frontier to the
# journal, a second run resumes from it (the whole 81-prefix frontier
# is already done, so every prefix is skipped and the seeded incumbent
# carries the result), and cmd/obsreport must parse the journal and
# render the resume summary.
resume-smoke:
	rm -f /tmp/resume_smoke.jsonl
	$(GO) run ./cmd/adversary -optimal -n 16 -blocks 2 -topology random -seed 3 \
		-journal /tmp/resume_smoke.jsonl
	$(GO) run ./cmd/adversary -optimal -n 16 -blocks 2 -topology random -seed 3 \
		-journal /tmp/resume_smoke.jsonl -resume /tmp/resume_smoke.jsonl \
		> /tmp/resume_smoke_out.txt
	grep -q '81/81 prefixes skipped' /tmp/resume_smoke_out.txt
	$(GO) run ./cmd/obsreport /tmp/resume_smoke.jsonl > /tmp/resume_smoke_report.txt
	grep -q 'resumed from seq' /tmp/resume_smoke_report.txt
	@echo "resume-smoke: ok"

# coord-smoke drives the distributed search end to end: an optcoord
# coordinator serves a random circuit, one adversary worker process
# joins over HTTP, works the leased frontier chunks, and the
# coordinator must verify the merged witness against the circuit.
coord-smoke:
	$(GO) build -o /tmp/optcoord ./cmd/optcoord
	$(GO) build -o /tmp/sn_adversary ./cmd/adversary
	$(GO) run ./cmd/snet -net random -n 16 -depth 8 -seed 3 -op text > /tmp/coord_smoke_net.txt
	/tmp/optcoord -file /tmp/coord_smoke_net.txt -addr 127.0.0.1:18452 -linger 2s \
		> /tmp/coord_smoke_out.txt & \
	pid=$$!; \
	sleep 1; \
	/tmp/sn_adversary -optimal -coord http://127.0.0.1:18452 || { kill $$pid; exit 1; }; \
	wait $$pid || { echo "coord-smoke: coordinator exited non-zero"; exit 1; }
	grep -q 'witness verified against the circuit' /tmp/coord_smoke_out.txt
	@echo "coord-smoke: ok"

# Short fuzz pass over the parsers / compiled-kernel round trip and the
# Sort dispatcher vs slices.Sort differential.
fuzz:
	$(GO) test ./internal/network/ -run FuzzCompileEval -fuzz FuzzCompileEval -fuzztime 20s
	$(GO) test . -run FuzzSortT -fuzz FuzzSortT -fuzztime 20s

experiments:
	$(GO) run ./cmd/experiments

# netgen regenerates the committed sortkernels/ package from the
# curated depth-optimal networks.
netgen:
	$(GO) run ./cmd/netgen -preset sortkernels -out sortkernels

# netgen-check is the drift gate: regenerate into a scratch directory
# and require byte-identity with the committed sortkernels/. Fails when
# someone edits the generated files by hand or changes the generator
# (or the curated networks) without re-running make netgen.
netgen-check:
	tmp=$$(mktemp -d) && 	$(GO) run ./cmd/netgen -preset sortkernels -out $$tmp && 	diff -r sortkernels $$tmp && 	rm -rf $$tmp && echo netgen-check: sortkernels/ is in sync
