GO ?= go

.PHONY: build test check check-ctx vet race bench bench-json fuzz experiments

# Benchmark snapshot recorded for this PR (see EXPERIMENTS.md).
BENCH_JSON ?= BENCH_PR2.json

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 5m ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short -timeout 5m ./...

# check is the full gate: static analysis, the race detector in short
# mode, and the tier-1 build+test pass.
check: vet race build test

# check-ctx stresses the cancellation paths: the ctx-aware par/core/
# sortcheck/halver entry points and the CLI -timeout flows, under the
# race detector, twice (cancellation is inherently racy — a second run
# shifts the interleavings).
check-ctx:
	$(GO) test -race -count=2 -timeout 5m -run 'Ctx|Cancel|Canceled|Timeout' \
		./internal/par ./internal/core ./internal/sortcheck ./internal/halver .

bench:
	$(GO) test -run XXX -bench . -benchmem .

# bench-json records the full suite (plus the obs hot-path benchmarks)
# as machine-readable JSON via cmd/benchjson.
bench-json:
	{ $(GO) test -run XXX -bench . -benchmem . ; \
	  $(GO) test -run XXX -bench . -benchmem ./internal/obs/ ; } \
	| $(GO) run ./cmd/benchjson -o $(BENCH_JSON)
	@echo wrote $(BENCH_JSON)

# Short fuzz pass over the parsers and the compiled-kernel round trip.
fuzz:
	$(GO) test ./internal/network/ -run FuzzCompileEval -fuzz FuzzCompileEval -fuzztime 20s

experiments:
	$(GO) run ./cmd/experiments
