GO ?= go

.PHONY: build test check vet race bench bench-json fuzz experiments

# Benchmark snapshot recorded for this PR (see EXPERIMENTS.md).
BENCH_JSON ?= BENCH_PR2.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

# check is the full gate: static analysis, the race detector in short
# mode, and the tier-1 build+test pass.
check: vet race build test

bench:
	$(GO) test -run XXX -bench . -benchmem .

# bench-json records the full suite (plus the obs hot-path benchmarks)
# as machine-readable JSON via cmd/benchjson.
bench-json:
	{ $(GO) test -run XXX -bench . -benchmem . ; \
	  $(GO) test -run XXX -bench . -benchmem ./internal/obs/ ; } \
	| $(GO) run ./cmd/benchjson -o $(BENCH_JSON)
	@echo wrote $(BENCH_JSON)

# Short fuzz pass over the parsers and the compiled-kernel round trip.
fuzz:
	$(GO) test ./internal/network/ -run FuzzCompileEval -fuzz FuzzCompileEval -fuzztime 20s

experiments:
	$(GO) run ./cmd/experiments
