// Command loadgen drives a running shufflenetd with a weighted mix of
// requests and reports latency percentiles and throughput — the
// harness behind the EXPERIMENTS.md load tables and `make serve-smoke`.
//
// Usage:
//
//	loadgen [-addr http://localhost:8080] [-duration 10s]
//	        [-concurrency 8] [-mix check=2,probe=8,halver=1,optimal=2,adversary=1]
//	        [-n 16] [-opt-n 10] [-probes 4] [-seed 1] [-json]
//
// loadgen first polls /healthz until the daemon answers (up to 10 s),
// then runs -concurrency workers for -duration, each issuing requests
// drawn from the -mix weights:
//
//	check      full 0-1 verdict on an n-wire bitonic sorter
//	probe      /v1/check with -probes random input masks (exercises the
//	           SWAR coalescer: concurrent probes of one network share words)
//	halver     exact ε of the sorter's first half-cleaner stage
//	opt        exact optimum on an opt-n-wire network (shared-memo warm path)
//	adversary  Theorem 4.1 certificate on an n-wire butterfly RDN
//
// Results go to stdout as a per-endpoint table (count, errors, p50,
// p90, p99, max) plus overall throughput, or as one JSON object with
// -json for machine harvesting.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"shufflenet/internal/bits"
	"shufflenet/internal/delta"
	"shufflenet/internal/netbuild"
	"shufflenet/internal/network"
)

type reqKind struct {
	name string
	body func(rng *rand.Rand) []byte
	path string
}

type stat struct {
	mu        sync.Mutex
	latencies []time.Duration
	errors    int
	statuses  map[int]int
}

func (s *stat) record(d time.Duration, status int, ok bool) {
	s.mu.Lock()
	s.latencies = append(s.latencies, d)
	if !ok {
		s.errors++
	}
	if s.statuses == nil {
		s.statuses = map[int]int{}
	}
	s.statuses[status]++
	s.mu.Unlock()
}

func pct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the daemon")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load")
	concurrency := flag.Int("concurrency", 8, "concurrent request workers")
	mix := flag.String("mix", "check=2,probe=8,halver=1,optimal=2,adversary=1", "weighted endpoint mix")
	n := flag.Int("n", 16, "wire count of the generated check/halver/adversary networks (power of two)")
	optN := flag.Int("opt-n", 10, "wire count of the /v1/optimal network")
	probes := flag.Int("probes", 4, "input masks per probe request")
	seed := flag.Int64("seed", 1, "random seed")
	jsonOut := flag.Bool("json", false, "emit one JSON result object instead of the table")
	maxErrors := flag.Int("max-errors", -1, "exit 1 when more than this many requests fail (-1 = report only); the serve-smoke gate runs with 0")
	flag.Parse()

	if !bits.IsPow2(*n) {
		fmt.Fprintln(os.Stderr, "loadgen: -n must be a power of two")
		os.Exit(1)
	}

	// Pre-serialize the payload networks once; workers only draw masks.
	sorter := netText(netbuild.Bitonic(*n))
	halverNet := netText(netbuild.HalfCleaner(*n))
	optNet := netText(netbuild.OddEvenTransposition(*optN))
	it := delta.NewIterated(*n)
	it.AddBlock(nil, delta.Butterfly(bits.Lg(*n)))
	rdnCirc, _ := it.ToNetwork()
	rdn := netText(rdnCirc)

	mask := uint64(1)<<uint(*n) - 1
	if *n >= 64 {
		mask = ^uint64(0)
	}
	kinds := map[string]reqKind{
		"check": {name: "check", path: "/v1/check", body: func(*rand.Rand) []byte {
			return marshal(map[string]any{"network": sorter})
		}},
		"probe": {name: "probe", path: "/v1/check", body: func(rng *rand.Rand) []byte {
			ms := make([]uint64, *probes)
			for i := range ms {
				ms[i] = rng.Uint64() & mask
			}
			return marshal(map[string]any{"network": sorter, "inputs": ms})
		}},
		"halver": {name: "halver", path: "/v1/halver", body: func(*rand.Rand) []byte {
			return marshal(map[string]any{"network": halverNet})
		}},
		"optimal": {name: "optimal", path: "/v1/optimal", body: func(*rand.Rand) []byte {
			return marshal(map[string]any{"network": optNet, "nocache": true})
		}},
		"adversary": {name: "adversary", path: "/v1/adversary", body: func(*rand.Rand) []byte {
			return marshal(map[string]any{"network": rdn})
		}},
	}

	// Expand the weighted mix into a pick table.
	var picks []reqKind
	for _, part := range strings.Split(*mix, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			fmt.Fprintf(os.Stderr, "loadgen: bad -mix entry %q\n", part)
			os.Exit(1)
		}
		k, ok := kinds[kv[0]]
		w, err := strconv.Atoi(kv[1])
		if !ok || err != nil || w < 0 {
			fmt.Fprintf(os.Stderr, "loadgen: bad -mix entry %q\n", part)
			os.Exit(1)
		}
		for i := 0; i < w; i++ {
			picks = append(picks, k)
		}
	}
	if len(picks) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: empty -mix")
		os.Exit(1)
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	if !waitHealthy(client, *addr, 10*time.Second) {
		fmt.Fprintf(os.Stderr, "loadgen: %s/healthz not answering\n", *addr)
		os.Exit(1)
	}

	stats := map[string]*stat{}
	for name := range kinds {
		stats[name] = &stat{}
	}
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for time.Now().Before(deadline) {
				k := picks[rng.Intn(len(picks))]
				start := time.Now()
				status, ok := post(client, *addr+k.path, k.body(rng))
				stats[k.name].record(time.Since(start), status, ok)
			}
		}(w)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	totalErrs := report(stats, elapsed, *jsonOut)
	if *maxErrors >= 0 && totalErrs > *maxErrors {
		fmt.Fprintf(os.Stderr, "loadgen: %d failed requests exceeds -max-errors %d\n", totalErrs, *maxErrors)
		os.Exit(1)
	}
}

func netText(c *network.Network) string {
	var b bytes.Buffer
	if err := c.WriteText(&b); err != nil {
		panic(err)
	}
	return b.String()
}

func marshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func post(client *http.Client, url string, body []byte) (status int, ok bool) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.StatusCode == http.StatusOK
}

func waitHealthy(client *http.Client, addr string, within time.Duration) bool {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return false
}

type endpointResult struct {
	Endpoint string  `json:"endpoint"`
	Count    int     `json:"count"`
	Errors   int     `json:"errors"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
}

func report(stats map[string]*stat, elapsed time.Duration, jsonOut bool) (totalErrs int) {
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

	var rows []endpointResult
	total := 0
	for _, name := range names {
		st := stats[name]
		if len(st.latencies) == 0 {
			continue
		}
		sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
		rows = append(rows, endpointResult{
			Endpoint: name, Count: len(st.latencies), Errors: st.errors,
			P50MS: ms(pct(st.latencies, 0.50)),
			P90MS: ms(pct(st.latencies, 0.90)),
			P99MS: ms(pct(st.latencies, 0.99)),
			MaxMS: ms(st.latencies[len(st.latencies)-1]),
		})
		total += len(st.latencies)
		totalErrs += st.errors
	}
	rps := float64(total) / elapsed.Seconds()

	if jsonOut {
		out := map[string]any{
			"elapsed_s": elapsed.Seconds(), "requests": total,
			"errors": totalErrs, "rps": rps, "endpoints": rows,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.Encode(out)
		return
	}
	fmt.Printf("%-10s %8s %7s %9s %9s %9s %9s\n", "endpoint", "count", "errors", "p50(ms)", "p90(ms)", "p99(ms)", "max(ms)")
	for _, r := range rows {
		fmt.Printf("%-10s %8d %7d %9.2f %9.2f %9.2f %9.2f\n",
			r.Endpoint, r.Count, r.Errors, r.P50MS, r.P90MS, r.P99MS, r.MaxMS)
	}
	fmt.Printf("total: %d requests (%d errors) in %v — %.0f req/s\n", total, totalErrs, elapsed.Round(time.Millisecond), rps)
	return totalErrs
}
