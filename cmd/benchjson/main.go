// Command benchjson converts `go test -bench` text output (read from
// stdin or the files given as arguments) into a JSON document mapping
// benchmark names to their measurements — ns/op, MB/s, B/op,
// allocs/op, and any custom metrics such as inputs/s. The header lines
// (goos, goarch, pkg, cpu) are carried into the document so a recorded
// file is self-describing.
//
// Usage:
//
//	go test -run XXX -bench . -benchmem . | benchjson -o BENCH.json
//	benchjson -diff old.json new.json [-threshold 0.15] [-guard REGEX]
//
// Used by `make bench-json` to record the per-PR benchmark snapshots
// (BENCH_PR*.json) referenced from EXPERIMENTS.md.
//
// With -diff, two recorded files are compared benchmark by benchmark
// (ns/op, with the -GOMAXPROCS name suffix stripped so runs at
// different -cpu settings line up). Benchmarks whose names match the
// -guard regexp — by default the SWAR 0-1 evaluation kernels, the
// hot path every exhaustive verification sits on — fail the diff when
// they regress by more than -threshold (a fraction; 0.15 = 15%) or
// disappear from the new file. Exit status 1 on failure, 0 otherwise.
// Used by `make bench-diff` (against the committed baseline, only
// meaningful on the machine that recorded it) and `make bench-smoke`
// (two fresh runs on the same machine, any machine).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"` // custom ReportMetric units
}

// Doc is the whole report. Guard records the guard regexp in force
// when the file was recorded, so a later -diff protects everything the
// baseline protected even if the flag (or defaultGuard) has since been
// narrowed: Diff guards the union of the old file's Guard and the
// current -guard.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Guard      string   `json:"guard,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// defaultGuard protects the perf-critical kernels: the bit-sliced
// (SWAR) 0-1 evaluation kernels — a regression there slows every
// exhaustive sorting check in the repo — the generated sorting
// kernels plus their shufflenet.Sort dispatch path, the library's
// user-facing fast path (PR 6), the daemon's end-to-end request
// legs — the coalesced probe and warm-memo optimum paths (PR 8) —
// the durable-search machinery: the spill-backed transposition
// table and the checkpoint/resume paths of the optimum search
// (PR 9) — and the vertical batch sorting entry points plus their
// raw columnar kernels (PR 10).
const defaultGuard = `Benchmark(ZeroOneScalarVsBits|HalverEpsilon)/(fraction-)?bits$|BenchmarkGeneratedSort/|BenchmarkSortDispatch/|BenchmarkServe|BenchmarkMemoSpill/|BenchmarkOptimalResume/|BenchmarkSortBatch/|BenchmarkBatchKernel/`

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	diff := flag.Bool("diff", false, "compare two recorded JSON files: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 0.15, "with -diff: allowed fractional ns/op regression for guarded benchmarks")
	guard := flag.String("guard", defaultGuard, "regexp of benchmark names whose regressions fail a -diff (empty = report only); when recording, stamped into the document so later diffs keep guarding it")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fail("-diff needs exactly two files: old.json new.json")
		}
		failures, err := Diff(os.Stdout, flag.Arg(0), flag.Arg(1), *guard, *threshold)
		if err != nil {
			fail(err.Error())
		}
		if failures > 0 {
			os.Exit(1)
		}
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		var readers []io.Reader
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fail(err.Error())
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}

	doc, err := Parse(in)
	if err != nil {
		fail(err.Error())
	}
	if len(doc.Benchmarks) == 0 {
		fail("no Benchmark lines found in input")
	}
	doc.Guard = *guard

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err.Error())
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail(err.Error())
	}
}

// Parse reads `go test -bench` output. Benchmark lines have the shape
//
//	BenchmarkName-8   1234   5678 ns/op   12.3 MB/s   45 B/op   6 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs; custom metrics
// from b.ReportMetric appear as additional pairs.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // e.g. a bare "BenchmarkFoo" header before subbenchmarks
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "MB/s":
				res.MBPerSec = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[unit] = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}

// stripProcs removes go test's trailing -GOMAXPROCS suffix
// ("BenchmarkFoo/bar-8" → "BenchmarkFoo/bar") so files recorded at
// different -cpu settings still line up. Names without the suffix
// (GOMAXPROCS=1 runs) pass through unchanged.
func stripProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// loadDoc reads a recorded benchjson file into a name→Result map
// (names normalized via stripProcs), plus the guard regexp stamped at
// record time (empty for files recorded before guards were stamped).
func loadDoc(path string) (map[string]Result, []string, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, "", err
	}
	defer f.Close()
	var doc Doc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, nil, "", fmt.Errorf("%s: %v", path, err)
	}
	m := make(map[string]Result, len(doc.Benchmarks))
	var names []string
	for _, b := range doc.Benchmarks {
		name := stripProcs(b.Name)
		if _, dup := m[name]; !dup {
			names = append(names, name)
		}
		m[name] = b
	}
	return m, names, doc.Guard, nil
}

// Diff compares two recorded files and reports per-benchmark ns/op
// deltas. It returns the number of guard failures: guarded benchmarks
// that regressed past the threshold or vanished from the new file.
// A benchmark is guarded if it matches the -guard regexp OR the guard
// stamped into the old file when it was recorded — so a baseline's
// protections cannot be silently dropped by narrowing the flag, and a
// previously guarded benchmark that disappears still fails the diff.
// Benchmarks only present on one side are reported but never fail the
// diff unless guarded and missing from the new side — new benchmarks
// arriving is the normal course of a growing suite.
func Diff(w io.Writer, oldPath, newPath, guard string, threshold float64) (int, error) {
	var guardRE *regexp.Regexp
	if guard != "" {
		var err error
		if guardRE, err = regexp.Compile(guard); err != nil {
			return 0, fmt.Errorf("bad -guard regexp: %v", err)
		}
	}
	oldM, oldNames, oldGuard, err := loadDoc(oldPath)
	if err != nil {
		return 0, err
	}
	var oldGuardRE *regexp.Regexp
	if oldGuard != "" && oldGuard != guard {
		if oldGuardRE, err = regexp.Compile(oldGuard); err != nil {
			return 0, fmt.Errorf("bad guard regexp recorded in %s: %v", oldPath, err)
		}
	}
	newM, newNames, _, err := loadDoc(newPath)
	if err != nil {
		return 0, err
	}

	failures := 0
	guarded := 0
	fmt.Fprintf(w, "%-55s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range oldNames {
		o := oldM[name]
		isGuarded := (guardRE != nil && guardRE.MatchString(name)) ||
			(oldGuardRE != nil && oldGuardRE.MatchString(name))
		n, ok := newM[name]
		if !ok {
			tag := ""
			if isGuarded {
				tag = "  FAIL (guarded benchmark missing)"
				failures++
			}
			fmt.Fprintf(w, "%-55s %14.1f %14s %9s%s\n", name, o.NsPerOp, "-", "gone", tag)
			continue
		}
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = n.NsPerOp/o.NsPerOp - 1
		}
		tag := ""
		if isGuarded {
			guarded++
			tag = "  [guarded]"
			if delta > threshold {
				tag = fmt.Sprintf("  FAIL (>%+.0f%%)", threshold*100)
				failures++
			}
		}
		fmt.Fprintf(w, "%-55s %14.1f %14.1f %+8.1f%%%s\n", name, o.NsPerOp, n.NsPerOp, delta*100, tag)
	}
	for _, name := range newNames {
		if _, ok := oldM[name]; !ok {
			fmt.Fprintf(w, "%-55s %14s %14.1f %9s\n", name, "-", newM[name].NsPerOp, "new")
		}
	}
	if failures > 0 {
		fmt.Fprintf(w, "FAIL: %d guarded benchmark(s) regressed more than %.0f%% (ns/op)\n", failures, threshold*100)
	} else {
		fmt.Fprintf(w, "ok: %d guarded benchmark(s) within %.0f%% of %s\n", guarded, threshold*100, oldPath)
	}
	return failures, nil
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "benchjson:", msg)
	os.Exit(1)
}
