// Command benchjson converts `go test -bench` text output (read from
// stdin or the files given as arguments) into a JSON document mapping
// benchmark names to their measurements — ns/op, MB/s, B/op,
// allocs/op, and any custom metrics such as inputs/s. The header lines
// (goos, goarch, pkg, cpu) are carried into the document so a recorded
// file is self-describing.
//
// Usage:
//
//	go test -run XXX -bench . -benchmem . | benchjson -o BENCH.json
//
// Used by `make bench-json` to record the per-PR benchmark snapshots
// (BENCH_PR*.json) referenced from EXPERIMENTS.md.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"` // custom ReportMetric units
}

// Doc is the whole report.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		var readers []io.Reader
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fail(err.Error())
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}

	doc, err := Parse(in)
	if err != nil {
		fail(err.Error())
	}
	if len(doc.Benchmarks) == 0 {
		fail("no Benchmark lines found in input")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err.Error())
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail(err.Error())
	}
}

// Parse reads `go test -bench` output. Benchmark lines have the shape
//
//	BenchmarkName-8   1234   5678 ns/op   12.3 MB/s   45 B/op   6 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs; custom metrics
// from b.ReportMetric appear as additional pairs.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // e.g. a bare "BenchmarkFoo" header before subbenchmarks
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "MB/s":
				res.MBPerSec = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[unit] = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "benchjson:", msg)
	os.Exit(1)
}
