package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: shufflenet
cpu: Intel(R) Xeon(R) CPU
BenchmarkZeroOneScalarVsBits/bits-1   9482  126613 ns/op  517.85 MB/s  479000000 inputs/s  520 B/op  3 allocs/op
BenchmarkCounterAdd/enabled-1   197550471  6.07 ns/op  0 B/op  0 allocs/op
PASS
ok  	shufflenet	12.3s
`
	doc, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "shufflenet" {
		t.Fatalf("bad header: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(doc.Benchmarks))
	}
	// Sorted by name: CounterAdd before ZeroOne.
	c, z := doc.Benchmarks[0], doc.Benchmarks[1]
	if c.Name != "BenchmarkCounterAdd/enabled-1" || c.NsPerOp != 6.07 || c.AllocsPerOp != 0 {
		t.Fatalf("bad counter result: %+v", c)
	}
	if z.Iterations != 9482 || z.NsPerOp != 126613 || z.MBPerSec != 517.85 || z.BytesPerOp != 520 {
		t.Fatalf("bad zeroone result: %+v", z)
	}
	if z.Extra["inputs/s"] != 479000000 {
		t.Fatalf("custom metric lost: %+v", z.Extra)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	doc, err := Parse(strings.NewReader("BenchmarkHeader\nBenchmarkOdd 12 34\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("malformed lines should be skipped: %+v", doc.Benchmarks)
	}
}
