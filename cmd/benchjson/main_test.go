package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: shufflenet
cpu: Intel(R) Xeon(R) CPU
BenchmarkZeroOneScalarVsBits/bits-1   9482  126613 ns/op  517.85 MB/s  479000000 inputs/s  520 B/op  3 allocs/op
BenchmarkCounterAdd/enabled-1   197550471  6.07 ns/op  0 B/op  0 allocs/op
PASS
ok  	shufflenet	12.3s
`
	doc, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "shufflenet" {
		t.Fatalf("bad header: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(doc.Benchmarks))
	}
	// Sorted by name: CounterAdd before ZeroOne.
	c, z := doc.Benchmarks[0], doc.Benchmarks[1]
	if c.Name != "BenchmarkCounterAdd/enabled-1" || c.NsPerOp != 6.07 || c.AllocsPerOp != 0 {
		t.Fatalf("bad counter result: %+v", c)
	}
	if z.Iterations != 9482 || z.NsPerOp != 126613 || z.MBPerSec != 517.85 || z.BytesPerOp != 520 {
		t.Fatalf("bad zeroone result: %+v", z)
	}
	if z.Extra["inputs/s"] != 479000000 {
		t.Fatalf("custom metric lost: %+v", z.Extra)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	doc, err := Parse(strings.NewReader("BenchmarkHeader\nBenchmarkOdd 12 34\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("malformed lines should be skipped: %+v", doc.Benchmarks)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo/bar-8":    "BenchmarkFoo/bar",
		"BenchmarkFoo/bar":      "BenchmarkFoo/bar",
		"BenchmarkFoo/n=16-128": "BenchmarkFoo/n=16",
		"BenchmarkFoo/k-means":  "BenchmarkFoo/k-means", // non-numeric suffix kept
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

// writeDoc records a Doc to a temp file for Diff tests.
func writeDoc(t *testing.T, dir, name string, benches []Result) string {
	t.Helper()
	return writeDocGuard(t, dir, name, "", benches)
}

// writeDocGuard is writeDoc with a recorded guard regexp.
func writeDocGuard(t *testing.T, dir, name, guard string, benches []Result) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(Doc{Guard: guard, Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffGuardedRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeDoc(t, dir, "old.json", []Result{
		{Name: "BenchmarkZeroOneScalarVsBits/bits-8", NsPerOp: 100},
		{Name: "BenchmarkZeroOneScalarVsBits/scalar-8", NsPerOp: 100},
	})
	// Guarded bench 30% slower (recorded at a different GOMAXPROCS),
	// unguarded bench 10x slower: only the guarded one counts.
	nu := writeDoc(t, dir, "new.json", []Result{
		{Name: "BenchmarkZeroOneScalarVsBits/bits-1", NsPerOp: 130},
		{Name: "BenchmarkZeroOneScalarVsBits/scalar-1", NsPerOp: 1000},
	})
	var buf strings.Builder
	failures, err := Diff(&buf, old, nu, defaultGuard, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1\n%s", failures, buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL") {
		t.Fatalf("output lacks FAIL marker:\n%s", buf.String())
	}
}

func TestDiffWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	old := writeDoc(t, dir, "old.json", []Result{
		{Name: "BenchmarkZeroOneScalarVsBits/bits-1", NsPerOp: 100},
		{Name: "BenchmarkHalverEpsilon/bits-1", NsPerOp: 200},
	})
	nu := writeDoc(t, dir, "new.json", []Result{
		{Name: "BenchmarkZeroOneScalarVsBits/bits-1", NsPerOp: 110},
		{Name: "BenchmarkHalverEpsilon/bits-1", NsPerOp: 170}, // faster is always fine
		{Name: "BenchmarkBrandNew", NsPerOp: 5},               // new benches never fail
	})
	var buf strings.Builder
	failures, err := Diff(&buf, old, nu, defaultGuard, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d, want 0\n%s", failures, buf.String())
	}
	if !strings.Contains(buf.String(), "ok: 2 guarded") {
		t.Fatalf("expected 2 guarded benchmarks in summary:\n%s", buf.String())
	}
}

func TestDiffGuardedMissing(t *testing.T) {
	dir := t.TempDir()
	old := writeDoc(t, dir, "old.json", []Result{
		{Name: "BenchmarkZeroOneScalarVsBits/bits-1", NsPerOp: 100},
	})
	nu := writeDoc(t, dir, "new.json", []Result{
		{Name: "BenchmarkSomethingElse", NsPerOp: 1},
	})
	var buf strings.Builder
	failures, err := Diff(&buf, old, nu, defaultGuard, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("a guarded benchmark vanishing must fail the diff; got %d\n%s", failures, buf.String())
	}
}

func TestDiffRecordedGuardUnion(t *testing.T) {
	// The baseline was recorded with a guard protecting BenchmarkLegacy;
	// the diff runs with a narrower -guard that no longer matches it.
	// The recorded guard must still protect it: vanishing fails.
	dir := t.TempDir()
	old := writeDocGuard(t, dir, "old.json", "BenchmarkLegacy$", []Result{
		{Name: "BenchmarkLegacy-1", NsPerOp: 100},
		{Name: "BenchmarkOther-1", NsPerOp: 100},
	})
	nu := writeDoc(t, dir, "new.json", []Result{
		{Name: "BenchmarkOther-1", NsPerOp: 100},
	})
	var buf strings.Builder
	failures, err := Diff(&buf, old, nu, defaultGuard, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("a benchmark guarded at record time vanished; want 1 failure, got %d\n%s", failures, buf.String())
	}

	// An invalid recorded guard must surface as an error, not be ignored.
	bad := writeDocGuard(t, dir, "bad.json", "(", []Result{{Name: "BenchmarkX", NsPerOp: 1}})
	if _, err := Diff(&strings.Builder{}, bad, nu, defaultGuard, 0.15); err == nil {
		t.Fatal("expected an error for an invalid recorded guard regexp")
	}
}

func TestDiffBadGuardRegexp(t *testing.T) {
	dir := t.TempDir()
	p := writeDoc(t, dir, "x.json", []Result{{Name: "BenchmarkX", NsPerOp: 1}})
	if _, err := Diff(&strings.Builder{}, p, p, "(", 0.15); err == nil {
		t.Fatal("expected an error for an invalid -guard regexp")
	}
}
