// Command snet builds, inspects, checks, and evaluates the comparator
// networks in this repository.
//
// Usage:
//
//	snet -net <family> -n <wires> [-op info|check|eval|dot|text] [flags]
//
// Families:
//
//	bitonic       Batcher's bitonic sorter (circuit model)
//	oddeven       Batcher's odd-even mergesort (circuit model)
//	transposition odd-even transposition sort (circuit model)
//	insertion     insertion/bubble network (circuit model)
//	pratt         Pratt's Shellsort network, Θ(lg²n) depth (circuit)
//	mergeexchange Batcher's merge-exchange, any width (circuit)
//	stone         Stone's shuffle-based bitonic sorter (register model)
//	butterfly     one ascending butterfly (circuit model)
//	cascade       ε-halver cascade, -passes controls depth (circuit)
//	random        random levels, -depth controls depth (circuit)
//	file:<path>   load a circuit from its text serialization
//	regfile:<path> load a register network from its text serialization
//
// Operations:
//
//	info   print wires/depth/size and structural facts (default)
//	check  verify sortedness: 0-1 principle for n <= 24, else random;
//	       -timeout bounds the scan (canceled checks journal partial
//	       progress and print no verdict)
//	eval   run on -input "3,1,2,..." (or a random permutation)
//	dot    emit Graphviz
//	ascii  draw a Knuth-style wire diagram (small networks)
//	text   emit the line-oriented text serialization
//
// Observability: -journal appends one JSON line per invocation (family,
// n, op, result, metrics); -metrics dumps the metric registry to stderr
// at exit; -pprof serves /debug/pprof, /debug/vars, and /debug/progress
// on ADDR. -progress adds live telemetry at the -progress-interval
// cadence — for -op check the status line shows masks scanned, the
// scan rate, and an ETA over the 2^n input space, and heartbeat
// records land in the journal when -journal is set.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"shufflenet/internal/bits"
	"shufflenet/internal/delta"
	"shufflenet/internal/halver"
	"shufflenet/internal/netbuild"
	"shufflenet/internal/network"
	"shufflenet/internal/obs"
	"shufflenet/internal/par"
	"shufflenet/internal/perm"
	"shufflenet/internal/shuffle"
	"shufflenet/internal/sortcheck"
)

func main() {
	family := flag.String("net", "bitonic", "network family (see doc)")
	n := flag.Int("n", 16, "number of wires")
	op := flag.String("op", "info", "info | check | eval | dot | ascii | text")
	input := flag.String("input", "", "comma-separated input for -op eval")
	passes := flag.Int("passes", 4, "passes for -net cascade")
	depth := flag.Int("depth", 8, "depth for -net random")
	seed := flag.Int64("seed", 1, "random seed")
	journal := flag.String("journal", "", "append a run-journal JSON line to this path")
	metrics := flag.Bool("metrics", false, "dump the metric registry to stderr at exit")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof, /debug/vars, and /debug/progress on this address")
	progress := flag.Bool("progress", false, "emit live progress: stderr status line, plus journal heartbeats when -journal is set")
	progressIvl := flag.Duration("progress-interval", time.Second, "cadence of -progress snapshots")
	timeout := flag.Duration("timeout", 0, "cancel -op check after this duration (0 = none)")
	flag.Parse()

	var err error
	cli, err = obs.StartCLI("snet", *journal, *metrics, *pprofAddr)
	if err != nil {
		fail(err.Error())
	}
	cli.Entry.Seed = *seed
	cli.Entry.Set("family", *family)
	cli.Entry.Set("op", *op)
	ctx := cli.SetupContext(*timeout)
	var prog *obs.Progress
	if *progress {
		prog = cli.StartProgress(*progressIvl)
	}
	defer cli.Finish()

	rng := rand.New(rand.NewSource(*seed))

	var circ *network.Network
	var reg *network.Register
	switch *family {
	case "bitonic":
		circ = netbuild.Bitonic(*n)
	case "oddeven":
		circ = netbuild.OddEvenMergeSort(*n)
	case "transposition":
		circ = netbuild.OddEvenTransposition(*n)
	case "insertion":
		circ = netbuild.Insertion(*n)
	case "pratt":
		circ = netbuild.Pratt(*n)
	case "mergeexchange":
		circ = netbuild.MergeExchange(*n)
	case "stone":
		reg = shuffle.Bitonic(*n)
	case "butterfly":
		circ = delta.Butterfly(bits.Lg(*n)).ToNetwork()
	case "cascade":
		circ = halver.Cascade(*n, *passes, rng)
	case "random":
		circ = netbuild.RandomLevels(*n, *depth, rng)
	default:
		switch {
		case strings.HasPrefix(*family, "file:"):
			f, err := os.Open(strings.TrimPrefix(*family, "file:"))
			if err != nil {
				fail(err.Error())
			}
			circ, err = network.ReadText(f)
			f.Close()
			if err != nil {
				fail("parse: " + err.Error())
			}
			*n = circ.Wires()
		case strings.HasPrefix(*family, "regfile:"):
			f, err := os.Open(strings.TrimPrefix(*family, "regfile:"))
			if err != nil {
				fail(err.Error())
			}
			reg, err = network.ReadRegisterText(f)
			f.Close()
			if err != nil {
				fail("parse: " + err.Error())
			}
			*n = reg.Registers()
		default:
			fail("unknown family " + *family)
		}
	}

	cli.Entry.Set("n", *n)

	switch *op {
	case "info":
		if reg != nil {
			fmt.Println(reg)
			fmt.Printf("model: register; every step's permutation is the perfect shuffle: %v\n", reg.IsShuffleBased())
			c, _ := network.FromRegister(reg)
			fmt.Printf("equivalent circuit: %v\n", c)
			return
		}
		fmt.Println(circ)
		if bits.IsPow2(circ.Wires()) && circ.Depth() == bits.Lg(circ.Wires()) {
			fmt.Printf("reverse delta topology: %v; delta topology: %v\n",
				delta.IsReverseDelta(circ), delta.IsDelta(circ))
		}
	case "check":
		ev := evaluator()
		if reg != nil {
			ev.r = reg
		} else {
			ev.c = circ
		}
		width := *n
		sp := obs.NewSpan("check", obs.A("n", width))
		if width <= maxExhaustiveCheck {
			if prog != nil {
				// The masks counter is cumulative across the process;
				// baseline it so the fraction covers this scan only.
				masks := obs.C("sortcheck.zeroone.masks")
				base := masks.Value()
				total := float64(int64(1) << uint(width))
				prog.Register(func(s *obs.Sample) {
					s.SetFraction(float64(masks.Value()-base), total)
				})
			}
			ok, w, cerr := sortcheck.ZeroOneCtx(ctx, width, ev, 0)
			sp.End()
			if cerr != nil {
				reportCanceled(sp, cerr)
			}
			cli.Entry.Set("sorts", ok)
			cli.Entry.Set("method", "zero-one")
			report(ok, w, "0-1 principle, exhaustive")
		} else {
			ok, w := sortcheck.RandomPerms(width, 1000, ev, rng)
			sp.End()
			cli.Entry.Set("sorts", ok)
			cli.Entry.Set("method", "random-perms")
			report(ok, w, "randomized (1000 permutations; cannot prove sortedness)")
		}
		cli.Entry.AddSpans(sp)
	case "eval":
		var in []int
		if *input != "" {
			for _, f := range strings.Split(*input, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					fail("bad input: " + err.Error())
				}
				in = append(in, v)
			}
		} else {
			in = []int(perm.Random(*n, rng))
		}
		fmt.Printf("in:  %v\n", in)
		var out []int
		if reg != nil {
			out = reg.Eval(in)
		} else {
			out = circ.Eval(in)
		}
		fmt.Printf("out: %v\n", out)
		fmt.Printf("sorted: %v\n", sortcheck.IsSorted(out))
		cli.Entry.Set("sorted", sortcheck.IsSorted(out))
	case "dot":
		if circ == nil {
			circ, _ = network.FromRegister(reg)
		}
		if err := circ.WriteDOT(os.Stdout, *family); err != nil {
			fail(err.Error())
		}
	case "ascii":
		if circ == nil {
			circ, _ = network.FromRegister(reg)
		}
		if err := circ.WriteASCII(os.Stdout); err != nil {
			fail(err.Error())
		}
	case "text":
		if circ == nil {
			circ, _ = network.FromRegister(reg)
		}
		if err := circ.WriteText(os.Stdout); err != nil {
			fail(err.Error())
		}
	default:
		fail("unknown op " + *op)
	}
}

// maxExhaustiveCheck is the widest network -op check verifies by the
// exhaustive 0-1 principle. The bit-sliced kernel makes 2^24 inputs a
// seconds-scale job; beyond that, check falls back to randomized
// testing (which cannot prove sortedness). With -timeout the
// exhaustive scan is abortable, so the larger cap is safe even in
// scripted runs.
const maxExhaustiveCheck = 24

// reportCanceled journals a canceled check (partial mask counts from
// the *par.ErrCanceled) and exits through the shared path: 0 after a
// deadline, 130 after ^C. A canceled check proves nothing either way,
// so no verdict is printed.
func reportCanceled(sp *obs.Span, err error) {
	var ce *par.ErrCanceled
	if errors.As(err, &ce) {
		cli.Entry.SetPartial(ce.Fields())
	}
	cli.Entry.AddSpans(sp)
	fmt.Printf("check canceled (%v); no verdict\n", err)
	cli.Finish()
	os.Exit(cli.ExitCode())
}

type ev struct {
	c *network.Network
	r *network.Register
}

func evaluator() *ev { return &ev{} }

func (e *ev) Eval(in []int) []int {
	if e.r != nil {
		return e.r.Eval(in)
	}
	return e.c.Eval(in)
}

// Compile routes the exhaustive 0-1 check onto the bit-sliced kernel
// (64 masks per pass), which is what makes the n <= 24 cap practical.
func (e *ev) Compile() *network.Program {
	if e.r != nil {
		return e.r.Compile()
	}
	return e.c.Compile()
}

func report(ok bool, w []int, method string) {
	if ok {
		fmt.Printf("sorting network: yes (%s)\n", method)
		return
	}
	fmt.Printf("sorting network: NO (%s)\nwitness input: %v\n", method, w)
}

var cli *obs.CLIRun

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "snet:", msg)
	if cli != nil {
		cli.Entry.Set("error", msg)
		cli.Finish()
	}
	os.Exit(1)
}
